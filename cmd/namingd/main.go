// Command namingd runs the standalone naming service: components register
// their endpoints under lease, clients resolve them by name — the
// location-transparency substrate of the distributed deployment.
//
//	namingd -addr 127.0.0.1:7500
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/naming"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	var (
		addr = flag.String("addr", "127.0.0.1:7500", "listen address")
		dump = flag.Duration("dump", 0, "periodically log the registry (0 disables)")
	)
	flag.Parse()

	srv := naming.NewServer(nil)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("namingd listening on %s", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	stopDump := make(chan struct{})
	dumpDone := make(chan struct{})
	if *dump > 0 {
		go func() {
			defer close(dumpDone)
			tick := time.NewTicker(*dump)
			defer tick.Stop()
			for {
				select {
				case <-stopDump:
					return
				case <-tick.C:
					entries := srv.Store().List()
					log.Printf("registry: %d live entries", len(entries))
					for _, e := range entries {
						log.Printf("  %-24s -> %s (expires %s)", e.Name, e.Addr,
							e.Expires.Format(time.RFC3339))
					}
					leases := srv.Store().Leases()
					if len(leases) > 0 {
						log.Printf("domain leases: %d live", len(leases))
						for _, l := range leases {
							log.Printf("  %-24s held by %s at term %d (expires %s)",
								l.Domain, l.Holder, l.Term, l.Expires.Format(time.RFC3339))
						}
					}
				}
			}
		}()
	} else {
		close(dumpDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
	case err := <-serveErr:
		if err != nil {
			log.Printf("serve failed: %v", err)
		}
	}
	close(stopDump)
	<-dumpDone
	srv.Close()
	log.Printf("namingd stopped with %d live entries", srv.Store().Len())
}
