// Command ticketd serves the framework-composed trouble-ticketing
// component over amrpc, optionally announcing itself to a naming service
// and optionally requiring authentication.
//
//	ticketd -addr :7000 -capacity 16
//	ticketd -addr :7000 -naming 127.0.0.1:7500 -auth -issue alice:client,bob:agent
//	ticketd -addr :7000 -obs 127.0.0.1:7070   # /metrics /trace /describe /shadow /cluster
//	ticketd -addr :7000 -obs 127.0.0.1:7070 -shadow 64   # shadow admission, 1 in 64
//	ticketd -addr :7000 -naming 127.0.0.1:7500 -cluster-id node-a   # admission-plane replica
//
// With -auth, tokens for the principals listed in -issue are printed at
// startup (name:role[,role...] pairs separated by commas between entries
// are not supported; each -issue entry is name:role).
//
// With -cluster-id, the process joins the distributed admission plane:
// the naming service partitions admission domains across all replicas
// started with the same -naming address, this node serves the domains it
// owns under a fenced lease and transparently forwards the rest, and
// failover to the survivors is automatic when a replica dies.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/amrpc"
	"repro/internal/apps/ticket"
	"repro/internal/aspects/audit"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/metrics"
	"repro/internal/cluster"
	"repro/internal/compose"
	"repro/internal/naming"
	"repro/internal/obs"
)

// options carries every flag-derived setting into run.
type options struct {
	addr        string
	capacity    int
	namingAddr  string
	ttl         time.Duration
	enableAuth  bool
	issue       string
	auditCap    int
	readTO      time.Duration
	maxLine     int
	maxConc     int
	shedMark    int
	obsAddr     string
	obsSample   int
	obsTrace    int
	shadowEvery int
	clusterID   string
	clusterTTL  time.Duration
}

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:7000", "listen address")
	flag.IntVar(&o.capacity, "capacity", 16, "ticket buffer capacity")
	flag.StringVar(&o.namingAddr, "naming", "", "naming service address (optional; required for -cluster-id)")
	flag.DurationVar(&o.ttl, "ttl", 30*time.Second, "naming lease TTL")
	flag.BoolVar(&o.enableAuth, "auth", false, "require authentication")
	flag.StringVar(&o.issue, "issue", "alice:client", "comma-separated name:role principals to issue tokens for (with -auth)")
	flag.IntVar(&o.auditCap, "audit", 1024, "audit trail capacity (0 disables)")
	flag.DurationVar(&o.readTO, "read-timeout", 5*time.Minute, "per-connection inactivity deadline (0 disables)")
	flag.IntVar(&o.maxLine, "max-line", 4*1024*1024, "max request frame size in bytes")
	flag.IntVar(&o.maxConc, "max-conn-concurrency", 256, "bound on in-flight requests per connection (the worker pool)")
	flag.IntVar(&o.shedMark, "shed-watermark", 0, "shed requests with CodeOverloaded when a method's ring + waiter depth reaches this (0 disables)")
	flag.StringVar(&o.obsAddr, "obs", "", "introspection HTTP address serving /metrics, /trace, /describe, /shadow, /cluster, /ring (empty disables)")
	flag.IntVar(&o.obsSample, "obs-sample", obs.DefaultSampleEvery, "trace 1 in N admissions in detail (<=1 traces all)")
	flag.IntVar(&o.obsTrace, "obs-trace", obs.DefaultRingCapacity, "per-domain trace ring capacity")
	flag.IntVar(&o.shadowEvery, "shadow", 0, "shadow admission: replay 1 in N live admissions against the reference semantics (0 disables)")
	flag.StringVar(&o.clusterID, "cluster-id", "", "join the distributed admission plane as this node (empty disables; requires -naming)")
	flag.DurationVar(&o.clusterTTL, "cluster-lease", 3*time.Second, "admission-domain lease TTL in cluster mode")
	flag.Parse()

	if err := run(o); err != nil {
		log.Fatal(err)
	}
}

func run(o options) error {
	cfg := ticket.GuardedConfig{Capacity: o.capacity, Metrics: metrics.NewRecorder(), ShadowSampleEvery: o.shadowEvery}
	var collector *obs.Collector
	if o.obsAddr != "" {
		collector = obs.NewCollector(obs.WithSampleEvery(o.obsSample), obs.WithRingCapacity(o.obsTrace))
		cfg.Obs = collector
	}
	var trail *audit.Trail
	if o.auditCap > 0 {
		var err error
		trail, err = audit.NewTrail(o.auditCap, audit.WithSink(os.Stderr))
		if err != nil {
			return err
		}
		cfg.Audit = trail
	}
	g, err := ticket.NewGuarded(cfg)
	if err != nil {
		return err
	}
	if sh := g.Shadow(); sh != nil {
		log.Printf("shadow admission on: replaying 1 in %d admissions against reference semantics", sh.SampleEvery())
	}
	if o.enableAuth {
		store := auth.NewTokenStore()
		for _, entry := range strings.Split(o.issue, ",") {
			entry = strings.TrimSpace(entry)
			if entry == "" {
				continue
			}
			parts := strings.SplitN(entry, ":", 2)
			name := parts[0]
			var roles []string
			if len(parts) == 2 && parts[1] != "" {
				roles = strings.Split(parts[1], "+")
			}
			tok := store.Issue(name, roles...)
			fmt.Printf("issued token for %s: %s\n", name, tok)
		}
		if err := g.EnableAuthentication(store); err != nil {
			return err
		}
		log.Print("authentication layer enabled")
	}

	log.Printf("composition:\n%s", g.Moderator().DescribeString())

	// Verify the composition before accepting traffic.
	if report := compose.Verify(g.Proxy()); !report.OK() {
		return fmt.Errorf("composition verification failed:\n%s", report)
	} else if len(report.Issues) > 0 {
		log.Printf("composition warnings:\n%s", report)
	}

	// Serve either standalone (a plain amrpc server) or as one replica of
	// the distributed admission plane.
	serverOpts := []amrpc.ServerOption{
		amrpc.WithReadTimeout(o.readTO),
		amrpc.WithMaxLineBytes(o.maxLine),
		amrpc.WithMaxConcurrentPerConn(o.maxConc),
	}
	if o.shedMark > 0 {
		mod := g.Moderator()
		wm := o.shedMark
		serverOpts = append(serverOpts, amrpc.WithShedPolicy(func(component, method string) (int64, bool) {
			p := mod.Pressure(method)
			if p < wm {
				return 0, false
			}
			// The retry hint grows with the overshoot, capped at a second:
			// deeper backlog, longer backoff.
			ra := int64(p - wm + 1)
			if ra > 1000 {
				ra = 1000
			}
			return ra, true
		}))
		log.Printf("admission-aware shedding on: refuse before parking at ring + waiter depth >= %d", wm)
	}
	var (
		srv       *amrpc.Server
		node      *cluster.Node
		serveAddr string
		serveErr  = make(chan error, 1)
	)
	if o.clusterID != "" {
		if o.namingAddr == "" {
			return fmt.Errorf("cluster mode (-cluster-id) requires -naming")
		}
		// Every ticket method shares the buffer, so they form ONE
		// admission domain: the owning replica runs all of this
		// component's guards, everyone else forwards to it. The wake
		// edges are declared anyway — they are local no-op kicks while
		// the methods are co-located and become load-bearing the moment
		// the domain map is ever split.
		node, err = cluster.Start(cluster.Config{
			ID:    o.clusterID,
			Local: g.Proxy(),
			Domains: map[string]string{
				ticket.MethodOpen:   "ticket",
				ticket.MethodAssign: "ticket",
			},
			WakeEdges: map[string][]string{
				ticket.MethodOpen:   {ticket.MethodAssign},
				ticket.MethodAssign: {ticket.MethodOpen},
			},
			Naming:        o.namingAddr,
			LeaseTTL:      o.clusterTTL,
			MemberTTL:     o.clusterTTL,
			ServerOptions: serverOpts,
			Logf:          log.Printf,
		}, o.addr)
		if err != nil {
			return err
		}
		serveAddr = node.Addr()
		if collector != nil {
			collector.WatchCluster(node)
		}
		log.Printf("cluster node %s serving %q on %s (capacity %d, lease %v)",
			o.clusterID, ticket.ComponentName, serveAddr, o.capacity, o.clusterTTL)
		log.Printf("state replication on: owned domains stream guarded effects to their ring successor " +
			"(watch per-domain lag with `ticketcli obs -view cluster`)")
	} else {
		srv = amrpc.NewServer(serverOpts...)
		if err := srv.Register(g.Proxy()); err != nil {
			return err
		}
		ln, err := net.Listen("tcp", o.addr)
		if err != nil {
			return err
		}
		serveAddr = ln.Addr().String()
		go func() { serveErr <- srv.Serve(ln) }()
		log.Printf("ticketd serving %q on %s (capacity %d)", ticket.ComponentName, serveAddr, o.capacity)
	}

	var obsLn net.Listener
	if collector != nil {
		collector.Registry().GaugeFunc("obs_trace_drops",
			"Trace events dropped by ring contention.",
			func() float64 { return float64(collector.Drops()) })
		if srv != nil {
			collector.Registry().GaugeFunc("am_shed_total",
				"Requests refused with CodeOverloaded by the admission-aware shed policy.",
				func() float64 { return float64(srv.Stats().Sheds) })
			collector.Registry().GaugeFunc("am_conn_rejected_total",
				"Requests refused because a connection's work queue was full.",
				func() float64 { return float64(srv.Stats().Rejected) })
		}
		obsLn, err = net.Listen("tcp", o.obsAddr)
		if err != nil {
			if srv != nil {
				srv.Close()
			}
			if node != nil {
				node.Close()
			}
			return err
		}
		go func() { _ = http.Serve(obsLn, obs.NewHTTPHandler(collector)) }()
		log.Printf("introspection on http://%s (sampling 1 in %d)", obsLn.Addr(), o.obsSample)
	}

	// Register the component name with the naming service and keep the
	// entry alive, so plain clients resolve SOME replica (any node of the
	// plane routes to the right owner). The cluster node separately
	// maintains its own member and lease records.
	stopRenew := make(chan struct{})
	renewDone := make(chan struct{})
	if o.namingAddr != "" {
		nc, err := naming.DialClient(o.namingAddr)
		if err != nil {
			if srv != nil {
				srv.Close()
			}
			if node != nil {
				node.Close()
			}
			return err
		}
		if err := nc.Register(ticket.ComponentName, serveAddr, o.ttl); err != nil {
			if srv != nil {
				srv.Close()
			}
			if node != nil {
				node.Close()
			}
			return err
		}
		log.Printf("registered with naming service %s (ttl %v)", o.namingAddr, o.ttl)
		go func() {
			defer close(renewDone)
			defer func() { _ = nc.Close() }()
			tick := time.NewTicker(o.ttl / 3)
			defer tick.Stop()
			for {
				select {
				case <-stopRenew:
					_, _ = nc.Unregister(ticket.ComponentName)
					return
				case <-tick.C:
					if err := nc.Register(ticket.ComponentName, serveAddr, o.ttl); err != nil {
						log.Printf("lease renewal failed: %v", err)
					}
				}
			}
		}()
	} else {
		close(renewDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
	case err := <-serveErr:
		if err != nil {
			log.Printf("serve failed: %v", err)
		}
	}
	close(stopRenew)
	<-renewDone
	if obsLn != nil {
		_ = obsLn.Close()
	}
	if node != nil {
		node.Close()
	} else {
		srv.Close()
	}

	stats := g.Moderator().Stats()
	log.Printf("final stats: %d admissions, %d blocks, %d aborts, buffer %d",
		stats.Admissions, stats.Blocks, stats.Aborts, g.Server().Size())
	if node != nil {
		st := node.Status()
		log.Printf("cluster stats: %d local, %d forwarded, %d retries, %d stale refusals, %d takeovers",
			st.LocalCalls, st.Forwards, st.ForwardRetries, st.StaleRefusals, st.Takeovers)
	}
	if sh := g.Shadow(); sh != nil {
		g.StopShadow()
		ss := sh.Stats()
		log.Printf("shadow stats: %d sampled, %d replayed, %d agreements, %d inconclusive, %d divergences",
			ss.Sampled, ss.Replayed, ss.Agreements, ss.Inconclusive, ss.Divergences())
	}
	if cfg.Metrics != nil {
		fmt.Print(cfg.Metrics.Report())
	}
	return nil
}
