// Command ticketd serves the framework-composed trouble-ticketing
// component over amrpc, optionally announcing itself to a naming service
// and optionally requiring authentication.
//
//	ticketd -addr :7000 -capacity 16
//	ticketd -addr :7000 -naming 127.0.0.1:7500 -auth -issue alice:client,bob:agent
//	ticketd -addr :7000 -obs 127.0.0.1:7070   # /metrics /trace /describe /shadow
//	ticketd -addr :7000 -obs 127.0.0.1:7070 -shadow 64   # shadow admission, 1 in 64
//
// With -auth, tokens for the principals listed in -issue are printed at
// startup (name:role[,role...] pairs separated by commas between entries
// are not supported; each -issue entry is name:role).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/amrpc"
	"repro/internal/apps/ticket"
	"repro/internal/aspects/audit"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/metrics"
	"repro/internal/compose"
	"repro/internal/naming"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	var (
		addr       = flag.String("addr", "127.0.0.1:7000", "listen address")
		capacity   = flag.Int("capacity", 16, "ticket buffer capacity")
		namingAddr = flag.String("naming", "", "naming service address (optional)")
		ttl        = flag.Duration("ttl", 30*time.Second, "naming lease TTL")
		enableAuth = flag.Bool("auth", false, "require authentication")
		issue      = flag.String("issue", "alice:client", "comma-separated name:role principals to issue tokens for (with -auth)")
		auditCap   = flag.Int("audit", 1024, "audit trail capacity (0 disables)")
		readTO     = flag.Duration("read-timeout", 5*time.Minute, "per-connection inactivity deadline (0 disables)")
		maxLine    = flag.Int("max-line", 4*1024*1024, "max request frame size in bytes")
		obsAddr    = flag.String("obs", "", "introspection HTTP address serving /metrics, /trace, /describe, /shadow (empty disables)")
		obsSample  = flag.Int("obs-sample", obs.DefaultSampleEvery, "trace 1 in N admissions in detail (<=1 traces all)")
		obsTrace   = flag.Int("obs-trace", obs.DefaultRingCapacity, "per-domain trace ring capacity")
		shadow     = flag.Int("shadow", 0, "shadow admission: replay 1 in N live admissions against the reference semantics (0 disables)")
	)
	flag.Parse()

	if err := run(*addr, *capacity, *namingAddr, *ttl, *enableAuth, *issue, *auditCap, *readTO, *maxLine, *obsAddr, *obsSample, *obsTrace, *shadow); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, capacity int, namingAddr string, ttl time.Duration, enableAuth bool, issue string, auditCap int, readTO time.Duration, maxLine int, obsAddr string, obsSample, obsTrace, shadowEvery int) error {
	cfg := ticket.GuardedConfig{Capacity: capacity, Metrics: metrics.NewRecorder(), ShadowSampleEvery: shadowEvery}
	var collector *obs.Collector
	if obsAddr != "" {
		collector = obs.NewCollector(obs.WithSampleEvery(obsSample), obs.WithRingCapacity(obsTrace))
		cfg.Obs = collector
	}
	var trail *audit.Trail
	if auditCap > 0 {
		var err error
		trail, err = audit.NewTrail(auditCap, audit.WithSink(os.Stderr))
		if err != nil {
			return err
		}
		cfg.Audit = trail
	}
	g, err := ticket.NewGuarded(cfg)
	if err != nil {
		return err
	}
	if sh := g.Shadow(); sh != nil {
		log.Printf("shadow admission on: replaying 1 in %d admissions against reference semantics", sh.SampleEvery())
	}
	if enableAuth {
		store := auth.NewTokenStore()
		for _, entry := range strings.Split(issue, ",") {
			entry = strings.TrimSpace(entry)
			if entry == "" {
				continue
			}
			parts := strings.SplitN(entry, ":", 2)
			name := parts[0]
			var roles []string
			if len(parts) == 2 && parts[1] != "" {
				roles = strings.Split(parts[1], "+")
			}
			tok := store.Issue(name, roles...)
			fmt.Printf("issued token for %s: %s\n", name, tok)
		}
		if err := g.EnableAuthentication(store); err != nil {
			return err
		}
		log.Print("authentication layer enabled")
	}

	log.Printf("composition:\n%s", g.Moderator().DescribeString())

	// Verify the composition before accepting traffic.
	if report := compose.Verify(g.Proxy()); !report.OK() {
		return fmt.Errorf("composition verification failed:\n%s", report)
	} else if len(report.Issues) > 0 {
		log.Printf("composition warnings:\n%s", report)
	}

	srv := amrpc.NewServer(amrpc.WithReadTimeout(readTO), amrpc.WithMaxLineBytes(maxLine))
	if err := srv.Register(g.Proxy()); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("ticketd serving %q on %s (capacity %d)", ticket.ComponentName, ln.Addr(), capacity)

	var obsLn net.Listener
	if collector != nil {
		collector.Registry().GaugeFunc("obs_trace_drops",
			"Trace events dropped by ring contention.",
			func() float64 { return float64(collector.Drops()) })
		obsLn, err = net.Listen("tcp", obsAddr)
		if err != nil {
			srv.Close()
			return err
		}
		go func() { _ = http.Serve(obsLn, obs.NewHTTPHandler(collector)) }()
		log.Printf("introspection on http://%s (sampling 1 in %d)", obsLn.Addr(), obsSample)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Register with the naming service and keep the lease alive.
	stopRenew := make(chan struct{})
	renewDone := make(chan struct{})
	if namingAddr != "" {
		nc, err := naming.DialClient(namingAddr)
		if err != nil {
			srv.Close()
			return err
		}
		if err := nc.Register(ticket.ComponentName, ln.Addr().String(), ttl); err != nil {
			srv.Close()
			return err
		}
		log.Printf("registered with naming service %s (ttl %v)", namingAddr, ttl)
		go func() {
			defer close(renewDone)
			defer func() { _ = nc.Close() }()
			tick := time.NewTicker(ttl / 3)
			defer tick.Stop()
			for {
				select {
				case <-stopRenew:
					_, _ = nc.Unregister(ticket.ComponentName)
					return
				case <-tick.C:
					if err := nc.Register(ticket.ComponentName, ln.Addr().String(), ttl); err != nil {
						log.Printf("lease renewal failed: %v", err)
					}
				}
			}
		}()
	} else {
		close(renewDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
	case err := <-serveErr:
		if err != nil {
			log.Printf("serve failed: %v", err)
		}
	}
	close(stopRenew)
	<-renewDone
	if obsLn != nil {
		_ = obsLn.Close()
	}
	srv.Close()

	stats := g.Moderator().Stats()
	log.Printf("final stats: %d admissions, %d blocks, %d aborts, buffer %d",
		stats.Admissions, stats.Blocks, stats.Aborts, g.Server().Size())
	if sh := g.Shadow(); sh != nil {
		g.StopShadow()
		ss := sh.Stats()
		log.Printf("shadow stats: %d sampled, %d replayed, %d agreements, %d inconclusive, %d divergences",
			ss.Sampled, ss.Replayed, ss.Agreements, ss.Inconclusive, ss.Divergences())
	}
	if cfg.Metrics != nil {
		fmt.Print(cfg.Metrics.Report())
	}
	return nil
}
