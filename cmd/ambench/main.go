// Command ambench runs the reproduction's experiment suite (E1-E15 of
// EXPERIMENTS.md) and prints one table per experiment.
//
//	ambench                          # full run
//	ambench -quick                   # trimmed sweeps, smaller op counts
//	ambench -only E1,E3              # a subset
//	ambench -ops 100000              # heavier measurements
//	ambench -json BENCH_2.json       # E12 only: write the domains baseline
//	ambench -obs-json BENCH_3.json   # E13 only: write the obs overhead baseline
//	ambench -matrix-json BENCH_4.json  # E14 only: write the GOMAXPROCS matrix baseline
//	ambench -shadow-json BENCH_5.json  # E15 only: write the shadow overhead baseline
//	ambench -statesync-json BENCH_6.json  # E18 only: write the state handoff baseline
//	ambench -loop-json BENCH_7.json  # E19 only: write the closed-loop batched admission baseline
//
// Passing BOTH -json and -obs-json is the canonical baseline run (what
// `make bench` does): the contended variants of E12 and E13 are measured
// interleaved in one pass, so the two committed files agree by
// construction instead of depending on cross-run machine drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		ops        = flag.Int("ops", 0, "operations per measurement (0 = default)")
		quick      = flag.Bool("quick", false, "trim sweeps for a fast smoke run")
		only       = flag.String("only", "", "comma-separated experiment ids (e.g. E1,E3)")
		jsonPath   = flag.String("json", "", "run the E12 domain families and write the JSON report to this path")
		obsPath    = flag.String("obs-json", "", "run the E13 obs overhead family and write the JSON report to this path")
		matrixPath = flag.String("matrix-json", "", "run the E14 GOMAXPROCS x workload matrix and write the JSON report to this path")
		shadowPath = flag.String("shadow-json", "", "run the E15 shadow admission overhead family and write the JSON report to this path")
		syncPath   = flag.String("statesync-json", "", "run the E18 state handoff family and write the JSON report to this path")
		loopPath   = flag.String("loop-json", "", "run the E19 closed-loop batched admission family and write the JSON report to this path")
	)
	flag.Parse()

	cfg := bench.Config{Ops: *ops, Quick: *quick}
	if *quick && *ops == 0 {
		cfg.Ops = 5000
	}

	switch {
	case *matrixPath != "":
		writeJSONReport(*matrixPath, func() (any, error) { return bench.Matrix(cfg) })
		return
	case *shadowPath != "":
		writeJSONReport(*shadowPath, func() (any, error) { return bench.Shadow(cfg) })
		return
	case *syncPath != "":
		writeJSONReport(*syncPath, func() (any, error) { return bench.Statesync(cfg) })
		return
	case *loopPath != "":
		writeJSONReport(*loopPath, func() (any, error) { return bench.Loop(cfg) })
		return
	case *jsonPath != "" && *obsPath != "":
		domRep, obsRep, err := bench.Baselines(cfg)
		if err != nil {
			log.Fatal(err)
		}
		writeJSONReport(*jsonPath, func() (any, error) { return domRep, nil })
		writeJSONReport(*obsPath, func() (any, error) { return obsRep, nil })
		return
	case *jsonPath != "":
		writeJSONReport(*jsonPath, func() (any, error) { return bench.Domains(cfg) })
		return
	case *obsPath != "":
		writeJSONReport(*obsPath, func() (any, error) { return bench.Obs(cfg) })
		return
	}

	var ids []string
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if id != "" {
			ids = append(ids, id)
		}
	}

	start := time.Now()
	tables, err := bench.All(cfg, ids...)
	if err != nil {
		log.Fatal(err)
	}
	if len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -only filter")
		os.Exit(2)
	}
	for i := range tables {
		fmt.Println(tables[i].Render())
	}
	fmt.Printf("ran %d experiments in %v\n", len(tables), time.Since(start).Round(time.Millisecond))
}

// writeJSONReport runs one baseline family and commits its report to path.
func writeJSONReport(path string, run func() (any, error)) {
	start := time.Now()
	rep, err := run()
	if err != nil {
		log.Fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
	fmt.Printf("wrote %s in %v\n", path, time.Since(start).Round(time.Millisecond))
}
