// Command ambench runs the reproduction's experiment suite (E1-E12 of
// EXPERIMENTS.md) and prints one table per experiment.
//
//	ambench                      # full run
//	ambench -quick               # trimmed sweeps, smaller op counts
//	ambench -only E1,E3          # a subset
//	ambench -ops 100000          # heavier measurements
//	ambench -json BENCH_2.json   # E12 only: write the domains baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		ops      = flag.Int("ops", 0, "operations per measurement (0 = default)")
		quick    = flag.Bool("quick", false, "trim sweeps for a fast smoke run")
		only     = flag.String("only", "", "comma-separated experiment ids (e.g. E1,E3)")
		jsonPath = flag.String("json", "", "run the E12 domain families and write the JSON report to this path")
	)
	flag.Parse()

	cfg := bench.Config{Ops: *ops, Quick: *quick}
	if *quick && *ops == 0 {
		cfg.Ops = 5000
	}

	if *jsonPath != "" {
		start := time.Now()
		rep, err := bench.Domains(cfg)
		if err != nil {
			log.Fatal(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
		fmt.Printf("wrote %s in %v\n", *jsonPath, time.Since(start).Round(time.Millisecond))
		return
	}

	var ids []string
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if id != "" {
			ids = append(ids, id)
		}
	}

	start := time.Now()
	tables, err := bench.All(cfg, ids...)
	if err != nil {
		log.Fatal(err)
	}
	if len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -only filter")
		os.Exit(2)
	}
	for i := range tables {
		fmt.Println(tables[i].Render())
	}
	fmt.Printf("ran %d experiments in %v\n", len(tables), time.Since(start).Round(time.Millisecond))
}
