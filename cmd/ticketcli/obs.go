package main

// The obs subcommand: a small reader for ticketd's introspection
// endpoint. The default view is an amtop-style summary assembled from
// /describe and /trace; the raw views print an endpoint's body verbatim.
//
//	ticketcli obs -url http://127.0.0.1:7070
//	ticketcli obs -url http://127.0.0.1:7070 -view metrics
//	ticketcli obs -url http://127.0.0.1:7070 -view trace -n 50

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func runObs(args []string) error {
	fs := flag.NewFlagSet("obs", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:7070", "ticketd introspection base URL")
	view := fs.String("view", "summary", "summary | metrics | trace | describe | shadow | cluster | ring")
	n := fs.Int("n", 15, "events to show (summary and trace views)")
	raw := fs.Bool("raw", false, "print the endpoint body verbatim instead of the rendered view")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimRight(*url, "/")
	switch *view {
	case "cluster":
		if !*raw {
			return clusterView(base)
		}
		return printRaw(base + "/cluster")
	case "ring":
		if !*raw {
			return ringView(base)
		}
		return printRaw(base + "/ring")
	case "metrics", "trace", "describe", "shadow":
		path := "/" + *view
		if *view == "trace" {
			path = fmt.Sprintf("/trace?n=%d", *n)
		}
		return printRaw(base + path)
	case "summary":
		return summarize(base, *n)
	default:
		return fmt.Errorf("unknown view %q (want summary, metrics, trace, describe, shadow, cluster, or ring)", *view)
	}
}

func printRaw(url string) error {
	body, err := fetch(url)
	if err != nil {
		return err
	}
	fmt.Print(string(body))
	if len(body) > 0 && body[len(body)-1] != '\n' {
		fmt.Println()
	}
	return nil
}

// clusterView renders the /cluster ownership table: which node holds
// which admission domain at which lease term, plus the plane counters.
func clusterView(base string) error {
	body, err := fetch(base + "/cluster")
	if err != nil {
		return err
	}
	var dump obs.ClusterDump
	if err := json.Unmarshal(body, &dump); err != nil {
		return fmt.Errorf("decode /cluster: %w", err)
	}
	if len(dump.Nodes) == 0 {
		fmt.Println("no cluster nodes watched (is ticketd running with -cluster-id?)")
		return nil
	}
	for _, st := range dump.Nodes {
		fmt.Printf("node %s (%s) serving %q — members: %s\n",
			st.Node, st.Addr, st.Component, strings.Join(st.Members, " "))
		for _, d := range st.Domains {
			marker := " "
			if d.Local {
				marker = "*"
			}
			fmt.Printf("  %s domain %-20s owner=%-12s term=%-4d addr=%s\n",
				marker, d.Domain, d.Owner, d.Term, d.Addr)
		}
		fmt.Printf("  local=%d forwarded=%d retries=%d staleRefusals=%d wakes(sent=%d recv=%d) takeovers=%d\n",
			st.LocalCalls, st.Forwards, st.ForwardRetries, st.StaleRefusals,
			st.WakesSent, st.WakesReceived, st.Takeovers)
		for _, r := range st.Replication {
			switch {
			case r.Leading:
				fmt.Printf("  sync %-20s -> %-12s term=%-4d lag=%-5d streamed=%d snapshots=%d overflows=%d\n",
					r.Domain, r.Successor, r.Term, r.Lag, r.Streamed, r.SnapshotsSent, r.Overflows)
			case r.ReplicaFrom != "":
				fmt.Printf("  sync %-20s <- %-12s term=%-4d seq=%-5d snapshots=%d dups=%d gaps=%d\n",
					r.Domain, r.ReplicaFrom, r.ReplicaTerm, r.ReplicaSeq, r.SnapshotsRecv, r.Duplicates, r.Gaps)
			case r.CatchupApplied > 0 || r.Restored:
				fmt.Printf("  sync %-20s caught up: applied=%d gaps=%d restored=%v\n",
					r.Domain, r.CatchupApplied, r.CatchupGaps, r.Restored)
			}
		}
	}
	return nil
}

// ringView renders the /ring submission-ring table: per-component batch
// counters plus the batch-size histogram.
func ringView(base string) error {
	body, err := fetch(base + "/ring")
	if err != nil {
		return err
	}
	var dump obs.RingDump
	if err := json.Unmarshal(body, &dump); err != nil {
		return fmt.Errorf("decode /ring: %w", err)
	}
	if len(dump.Components) == 0 {
		fmt.Println("no submission rings watched (is ticketd running a batched moderator?)")
		return nil
	}
	for _, rc := range dump.Components {
		s := rc.Stats
		fmt.Printf("component %s\n", rc.Component)
		fmt.Printf("  submitted=%d depth=%d fullFallbacks=%d mutexBypasses=%d\n", s.Submitted, s.Depth, s.FullFallbacks, s.MutexBypasses)
		fmt.Printf("  batches=%d ops=%d (pre=%d post=%d) maxBatch=%d", s.Batches, s.BatchedOps, s.PreOps, s.PostOps, s.MaxBatch)
		if s.Batches > 0 {
			fmt.Printf(" meanBatch=%.2f", float64(s.BatchedOps)/float64(s.Batches))
		}
		fmt.Println()
		fmt.Printf("  parks=%d wakePasses=%d\n", s.Parks, s.WakePasses)
		var parts []string
		for i, n := range s.BatchSizes {
			if n == 0 {
				continue
			}
			lo := 1 << uint(i)
			label := fmt.Sprintf("%d", lo)
			switch {
			case i == len(s.BatchSizes)-1:
				label = fmt.Sprintf("%d+", lo)
			case 1<<uint(i+1)-1 != lo:
				label = fmt.Sprintf("%d-%d", lo, 1<<uint(i+1)-1)
			}
			parts = append(parts, fmt.Sprintf("%s:%d", label, n))
		}
		if len(parts) > 0 {
			fmt.Printf("  batch sizes: %s\n", strings.Join(parts, "  "))
		}
	}
	return nil
}

func fetch(url string) ([]byte, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return body, nil
}

// summarize renders the amtop-style view: per-component admission totals
// and composition, then the tail of the event stream.
func summarize(base string, n int) error {
	body, err := fetch(base + "/describe")
	if err != nil {
		return err
	}
	var snap obs.DescribeSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return fmt.Errorf("decode /describe: %w", err)
	}
	body, err = fetch(fmt.Sprintf("%s/trace?n=%d", base, n))
	if err != nil {
		return err
	}
	var dump obs.TraceDump
	if err := json.Unmarshal(body, &dump); err != nil {
		return fmt.Errorf("decode /trace: %w", err)
	}

	fmt.Printf("sampling 1 in %d admissions\n", snap.SampleEvery)
	for _, comp := range snap.Components {
		fmt.Printf("\ncomponent %s\n", comp.Name)
		var layers []string
		for _, l := range comp.Layers {
			layers = append(layers, l.Name)
		}
		fmt.Printf("  layers (outermost first): %s\n", strings.Join(layers, " > "))
		if len(comp.Domains) > 0 {
			var groups []string
			for _, d := range comp.Domains {
				groups = append(groups, "{"+strings.Join(d, ",")+"}")
			}
			fmt.Printf("  admission domains: %s\n", strings.Join(groups, " "))
		}
		if comp.Epoch > 0 {
			line := fmt.Sprintf("  plan epoch: %d", comp.Epoch)
			if comp.Canary != nil {
				line += fmt.Sprintf("   canary: epoch %d at %d%% [%s]",
					comp.Canary.CandidateEpoch, comp.Canary.Percent, strings.Join(comp.Canary.Layers, " > "))
			}
			fmt.Println(line)
		}
		fmt.Printf("  admissions %d   blocks %d   aborts %d   completions %d\n",
			comp.Stats.Admissions, comp.Stats.Blocks, comp.Stats.Aborts, comp.Stats.Completions)
		if len(comp.Parked) > 0 {
			methods := make([]string, 0, len(comp.Parked))
			for m := range comp.Parked {
				methods = append(methods, m)
			}
			sort.Strings(methods)
			var parts []string
			for _, m := range methods {
				parts = append(parts, fmt.Sprintf("%s=%d", m, comp.Parked[m]))
			}
			fmt.Printf("  parked: %s\n", strings.Join(parts, "  "))
		}
		queues := make([]string, 0, len(comp.Queues))
		for q := range comp.Queues {
			queues = append(queues, q)
		}
		sort.Strings(queues)
		for _, q := range queues {
			s := comp.Queues[q]
			fmt.Printf("  queue %-28s waits=%d notifies=%d broadcasts=%d cancels=%d\n",
				q, s.Waits, s.Notifies, s.Broadcasts, s.Cancels)
		}
	}

	// Shadow admission, when the server runs it. Absence (older server,
	// shadow off) is not an error.
	if body, err := fetch(base + "/shadow"); err == nil {
		var sd obs.ShadowDump
		if err := json.Unmarshal(body, &sd); err == nil && len(sd.Components) > 0 {
			for _, sc := range sd.Components {
				fmt.Printf("\nshadow %s (1 in %d admissions)\n", sc.Component, sc.SampleEvery)
				st := sc.Stats
				fmt.Printf("  sampled %d   replayed %d   agreements %d   inconclusive %d   dropped %d\n",
					st.Sampled, st.Replayed, st.Agreements, st.Inconclusive, st.Dropped)
				fmt.Printf("  divergences: verdict=%d stack=%d wake=%d\n",
					st.VerdictDivergences, st.StackDivergences, st.WakeDivergences)
				for _, div := range sc.Divergences {
					fmt.Printf("  !! [%s] %s epoch=%d: %s\n", div.Class, div.Method, div.Epoch, div.Detail)
				}
			}
		}
	}

	fmt.Printf("\nrecent events (%d shown, %d ring drops)\n", len(dump.Events), dump.Drops)
	for _, e := range dump.Events {
		at := time.Unix(0, e.At).Format("15:04:05.000000")
		line := fmt.Sprintf("  %s [d%d #%d] %-8s %s", at, e.Domain, e.Seq, e.Op, e.Method)
		if e.Aspect != "" {
			line += " aspect=" + e.Aspect
		}
		if e.Verdict != "" {
			line += " verdict=" + e.Verdict
		}
		if e.Depth > 0 {
			line += fmt.Sprintf(" depth=%d", e.Depth)
		}
		if e.Nanos > 0 {
			line += fmt.Sprintf(" took=%v", time.Duration(e.Nanos).Round(time.Microsecond))
		}
		if e.Err != "" {
			line += " err=" + e.Err
		}
		fmt.Println(line)
	}
	return nil
}
