// Command ticketcli is a client for ticketd. The component is located
// either directly (-addr) or through a naming service (-naming).
//
//	ticketcli -addr 127.0.0.1:7000 open TT-1 "printer on fire"
//	ticketcli -addr 127.0.0.1:7000 assign
//	ticketcli -naming 127.0.0.1:7500 -token tok-alice-0001 open TT-2 "vpn down"
//	ticketcli -addr 127.0.0.1:7000 load -n 1000 -clients 8
//	ticketcli obs -url http://127.0.0.1:7070
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/amrpc"
	"repro/internal/apps/ticket"
	"repro/internal/naming"
)

func main() {
	var (
		addr       = flag.String("addr", "", "ticketd address (or use -naming)")
		namingAddr = flag.String("naming", "", "naming service address")
		token      = flag.String("token", "", "bearer token (when the server authenticates)")
		priority   = flag.Int("priority", 0, "wait-queue priority")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-call timeout")
		retries    = flag.Int("retries", 1, "attempts per call on transport failure (needs -idempotent to retry)")
		attemptTO  = flag.Duration("attempt-timeout", 0, "per-attempt deadline (0 = whole-call timeout only)")
		idem       = flag.Bool("idempotent", false, "declare calls safe to repeat: retry transport failures")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: ticketcli [flags] open <id> <summary> | assign | load [-n N] [-clients C] | obs [-url U] [-view V]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if flag.Arg(0) == "obs" {
		// The obs reader talks HTTP to the introspection endpoint; it
		// needs neither -addr nor an amrpc connection.
		if err := runObs(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(*addr, *namingAddr, *token, *priority, *timeout, *retries, *attemptTO, *idem, flag.Args()); err != nil {
		log.Fatal(err)
	}
}

func run(addr, namingAddr, token string, priority int, timeout time.Duration, retries int, attemptTO time.Duration, idem bool, args []string) error {
	if addr == "" {
		if namingAddr == "" {
			return fmt.Errorf("one of -addr or -naming is required")
		}
		nc, err := naming.DialClient(namingAddr)
		if err != nil {
			return err
		}
		entry, err := nc.Lookup(ticket.ComponentName)
		_ = nc.Close()
		if err != nil {
			return err
		}
		addr = entry.Addr
	}
	client, err := amrpc.Dial(addr, amrpc.WithRetry(amrpc.RetryPolicy{
		MaxAttempts:    retries,
		AttemptTimeout: attemptTO,
	}))
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()
	stubOpts := []amrpc.StubOption{amrpc.WithToken(token), amrpc.WithPriority(priority)}
	if idem {
		stubOpts = append(stubOpts, amrpc.WithIdempotent())
	}
	stub := client.Component(ticket.ComponentName, stubOpts...)

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	switch args[0] {
	case "open":
		if len(args) != 3 {
			return fmt.Errorf("usage: open <id> <summary>")
		}
		if _, err := stub.Invoke(ctx, ticket.MethodOpen, args[1], args[2]); err != nil {
			return err
		}
		fmt.Printf("opened %s\n", args[1])
		return nil
	case "assign":
		res, err := stub.Invoke(ctx, ticket.MethodAssign)
		if err != nil {
			return err
		}
		m, ok := res.(map[string]any)
		if !ok {
			return fmt.Errorf("unexpected result %T", res)
		}
		fmt.Printf("assigned %v: %v\n", m["id"], m["summary"])
		return nil
	case "load":
		fs := flag.NewFlagSet("load", flag.ContinueOnError)
		n := fs.Int("n", 1000, "tickets to move")
		clients := fs.Int("clients", 4, "concurrent client pairs")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if err := load(stub, *n, *clients, timeout); err != nil {
			return err
		}
		cs := client.Stats()
		fmt.Printf("transport: %d calls, %d attempts, %d retries, %d transport errors, %d reconnects\n",
			cs.Calls, cs.Attempts, cs.Retries, cs.TransportErrors, cs.Reconnects)
		return nil
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// load moves n tickets through the server with the given concurrency and
// prints throughput.
func load(stub *amrpc.Stub, n, clients int, timeout time.Duration) error {
	if clients <= 0 || n <= 0 {
		return fmt.Errorf("load: n and clients must be positive")
	}
	per := n / clients
	if per == 0 {
		per = 1
	}
	total := per * clients
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, 2*clients)
	for c := 0; c < clients; c++ {
		wg.Add(2)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				_, err := stub.Invoke(ctx, ticket.MethodOpen, fmt.Sprintf("load-%d-%d", c, k), "load test")
				cancel()
				if err != nil {
					errs <- err
					return
				}
			}
		}(c)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				_, err := stub.Invoke(ctx, ticket.MethodAssign)
				cancel()
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return fmt.Errorf("load worker failed: %w", err)
	}
	elapsed := time.Since(start)
	fmt.Printf("moved %d tickets in %v (%.0f ops/sec)\n",
		total, elapsed.Round(time.Millisecond), float64(2*total)/elapsed.Seconds())
	return nil
}
