package repro_test

// Tier-1 guard for BENCH_4.json, the E14 GOMAXPROCS × workload matrix
// written by `make bench-matrix`. Beyond shape checks (schema, full
// procs × family coverage, positive measurements), it pins the three
// performance claims of the compiled-plan / lock-free fast path work:
//
//   - pure-stack: the NonBlocking fast path must deliver ≥2× the mutex
//     path's throughput at procs=8.
//   - single-method latency: the sharded uncontended admission at
//     procs=1 must beat the pre-compiled-plan E12 baseline (473.49
//     ns/op, committed in the PR-3 BENCH_2.json) by ≥25%. The constant
//     is hardcoded because BENCH_2.json itself is regenerated.
//   - contended throughput at procs=1 must not regress below the
//     reference: the 0.90× sharded deficit E12 once recorded on one
//     core came from per-invocation plan resolution, which compiled
//     plans removed.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/bench"
)

// e12LatencyNsPR3 is the single-method sharded admission latency the
// PR-3 BENCH_2.json recorded at GOMAXPROCS=1, before plans were compiled
// at publish time. Kept as a literal so the ≥25% improvement criterion
// survives baseline regeneration.
const e12LatencyNsPR3 = 473.48945

func TestMatrixBaselineTrajectory(t *testing.T) {
	data, err := os.ReadFile("BENCH_4.json")
	if err != nil {
		t.Fatalf("committed matrix baseline missing (run `make bench-matrix`): %v", err)
	}
	var rep bench.MatrixReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_4.json does not parse: %v", err)
	}
	if rep.Schema != bench.MatrixSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, bench.MatrixSchema)
	}
	if rep.NumCPU < 1 {
		t.Fatalf("num_cpu = %d, want >= 1", rep.NumCPU)
	}

	covered := make(map[int]bool, len(rep.Procs))
	for _, p := range rep.Procs {
		covered[p] = true
	}
	for _, p := range bench.MatrixProcs {
		if !covered[p] {
			t.Fatalf("procs sweep %v missing required setting %d", rep.Procs, p)
		}
	}

	for _, procs := range rep.Procs {
		for _, family := range bench.MatrixFamilyNames {
			c, ok := rep.Cell(procs, family)
			if !ok {
				t.Fatalf("cell (procs=%d, %s) missing from baseline", procs, family)
			}
			if c.Unit != "ops/s" && c.Unit != "ns/op" {
				t.Fatalf("cell (procs=%d, %s) has unknown unit %q", procs, family, c.Unit)
			}
			wantVariants := []string{bench.VariantSharded, bench.VariantReference}
			if family == bench.FamilyPure {
				wantVariants = []string{bench.VariantFast, bench.VariantMutex}
			}
			for _, v := range wantVariants {
				if c.Variants[v] <= 0 {
					t.Fatalf("cell (procs=%d, %s) variant %q non-positive: %+v", procs, family, v, c.Variants)
				}
			}
			if c.Speedup <= 0 {
				t.Fatalf("cell (procs=%d, %s) has non-positive speedup %f", procs, family, c.Speedup)
			}
		}
	}

	// Claim 1: lock-free fast path ≥2× the mutex path at procs=8.
	pure, _ := rep.Cell(8, bench.FamilyPure)
	if pure.Speedup < 2.0 {
		t.Fatalf("pure-stack fast path at procs=8 is %.2fx the mutex path (fast %.0f, mutex %.0f ops/s), want >= 2x",
			pure.Speedup, pure.Variants[bench.VariantFast], pure.Variants[bench.VariantMutex])
	}

	// Claim 2: uncontended sharded latency ≥25% under the pre-compiled-plan
	// E12 number.
	lat, _ := rep.Cell(1, bench.FamilyLatency)
	if ceiling := 0.75 * e12LatencyNsPR3; lat.Variants[bench.VariantSharded] > ceiling {
		t.Fatalf("single-method sharded latency at procs=1 is %.1f ns/op, want <= %.1f (25%% under the PR-3 baseline %.1f)",
			lat.Variants[bench.VariantSharded], ceiling, e12LatencyNsPR3)
	}

	// Claim 3: no single-core contended regression. Before compiled plans
	// the sharded moderator paid per-invocation plan resolution on every
	// admission and lost to the reference at GOMAXPROCS=1.
	cont, _ := rep.Cell(1, bench.FamilyContended)
	if cont.Speedup < 1.0 {
		t.Fatalf("contended sharded throughput at procs=1 is %.2fx the reference (sharded %.0f, reference %.0f ops/s), want >= 1x",
			cont.Speedup, cont.Variants[bench.VariantSharded], cont.Variants[bench.VariantReference])
	}

	t.Logf("num_cpu=%d: pure-stack@8 %.2fx, latency@1 %.1f ns (ceiling %.1f), contended@1 %.2fx",
		rep.NumCPU, pure.Speedup, lat.Variants[bench.VariantSharded], 0.75*e12LatencyNsPR3, cont.Speedup)
}
