package repro_test

// Tier-1 guard for BENCH_4.json, the E14 GOMAXPROCS × workload matrix
// written by `make bench-matrix`. Beyond shape checks (schema, full
// procs × family coverage, positive measurements), it pins the
// performance claims of the compiled-plan / lock-free fast path work as
// a table: every violated claim fails individually (t.Errorf), naming
// the offending family and the measured ratio, so a regression report
// reads as "which claims broke", not just "the first one that did".

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/bench"
)

// e12LatencyNsPR3 is the single-method sharded admission latency the
// PR-3 BENCH_2.json recorded at GOMAXPROCS=1, before plans were compiled
// at publish time. Kept as a literal so the ≥25% improvement criterion
// survives baseline regeneration.
const e12LatencyNsPR3 = 473.48945

// matrixClaim is one committed performance claim over the BENCH_4
// baseline: `measure` extracts the value under test from the report, and
// the claim holds when op(value, bound) — "ge": value ≥ bound, "le":
// value ≤ bound.
type matrixClaim struct {
	name    string
	family  string // offending family, named in the failure
	op      string
	bound   float64
	unit    string
	measure func(rep *bench.MatrixReport) (float64, bool)
}

func matrixClaims() []matrixClaim {
	return []matrixClaim{
		{
			// The NonBlocking fast path must deliver ≥2× the mutex path's
			// throughput once there is parallelism to exploit.
			name: "pure-stack fast/mutex throughput at procs=8", family: bench.FamilyPure,
			op: "ge", bound: 2.0, unit: "x",
			measure: func(rep *bench.MatrixReport) (float64, bool) {
				c, ok := rep.Cell(8, bench.FamilyPure)
				return c.Speedup, ok
			},
		},
		{
			// Uncontended sharded latency ≥25% under the pre-compiled-plan
			// E12 number (the constant is hardcoded because BENCH_2.json
			// itself is regenerated).
			name: "sharded uncontended latency at procs=1", family: bench.FamilyLatency,
			op: "le", bound: 0.75 * e12LatencyNsPR3, unit: "ns/op",
			measure: func(rep *bench.MatrixReport) (float64, bool) {
				c, ok := rep.Cell(1, bench.FamilyLatency)
				return c.Variants[bench.VariantSharded], ok
			},
		},
		{
			// No single-core contended regression: before compiled plans the
			// sharded moderator paid per-invocation plan resolution on every
			// admission and lost to the reference at GOMAXPROCS=1.
			name: "contended sharded/reference throughput at procs=1", family: bench.FamilyContended,
			op: "ge", bound: 1.0, unit: "x",
			measure: func(rep *bench.MatrixReport) (float64, bool) {
				c, ok := rep.Cell(1, bench.FamilyContended)
				return c.Speedup, ok
			},
		},
		{
			// The pure fast path's mechanism-only latency floor: under 100ns
			// per admission for a single caller at procs=1.
			name: "pure fast-path latency at procs=1", family: bench.FamilyPureLatency,
			op: "le", bound: 100.0, unit: "ns/op",
			measure: func(rep *bench.MatrixReport) (float64, bool) {
				c, ok := rep.Cell(1, bench.FamilyPureLatency)
				return c.Variants[bench.VariantFast], ok
			},
		},
		{
			// Optimistic guarded admission must land within 2× of the pure
			// fast path: guard evaluation under the seqlock cell costs at
			// most one more fast path, not a mutex round trip.
			name: "guarded-fast optimistic latency vs pure fast path at procs=1", family: bench.FamilyGuardedFast,
			op: "le", bound: 2.0, unit: "x",
			measure: func(rep *bench.MatrixReport) (float64, bool) {
				g, ok1 := rep.Cell(1, bench.FamilyGuardedFast)
				p, ok2 := rep.Cell(1, bench.FamilyPureLatency)
				if !ok1 || !ok2 || p.Variants[bench.VariantFast] <= 0 {
					return 0, false
				}
				return g.Variants[bench.VariantOptimistic] / p.Variants[bench.VariantFast], true
			},
		},
		{
			// The optimistic path must actually beat the forced mutex path
			// on its own family — otherwise the whole mechanism is overhead.
			name: "guarded-fast optimistic/mutex latency at procs=1", family: bench.FamilyGuardedFast,
			op: "ge", bound: 1.0, unit: "x",
			measure: func(rep *bench.MatrixReport) (float64, bool) {
				c, ok := rep.Cell(1, bench.FamilyGuardedFast)
				return c.Speedup, ok
			},
		},
	}
}

func TestMatrixBaselineTrajectory(t *testing.T) {
	data, err := os.ReadFile("BENCH_4.json")
	if err != nil {
		t.Fatalf("committed matrix baseline missing (run `make bench-matrix`): %v", err)
	}
	var rep bench.MatrixReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_4.json does not parse: %v", err)
	}
	if rep.Schema != bench.MatrixSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, bench.MatrixSchema)
	}
	if rep.NumCPU < 1 {
		t.Fatalf("num_cpu = %d, want >= 1", rep.NumCPU)
	}

	covered := make(map[int]bool, len(rep.Procs))
	for _, p := range rep.Procs {
		covered[p] = true
	}
	for _, p := range bench.MatrixProcs {
		if !covered[p] {
			t.Fatalf("procs sweep %v missing required setting %d", rep.Procs, p)
		}
	}

	for _, procs := range rep.Procs {
		for _, family := range bench.MatrixFamilyNames {
			c, ok := rep.Cell(procs, family)
			if !ok {
				t.Fatalf("cell (procs=%d, %s) missing from baseline", procs, family)
			}
			if c.Unit != "ops/s" && c.Unit != "ns/op" {
				t.Fatalf("cell (procs=%d, %s) has unknown unit %q", procs, family, c.Unit)
			}
			wantVariants := []string{bench.VariantSharded, bench.VariantReference}
			switch family {
			case bench.FamilyPure, bench.FamilyPureLatency:
				wantVariants = []string{bench.VariantFast, bench.VariantMutex}
			case bench.FamilyGuardedFast:
				wantVariants = []string{bench.VariantOptimistic, bench.VariantMutex}
			}
			for _, v := range wantVariants {
				if c.Variants[v] <= 0 {
					t.Fatalf("cell (procs=%d, %s) variant %q non-positive: %+v", procs, family, v, c.Variants)
				}
			}
			if c.Speedup <= 0 {
				t.Fatalf("cell (procs=%d, %s) has non-positive speedup %f", procs, family, c.Speedup)
			}
		}
	}

	for _, claim := range matrixClaims() {
		got, ok := claim.measure(&rep)
		if !ok {
			t.Errorf("claim %q: family %s cell missing from baseline", claim.name, claim.family)
			continue
		}
		holds := false
		var rel string
		switch claim.op {
		case "ge":
			holds, rel = got >= claim.bound, ">="
		case "le":
			holds, rel = got <= claim.bound, "<="
		default:
			t.Fatalf("claim %q: unknown op %q", claim.name, claim.op)
		}
		if !holds {
			t.Errorf("claim violated: %s — family %s measured %.2f%s, want %s %.2f%s",
				claim.name, claim.family, got, claim.unit, rel, claim.bound, claim.unit)
			continue
		}
		t.Logf("claim holds: %s — family %s measured %.2f%s (%s %.2f%s)",
			claim.name, claim.family, got, claim.unit, rel, claim.bound, claim.unit)
	}
}
