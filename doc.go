// Package repro is a production-quality Go reproduction of "Composing
// Concerns with a Framework Approach" (Constantinides & Elrad, ICDCS
// 2001): the Aspect Moderator framework for composing cross-cutting
// concerns — synchronization, scheduling, authentication, fault tolerance,
// auditing, metrics — around plain sequential components in open
// concurrent and distributed systems.
//
// The implementation lives under internal/: see internal/core for the
// framework façade, internal/moderator for its heart, internal/aspects for
// the concern libraries, internal/apps for the paper's applications, and
// DESIGN.md for the full inventory. bench_test.go in this directory hosts
// the benchmark per experiment of EXPERIMENTS.md.
package repro
