package repro_test

// Tier-1 guard for the committed benchmark trajectory: BENCH_2.json (the
// E12 sharded-admission-domain baseline written by `make bench`) must
// parse, declare the current schema, cover every benchmark family, and
// carry sane measurements. The contended-throughput speedup floor of 2×
// only binds when the baseline was recorded on ≥4 cores — on fewer cores
// there is no parallelism for sharding to win, and the criterion does not
// apply.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/bench"
)

func TestBenchBaselineTrajectory(t *testing.T) {
	data, err := os.ReadFile("BENCH_2.json")
	if err != nil {
		t.Fatalf("committed benchmark baseline missing (run `make bench`): %v", err)
	}
	var rep bench.DomainsReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_2.json does not parse: %v", err)
	}
	if rep.Schema != bench.DomainsSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, bench.DomainsSchema)
	}
	if rep.GoMaxProcs < 1 {
		t.Fatalf("go_max_procs = %d, want >= 1", rep.GoMaxProcs)
	}

	byName := make(map[string]bench.DomainsFamily, len(rep.Families))
	for _, f := range rep.Families {
		if _, dup := byName[f.Name]; dup {
			t.Fatalf("duplicate family %q", f.Name)
		}
		byName[f.Name] = f
	}
	for _, want := range bench.DomainsFamilyNames {
		f, ok := byName[want]
		if !ok {
			t.Fatalf("family %q missing from baseline (have %d families)", want, len(rep.Families))
		}
		if f.Sharded <= 0 || f.Reference <= 0 || f.Speedup <= 0 {
			t.Fatalf("family %q has non-positive measurements: %+v", want, f)
		}
		if f.Unit != "ops/s" && f.Unit != "ns/op" {
			t.Fatalf("family %q has unknown unit %q", want, f.Unit)
		}
	}

	if rep.GoMaxProcs >= 4 {
		if s := byName[bench.FamilyContended].Speedup; s < 2.0 {
			t.Fatalf("contended-throughput speedup = %.2fx on %d cores, want >= 2x",
				s, rep.GoMaxProcs)
		}
	} else {
		t.Logf("baseline recorded on %d core(s); the 2x contended floor binds only on >= 4 cores "+
			"(contended %.2fx, churn %.2fx)",
			rep.GoMaxProcs, byName[bench.FamilyContended].Speedup, byName[bench.FamilyChurn].Speedup)
	}
}
