package repro_test

// Tier-1 guard for the committed benchmark trajectory: BENCH_2.json (the
// E12 sharded-admission-domain baseline written by `make bench`) must
// parse, declare the current schema, cover every benchmark family, and
// carry sane measurements. The contended-throughput speedup floor of 2×
// only binds when the baseline was recorded on ≥4 cores — on fewer cores
// there is no parallelism for sharding to win, and the criterion does not
// apply.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/bench"
)

func TestBenchBaselineTrajectory(t *testing.T) {
	data, err := os.ReadFile("BENCH_2.json")
	if err != nil {
		t.Fatalf("committed benchmark baseline missing (run `make bench`): %v", err)
	}
	var rep bench.DomainsReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_2.json does not parse: %v", err)
	}
	if rep.Schema != bench.DomainsSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, bench.DomainsSchema)
	}
	if rep.GoMaxProcs < 1 {
		t.Fatalf("go_max_procs = %d, want >= 1", rep.GoMaxProcs)
	}

	byName := make(map[string]bench.DomainsFamily, len(rep.Families))
	for _, f := range rep.Families {
		if _, dup := byName[f.Name]; dup {
			t.Fatalf("duplicate family %q", f.Name)
		}
		byName[f.Name] = f
	}
	for _, want := range bench.DomainsFamilyNames {
		f, ok := byName[want]
		if !ok {
			t.Fatalf("family %q missing from baseline (have %d families)", want, len(rep.Families))
		}
		if f.Sharded <= 0 || f.Reference <= 0 || f.Speedup <= 0 {
			t.Fatalf("family %q has non-positive measurements: %+v", want, f)
		}
		if f.Unit != "ops/s" && f.Unit != "ns/op" {
			t.Fatalf("family %q has unknown unit %q", want, f.Unit)
		}
	}

	if rep.GoMaxProcs >= 4 {
		if s := byName[bench.FamilyContended].Speedup; s < 2.0 {
			t.Fatalf("contended-throughput speedup = %.2fx on %d cores, want >= 2x",
				s, rep.GoMaxProcs)
		}
	} else {
		t.Logf("baseline recorded on %d core(s); the 2x contended floor binds only on >= 4 cores "+
			"(contended %.2fx, churn %.2fx)",
			rep.GoMaxProcs, byName[bench.FamilyContended].Speedup, byName[bench.FamilyChurn].Speedup)
	}
}

// TestObsBaselineTrajectory guards BENCH_3.json (the E13 observability
// overhead baseline written by `make bench`) and its relationship to
// BENCH_2.json: the hooks-disabled moderator is the E12 contended sharded
// configuration, so its committed throughput must sit within 3% of the
// E12 number, and the hooks-enabled run at the default sampling rate must
// cost no more than 15%. `make bench` measures both files' contended
// variants interleaved in one pass, which is what makes these cross-file
// bounds enforceable on a machine with noisy absolute throughput.
func TestObsBaselineTrajectory(t *testing.T) {
	data, err := os.ReadFile("BENCH_3.json")
	if err != nil {
		t.Fatalf("committed obs baseline missing (run `make bench`): %v", err)
	}
	var rep bench.ObsReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_3.json does not parse: %v", err)
	}
	if rep.Schema != bench.ObsSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, bench.ObsSchema)
	}
	if rep.GoMaxProcs < 1 {
		t.Fatalf("go_max_procs = %d, want >= 1", rep.GoMaxProcs)
	}
	if rep.SampleEvery < 1 {
		t.Fatalf("sample_every = %d, want >= 1", rep.SampleEvery)
	}
	if rep.HooksOffOps <= 0 || rep.HooksOnOps <= 0 {
		t.Fatalf("non-positive measurements: off=%f on=%f", rep.HooksOffOps, rep.HooksOnOps)
	}
	// The committed overhead figure must be the one the two throughput
	// numbers imply — the report cannot claim a bound its data does not.
	implied := (1 - rep.HooksOnOps/rep.HooksOffOps) * 100
	if diff := implied - rep.OverheadPct; diff > 0.01 || diff < -0.01 {
		t.Fatalf("overhead_pct = %.4f but ops imply %.4f", rep.OverheadPct, implied)
	}

	b2, err := os.ReadFile("BENCH_2.json")
	if err != nil {
		t.Fatalf("BENCH_2.json missing: %v", err)
	}
	var dom bench.DomainsReport
	if err := json.Unmarshal(b2, &dom); err != nil {
		t.Fatalf("BENCH_2.json does not parse: %v", err)
	}
	var contended bench.DomainsFamily
	for _, f := range dom.Families {
		if f.Name == bench.FamilyContended {
			contended = f
		}
	}
	if contended.Name == "" {
		t.Fatal("BENCH_2.json has no contended-throughput family")
	}
	for _, k := range []string{"methods", "goroutines"} {
		if rep.Params[k] != contended.Params[k] {
			t.Fatalf("param %s = %d, but E12 contended uses %d — the overhead "+
				"comparison only holds on the identical workload",
				k, rep.Params[k], contended.Params[k])
		}
	}
	// Hooks disabled: within 3% of the E12 sharded baseline. A committed
	// pair violating this means the disabled-hook path got slower (or the
	// baselines were regenerated separately — regenerate with `make
	// bench`, which measures both interleaved).
	if floor := 0.97 * contended.Sharded; rep.HooksOffOps < floor {
		t.Fatalf("hooks-off throughput %.0f ops/s is more than 3%% below the E12 "+
			"contended sharded baseline %.0f ops/s (floor %.0f)",
			rep.HooksOffOps, contended.Sharded, floor)
	}
	// Hooks enabled at the default sampling rate: at most 15% overhead.
	if rep.OverheadPct > 15 {
		t.Fatalf("hooks-on overhead %.2f%% exceeds the 15%% budget (off %.0f, on %.0f, 1 in %d sampling)",
			rep.OverheadPct, rep.HooksOffOps, rep.HooksOnOps, rep.SampleEvery)
	}
	t.Logf("hooks-off %.0f ops/s (%.1f%% of E12 sharded), hooks-on %.0f ops/s, overhead %.2f%% (1 in %d)",
		rep.HooksOffOps, 100*rep.HooksOffOps/contended.Sharded, rep.HooksOnOps,
		rep.OverheadPct, rep.SampleEvery)
}
