// Benchmarks, one family per experiment of EXPERIMENTS.md (E1-E11).
// `go test -bench=. -benchmem` regenerates every table's raw measurements;
// `go run ./cmd/ambench` prints them in the report's shape.
package repro_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/amrpc"
	"repro/internal/apps/auction"
	"repro/internal/apps/reservation"
	"repro/internal/apps/ticket"
	"repro/internal/apps/timecard"
	"repro/internal/aspect"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/coord"
	"repro/internal/aspects/fault"
	"repro/internal/baseline/decorator"
	"repro/internal/baseline/tangled"
	"repro/internal/moderator"
	"repro/internal/proxy"
	"repro/internal/waitq"
)

func mustGuarded(b *testing.B, capacity int, opts ...moderator.Option) *ticket.Guarded {
	b.Helper()
	g, err := ticket.NewGuarded(ticket.GuardedConfig{
		Capacity:         capacity,
		ModeratorOptions: opts,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// --- E1: uncontended overhead per composition style ---

func BenchmarkE1OverheadDirect(b *testing.B) {
	s, err := ticket.NewServer(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Open(ticket.Ticket{ID: "t"}); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Assign(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1OverheadFramework(b *testing.B) {
	g := mustGuarded(b, 4)
	p := g.Proxy()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, ticket.MethodOpen, "t", "s"); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Invoke(ctx, ticket.MethodAssign); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1OverheadTangled(b *testing.B) {
	s, err := tangled.New(tangled.Config{Capacity: 4})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Open(ctx, "", ticket.Ticket{ID: "t"}); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Assign(ctx, ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1OverheadDecorator(b *testing.B) {
	srv, err := ticket.NewServer(4)
	if err != nil {
		b.Fatal(err)
	}
	inner := proxy.New(moderator.New("dc"))
	if err := inner.Bind("open", func(inv *aspect.Invocation) (any, error) {
		id, _ := inv.ArgString(0)
		return nil, srv.Open(ticket.Ticket{ID: id})
	}); err != nil {
		b.Fatal(err)
	}
	if err := inner.Bind("assign", func(*aspect.Invocation) (any, error) {
		return srv.Assign()
	}); err != nil {
		b.Fatal(err)
	}
	chain, err := decorator.Chain(inner, decorator.MutexInterceptor())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chain.Invoke(ctx, "open", "t"); err != nil {
			b.Fatal(err)
		}
		if _, err := chain.Invoke(ctx, "assign"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: throughput under contention (parallel producers/consumers) ---

func benchContention(b *testing.B, capacity int, framework bool) {
	ctx := context.Background()
	var open func(string) error
	var assign func() error
	if framework {
		g := mustGuarded(b, capacity)
		p := g.Proxy()
		open = func(id string) error {
			_, err := p.Invoke(ctx, ticket.MethodOpen, id, "s")
			return err
		}
		assign = func() error {
			_, err := p.Invoke(ctx, ticket.MethodAssign)
			return err
		}
	} else {
		s, err := tangled.New(tangled.Config{Capacity: capacity})
		if err != nil {
			b.Fatal(err)
		}
		open = func(id string) error { return s.Open(ctx, "", ticket.Ticket{ID: id}) }
		assign = func() error {
			_, err := s.Assign(ctx, "")
			return err
		}
	}
	// Each iteration is one open+assign pair performed by the same
	// goroutine; RunParallel provides the producer/consumer contention.
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := open("t"); err != nil {
				b.Error(err)
				return
			}
			if err := assign(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkE2ContentionFramework(b *testing.B) {
	for _, k := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) { benchContention(b, k, true) })
	}
}

func BenchmarkE2ContentionTangled(b *testing.B) {
	for _, k := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) { benchContention(b, k, false) })
	}
}

// --- E3: aspect chain length ---

func BenchmarkE3ChainLength(b *testing.B) {
	for _, l := range []int{0, 1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("aspects%d", l), func(b *testing.B) {
			mod := moderator.New("chain")
			for k := 0; k < l; k++ {
				kind := aspect.Kind(fmt.Sprintf("noop-%d", k))
				if err := mod.Register("m", kind, aspect.New("noop", kind, nil, nil)); err != nil {
					b.Fatal(err)
				}
			}
			p := proxy.New(mod)
			if err := p.Bind("m", func(*aspect.Invocation) (any, error) { return nil, nil }); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Invoke(ctx, "m"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E4: the authentication layer's cost vs tangled auth ---

func BenchmarkE4AuthLayerFramework(b *testing.B) {
	g := mustGuarded(b, 4)
	store := auth.NewTokenStore()
	tok := store.Issue("alice", "client")
	if err := g.EnableAuthentication(store); err != nil {
		b.Fatal(err)
	}
	p := g.Proxy()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inv := aspect.NewInvocation(ctx, p.Name(), ticket.MethodOpen, []any{"t", "s"})
		auth.WithToken(inv, tok)
		if _, err := p.Call(inv); err != nil {
			b.Fatal(err)
		}
		inv2 := aspect.NewInvocation(ctx, p.Name(), ticket.MethodAssign, nil)
		auth.WithToken(inv2, tok)
		if _, err := p.Call(inv2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4AuthLayerTangled(b *testing.B) {
	s, err := tangled.New(tangled.Config{Capacity: 4, Authenticate: true})
	if err != nil {
		b.Fatal(err)
	}
	s.IssueToken("tok", "alice")
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Open(ctx, "tok", ticket.Ticket{ID: "t"}); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Assign(ctx, "tok"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: wake policy under a capacity-1 buffer ---

func BenchmarkE5WaitPolicy(b *testing.B) {
	for _, pol := range []waitq.Policy{waitq.FIFO, waitq.LIFO, waitq.Priority} {
		b.Run(pol.String(), func(b *testing.B) {
			g := mustGuarded(b, 1,
				moderator.WithWakePolicy(pol), moderator.WithWakeMode(moderator.WakeSingle))
			p := g.Proxy()
			ctx := context.Background()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := p.Invoke(ctx, ticket.MethodOpen, "t", "s"); err != nil {
						b.Error(err)
						return
					}
					if _, err := p.Invoke(ctx, ticket.MethodAssign); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// --- E6: priority classification cost ---

func BenchmarkE6Priority(b *testing.B) {
	g := mustGuarded(b, 1024,
		moderator.WithWakePolicy(waitq.Priority), moderator.WithWakeMode(moderator.WakeSingle))
	p := g.Proxy()
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		prio := 0
		for pb.Next() {
			prio = (prio + 1) % 10
			if _, err := p.InvokeWithPriority(ctx, prio, ticket.MethodOpen, "t", "s"); err != nil {
				b.Error(err)
				return
			}
			if _, err := p.InvokeWithPriority(ctx, prio, ticket.MethodAssign); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// --- E7: local vs remote invocation ---

func BenchmarkE7RemoteLocal(b *testing.B) {
	g := mustGuarded(b, 4)
	p := g.Proxy()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, ticket.MethodOpen, "t", "s"); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Invoke(ctx, ticket.MethodAssign); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7RemoteLoopback(b *testing.B) {
	g := mustGuarded(b, 4)
	srv := amrpc.NewServer()
	if err := srv.Register(g.Proxy()); err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()
	client, err := amrpc.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		_ = client.Close()
		srv.Close()
		wg.Wait()
	}()
	stub := client.Component(ticket.ComponentName)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stub.Invoke(ctx, ticket.MethodOpen, "t", "s"); err != nil {
			b.Fatal(err)
		}
		if _, err := stub.Invoke(ctx, ticket.MethodAssign); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: fault-tolerance aspects ---

func BenchmarkE8FaultBreakerHealthy(b *testing.B) {
	p := proxy.New(moderator.New("svc"))
	if err := p.Bind("m", func(*aspect.Invocation) (any, error) { return nil, nil }); err != nil {
		b.Fatal(err)
	}
	cb, err := fault.NewCircuitBreaker(fault.CircuitBreakerConfig{Threshold: 5, Cooldown: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Moderator().Register("m", aspect.KindFaultTolerance, cb.Aspect("cb")); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, "m"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8FaultBreakerOpenShed(b *testing.B) {
	p := proxy.New(moderator.New("svc"))
	boom := errors.New("down")
	if err := p.Bind("m", func(*aspect.Invocation) (any, error) { return nil, boom }); err != nil {
		b.Fatal(err)
	}
	cb, err := fault.NewCircuitBreaker(fault.CircuitBreakerConfig{Threshold: 1, Cooldown: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Moderator().Register("m", aspect.KindFaultTolerance, cb.Aspect("cb")); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	_, _ = p.Invoke(ctx, "m") // trip it
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, "m"); !errors.Is(err, fault.ErrCircuitOpen) {
			b.Fatalf("want open circuit, got %v", err)
		}
	}
}

func BenchmarkE8FaultRetryTransient(b *testing.B) {
	calls := 0
	p := proxy.New(moderator.New("svc"))
	if err := p.Bind("m", func(*aspect.Invocation) (any, error) {
		calls++
		if calls%2 == 0 { // every second raw call fails
			return nil, errors.New("transient")
		}
		return nil, nil
	}); err != nil {
		b.Fatal(err)
	}
	r, err := fault.Retry(p, fault.RetryPolicy{MaxAttempts: 3})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Invoke(ctx, "m"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: recomposition churn ---

func BenchmarkE9Churn(b *testing.B) {
	g := mustGuarded(b, 16)
	p := g.Proxy()
	mod := g.Moderator()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			layer := fmt.Sprintf("churn-%d", i)
			if err := mod.AddLayer(layer, moderator.Outermost); err != nil {
				return
			}
			_ = mod.RegisterIn(layer, ticket.MethodOpen, aspect.KindAudit,
				aspect.New("churn", aspect.KindAudit, nil, nil))
			_ = mod.RemoveLayer(layer)
		}
	}()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, ticket.MethodOpen, "t", "s"); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Invoke(ctx, ticket.MethodAssign); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// --- E10: the same aspects reused across all three applications ---

func BenchmarkE10ReuseTicket(b *testing.B) {
	g := mustGuarded(b, 8)
	p := g.Proxy()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, ticket.MethodOpen, "t", "s"); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Invoke(ctx, ticket.MethodAssign); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10ReuseReservation(b *testing.B) {
	g, err := reservation.NewGuarded(reservation.GuardedConfig{})
	if err != nil {
		b.Fatal(err)
	}
	p := g.Proxy()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, reservation.MethodReserve, "R1C1", "alice"); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Invoke(ctx, reservation.MethodCancel, "R1C1", "alice"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10ReuseAuction(b *testing.B) {
	g, err := auction.NewGuarded(auction.GuardedConfig{})
	if err != nil {
		b.Fatal(err)
	}
	p := g.Proxy()
	ctx := context.Background()
	if _, err := p.Invoke(ctx, auction.MethodList, "lot", 1.0); err != nil {
		b.Fatal(err)
	}
	bid := 1.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bid++
		if _, err := p.Invoke(ctx, auction.MethodBid, "lot", "bea", bid); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10ReuseTimecard(b *testing.B) {
	store := auth.NewTokenStore()
	tok := store.Issue("alice", timecard.RoleEmployee)
	g, err := timecard.NewGuarded(timecard.GuardedConfig{Authenticator: store})
	if err != nil {
		b.Fatal(err)
	}
	p := g.Proxy()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inv := aspect.NewInvocation(ctx, p.Name(), timecard.MethodPunchIn, nil)
		auth.WithToken(inv, tok)
		if _, err := p.Call(inv); err != nil {
			b.Fatal(err)
		}
		inv2 := aspect.NewInvocation(ctx, p.Name(), timecard.MethodPunchOut, nil)
		auth.WithToken(inv2, tok)
		if _, err := p.Call(inv2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: coordination aspects (extension) ---

func BenchmarkE11BarrierCohorts(b *testing.B) {
	for _, parties := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parties%d", parties), func(b *testing.B) {
			bar, err := coord.NewBarrier(parties, "m")
			if err != nil {
				b.Fatal(err)
			}
			mod := moderator.New("comp")
			if err := mod.Register("m", aspect.KindSynchronization, bar.Aspect("barrier")); err != nil {
				b.Fatal(err)
			}
			p := proxy.New(mod)
			if err := p.Bind("m", func(*aspect.Invocation) (any, error) { return nil, nil }); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			var wg sync.WaitGroup
			b.ResetTimer()
			// Each iteration is one cohort: all parties cross once.
			for i := 0; i < b.N; i++ {
				wg.Add(parties)
				for w := 0; w < parties; w++ {
					go func() {
						defer wg.Done()
						if _, err := p.Invoke(ctx, "m"); err != nil {
							b.Error(err)
						}
					}()
				}
				wg.Wait()
			}
		})
	}
}

func BenchmarkE11RendezvousPairs(b *testing.B) {
	r, err := coord.NewRendezvous("send", "recv")
	if err != nil {
		b.Fatal(err)
	}
	mod := moderator.New("comp")
	if err := mod.Register("send", aspect.KindSynchronization, r.LeftAspect("l")); err != nil {
		b.Fatal(err)
	}
	if err := mod.Register("recv", aspect.KindSynchronization, r.RightAspect("r")); err != nil {
		b.Fatal(err)
	}
	p := proxy.New(mod)
	body := func(*aspect.Invocation) (any, error) { return nil, nil }
	if err := p.Bind("send", body); err != nil {
		b.Fatal(err)
	}
	if err := p.Bind("recv", body); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			if _, err := p.Invoke(ctx, "recv"); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, "send"); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}
