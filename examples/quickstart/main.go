// Quickstart: the smallest complete use of the Aspect Moderator framework.
//
// A counter component exposes an increment service. Its functional code is
// a plain, unsynchronized integer — safe under concurrency only because a
// mutual-exclusion aspect guards the participating method.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"repro/internal/aspect"
	"repro/internal/aspects/syncguard"
	"repro/internal/core"
)

func main() {
	// The functional component: no locks, no concurrency code.
	counter := 0

	// Declare the guarded component: bind the service, attach a
	// synchronization aspect from the syncguard library.
	mutex := syncguard.NewMutex("inc")
	b := core.NewComponent("counter")
	b.Bind("inc", func(*aspect.Invocation) (any, error) {
		counter++ // safe: the mutex aspect admits one caller at a time
		return counter, nil
	})
	b.Use("inc", aspect.KindSynchronization, mutex.Aspect("inc-mutex"))
	comp, err := b.Build()
	if err != nil {
		log.Fatalf("build: %v", err)
	}

	// Hammer it from many goroutines through the proxy.
	p := comp.Proxy()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				if _, err := p.Invoke(context.Background(), "inc"); err != nil {
					log.Fatalf("invoke: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	fmt.Printf("final counter: %d (want %d)\n", counter, workers*per)
	stats := comp.Moderator().Stats()
	fmt.Printf("moderator: %d admissions, %d blocks, %d aborts\n",
		stats.Admissions, stats.Blocks, stats.Aborts)
	if counter != workers*per {
		log.Fatal("counter torn — the aspect failed (this should never print)")
	}
}
