// Cluster: the distributed admission plane in one process tree — a naming
// service and three moderator replicas that partition the admission
// domains of a guarded component between them. Calls enter through ANY
// node and are transparently forwarded to each domain's owner under a
// fenced lease term; when a replica leaves, the ring reassigns its
// domains to the survivors at a higher term and routing follows without
// the callers noticing.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/aspect"
	"repro/internal/cluster"
	"repro/internal/moderator"
	"repro/internal/naming"
	"repro/internal/proxy"
)

// board is the shared functional core: every replica hosts the same
// guarded component, but only a domain's owner admits its methods.
type board struct {
	mu      sync.Mutex
	posts   []string
	tallies int
}

func newBoardProxy(b *board) *proxy.Proxy {
	mod := moderator.New("board")
	p := proxy.New(mod)
	for _, m := range []string{"post", "tally"} {
		method := m
		if err := mod.Register(method, aspect.KindSynchronization,
			aspect.New("gate-"+method, aspect.KindSynchronization,
				func(inv *aspect.Invocation) aspect.Verdict { return aspect.Resume },
				func(inv *aspect.Invocation) {})); err != nil {
			log.Fatal(err)
		}
	}
	if err := p.Bind("post", func(inv *aspect.Invocation) (any, error) {
		msg, err := inv.ArgString(0)
		if err != nil {
			return nil, err
		}
		b.mu.Lock()
		defer b.mu.Unlock()
		b.posts = append(b.posts, msg)
		return len(b.posts), nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := p.Bind("tally", func(inv *aspect.Invocation) (any, error) {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.tallies++
		return b.tallies, nil
	}); err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	// 1. Naming service: membership, domain leases, fencing terms.
	nsrv := naming.NewServer(nil)
	nln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = nsrv.Serve(nln) }()
	defer nsrv.Close()
	fmt.Printf("naming service on %s\n", nln.Addr())

	// 2. Three replicas of the same guarded component. Each method is its
	// own admission domain, so the ring splits ownership across nodes.
	domains := map[string]string{"post": "posts", "tally": "tallies"}
	mkNode := func(id string) (*board, *cluster.Node) {
		b := &board{}
		n, err := cluster.Start(cluster.Config{
			ID:         id,
			Local:      newBoardProxy(b),
			Domains:    domains,
			Naming:     nln.Addr().String(),
			Idempotent: true,
			LeaseTTL:   time.Second,
			MemberTTL:  time.Second,
			Heartbeat:  200 * time.Millisecond,
		}, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		return b, n
	}
	boards := map[string]*board{}
	var nodes []*cluster.Node
	for _, id := range []string{"node-a", "node-b", "node-c"} {
		b, n := mkNode(id)
		boards[id] = b
		nodes = append(nodes, n)
	}

	// Wait for the plane to converge: full membership everywhere and each
	// domain held by the node the ring designates (the first beats may
	// briefly assign everything to whichever node registered first).
	waitOwners := func() map[string]cluster.DomainStatus {
		ids := make([]string, 0, len(nodes))
		for _, n := range nodes {
			ids = append(ids, n.ID())
		}
		ring := naming.NewRing(0, ids...)
		for deadline := time.Now().Add(5 * time.Second); ; {
			owners := map[string]cluster.DomainStatus{}
			st := nodes[0].Status()
			for _, d := range st.Domains {
				if want, _ := ring.Owner(d.Domain); d.Owner == want {
					owners[d.Domain] = d
				}
			}
			if len(owners) == len(domains) && len(st.Members) == len(nodes) {
				return owners
			}
			if time.Now().After(deadline) {
				log.Fatal("cluster never converged")
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	owners := waitOwners()
	fmt.Println("\nownership after convergence:")
	for d, st := range owners {
		fmt.Printf("  domain %-8s -> %s (term %d)\n", d, st.Owner, st.Term)
	}

	// 3. Drive both methods through node-a only: calls for domains it does
	// not own are forwarded to the owner under its fenced term.
	ctx := context.Background()
	for k := 0; k < 6; k++ {
		if _, err := nodes[0].Invoke(ctx, "post", fmt.Sprintf("msg-%d", k)); err != nil {
			log.Fatal(err)
		}
		if _, err := nodes[0].Invoke(ctx, "tally"); err != nil {
			log.Fatal(err)
		}
	}
	st := nodes[0].Status()
	fmt.Printf("\nnode-a after 12 calls: local=%d forwarded=%d\n", st.LocalCalls, st.Forwards)
	for id, b := range boards {
		b.mu.Lock()
		fmt.Printf("  %s backend: %d posts, %d tallies\n", id, len(b.posts), b.tallies)
		b.mu.Unlock()
	}

	// 4. Failover: retire the owner of "posts". The ring reassigns the
	// domain to a survivor at a strictly higher term; the stale term is
	// fenced out forever.
	victimID := owners["posts"].Owner
	oldTerm := owners["posts"].Term
	var survivors []*cluster.Node
	for _, n := range nodes {
		if n.ID() == victimID {
			fmt.Printf("\nretiring %s (owner of \"posts\" at term %d)...\n", victimID, oldTerm)
			n.Close()
		} else {
			survivors = append(survivors, n)
		}
	}
	nodes = survivors

	for k := 6; k < 12; k++ {
		cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		_, err := nodes[0].Invoke(cctx, "post", fmt.Sprintf("msg-%d", k))
		cancel()
		if err != nil {
			log.Fatal(err)
		}
	}
	owners = map[string]cluster.DomainStatus{}
	for _, d := range nodes[0].Status().Domains {
		owners[d.Domain] = d
	}
	fmt.Printf("\"posts\" now owned by %s at term %d (was %s at term %d)\n",
		owners["posts"].Owner, owners["posts"].Term, victimID, oldTerm)

	total := 0
	for _, b := range boards {
		b.mu.Lock()
		total += len(b.posts)
		b.mu.Unlock()
	}
	fmt.Printf("12 posts driven, %d landed across the cluster: zero lost, zero duplicated\n", total)

	for _, n := range nodes {
		n.Close()
	}
	fmt.Println("shut down cleanly")
}
