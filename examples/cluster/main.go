// Cluster: the distributed admission plane in one process tree — a naming
// service and three moderator replicas that partition the admission
// domains of a guarded component between them. Calls enter through ANY
// node and are transparently forwarded to each domain's owner under a
// fenced lease term; when a replica leaves, the ring reassigns its
// domains to the survivors at a higher term and routing follows without
// the callers noticing.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/aspect"
	"repro/internal/cluster"
	"repro/internal/moderator"
	"repro/internal/naming"
	"repro/internal/proxy"
)

// board is the shared functional core: every replica hosts the same
// guarded component, but only a domain's owner admits its methods.
type board struct {
	mu      sync.Mutex
	posts   []string
	tallies int
}

// boardState is the snapshot payload the state-sync plane ships on a
// graceful handoff: the board's full domain state, JSON-encoded.
type boardState struct {
	Posts   []string `json:"posts"`
	Tallies int      `json:"tallies"`
}

func (b *board) snapshot(domain string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var st boardState
	if domain == "posts" {
		st.Posts = append([]string(nil), b.posts...)
	} else {
		st.Tallies = b.tallies
	}
	return json.Marshal(st)
}

func (b *board) restore(domain string, data []byte) error {
	var st boardState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if domain == "posts" {
		b.posts = st.Posts
	} else {
		b.tallies = st.Tallies
	}
	return nil
}

func newBoardProxy(b *board) *proxy.Proxy {
	mod := moderator.New("board")
	p := proxy.New(mod)
	for _, m := range []string{"post", "tally"} {
		method := m
		if err := mod.Register(method, aspect.KindSynchronization,
			aspect.New("gate-"+method, aspect.KindSynchronization,
				func(inv *aspect.Invocation) aspect.Verdict { return aspect.Resume },
				func(inv *aspect.Invocation) {})); err != nil {
			log.Fatal(err)
		}
	}
	if err := p.Bind("post", func(inv *aspect.Invocation) (any, error) {
		msg, err := inv.ArgString(0)
		if err != nil {
			return nil, err
		}
		b.mu.Lock()
		defer b.mu.Unlock()
		b.posts = append(b.posts, msg)
		return len(b.posts), nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := p.Bind("tally", func(inv *aspect.Invocation) (any, error) {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.tallies++
		return b.tallies, nil
	}); err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	// 1. Naming service: membership, domain leases, fencing terms.
	nsrv := naming.NewServer(nil)
	nln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = nsrv.Serve(nln) }()
	defer nsrv.Close()
	fmt.Printf("naming service on %s\n", nln.Addr())

	// 2. Three replicas of the same guarded component. Each method is its
	// own admission domain, so the ring splits ownership across nodes.
	domains := map[string]string{"post": "posts", "tally": "tallies"}
	mkNode := func(id string) (*board, *cluster.Node) {
		b := &board{}
		n, err := cluster.Start(cluster.Config{
			ID:         id,
			Local:      newBoardProxy(b),
			Domains:    domains,
			Naming:     nln.Addr().String(),
			Idempotent: true,
			LeaseTTL:   time.Second,
			MemberTTL:  time.Second,
			Heartbeat:  200 * time.Millisecond,
			Snapshot:   b.snapshot,
			Restore:    b.restore,
		}, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		return b, n
	}
	boards := map[string]*board{}
	var nodes []*cluster.Node
	for _, id := range []string{"node-a", "node-b", "node-c"} {
		b, n := mkNode(id)
		boards[id] = b
		nodes = append(nodes, n)
	}

	// Wait for the plane to converge: full membership everywhere and each
	// domain held by the node the ring designates (the first beats may
	// briefly assign everything to whichever node registered first).
	waitOwners := func() map[string]cluster.DomainStatus {
		ids := make([]string, 0, len(nodes))
		for _, n := range nodes {
			ids = append(ids, n.ID())
		}
		ring := naming.NewRing(0, ids...)
		for deadline := time.Now().Add(5 * time.Second); ; {
			owners := map[string]cluster.DomainStatus{}
			st := nodes[0].Status()
			for _, d := range st.Domains {
				if want, _ := ring.Owner(d.Domain); d.Owner == want {
					owners[d.Domain] = d
				}
			}
			if len(owners) == len(domains) && len(st.Members) == len(nodes) {
				return owners
			}
			if time.Now().After(deadline) {
				log.Fatal("cluster never converged")
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	owners := waitOwners()
	fmt.Println("\nownership after convergence:")
	for d, st := range owners {
		fmt.Printf("  domain %-8s -> %s (term %d)\n", d, st.Owner, st.Term)
	}

	// 3. Drive both methods through node-a only: calls for domains it does
	// not own are forwarded to the owner under its fenced term.
	ctx := context.Background()
	for k := 0; k < 6; k++ {
		if _, err := nodes[0].Invoke(ctx, "post", fmt.Sprintf("msg-%d", k)); err != nil {
			log.Fatal(err)
		}
		if _, err := nodes[0].Invoke(ctx, "tally"); err != nil {
			log.Fatal(err)
		}
	}
	st := nodes[0].Status()
	fmt.Printf("\nnode-a after 12 calls: local=%d forwarded=%d\n", st.LocalCalls, st.Forwards)
	for id, b := range boards {
		b.mu.Lock()
		fmt.Printf("  %s backend: %d posts, %d tallies\n", id, len(b.posts), b.tallies)
		b.mu.Unlock()
	}

	// 4. Graceful handoff: retire the owner of "posts". Before the lease
	// moves, the leaving node flushes a state snapshot to its ring
	// successor and releases with a barrier — the new owner resumes the
	// board's state, not just the domain's admission.
	victimID := owners["posts"].Owner
	oldTerm := owners["posts"].Term
	var survivors []*cluster.Node
	for _, n := range nodes {
		if n.ID() == victimID {
			fmt.Printf("\nretiring %s (owner of \"posts\" at term %d)...\n", victimID, oldTerm)
			n.Close()
		} else {
			survivors = append(survivors, n)
		}
	}
	nodes = survivors

	for k := 6; k < 12; k++ {
		cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		_, err := nodes[0].Invoke(cctx, "post", fmt.Sprintf("msg-%d", k))
		cancel()
		if err != nil {
			log.Fatal(err)
		}
	}
	ownerOf := func(domain string) (*cluster.Node, cluster.DomainStatus) {
		for _, d := range nodes[0].Status().Domains {
			if d.Domain != domain {
				continue
			}
			for _, n := range nodes {
				if n.ID() == d.Owner {
					return n, d
				}
			}
		}
		log.Fatalf("no live owner for %q", domain)
		return nil, cluster.DomainStatus{}
	}
	newOwner, d := ownerOf("posts")
	fmt.Printf("\"posts\" now owned by %s at term %d (was %s at term %d)\n",
		d.Owner, d.Term, victimID, oldTerm)
	for _, s := range newOwner.SyncStatus() {
		if s.Domain == "posts" && s.Restored {
			fmt.Printf("state resumed via snapshot on %s: %d posts survived the graceful handoff\n",
				d.Owner, postCount(boards[d.Owner]))
		}
	}

	// 5. Hard kill mid-run: no goodbye, no snapshot flush. The streamed
	// effect log on the ring successor is the only carrier; after the
	// lease expires, the next owner replays the suffix through its own
	// guarded component and serving resumes with the state intact.
	time.Sleep(300 * time.Millisecond) // let replication acks drain
	crashID := d.Owner
	fmt.Printf("\nhard-killing %s mid-run (owner of \"posts\" at term %d)...\n", crashID, d.Term)
	newOwner.Fail()
	var remaining []*cluster.Node
	for _, n := range nodes {
		if n.ID() != crashID {
			remaining = append(remaining, n)
		}
	}
	nodes = remaining

	for k := 12; k < 18; k++ {
		cctx, cancel := context.WithTimeout(ctx, 15*time.Second)
		_, err := nodes[0].Invoke(cctx, "post", fmt.Sprintf("msg-%d", k))
		cancel()
		if err != nil {
			log.Fatal(err)
		}
	}
	finalOwner, fd := ownerOf("posts")
	fb := boards[fd.Owner]
	fb.mu.Lock()
	surviving := append([]string(nil), fb.posts...)
	fb.mu.Unlock()
	fmt.Printf("\"posts\" now owned by %s at term %d — surviving state after the crash:\n", fd.Owner, fd.Term)
	fmt.Printf("  %d posts on the new owner (first %q, last %q)\n",
		len(surviving), surviving[0], surviving[len(surviving)-1])
	for _, s := range finalOwner.SyncStatus() {
		if s.Domain != "posts" {
			continue
		}
		switch {
		case s.CatchupApplied > 0:
			fmt.Printf("  %d of them replayed from the replicated effect log\n", s.CatchupApplied)
		case s.Restored:
			fmt.Println("  recovered from the successor's replicated snapshot baseline")
		}
	}

	for _, n := range nodes {
		n.Close()
	}
	fmt.Println("shut down cleanly")
}

func postCount(b *board) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.posts)
}
