// Ticketing: the paper's running example end to end.
//
// A trouble-ticketing server (bounded buffer, Section 4) is composed with
// synchronization, audit, and metrics aspects; concurrent clients open
// tickets while agents assign them. The functional component contains no
// interaction code at all — every concern shown in the output was attached
// by the framework.
//
// Run with:
//
//	go run ./examples/ticketing
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"repro/internal/apps/ticket"
	"repro/internal/aspects/audit"
	"repro/internal/aspects/metrics"
)

func main() {
	trail, err := audit.NewTrail(16)
	if err != nil {
		log.Fatal(err)
	}
	rec := metrics.NewRecorder()
	g, err := ticket.NewGuarded(ticket.GuardedConfig{
		Capacity: 4,
		Audit:    trail,
		Metrics:  rec,
	})
	if err != nil {
		log.Fatal(err)
	}

	p := g.Proxy()
	const clients, agents, perClient = 3, 2, 40
	total := clients * perClient

	var wg sync.WaitGroup
	// Clients open tickets (producers).
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				id := fmt.Sprintf("TT-%d-%03d", c, k)
				if _, err := p.Invoke(context.Background(), ticket.MethodOpen, id, "printer on fire"); err != nil {
					log.Fatalf("open: %v", err)
				}
			}
		}(c)
	}
	// Agents assign tickets (consumers).
	assigned := make(chan ticket.Ticket, total)
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < total/agents; k++ {
				res, err := p.Invoke(context.Background(), ticket.MethodAssign)
				if err != nil {
					log.Fatalf("assign: %v", err)
				}
				assigned <- res.(ticket.Ticket)
			}
		}()
	}
	wg.Wait()
	close(assigned)

	distinct := make(map[string]bool, total)
	for t := range assigned {
		distinct[t.ID] = true
	}
	fmt.Printf("tickets opened:   %d\n", g.Server().Opened())
	fmt.Printf("tickets assigned: %d (distinct: %d)\n", g.Server().Assigned(), len(distinct))
	fmt.Printf("buffer residue:   %d\n\n", g.Server().Size())

	stats := g.Moderator().Stats()
	fmt.Printf("moderator: %d admissions, %d blocks (capacity pressure), %d aborts\n\n",
		stats.Admissions, stats.Blocks, stats.Aborts)

	fmt.Println("metrics (composed as an aspect — no code in the server):")
	fmt.Print(rec.Report())

	fmt.Println("last audit events (composed as an aspect):")
	for _, e := range trail.Events() {
		fmt.Printf("  #%04d %-6s %-6s inv=%d\n", e.Seq, e.Method, e.Phase, e.Invocation)
	}
}
