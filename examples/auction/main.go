// Auction: an on-line auction composed from the same aspect libraries as
// the other examples — role-based authorization, fair-share scheduling of
// bidders, readers-writer synchronization, and metrics — around a plain
// sequential ledger.
//
// Run with:
//
//	go run ./examples/auction
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"repro/internal/apps/auction"
	"repro/internal/aspect"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/metrics"
)

func main() {
	store := auth.NewTokenStore()
	sellerTok := store.Issue("sotheby", "seller")
	acl := auth.ACL{
		auction.MethodList:  {"seller"},
		auction.MethodClose: {"seller"},
		auction.MethodBid:   {"bidder"},
		auction.MethodGet:   {"seller", "bidder"},
	}
	rec := metrics.NewRecorder()
	g, err := auction.NewGuarded(auction.GuardedConfig{
		FairSharePerBidder: 2,
		Authenticator:      store,
		ACL:                acl,
		Metrics:            rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	p := g.Proxy()
	ctx := context.Background()

	call := func(tok, method string, args ...any) (any, error) {
		inv := aspect.NewInvocation(ctx, p.Name(), method, args)
		auth.WithToken(inv, tok)
		return p.Call(inv)
	}

	// The seller lists two lots.
	for _, lot := range []string{"amber-vase", "walnut-desk"} {
		if _, err := call(sellerTok, auction.MethodList, lot, 50.0); err != nil {
			log.Fatalf("list %s: %v", lot, err)
		}
	}
	fmt.Println("lots listed:", g.House().Lots())

	// A bidder may not list; authorization is an aspect, not an if-check
	// in the ledger.
	bidderTok := store.Issue("bidder-0", "bidder")
	if _, err := call(bidderTok, auction.MethodList, "forged-lot", 1.0); errors.Is(err, auth.ErrPermissionDenied) {
		fmt.Println("bidder listing a lot: permission denied (authorization aspect)")
	} else {
		log.Fatalf("expected permission denied, got %v", err)
	}

	// Five bidders race on both lots.
	const bidders, rounds = 5, 10
	tokens := make([]string, bidders)
	for b := range tokens {
		tokens[b] = store.Issue(fmt.Sprintf("bidder-%d", b), "bidder")
	}
	var wg sync.WaitGroup
	for b := 0; b < bidders; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, lot := range []string{"amber-vase", "walnut-desk"} {
					amount := float64(50 + r*bidders + b)
					_, err := call(tokens[b], auction.MethodBid, lot, nil, amount)
					if err != nil && !errors.Is(err, auction.ErrBidTooLow) {
						log.Fatalf("bid: %v", err)
					}
				}
			}
		}(b)
	}
	wg.Wait()

	// The seller closes both lots.
	for _, lot := range []string{"amber-vase", "walnut-desk"} {
		res, err := call(sellerTok, auction.MethodClose, lot)
		if err != nil {
			log.Fatalf("close %s: %v", lot, err)
		}
		final := res.(auction.Lot)
		fmt.Printf("%s: winner %s at %.0f (%d accepted bids)\n",
			lot, final.BestBidder, final.BestBid, final.Bids)
	}

	fmt.Println("\nmetrics (aspect-composed):")
	fmt.Print(rec.Report())
}
