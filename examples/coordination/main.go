// Coordination: multi-party interaction composed as aspects — a barrier
// that releases analysts in cohorts, and a rendezvous that pairs producers
// of results with the reviewers who must co-sign them. The functional
// component knows nothing about parties, cohorts, or pairing; both
// protocols live entirely in the coord aspect library (an extension
// exercising the "coordination" interaction property the paper lists in
// Section 2).
//
// Run with:
//
//	go run ./examples/coordination
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"repro/internal/aspect"
	"repro/internal/aspects/coord"
	"repro/internal/core"
)

func main() {
	barrierDemo()
	fmt.Println()
	rendezvousDemo()
}

// barrierDemo: six analysts must start each analysis round together.
func barrierDemo() {
	const parties, rounds = 3, 4
	barrier, err := coord.NewBarrier(parties, "analyze")
	if err != nil {
		log.Fatal(err)
	}
	var roundsStarted atomic.Int64

	b := core.NewComponent("analysis")
	b.Bind("analyze", func(*aspect.Invocation) (any, error) {
		roundsStarted.Add(1)
		return nil, nil
	})
	b.Use("analyze", aspect.KindSynchronization, barrier.Aspect("cohort-barrier"))
	comp, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	p := comp.Proxy()

	fmt.Printf("barrier: %d analysts, %d rounds — nobody starts a round alone\n", parties, rounds)
	var wg sync.WaitGroup
	for a := 0; a < parties; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := p.Invoke(context.Background(), "analyze"); err != nil {
					log.Fatalf("analyst %d: %v", a, err)
				}
			}
		}(a)
	}
	wg.Wait()
	fmt.Printf("  %d analyses ran across %d complete cohorts (generation %d)\n",
		roundsStarted.Load(), barrier.Generation(), barrier.Generation())
}

// rendezvousDemo: every result submission pairs with exactly one review.
func rendezvousDemo() {
	const pairs = 5
	rdv, err := coord.NewRendezvous("submit", "review")
	if err != nil {
		log.Fatal(err)
	}
	var submissions, reviews atomic.Int64

	b := core.NewComponent("signoff")
	b.Bind("submit", func(*aspect.Invocation) (any, error) {
		submissions.Add(1)
		return nil, nil
	})
	b.Bind("review", func(*aspect.Invocation) (any, error) {
		reviews.Add(1)
		return nil, nil
	})
	b.Use("submit", aspect.KindSynchronization, rdv.LeftAspect("rdv-submit"))
	b.Use("review", aspect.KindSynchronization, rdv.RightAspect("rdv-review"))
	comp, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	p := comp.Proxy()

	fmt.Printf("rendezvous: %d submissions, each pairing with one review\n", pairs)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for k := 0; k < pairs; k++ {
			if _, err := p.Invoke(context.Background(), "submit"); err != nil {
				log.Fatalf("submit %d: %v", k, err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for k := 0; k < pairs; k++ {
			if _, err := p.Invoke(context.Background(), "review"); err != nil {
				log.Fatalf("review %d: %v", k, err)
			}
		}
	}()
	wg.Wait()
	fmt.Printf("  %d submissions co-signed by %d reviews — in lock-step, no queueing\n",
		submissions.Load(), reviews.Load())
}
