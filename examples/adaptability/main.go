// Adaptability: the paper's Figures 13-18 as a running program.
//
// A ticket server starts with synchronization only. At runtime — with
// invocations still flowing — an authentication concern is layered
// outermost: the ExtendedAspectModerator / ExtendedAspectFactory scenario,
// realized as moderator layers instead of subclasses. No functional code
// changes hands.
//
// Run with:
//
//	go run ./examples/adaptability
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/internal/apps/ticket"
	"repro/internal/aspect"
	"repro/internal/aspects/auth"
)

func main() {
	g, err := ticket.NewGuarded(ticket.GuardedConfig{Capacity: 8})
	if err != nil {
		log.Fatal(err)
	}
	p := g.Proxy()
	ctx := context.Background()

	fmt.Println("phase 1: synchronization only")
	fmt.Printf("  layers: %v\n", g.Moderator().Layers())
	if _, err := p.Invoke(ctx, ticket.MethodOpen, "TT-1", "anonymous ticket"); err != nil {
		log.Fatalf("open: %v", err)
	}
	fmt.Println("  anonymous open: accepted")

	fmt.Println("\nphase 2: authentication layered on, at runtime")
	store := auth.NewTokenStore()
	aliceTok := store.Issue("alice", "client")
	if err := g.EnableAuthentication(store); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  layers: %v\n", g.Moderator().Layers())
	fmt.Print("  evaluation order for open: ")
	for i, a := range g.Moderator().Aspects(ticket.MethodOpen) {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Printf("%s", a.Kind())
	}
	fmt.Println()

	if _, err := p.Invoke(ctx, ticket.MethodOpen, "TT-2", "anonymous again"); errors.Is(err, auth.ErrUnauthenticated) {
		fmt.Println("  anonymous open: rejected (unauthenticated)")
	} else {
		log.Fatalf("expected unauthenticated, got %v", err)
	}

	inv := aspect.NewInvocation(ctx, p.Name(), ticket.MethodOpen, []any{"TT-3", "alice's ticket"})
	auth.WithToken(inv, aliceTok)
	if _, err := p.Call(inv); err != nil {
		log.Fatalf("authenticated open: %v", err)
	}
	fmt.Println("  alice's open:   accepted (token resolved to principal)")

	fmt.Println("\nphase 3: revocation is immediate")
	store.Revoke(aliceTok)
	inv2 := aspect.NewInvocation(ctx, p.Name(), ticket.MethodOpen, []any{"TT-4", "stale token"})
	auth.WithToken(inv2, aliceTok)
	if _, err := p.Call(inv2); errors.Is(err, auth.ErrUnauthenticated) {
		fmt.Println("  revoked token:  rejected")
	} else {
		log.Fatalf("expected unauthenticated, got %v", err)
	}

	fmt.Println("\nphase 4: the concern detaches as cleanly as it attached")
	if err := g.DisableAuthentication(); err != nil {
		log.Fatal(err)
	}
	if _, err := p.Invoke(ctx, ticket.MethodOpen, "TT-5", "anonymous once more"); err != nil {
		log.Fatalf("open after disable: %v", err)
	}
	fmt.Printf("  layers: %v\n", g.Moderator().Layers())
	fmt.Println("  anonymous open: accepted again")

	fmt.Printf("\nbuffered tickets at exit: %d — functional component untouched throughout\n",
		g.Server().Size())
}
