// Distributed: the full topology in one process tree — a naming service,
// an amrpc server hosting the guarded ticket component (which registers
// itself by name), and remote clients that discover it and invoke through
// the wire. The aspects run server-side around the functional component;
// remote callers see identical semantics to local ones, including sentinel
// errors surviving the boundary (location transparency, Section 2 of the
// paper).
//
// Run with:
//
//	go run ./examples/distributed
//
// For the multi-node deployment — admission domains partitioned across
// replicas with fenced leases and automatic failover — see
// examples/cluster.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/amrpc"
	"repro/internal/apps/ticket"
	"repro/internal/aspects/auth"
	"repro/internal/naming"
)

func main() {
	var servers sync.WaitGroup

	// 1. Naming service.
	nsrv := naming.NewServer(nil)
	nln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	servers.Add(1)
	go func() {
		defer servers.Done()
		if err := nsrv.Serve(nln); err != nil {
			log.Printf("naming: %v", err)
		}
	}()
	fmt.Printf("naming service on %s\n", nln.Addr())

	// 2. Guarded ticket component behind amrpc, with authentication.
	store := auth.NewTokenStore()
	clientTok := store.Issue("alice", "client")
	g, err := ticket.NewGuarded(ticket.GuardedConfig{Capacity: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := g.EnableAuthentication(store); err != nil {
		log.Fatal(err)
	}
	rsrv := amrpc.NewServer()
	if err := rsrv.Register(g.Proxy()); err != nil {
		log.Fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	servers.Add(1)
	go func() {
		defer servers.Done()
		if err := rsrv.Serve(rln); err != nil {
			log.Printf("amrpc: %v", err)
		}
	}()
	fmt.Printf("ticket server on %s\n", rln.Addr())

	// 3. The server announces itself.
	announcer, err := naming.DialClient(nln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	if err := announcer.Register(ticket.ComponentName, rln.Addr().String(), time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %q -> %s\n\n", ticket.ComponentName, rln.Addr())

	// 4. A client discovers the component by name and invokes it.
	resolver, err := naming.DialClient(nln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	entry, err := resolver.Lookup(ticket.ComponentName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client resolved %q -> %s\n", entry.Name, entry.Addr)

	conn, err := amrpc.Dial(entry.Addr)
	if err != nil {
		log.Fatal(err)
	}

	// Anonymous remote call: the authentication aspect rejects it on the
	// server, and errors.Is works across the wire.
	anon := conn.Component(ticket.ComponentName)
	if _, err := anon.Invoke(context.Background(), ticket.MethodOpen, "TT-1", "no token"); errors.Is(err, auth.ErrUnauthenticated) {
		fmt.Println("anonymous remote open: rejected (sentinel crossed the wire)")
	} else {
		log.Fatalf("expected unauthenticated, got %v", err)
	}

	// Authenticated remote producers and consumers.
	stub := conn.Component(ticket.ComponentName, amrpc.WithToken(clientTok))
	const total = 24
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for k := 0; k < total; k++ {
			if _, err := stub.Invoke(context.Background(), ticket.MethodOpen,
				fmt.Sprintf("TT-%03d", k), "remote ticket"); err != nil {
				log.Fatalf("remote open: %v", err)
			}
		}
	}()
	var lastID string
	go func() {
		defer wg.Done()
		for k := 0; k < total; k++ {
			res, err := stub.Invoke(context.Background(), ticket.MethodAssign)
			if err != nil {
				log.Fatalf("remote assign: %v", err)
			}
			lastID = res.(map[string]any)["id"].(string)
		}
	}()
	wg.Wait()
	fmt.Printf("moved %d tickets across the wire; last assigned: %s\n", total, lastID)

	stats := g.Moderator().Stats()
	fmt.Printf("server-side moderator: %d admissions, %d blocks, %d aborts\n",
		stats.Admissions, stats.Blocks, stats.Aborts)

	// Orderly teardown.
	_ = conn.Close()
	_ = resolver.Close()
	_ = announcer.Close()
	rsrv.Close()
	nsrv.Close()
	servers.Wait()
	fmt.Println("shut down cleanly")
}
