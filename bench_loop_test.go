package repro_test

// Tier-1 guard for the committed closed-loop batched-admission baseline:
// BENCH_7.json (the E19 report written by `make bench-loop`) must parse,
// declare the current schema, and pin the PR-10 trajectory. Three claims
// carry the weight: the contended guarded cell must show the full
// admission ladder at least 1.3x over the fully unbatched mutex path; the
// uncontended cell must show the rings taxing an idle fast path by at most
// 5%; and the TCP closed loop must show the batched deployment holding
// parity with the unbatched one (the contention gate's promise — on hosts
// where the mutex never backs up, the ring stays out of the way instead of
// taxing the loop with drain-for-me round trips). The honesty clauses —
// zero lost admissions, zero buffer residue, balanced shed accounting —
// make a wake-losing or receipt-leaking batch bug fail the build even if
// the throughput numbers happen to look right.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/bench"
)

func TestLoopBaselineTrajectory(t *testing.T) {
	data, err := os.ReadFile("BENCH_7.json")
	if err != nil {
		t.Fatalf("committed closed-loop baseline missing (run `make bench-loop`): %v", err)
	}
	var rep bench.LoopReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_7.json does not parse: %v", err)
	}
	if rep.Schema != bench.LoopSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, bench.LoopSchema)
	}

	// The headline trajectory: the shipped ladder (optimistic tier +
	// gated rings) over the fully unbatched mutex-per-invocation path on
	// the contended guarded cell, pinned at the BENCH_4 matrix's 8-proc
	// geometry.
	if rep.Contended.Procs != 8 {
		t.Fatalf("contended cell ran at %d procs, want 8", rep.Contended.Procs)
	}
	if rep.Contended.Speedup < 1.3 {
		t.Fatalf("contended ladder speedup = %.2fx, want >= 1.3x over the unbatched mutex path", rep.Contended.Speedup)
	}
	// Rings must be free when idle: an uncontended guarded caller is
	// served by the optimistic tier and never touches a ring, so compiling
	// the rings in may cost at most 5%.
	if rep.Uncontended.Ratio <= 0 || rep.Uncontended.Ratio > 1.05 {
		t.Fatalf("uncontended latency ratio (rings on / rings off) = %.3f, want (0, 1.05]", rep.Uncontended.Ratio)
	}

	// The closed loop: parity or better. The gate routes an op to the ring
	// only when the domain mutex is observably held, so the batched
	// deployment must not trail the unbatched one by more than the
	// measurement's own jitter.
	b, u := rep.Batched, rep.Unbatched
	if b.OpsPerSec <= 0 || u.OpsPerSec <= 0 {
		t.Fatalf("non-positive loop throughput: batched=%.0f unbatched=%.0f", b.OpsPerSec, u.OpsPerSec)
	}
	if b.OpsPerSec < 0.85*u.OpsPerSec {
		t.Fatalf("batched closed loop = %.0f pairs/s vs unbatched %.0f: the rings are taxing the loop", b.OpsPerSec, u.OpsPerSec)
	}
	for _, v := range []struct {
		name string
		lv   bench.LoopVariant
	}{{"batched", b}, {"unbatched", u}} {
		if v.lv.P50Micros <= 0 || v.lv.P50Micros > v.lv.P99Micros {
			t.Fatalf("%s latencies malformed: p50=%.0fus p99=%.0fus", v.name, v.lv.P50Micros, v.lv.P99Micros)
		}
		// The pipelined writer must coalesce: every flush carries at least
		// one frame, and frames-per-flush >= 1 means the writev-shaped
		// batching actually fired.
		if v.lv.Flushes == 0 || v.lv.Flushes > v.lv.FlushFrames {
			t.Fatalf("%s flush accounting malformed: flushes=%d frames=%d", v.name, v.lv.Flushes, v.lv.FlushFrames)
		}
	}

	// Both halves of the contention gate must have fired in the batched
	// variant: bypasses (the mutex was free, the plain path served the op)
	// and real ring traffic (the mutex was held, the op batched), with the
	// histogram accounting for every drain pass.
	if b.Ring.MutexBypasses == 0 {
		t.Fatal("gate never bypassed: the probe is not routing uncontended ops to the mutex path")
	}
	if b.Ring.Submitted == 0 || b.Ring.Batches == 0 {
		t.Fatalf("rings never engaged under the closed loop: %+v", b.Ring)
	}
	var bucketed uint64
	for _, n := range b.Ring.BatchSizes {
		bucketed += n
	}
	if bucketed != b.Ring.Batches {
		t.Fatalf("batch histogram holds %d passes, counters say %d", bucketed, b.Ring.Batches)
	}
	if u.Ring.Submitted != 0 {
		t.Fatalf("unbatched variant touched a ring: %+v", u.Ring)
	}

	// The honesty clauses: every admission completed and the ticket buffer
	// drained — a batch path that loses a wake or leaks a receipt shows up
	// here, not in production.
	if rep.Lost != 0 {
		t.Fatalf("%d admissions never completed: a wake was lost or a receipt leaked", rep.Lost)
	}
	if rep.Residue != 0 {
		t.Fatalf("ticket buffer held %d entries at quiescence", rep.Residue)
	}

	// The shed cell: refuse-before-park must both fire and not starve.
	s := rep.Shed
	if s.Shed == 0 || s.Served == 0 {
		t.Fatalf("shed cell degenerate: served=%d shed=%d (want both nonzero)", s.Served, s.Shed)
	}
	if s.Attempts != s.Served+s.Shed {
		t.Fatalf("shed accounting off: attempts=%d served=%d shed=%d", s.Attempts, s.Served, s.Shed)
	}
	if s.RetryAfterMSMax < 1 {
		t.Fatalf("sheds carried no retry-after hint: max=%dms", s.RetryAfterMSMax)
	}
}
