package obs

// Submission-ring observability: a watched source that exposes batched
// admission counters (the production Moderator) gets am_ring_* and
// am_batch_size series at every /metrics scrape, and the per-component
// snapshot is served at /ring. Everything here sums relaxed atomics on
// the pull side; the admission path pays nothing for being observed.

import (
	"fmt"

	"repro/internal/moderator"
)

// ringSource is optionally implemented by sources with per-domain batched
// submission rings (the production Moderator).
type ringSource interface {
	RingStats() moderator.RingStats
}

// batchBucketLabel names log₂ bucket i: bucket i counts batches of size in
// [2^i, 2^(i+1)), the last bucket open-ended.
func batchBucketLabel(i, total int) string {
	lo := 1 << uint(i)
	if i == total-1 {
		return fmt.Sprintf("%d+", lo)
	}
	hi := 1<<uint(i+1) - 1
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

func collectRing(name string, rs ringSource, emit EmitFunc) {
	comp := L("component", name)
	r := rs.RingStats()
	emit("am_ring_depth", "Invocations currently enqueued in submission rings (exact).", []Label{comp}, float64(r.Depth))
	emit("am_ring_submitted_total", "Guarded invocations that entered a submission ring.", []Label{comp}, float64(r.Submitted))
	emit("am_ring_batches_total", "Drain passes performed by elected drainers.", []Label{comp}, float64(r.Batches))
	emit("am_ring_batched_ops_total", "Operations evaluated inside drain batches.", []Label{comp}, float64(r.BatchedOps))
	emit("am_ring_pre_ops_total", "Pre-activations evaluated inside drain batches.", []Label{comp}, float64(r.PreOps))
	emit("am_ring_post_ops_total", "Post-activations evaluated inside drain batches.", []Label{comp}, float64(r.PostOps))
	emit("am_ring_parks_total", "Ring submissions handed off to park on a carried verdict.", []Label{comp}, float64(r.Parks))
	emit("am_ring_wake_passes_total", "Coalesced wake passes issued by drainers.", []Label{comp}, float64(r.WakePasses))
	emit("am_ring_full_fallbacks_total", "Submissions refused by a full ring (served by the mutex path).", []Label{comp}, float64(r.FullFallbacks))
	emit("am_ring_mutex_bypasses_total", "Contention probes that found the domain mutex free (served by the mutex path).", []Label{comp}, float64(r.MutexBypasses))
	emit("am_ring_max_batch", "Largest batch drained in one pass.", []Label{comp}, float64(r.MaxBatch))
	for i, n := range r.BatchSizes {
		emit("am_batch_size", "Drain batch sizes (log2 buckets).",
			[]Label{comp, L("bucket", batchBucketLabel(i, len(r.BatchSizes)))}, float64(n))
	}
}

// RingComponent is one component's submission-ring snapshot in /ring.
type RingComponent struct {
	Component string              `json:"component"`
	Stats     moderator.RingStats `json:"stats"`
}

// RingDump is the /ring response body.
type RingDump struct {
	Components []RingComponent `json:"components"`
}

// RingSnapshot builds the introspection snapshot served at /ring.
func (c *Collector) RingSnapshot() RingDump {
	dump := RingDump{Components: []RingComponent{}}
	for _, s := range c.watched() {
		if rs, ok := s.(ringSource); ok {
			dump.Components = append(dump.Components, RingComponent{Component: s.Name(), Stats: rs.RingStats()})
		}
	}
	return dump
}
