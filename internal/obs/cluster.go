package obs

// Cluster observability: a node of the distributed admission plane
// registers itself as a cluster source, its plane counters (forwards,
// stale refusals, wake traffic, takeovers) appear at every /metrics
// scrape, and the full ownership view — which node holds which admission
// domain at which lease term — is served at /cluster. Everything here
// reads atomically-published node state; scraping never touches the
// routing or admission path.

import (
	"repro/internal/cluster/view"
)

// ClusterSource is the surface the collector polls for the distributed
// admission plane. *cluster.Node satisfies it (asserted in the tests —
// importing the plane here would close an import cycle through amrpc's
// test binary, so this package depends only on the leaf view types).
type ClusterSource interface {
	Status() view.Status
}

// WatchCluster registers a cluster node: its plane counters appear at
// every /metrics scrape as am_cluster_* series and its ownership view is
// served at /cluster.
func (c *Collector) WatchCluster(s ClusterSource) {
	c.mu.Lock()
	c.clusters = append(c.clusters, s)
	c.mu.Unlock()
	c.reg.Collect(func(emit EmitFunc) { collectCluster(s, emit) })
}

func (c *Collector) watchedClusters() []ClusterSource {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ClusterSource(nil), c.clusters...)
}

func collectCluster(s ClusterSource, emit EmitFunc) {
	st := s.Status()
	node := L("node", st.Node)
	owned := 0
	for _, d := range st.Domains {
		if d.Local {
			owned++
		}
	}
	emit("am_cluster_members", "Cluster members in this node's view.", []Label{node}, float64(len(st.Members)))
	emit("am_cluster_domains_owned", "Admission domains this node holds a live lease on.", []Label{node}, float64(owned))
	emit("am_cluster_local_calls_total", "Guarded invocations admitted on this node.", []Label{node}, float64(st.LocalCalls))
	emit("am_cluster_forwards_total", "Invocations transparently forwarded to a domain's owner.", []Label{node}, float64(st.Forwards))
	emit("am_cluster_forward_retries_total", "Routing retries (stale views, failover windows, dead peers).", []Label{node}, float64(st.ForwardRetries))
	emit("am_cluster_stale_refusals_total", "Fenced requests refused for a stale or foreign lease term.", []Label{node}, float64(st.StaleRefusals))
	emit("am_cluster_wakes_sent_total", "Cross-node wake notifications sent after completions.", []Label{node}, float64(st.WakesSent))
	emit("am_cluster_wakes_received_total", "Cross-node wake notifications accepted and kicked.", []Label{node}, float64(st.WakesReceived))
	emit("am_cluster_takeovers_total", "Domains inherited from a previous owner (term > 1 acquisitions).", []Label{node}, float64(st.Takeovers))
	for _, r := range st.Replication {
		labels := []Label{node, L("domain", r.Domain)}
		if r.Leading {
			emit("am_cluster_sync_lag", "Captured effects not yet acknowledged by the domain's ring successor.", labels, float64(r.Lag))
			emit("am_cluster_sync_streamed_total", "Effect-log entries acknowledged by the successor.", labels, float64(r.Streamed))
			emit("am_cluster_sync_snapshots_sent_total", "State snapshots shipped to the successor (handoffs and overflow resyncs).", labels, float64(r.SnapshotsSent))
			emit("am_cluster_sync_overflows_total", "Captures refused because the unacked replication window was full.", labels, float64(r.Overflows))
		}
		if r.ReplicaFrom != "" {
			emit("am_cluster_sync_replica_seq", "Highest replicated sequence held for a predecessor's domain.", labels, float64(r.ReplicaSeq))
		}
		if r.CatchupApplied > 0 || r.Restored {
			emit("am_cluster_sync_catchup_applied_total", "Replicated effects replayed locally at takeover.", labels, float64(r.CatchupApplied))
		}
	}
}

// ClusterDump is the /cluster response body: one status per watched node
// (a process usually hosts one, but embedded tests may host several).
type ClusterDump struct {
	Nodes []view.Status `json:"nodes"`
}

// ClusterSnapshot builds the introspection snapshot served at /cluster.
func (c *Collector) ClusterSnapshot() ClusterDump {
	dump := ClusterDump{Nodes: []view.Status{}}
	for _, s := range c.watchedClusters() {
		dump.Nodes = append(dump.Nodes, s.Status())
	}
	return dump
}
