package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPEndpoints(t *testing.T) {
	mod := newBufferModerator(t)
	c := NewCollector(WithSampleEvery(1))
	mod.SetTracer(c)
	c.Watch(mod)
	for i := 0; i < 10; i++ {
		invoke(t, mod, "put")
		invoke(t, mod, "get")
	}

	srv := httptest.NewServer(NewHTTPHandler(c))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ctype)
	}
	for _, want := range []string{
		`am_admissions_total{component="svc"} 20`,
		"# TYPE am_preactivation_ns histogram",
		`am_sampled_admissions_total{method="put"} 10`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, metrics)
		}
	}

	traceBody, ctype := get("/trace?n=5")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/trace content-type = %q", ctype)
	}
	var dump TraceDump
	if err := json.Unmarshal([]byte(traceBody), &dump); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(dump.Events) == 0 || len(dump.Events) > 5 {
		t.Fatalf("/trace?n=5 returned %d events", len(dump.Events))
	}

	describeBody, _ := get("/describe")
	var snap DescribeSnapshot
	if err := json.Unmarshal([]byte(describeBody), &snap); err != nil {
		t.Fatalf("/describe not JSON: %v", err)
	}
	if len(snap.Components) != 1 || snap.Components[0].Name != "svc" {
		t.Fatalf("/describe components = %+v", snap.Components)
	}
	if snap.Components[0].Stats.Admissions != 20 {
		t.Fatalf("/describe admissions = %d, want 20", snap.Components[0].Stats.Admissions)
	}
	if snap.SampleEvery != 1 {
		t.Fatalf("/describe sample_every = %d", snap.SampleEvery)
	}
}
