package obs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/moderator"
)

// newBufferModerator builds a moderator guarding a one-sided buffer: get
// blocks while empty, put deposits and wakes get. The wake lists group
// the two methods into one admission domain, so the shared counter needs
// no locking.
func newBufferModerator(t *testing.T) *moderator.Moderator {
	t.Helper()
	mod := moderator.New("svc")
	items := 0
	get := &aspect.Func{
		AspectName: "sync-get", AspectKind: aspect.KindSynchronization,
		Pre: func(*aspect.Invocation) aspect.Verdict {
			if items == 0 {
				return aspect.Block
			}
			items--
			return aspect.Resume
		},
		WakeList: []string{"put"},
	}
	put := &aspect.Func{
		AspectName: "sync-put", AspectKind: aspect.KindSynchronization,
		Post:     func(*aspect.Invocation) { items++ },
		WakeList: []string{"get"},
	}
	if err := mod.Register("get", aspect.KindSynchronization, get); err != nil {
		t.Fatal(err)
	}
	if err := mod.Register("put", aspect.KindSynchronization, put); err != nil {
		t.Fatal(err)
	}
	deny := &aspect.Func{AspectName: "deny", AspectKind: aspect.KindAuthorization,
		Pre: func(*aspect.Invocation) aspect.Verdict { return aspect.Abort }}
	if err := mod.Register("admin", aspect.KindAuthorization, deny); err != nil {
		t.Fatal(err)
	}
	return mod
}

func invoke(t *testing.T, mod *moderator.Moderator, method string) {
	t.Helper()
	inv := aspect.NewInvocation(nil, "svc", method, nil)
	adm, err := mod.Preactivation(inv)
	if err != nil {
		t.Fatalf("%s: %v", method, err)
	}
	mod.Postactivation(inv, adm)
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCollectorEndToEnd(t *testing.T) {
	mod := newBufferModerator(t)
	c := NewCollector(WithSampleEvery(1), WithRingCapacity(128))
	mod.SetTracer(c)
	c.Watch(mod)

	invoke(t, mod, "put")
	invoke(t, mod, "get")

	// Park a getter on the empty buffer, then wake it with a put.
	done := make(chan struct{})
	go func() {
		defer close(done)
		inv := aspect.NewInvocation(nil, "svc", "get", nil)
		adm, err := mod.Preactivation(inv)
		if err == nil {
			mod.Postactivation(inv, adm)
		}
	}()
	waitFor(t, func() bool { return mod.Waiting("get") == 1 }, "getter to park")
	invoke(t, mod, "put")
	<-done

	// An aborted invocation.
	inv := aspect.NewInvocation(nil, "svc", "admin", nil)
	if _, err := mod.Preactivation(inv); err == nil {
		t.Fatal("admin admission unexpectedly succeeded")
	}

	reg := c.Registry()
	if got := reg.CounterOf("am_parks_total", "",
		L("method", "get"), L("kind", "synchronization")).Value(); got != 1 {
		t.Fatalf("am_parks_total = %d, want 1", got)
	}
	if got := reg.GaugeOf("am_waiting", "", L("method", "get")).Value(); got != 0 {
		t.Fatalf("am_waiting = %d, want 0 after wake", got)
	}
	if got := reg.CounterOf("am_tickets_total", "", L("method", "get")).Value(); got != 1 {
		t.Fatalf("am_tickets_total = %d, want 1", got)
	}
	if got := reg.CounterOf("am_sampled_aborts_total", "", L("method", "admin")).Value(); got != 1 {
		t.Fatalf("am_sampled_aborts_total = %d, want 1", got)
	}
	if got := reg.CounterOf("am_verdicts_total", "",
		L("method", "admin"), L("verdict", "abort")).Value(); got != 1 {
		t.Fatalf("abort verdict count = %d, want 1", got)
	}
	wait := reg.HistogramOf("am_wait_ns", "", L("method", "get")).Snapshot()
	if wait.Count != 1 || wait.Sum <= 0 {
		t.Fatalf("am_wait_ns count=%d sum=%d, want one positive wait", wait.Count, wait.Sum)
	}
	// Sampled admissions: put, put, get, get = 4 (every invocation at rate 1).
	admits := reg.CounterOf("am_sampled_admissions_total", "", L("method", "put")).Value() +
		reg.CounterOf("am_sampled_admissions_total", "", L("method", "get")).Value()
	if admits != 4 {
		t.Fatalf("sampled admissions = %d, want 4", admits)
	}

	// The event stream: park and wake for get, in order, same domain.
	events := c.Events(0)
	var park, wake *Event
	for i := range events {
		e := &events[i]
		if e.Method != "get" {
			continue
		}
		switch e.Op {
		case "park":
			park = e
		case "wake":
			wake = e
		}
	}
	if park == nil || wake == nil {
		t.Fatalf("missing park/wake events in %d events", len(events))
	}
	if park.Domain == 0 || park.Domain != wake.Domain {
		t.Fatalf("park/wake domains = %d/%d, want equal and nonzero", park.Domain, wake.Domain)
	}
	if park.Seq >= wake.Seq {
		t.Fatalf("park seq %d not before wake seq %d", park.Seq, wake.Seq)
	}
	if park.Depth != 1 {
		t.Fatalf("park depth = %d, want 1", park.Depth)
	}
	if wake.Nanos <= 0 {
		t.Fatalf("wake duration = %d, want > 0", wake.Nanos)
	}
	if park.Aspect != "sync-get" {
		t.Fatalf("park blocked-by = %q, want sync-get", park.Aspect)
	}

	// Pull-side exact aggregates in the exposition.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`am_admissions_total{component="svc"} 4`,
		`am_blocks_total{component="svc"} 1`,
		`am_aborts_total{component="svc"} 1`,
		`am_completions_total{component="svc"} 4`,
		`am_parked{component="svc",method="get"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Describe reflects the watched moderator.
	snap := c.Describe()
	if len(snap.Components) != 1 || snap.Components[0].Name != "svc" {
		t.Fatalf("describe components = %+v", snap.Components)
	}
	dc := snap.Components[0]
	if dc.Stats.Admissions != 4 || dc.Stats.Blocks != 1 || dc.Stats.Aborts != 1 {
		t.Fatalf("describe stats = %+v", dc.Stats)
	}
	if len(dc.Layers) == 0 {
		t.Fatal("describe has no layers")
	}
	if len(dc.Domains) == 0 {
		t.Fatal("describe has no domains for a sharded moderator")
	}
}

// TestSamplingStillTracksParks pins the contract: at a high sampling rate
// detailed events thin out, but park/wake remains exact.
func TestSamplingStillTracksParks(t *testing.T) {
	mod := newBufferModerator(t)
	c := NewCollector(WithSampleEvery(1 << 20))
	mod.SetTracer(c)

	for i := 0; i < 100; i++ {
		invoke(t, mod, "put")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 101; i++ { // one more get than items: the last parks
			inv := aspect.NewInvocation(nil, "svc", "get", nil)
			adm, err := mod.Preactivation(inv)
			if err == nil {
				mod.Postactivation(inv, adm)
			}
		}
	}()
	waitFor(t, func() bool { return mod.Waiting("get") == 1 }, "getter to park")
	invoke(t, mod, "put")
	<-done

	reg := c.Registry()
	if got := reg.CounterOf("am_parks_total", "",
		L("method", "get"), L("kind", "synchronization")).Value(); got != 1 {
		t.Fatalf("am_parks_total = %d, want 1 (exact despite sampling)", got)
	}
	// Detailed admissions are sampled out at this rate.
	admits := reg.CounterOf("am_sampled_admissions_total", "", L("method", "put")).Value()
	if admits != 0 {
		t.Fatalf("sampled admissions = %d, want 0 at 1-in-2^20", admits)
	}
}

// TestReferenceTracer checks the mirror hooks in the single-mutex oracle.
func TestReferenceTracer(t *testing.T) {
	ref := moderator.NewReference("oracle")
	pass := &aspect.Func{AspectName: "pass", AspectKind: aspect.KindSynchronization}
	if err := ref.Register("m", aspect.KindSynchronization, pass); err != nil {
		t.Fatal(err)
	}
	c := NewCollector(WithSampleEvery(1))
	ref.SetTracer(c)
	c.Watch(ref)

	inv := aspect.NewInvocation(nil, "oracle", "m", nil)
	adm, err := ref.Preactivation(inv)
	if err != nil {
		t.Fatal(err)
	}
	ref.Postactivation(inv, adm)

	if got := c.Registry().CounterOf("am_sampled_admissions_total", "", L("method", "m")).Value(); got != 1 {
		t.Fatalf("reference sampled admissions = %d, want 1", got)
	}
	events := c.Events(0)
	if len(events) == 0 {
		t.Fatal("no events from reference moderator")
	}
	var sawComplete bool
	for _, e := range events {
		if e.Op == "complete" {
			sawComplete = true
		}
	}
	if !sawComplete {
		t.Fatal("no complete event from reference moderator")
	}
}
