package obs

// Per-domain bounded event rings. The memory model is deliberately
// asymmetric: writers arrive from the admission path holding a domain
// mutex, so a write must NEVER block — Put takes the ring lock with
// TryLock and, on contention, drops the event and bumps an atomic drop
// counter instead of waiting. Readers (the /trace endpoint, tests) take
// the lock outright; the only writer they can collide with is a
// same-domain admission, which then records a drop rather than stalling.
//
// Because every writer of one ring already holds that ring's domain mutex
// in the moderator, writers never contend with each other — only with
// readers. Sequence numbers are assigned under the ring lock, so the
// events of one domain that make it into the ring carry strictly
// increasing Seq in admission order; drops leave gaps in time, never
// reordering.

import (
	"sync"
	"sync/atomic"

	"repro/internal/moderator"
)

// Event is the JSON-able form of one admission lifecycle event as stored
// in a ring.
type Event struct {
	// Seq increases strictly within a domain, in admission order.
	Seq uint64 `json:"seq"`
	// At is the wall-clock capture time in Unix nanoseconds.
	At         int64  `json:"at"`
	Domain     uint64 `json:"domain"`
	Op         string `json:"op"`
	Component  string `json:"component,omitempty"`
	Method     string `json:"method,omitempty"`
	Layer      string `json:"layer,omitempty"`
	Aspect     string `json:"aspect,omitempty"`
	Kind       string `json:"kind,omitempty"`
	Verdict    string `json:"verdict,omitempty"`
	Invocation uint64 `json:"invocation,omitempty"`
	Ticket     uint64 `json:"ticket,omitempty"`
	Depth      int    `json:"depth,omitempty"`
	Aspects    int    `json:"aspects,omitempty"`
	Nanos      int64  `json:"nanos,omitempty"`
	Err        string `json:"err,omitempty"`
}

// eventFrom converts a moderator trace event captured at wall-clock at.
func eventFrom(ev moderator.TraceEvent, at int64) Event {
	e := Event{
		At:         at,
		Domain:     ev.Domain,
		Op:         ev.Op.String(),
		Component:  ev.Component,
		Method:     ev.Method,
		Layer:      ev.Layer,
		Aspect:     ev.Aspect,
		Kind:       string(ev.Kind),
		Invocation: ev.Invocation,
		Ticket:     ev.Ticket,
		Depth:      ev.Depth,
		Aspects:    ev.Aspects,
		Nanos:      ev.Nanos,
		Err:        ev.Err,
	}
	if ev.Op == moderator.TraceVerdict {
		e.Verdict = ev.Verdict.String()
	}
	return e
}

// Ring is one domain's bounded event buffer.
type Ring struct {
	drops atomic.Uint64

	mu     sync.Mutex
	buf    []Event
	next   int  // index of the next write
	filled bool // buf has wrapped at least once
	seq    uint64
}

// NewRing creates a ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Put stores e, overwriting the oldest event when full. It never blocks:
// when the lock is contended (a reader is snapshotting), the event is
// dropped, the drop counter bumped, and Put reports false.
func (r *Ring) Put(e Event) bool {
	if !r.mu.TryLock() {
		r.drops.Add(1)
		return false
	}
	r.seq++
	e.Seq = r.seq
	if !r.filled && len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		if len(r.buf) == cap(r.buf) {
			r.filled = true
			r.next = 0
		}
	} else {
		r.buf[r.next] = e
		r.next++
		if r.next == cap(r.buf) {
			r.next = 0
		}
	}
	r.mu.Unlock()
	return true
}

// Snapshot copies the buffered events, oldest first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.filled {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Drops returns how many events were discarded due to reader contention.
func (r *Ring) Drops() uint64 { return r.drops.Load() }

// Len returns the number of buffered events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}
