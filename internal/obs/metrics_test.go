package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.CounterOf("x_total", "help", L("m", "open"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.CounterOf("x_total", "help", L("m", "open")); again != c {
		t.Fatal("CounterOf did not return the same instance for equal labels")
	}
	g := r.GaugeOf("depth", "", L("m", "open"))
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterOf("dual", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.GaugeOf("dual", "")
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)  // bucket 0
	h.Observe(1)  // bucket 1
	h.Observe(2)  // bucket 2 (len=2)
	h.Observe(3)  // bucket 2
	h.Observe(-5) // negative counts as zero: bucket 0
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 6 {
		t.Fatalf("sum = %d, want 6", s.Sum)
	}
	want := map[int]uint64{0: 2, 1: 1, 2: 2}
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d", i, n, want[i])
		}
	}
	if q := s.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %g, want 1 (upper bound of bucket 1)", q)
	}
	if q := s.Quantile(1); q != 3 {
		t.Fatalf("p100 = %g, want 3", q)
	}
	if m := s.Mean(); m != 6.0/5.0 {
		t.Fatalf("mean = %g", m)
	}
}

func TestHistogramOverflowClamped(t *testing.T) {
	var h Histogram
	h.Observe(int64(1) << 62) // Len64 = 63, beyond the top bucket
	s := h.Snapshot()
	if s.Buckets[HistBuckets-1] != 1 {
		t.Fatalf("overflow not absorbed by top bucket: %v", s.Buckets[HistBuckets-1])
	}
}

// TestHistogramMergeRace exercises the satellite requirement: merging is
// race-clean while both histograms are concurrently observed into.
func TestHistogramMergeRace(t *testing.T) {
	var a, b, sink Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, h := range []*Histogram{&a, &b} {
		wg.Add(1)
		go func(h *Histogram) {
			defer wg.Done()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Observe(i % 4096)
				}
			}
		}(h)
	}
	for i := 0; i < 200; i++ {
		sink.Merge(&a)
		sink.Merge(&b)
		_ = sink.Snapshot()
	}
	close(stop)
	wg.Wait()
	// Deterministic check once writers are quiet.
	var c, d Histogram
	c.Observe(10)
	c.Observe(100)
	d.Observe(1000)
	d.Merge(&c)
	s := d.Snapshot()
	if s.Count != 3 || s.Sum != 1110 {
		t.Fatalf("merge result count=%d sum=%d, want 3/1110", s.Count, s.Sum)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.CounterOf("am_ops_total", "Operations.", L("method", "open")).Add(7)
	r.GaugeOf("am_depth", "Queue depth.").Set(3)
	r.GaugeFunc("am_live", "Live value.", func() float64 { return 1.5 })
	h := r.HistogramOf("am_lat_ns", "Latency.", L("method", "open"))
	h.Observe(5) // bucket 3, le=7
	r.Collect(func(emit EmitFunc) {
		emit("am_pull", "Pulled.", []Label{L("component", "svc")}, 42)
	})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE am_ops_total counter",
		`am_ops_total{method="open"} 7`,
		"# TYPE am_depth gauge",
		"am_depth 3",
		"am_live 1.5",
		"# TYPE am_lat_ns histogram",
		`am_lat_ns_bucket{method="open",le="7"} 1`,
		`am_lat_ns_bucket{method="open",le="+Inf"} 1`,
		`am_lat_ns_sum{method="open"} 5`,
		`am_lat_ns_count{method="open"} 1`,
		"# TYPE am_pull gauge",
		`am_pull{component="svc"} 42`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := renderLabels([]Label{L("k", "a\"b\\c\nd")}); got != `{k="a\"b\\c\nd"}` {
		t.Fatalf("escaped labels = %s", got)
	}
}
