package obs

// The HTTP introspection surface. NewHTTPHandler serves these endpoints
// off a Collector:
//
//	/metrics   Prometheus text exposition: event-derived instruments plus
//	           exact pull-side aggregates from every watched source.
//	/trace     JSON dump of recent lifecycle events (?n= limits, newest
//	           kept), with the cumulative drop counter.
//	/describe  JSON structural snapshot of every watched source: layers,
//	           per-method aspect stacks, admission domains, stats, queues.
//	/shadow    JSON shadow-admission stats and recent divergences.
//	/cluster   JSON ownership view of the distributed admission plane:
//	           members, domain owners, lease terms, plane counters.
//	/ring      JSON submission-ring snapshot per component: depth, batch
//	           counters, the batch-size histogram, park/wake coalescing.
//
// All handlers read atomically-published or mutex-copied state; scraping
// never blocks the admission path (at worst a /trace snapshot makes a
// concurrent same-domain ring write drop, which the drop counter records).

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/moderator"
	"repro/internal/waitq"
)

// TraceDump is the /trace response body.
type TraceDump struct {
	Drops  uint64  `json:"drops"`
	Events []Event `json:"events"`
}

// DescribeAspect is one aspect in a /describe stack.
type DescribeAspect struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// DescribeLayer is one composition layer in a /describe snapshot.
type DescribeLayer struct {
	Name    string                      `json:"name"`
	Methods map[string][]DescribeAspect `json:"methods"`
}

// DescribeComponent is one watched source's structural snapshot.
type DescribeComponent struct {
	Name    string                 `json:"name"`
	Epoch   uint64                 `json:"epoch,omitempty"`
	Canary  *moderator.CanaryInfo  `json:"canary,omitempty"`
	Layers  []DescribeLayer        `json:"layers"`
	Domains [][]string             `json:"domains,omitempty"`
	Stats   moderator.Stats        `json:"stats"`
	Queues  map[string]waitq.Stats `json:"queues,omitempty"`
	Parked  map[string]int         `json:"parked,omitempty"`
}

// DescribeSnapshot is the /describe response body.
type DescribeSnapshot struct {
	SampleEvery int                 `json:"sample_every"`
	Components  []DescribeComponent `json:"components"`
}

// Describe builds the introspection snapshot served at /describe.
func (c *Collector) Describe() DescribeSnapshot {
	snap := DescribeSnapshot{SampleEvery: c.every}
	for _, s := range c.watched() {
		comp := DescribeComponent{
			Name:   s.Name(),
			Stats:  s.Stats(),
			Queues: s.QueueStats(),
		}
		for _, li := range s.Describe() {
			dl := DescribeLayer{Name: li.Name, Methods: make(map[string][]DescribeAspect, len(li.Methods))}
			for m, infos := range li.Methods {
				stack := make([]DescribeAspect, 0, len(infos))
				for _, ai := range infos {
					stack = append(stack, DescribeAspect{Name: ai.Name, Kind: string(ai.Kind)})
				}
				dl.Methods[m] = stack
			}
			comp.Layers = append(comp.Layers, dl)
		}
		if ds, ok := s.(domainsSource); ok {
			comp.Domains = ds.Domains()
		}
		if es, ok := s.(epochSource); ok {
			comp.Epoch = es.Epoch()
			if info, staged := es.CanaryInfo(); staged {
				comp.Canary = &info
			}
		}
		parked := make(map[string]int)
		for q := range comp.Queues {
			if i := strings.IndexByte(q, '/'); i > 0 {
				m := q[:i]
				if _, seen := parked[m]; !seen {
					parked[m] = s.Waiting(m)
				}
			}
		}
		if len(parked) > 0 {
			comp.Parked = parked
		}
		snap.Components = append(snap.Components, comp)
	}
	return snap
}

// DefaultTraceLimit bounds /trace responses when no ?n= is given.
const DefaultTraceLimit = 256

// NewHTTPHandler returns the introspection mux for a collector.
func NewHTTPHandler(c *Collector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = c.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		n := DefaultTraceLimit
		if raw := r.URL.Query().Get("n"); raw != "" {
			if v, err := strconv.Atoi(raw); err == nil && v > 0 {
				n = v
			}
		}
		dump := TraceDump{Drops: c.Drops(), Events: c.Events(n)}
		if dump.Events == nil {
			dump.Events = []Event{}
		}
		writeJSON(w, dump)
	})
	mux.HandleFunc("/describe", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, c.Describe())
	})
	mux.HandleFunc("/shadow", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, c.ShadowSnapshot())
	})
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, c.ClusterSnapshot())
	})
	mux.HandleFunc("/ring", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, c.RingSnapshot())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
