package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// The real node must satisfy the watch surface; asserted here rather
// than in cluster.go to keep obs off the plane's import graph.
var _ ClusterSource = (*cluster.Node)(nil)

// fakeClusterSource serves a fixed node status, standing in for a
// *cluster.Node without booting a naming service.
type fakeClusterSource struct{ st cluster.Status }

func (f fakeClusterSource) Status() cluster.Status { return f.st }

func TestClusterEndpointAndMetrics(t *testing.T) {
	c := NewCollector()
	c.WatchCluster(fakeClusterSource{st: cluster.Status{
		Node:      "n1",
		Addr:      "127.0.0.1:9999",
		Component: "svc",
		Members:   []string{"n1", "n2"},
		Domains: []cluster.DomainStatus{
			{Domain: "alpha", Owner: "n1", Term: 3, Local: true, Addr: "127.0.0.1:9999"},
			{Domain: "beta", Owner: "n2", Term: 1, Local: false, Addr: "127.0.0.1:9998"},
		},
		LocalCalls:     10,
		Forwards:       4,
		ForwardRetries: 2,
		StaleRefusals:  1,
		WakesSent:      5,
		WakesReceived:  6,
		Takeovers:      1,
		Replication: []cluster.SyncStatus{
			{Domain: "alpha", Leading: true, Term: 3, Successor: "n2", Lag: 2, Streamed: 8, SnapshotsSent: 1},
			{Domain: "beta", ReplicaFrom: "n2", ReplicaTerm: 1, ReplicaSeq: 7, CatchupApplied: 7, Restored: true},
		},
	}})

	srv := httptest.NewServer(NewHTTPHandler(c))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var dump ClusterDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("decode /cluster: %v", err)
	}
	if len(dump.Nodes) != 1 || dump.Nodes[0].Node != "n1" || len(dump.Nodes[0].Domains) != 2 {
		t.Fatalf("/cluster dump = %+v", dump)
	}
	if !dump.Nodes[0].Domains[0].Local || dump.Nodes[0].Domains[0].Term != 3 {
		t.Fatalf("/cluster lost ownership detail: %+v", dump.Nodes[0].Domains[0])
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`am_cluster_members{node="n1"} 2`,
		`am_cluster_domains_owned{node="n1"} 1`,
		`am_cluster_forwards_total{node="n1"} 4`,
		`am_cluster_stale_refusals_total{node="n1"} 1`,
		`am_cluster_takeovers_total{node="n1"} 1`,
		`am_cluster_wakes_received_total{node="n1"} 6`,
		`am_cluster_sync_lag{domain="alpha",node="n1"} 2`,
		`am_cluster_sync_streamed_total{domain="alpha",node="n1"} 8`,
		`am_cluster_sync_snapshots_sent_total{domain="alpha",node="n1"} 1`,
		`am_cluster_sync_replica_seq{domain="beta",node="n1"} 7`,
		`am_cluster_sync_catchup_applied_total{domain="beta",node="n1"} 7`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, metrics)
		}
	}
}
