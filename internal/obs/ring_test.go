package obs

import (
	"sync"
	"testing"
	"time"
)

func TestRingWrapKeepsOrder(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		if !r.Put(Event{At: int64(i)}) {
			t.Fatalf("uncontended Put %d dropped", i)
		}
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("len = %d, want 4", len(snap))
	}
	for i, e := range snap {
		if e.At != int64(6+i) {
			t.Fatalf("snap[%d].At = %d, want %d (oldest-first after wrap)", i, e.At, 6+i)
		}
		if i > 0 && snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("seq not contiguous: %d after %d", snap[i].Seq, snap[i-1].Seq)
		}
	}
	if snap[3].Seq != 10 {
		t.Fatalf("last seq = %d, want 10", snap[3].Seq)
	}
	if r.Drops() != 0 {
		t.Fatalf("drops = %d, want 0", r.Drops())
	}
}

// TestRingNeverBlocks pins the memory model: a writer racing a reader
// either stores its event or drops it immediately — it never waits for
// the lock — and every event that lands carries a strictly increasing
// sequence number.
func TestRingNeverBlocks(t *testing.T) {
	r := NewRing(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // hostile reader: hold the lock in a tight loop
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()

	const writes = 50_000
	start := time.Now()
	var stored uint64
	for i := 0; i < writes; i++ {
		if r.Put(Event{At: int64(i)}) {
			stored++
		}
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	if stored+r.Drops() != writes {
		t.Fatalf("stored %d + drops %d != %d writes", stored, r.Drops(), writes)
	}
	// Generous bound: 50k non-blocking writes are microseconds-each at
	// worst; a blocking writer stuck behind the reader would blow far past
	// this.
	if elapsed > 5*time.Second {
		t.Fatalf("writer took %v — Put appears to block", elapsed)
	}
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatalf("seq order violated: %d then %d", snap[i-1].Seq, snap[i].Seq)
		}
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	r.Put(Event{At: 1})
	r.Put(Event{At: 2})
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].At != 2 {
		t.Fatalf("capacity-0 ring snapshot = %+v, want just the newest", snap)
	}
}
