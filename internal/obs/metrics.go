package obs

// The metrics core: counters, gauges, and log₂-bucketed latency
// histograms, collected in a Registry that renders Prometheus text
// exposition format. The design splits responsibilities the same way the
// moderator's trace hooks do:
//
//   - Hot-path instruments (Counter, Gauge, Histogram) are plain atomics.
//     Callers cache the instrument handle (the Collector does); the
//     Registry's get-or-create lookup is off the hot path.
//   - Pull-side series (GaugeFunc, Collect callbacks) are evaluated only
//     at render time, so exact totals can be polled from sources like
//     moderator.Stats without touching the admission path at all.

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the number of log₂ buckets a Histogram carries. Bucket i
// counts observations v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i - 1] (bucket 0 counts zeros); the top bucket absorbs
// everything larger. 40 buckets cover up to ~18 minutes in nanoseconds.
const HistBuckets = 40

// Histogram is a log₂-bucketed latency histogram. All mutating and
// reading operations are atomic per field; concurrent Observe, Merge, and
// Snapshot are race-clean (a Snapshot taken during writes may be torn
// across fields — counts are each exact, but sum/count may momentarily
// disagree; totals converge once writers quiesce).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one value (typically nanoseconds). Negative values
// count as zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Merge adds o's observations into h. Both histograms may be concurrently
// observed into while merging.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     int64
	Buckets [HistBuckets]uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Mean returns the mean observed value, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0..1) from
// the bucket boundaries.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(HistBuckets - 1)
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) float64 {
	if i == 0 {
		return 0
	}
	return float64(uint64(1)<<uint(i)) - 1
}

// metricType tags a family for TYPE lines and kind checks.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one labelled instance inside a family.
type series struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups the series of one metric name.
type family struct {
	name string
	help string
	typ  metricType

	mu     sync.Mutex
	series map[string]*series
	order  []string
}

// Registry holds metric families and renders them. Get-or-create methods
// are safe for concurrent use; callers on hot paths should cache the
// returned instrument rather than re-looking it up per event.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
	collects []CollectFunc
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family, 16)}
}

// EmitFunc receives one dynamically computed series at render time.
type EmitFunc func(name, help string, labels []Label, value float64)

// CollectFunc appends pull-side series (rendered as gauges) when the
// registry is written. Implementations run at scrape time and must not
// assume any particular goroutine.
type CollectFunc func(emit EmitFunc)

// Collect registers a render-time callback for dynamically labelled
// series (per-method moderator counters, queue stats). Collected names
// must not collide with static families.
func (r *Registry) Collect(fn CollectFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collects = append(r.collects, fn)
}

func (r *Registry) familyFor(name, help string, typ metricType) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series, 4)}
		r.families[name] = f
		r.names = append(r.names, name)
		sort.Strings(r.names)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (f *family) seriesFor(labels []Label) *series {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		f.series[key] = s
		f.order = append(f.order, key)
		sort.Strings(f.order)
	}
	return s
}

// CounterOf returns (creating if needed) the counter for name+labels.
func (r *Registry) CounterOf(name, help string, labels ...Label) *Counter {
	s := r.familyFor(name, help, typeCounter).seriesFor(labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// GaugeOf returns (creating if needed) the gauge for name+labels.
func (r *Registry) GaugeOf(name, help string, labels ...Label) *Gauge {
	s := r.familyFor(name, help, typeGauge).seriesFor(labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge series computed by fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.familyFor(name, help, typeGauge).seriesFor(labels)
	s.fn = fn
}

// HistogramOf returns (creating if needed) the histogram for name+labels.
func (r *Registry) HistogramOf(name, help string, labels ...Label) *Histogram {
	s := r.familyFor(name, help, typeHistogram).seriesFor(labels)
	if s.h == nil {
		s.h = &Histogram{}
	}
	return s.h
}

// renderLabels renders {k="v",...} with keys sorted, or "" for none.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// mergeLabels renders a label set with extra pairs appended (for the
// histogram le dimension).
func mergeLabels(rendered string, extra ...Label) string {
	inner := strings.TrimSuffix(strings.TrimPrefix(rendered, "{"), "}")
	var b strings.Builder
	b.WriteByte('{')
	b.WriteString(inner)
	for _, l := range extra {
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family, then every Collect callback, in
// Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	collects := append([]CollectFunc(nil), r.collects...)
	r.mu.Unlock()

	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, f := range fams {
		f.mu.Lock()
		order := append([]string(nil), f.order...)
		byKey := make(map[string]*series, len(order))
		for k, s := range f.series {
			byKey[k] = s
		}
		f.mu.Unlock()
		if f.help != "" {
			pr("# HELP %s %s\n", f.name, f.help)
		}
		pr("# TYPE %s %s\n", f.name, f.typ)
		for _, k := range order {
			s := byKey[k]
			switch {
			case s.c != nil:
				pr("%s%s %d\n", f.name, s.labels, s.c.Value())
			case s.fn != nil:
				pr("%s%s %g\n", f.name, s.labels, s.fn())
			case s.g != nil:
				pr("%s%s %d\n", f.name, s.labels, s.g.Value())
			case s.h != nil:
				snap := s.h.Snapshot()
				var cum uint64
				for i, n := range snap.Buckets {
					cum += n
					if n == 0 && i != HistBuckets-1 {
						continue
					}
					pr("%s_bucket%s %d\n", f.name,
						mergeLabels(s.labels, L("le", fmt.Sprintf("%g", bucketUpper(i)))), cum)
				}
				pr("%s_bucket%s %d\n", f.name, mergeLabels(s.labels, L("le", "+Inf")), snap.Count)
				pr("%s_sum%s %d\n", f.name, s.labels, snap.Sum)
				pr("%s_count%s %d\n", f.name, s.labels, snap.Count)
			}
		}
	}
	// Pull-side series last: grouped per collected name so HELP/TYPE
	// headers stay unique even when several callbacks share a name.
	type collected struct {
		help  string
		rows  []string
		value []float64
	}
	dyn := make(map[string]*collected)
	var dynNames []string
	emit := func(name, help string, labels []Label, value float64) {
		c, ok := dyn[name]
		if !ok {
			c = &collected{help: help}
			dyn[name] = c
			dynNames = append(dynNames, name)
		}
		c.rows = append(c.rows, renderLabels(labels))
		c.value = append(c.value, value)
	}
	for _, fn := range collects {
		fn(emit)
	}
	sort.Strings(dynNames)
	for _, name := range dynNames {
		c := dyn[name]
		if c.help != "" {
			pr("# HELP %s %s\n", name, c.help)
		}
		pr("# TYPE %s gauge\n", name)
		for i, row := range c.rows {
			pr("%s%s %g\n", name, row, c.value[i])
		}
	}
	return err
}
