package obs

// Satellite coverage: the event path under composition churn. While
// layers are added and removed concurrently with admissions and a hostile
// reader snapshots the rings, the collector must (a) never block the
// admission path and (b) never lose per-domain ordering — sequence
// numbers strictly increase and each invocation's lifecycle events stay
// in order within its domain. Run under -race via the Makefile.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/aspect"
	"repro/internal/moderator"
)

func TestObsUnderLayerChurn(t *testing.T) {
	mod := moderator.New("churny")
	const methods = 4
	names := make([]string, methods)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
		pass := &aspect.Func{AspectName: "pass-" + names[i], AspectKind: aspect.KindSynchronization}
		if err := mod.Register(names[i], aspect.KindSynchronization, pass); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCollector(WithSampleEvery(1), WithRingCapacity(256))
	mod.SetTracer(c)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Layer churn: an outer audit layer appears and disappears.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := mod.AddLayer("churn", moderator.Outermost); err != nil {
				if !errors.Is(err, moderator.ErrLayerExists) {
					t.Errorf("AddLayer: %v", err)
					return
				}
			} else {
				for _, m := range names {
					a := &aspect.Func{AspectName: "churn-" + m, AspectKind: aspect.KindAudit}
					if err := mod.RegisterIn("churn", m, aspect.KindAudit, a); err != nil {
						t.Errorf("RegisterIn: %v", err)
						return
					}
				}
			}
			if err := mod.RemoveLayer("churn"); err != nil && !errors.Is(err, moderator.ErrNoSuchLayer) {
				t.Errorf("RemoveLayer: %v", err)
				return
			}
		}
	}()

	// Hostile reader: keeps snapshotting so ring writers hit TryLock
	// contention and must drop rather than stall.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Events(0)
			}
		}
	}()

	// Admission traffic across all methods.
	const perWorker = 2000
	var workers sync.WaitGroup
	for w := 0; w < methods; w++ {
		workers.Add(1)
		go func(method string) {
			defer workers.Done()
			for i := 0; i < perWorker; i++ {
				inv := aspect.NewInvocation(nil, "churny", method, nil)
				adm, err := mod.Preactivation(inv)
				if err != nil {
					t.Errorf("%s: %v", method, err)
					return
				}
				mod.Postactivation(inv, adm)
			}
		}(names[w])
	}
	workers.Wait()
	close(stop)
	wg.Wait()

	// Per-domain ordering survived the churn.
	domains := 0
	c.rings.Range(func(k, v any) bool {
		domains++
		r := v.(*Ring)
		snap := r.Snapshot()
		for i := 1; i < len(snap); i++ {
			if snap[i].Seq <= snap[i-1].Seq {
				t.Fatalf("domain %v: seq order violated at %d: %d then %d",
					k, i, snap[i-1].Seq, snap[i].Seq)
			}
		}
		// Lifecycle order per invocation: verdicts before admit before
		// complete, as far as the ring still holds them.
		type prog struct{ admit, complete bool }
		seen := make(map[uint64]*prog)
		for _, e := range snap {
			if e.Invocation == 0 {
				continue
			}
			p := seen[e.Invocation]
			if p == nil {
				p = &prog{}
				seen[e.Invocation] = p
			}
			switch e.Op {
			case "verdict":
				if p.admit || p.complete {
					t.Fatalf("domain %v: verdict after admit/complete for invocation %d", k, e.Invocation)
				}
			case "admit":
				if p.complete {
					t.Fatalf("domain %v: admit after complete for invocation %d", k, e.Invocation)
				}
				p.admit = true
			case "complete":
				p.complete = true
			}
		}
		return true
	})
	if domains == 0 {
		t.Fatal("no domain rings populated")
	}
	total := uint64(0)
	for _, e := range c.Events(0) {
		_ = e
		total++
	}
	if total == 0 {
		t.Fatal("no events survived churn")
	}
	t.Logf("domains=%d buffered=%d drops=%d", domains, total, c.Drops())
}
