package obs

// Shadow-admission observability: the collector polls each registered
// shadow engine at scrape time (exact counters, like Watch sources) and
// serves the recent-divergence log at /shadow. Nothing here touches the
// admission path — the engine's own handoff already never blocks it.

import (
	"repro/internal/moderator"
)

// ShadowSource is the surface the collector polls for shadow-admission
// results. *moderator.Shadow satisfies it.
type ShadowSource interface {
	Component() string
	SampleEvery() int
	Stats() moderator.ShadowStats
	Divergences() []moderator.ShadowDivergence
}

var _ ShadowSource = (*moderator.Shadow)(nil)

// WatchShadow registers a shadow engine: its exact counters appear at
// every /metrics scrape as am_shadow_* series and its stats plus recent
// divergences are served at /shadow.
func (c *Collector) WatchShadow(s ShadowSource) {
	c.mu.Lock()
	c.shadows = append(c.shadows, s)
	c.mu.Unlock()
	c.reg.Collect(func(emit EmitFunc) { collectShadow(s, emit) })
}

func (c *Collector) watchedShadows() []ShadowSource {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ShadowSource(nil), c.shadows...)
}

func collectShadow(s ShadowSource, emit EmitFunc) {
	comp := L("component", s.Component())
	st := s.Stats()
	emit("am_shadow_sampled_total", "Admissions sampled for shadow replay.", []Label{comp}, float64(st.Sampled))
	emit("am_shadow_dropped_total", "Shadow samples dropped on a full handoff buffer.", []Label{comp}, float64(st.Dropped))
	emit("am_shadow_replayed_total", "Shadow samples replayed against the reference semantics.", []Label{comp}, float64(st.Replayed))
	emit("am_shadow_agreements_total", "Shadow replays whose verdict matched the live path.", []Label{comp}, float64(st.Agreements))
	emit("am_shadow_inconclusive_total", "Shadow replays blocked under possibly-changed guard state.", []Label{comp}, float64(st.Inconclusive))
	emit("am_shadow_divergences_total", "Shadow divergences, by class.",
		[]Label{comp, L("class", "verdict")}, float64(st.VerdictDivergences))
	emit("am_shadow_divergences_total", "Shadow divergences, by class.",
		[]Label{comp, L("class", "stack")}, float64(st.StackDivergences))
	emit("am_shadow_divergences_total", "Shadow divergences, by class.",
		[]Label{comp, L("class", "wake")}, float64(st.WakeDivergences))
}

// ShadowComponent is one engine's snapshot in a /shadow response.
type ShadowComponent struct {
	Component   string                       `json:"component"`
	SampleEvery int                          `json:"sample_every"`
	Stats       moderator.ShadowStats        `json:"stats"`
	Divergences []moderator.ShadowDivergence `json:"divergences"`
}

// ShadowDump is the /shadow response body.
type ShadowDump struct {
	Components []ShadowComponent `json:"components"`
}

// ShadowSnapshot builds the introspection snapshot served at /shadow.
func (c *Collector) ShadowSnapshot() ShadowDump {
	dump := ShadowDump{Components: []ShadowComponent{}}
	for _, s := range c.watchedShadows() {
		sc := ShadowComponent{
			Component:   s.Component(),
			SampleEvery: s.SampleEvery(),
			Stats:       s.Stats(),
			Divergences: s.Divergences(),
		}
		if sc.Divergences == nil {
			sc.Divergences = []moderator.ShadowDivergence{}
		}
		dump.Components = append(dump.Components, sc)
	}
	return dump
}
