// Package obs is the observability subsystem for the aspect moderator:
// a lock-light event bus fed by the moderator's trace hooks, a metrics
// core (counters, gauges, log₂ latency histograms), and an HTTP
// introspection surface (/metrics, /trace, /describe).
//
// The paper treats auditing/logging as one of the cross-cutting concerns
// the Aspect Moderator composes; this package provides the substrate for
// observing the moderator itself. It is consumable two ways, per the
// "Pluggable AOP" argument that such mechanisms should compose with the
// aspect machinery rather than bypass it:
//
//   - as low-overhead moderator hooks: install a Collector with
//     (*moderator.Moderator).SetTracer and it receives sampled admission
//     lifecycle events plus every park/wake;
//   - as a first-class aspect layer: internal/aspects/obsaudit records
//     the same event vocabulary through the normal aspect-bank path.
//
// Exactness contract: event-derived series (names containing "sampled",
// plus latency histograms) see one in SampleEvery invocations; park/wake
// series and everything a Watch source exports (admission totals, queue
// counters, parked depth) are exact.
package obs

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/moderator"
	"repro/internal/waitq"
)

// DefaultSampleEvery is the default per-domain sampling rate: one in this
// many invocations carries full trace detail. The rate is chosen so the
// hooks-enabled overhead of the contended E13 workload stays comfortably
// inside the 15% budget (see EXPERIMENTS.md); park/wake accounting and the
// pull-side aggregates remain exact regardless of the rate.
const DefaultSampleEvery = 64

// DefaultRingCapacity is the default per-domain event ring size.
const DefaultRingCapacity = 512

// Option configures a Collector.
type Option func(*Collector)

// WithSampleEvery sets the sampling rate (<=1 traces every invocation).
func WithSampleEvery(n int) Option {
	return func(c *Collector) {
		if n < 1 {
			n = 1
		}
		c.every = n
	}
}

// WithRingCapacity sets the per-domain event ring capacity.
func WithRingCapacity(n int) Option {
	return func(c *Collector) {
		if n < 1 {
			n = 1
		}
		c.ringCap = n
	}
}

// Source is a moderator-like component the Collector polls at scrape time
// for exact aggregates. Both *moderator.Moderator and *moderator.Reference
// satisfy it.
type Source interface {
	Name() string
	Describe() []moderator.LayerInfo
	Stats() moderator.Stats
	QueueStats() map[string]waitq.Stats
	Waiting(method string) int
}

// domainsSource is optionally implemented by sources that shard admission
// into domains (the production Moderator).
type domainsSource interface {
	Domains() [][]string
}

// epochSource is optionally implemented by sources with versioned plan
// epochs and canary staging (both moderator implementations).
type epochSource interface {
	Epoch() uint64
	CanaryInfo() (moderator.CanaryInfo, bool)
}

// Collector implements moderator.Tracer: it routes lifecycle events into
// per-domain rings and pre-resolved metric instruments. Trace never
// blocks (ring writes drop on contention) and never calls back into the
// moderator, per the Tracer contract.
type Collector struct {
	reg     *Registry
	every   int
	ringCap int

	rings   sync.Map // uint64 (domain) -> *Ring
	handles sync.Map // handleKey -> *Counter | *Gauge | *Histogram

	mu       sync.Mutex
	sources  []Source
	shadows  []ShadowSource
	clusters []ClusterSource
}

// NewCollector creates a Collector with its own Registry.
func NewCollector(opts ...Option) *Collector {
	c := &Collector{reg: NewRegistry(), every: DefaultSampleEvery, ringCap: DefaultRingCapacity}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Registry returns the collector's metric registry (for extra series such
// as amrpc client stats).
func (c *Collector) Registry() *Registry { return c.reg }

// SampleEvery implements moderator.Tracer.
func (c *Collector) SampleEvery() int { return c.every }

// Watch registers a source whose exact aggregates (admission totals,
// queue counters, parked depth) are polled at every /metrics scrape and
// whose composition appears in /describe.
func (c *Collector) Watch(s Source) {
	c.mu.Lock()
	c.sources = append(c.sources, s)
	c.mu.Unlock()
	c.reg.Collect(func(emit EmitFunc) { collectSource(s, emit) })
}

func collectSource(s Source, emit EmitFunc) {
	comp := L("component", s.Name())
	st := s.Stats()
	emit("am_admissions_total", "Invocations fully admitted by pre-activation.", []Label{comp}, float64(st.Admissions))
	emit("am_blocks_total", "Times a caller parked on a wait queue.", []Label{comp}, float64(st.Blocks))
	emit("am_aborts_total", "Invocations rejected during pre-activation.", []Label{comp}, float64(st.Aborts))
	emit("am_completions_total", "Post-activations performed.", []Label{comp}, float64(st.Completions))
	qs := s.QueueStats()
	queues := make([]string, 0, len(qs))
	for q := range qs {
		queues = append(queues, q)
	}
	sort.Strings(queues)
	methods := make(map[string]bool, len(queues))
	for _, q := range queues {
		ql := []Label{comp, L("queue", q)}
		emit("am_queue_waits_total", "Callers that parked at least once, per queue.", ql, float64(qs[q].Waits))
		emit("am_queue_notifies_total", "Single wake-ups delivered, per queue.", ql, float64(qs[q].Notifies))
		emit("am_queue_broadcasts_total", "Broadcast operations, per queue.", ql, float64(qs[q].Broadcasts))
		emit("am_queue_cancels_total", "Waits abandoned by cancellation, per queue.", ql, float64(qs[q].Cancels))
		if i := strings.IndexByte(q, '/'); i > 0 {
			methods[q[:i]] = true
		}
	}
	names := make([]string, 0, len(methods))
	for m := range methods {
		names = append(names, m)
	}
	sort.Strings(names)
	for _, m := range names {
		emit("am_parked", "Callers currently parked, per method (exact).",
			[]Label{comp, L("method", m)}, float64(s.Waiting(m)))
	}
	if rs, ok := s.(ringSource); ok {
		collectRing(s.Name(), rs, emit)
	}
}

// sources returns a copy of the watched sources.
func (c *Collector) watched() []Source {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Source(nil), c.sources...)
}

// ringFor returns (creating if needed) the ring of one admission domain.
func (c *Collector) ringFor(domain uint64) *Ring {
	if v, ok := c.rings.Load(domain); ok {
		return v.(*Ring)
	}
	v, _ := c.rings.LoadOrStore(domain, NewRing(c.ringCap))
	return v.(*Ring)
}

// Drops returns the total events dropped across all rings.
func (c *Collector) Drops() uint64 {
	var n uint64
	c.rings.Range(func(_, v any) bool {
		n += v.(*Ring).Drops()
		return true
	})
	return n
}

// Events returns up to max buffered events across all domains, oldest
// first (by capture time, then domain/seq). max <= 0 returns everything.
func (c *Collector) Events(max int) []Event {
	var all []Event
	c.rings.Range(func(_, v any) bool {
		all = append(all, v.(*Ring).Snapshot()...)
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		if all[i].Domain != all[j].Domain {
			return all[i].Domain < all[j].Domain
		}
		return all[i].Seq < all[j].Seq
	})
	if max > 0 && len(all) > max {
		all = all[len(all)-max:]
	}
	return all
}

// handleKey addresses one pre-resolved metric instrument. id is a hid*
// constant; a and b are the op-specific label values.
type handleKey struct {
	id   uint8
	a, b string
}

const (
	hidVerdictHist uint8 = iota
	hidVerdictCount
	hidParkCount
	hidWaitingGauge
	hidWaitHist
	hidAbandonCount
	hidTicketCount
	hidAdmitCount
	hidAbortCount
	hidPreHist
	hidPostHist
	hidPostactHist
	hidErrCount
	hidAspectCount
	hidSpanHist
)

func (c *Collector) counterFor(k handleKey, name, help string, labels ...Label) *Counter {
	if v, ok := c.handles.Load(k); ok {
		return v.(*Counter)
	}
	v, _ := c.handles.LoadOrStore(k, c.reg.CounterOf(name, help, labels...))
	return v.(*Counter)
}

func (c *Collector) gaugeFor(k handleKey, name, help string, labels ...Label) *Gauge {
	if v, ok := c.handles.Load(k); ok {
		return v.(*Gauge)
	}
	v, _ := c.handles.LoadOrStore(k, c.reg.GaugeOf(name, help, labels...))
	return v.(*Gauge)
}

func (c *Collector) histFor(k handleKey, name, help string, labels ...Label) *Histogram {
	if v, ok := c.handles.Load(k); ok {
		return v.(*Histogram)
	}
	v, _ := c.handles.LoadOrStore(k, c.reg.HistogramOf(name, help, labels...))
	return v.(*Histogram)
}

// Trace implements moderator.Tracer. It runs while the admission domain's
// mutex is held: metric updates are a handle lookup plus an atomic; the
// ring write drops rather than blocks.
func (c *Collector) Trace(ev moderator.TraceEvent) {
	switch ev.Op {
	case moderator.TraceTicket:
		c.counterFor(handleKey{hidTicketCount, ev.Method, ""},
			"am_tickets_total", "Sticky wait tickets issued.", L("method", ev.Method)).Inc()
	case moderator.TraceVerdict:
		c.histFor(handleKey{hidVerdictHist, ev.Method, ev.Aspect},
			"am_precondition_ns", "Precondition hook latency (sampled).",
			L("method", ev.Method), L("aspect", ev.Aspect)).Observe(ev.Nanos)
		c.counterFor(handleKey{hidVerdictCount, ev.Method, ev.Verdict.String()},
			"am_verdicts_total", "Precondition verdicts (sampled).",
			L("method", ev.Method), L("verdict", ev.Verdict.String())).Inc()
	case moderator.TracePark:
		c.counterFor(handleKey{hidParkCount, ev.Method, string(ev.Kind)},
			"am_parks_total", "Callers parked on a wait queue (exact).",
			L("method", ev.Method), L("kind", string(ev.Kind))).Inc()
		c.gaugeFor(handleKey{hidWaitingGauge, ev.Method, ""},
			"am_waiting", "Callers currently parked, per method (event-derived).",
			L("method", ev.Method)).Add(1)
	case moderator.TraceWake:
		c.gaugeFor(handleKey{hidWaitingGauge, ev.Method, ""},
			"am_waiting", "Callers currently parked, per method (event-derived).",
			L("method", ev.Method)).Add(-1)
		c.histFor(handleKey{hidWaitHist, ev.Method, ""},
			"am_wait_ns", "Park duration (exact).", L("method", ev.Method)).Observe(ev.Nanos)
		if ev.Err != "" {
			c.counterFor(handleKey{hidAbandonCount, ev.Method, ""},
				"am_wait_abandons_total", "Waits abandoned by cancellation (exact).",
				L("method", ev.Method)).Inc()
		}
	case moderator.TraceAdmit:
		c.counterFor(handleKey{hidAdmitCount, ev.Method, ""},
			"am_sampled_admissions_total", "Admissions seen by sampling.",
			L("method", ev.Method)).Inc()
		c.histFor(handleKey{hidPreHist, ev.Method, ""},
			"am_preactivation_ns", "Total pre-activation latency (sampled).",
			L("method", ev.Method)).Observe(ev.Nanos)
	case moderator.TraceAbort:
		c.counterFor(handleKey{hidAbortCount, ev.Method, ""},
			"am_sampled_aborts_total", "Aborts seen by sampling.",
			L("method", ev.Method)).Inc()
	case moderator.TracePost:
		c.histFor(handleKey{hidPostHist, ev.Method, ev.Aspect},
			"am_postaction_ns", "Postaction hook latency (sampled).",
			L("method", ev.Method), L("aspect", ev.Aspect)).Observe(ev.Nanos)
	case moderator.TraceComplete:
		c.histFor(handleKey{hidPostactHist, ev.Method, ""},
			"am_postactivation_ns", "Total post-activation latency (sampled).",
			L("method", ev.Method)).Observe(ev.Nanos)
		if ev.Err != "" {
			c.counterFor(handleKey{hidErrCount, ev.Method, ""},
				"am_sampled_errors_total", "Completions carrying a body error, seen by sampling.",
				L("method", ev.Method)).Inc()
		}
	case moderator.TraceAspectPre, moderator.TraceAspectPost, moderator.TraceAspectCancel:
		c.counterFor(handleKey{hidAspectCount, ev.Component, ev.Op.String()},
			"am_aspect_events_total", "Events recorded through the aspect-bank path.",
			L("component", ev.Component), L("op", ev.Op.String())).Inc()
		if ev.Op == moderator.TraceAspectPost && ev.Nanos > 0 {
			c.histFor(handleKey{hidSpanHist, ev.Component, ev.Method},
				"am_span_ns", "Pre-to-post span latency recorded by the audit aspect.",
				L("component", ev.Component), L("method", ev.Method)).Observe(ev.Nanos)
		}
	}
	c.ringFor(ev.Domain).Put(eventFrom(ev, time.Now().UnixNano()))
}
