package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/aspect"
	"repro/internal/moderator"
)

type smuggledKey struct{}

// TestShadowEndToEnd wires the full production shape: a moderator with a
// deliberately faulty guard (its verdict depends on an attribute the
// caller smuggles onto the invocation, invisible to replay), a shadow
// engine sampling every admission, a collector watching it, and the HTTP
// handler — then asserts the divergence surfaces at /shadow AND as
// am_shadow_* metrics.
func TestShadowEndToEnd(t *testing.T) {
	mod := moderator.New("svc")
	faulty := &aspect.Func{
		AspectName: "smuggling-guard",
		AspectKind: aspect.KindSynchronization,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			if inv.Attr(smuggledKey{}) != nil {
				return aspect.Resume
			}
			return aspect.Abort
		},
	}
	if err := mod.Register("open", aspect.KindSynchronization, faulty); err != nil {
		t.Fatal(err)
	}
	// A staged canary shows up in /describe next to the epoch.
	err := mod.StageCanary(25, func(tx *moderator.CanaryTx) error { return nil })
	if err != nil {
		t.Fatal(err)
	}

	c := NewCollector(WithSampleEvery(1))
	c.Watch(mod)
	sh := moderator.NewShadow(mod, moderator.WithShadowSampleEvery(1))
	sh.Start()
	mod.SetShadow(sh)
	c.WatchShadow(sh)

	const n = 16
	for i := 0; i < n; i++ {
		inv := aspect.NewInvocation(context.Background(), "svc", "open", nil)
		inv.SetAttr(smuggledKey{}, true)
		adm, err := mod.Preactivation(inv)
		if err != nil {
			t.Fatalf("admission %d: %v", i, err)
		}
		mod.Postactivation(inv, adm)
	}
	mod.SetShadow(nil)
	sh.Stop()

	srv := httptest.NewServer(NewHTTPHandler(c))
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	var dump ShadowDump
	if err := json.Unmarshal([]byte(get("/shadow")), &dump); err != nil {
		t.Fatalf("decode /shadow: %v", err)
	}
	if len(dump.Components) != 1 {
		t.Fatalf("/shadow components = %d, want 1", len(dump.Components))
	}
	sc := dump.Components[0]
	if sc.Component != "svc" || sc.SampleEvery != 1 {
		t.Errorf("shadow component header = %+v", sc)
	}
	if sc.Stats.Sampled != n {
		t.Errorf("/shadow sampled = %d, want %d", sc.Stats.Sampled, n)
	}
	if sc.Stats.VerdictDivergences == 0 {
		t.Fatalf("injected fault produced no verdict divergences at /shadow: %+v", sc.Stats)
	}
	if len(sc.Divergences) == 0 {
		t.Fatal("/shadow carries no divergence records")
	}
	for _, d := range sc.Divergences {
		if d.Class != "verdict" || d.Method != "open" {
			t.Errorf("unexpected divergence record: %+v", d)
		}
	}

	metrics := get("/metrics")
	for _, want := range []string{
		`am_shadow_sampled_total{component="svc"} 16`,
		`am_shadow_divergences_total{class="verdict",component="svc"}`,
		`am_shadow_divergences_total{class="stack",component="svc"} 0`,
		`am_shadow_replayed_total{component="svc"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, metrics)
		}
	}
	if strings.Contains(metrics, `am_shadow_divergences_total{class="verdict",component="svc"} 0`) {
		t.Fatal("verdict divergence counter stayed zero in /metrics")
	}

	var desc DescribeSnapshot
	if err := json.Unmarshal([]byte(get("/describe")), &desc); err != nil {
		t.Fatalf("decode /describe: %v", err)
	}
	if len(desc.Components) != 1 {
		t.Fatalf("/describe components = %d, want 1", len(desc.Components))
	}
	comp := desc.Components[0]
	if comp.Epoch != 1 {
		t.Errorf("/describe epoch = %d, want 1", comp.Epoch)
	}
	if comp.Canary == nil || comp.Canary.CandidateEpoch != 2 || comp.Canary.Percent != 25 {
		t.Errorf("/describe canary = %+v, want candidate epoch 2 at 25%%", comp.Canary)
	}
}

// TestShadowSnapshotEmpty: a collector with no shadows yields an empty,
// non-nil component list (stable JSON for older clients).
func TestShadowSnapshotEmpty(t *testing.T) {
	c := NewCollector()
	dump := c.ShadowSnapshot()
	if dump.Components == nil || len(dump.Components) != 0 {
		t.Fatalf("empty snapshot = %+v", dump)
	}
}
