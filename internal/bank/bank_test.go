package bank

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/aspect"
)

func noop(name string, kind aspect.Kind) aspect.Aspect {
	return aspect.New(name, kind, nil, nil)
}

func TestZeroValueBankIsEmpty(t *testing.T) {
	var b Bank
	s := b.Snapshot()
	if s.Len() != 0 || len(s.Methods()) != 0 || s.Version() != 0 {
		t.Fatalf("zero bank not empty: %d entries", s.Len())
	}
	if got := s.ForMethod("open"); got != nil {
		t.Errorf("ForMethod on empty = %v", got)
	}
	if _, ok := s.Get("open", aspect.KindSynchronization); ok {
		t.Error("Get on empty bank must miss")
	}
}

func TestNilSnapshotAccessorsSafe(t *testing.T) {
	var s *Snapshot
	if s.Len() != 0 || s.ForMethod("m") != nil || s.Methods() != nil ||
		s.Kinds("m") != nil || s.Version() != 0 {
		t.Error("nil snapshot accessors must be zero-valued")
	}
	if _, ok := s.Get("m", "k"); ok {
		t.Error("nil snapshot Get must miss")
	}
}

func TestRegisterAndGet(t *testing.T) {
	var b Bank
	syncA := noop("open-sync", aspect.KindSynchronization)
	if err := b.Register("open", aspect.KindSynchronization, syncA); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Snapshot().Get("open", aspect.KindSynchronization)
	if !ok || got != syncA {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := b.Snapshot().Get("open", aspect.KindAuthentication); ok {
		t.Error("wrong kind must miss")
	}
	if _, ok := b.Snapshot().Get("assign", aspect.KindSynchronization); ok {
		t.Error("wrong method must miss")
	}
}

func TestRegisterValidation(t *testing.T) {
	var b Bank
	a := noop("a", aspect.KindAudit)
	if err := b.Register("", aspect.KindAudit, a); err == nil {
		t.Error("empty method must error")
	}
	if err := b.Register("m", "", a); err == nil {
		t.Error("empty kind must error")
	}
	if err := b.Register("m", aspect.KindAudit, nil); err == nil {
		t.Error("nil aspect must error")
	}
	if b.Snapshot().Len() != 0 {
		t.Error("failed registrations must not mutate the bank")
	}
}

func TestRegistrationOrderPreserved(t *testing.T) {
	var b Bank
	names := []string{"first", "second", "third", "fourth"}
	kinds := []aspect.Kind{
		aspect.KindAuthentication, aspect.KindSynchronization,
		aspect.KindAudit, aspect.KindSynchronization,
	}
	for i, n := range names {
		if err := b.Register("open", kinds[i], noop(n, kinds[i])); err != nil {
			t.Fatal(err)
		}
	}
	entries := b.Snapshot().ForMethod("open")
	if len(entries) != 4 {
		t.Fatalf("len = %d", len(entries))
	}
	for i, e := range entries {
		if e.Aspect.Name() != names[i] {
			t.Errorf("entry %d = %q, want %q", i, e.Aspect.Name(), names[i])
		}
		if i > 0 && entries[i].Seq <= entries[i-1].Seq {
			t.Errorf("seq not increasing at %d", i)
		}
	}
	// Get returns the first occupant of a multi-entry cell.
	got, ok := b.Snapshot().Get("open", aspect.KindSynchronization)
	if !ok || got.Name() != "second" {
		t.Errorf("Get first-in-cell = %v", got)
	}
}

func TestKindsFirstOccurrenceOrder(t *testing.T) {
	var b Bank
	mustRegister(t, &b, "m", aspect.KindAudit, "a1")
	mustRegister(t, &b, "m", aspect.KindSynchronization, "s1")
	mustRegister(t, &b, "m", aspect.KindAudit, "a2")
	got := b.Snapshot().Kinds("m")
	want := []aspect.Kind{aspect.KindAudit, aspect.KindSynchronization}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Kinds = %v, want %v", got, want)
	}
}

func TestMethodsSorted(t *testing.T) {
	var b Bank
	for _, m := range []string{"zeta", "alpha", "mid"} {
		mustRegister(t, &b, m, aspect.KindAudit, m)
	}
	got := b.Snapshot().Methods()
	want := []string{"alpha", "mid", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Methods = %v, want %v", got, want)
	}
}

func TestUnregister(t *testing.T) {
	var b Bank
	mustRegister(t, &b, "open", aspect.KindSynchronization, "s1")
	mustRegister(t, &b, "open", aspect.KindSynchronization, "s2")
	mustRegister(t, &b, "open", aspect.KindAudit, "a1")

	if n := b.Unregister("open", aspect.KindSynchronization); n != 2 {
		t.Fatalf("Unregister removed %d, want 2", n)
	}
	s := b.Snapshot()
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if _, ok := s.Get("open", aspect.KindSynchronization); ok {
		t.Error("sync aspects should be gone")
	}
	if _, ok := s.Get("open", aspect.KindAudit); !ok {
		t.Error("audit aspect should remain")
	}
	if n := b.Unregister("open", aspect.KindSynchronization); n != 0 {
		t.Errorf("second Unregister removed %d, want 0", n)
	}
	// Removing the last entry of a method drops the method entirely.
	if n := b.Unregister("open", aspect.KindAudit); n != 1 {
		t.Fatalf("removed %d", n)
	}
	if got := b.Snapshot().Methods(); len(got) != 0 {
		t.Errorf("Methods after full unregister = %v", got)
	}
}

func TestUnregisterMethod(t *testing.T) {
	var b Bank
	mustRegister(t, &b, "open", aspect.KindSynchronization, "s")
	mustRegister(t, &b, "open", aspect.KindAudit, "a")
	mustRegister(t, &b, "assign", aspect.KindSynchronization, "s2")
	if n := b.UnregisterMethod("open"); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if n := b.UnregisterMethod("open"); n != 0 {
		t.Errorf("repeat removed %d, want 0", n)
	}
	if b.Snapshot().Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Snapshot().Len())
	}
}

func TestSnapshotImmutableUnderMutation(t *testing.T) {
	var b Bank
	mustRegister(t, &b, "open", aspect.KindSynchronization, "s1")
	before := b.Snapshot()
	mustRegister(t, &b, "open", aspect.KindAudit, "a1")
	b.Unregister("open", aspect.KindSynchronization)

	// The old snapshot still sees exactly its one entry.
	if before.Len() != 1 {
		t.Errorf("old snapshot Len = %d, want 1", before.Len())
	}
	if _, ok := before.Get("open", aspect.KindSynchronization); !ok {
		t.Error("old snapshot lost its entry")
	}
	if _, ok := before.Get("open", aspect.KindAudit); ok {
		t.Error("old snapshot sees a later registration")
	}
	after := b.Snapshot()
	if after.Version() <= before.Version() {
		t.Errorf("version did not advance: %d -> %d", before.Version(), after.Version())
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	var b Bank
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				m := fmt.Sprintf("m%d", w)
				if err := b.Register(m, aspect.KindAudit, noop("x", aspect.KindAudit)); err != nil {
					t.Errorf("register: %v", err)
					return
				}
				if i%3 == 0 {
					b.Unregister(m, aspect.KindAudit)
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := b.Snapshot()
				// Internal consistency: total matches the sum of entries.
				sum := 0
				for _, m := range s.Methods() {
					sum += len(s.ForMethod(m))
				}
				if sum != s.Len() {
					t.Errorf("snapshot inconsistent: sum=%d len=%d", sum, s.Len())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
}

func TestRegisterUnregisterRoundTripProperty(t *testing.T) {
	// Property: after registering n aspects at one cell and unregistering
	// the cell, the bank's size returns to its prior value and the version
	// advances by exactly n+1 mutations.
	f := func(n uint8, method string) bool {
		if method == "" {
			method = "m"
		}
		count := int(n%10) + 1
		var b Bank
		base := b.Snapshot().Version()
		for i := 0; i < count; i++ {
			if err := b.Register(method, aspect.KindScheduling, noop("p", aspect.KindScheduling)); err != nil {
				return false
			}
		}
		if b.Snapshot().Len() != count {
			return false
		}
		if removed := b.Unregister(method, aspect.KindScheduling); removed != count {
			return false
		}
		s := b.Snapshot()
		return s.Len() == 0 && s.Version() == base+uint64(count)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellIsolationProperty(t *testing.T) {
	// Property: registering into one cell never changes what other cells
	// return.
	f := func(methods []string) bool {
		var b Bank
		registered := make(map[string]int)
		for _, m := range methods {
			if m == "" {
				continue
			}
			if err := b.Register(m, aspect.KindMetrics, noop(m, aspect.KindMetrics)); err != nil {
				return false
			}
			registered[m]++
			for other, n := range registered {
				if got := len(b.Snapshot().ForMethod(other)); got != n {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func mustRegister(t *testing.T, b *Bank, method string, kind aspect.Kind, name string) {
	t.Helper()
	if err := b.Register(method, kind, noop(name, kind)); err != nil {
		t.Fatalf("register %s/%s: %v", method, kind, err)
	}
}
