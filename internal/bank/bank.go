// Package bank implements the aspect bank of the Aspect Moderator
// framework: the two-dimensional (participating method x concern kind)
// registry in which a component's aspect objects are stored at
// initialization time and referenced during method invocation (the paper's
// Figure 9 registers aspects into a two-dimensional array; the "aspect
// bank" of Figure 1 generalizes it to a hierarchical composition structure).
//
// The bank is copy-on-write: mutations (Register, Unregister) build a new
// immutable snapshot, while readers take the current Snapshot once per
// invocation and evaluate against it. This gives the framework its dynamic
// adaptability guarantee — aspects can be added or removed while
// invocations are in flight, and every in-flight invocation completes
// against the composition it was admitted under.
package bank

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/aspect"
)

// Entry is one cell occupant of the bank: an aspect object at coordinates
// (Method, Kind). Seq records registration order, which fixes evaluation
// order within a moderator layer.
type Entry struct {
	Method string
	Kind   aspect.Kind
	Aspect aspect.Aspect
	Seq    uint64
}

// Snapshot is an immutable view of the bank's contents. All methods are
// safe for concurrent use.
type Snapshot struct {
	// byMethod holds entries per method in registration order.
	byMethod map[string][]Entry
	// total is the number of entries across all methods.
	total int
	// version increments with every mutation of the owning bank.
	version uint64
}

// ForMethod returns the entries registered for the given participating
// method, in registration order. The returned slice is shared and must not
// be modified.
func (s *Snapshot) ForMethod(method string) []Entry {
	if s == nil {
		return nil
	}
	return s.byMethod[method]
}

// Get returns the first aspect registered at (method, kind), following the
// paper's one-aspect-per-cell usage, and whether the cell is occupied.
func (s *Snapshot) Get(method string, kind aspect.Kind) (aspect.Aspect, bool) {
	if s == nil {
		return nil, false
	}
	for _, e := range s.byMethod[method] {
		if e.Kind == kind {
			return e.Aspect, true
		}
	}
	return nil, false
}

// Methods returns the sorted list of participating methods that have at
// least one aspect registered.
func (s *Snapshot) Methods() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.byMethod))
	for m := range s.byMethod {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// EachMethod calls fn once per participating method that has at least one
// aspect registered, in unspecified order, without allocating. Callers that
// need a stable order use Methods instead; plan compilation (which merges
// methods from several layers into a map anyway) uses this.
func (s *Snapshot) EachMethod(fn func(method string)) {
	if s == nil {
		return
	}
	for m := range s.byMethod {
		fn(m)
	}
}

// Kinds returns the distinct kinds registered for a method, in registration
// order of their first occurrence.
func (s *Snapshot) Kinds(method string) []aspect.Kind {
	if s == nil {
		return nil
	}
	entries := s.byMethod[method]
	seen := make(map[aspect.Kind]bool, len(entries))
	out := make([]aspect.Kind, 0, len(entries))
	for _, e := range entries {
		if !seen[e.Kind] {
			seen[e.Kind] = true
			out = append(out, e.Kind)
		}
	}
	return out
}

// Len returns the total number of registered entries.
func (s *Snapshot) Len() int {
	if s == nil {
		return 0
	}
	return s.total
}

// Version returns the mutation count of the owning bank at snapshot time.
func (s *Snapshot) Version() uint64 {
	if s == nil {
		return 0
	}
	return s.version
}

// Bank is a concurrent, copy-on-write aspect registry. The zero value is
// an empty bank ready for use.
type Bank struct {
	mu      sync.Mutex // serializes writers
	current atomic.Pointer[Snapshot]
	nextSeq uint64
}

// New returns an empty bank. Equivalent to new(Bank); provided for symmetry.
func New() *Bank { return new(Bank) }

var emptySnapshot = &Snapshot{byMethod: map[string][]Entry{}}

// Snapshot returns the current immutable view. It never returns nil.
func (b *Bank) Snapshot() *Snapshot {
	if s := b.current.Load(); s != nil {
		return s
	}
	return emptySnapshot
}

// Register stores an aspect at (method, kind). Multiple aspects may occupy
// one cell; they evaluate in registration order. Register returns an error
// for an empty method, an invalid kind, or a nil aspect.
func (b *Bank) Register(method string, kind aspect.Kind, a aspect.Aspect) error {
	if method == "" {
		return fmt.Errorf("bank: register %q/%q: empty method", method, kind)
	}
	if err := kind.Validate(); err != nil {
		return fmt.Errorf("bank: register %q: %w", method, err)
	}
	if a == nil {
		return fmt.Errorf("bank: register %s/%s: nil aspect", method, kind)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.Snapshot()
	next := old.clone()
	next.byMethod[method] = append(next.byMethod[method], Entry{
		Method: method,
		Kind:   kind,
		Aspect: a,
		Seq:    b.nextSeq,
	})
	b.nextSeq++
	next.total = old.total + 1
	next.version = old.version + 1
	b.current.Store(next)
	return nil
}

// Unregister removes every aspect at (method, kind). It reports the number
// of entries removed.
func (b *Bank) Unregister(method string, kind aspect.Kind) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.Snapshot()
	entries := old.byMethod[method]
	keep := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if e.Kind != kind {
			keep = append(keep, e)
		}
	}
	removed := len(entries) - len(keep)
	if removed == 0 {
		return 0
	}
	next := old.clone()
	if len(keep) == 0 {
		delete(next.byMethod, method)
	} else {
		next.byMethod[method] = keep
	}
	next.total = old.total - removed
	next.version = old.version + 1
	b.current.Store(next)
	return removed
}

// UnregisterMethod removes every aspect of a method, reporting how many
// entries were removed.
func (b *Bank) UnregisterMethod(method string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.Snapshot()
	removed := len(old.byMethod[method])
	if removed == 0 {
		return 0
	}
	next := old.clone()
	delete(next.byMethod, method)
	next.total = old.total - removed
	next.version = old.version + 1
	b.current.Store(next)
	return removed
}

// clone copies the snapshot's method map; entry slices are re-sliced
// defensively so appends by the writer never alias a published snapshot.
func (s *Snapshot) clone() *Snapshot {
	next := &Snapshot{
		byMethod: make(map[string][]Entry, len(s.byMethod)+1),
		total:    s.total,
		version:  s.version,
	}
	for m, entries := range s.byMethod {
		cp := make([]Entry, len(entries))
		copy(cp, entries)
		next.byMethod[m] = cp
	}
	return next
}
