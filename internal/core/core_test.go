package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/aspect"
	"repro/internal/factory"
	"repro/internal/moderator"
	"repro/internal/proxy"
)

// testFactory provides sync and auth tracer aspects for any method,
// recording creations so tests can verify the Figure-2 initialization
// sequence (create before register, one aspect per declared cell).
type testFactory struct {
	reg     *factory.Registry
	created []string
}

func newTestFactory(t *testing.T) *testFactory {
	t.Helper()
	tf := &testFactory{reg: factory.NewRegistry()}
	provide := func(kind aspect.Kind) {
		err := tf.reg.Provide(factory.Wildcard, kind, func(method string, target any) (aspect.Aspect, error) {
			tf.created = append(tf.created, string(kind)+"/"+method)
			return aspect.New(string(kind)+"/"+method, kind, nil, nil), nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	provide(aspect.KindSynchronization)
	provide(aspect.KindAuthentication)
	return tf
}

func (tf *testFactory) Create(method string, kind aspect.Kind, target any) (aspect.Aspect, error) {
	return tf.reg.Create(method, kind, target)
}

func body(result any) proxy.Method {
	return func(*aspect.Invocation) (any, error) { return result, nil }
}

func TestBuildEmptyNameFails(t *testing.T) {
	if _, err := NewComponent("").Build(); err == nil {
		t.Fatal("empty name must fail Build")
	}
}

func TestGuardWithoutFactoryFails(t *testing.T) {
	b := NewComponent("c")
	b.Bind("m", body(nil))
	b.Guard("m", aspect.KindSynchronization)
	if _, err := b.Build(); err == nil {
		t.Fatal("Guard without factory must fail Build")
	}
}

func TestInitializationPhaseCreatesAndRegisters(t *testing.T) {
	// Figure 2: for each declared (method, kind), the factory creates an
	// aspect and the moderator registers it before any invocation.
	tf := newTestFactory(t)
	b := NewComponent("ticket", WithFactory(tf), WithTarget("the-target"))
	b.Bind("open", body("opened"))
	b.Bind("assign", body("assigned"))
	b.Guard("open", aspect.KindSynchronization)
	b.Guard("assign", aspect.KindSynchronization)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantCreated := []string{"synchronization/open", "synchronization/assign"}
	if !reflect.DeepEqual(tf.created, wantCreated) {
		t.Errorf("factory creations = %v, want %v", tf.created, wantCreated)
	}
	for _, m := range []string{"open", "assign"} {
		aspects := c.Moderator().Aspects(m)
		if len(aspects) != 1 || aspects[0].Kind() != aspect.KindSynchronization {
			t.Errorf("method %s aspects = %v", m, aspects)
		}
	}
	got, err := c.Proxy().Invoke(context.Background(), "open", "t-1")
	if err != nil || got != "opened" {
		t.Errorf("invoke = %v, %v", got, err)
	}
}

func TestUseRegistersInstanceDirectly(t *testing.T) {
	calls := 0
	spy := aspect.New("spy", aspect.KindAudit, func(*aspect.Invocation) aspect.Verdict {
		calls++
		return aspect.Resume
	}, nil)
	b := NewComponent("c")
	b.Bind("m", body(nil))
	b.Use("m", aspect.KindAudit, spy)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Proxy().Invoke(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("aspect calls = %d, want 1", calls)
	}
}

func TestDeclaredLayerOrdering(t *testing.T) {
	var order []string
	mk := func(name string) aspect.Aspect {
		return aspect.New(name, aspect.Kind(name), func(*aspect.Invocation) aspect.Verdict {
			order = append(order, name)
			return aspect.Resume
		}, nil)
	}
	b := NewComponent("c")
	b.Bind("m", body(nil))
	b.Layer("outer", moderator.Outermost)
	b.UseIn("outer", "m", "outer-kind", mk("outer"))
	b.Use("m", "base-kind", mk("base"))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Proxy().Invoke(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}
	want := []string{"outer", "base"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("evaluation order = %v, want %v", order, want)
	}
}

func TestBuildErrorsPropagate(t *testing.T) {
	// Duplicate binding.
	b := NewComponent("c")
	b.Bind("m", body(nil))
	b.Bind("m", body(nil))
	if _, err := b.Build(); err == nil {
		t.Error("duplicate Bind must fail Build")
	}

	// Unknown layer in UseIn.
	b2 := NewComponent("c")
	b2.Bind("m", body(nil))
	b2.UseIn("ghost", "m", "k", aspect.New("a", "k", nil, nil))
	if _, err := b2.Build(); !errors.Is(err, moderator.ErrNoSuchLayer) {
		t.Errorf("UseIn ghost layer: %v", err)
	}

	// Factory that cannot create the requested kind.
	tf := newTestFactory(t)
	b3 := NewComponent("c", WithFactory(tf))
	b3.Bind("m", body(nil))
	b3.Guard("m", aspect.KindMetrics)
	if _, err := b3.Build(); !errors.Is(err, factory.ErrNoConstructor) {
		t.Errorf("unprovided kind: %v", err)
	}
}

func TestAddConcernLayerAdaptabilityScenario(t *testing.T) {
	// Figures 13-18: a running component gains authentication without any
	// change to functional code; the new concern wraps the old.
	tf := newTestFactory(t)
	b := NewComponent("ticket", WithFactory(tf))
	b.Bind("open", body(nil))
	b.Bind("assign", body(nil))
	b.Guard("open", aspect.KindSynchronization)
	b.Guard("assign", aspect.KindSynchronization)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Before: one aspect per method.
	if got := len(c.Moderator().Aspects("open")); got != 1 {
		t.Fatalf("aspects before = %d", got)
	}

	if err := c.AddConcernLayer("authentication", moderator.Outermost,
		aspect.KindAuthentication, "open", "assign"); err != nil {
		t.Fatal(err)
	}
	aspects := c.Moderator().Aspects("open")
	if len(aspects) != 2 {
		t.Fatalf("aspects after = %d, want 2", len(aspects))
	}
	if aspects[0].Kind() != aspect.KindAuthentication || aspects[1].Kind() != aspect.KindSynchronization {
		t.Errorf("onion order wrong: %v then %v", aspects[0].Kind(), aspects[1].Kind())
	}
	wantLayers := []string{"authentication", moderator.BaseLayer}
	if got := c.Moderator().Layers(); !reflect.DeepEqual(got, wantLayers) {
		t.Errorf("layers = %v, want %v", got, wantLayers)
	}

	// And remove it again.
	if err := c.RemoveConcernLayer("authentication"); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Moderator().Aspects("open")); got != 1 {
		t.Errorf("aspects after removal = %d, want 1", got)
	}
}

func TestAddConcernLayerWithoutFactory(t *testing.T) {
	b := NewComponent("c")
	b.Bind("m", body(nil))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddConcernLayer("auth", moderator.Outermost, aspect.KindAuthentication, "m"); err == nil {
		t.Fatal("AddConcernLayer without factory must error")
	}
}

func TestAddConcernLayerDuplicate(t *testing.T) {
	tf := newTestFactory(t)
	b := NewComponent("c", WithFactory(tf))
	b.Bind("m", body(nil))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddConcernLayer("auth", moderator.Outermost, aspect.KindAuthentication, "m"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddConcernLayer("auth", moderator.Outermost, aspect.KindAuthentication, "m"); !errors.Is(err, moderator.ErrLayerExists) {
		t.Errorf("duplicate layer: %v", err)
	}
}

func TestWithModeratorOptionsForwarded(t *testing.T) {
	b := NewComponent("c", WithModeratorOptions(moderator.WithWakeMode(moderator.WakeSingle)))
	b.Bind("m", body(nil))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// No direct accessor for wake mode; the moderator must at least have
	// been constructed with the component name.
	if c.Moderator().Name() != "c" {
		t.Errorf("moderator name = %q", c.Moderator().Name())
	}
}

func TestGroupDeclaresAdmissionDomain(t *testing.T) {
	b := NewComponent("c")
	b.Bind("put", body(nil)).Bind("get", body(nil)).Bind("peek", body(nil))
	b.Group("put", "get")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"get", "put"}}
	if got := c.Moderator().Domains(); !reflect.DeepEqual(got, want) {
		t.Errorf("Domains = %v, want %v", got, want)
	}
}

func TestGroupNeedsTwoMethods(t *testing.T) {
	b := NewComponent("c")
	b.Bind("m", body(nil))
	b.Group("m")
	if _, err := b.Build(); err == nil {
		t.Fatal("single-method Group must fail Build")
	}
}
