package core_test

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/aspect"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/syncguard"
	"repro/internal/core"
	"repro/internal/moderator"
)

// Example assembles the smallest guarded component: one method, one
// synchronization aspect.
func Example() {
	counter := 0
	mutex := syncguard.NewMutex("inc")

	b := core.NewComponent("counter")
	b.Bind("inc", func(*aspect.Invocation) (any, error) {
		counter++
		return counter, nil
	})
	b.Use("inc", aspect.KindSynchronization, mutex.Aspect("inc-mutex"))
	comp, err := b.Build()
	if err != nil {
		fmt.Println("build:", err)
		return
	}

	result, err := comp.Proxy().Invoke(context.Background(), "inc")
	fmt.Println(result, err)
	// Output: 1 <nil>
}

// ExampleComponent_AddConcernLayer reproduces the paper's adaptability
// scenario: an authentication concern layered onto a running component.
func ExampleComponent_AddConcernLayer() {
	store := auth.NewTokenStore()
	token := store.Issue("alice", "client")

	// The factory knows how to create authentication aspects on demand.
	factory := authFactory{store: store}
	b := core.NewComponent("greeter", core.WithFactory(factory))
	b.Bind("greet", func(inv *aspect.Invocation) (any, error) {
		p := auth.PrincipalOf(inv)
		if p == nil {
			return "hello, anonymous", nil
		}
		return "hello, " + p.Name, nil
	})
	comp, _ := b.Build()
	p := comp.Proxy()

	before, _ := p.Invoke(context.Background(), "greet")
	fmt.Println(before)

	// Compose authentication at runtime; anonymous calls now abort.
	_ = comp.AddConcernLayer("security", moderator.Outermost,
		aspect.KindAuthentication, "greet")
	_, err := p.Invoke(context.Background(), "greet")
	fmt.Println(errors.Is(err, auth.ErrUnauthenticated))

	// Authenticated calls carry a token on the invocation.
	inv := aspect.NewInvocation(context.Background(), p.Name(), "greet", nil)
	auth.WithToken(inv, token)
	after, _ := p.Call(inv)
	fmt.Println(after)
	// Output:
	// hello, anonymous
	// true
	// hello, alice
}

// authFactory creates authentication aspects for any method.
type authFactory struct {
	store *auth.TokenStore
}

func (f authFactory) Create(method string, kind aspect.Kind, _ any) (aspect.Aspect, error) {
	if kind != aspect.KindAuthentication {
		return nil, fmt.Errorf("no constructor for %s", kind)
	}
	return auth.Authenticator("authn-"+method, f.store), nil
}
