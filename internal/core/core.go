// Package core is the public face of the Aspect Moderator framework — the
// paper's primary contribution. It assembles the framework's participants
// (functional component, component proxy, aspect moderator, aspect factory,
// aspect bank) and drives the initialization phase of Figure 2: the proxy
// requests each required aspect from the factory and registers it with the
// moderator before any method invocation takes place.
//
// A guarded component is declared with a Builder:
//
//	b := core.NewComponent("ticket",
//		core.WithFactory(ticketFactory),
//		core.WithTarget(server))
//	b.Bind("open", openBody)
//	b.Bind("assign", assignBody)
//	b.Guard("open", aspect.KindSynchronization)
//	b.Guard("assign", aspect.KindSynchronization)
//	p, err := b.Build()
//
// and invoked through the resulting proxy:
//
//	_, err = p.Invoke(ctx, "open", ticket)
//
// New concerns are composed later — without touching functional code — by
// adding moderator layers (see Component.AddConcernLayer), reproducing the
// paper's authentication extension of Figures 13-18.
package core

import (
	"errors"
	"fmt"

	"repro/internal/aspect"
	"repro/internal/factory"
	"repro/internal/moderator"
	"repro/internal/proxy"
)

// Component is a fully assembled guarded component: the proxy plus its
// moderator and the factory it was initialized from.
type Component struct {
	proxy   *proxy.Proxy
	factory factory.Factory
	target  any
}

// Proxy returns the component's guarded entry point.
func (c *Component) Proxy() *proxy.Proxy { return c.proxy }

// Moderator returns the component's aspect moderator.
func (c *Component) Moderator() *moderator.Moderator { return c.proxy.Moderator() }

// AddConcernLayer introduces a new concern as a moderator layer and
// populates it from the component's factory: for each listed method, the
// factory creates an aspect of the given kind and the moderator registers
// it in the new layer. This is the paper's dynamic adaptability scenario —
// the ExtendedTicketServerProxy of Figure 13 distilled into one call.
func (c *Component) AddConcernLayer(layerName string, pos moderator.Position, kind aspect.Kind, methods ...string) error {
	if c.factory == nil {
		return fmt.Errorf("core: component %s: no factory configured", c.proxy.Name())
	}
	mod := c.Moderator()
	if err := mod.AddLayer(layerName, pos); err != nil {
		return err
	}
	for _, m := range methods {
		a, err := c.factory.Create(m, kind, c.target)
		if err != nil {
			return fmt.Errorf("core: component %s: layer %s: %w", c.proxy.Name(), layerName, err)
		}
		if err := mod.RegisterIn(layerName, m, kind, a); err != nil {
			return err
		}
	}
	return nil
}

// RemoveConcernLayer removes a previously added concern layer.
func (c *Component) RemoveConcernLayer(layerName string) error {
	return c.Moderator().RemoveLayer(layerName)
}

// Builder accumulates the declaration of a guarded component and assembles
// it in Build. Declarations are validated at Build time, so call sites may
// chain them without per-call checks.
type Builder struct {
	name    string
	factory factory.Factory
	target  any
	modOpts []moderator.Option

	bindings []binding
	layers   []layerDecl
	guards   []guardDecl
	uses     []useDecl
	groups   [][]string
	err      error
}

type binding struct {
	method string
	body   proxy.Method
}

type layerDecl struct {
	name string
	pos  moderator.Position
}

type guardDecl struct {
	layer  string
	method string
	kind   aspect.Kind
}

type useDecl struct {
	layer  string
	method string
	kind   aspect.Kind
	a      aspect.Aspect
}

// BuilderOption configures a Builder.
type BuilderOption func(*Builder)

// WithFactory sets the aspect factory consulted by Guard declarations and
// later AddConcernLayer calls.
func WithFactory(f factory.Factory) BuilderOption {
	return func(b *Builder) { b.factory = f }
}

// WithTarget sets the value handed to factory constructors — typically the
// functional component or the shared guard state.
func WithTarget(target any) BuilderOption {
	return func(b *Builder) { b.target = target }
}

// WithModeratorOptions forwards options (wake policy, wake mode) to the
// component's moderator.
func WithModeratorOptions(opts ...moderator.Option) BuilderOption {
	return func(b *Builder) { b.modOpts = append(b.modOpts, opts...) }
}

// NewComponent starts the declaration of a guarded component.
func NewComponent(name string, opts ...BuilderOption) *Builder {
	b := &Builder{name: name}
	if name == "" {
		b.err = errors.New("core: empty component name")
	}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// Bind declares a participating method with its functional body.
func (b *Builder) Bind(method string, body proxy.Method) *Builder {
	b.bindings = append(b.bindings, binding{method: method, body: body})
	return b
}

// Layer declares an additional moderator layer, created before any Guard or
// Use declarations are installed.
func (b *Builder) Layer(name string, pos moderator.Position) *Builder {
	b.layers = append(b.layers, layerDecl{name: name, pos: pos})
	return b
}

// Guard declares that the factory should create and register an aspect of
// the given kind for the method, in the base layer.
func (b *Builder) Guard(method string, kind aspect.Kind) *Builder {
	return b.GuardIn(moderator.BaseLayer, method, kind)
}

// GuardIn is Guard targeting a named layer declared with Layer.
func (b *Builder) GuardIn(layer, method string, kind aspect.Kind) *Builder {
	b.guards = append(b.guards, guardDecl{layer: layer, method: method, kind: kind})
	return b
}

// Group declares that the listed methods share one admission domain: all
// their synchronization hooks run under a single mutex, the contract
// guards written against the pre-sharding moderator assume. Declare a
// group for every set of methods whose guards share mutable state (a
// bounded buffer's put/get, a reader-writer pair). Groups are applied at
// Build time before any aspect registration or traffic, so they can never
// fail with moderator.ErrDomainActive. Aspects whose Wakes list names
// other methods are grouped automatically at registration; Group is for
// making the coupling explicit in wiring, or for guards that share state
// without waking each other.
func (b *Builder) Group(methods ...string) *Builder {
	if len(methods) < 2 {
		b.err = fmt.Errorf("core: component %s: Group needs at least two methods", b.name)
		return b
	}
	b.groups = append(b.groups, append([]string(nil), methods...))
	return b
}

// Use registers an existing aspect instance for the method in the base
// layer, bypassing the factory.
func (b *Builder) Use(method string, kind aspect.Kind, a aspect.Aspect) *Builder {
	return b.UseIn(moderator.BaseLayer, method, kind, a)
}

// UseIn is Use targeting a named layer declared with Layer.
func (b *Builder) UseIn(layer, method string, kind aspect.Kind, a aspect.Aspect) *Builder {
	b.uses = append(b.uses, useDecl{layer: layer, method: method, kind: kind, a: a})
	return b
}

// Build assembles the component: moderator, proxy, method table, layers,
// and — per the initialization phase of Figure 2 — creation and
// registration of every declared aspect.
func (b *Builder) Build() (*Component, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.guards) > 0 && b.factory == nil {
		return nil, fmt.Errorf("core: component %s: Guard declarations require a factory", b.name)
	}
	mod := moderator.New(b.name, b.modOpts...)
	for _, g := range b.groups {
		if err := mod.GroupMethods(g...); err != nil {
			return nil, fmt.Errorf("core: component %s: %w", b.name, err)
		}
	}
	p := proxy.New(mod)
	for _, bd := range b.bindings {
		if err := p.Bind(bd.method, bd.body); err != nil {
			return nil, err
		}
	}
	for _, l := range b.layers {
		if err := mod.AddLayer(l.name, l.pos); err != nil {
			return nil, err
		}
	}
	for _, g := range b.guards {
		a, err := b.factory.Create(g.method, g.kind, b.target)
		if err != nil {
			return nil, fmt.Errorf("core: component %s: %w", b.name, err)
		}
		if err := mod.RegisterIn(g.layer, g.method, g.kind, a); err != nil {
			return nil, err
		}
	}
	for _, u := range b.uses {
		if err := mod.RegisterIn(u.layer, u.method, u.kind, u.a); err != nil {
			return nil, err
		}
	}
	return &Component{proxy: p, factory: b.factory, target: b.target}, nil
}
