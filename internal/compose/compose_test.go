package compose

import (
	"strings"
	"testing"

	"repro/internal/aspect"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/syncguard"
	"repro/internal/moderator"
	"repro/internal/proxy"
)

func newComponent(t *testing.T, opts ...moderator.Option) *proxy.Proxy {
	t.Helper()
	p := proxy.New(moderator.New("comp", opts...))
	body := func(*aspect.Invocation) (any, error) { return nil, nil }
	for _, m := range []string{"open", "assign"} {
		if err := p.Bind(m, body); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func noop(name string, kind aspect.Kind, wakes ...string) aspect.Aspect {
	return &aspect.Func{AspectName: name, AspectKind: kind, WakeList: wakes}
}

func issuesOf(r *Report, rule string) []Issue {
	var out []Issue
	for _, i := range r.Issues {
		if i.Rule == rule {
			out = append(out, i)
		}
	}
	return out
}

func TestCleanCompositionVerifies(t *testing.T) {
	p := newComponent(t)
	buf, err := syncguard.NewBuffer(4, "open", "assign")
	if err != nil {
		t.Fatal(err)
	}
	mod := p.Moderator()
	if err := mod.Register("open", aspect.KindSynchronization, buf.ProducerAspect()); err != nil {
		t.Fatal(err)
	}
	if err := mod.Register("assign", aspect.KindSynchronization, buf.ConsumerAspect()); err != nil {
		t.Fatal(err)
	}
	r := Verify(p)
	if !r.OK() {
		t.Fatalf("clean composition flagged:\n%s", r)
	}
	if len(r.Issues) != 0 {
		t.Errorf("issues = %v", r.Issues)
	}
	if !strings.Contains(r.String(), "no issues") {
		t.Errorf("report = %q", r.String())
	}
}

func TestWakeTargetsExist(t *testing.T) {
	p := newComponent(t)
	if err := p.Moderator().Register("open", aspect.KindSynchronization,
		noop("g", aspect.KindSynchronization, "asign" /* typo */)); err != nil {
		t.Fatal(err)
	}
	r := Verify(p)
	found := issuesOf(r, "wake-targets-exist")
	if len(found) != 1 || found[0].Severity != Error {
		t.Fatalf("issues = %v", r.Issues)
	}
	if r.OK() {
		t.Error("report must not be OK with an error issue")
	}
	if len(r.Errors()) != 1 {
		t.Errorf("Errors() = %v", r.Errors())
	}
}

func TestDuplicateOnMethod(t *testing.T) {
	p := newComponent(t)
	a := noop("dup", aspect.KindAudit)
	mod := p.Moderator()
	if err := mod.Register("open", aspect.KindAudit, a); err != nil {
		t.Fatal(err)
	}
	if err := mod.Register("open", "audit-again", a); err != nil {
		t.Fatal(err)
	}
	r := Verify(p)
	if got := issuesOf(r, "duplicate-on-method"); len(got) != 1 {
		t.Fatalf("issues = %v", r.Issues)
	}
	// The same instance on different methods is fine (shared guard state).
	p2 := newComponent(t)
	shared := noop("shared", aspect.KindSynchronization)
	if err := p2.Moderator().Register("open", aspect.KindSynchronization, shared); err != nil {
		t.Fatal(err)
	}
	if err := p2.Moderator().Register("assign", aspect.KindSynchronization, shared); err != nil {
		t.Fatal(err)
	}
	if got := issuesOf(Verify(p2), "duplicate-on-method"); len(got) != 0 {
		t.Errorf("cross-method sharing flagged: %v", got)
	}
}

func TestAuthorizationBeforeAuthenticationFlagged(t *testing.T) {
	p := newComponent(t)
	mod := p.Moderator()
	store := auth.NewTokenStore()
	// Wrong order: authorization registered (and thus evaluated) first.
	if err := mod.Register("open", aspect.KindAuthorization,
		auth.Authorizer("authz", auth.ACL{"open": {"client"}})); err != nil {
		t.Fatal(err)
	}
	if err := mod.Register("open", aspect.KindAuthentication,
		auth.Authenticator("authn", store)); err != nil {
		t.Fatal(err)
	}
	r := Verify(p)
	if got := issuesOf(r, "order-authentication-before-authorization"); len(got) != 1 {
		t.Fatalf("issues = %v", r.Issues)
	}

	// Correct order via an outer security layer: no issue.
	p2 := newComponent(t)
	mod2 := p2.Moderator()
	if err := mod2.AddLayer("security", moderator.Outermost); err != nil {
		t.Fatal(err)
	}
	if err := mod2.RegisterIn("security", "open", aspect.KindAuthentication,
		auth.Authenticator("authn", store)); err != nil {
		t.Fatal(err)
	}
	if err := mod2.RegisterIn("security", "open", aspect.KindAuthorization,
		auth.Authorizer("authz", auth.ACL{"open": {"client"}})); err != nil {
		t.Fatal(err)
	}
	if got := issuesOf(Verify(p2), "order-authentication-before-authorization"); len(got) != 0 {
		t.Errorf("correct order flagged: %v", got)
	}
}

func TestAuthenticationOutermostWarning(t *testing.T) {
	p := newComponent(t)
	mod := p.Moderator()
	if err := mod.Register("open", aspect.KindAudit, noop("audit", aspect.KindAudit)); err != nil {
		t.Fatal(err)
	}
	if err := mod.Register("open", aspect.KindAuthentication,
		auth.Authenticator("authn", auth.NewTokenStore())); err != nil {
		t.Fatal(err)
	}
	r := Verify(p)
	got := issuesOf(r, "authentication-outermost")
	if len(got) != 1 || got[0].Severity != Warning {
		t.Fatalf("issues = %v", r.Issues)
	}
	// Warnings alone keep the report OK.
	onlyWarnings := true
	for _, i := range r.Issues {
		if i.Severity == Error {
			onlyWarnings = false
		}
	}
	if onlyWarnings && !r.OK() {
		t.Error("warnings must not fail OK()")
	}
}

func TestUnguardedMethodsWarning(t *testing.T) {
	p := newComponent(t)
	if err := p.Moderator().Register("open", aspect.KindSynchronization,
		noop("g", aspect.KindSynchronization, "open")); err != nil {
		t.Fatal(err)
	}
	r := Verify(p)
	got := issuesOf(r, "unguarded-methods")
	if len(got) != 1 || got[0].Method != "assign" {
		t.Fatalf("issues = %v", r.Issues)
	}

	// A component with no sync aspects at all is consistent.
	p2 := newComponent(t)
	if got := issuesOf(Verify(p2), "unguarded-methods"); len(got) != 0 {
		t.Errorf("bare component flagged: %v", got)
	}
}

func TestWakerCoverage(t *testing.T) {
	// WakeSingle: a guarded method nobody wakes is flagged.
	p := newComponent(t, moderator.WithWakeMode(moderator.WakeSingle))
	mod := p.Moderator()
	if err := mod.Register("open", aspect.KindSynchronization,
		noop("g-open", aspect.KindSynchronization, "open")); err != nil {
		t.Fatal(err)
	}
	if err := mod.Register("assign", aspect.KindSynchronization,
		noop("g-assign", aspect.KindSynchronization)); err != nil { // wakes nobody
		t.Fatal(err)
	}
	r := Verify(p)
	got := issuesOf(r, "waker-coverage")
	if len(got) != 1 || got[0].Method != "assign" {
		t.Fatalf("issues = %v", r.Issues)
	}

	// Broadcast mode: silent.
	p2 := newComponent(t)
	if err := p2.Moderator().Register("open", aspect.KindSynchronization,
		noop("g", aspect.KindSynchronization)); err != nil {
		t.Fatal(err)
	}
	if got := issuesOf(Verify(p2), "waker-coverage"); len(got) != 0 {
		t.Errorf("broadcast mode flagged: %v", got)
	}
}

func TestVerifyAppsAreClean(t *testing.T) {
	// The repository's own applications must pass their default rules.
	// (ticket app in broadcast mode with buffer aspects.)
	pTicket := newComponent(t)
	buf, err := syncguard.NewBuffer(2, "open", "assign")
	if err != nil {
		t.Fatal(err)
	}
	mod := pTicket.Moderator()
	if err := mod.AddLayer("security", moderator.Outermost); err != nil {
		t.Fatal(err)
	}
	store := auth.NewTokenStore()
	for _, m := range []string{"open", "assign"} {
		if err := mod.RegisterIn("security", m, aspect.KindAuthentication,
			auth.Authenticator("authn-"+m, store)); err != nil {
			t.Fatal(err)
		}
	}
	if err := mod.Register("open", aspect.KindSynchronization, buf.ProducerAspect()); err != nil {
		t.Fatal(err)
	}
	if err := mod.Register("assign", aspect.KindSynchronization, buf.ConsumerAspect()); err != nil {
		t.Fatal(err)
	}
	r := Verify(pTicket)
	if !r.OK() {
		t.Fatalf("full stack flagged:\n%s", r)
	}
}

func TestIssueAndSeverityStrings(t *testing.T) {
	i := Issue{Severity: Error, Rule: "r", Method: "", Detail: "d"}
	if !strings.Contains(i.String(), "<component>") || !strings.Contains(i.String(), "error") {
		t.Errorf("issue string = %q", i.String())
	}
	if Warning.String() != "warning" || Error.String() != "error" {
		t.Error("severity strings wrong")
	}
}

func TestErrorsSortedFirst(t *testing.T) {
	p := newComponent(t)
	mod := p.Moderator()
	// Produce both a warning (auth not outermost) and an error (bad wake
	// target).
	if err := mod.Register("open", aspect.KindAudit, noop("audit", aspect.KindAudit)); err != nil {
		t.Fatal(err)
	}
	if err := mod.Register("open", aspect.KindAuthentication,
		auth.Authenticator("authn", auth.NewTokenStore())); err != nil {
		t.Fatal(err)
	}
	if err := mod.Register("assign", aspect.KindSynchronization,
		noop("g", aspect.KindSynchronization, "nope")); err != nil {
		t.Fatal(err)
	}
	r := Verify(p)
	if len(r.Issues) < 2 {
		t.Fatalf("issues = %v", r.Issues)
	}
	if r.Issues[0].Severity != Error {
		t.Errorf("errors must sort first: %v", r.Issues)
	}
}
