// Package compose verifies aspect compositions. The paper leaves open
// whether an aspect-oriented architecture "should further enable formal
// verification of system properties" (Section 1); this package answers
// with a pragmatic rule engine: given a guarded component, it checks the
// composition — the shape of the aspect bank, layer ordering, wake-target
// wiring — against rules that catch the classic composition anomalies
// (Bergmans & Aksit) before the first invocation runs.
//
// Verification is structural, not behavioural: rules inspect what is
// registered where, never execute preconditions. Run it at startup, in
// tests, or after every dynamic re-composition.
package compose

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/aspect"
	"repro/internal/moderator"
	"repro/internal/proxy"
)

// Severity grades an issue.
type Severity int

const (
	// Warning marks a suspicious composition that may be intentional.
	Warning Severity = iota + 1
	// Error marks a composition that is almost certainly wrong.
	Error
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Issue is one finding.
type Issue struct {
	Severity Severity
	Rule     string
	Method   string // empty for component-wide findings
	Detail   string
}

// String renders the issue on one line.
func (i Issue) String() string {
	loc := i.Method
	if loc == "" {
		loc = "<component>"
	}
	return fmt.Sprintf("[%s] %s: %s: %s", i.Severity, i.Rule, loc, i.Detail)
}

// Report is the outcome of a verification run.
type Report struct {
	Component string
	Issues    []Issue
}

// OK reports whether no error-severity issues were found.
func (r *Report) OK() bool {
	for _, i := range r.Issues {
		if i.Severity == Error {
			return false
		}
	}
	return true
}

// Errors returns only the error-severity issues.
func (r *Report) Errors() []Issue {
	var out []Issue
	for _, i := range r.Issues {
		if i.Severity == Error {
			out = append(out, i)
		}
	}
	return out
}

// String renders the report.
func (r *Report) String() string {
	if len(r.Issues) == 0 {
		return fmt.Sprintf("compose: component %s: composition verified, no issues", r.Component)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "compose: component %s: %d issue(s)\n", r.Component, len(r.Issues))
	for _, i := range r.Issues {
		b.WriteString("  " + i.String() + "\n")
	}
	return b.String()
}

// View is the structural snapshot rules inspect.
type View struct {
	Component string
	// Methods are the proxy's bound methods, sorted.
	Methods []string
	// AspectsByMethod lists each method's aspects in evaluation order.
	AspectsByMethod map[string][]aspect.Aspect
	// WakeMode and WakePolicy mirror the moderator's configuration.
	WakeMode moderator.WakeMode
}

// Rule checks one property of a composition.
type Rule interface {
	Name() string
	Check(v *View) []Issue
}

// Verify snapshots the component's composition and runs the rules
// (DefaultRules when none are given).
func Verify(p *proxy.Proxy, rules ...Rule) *Report {
	if len(rules) == 0 {
		rules = DefaultRules()
	}
	mod := p.Moderator()
	v := &View{
		Component:       p.Name(),
		Methods:         p.Methods(),
		AspectsByMethod: make(map[string][]aspect.Aspect, 8),
		WakeMode:        mod.WakeMode(),
	}
	for _, m := range v.Methods {
		v.AspectsByMethod[m] = mod.Aspects(m)
	}
	r := &Report{Component: p.Name()}
	for _, rule := range rules {
		r.Issues = append(r.Issues, rule.Check(v)...)
	}
	sort.SliceStable(r.Issues, func(i, j int) bool {
		if r.Issues[i].Severity != r.Issues[j].Severity {
			return r.Issues[i].Severity > r.Issues[j].Severity // errors first
		}
		return r.Issues[i].Method < r.Issues[j].Method
	})
	return r
}

// DefaultRules returns the standard rule set.
func DefaultRules() []Rule {
	return []Rule{
		WakeTargetsExist{},
		DuplicateOnMethod{},
		OrderBefore{First: aspect.KindAuthentication, Then: aspect.KindAuthorization},
		AuthenticationOutermost{},
		UnguardedMethods{},
		WakerCoverage{},
	}
}

// WakeTargetsExist checks that every method an aspect's Wakes list names is
// actually bound on the component: a typo there silently strands waiters.
type WakeTargetsExist struct{}

// Name implements Rule.
func (WakeTargetsExist) Name() string { return "wake-targets-exist" }

// Check implements Rule.
func (r WakeTargetsExist) Check(v *View) []Issue {
	bound := make(map[string]bool, len(v.Methods))
	for _, m := range v.Methods {
		bound[m] = true
	}
	var out []Issue
	for _, method := range v.Methods {
		for _, a := range v.AspectsByMethod[method] {
			w, ok := a.(aspect.Waker)
			if !ok {
				continue
			}
			for _, target := range w.Wakes() {
				if !bound[target] {
					out = append(out, Issue{
						Severity: Error,
						Rule:     r.Name(),
						Method:   method,
						Detail: fmt.Sprintf("aspect %q wakes unbound method %q",
							a.Name(), target),
					})
				}
			}
		}
	}
	return out
}

// DuplicateOnMethod flags the same aspect instance registered twice on one
// method: its precondition would run (and reserve) twice per invocation.
type DuplicateOnMethod struct{}

// Name implements Rule.
func (DuplicateOnMethod) Name() string { return "duplicate-on-method" }

// Check implements Rule.
func (r DuplicateOnMethod) Check(v *View) []Issue {
	var out []Issue
	for _, method := range v.Methods {
		seen := make(map[aspect.Aspect]bool, 4)
		for _, a := range v.AspectsByMethod[method] {
			if seen[a] {
				out = append(out, Issue{
					Severity: Error,
					Rule:     r.Name(),
					Method:   method,
					Detail:   fmt.Sprintf("aspect %q registered more than once", a.Name()),
				})
			}
			seen[a] = true
		}
	}
	return out
}

// OrderBefore requires that, on every method where both kinds appear, every
// First-kind aspect evaluates before any Then-kind aspect. The default rule
// set instantiates it as authentication-before-authorization: authorizing
// an unauthenticated invocation always denies.
type OrderBefore struct {
	First aspect.Kind
	Then  aspect.Kind
}

// Name implements Rule.
func (r OrderBefore) Name() string {
	return fmt.Sprintf("order-%s-before-%s", r.First, r.Then)
}

// Check implements Rule.
func (r OrderBefore) Check(v *View) []Issue {
	var out []Issue
	for _, method := range v.Methods {
		aspects := v.AspectsByMethod[method]
		lastFirst := -1
		firstThen := -1
		for i, a := range aspects {
			switch a.Kind() {
			case r.First:
				lastFirst = i
			case r.Then:
				if firstThen == -1 {
					firstThen = i
				}
			}
		}
		if lastFirst != -1 && firstThen != -1 && firstThen < lastFirst {
			out = append(out, Issue{
				Severity: Error,
				Rule:     r.Name(),
				Method:   method,
				Detail: fmt.Sprintf("%s aspect evaluates before %s completes",
					r.Then, r.First),
			})
		}
	}
	return out
}

// AuthenticationOutermost warns when an authentication aspect is not the
// first to evaluate on its method: aspects running before it act on an
// unauthenticated invocation.
type AuthenticationOutermost struct{}

// Name implements Rule.
func (AuthenticationOutermost) Name() string { return "authentication-outermost" }

// Check implements Rule.
func (r AuthenticationOutermost) Check(v *View) []Issue {
	var out []Issue
	for _, method := range v.Methods {
		aspects := v.AspectsByMethod[method]
		for i, a := range aspects {
			if a.Kind() != aspect.KindAuthentication {
				continue
			}
			if i != 0 {
				out = append(out, Issue{
					Severity: Warning,
					Rule:     r.Name(),
					Method:   method,
					Detail: fmt.Sprintf("%d aspect(s) evaluate before authentication %q",
						i, a.Name()),
				})
			}
			break
		}
	}
	return out
}

// UnguardedMethods warns about methods with no synchronization aspect on a
// component where other methods have one: a partially guarded component is
// usually an oversight, since the functional code is not thread-safe.
type UnguardedMethods struct{}

// Name implements Rule.
func (UnguardedMethods) Name() string { return "unguarded-methods" }

// Check implements Rule.
func (r UnguardedMethods) Check(v *View) []Issue {
	guarded := 0
	var bare []string
	for _, method := range v.Methods {
		has := false
		for _, a := range v.AspectsByMethod[method] {
			if a.Kind() == aspect.KindSynchronization {
				has = true
				break
			}
		}
		if has {
			guarded++
		} else {
			bare = append(bare, method)
		}
	}
	if guarded == 0 || len(bare) == 0 {
		return nil // all-or-nothing compositions are consistent
	}
	out := make([]Issue, 0, len(bare))
	for _, method := range bare {
		out = append(out, Issue{
			Severity: Warning,
			Rule:     r.Name(),
			Method:   method,
			Detail:   "no synchronization aspect, but sibling methods are guarded",
		})
	}
	return out
}

// WakerCoverage warns, in WakeSingle mode, about guarded methods that no
// aspect's Wakes list covers: blocked callers of such a method can only be
// released by an explicit Kick. In broadcast mode every completion wakes
// everything, so the rule is silent.
type WakerCoverage struct{}

// Name implements Rule.
func (WakerCoverage) Name() string { return "waker-coverage" }

// Check implements Rule.
func (r WakerCoverage) Check(v *View) []Issue {
	if v.WakeMode != moderator.WakeSingle {
		return nil
	}
	woken := make(map[string]bool, len(v.Methods))
	for _, method := range v.Methods {
		for _, a := range v.AspectsByMethod[method] {
			if w, ok := a.(aspect.Waker); ok {
				for _, target := range w.Wakes() {
					woken[target] = true
				}
			}
		}
	}
	var out []Issue
	for _, method := range v.Methods {
		if len(v.AspectsByMethod[method]) > 0 && !woken[method] {
			out = append(out, Issue{
				Severity: Warning,
				Rule:     r.Name(),
				Method:   method,
				Detail:   "guarded method is not in any aspect's wake list (WakeSingle mode)",
			})
		}
	}
	return out
}
