package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/amrpc"
	"repro/internal/aspect"
	"repro/internal/chaosnet"
)

// crashNode simulates a hard node death: the heartbeat and replication
// stream wedge (so leases are NOT gracefully released, no final state
// flush happens, and failover must go through natural expiry + log
// catch-up) and the server drops every connection mid-flight. The node's
// backend keeps its effects — they are part of the final audit.
func crashNode(n *Node) { n.Fail() }

// syncLag reads a node's replication lag for one domain: captured effects
// not yet acknowledged by the successor. Everything at or below the acked
// mark survives the node's death in the successor's replica.
func syncLag(n *Node, domain string) uint64 {
	for _, st := range n.SyncStatus() {
		if st.Domain == domain && st.Leading {
			return st.Lag
		}
	}
	return 0
}

// waitSyncDrained polls until a node's replication lag for domain is zero
// — every captured effect acknowledged by the successor — so a subsequent
// hard kill loses nothing and the takeover audit can demand exactness.
func waitSyncDrained(t *testing.T, n *Node, domain string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if syncLag(n, domain) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication lag on %s/%s never drained", n.ID(), domain)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// liveOwnerOf polls until one of the given (live) nodes owns domain and
// returns it — the holder of the domain's authoritative state copy.
func liveOwnerOf(t *testing.T, nodes []*Node, domain string, timeout time.Duration) *Node {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		for _, n := range nodes {
			if _, ok := n.owns(domain); ok {
				return n
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no live node ever owned %s", domain)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// gatedNet is the fault surface of the soak: every data-plane dial (driver
// → node and node → node) goes through a chaosnet injector, and any
// address can additionally be partitioned — new dials refused and existing
// connections severed — then healed.
type gatedNet struct {
	inj     *chaosnet.Injector
	mu      sync.Mutex
	blocked map[string]bool
	conns   map[string][]net.Conn
}

func newGatedNet(inj *chaosnet.Injector) *gatedNet {
	return &gatedNet{inj: inj, blocked: map[string]bool{}, conns: map[string][]net.Conn{}}
}

func (g *gatedNet) dial(addr string) (net.Conn, error) {
	g.mu.Lock()
	if g.blocked[addr] {
		g.mu.Unlock()
		return nil, fmt.Errorf("gatednet: %s partitioned", addr)
	}
	g.mu.Unlock()
	c, err := g.inj.DialFunc(addr)()
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	g.conns[addr] = append(g.conns[addr], c)
	g.mu.Unlock()
	return c, nil
}

func (g *gatedNet) partition(addr string) {
	g.mu.Lock()
	g.blocked[addr] = true
	severed := g.conns[addr]
	g.conns[addr] = nil
	g.mu.Unlock()
	for _, c := range severed {
		_ = c.Close()
	}
}

func (g *gatedNet) heal(addr string) {
	g.mu.Lock()
	g.blocked[addr] = false
	g.mu.Unlock()
}

// TestClusterFailover certifies lease failover on the ledger app: when the
// owner of a domain dies without releasing its lease, the ring reassigns
// after expiry, the new owner acquires at a strictly higher term, and a
// call issued during the failover window simply waits it out — no lost,
// no forged, no duplicated effect.
func TestClusterFailover(t *testing.T) {
	namingAddr := startNaming(t)
	backends := map[string]*ledgerBackend{}
	var nodes []*Node
	for _, id := range []string{"f1", "f2", "f3"} {
		b, n := startLedgerNode(t, id, namingAddr, nil)
		backends[id] = b
		nodes = append(nodes, n)
	}
	owners := waitOwnership(t, nodes...)
	victim := owners["alpha"]
	oldTerm, _ := victim.owns("alpha")
	var gateway *Node
	for _, n := range nodes {
		if n != victim {
			gateway = n
			break
		}
	}

	ctx := context.Background()
	if _, err := gateway.Invoke(ctx, "alpha-put", "a-pre"); err != nil {
		t.Fatalf("pre-crash put: %v", err)
	}
	// Let replication drain so the hard kill is deterministic: a-pre is in
	// the successor's replica and the takeover audit can demand exactness.
	waitSyncDrained(t, victim, "alpha", 3*time.Second)
	crashNode(victim)

	// This call lands inside the failover window: the lease is still live
	// on the dead node, so routing must chase transport errors and stale
	// directory entries until a survivor takes over.
	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, err := gateway.Invoke(cctx, "alpha-put", "a-post"); err != nil {
		t.Fatalf("put during failover: %v", err)
	}

	// The new owner is a survivor holding a strictly higher term, and it
	// knows the domain was inherited.
	var newOwner *Node
	var newTerm uint64
	for _, n := range nodes {
		if n == victim {
			continue
		}
		if term, ok := n.owns("alpha"); ok {
			newOwner, newTerm = n, term
		}
	}
	if newOwner == nil {
		t.Fatal("no survivor owns alpha after the crash")
	}
	if newTerm <= oldTerm {
		t.Fatalf("failover term %d not above dead owner's term %d", newTerm, oldTerm)
	}
	if newOwner.Status().Takeovers == 0 {
		t.Fatal("takeover not counted on the new owner")
	}

	// Audit: the authoritative copy — the new owner's backend — must hold
	// the domain's WHOLE history exactly once: the pre-crash effect resumed
	// from the replicated log, and the effect admitted during failover. The
	// dead node's backend legitimately keeps its stale copy of a-pre; any
	// third node must hold neither, and nothing may be forged anywhere.
	for id, b := range backends {
		_, unknown := b.snapshot()
		if len(unknown) != 0 {
			t.Fatalf("forged effects on %s: %v", id, unknown)
		}
	}
	auth, _ := backends[newOwner.ID()].snapshot()
	for _, id := range []string{"a-pre", "a-post"} {
		if auth[id] != 1 {
			t.Fatalf("effect %s count %d on new owner %s, want 1 (state not resumed)", id, auth[id], newOwner.ID())
		}
	}
	for _, n := range nodes {
		if n == victim || n == newOwner {
			continue
		}
		ids, _ := backends[n.ID()].snapshot()
		for _, id := range []string{"a-pre", "a-post"} {
			if ids[id] != 0 {
				t.Fatalf("effect %s leaked onto bystander %s", id, n.ID())
			}
		}
	}
	// And the takeover really went through catch-up, not a lucky re-execution.
	resumed := false
	for _, st := range newOwner.SyncStatus() {
		if st.Domain == "alpha" && (st.CatchupApplied > 0 || st.Restored) {
			resumed = true
		}
	}
	if !resumed {
		t.Fatal("new owner reports no catch-up for alpha")
	}
}

// TestClusterFailoverReadmitsParkedCallers pins the park/wake half of
// failover: a caller parked on the dead owner's wait queue is re-admitted
// through the new owner once its guard precondition holds there.
func TestClusterFailoverReadmitsParkedCallers(t *testing.T) {
	namingAddr := startNaming(t)
	_, waitDomain := splitDomains(t, "pa", "pb")
	store := &tokenStore{}
	mkNode := func(id string) *Node {
		cfg := Config{
			ID:         id,
			Local:      newWakeApp(t, store),
			Domains:    map[string]string{"signal": "sig", "wait": waitDomain},
			WakeEdges:  map[string][]string{"signal": {"wait"}},
			Naming:     namingAddr,
			Idempotent: true,
			MemberTTL:  900 * time.Millisecond,
			LeaseTTL:   900 * time.Millisecond,
			Heartbeat:  150 * time.Millisecond,
		}
		n, err := Start(cfg, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		return n
	}
	na, nb := mkNode("pa"), mkNode("pb")

	// Converge with pb owning the wait domain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := nb.owns(waitDomain); ok {
			if len(na.Status().Members) == 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("pb never owned the wait domain")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Park a caller on pb, entering through pa. Then kill pb: the
	// forwarded call dies with its connection, and pa's routing retries
	// it through the failover until pa itself owns the domain — where it
	// parks again, now on the NEW owner's wait queue.
	waitDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		_, err := na.Invoke(ctx, "wait")
		waitDone <- err
	}()
	time.Sleep(300 * time.Millisecond)
	crashNode(nb)

	// Make the guard precondition true. Whether the retried call is
	// mid-flight or already parked on pa, the owner's admission (entry
	// evaluation or wake sweep) must let it through.
	time.Sleep(200 * time.Millisecond)
	store.add()
	select {
	case err := <-waitDone:
		if err != nil {
			t.Fatalf("parked caller not re-admitted after failover: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("caller parked on the dead owner was never re-admitted")
	}
	if _, ok := na.owns(waitDomain); !ok {
		t.Fatal("survivor never took over the wait domain")
	}
	if na.Status().Takeovers == 0 {
		t.Fatal("takeover not counted")
	}
}

// TestClusterChaosSoak is the certification soak of EXPERIMENTS E17:
// ≥1000 guarded invocations across a 3-node cluster whose data plane
// (driver→node and node→node alike) runs through a chaosnet injector,
// while mid-run one node is partitioned and healed and another — the
// owner of a domain — is killed outright. Afterward the effect ledgers
// must show zero lost and zero forged effects, every moderator's
// admission ledger must balance, and no goroutines may leak. The naming
// control plane is deliberately clean: its availability is a separate
// concern from data-plane chaos.
func TestClusterChaosSoak(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	inj := chaosnet.New(chaosnet.Config{
		Seed:             20260808,
		LatencyProb:      0.05,
		LatencyMin:       100 * time.Microsecond,
		LatencyMax:       time.Millisecond,
		CorruptProb:      0.01,
		DropProb:         0.005,
		PartialWriteProb: 0.005,
		ResetProb:        0.002,
		OpsBeforeFaults:  5,
		Record:           true,
	})
	g := newGatedNet(inj)

	namingAddr := startNaming(t)
	backends := map[string]*ledgerBackend{}
	var nodes []*Node
	for _, id := range []string{"s1", "s2", "s3"} {
		b, n := startLedgerNode(t, id, namingAddr, func(cfg *Config) {
			cfg.DialConn = g.dial
		})
		backends[id] = b
		nodes = append(nodes, n)
	}
	owners := waitOwnership(t, nodes...)

	victim := owners["alpha"] // killed mid-run
	partitioned := owners["beta"]
	if partitioned == victim {
		for _, n := range nodes {
			if n != victim {
				partitioned = n
				break
			}
		}
	}

	// The drivers reach the cluster like any external client: a breaker
	// balancer over the (mutable) member list, retried idempotent stubs,
	// chaos on every dial.
	var resMu sync.Mutex
	resAddrs := []string{}
	for _, n := range nodes {
		resAddrs = append(resAddrs, n.Addr())
	}
	bal, err := amrpc.NewBalancerWith(amrpc.BalancerConfig{
		Component: "cledger",
		Resolver: func() ([]string, error) {
			resMu.Lock()
			defer resMu.Unlock()
			return append([]string(nil), resAddrs...), nil
		},
		StubOptions: []amrpc.StubOption{amrpc.WithIdempotent()},
		ClientOptions: []amrpc.ClientOption{
			amrpc.WithRetry(amrpc.RetryPolicy{
				MaxAttempts:    2,
				BaseBackoff:    time.Millisecond,
				MaxBackoff:     8 * time.Millisecond,
				AttemptTimeout: 2 * time.Second,
			}),
			amrpc.WithReconnectBackoff(time.Millisecond, 20*time.Millisecond),
		},
		DialConn:         g.dial,
		BreakerThreshold: 5,
		BreakerCooldown:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fault timeline, concurrent with the workload: partition one node's
	// data plane and heal it mid-run, then kill the alpha owner for good.
	// The victim's ledger and replication lag are frozen at the kill: they
	// are the reference for the takeover-resumes-state audit below.
	var preKill map[string]int
	var lagAtKill uint64
	timelineDone := make(chan struct{})
	go func() {
		defer close(timelineDone)
		time.Sleep(500 * time.Millisecond)
		g.partition(partitioned.Addr())
		time.Sleep(700 * time.Millisecond)
		g.heal(partitioned.Addr())
		time.Sleep(300 * time.Millisecond)
		crashNode(victim)
		// Let cancelled in-flight handlers finish their bodies, then freeze
		// the dead node's state: nothing lands on it after the server died.
		time.Sleep(100 * time.Millisecond)
		preKill, _ = backends[victim.ID()].snapshot()
		lagAtKill = syncLag(victim, "alpha")
		resMu.Lock()
		resAddrs = resAddrs[:0]
		for _, n := range nodes {
			if n != victim {
				resAddrs = append(resAddrs, n.Addr())
			}
		}
		resMu.Unlock()
	}()

	const (
		workers   = 10
		perWorker = 110 // 1100 guarded invocations
	)
	overall := time.Now().Add(90 * time.Second)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				method, id := "alpha-put", fmt.Sprintf("a-%d-%d", w, k)
				if k%2 == 1 {
					method, id = "beta-put", fmt.Sprintf("b-%d-%d", w, k)
				}
				for {
					if time.Now().After(overall) {
						t.Errorf("worker %d: gave up on %s at the overall deadline", w, id)
						return
					}
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					_, err := bal.Invoke(ctx, method, id)
					cancel()
					if err == nil {
						break
					}
					// Every failure class here is transient by design:
					// chaos faults, partition refusals, breaker fail-fasts
					// and failover windows all clear up.
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	<-timelineDone
	if t.Failed() {
		t.FailNow()
	}

	// State-continuity audit: the survivor that took alpha over must hold
	// the victim's whole pre-kill alpha ledger, short of at most the
	// replication lag frozen at the kill (effects captured but never
	// acknowledged die with the leader — that is the bounded-lag contract).
	survivors := make([]*Node, 0, len(nodes)-1)
	for _, n := range nodes {
		if n != victim {
			survivors = append(survivors, n)
		}
	}
	alphaOwner := liveOwnerOf(t, survivors, "alpha", 5*time.Second)
	authIDs, _ := backends[alphaOwner.ID()].snapshot()
	var missing []string
	preKillAlpha := 0
	for id, cnt := range preKill {
		if cnt == 0 || len(id) == 0 || id[0] != 'a' {
			continue
		}
		preKillAlpha++
		if authIDs[id] == 0 {
			missing = append(missing, id)
		}
	}
	if uint64(len(missing)) > lagAtKill {
		t.Fatalf("takeover state: %d of %d pre-kill alpha effects missing on new owner %s, but lag at kill was only %d: e.g. %v",
			len(missing), preKillAlpha, alphaOwner.ID(), lagAtKill, missing[:min(5, len(missing))])
	}
	t.Logf("takeover state: %s resumed %d/%d pre-kill alpha effects (lag at kill %d)",
		alphaOwner.ID(), preKillAlpha-len(missing), preKillAlpha, lagAtKill)

	// Teardown before the ledger audit: Close waits for handler drain, so
	// backends and moderator ledgers are final. The victim's Close is a
	// no-op handover (its old terms are dead, its zombie flush is fenced
	// off by the new leader's term) but still drains and frees it.
	bal.Close()
	for _, n := range nodes {
		n.Close()
	}

	union := map[string]int{}
	for id, b := range backends {
		ids, unknown := b.snapshot()
		if len(unknown) != 0 {
			t.Fatalf("forged effects on %s: %v", id, unknown)
		}
		for k, v := range ids {
			union[k] += v
		}
	}
	var lost []string
	redelivered := 0
	for w := 0; w < workers; w++ {
		for k := 0; k < perWorker; k++ {
			id := fmt.Sprintf("a-%d-%d", w, k)
			if k%2 == 1 {
				id = fmt.Sprintf("b-%d-%d", w, k)
			}
			n, ok := union[id]
			if !ok {
				lost = append(lost, id)
				continue
			}
			if n > 1 {
				// A retry crossed a failover or partition boundary and the
				// first delivery had in fact executed: absorbed by the
				// idempotent effect, reported but not failed.
				redelivered++
			}
			delete(union, id)
		}
	}
	if len(lost) != 0 {
		t.Fatalf("%d effects lost under chaos+failover, e.g. %v", len(lost), lost[:min(5, len(lost))])
	}
	if len(union) != 0 {
		extra := make([]string, 0, 5)
		for id := range union {
			extra = append(extra, id)
			if len(extra) == 5 {
				break
			}
		}
		t.Fatalf("%d unexpected effects appeared, e.g. %v", len(union), extra)
	}
	for _, n := range nodes {
		st := n.cfg.Local.Moderator().Stats()
		if st.Admissions != st.Completions {
			t.Fatalf("node %s moderator ledger unbalanced after drain: admissions=%d completions=%d",
				n.ID(), st.Admissions, st.Completions)
		}
	}
	stTotal := Status{}
	for _, n := range nodes {
		st := n.Status()
		stTotal.Forwards += st.Forwards
		stTotal.ForwardRetries += st.ForwardRetries
		stTotal.StaleRefusals += st.StaleRefusals
		stTotal.Takeovers += st.Takeovers
	}
	t.Logf("soak: %d ops, %d redelivered (absorbed), forwards=%d retries=%d staleRefusals=%d takeovers=%d, faults=%v",
		workers*perWorker, redelivered, stTotal.Forwards, stTotal.ForwardRetries,
		stTotal.StaleRefusals, stTotal.Takeovers, inj.Counts())

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= goroutinesBefore+5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after teardown", goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestClusterDifferentialOracle runs one seeded operation sequence — with
// aborts, duplicate ids, and a mid-sequence graceful owner handover —
// against the 3-node cluster and against a plain single-node Reference of
// the same guarded component, then demands zero divergences: identical
// per-op outcomes and identical final effect ledgers. The cluster is an
// admission-plane refactor of the Reference, so any observable difference
// is a bug.
func TestClusterDifferentialOracle(t *testing.T) {
	refBackend, refProxy := newLedgerApp(t)

	namingAddr := startNaming(t)
	backends := map[string]*ledgerBackend{}
	var nodes []*Node
	for _, id := range []string{"d1", "d2", "d3"} {
		b, n := startLedgerNode(t, id, namingAddr, nil)
		backends[id] = b
		nodes = append(nodes, n)
	}
	owners := waitOwnership(t, nodes...)

	// Enter through a node that owns nothing (with 3 nodes and 2 domains
	// one always exists), so every op crosses the forwarding path; close
	// the alpha owner mid-sequence.
	var gateway *Node
	for _, n := range nodes {
		if n != owners["alpha"] && n != owners["beta"] {
			gateway = n
		}
	}
	if gateway == nil {
		gateway = nodes[0]
		for _, n := range nodes {
			if n != owners["alpha"] {
				gateway = n
				break
			}
		}
	}
	victim := owners["alpha"]
	if victim == gateway {
		victim = owners["beta"]
	}

	rng := rand.New(rand.NewSource(20260808))
	retried := map[string]bool{}
	clusterInvoke := func(method, id string) (any, error) {
		deadline := time.Now().Add(15 * time.Second)
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			res, err := gateway.Invoke(ctx, method, id)
			cancel()
			if err == nil || errors.Is(err, aspect.ErrAborted) || time.Now().After(deadline) {
				return res, err
			}
			// Transient routing failure (handover window): the op will be
			// retried, so its effect count may legitimately exceed the
			// Reference's.
			retried[id] = true
			time.Sleep(20 * time.Millisecond)
		}
	}

	const ops = 300
	var history []struct{ method, id string }
	divergences := 0
	for i := 0; i < ops; i++ {
		if i == ops/2 {
			victim.Close() // graceful handover mid-sequence
		}
		var method, id string
		if len(history) > 10 && rng.Float64() < 0.15 {
			prev := history[rng.Intn(len(history))]
			method, id = prev.method, prev.id
		} else {
			if rng.Intn(2) == 0 {
				method, id = "alpha-put", fmt.Sprintf("a-op-%d", i)
			} else {
				method, id = "beta-put", fmt.Sprintf("b-op-%d", i)
			}
			if rng.Float64() < 0.1 {
				id += "-bad"
			}
			history = append(history, struct{ method, id string }{method, id})
		}

		refRes, refErr := refProxy.Invoke(context.Background(), method, id)
		clRes, clErr := clusterInvoke(method, id)
		switch {
		case errors.Is(refErr, aspect.ErrAborted) != errors.Is(clErr, aspect.ErrAborted):
			divergences++
			t.Errorf("op %d %s(%s): abort divergence: ref=%v cluster=%v", i, method, id, refErr, clErr)
		case (refErr == nil) != (clErr == nil):
			divergences++
			t.Errorf("op %d %s(%s): error divergence: ref=%v cluster=%v", i, method, id, refErr, clErr)
		case refErr == nil && refRes != clRes:
			divergences++
			t.Errorf("op %d %s(%s): result divergence: ref=%v cluster=%v", i, method, id, refRes, clRes)
		}
	}

	// Final-state oracle with handover-with-state semantics: once state is
	// replicated and resumed, an effect legitimately exists on every owner
	// its domain passed through — the ledger must collapse to a single
	// AUTHORITATIVE copy, the current owner's backend, and THAT copy must
	// equal the Reference id-for-id (counts too, except ops the cluster had
	// to redeliver across the handover, where idempotency absorbs the extra
	// count). Stale copies on previous owners are excluded from counting
	// but, like every backend, may hold nothing forged and no id the
	// Reference never saw.
	refIDs, refUnknown := refBackend.snapshot()
	if len(refUnknown) != 0 {
		t.Fatalf("reference saw forged effects: %v", refUnknown)
	}
	var live []*Node
	for _, n := range nodes {
		if n != victim {
			live = append(live, n)
		}
	}
	auth := map[string]int{}
	for domain, prefix := range map[string]byte{"alpha": 'a', "beta": 'b'} {
		owner := liveOwnerOf(t, live, domain, 5*time.Second)
		ids, _ := backends[owner.ID()].snapshot()
		for k, v := range ids {
			if len(k) > 0 && k[0] == prefix {
				auth[k] += v
			}
		}
	}
	seen := map[string]bool{}
	for id, b := range backends {
		ids, unknown := b.snapshot()
		if len(unknown) != 0 {
			t.Fatalf("forged effects on %s: %v", id, unknown)
		}
		for k := range ids {
			seen[k] = true
		}
	}
	for id, want := range refIDs {
		got, ok := auth[id]
		if !ok {
			divergences++
			t.Errorf("ledger divergence: %s on reference, missing from authoritative copy", id)
			continue
		}
		if got != want && !(retried[id] && got > want) {
			divergences++
			t.Errorf("ledger divergence: %s count ref=%d authoritative=%d (retried=%v)", id, want, got, retried[id])
		}
		delete(seen, id)
	}
	for id := range seen {
		divergences++
		t.Errorf("ledger divergence: %s on cluster, never on reference", id)
	}
	if divergences != 0 {
		t.Fatalf("differential oracle: %d divergences", divergences)
	}
	t.Logf("differential oracle: %d ops (incl. aborts + duplicates + mid-run handover), 0 divergences", ops)
}
