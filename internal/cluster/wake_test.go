package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/amrpc"
	"repro/internal/aspect"
	"repro/internal/moderator"
	"repro/internal/naming"
	"repro/internal/proxy"
)

// tokenStore is the shared guard state of the wake app: signal produces
// tokens, wait consumes one or parks. It synchronizes itself because the
// two methods' admissions run under different nodes' moderators.
type tokenStore struct {
	mu     sync.Mutex
	tokens int
}

func (s *tokenStore) add() {
	s.mu.Lock()
	s.tokens++
	s.mu.Unlock()
}

func (s *tokenStore) tryTake() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tokens == 0 {
		return false
	}
	s.tokens--
	return true
}

// newWakeApp builds one node's guarded signal/wait component over the
// shared token store.
func newWakeApp(t *testing.T, store *tokenStore) *proxy.Proxy {
	t.Helper()
	mod := moderator.New("wakeapp")
	p := proxy.New(mod)
	if err := mod.Register("wait", aspect.KindSynchronization,
		aspect.New("token-gate", aspect.KindSynchronization,
			func(inv *aspect.Invocation) aspect.Verdict {
				if store.tryTake() {
					return aspect.Resume
				}
				return aspect.Block
			},
			func(inv *aspect.Invocation) {})); err != nil {
		t.Fatal(err)
	}
	if err := mod.Register("signal", aspect.KindSynchronization,
		aspect.New("pass", aspect.KindSynchronization,
			func(inv *aspect.Invocation) aspect.Verdict { return aspect.Resume },
			func(inv *aspect.Invocation) {})); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind("signal", func(inv *aspect.Invocation) (any, error) {
		store.add()
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind("wait", func(inv *aspect.Invocation) (any, error) {
		return "admitted", nil
	}); err != nil {
		t.Fatal(err)
	}
	return p
}

// splitDomains picks two domain names the ring assigns to different
// members, so the signal→wait wake edge is guaranteed to cross nodes.
func splitDomains(t *testing.T, idA, idB string) (sigDomain, waitDomain string) {
	t.Helper()
	ring := naming.NewRing(0, idA, idB)
	for i := 0; i < 256 && (sigDomain == "" || waitDomain == ""); i++ {
		d := fmt.Sprintf("probe-%d", i)
		owner, _ := ring.Owner(d)
		if owner == idA && sigDomain == "" {
			sigDomain = d
		}
		if owner == idB && waitDomain == "" {
			waitDomain = d
		}
	}
	if sigDomain == "" || waitDomain == "" {
		t.Fatal("could not split domains across two members")
	}
	return sigDomain, waitDomain
}

// TestClusterCrossNodeWake certifies wake propagation: a caller parked on
// the owner of one domain is released by a completion on a different
// node, delivered as a term-fenced amrpc notification; duplicated
// deliveries are tolerated and stale-fenced ones refused. Finally the
// heartbeat's wake sweep re-admits a parked caller whose notification was
// never delivered — the partition-healing safety net.
func TestClusterCrossNodeWake(t *testing.T) {
	namingAddr := startNaming(t)
	sigDomain, waitDomain := splitDomains(t, "wa", "wb")
	store := &tokenStore{}
	domains := map[string]string{"signal": sigDomain, "wait": waitDomain}
	edges := map[string][]string{"signal": {"wait"}}

	mkNode := func(id string) *Node {
		cfg := Config{
			ID:        id,
			Local:     newWakeApp(t, store),
			Domains:   domains,
			WakeEdges: edges,
			Naming:    namingAddr,
			MemberTTL: 2 * time.Second,
			LeaseTTL:  2 * time.Second,
			Heartbeat: 250 * time.Millisecond,
		}
		n, err := Start(cfg, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		return n
	}
	na, nb := mkNode("wa"), mkNode("wb")

	// Converge: wa owns the signal domain, wb the wait domain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, aOwns := na.owns(sigDomain)
		_, bOwns := nb.owns(waitDomain)
		if aOwns && bOwns {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("wake domains never split across the nodes")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Park a waiter on wb, entering through wa so the call also crosses
	// the forwarding path.
	waitDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		res, err := na.Invoke(ctx, "wait")
		if err == nil && res != "admitted" {
			err = fmt.Errorf("wait returned %v", res)
		}
		waitDone <- err
	}()
	// Let it reach the wait queue (it parks, so we can only sleep-poll).
	time.Sleep(300 * time.Millisecond)
	select {
	case err := <-waitDone:
		t.Fatalf("waiter finished before any signal: %v", err)
	default:
	}

	// Signal through wb: forwarded to wa (signal's owner), whose
	// completion must send the cross-node wake notification back to wb.
	if _, err := nb.Invoke(context.Background(), "signal"); err != nil {
		t.Fatalf("signal: %v", err)
	}
	select {
	case err := <-waitDone:
		if err != nil {
			t.Fatalf("waiter failed after signal: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not released by cross-node wake")
	}
	if nb.Status().WakesReceived == 0 {
		t.Fatal("wait owner never received a wake notification")
	}

	// Duplicate delivery: the wake endpoint is idempotent, so re-sending
	// the same fenced notification any number of times is harmless.
	term, ok := nb.owns(waitDomain)
	if !ok {
		t.Fatal("wb lost the wait domain")
	}
	c, err := amrpc.Dial(nb.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dupStub := c.Component(controlName("wb"), amrpc.WithFenceTerm(term), amrpc.WithIdempotent())
	for i := 0; i < 3; i++ {
		if _, err := dupStub.Invoke(context.Background(), "wake", "wait"); err != nil {
			t.Fatalf("duplicate wake delivery %d refused: %v", i, err)
		}
	}
	// Stale fence: refused, so wakes routed on a dead ownership view
	// cannot masquerade as the live owner's.
	staleStub := c.Component(controlName("wb"), amrpc.WithFenceTerm(term+9))
	if _, err := staleStub.Invoke(context.Background(), "wake", "wait"); !errors.Is(err, naming.ErrStaleTerm) {
		t.Fatalf("stale-fenced wake: err = %v, want ErrStaleTerm", err)
	}

	// Sweep safety net: park a waiter, then make its precondition true
	// WITHOUT any signal (as if the wake notification were lost to a
	// partition). The owner's heartbeat sweep must re-admit it.
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := nb.Invoke(ctx, "wait")
		waitDone <- err
	}()
	time.Sleep(300 * time.Millisecond)
	store.add() // the "lost wake": state changed, nobody notified
	select {
	case err := <-waitDone:
		if err != nil {
			t.Fatalf("swept waiter failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wake sweep never re-admitted the parked caller")
	}
}
