// Package view holds the admission plane's introspection types. It is a
// leaf package so that observability (internal/obs) can serve a node's
// status without importing the plane itself — internal/cluster depends on
// amrpc, and obs is (indirectly) visible from amrpc's tests, so a direct
// obs -> cluster edge would close an import cycle. internal/cluster
// aliases these types; callers keep writing cluster.Status.
package view

// Status is a node's introspection snapshot.
type Status struct {
	Node      string         `json:"node"`
	Addr      string         `json:"addr"`
	Component string         `json:"component"`
	Members   []string       `json:"members"`
	Domains   []DomainStatus `json:"domains"`

	LocalCalls     uint64 `json:"local_calls"`
	Forwards       uint64 `json:"forwards"`
	ForwardRetries uint64 `json:"forward_retries"`
	StaleRefusals  uint64 `json:"stale_refusals"`
	WakesSent      uint64 `json:"wakes_sent"`
	WakesReceived  uint64 `json:"wakes_received"`
	Takeovers      uint64 `json:"takeovers"`
}

// DomainStatus is one domain's ownership as a node sees it.
type DomainStatus struct {
	Domain string `json:"domain"`
	Owner  string `json:"owner"`
	Term   uint64 `json:"term"`
	Local  bool   `json:"local"`
	Addr   string `json:"addr,omitempty"`
}
