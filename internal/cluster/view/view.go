// Package view holds the admission plane's introspection types. It is a
// leaf package so that observability (internal/obs) can serve a node's
// status without importing the plane itself — internal/cluster depends on
// amrpc, and obs is (indirectly) visible from amrpc's tests, so a direct
// obs -> cluster edge would close an import cycle. internal/cluster
// aliases these types; callers keep writing cluster.Status.
package view

// Status is a node's introspection snapshot.
type Status struct {
	Node      string         `json:"node"`
	Addr      string         `json:"addr"`
	Component string         `json:"component"`
	Members   []string       `json:"members"`
	Domains   []DomainStatus `json:"domains"`
	// Replication is the per-domain state-handoff view (internal/statesync):
	// lag and stream counters for led domains, held suffixes for replicas.
	Replication []SyncStatus `json:"replication,omitempty"`

	LocalCalls     uint64 `json:"local_calls"`
	Forwards       uint64 `json:"forwards"`
	ForwardRetries uint64 `json:"forward_retries"`
	StaleRefusals  uint64 `json:"stale_refusals"`
	WakesSent      uint64 `json:"wakes_sent"`
	WakesReceived  uint64 `json:"wakes_received"`
	Takeovers      uint64 `json:"takeovers"`
}

// SyncStatus is one domain's effect-replication state on one node. The
// leader-side fields describe the outbound stream to the ring successor;
// the replica-side fields describe what this node holds as a successor;
// the catchup fields describe what a takeover on this node consumed.
type SyncStatus struct {
	Domain string `json:"domain"`

	Leading       bool   `json:"leading,omitempty"`
	Term          uint64 `json:"term,omitempty"`
	Successor     string `json:"successor,omitempty"`
	LastSeq       uint64 `json:"last_seq,omitempty"`
	AckedSeq      uint64 `json:"acked_seq,omitempty"`
	Lag           uint64 `json:"lag"`
	Streamed      uint64 `json:"streamed,omitempty"`
	SnapshotsSent uint64 `json:"snapshots_sent,omitempty"`
	OfferErrors   uint64 `json:"offer_errors,omitempty"`
	Overflows     uint64 `json:"overflows,omitempty"`
	// Skipped counts lost sequences the streamer abandoned after an
	// overflow with no snapshot hook to resync from: the receiver saw a
	// gap instead of the stream wedging.
	Skipped uint64 `json:"skipped,omitempty"`

	ReplicaFrom    string `json:"replica_from,omitempty"`
	ReplicaTerm    uint64 `json:"replica_term,omitempty"`
	ReplicaSeq     uint64 `json:"replica_seq,omitempty"`
	ReplicaEntries int    `json:"replica_entries,omitempty"`
	SnapshotsRecv  uint64 `json:"snapshots_recv,omitempty"`
	StaleRefused   uint64 `json:"stale_refused,omitempty"`
	Duplicates     uint64 `json:"duplicates,omitempty"`
	Gaps           uint64 `json:"gaps,omitempty"`

	CatchupApplied uint64 `json:"catchup_applied,omitempty"`
	CatchupGaps    uint64 `json:"catchup_gaps,omitempty"`
	Restored       bool   `json:"restored,omitempty"`
}

// DomainStatus is one domain's ownership as a node sees it.
type DomainStatus struct {
	Domain string `json:"domain"`
	Owner  string `json:"owner"`
	Term   uint64 `json:"term"`
	Local  bool   `json:"local"`
	Addr   string `json:"addr,omitempty"`
}
