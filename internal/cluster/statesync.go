package cluster

// Replicated state handoff: the plane's integration with
// internal/statesync. Every completed admission on an owned domain is
// captured into a per-domain, fence-term-stamped effect log and streamed
// asynchronously to the domain's ring successor. When ownership moves —
// gracefully (ring reassignment, Close) or by failover (lease expiry) —
// the new owner resumes the domain's *state*, not just its moderation:
//
//   - Graceful release drains in-flight admissions, flushes the log (plus
//     a snapshot when the application provides one) to the successor, and
//     releases the lease with a snapshot barrier recording the handed-over
//     sequence. The next grant carries the barrier, so the new owner knows
//     what it must have resumed before serving.
//   - Failover replays the replica held for the dead owner: restore the
//     latest snapshot (if any), then re-apply the log suffix through the
//     local guarded component — which re-captures each effect at the new
//     term and re-replicates it onward to the *next* successor.
//
// Catch-up completes before the domain is inserted into the owned set, so
// fenced traffic is refused (and retried by routers) until state is
// resumed: callers never observe a new owner serving from a blank slate.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/amrpc"
	"repro/internal/aspect"
	"repro/internal/cluster/view"
	"repro/internal/naming"
	"repro/internal/statesync"
)

// effectSink is the moderator completion hook: one atomic load on the hot
// path when replication is off, one ring append when it is on. Capture
// no-ops for domains this node does not lead.
type effectSink struct{ n *Node }

func (s *effectSink) Effect(inv *aspect.Invocation) {
	s.n.sync.Capture(s.n.domainOf(inv.Method()), inv.Method(), inv.Args())
}

// syncTransport ships replication offers over the node's pooled amrpc
// control connections, so the stream rides the same data plane (and the
// same chaosnet faults) as forwarded admissions.
type syncTransport struct{ n *Node }

func (t *syncTransport) Offer(ctx context.Context, succ string, o statesync.Offer) (statesync.Ack, error) {
	n := t.n
	n.mu.Lock()
	addr, ok := n.members[succ]
	n.mu.Unlock()
	if !ok {
		return statesync.Ack{}, fmt.Errorf("cluster %s: sync successor %s not in membership: %w",
			n.cfg.ID, succ, amrpc.ErrTransport)
	}
	payload, err := json.Marshal(o)
	if err != nil {
		return statesync.Ack{}, fmt.Errorf("cluster %s: encode sync offer: %w", n.cfg.ID, err)
	}
	client, err := n.clientFor(addr)
	if err != nil {
		return statesync.Ack{}, err
	}
	// Idempotent by construction: the receiver drops duplicate sequence
	// numbers, so a retried offer cannot double-apply.
	res, err := client.Component(controlName(succ), amrpc.WithIdempotent()).
		Invoke(ctx, "sync-offer", string(payload))
	if err != nil {
		if errors.Is(err, amrpc.ErrTransport) {
			n.dropClient(addr)
		}
		return statesync.Ack{}, err
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return statesync.Ack{}, fmt.Errorf("cluster %s: re-encode sync ack: %w", n.cfg.ID, err)
	}
	var ack statesync.Ack
	if err := json.Unmarshal(raw, &ack); err != nil {
		return statesync.Ack{}, fmt.Errorf("cluster %s: decode sync ack: %w", n.cfg.ID, err)
	}
	return ack, nil
}

// inflightFor returns domain's in-flight admission counter, used by the
// graceful-release drain.
func (n *Node) inflightFor(domain string) *atomic.Int64 {
	c, _ := n.inflight.LoadOrStore(domain, &atomic.Int64{})
	return c.(*atomic.Int64)
}

// drainInflight waits (bounded) for domain's in-flight local admissions to
// complete, so a graceful handoff's final flush covers them. Parked
// callers can hold the counter past the bound; they are cut loose by the
// later connection teardown and re-admit through the new owner.
func (n *Node) drainInflight(domain string, timeout time.Duration) bool {
	c := n.inflightFor(domain)
	deadline := time.Now().Add(timeout)
	for c.Load() != 0 {
		if !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

// syncSuccessors points every owned domain's replication stream at its
// current ring successor (the node that would inherit it).
func (n *Node) syncSuccessors(ring *naming.Ring) {
	if n.sync == nil {
		return
	}
	rest := ring.Without(n.cfg.ID)
	for _, domain := range n.domainSet() {
		if _, ok := n.owns(domain); !ok {
			continue
		}
		succ, ok := rest.Owner(domain)
		if !ok {
			succ = ""
		}
		n.sync.SetSuccessor(domain, succ)
	}
}

// handoffRelease is the graceful-release path: drain in-flight work, flush
// log + snapshot to the domain's next owner, release the lease with a
// snapshot barrier. Any failure falls back to a plain release — the
// successor still holds the asynchronously streamed suffix.
func (n *Node) handoffRelease(domain string, term uint64, succ string) {
	seq := uint64(0)
	barrier := false
	if n.sync != nil {
		n.drainInflight(domain, 500*time.Millisecond)
		if succ != "" {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			s, err := n.sync.Handoff(ctx, domain, succ)
			cancel()
			if err == nil {
				seq, barrier = s, true
				n.logf("cluster %s: handed %s through seq %d to %s", n.cfg.ID, domain, seq, succ)
			} else {
				n.logf("cluster %s: handoff %s to %s failed: %v", n.cfg.ID, domain, succ, err)
			}
		}
		n.sync.Release(domain)
	}
	_ = n.namingDo(func(nc *naming.Client) error {
		if barrier {
			if err := nc.ReleaseLeaseWithBarrier(domain, n.cfg.ID, term, seq); err == nil {
				return nil
			}
		}
		_, _ = nc.ReleaseLease(domain, n.cfg.ID, term)
		return nil
	})
}

// catchUp resumes domain's replicated state on this node after an acquire
// at term > 1: restore the latest snapshot, replay the log suffix past it
// through the local guarded component (re-capturing each effect at the new
// term), and audit the result against the lease's snapshot barrier. It
// runs before the domain enters the owned set.
func (n *Node) catchUp(domain string, lease naming.DomainLease) {
	st, held := n.sync.Takeover(domain)
	gaps := st.Gaps
	restored, applied := false, 0
	if held {
		if len(st.Snapshot) > 0 {
			if n.cfg.Restore == nil {
				// The previous owner handed over a baseline we cannot
				// install: the entry suffix past SnapSeq replays onto a
				// blank state. Count the gap so the discarded prefix is
				// auditable, exactly like a failed restore.
				gaps++
				n.logf("cluster %s: takeover %s: snapshot through seq %d held but no Restore hook configured; replaying suffix onto a blank baseline",
					n.cfg.ID, domain, st.SnapSeq)
			} else if err := n.cfg.Restore(domain, st.Snapshot); err != nil {
				n.logf("cluster %s: restore %s snapshot (seq %d): %v", n.cfg.ID, domain, st.SnapSeq, err)
				gaps++
			} else {
				restored = true
			}
		}
		for _, e := range st.Entries {
			if restored && e.Seq <= st.SnapSeq {
				continue
			}
			if err := n.applyEffect(domain, e); err != nil {
				n.logf("cluster %s: catch-up %s: replay seq %d (%s): %v", n.cfg.ID, domain, e.Seq, e.Method, err)
				gaps++
				continue
			}
			applied++
		}
		if restored {
			// The restored baseline is not in our fresh log; our own
			// successor needs a snapshot before the suffix means anything.
			n.sync.RequireSnapshot(domain)
		}
	}
	if b := lease.Barrier; b != nil && b.From != n.cfg.ID {
		have := st.SnapSeq
		if l := len(st.Entries); l > 0 && st.Entries[l-1].Seq > have {
			have = st.Entries[l-1].Seq
		}
		if have < b.Seq {
			gaps++
			n.logf("cluster %s: takeover %s: barrier says %s handed seq %d, replica only reached %d",
				n.cfg.ID, domain, b.From, b.Seq, have)
		}
	}
	n.sync.NoteCatchup(domain, restored, applied, gaps)
	if restored || applied > 0 {
		n.logf("cluster %s: resumed %s at term %d (snapshot=%v, replayed %d effects)",
			n.cfg.ID, domain, lease.Term, restored, applied)
	}
}

// applyEffect re-applies one replicated effect during catch-up. With no
// Apply hook configured, the entry is replayed through the local guarded
// component — full admission, so guards and grouped invariants hold, and
// the completion is re-captured into the new term's log. Applications
// whose guards can block replayed calls should install Apply.
func (n *Node) applyEffect(domain string, e statesync.Entry) error {
	if n.cfg.Apply != nil {
		return n.cfg.Apply(domain, e.Method, e.Args)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := n.cfg.Local.Call(aspect.NewInvocation(ctx, n.cfg.Component, e.Method, e.Args))
	return err
}

// Fail simulates a hard crash for tests and examples: the heartbeat and
// replication stream freeze and the server drops every connection, but no
// graceful release happens — survivors must take over through lease expiry
// and resume state from the replicated log.
func (n *Node) Fail() {
	n.hbPaused.Store(true)
	if n.sync != nil {
		n.sync.Pause(true)
	}
	n.server.Close()
}

// SyncStatus returns the node's per-domain replication view (nil when
// state sync is disabled).
func (n *Node) SyncStatus() []view.SyncStatus {
	if n.sync == nil {
		return nil
	}
	return n.sync.Status()
}
