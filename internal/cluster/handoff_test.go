package cluster

// Deterministic state-handoff certification (the `make handoff-smoke`
// suite): one test per handoff path, no chaos, exact audits.
//
//   - Graceful release: Close flushes a snapshot to the successor and
//     releases the lease with a barrier; the new owner restores it before
//     serving. The ledger must collapse to a single authoritative copy —
//     every effect exactly once on the new owner, nothing forged.
//   - Hard kill: the replication log (no snapshot hooks) is the only
//     carrier; after lease expiry the new owner replays the suffix through
//     its own guarded component. Same audit.
//   - Fencing: a replication offer at a stale term is refused with the
//     plane's one stale-term sentinel.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/amrpc"
	"repro/internal/naming"
	"repro/internal/statesync"
)

// TestClusterGracefulHandoffSnapshot certifies the snapshot barrier path:
// a graceful Close hands the domain's full state to the successor before
// the lease moves.
func TestClusterGracefulHandoffSnapshot(t *testing.T) {
	namingAddr := startNaming(t)
	backends := map[string]*ledgerBackend{}
	var nodes []*Node
	for _, id := range []string{"g1", "g2", "g3"} {
		b, n := startLedgerNode(t, id, namingAddr, nil)
		backends[id] = b
		nodes = append(nodes, n)
	}
	owners := waitOwnership(t, nodes...)
	victim := owners["alpha"]
	var gateway *Node
	for _, n := range nodes {
		if n != victim {
			gateway = n
			break
		}
	}

	const per = 30
	ctx := context.Background()
	for i := 0; i < per; i++ {
		if _, err := gateway.Invoke(ctx, "alpha-put", fmt.Sprintf("a-g-%d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	victim.Close() // graceful: drain → snapshot flush → barrier release

	var survivors []*Node
	for _, n := range nodes {
		if n != victim {
			survivors = append(survivors, n)
		}
	}
	newOwner := liveOwnerOf(t, survivors, "alpha", 5*time.Second)

	// The authoritative copy: every effect exactly once on the new owner.
	auth, unknown := backends[newOwner.ID()].snapshot()
	if len(unknown) != 0 {
		t.Fatalf("forged effects on %s: %v", newOwner.ID(), unknown)
	}
	for i := 0; i < per; i++ {
		id := fmt.Sprintf("a-g-%d", i)
		if auth[id] != 1 {
			t.Fatalf("effect %s count %d on new owner %s, want 1", id, auth[id], newOwner.ID())
		}
	}
	// And it arrived via the snapshot path, installed before serving.
	restored := false
	for _, s := range newOwner.SyncStatus() {
		if s.Domain == "alpha" && s.Restored {
			restored = true
		}
	}
	if !restored {
		t.Fatal("graceful handover did not use the snapshot path")
	}
	// A call through the new owner keeps working on the resumed state.
	if _, err := gateway.Invoke(ctx, "alpha-put", "a-g-after"); err != nil {
		t.Fatalf("post-handover put: %v", err)
	}
	fresh, _ := backends[newOwner.ID()].snapshot()
	if fresh["a-g-after"] != 1 {
		t.Fatal("post-handover effect missing on new owner")
	}
}

// TestClusterHardKillLogCatchup certifies the log catch-up path: with no
// snapshot hooks configured, the streamed effect log alone must carry the
// domain's state across a hard owner death.
func TestClusterHardKillLogCatchup(t *testing.T) {
	namingAddr := startNaming(t)
	backends := map[string]*ledgerBackend{}
	var nodes []*Node
	for _, id := range []string{"h1", "h2", "h3"} {
		b, n := startLedgerNode(t, id, namingAddr, func(cfg *Config) {
			cfg.Snapshot, cfg.Restore = nil, nil // log-only replication
		})
		backends[id] = b
		nodes = append(nodes, n)
	}
	owners := waitOwnership(t, nodes...)
	victim := owners["alpha"]
	var gateway *Node
	for _, n := range nodes {
		if n != victim {
			gateway = n
			break
		}
	}

	const per = 30
	ctx := context.Background()
	for i := 0; i < per; i++ {
		if _, err := gateway.Invoke(ctx, "alpha-put", fmt.Sprintf("a-h-%d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Deterministic kill: every captured effect acknowledged first.
	waitSyncDrained(t, victim, "alpha", 3*time.Second)
	victim.Fail()

	var survivors []*Node
	for _, n := range nodes {
		if n != victim {
			survivors = append(survivors, n)
		}
	}
	newOwner := liveOwnerOf(t, survivors, "alpha", 5*time.Second)
	auth, unknown := backends[newOwner.ID()].snapshot()
	if len(unknown) != 0 {
		t.Fatalf("forged effects on %s: %v", newOwner.ID(), unknown)
	}
	for i := 0; i < per; i++ {
		id := fmt.Sprintf("a-h-%d", i)
		if auth[id] != 1 {
			t.Fatalf("effect %s count %d on new owner %s, want 1 (log catch-up lost it)", id, auth[id], newOwner.ID())
		}
	}
	applied := uint64(0)
	for _, s := range newOwner.SyncStatus() {
		if s.Domain == "alpha" {
			applied = s.CatchupApplied
		}
	}
	if applied != per {
		t.Fatalf("catch-up applied %d effects, want %d", applied, per)
	}
}

// TestClusterSameTermReacquireKeepsReplication reproduces the transient
// renew blip: local ownership is dropped while the lease — and the
// successor's replica — stay live at the current term, so the next beat
// re-acquires the SAME term. The node must keep its effect log:
// restarting the sequence at 1 would make the successor refuse every
// later effect as a duplicate, silently killing replication for the rest
// of the term and losing state at the next failover.
func TestClusterSameTermReacquireKeepsReplication(t *testing.T) {
	namingAddr := startNaming(t)
	backends := map[string]*ledgerBackend{}
	var nodes []*Node
	for _, id := range []string{"r1", "r2", "r3"} {
		b, n := startLedgerNode(t, id, namingAddr, func(cfg *Config) {
			cfg.Snapshot, cfg.Restore = nil, nil // log-only: the log must carry everything
		})
		backends[id] = b
		nodes = append(nodes, n)
	}
	owners := waitOwnership(t, nodes...)
	owner := owners["alpha"]
	var gateway *Node
	for _, n := range nodes {
		if n != owner {
			gateway = n
			break
		}
	}

	ctx := context.Background()
	const per = 10
	for i := 0; i < per; i++ {
		if _, err := gateway.Invoke(ctx, "alpha-put", fmt.Sprintf("a-r-%d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	waitSyncDrained(t, owner, "alpha", 3*time.Second)

	// The blip: drop ownership locally without touching the lease or the
	// replication stream — exactly what a transient renew failure leaves
	// behind. The lease stays live, so the re-acquire extends it at the
	// same term.
	owner.mu.Lock()
	term := owner.owned["alpha"].term
	delete(owner.owned, "alpha")
	owner.mu.Unlock()

	deadline := time.Now().Add(3 * time.Second)
	for {
		if got, ok := owner.owns("alpha"); ok {
			if got != term {
				t.Fatalf("re-acquired alpha at term %d, want the same term %d", got, term)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("owner never re-acquired alpha")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if seq := owner.sync.Seq("alpha"); seq < per {
		t.Fatalf("effect sequence restarted on same-term re-acquire: seq=%d, want >= %d", seq, per)
	}

	// Replication keeps flowing after the re-acquire...
	for i := per; i < 2*per; i++ {
		if _, err := gateway.Invoke(ctx, "alpha-put", fmt.Sprintf("a-r-%d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	waitSyncDrained(t, owner, "alpha", 3*time.Second)

	// ...and a hard failover resumes the COMPLETE state, including the
	// effects admitted after the blip.
	owner.Fail()
	var survivors []*Node
	for _, n := range nodes {
		if n != owner {
			survivors = append(survivors, n)
		}
	}
	newOwner := liveOwnerOf(t, survivors, "alpha", 5*time.Second)
	auth, unknown := backends[newOwner.ID()].snapshot()
	if len(unknown) != 0 {
		t.Fatalf("forged effects on %s: %v", newOwner.ID(), unknown)
	}
	for i := 0; i < 2*per; i++ {
		id := fmt.Sprintf("a-r-%d", i)
		if auth[id] != 1 {
			t.Fatalf("effect %s count %d on new owner %s, want 1 (lost across the renew blip)",
				id, auth[id], newOwner.ID())
		}
	}
}

// TestClusterSnapshotWithoutRestoreCountsGap certifies the audit signal
// for a one-sided hook configuration: a handed-over snapshot the taker
// cannot install (no Restore hook) must be counted as a catch-up gap —
// the node serves from a blank baseline, and that must be visible, just
// like a failed restore.
func TestClusterSnapshotWithoutRestoreCountsGap(t *testing.T) {
	namingAddr := startNaming(t)
	var nodes []*Node
	for _, id := range []string{"s1", "s2", "s3"} {
		_, n := startLedgerNode(t, id, namingAddr, func(cfg *Config) {
			cfg.Restore = nil // Snapshot stays set: baselines ship but cannot land
		})
		nodes = append(nodes, n)
	}
	owners := waitOwnership(t, nodes...)
	victim := owners["alpha"]
	var gateway *Node
	for _, n := range nodes {
		if n != victim {
			gateway = n
			break
		}
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := gateway.Invoke(ctx, "alpha-put", fmt.Sprintf("a-s-%d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	victim.Close() // graceful: ships a snapshot the successor cannot install

	var survivors []*Node
	for _, n := range nodes {
		if n != victim {
			survivors = append(survivors, n)
		}
	}
	newOwner := liveOwnerOf(t, survivors, "alpha", 5*time.Second)
	found := false
	for _, s := range newOwner.SyncStatus() {
		if s.Domain != "alpha" {
			continue
		}
		found = true
		if s.Restored {
			t.Fatal("takeover claims a restore without a Restore hook")
		}
		if s.CatchupGaps == 0 {
			t.Fatal("discarded snapshot left no audit signal (no catch-up gap counted)")
		}
	}
	if !found {
		t.Fatal("new owner has no replication status for alpha")
	}
}

// TestClusterStaleSyncOfferRefused certifies replication fencing: an offer
// at a term not above what the receiver already leads the domain at is
// refused with the plane's one stale-term sentinel — a zombie leader's
// flush cannot overwrite the live owner's state.
func TestClusterStaleSyncOfferRefused(t *testing.T) {
	namingAddr := startNaming(t)
	_, n1 := startLedgerNode(t, "z1", namingAddr, nil)
	_, n2 := startLedgerNode(t, "z2", namingAddr, nil)
	owners := waitOwnership(t, n1, n2)
	owner := owners["beta"]
	term, ok := owner.owns("beta")
	if !ok {
		t.Fatal("owner lost beta immediately")
	}

	c, err := amrpc.Dial(owner.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	offer := statesync.Offer{
		From: "zombie", Domain: "beta", Term: term,
		Entries: []statesync.Entry{{Domain: "beta", Seq: 1, Term: term, Method: "beta-put", Args: []any{"b-zombie"}}},
	}
	payload, err := json.Marshal(offer)
	if err != nil {
		t.Fatal(err)
	}
	before := owner.Status().StaleRefusals
	_, err = c.Component(controlName(owner.ID())).Invoke(context.Background(), "sync-offer", string(payload))
	if !errors.Is(err, naming.ErrStaleTerm) {
		t.Fatalf("stale sync offer: err = %v, want ErrStaleTerm", err)
	}
	if owner.Status().StaleRefusals <= before {
		t.Fatal("stale offer refusal not counted")
	}
}
