// Package cluster is the distributed admission plane: it partitions a
// guarded component's admission domains across a fleet of nodes so that
// one *logical* moderator spans many processes, keeping the paper's
// composition model intact while scaling past a single machine.
//
// Each node runs the full guarded component (moderator, aspect stacks,
// functional core) but is allowed to *execute* admissions only for the
// domains it owns. Ownership is decided by a consistent-hash ring over the
// live membership (naming.Ring) and made safe by term-numbered leases
// granted by the naming service (naming.Store): a node heartbeats its
// membership registration, acquires the leases the ring assigns to it, and
// renews them on every beat. Terms are fencing tokens — every forwarded
// admission and every cross-node wake notification carries the term its
// sender observed, and the receiver refuses it (naming.ErrStaleTerm)
// unless it holds that domain's lease at exactly that term. A node also
// drops ownership locally once a lease's remaining validity falls inside a
// safety margin, so an owner partitioned away from the naming service
// stops executing before anyone else can be granted the next term.
//
// Callers see location transparency: any node accepts any method of the
// component, executes locally when it owns the method's domain, and
// otherwise proxies the call over amrpc to the owner — retrying through
// fresh ownership lookups when the fence is refused or the owner dies.
// Failover is lease expiry: when a node dies, its membership entry and
// leases expire, the ring reassigns its domains to survivors at term+1,
// and callers parked on the dead owner are released by its connection
// teardown and re-admitted through the new owner on retry.
package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/amrpc"
	"repro/internal/cluster/view"
	"repro/internal/naming"
	"repro/internal/proxy"
	"repro/internal/statesync"
)

// Config describes one cluster node.
type Config struct {
	// ID is the node's unique cluster identity (required).
	ID string
	// Component is the public component name served by every node
	// (default: the local proxy's name).
	Component string
	// Local is the node's own guarded component (required).
	Local *proxy.Proxy
	// Domains maps method names to admission-domain names. Methods of one
	// moderator group must map to the same domain so grouped admission
	// stays on one owner. Unlisted methods default to their own name.
	Domains map[string]string
	// WakeEdges lists, per method, the methods whose parked callers must
	// be woken after the method completes — the cross-node extension of
	// the moderator's wake lists. Wakes targeting locally owned domains
	// are delivered in-process; the rest travel as idempotent, term-fenced
	// amrpc notifications to the owning node.
	WakeEdges map[string][]string
	// Naming is the address of the naming service (required).
	Naming string
	// Prefix namespaces this cluster's membership entries in the naming
	// service (default "cluster"). The member entry for a node is
	// "<Prefix>/member/<ID>", its lease holder id is the node ID.
	Prefix string
	// Idempotent declares the component's methods safe to re-forward when
	// a forwarding attempt dies mid-flight (transport failure with the
	// outcome unknown). Off by default: non-idempotent traffic surfaces
	// the transport error to the caller instead of risking a double
	// execution.
	Idempotent bool

	// MemberTTL bounds how long a dead node stays in the membership
	// (default 1200ms). LeaseTTL bounds how long its domains stay owned
	// (default 1200ms); failover latency is roughly LeaseTTL. Heartbeat
	// is the renewal period (default LeaseTTL/4). OwnershipMargin is the
	// safety margin before local lease expiry at which a node stops
	// considering itself owner (default LeaseTTL/4).
	MemberTTL       time.Duration
	LeaseTTL        time.Duration
	Heartbeat       time.Duration
	OwnershipMargin time.Duration

	// RouteAttempts bounds how many ownership-resolution rounds one call
	// may burn before giving up (default 25; with backoff this spans a
	// failover window comfortably).
	RouteAttempts int

	// Snapshot, Restore, and Apply are the replicated-state-handoff hooks.
	// Snapshot serializes one domain's functional state; Restore installs
	// a snapshot received from the previous owner; Apply re-applies one
	// replicated effect during catch-up. All are optional: without
	// Snapshot/Restore the plane replicates the effect log only, and
	// without Apply catch-up replays entries through the local guarded
	// component (full admission — install Apply when guards could block a
	// replayed call).
	Snapshot func(domain string) ([]byte, error)
	Restore  func(domain string, data []byte) error
	Apply    func(domain, method string, args []any) error
	// DisableStateSync turns replicated state handoff off entirely: no
	// effect capture, no streaming, takeovers resume moderation only.
	DisableStateSync bool
	// SyncCapacity / SyncBatch / SyncInterval tune the replication stream
	// (defaults: 8192-entry per-domain log, 256 entries per offer, 25ms
	// idle pacing).
	SyncCapacity int
	SyncBatch    int
	SyncInterval time.Duration

	// DialConn overrides the data-plane dialer for node-to-node traffic —
	// the chaosnet hook. The control-plane connection to the naming
	// service always uses a clean dialer.
	DialConn func(addr string) (net.Conn, error)
	// ServerOptions / ClientOptions apply to the node's amrpc server and
	// its pooled forwarding clients.
	ServerOptions []amrpc.ServerOption
	ClientOptions []amrpc.ClientOption
	// Logf, when set, receives one line per ownership transition and
	// refused fence — the node's operational narrative.
	Logf func(format string, args ...any)
}

func (cfg *Config) withDefaults() error {
	if cfg.ID == "" {
		return fmt.Errorf("cluster: config: empty node ID")
	}
	if cfg.Local == nil {
		return fmt.Errorf("cluster: config: nil local proxy")
	}
	if cfg.Naming == "" {
		return fmt.Errorf("cluster: config: empty naming address")
	}
	if cfg.Component == "" {
		cfg.Component = cfg.Local.Name()
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "cluster"
	}
	if cfg.MemberTTL <= 0 {
		cfg.MemberTTL = 1200 * time.Millisecond
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 1200 * time.Millisecond
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.LeaseTTL / 4
	}
	if cfg.OwnershipMargin <= 0 {
		cfg.OwnershipMargin = cfg.LeaseTTL / 4
	}
	if cfg.RouteAttempts <= 0 {
		cfg.RouteAttempts = 25
	}
	if cfg.DialConn == nil {
		cfg.DialConn = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return nil
}

// ownedDomain is one domain this node currently owns.
type ownedDomain struct {
	term uint64
	// localExpiry is the conservative local view of the lease's validity:
	// clock-stamped *before* the acquire/renew RPC was sent, plus TTL.
	// Ownership is asserted only while now < localExpiry - margin.
	localExpiry time.Time
}

// route is the cached ownership of a remote domain.
type route struct {
	holder    string
	term      uint64
	addr      string
	fetchedAt time.Time
}

// Node is one member of the distributed admission plane.
type Node struct {
	cfg    Config
	server *amrpc.Server
	ln     net.Listener
	addr   string
	sync   *statesync.Manager // nil when DisableStateSync

	mu      sync.Mutex
	nc      *naming.Client // control-plane connection (redialed on error)
	owned   map[string]*ownedDomain
	routes  map[string]route
	members map[string]string // member id -> addr, from the last beat
	clients map[string]*amrpc.Client
	closing bool // Close in progress: the heartbeat must not re-acquire
	closed  bool

	inflight sync.Map // domain -> *atomic.Int64: local admissions in flight

	closeOnce sync.Once
	closeDone chan struct{}
	stop      chan struct{}
	wg        sync.WaitGroup

	hbPaused atomic.Bool // test hook: freeze the heartbeat to simulate a wedged node

	localCalls     atomic.Uint64
	forwards       atomic.Uint64
	forwardRetries atomic.Uint64
	staleRefusals  atomic.Uint64
	wakesSent      atomic.Uint64
	wakesReceived  atomic.Uint64
	takeovers      atomic.Uint64 // acquisitions at term > 1: domains inherited from a previous owner
}

// Start launches a node: it listens on addr (host:port, may be ":0"),
// registers itself with the naming service, and begins the ownership
// heartbeat. The first beat runs synchronously so a freshly started node
// is routable immediately.
func Start(cfg Config, addr string) (*Node, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	n := &Node{
		cfg:       cfg,
		server:    amrpc.NewServer(cfg.ServerOptions...),
		ln:        ln,
		addr:      ln.Addr().String(),
		owned:     make(map[string]*ownedDomain, 4),
		routes:    make(map[string]route, 4),
		members:   make(map[string]string, 4),
		clients:   make(map[string]*amrpc.Client, 4),
		closeDone: make(chan struct{}),
		stop:      make(chan struct{}),
	}
	if err := n.server.RegisterComponent(&front{n: n}); err != nil {
		_ = ln.Close()
		return nil, err
	}
	if err := n.server.RegisterComponent(&control{n: n}); err != nil {
		_ = ln.Close()
		return nil, err
	}
	if !cfg.DisableStateSync {
		if (cfg.Snapshot == nil) != (cfg.Restore == nil) {
			// One-sided configuration: a snapshot this node sends cannot be
			// installed by a peer configured the same way (or vice versa) —
			// takeovers then replay the suffix onto a blank baseline and
			// count the discarded prefix as a catch-up gap.
			n.logf("cluster %s: state sync configured with Snapshot=%v but Restore=%v; hooks should come in pairs",
				cfg.ID, cfg.Snapshot != nil, cfg.Restore != nil)
		}
		mgr, err := statesync.NewManager(statesync.Config{
			Node:      cfg.ID,
			Transport: &syncTransport{n: n},
			Snapshot:  cfg.Snapshot,
			Capacity:  cfg.SyncCapacity,
			Batch:     cfg.SyncBatch,
			Interval:  cfg.SyncInterval,
			Logf:      cfg.Logf,
		})
		if err != nil {
			_ = ln.Close()
			return nil, err
		}
		n.sync = mgr
		cfg.Local.Moderator().SetEffectSink(&effectSink{n: n})
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		_ = n.server.Serve(ln)
	}()
	if err := n.beat(); err != nil {
		n.Close()
		return nil, fmt.Errorf("cluster: node %s: initial heartbeat: %w", cfg.ID, err)
	}
	n.wg.Add(1)
	go n.heartbeatLoop()
	return n, nil
}

// Addr returns the node's data-plane address.
func (n *Node) Addr() string { return n.addr }

// ID returns the node's cluster identity.
func (n *Node) ID() string { return n.cfg.ID }

// Close stops the heartbeat, hands each owned domain's replicated state
// to its successor, releases the leases (with snapshot barriers) and the
// membership entry, and tears down the server and every pooled
// connection. In-flight handlers (including parked callers) are cancelled
// by the server's connection teardown — their callers re-admit through
// the next owner, which resumes the handed-over state before serving.
func (n *Node) Close() {
	n.closeOnce.Do(n.doClose)
	<-n.closeDone
}

func (n *Node) doClose() {
	defer close(n.closeDone)

	// Stop the heartbeat first: a beat racing the handover could
	// re-acquire a lease and consume the barrier we are about to plant.
	n.mu.Lock()
	n.closing = true
	close(n.stop)
	owned := make(map[string]uint64, len(n.owned))
	for d, o := range n.owned {
		owned[d] = o.term
	}
	memberIDs := make([]string, 0, len(n.members))
	for id := range n.members {
		if id != n.cfg.ID {
			memberIDs = append(memberIDs, id)
		}
	}
	n.mu.Unlock()

	// Graceful handover: for each owned domain, stop admitting, drain,
	// flush the effect log (plus snapshot) to the domain's next owner, and
	// release with a barrier — so survivors converge with state on the
	// beat after next instead of waiting out TTLs. The pooled clients and
	// the server stay up through this phase; the flush rides them.
	succRing := naming.NewRing(0, memberIDs...)
	for d, term := range owned {
		n.mu.Lock()
		delete(n.owned, d)
		n.mu.Unlock()
		succ, _ := succRing.Owner(d)
		n.handoffRelease(d, term, succ)
	}
	_ = n.namingDo(func(nc *naming.Client) error {
		_, _ = nc.Unregister(n.memberKey())
		return nil
	})

	n.mu.Lock()
	n.closed = true
	clients := n.clients
	n.clients = map[string]*amrpc.Client{}
	if n.nc != nil {
		_ = n.nc.Close()
		n.nc = nil
	}
	n.mu.Unlock()

	if n.sync != nil {
		n.cfg.Local.Moderator().SetEffectSink(nil)
		n.sync.Close()
	}
	n.server.Close()
	for _, c := range clients {
		_ = c.Close()
	}
	n.wg.Wait()
}

func (n *Node) memberKey() string { return n.cfg.Prefix + "/member/" + n.cfg.ID }

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// namingDo runs f against the shared control-plane client, redialing once
// when the connection has died.
func (n *Node) namingDo(f func(*naming.Client) error) error {
	n.mu.Lock()
	nc := n.nc
	n.mu.Unlock()
	if nc != nil {
		if err := f(nc); err == nil || !isTransportErr(err) {
			return err
		}
		n.mu.Lock()
		if n.nc == nc {
			_ = nc.Close()
			n.nc = nil
		}
		n.mu.Unlock()
	}
	fresh, err := naming.DialClient(n.cfg.Naming)
	if err != nil {
		return err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = fresh.Close()
		return fmt.Errorf("cluster: node %s closed", n.cfg.ID)
	}
	if n.nc != nil {
		_ = n.nc.Close()
	}
	n.nc = fresh
	n.mu.Unlock()
	return f(fresh)
}

// isTransportErr classifies naming-client failures that warrant a redial:
// anything that is not a coded application refusal (the rehydrated naming
// sentinels) is assumed to be a dead connection.
func isTransportErr(err error) bool {
	return !errors.Is(err, naming.ErrNotFound) &&
		!errors.Is(err, naming.ErrLeaseHeld) &&
		!errors.Is(err, naming.ErrStaleTerm)
}

func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			if n.hbPaused.Load() {
				continue
			}
			_ = n.beat()
		}
	}
}

// beat is one heartbeat round: renew membership, read the fleet, derive
// the ring, reconcile lease ownership, refresh the routing cache.
func (n *Node) beat() error {
	var members []naming.Entry
	var leases []naming.DomainLease
	err := n.namingDo(func(nc *naming.Client) error {
		if err := nc.Register(n.memberKey(), n.addr, n.cfg.MemberTTL); err != nil {
			return err
		}
		var err error
		if members, err = nc.List(); err != nil {
			return err
		}
		leases, err = nc.ListLeases()
		return err
	})
	if err != nil {
		return err
	}

	memberAddrs := make(map[string]string, len(members))
	prefix := n.cfg.Prefix + "/member/"
	for _, e := range members {
		if len(e.Name) > len(prefix) && e.Name[:len(prefix)] == prefix {
			memberAddrs[e.Name[len(prefix):]] = e.Addr
		}
	}
	ids := make([]string, 0, len(memberAddrs))
	for id := range memberAddrs {
		ids = append(ids, id)
	}
	ring := naming.NewRing(0, ids...)

	n.reconcileOwnership(ring)
	n.syncSuccessors(ring)
	n.refreshRoutes(leases, memberAddrs)
	n.wakeSweep()
	return nil
}

// wakeSweep re-kicks every method whose domain this node owns. Cross-node
// wake notifications are at-least-once but can still be lost to a
// partition, or to a failover racing a completion; Kick is idempotent, so
// periodically re-evaluating owned wait queues makes wakes self-healing —
// a caller parked through a partition (or re-admitted on a new owner that
// missed the original notification) is released on the first beat after
// the wake's precondition becomes true.
func (n *Node) wakeSweep() {
	for method := range n.cfg.Domains {
		if _, ok := n.owns(n.domainOf(method)); ok {
			n.cfg.Local.Moderator().Kick(method)
		}
	}
}

// domainSet returns the distinct admission domains of the configuration.
func (n *Node) domainSet() []string {
	seen := make(map[string]struct{}, len(n.cfg.Domains))
	for _, d := range n.cfg.Domains {
		seen[d] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// reconcileOwnership aligns this node's leases with the ring's verdicts.
func (n *Node) reconcileOwnership(ring *naming.Ring) {
	for _, domain := range n.domainSet() {
		want, ok := ring.Owner(domain)
		n.mu.Lock()
		cur, held := n.owned[domain]
		var curTerm uint64
		if held {
			curTerm = cur.term
		}
		n.mu.Unlock()

		switch {
		case held && ok && want == n.cfg.ID:
			// Still ours by the ring: renew. Only a refused renewal
			// (ErrStaleTerm) means the lease actually moved on — drop and
			// retry next beat through Acquire. A transient naming failure
			// proves nothing: the lease is most likely still live at our
			// term, and dropping ownership would make the next beat
			// re-acquire the SAME term with a fresh effect log, wedging
			// replication (the successor's replica already tracks this
			// term's sequence). Keep ownership and retry; localExpiry was
			// not extended, so the safety margin still stops execution if
			// the naming service stays unreachable.
			stamp := time.Now()
			err := n.namingDo(func(nc *naming.Client) error {
				_, err := nc.RenewLease(domain, n.cfg.ID, curTerm, n.cfg.LeaseTTL)
				return err
			})
			n.mu.Lock()
			if o, still := n.owned[domain]; still && o.term == curTerm {
				if err == nil {
					o.localExpiry = stamp.Add(n.cfg.LeaseTTL)
				} else if errors.Is(err, naming.ErrStaleTerm) {
					delete(n.owned, domain)
				}
			}
			n.mu.Unlock()
			if errors.Is(err, naming.ErrStaleTerm) {
				n.logf("cluster %s: lost lease on %s at term %d: %v", n.cfg.ID, domain, curTerm, err)
			} else if err != nil {
				n.logf("cluster %s: renew %s at term %d failed, retrying: %v", n.cfg.ID, domain, curTerm, err)
			}
		case held:
			// The ring moved the domain elsewhere (membership changed):
			// stop admitting, drain, flush replicated state to the new
			// owner, and release with a snapshot barrier so it need not
			// wait out TTL *and* resumes our state before serving.
			n.mu.Lock()
			delete(n.owned, domain)
			n.mu.Unlock()
			n.handoffRelease(domain, curTerm, want)
			n.logf("cluster %s: released %s (ring reassigned to %s)", n.cfg.ID, domain, want)
		case ok && want == n.cfg.ID:
			// Newly ours: acquire. ErrLeaseHeld means the previous owner's
			// lease has not expired yet; we pick it up on a later beat.
			n.mu.Lock()
			closing := n.closing
			n.mu.Unlock()
			if closing {
				continue
			}
			stamp := time.Now()
			var lease naming.DomainLease
			err := n.namingDo(func(nc *naming.Client) error {
				var err error
				lease, err = nc.AcquireLease(domain, n.cfg.ID, n.cfg.LeaseTTL)
				return err
			})
			if err != nil {
				continue
			}
			if n.sync != nil {
				if t, leading := n.sync.Leading(domain); leading && t == lease.Term {
					// Same-term re-acquire: the lease never expired (we
					// dropped it locally, e.g. across a transient renew
					// failure) and AcquireLease extended our own live
					// lease. The effect log, stream, and successor replica
					// are all still coherent at this term — a fresh Lead
					// would restart the sequence at 1 and every new entry
					// would be refused downstream as a duplicate, and a
					// catch-up would replay our own replicated effects onto
					// our own live state. Keep everything as is.
				} else {
					// Catch up BEFORE asserting ownership: fenced traffic is
					// refused (and retried by routers) until the domain's
					// replicated state is resumed here. Replay goes through the
					// local component, so each effect is re-captured into the
					// new term's log and re-replicated to our own successor.
					n.sync.Lead(domain, lease.Term)
					if succ, ok := ring.Without(n.cfg.ID).Owner(domain); ok {
						n.sync.SetSuccessor(domain, succ)
					}
					n.catchUp(domain, lease)
				}
			}
			n.mu.Lock()
			n.owned[domain] = &ownedDomain{term: lease.Term, localExpiry: stamp.Add(n.cfg.LeaseTTL)}
			n.mu.Unlock()
			if lease.Term > 1 {
				n.takeovers.Add(1)
			}
			n.logf("cluster %s: acquired %s at term %d", n.cfg.ID, domain, lease.Term)
		}
	}
}

// refreshRoutes rebuilds the routing cache from the lease listing.
func (n *Node) refreshRoutes(leases []naming.DomainLease, memberAddrs map[string]string) {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	n.members = memberAddrs
	n.routes = make(map[string]route, len(leases))
	for _, l := range leases {
		addr, ok := memberAddrs[l.Holder]
		if !ok {
			continue // holder no longer in the membership; let lookups refetch
		}
		n.routes[l.Domain] = route{holder: l.Holder, term: l.Term, addr: addr, fetchedAt: now}
	}
}

// domainOf maps a method to its admission domain.
func (n *Node) domainOf(method string) string {
	if d, ok := n.cfg.Domains[method]; ok {
		return d
	}
	return method
}

// owns reports whether this node currently owns domain, and at which term.
// Ownership is asserted conservatively: the lease must have at least
// OwnershipMargin of locally tracked validity left, so a node cut off from
// the naming service stops executing before the next term can be granted.
func (n *Node) owns(domain string) (uint64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	o, ok := n.owned[domain]
	if !ok {
		return 0, false
	}
	if !time.Now().Before(o.localExpiry.Add(-n.cfg.OwnershipMargin)) {
		return 0, false
	}
	return o.term, true
}

// Status is the node's introspection snapshot. The type lives in the
// leaf package view so obs can serve it without importing the plane.
type Status = view.Status

// DomainStatus is one domain's ownership as this node sees it.
type DomainStatus = view.DomainStatus

// SyncStatus is one domain's state-replication view on this node.
type SyncStatus = view.SyncStatus

// Status returns the node's current view of the cluster.
func (n *Node) Status() Status {
	n.mu.Lock()
	members := make([]string, 0, len(n.members))
	for id := range n.members {
		members = append(members, id)
	}
	routes := make(map[string]route, len(n.routes))
	for d, r := range n.routes {
		routes[d] = r
	}
	owned := make(map[string]uint64, len(n.owned))
	for d, o := range n.owned {
		owned[d] = o.term
	}
	n.mu.Unlock()
	sort.Strings(members)

	st := Status{
		Node:      n.cfg.ID,
		Addr:      n.addr,
		Component: n.cfg.Component,
		Members:   members,

		LocalCalls:     n.localCalls.Load(),
		Forwards:       n.forwards.Load(),
		ForwardRetries: n.forwardRetries.Load(),
		StaleRefusals:  n.staleRefusals.Load(),
		WakesSent:      n.wakesSent.Load(),
		WakesReceived:  n.wakesReceived.Load(),
		Takeovers:      n.takeovers.Load(),
	}
	if n.sync != nil {
		st.Replication = n.sync.Status()
	}
	for _, domain := range n.domainSet() {
		ds := DomainStatus{Domain: domain}
		if term, ok := owned[domain]; ok {
			ds.Owner, ds.Term, ds.Local, ds.Addr = n.cfg.ID, term, true, n.addr
		} else if r, ok := routes[domain]; ok {
			ds.Owner, ds.Term, ds.Addr = r.holder, r.term, r.addr
		}
		st.Domains = append(st.Domains, ds)
	}
	return st
}

// OwnedDomains returns the domains this node currently asserts ownership
// of (tests and metrics).
func (n *Node) OwnedDomains() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.owned))
	for d := range n.owned {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
