package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/amrpc"
	"repro/internal/aspect"
	"repro/internal/moderator"
	"repro/internal/naming"
	"repro/internal/proxy"
)

// startNaming runs an in-process naming server on an ephemeral port.
func startNaming(t *testing.T) string {
	t.Helper()
	srv := naming.NewServer(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(srv.Close)
	return ln.Addr().String()
}

// ledgerBackend is one node's effect store: an idempotent set-insert per
// admission domain, the certification idiom of the PR 1 soak. Unknown ids
// are forged effects; the audit fails on any.
type ledgerBackend struct {
	mu      sync.Mutex
	ids     map[string]int
	unknown []string
}

func (b *ledgerBackend) put(id, wantPrefix string) (any, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(id) < len(wantPrefix) || id[:len(wantPrefix)] != wantPrefix {
		b.unknown = append(b.unknown, id)
		return nil, fmt.Errorf("ledger: unknown id %q", id)
	}
	b.ids[id]++
	return true, nil
}

func (b *ledgerBackend) snapshot() (map[string]int, []string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int, len(b.ids))
	for k, v := range b.ids {
		out[k] = v
	}
	return out, append([]string(nil), b.unknown...)
}

// snapshotDomain serializes the ids of one admission domain (by prefix) —
// the cluster Snapshot hook of the ledger app.
func (b *ledgerBackend) snapshotDomain(prefix string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int)
	for k, v := range b.ids {
		if strings.HasPrefix(k, prefix) {
			out[k] = v
		}
	}
	return json.Marshal(out)
}

// restoreDomain replaces one domain's ids with a received snapshot — the
// cluster Restore hook. Replace (not merge): the snapshot IS the domain's
// authoritative state; merging could hide lost effects when ownership
// ping-pongs.
func (b *ledgerBackend) restoreDomain(prefix string, data []byte) error {
	var in map[string]int
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for k := range b.ids {
		if strings.HasPrefix(k, prefix) {
			delete(b.ids, k)
		}
	}
	for k, v := range in {
		b.ids[k] = v
	}
	return nil
}

// ledgerDomains is the method → admission-domain map of the test app: two
// methods in two distinct domains, so a multi-node cluster splits them.
var ledgerDomains = map[string]string{
	"alpha-put": "alpha",
	"beta-put":  "beta",
}

// newLedgerApp builds one node's guarded two-domain ledger component.
// Every method carries a pass-through synchronization guard so each call
// runs the full admission protocol (park/wake accounting included).
func newLedgerApp(t *testing.T) (*ledgerBackend, *proxy.Proxy) {
	t.Helper()
	b := &ledgerBackend{ids: make(map[string]int, 2048)}
	mod := moderator.New("cledger")
	p := proxy.New(mod)
	for method, domain := range ledgerDomains {
		m, d := method, domain
		if err := mod.Register(m, aspect.KindSynchronization,
			aspect.New("gate-"+d, aspect.KindSynchronization,
				func(inv *aspect.Invocation) aspect.Verdict {
					if id, err := inv.ArgString(0); err == nil && len(id) > 4 && id[len(id)-4:] == "-bad" {
						return aspect.Abort
					}
					return aspect.Resume
				},
				func(inv *aspect.Invocation) {})); err != nil {
			t.Fatal(err)
		}
		if err := p.Bind(m, func(inv *aspect.Invocation) (any, error) {
			id, err := inv.ArgString(0)
			if err != nil {
				return nil, err
			}
			return b.put(id, d[:1]) // ids are "a-..." / "b-..." per domain
		}); err != nil {
			t.Fatal(err)
		}
	}
	return b, p
}

// startLedgerNode boots one cluster node serving the ledger app with
// test-friendly (sub-second failover) timings. State sync is on with the
// app's snapshot/restore hooks, so graceful handovers travel the snapshot
// path and hard failovers replay the replicated effect log.
func startLedgerNode(t *testing.T, id, namingAddr string, mutate func(*Config)) (*ledgerBackend, *Node) {
	t.Helper()
	backend, p := newLedgerApp(t)
	cfg := Config{
		ID:         id,
		Local:      p,
		Domains:    ledgerDomains,
		Naming:     namingAddr,
		Idempotent: true,
		MemberTTL:  900 * time.Millisecond,
		LeaseTTL:   900 * time.Millisecond,
		Heartbeat:  150 * time.Millisecond,
		Snapshot: func(domain string) ([]byte, error) {
			return backend.snapshotDomain(domain[:1])
		},
		Restore: func(domain string, data []byte) error {
			return backend.restoreDomain(domain[:1], data)
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := Start(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return backend, n
}

// waitOwnership polls until the cluster has converged: every node sees the
// full membership, and every domain of the test app is owned by exactly
// the node the ring designates — so ownership will not move again unless
// the membership does.
func waitOwnership(t *testing.T, nodes ...*Node) map[string]*Node {
	t.Helper()
	ids := make([]string, len(nodes))
	byID := make(map[string]*Node, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID()
		byID[n.ID()] = n
	}
	ring := naming.NewRing(0, ids...)
	deadline := time.Now().Add(5 * time.Second)
	for {
		converged := true
		owners := make(map[string]*Node)
		for _, n := range nodes {
			if len(n.Status().Members) != len(nodes) {
				converged = false
			}
		}
		for _, d := range []string{"alpha", "beta"} {
			want, _ := ring.Owner(d)
			if _, ok := byID[want].owns(d); !ok {
				converged = false
				continue
			}
			owners[d] = byID[want]
			// Nobody else may still assert it.
			for _, n := range nodes {
				if n != byID[want] {
					if _, stale := n.owns(d); stale {
						converged = false
					}
				}
			}
		}
		if converged {
			return owners
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged; owners so far: %v", owners)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestClusterOwnershipAndForwarding(t *testing.T) {
	namingAddr := startNaming(t)
	b1, n1 := startLedgerNode(t, "n1", namingAddr, nil)
	b2, n2 := startLedgerNode(t, "n2", namingAddr, nil)
	owners := waitOwnership(t, n1, n2)

	// Drive both methods through BOTH nodes: the non-owner path must
	// transparently forward.
	ctx := context.Background()
	const per = 10
	for i := 0; i < per; i++ {
		for _, entry := range []struct {
			node   *Node
			method string
			id     string
		}{
			{n1, "alpha-put", fmt.Sprintf("a-n1-%d", i)},
			{n2, "alpha-put", fmt.Sprintf("a-n2-%d", i)},
			{n1, "beta-put", fmt.Sprintf("b-n1-%d", i)},
			{n2, "beta-put", fmt.Sprintf("b-n2-%d", i)},
		} {
			if _, err := entry.node.Invoke(ctx, entry.method, entry.id); err != nil {
				t.Fatalf("%s via %s: %v", entry.method, entry.node.ID(), err)
			}
		}
	}

	// Every effect must have landed exactly once, and exclusively on the
	// backend of its domain's owner: single-owner execution is the whole
	// point of the partitioning.
	ids1, unknown1 := b1.snapshot()
	ids2, unknown2 := b2.snapshot()
	if len(unknown1)+len(unknown2) != 0 {
		t.Fatalf("forged effects: %v %v", unknown1, unknown2)
	}
	backendOf := map[*Node]map[string]int{n1: ids1, n2: ids2}
	for domain, prefix := range map[string]string{"alpha": "a-", "beta": "b-"} {
		owner := owners[domain]
		other := n1
		if owner == n1 {
			other = n2
		}
		for _, src := range []string{"n1", "n2"} {
			for i := 0; i < per; i++ {
				id := fmt.Sprintf("%s%s-%d", prefix, src, i)
				if got := backendOf[owner][id]; got != 1 {
					t.Fatalf("effect %s on owner %s: count %d, want 1", id, owner.ID(), got)
				}
				if got := backendOf[other][id]; got != 0 {
					t.Fatalf("effect %s leaked onto non-owner %s", id, other.ID())
				}
			}
		}
	}

	// The external amrpc path routes identically: a remote caller hitting
	// an arbitrary node is proxied to the owner.
	c, err := amrpc.Dial(n1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Component("cledger").Invoke(ctx, "beta-put", "b-ext-0"); err != nil {
		t.Fatalf("external call via n1: %v", err)
	}
	betaBackend := b1
	if owners["beta"] == n2 {
		betaBackend = b2
	}
	fresh, _ := betaBackend.snapshot()
	if fresh["b-ext-0"] != 1 {
		t.Fatalf("external effect missing on owner of beta")
	}

	// Status surfaces ownership for both local and remote domains.
	st := n1.Status()
	if len(st.Domains) != 2 || len(st.Members) != 2 {
		t.Fatalf("status incomplete: %+v", st)
	}
	for _, ds := range st.Domains {
		if ds.Owner != owners[ds.Domain].ID() {
			t.Fatalf("status owner of %s = %s, want %s", ds.Domain, ds.Owner, owners[ds.Domain].ID())
		}
		if ds.Term == 0 || ds.Addr == "" {
			t.Fatalf("status of %s missing term/addr: %+v", ds.Domain, ds)
		}
	}
}

func TestClusterAbortPropagatesAsApplicationError(t *testing.T) {
	namingAddr := startNaming(t)
	_, n1 := startLedgerNode(t, "n1", namingAddr, nil)
	_, n2 := startLedgerNode(t, "n2", namingAddr, nil)
	waitOwnership(t, n1, n2)

	// A guard Abort is an application decision: it must surface as
	// aspect.ErrAborted through both nodes (one of them forwarding) and
	// must not be retried into a duplicate admission.
	for _, n := range []*Node{n1, n2} {
		_, err := n.Invoke(context.Background(), "alpha-put", "a-x-bad")
		if !errors.Is(err, aspect.ErrAborted) {
			t.Fatalf("abort via %s: err = %v, want ErrAborted", n.ID(), err)
		}
	}
}

// TestClusterFencing pins the stale-owner discipline: a fenced call is
// honored only at the exact live term, and a node whose lease lapsed
// (wedged heartbeat) refuses its former term even before anyone else takes
// over.
func TestClusterFencing(t *testing.T) {
	namingAddr := startNaming(t)
	_, n1 := startLedgerNode(t, "n1", namingAddr, nil)
	_, n2 := startLedgerNode(t, "n2", namingAddr, nil)
	owners := waitOwnership(t, n1, n2)
	owner := owners["alpha"]
	term, ok := owner.owns("alpha")
	if !ok {
		t.Fatal("owner lost alpha immediately")
	}

	c, err := amrpc.Dial(owner.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Correct fence: accepted.
	if _, err := c.Component("cledger", amrpc.WithFenceTerm(term)).Invoke(ctx, "alpha-put", "a-f-0"); err != nil {
		t.Fatalf("correctly fenced call refused: %v", err)
	}
	// Wrong term: refused with the rehydrated sentinel.
	if _, err := c.Component("cledger", amrpc.WithFenceTerm(term+7)).Invoke(ctx, "alpha-put", "a-f-1"); !errors.Is(err, naming.ErrStaleTerm) {
		t.Fatalf("future-term fence: err = %v, want ErrStaleTerm", err)
	}
	// Fenced call to a non-owner: refused regardless of term.
	nonOwner := n1
	if owner == n1 {
		nonOwner = n2
	}
	c2, err := amrpc.Dial(nonOwner.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Component("cledger", amrpc.WithFenceTerm(term)).Invoke(ctx, "alpha-put", "a-f-2"); !errors.Is(err, naming.ErrStaleTerm) {
		t.Fatalf("fenced call to non-owner: err = %v, want ErrStaleTerm", err)
	}

	// Wedge the owner's heartbeat. Once its local lease validity (minus
	// the safety margin) lapses, the SAME node refuses the SAME term: a
	// stale owner stops executing before the next term can be granted.
	owner.hbPaused.Store(true)
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, stillOwns := owner.owns("alpha"); !stillOwns {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("wedged owner never dropped ownership")
		}
		time.Sleep(20 * time.Millisecond)
	}
	before := owner.Status().StaleRefusals
	if _, err := c.Component("cledger", amrpc.WithFenceTerm(term)).Invoke(ctx, "alpha-put", "a-f-3"); !errors.Is(err, naming.ErrStaleTerm) {
		t.Fatalf("stale owner accepted its lapsed term: err = %v", err)
	}
	if owner.Status().StaleRefusals <= before {
		t.Fatal("stale refusal not counted")
	}
}
