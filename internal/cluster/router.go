package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/amrpc"
	"repro/internal/aspect"
	"repro/internal/aspects/auth"
	"repro/internal/naming"
)

// front is the component every node serves under the public component
// name. It is the routing boundary of the plane: fenced traffic (a peer
// already resolved ownership) is executed locally iff the fence matches
// this node's live lease; unfenced traffic (an external caller that hit an
// arbitrary node) is routed — executed here or transparently forwarded to
// the owner.
type front struct{ n *Node }

// Name implements amrpc.Component.
func (f *front) Name() string { return f.n.cfg.Component }

// Call implements amrpc.Component.
func (f *front) Call(inv *aspect.Invocation) (any, error) {
	if fence, ok := amrpc.FenceOf(inv); ok {
		return f.n.serveFenced(inv, fence)
	}
	return f.n.route(inv)
}

// Invoke lets in-process callers (tests, embedded deployments) enter the
// plane through this node, with the same routing as remote callers. It
// implements the proxy.Invoker interface.
func (n *Node) Invoke(ctx context.Context, method string, args ...any) (any, error) {
	return n.route(aspect.NewInvocation(ctx, n.cfg.Component, method, args))
}

// serveFenced executes an admission a peer routed here under a fence term.
// The fence must match this node's live lease on the method's domain
// exactly; otherwise the effect is refused — this is what makes a stale
// owner (or a peer routing on a stale ownership view) harmless.
func (n *Node) serveFenced(inv *aspect.Invocation, fence uint64) (any, error) {
	domain := n.domainOf(inv.Method())
	term, ok := n.owns(domain)
	if !ok || term != fence {
		n.staleRefusals.Add(1)
		n.logf("cluster %s: refused %s (domain %s): fence %d vs held %d (owned=%v)",
			n.cfg.ID, inv.Method(), domain, fence, term, ok)
		return nil, fmt.Errorf("cluster %s: domain %s at term %d: %w", n.cfg.ID, domain, fence, naming.ErrStaleTerm)
	}
	return n.localCall(inv)
}

// localCall executes the invocation on the local guarded component and, on
// success, propagates the method's cross-node wake edges. The in-flight
// counter brackets the admission so a graceful release can drain before
// flushing its final state handoff; the ownership re-check after
// registering closes the race with a concurrent release — an admission
// that slips past it is either counted (and drained) or refused here.
func (n *Node) localCall(inv *aspect.Invocation) (any, error) {
	domain := n.domainOf(inv.Method())
	c := n.inflightFor(domain)
	c.Add(1)
	defer c.Add(-1)
	if _, ok := n.owns(domain); !ok {
		return nil, fmt.Errorf("cluster %s: domain %s: ownership lapsed before execution: %w",
			n.cfg.ID, domain, naming.ErrStaleTerm)
	}
	n.localCalls.Add(1)
	res, err := n.cfg.Local.Call(inv)
	if err == nil {
		if targets := n.cfg.WakeEdges[inv.Method()]; len(targets) > 0 {
			n.propagateWakes(inv.Context(), targets)
		}
	}
	return res, err
}

// route drives one invocation to the current owner of its domain, chasing
// ownership through stale-term refusals and owner deaths. Each round either
// executes locally (we own the domain), forwards under the owner's term, or
// refreshes the ownership view and backs off — so a call arriving during a
// failover window simply waits out the lease handover.
func (n *Node) route(inv *aspect.Invocation) (any, error) {
	ctx := inv.Context()
	method := inv.Method()
	domain := n.domainOf(method)
	var lastErr error
	for attempt := 0; attempt < n.cfg.RouteAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			n.forwardRetries.Add(1)
			backoff := time.Duration(attempt) * 20 * time.Millisecond
			if backoff > 150*time.Millisecond {
				backoff = 150 * time.Millisecond
			}
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-n.stop:
				t.Stop()
				return nil, fmt.Errorf("cluster: node %s closed", n.cfg.ID)
			}
		}

		if _, ok := n.owns(domain); ok {
			res, err := n.localCall(inv)
			if err != nil && errors.Is(err, naming.ErrStaleTerm) {
				// Ownership lapsed between the check and execution (a
				// graceful release won the race): resolve afresh.
				lastErr = err
				continue
			}
			return res, err
		}
		r, err := n.routeFor(domain, attempt > 0)
		if err != nil {
			lastErr = err
			continue // no live owner yet (failover window): back off and retry
		}
		if r.holder == n.cfg.ID {
			// The directory says us, but owns() said no — our lease view is
			// mid-transition (margin expired, renewal pending). Invalidate
			// and resolve afresh.
			n.invalidateRoute(domain, r)
			lastErr = fmt.Errorf("cluster: node %s: stale self-route for %s", n.cfg.ID, domain)
			continue
		}

		res, err := n.forward(ctx, r, inv)
		switch {
		case err == nil:
			n.forwards.Add(1)
			return res, nil
		case errors.Is(err, naming.ErrStaleTerm):
			// The peer refused our fence: our ownership view is behind.
			n.invalidateRoute(domain, r)
			lastErr = err
		case errors.Is(err, amrpc.ErrTransport):
			// The owner is unreachable (or died mid-call). Drop the pooled
			// connection and the route. If the method is not idempotent and
			// the request may have executed, surface the failure instead of
			// risking a duplicate effect.
			n.dropClient(r.addr)
			n.invalidateRoute(domain, r)
			if !n.cfg.Idempotent {
				return nil, err
			}
			lastErr = err
		default:
			// An application-level decision by the owner's aspects or
			// component: authoritative, never retried here.
			return nil, err
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no owner for domain %s", domain)
	}
	return nil, fmt.Errorf("cluster %s: routing %s.%s failed after %d attempts: %w",
		n.cfg.ID, n.cfg.Component, method, n.cfg.RouteAttempts, lastErr)
}

// routeFor returns the cached route for domain, consulting the naming
// service when the cache is cold, stale, or a refresh is forced.
func (n *Node) routeFor(domain string, force bool) (route, error) {
	n.mu.Lock()
	r, ok := n.routes[domain]
	n.mu.Unlock()
	if ok && !force && time.Since(r.fetchedAt) < n.cfg.LeaseTTL {
		return r, nil
	}
	var lease naming.DomainLease
	err := n.namingDo(func(nc *naming.Client) error {
		var err error
		lease, err = nc.LookupLease(domain)
		return err
	})
	if err != nil {
		return route{}, err
	}
	var addr string
	n.mu.Lock()
	addr, ok = n.members[lease.Holder]
	n.mu.Unlock()
	if !ok {
		// The holder is not in our membership view yet; resolve directly.
		var e naming.Entry
		err := n.namingDo(func(nc *naming.Client) error {
			var err error
			e, err = nc.Lookup(n.cfg.Prefix + "/member/" + lease.Holder)
			return err
		})
		if err != nil {
			return route{}, err
		}
		addr = e.Addr
	}
	fresh := route{holder: lease.Holder, term: lease.Term, addr: addr, fetchedAt: time.Now()}
	n.mu.Lock()
	n.routes[domain] = fresh
	n.mu.Unlock()
	return fresh, nil
}

// invalidateRoute drops a cached route if it is still the one we acted on.
func (n *Node) invalidateRoute(domain string, r route) {
	n.mu.Lock()
	if cur, ok := n.routes[domain]; ok && cur.holder == r.holder && cur.term == r.term {
		delete(n.routes, domain)
	}
	n.mu.Unlock()
}

// forward proxies inv to the owner under its lease term, re-attaching the
// caller's metadata (token, priority, remaining deadline travel with the
// stub and the context).
func (n *Node) forward(ctx context.Context, r route, inv *aspect.Invocation) (any, error) {
	client, err := n.clientFor(r.addr)
	if err != nil {
		return nil, err
	}
	opts := []amrpc.StubOption{amrpc.WithFenceTerm(r.term), amrpc.WithPriority(inv.Priority)}
	if token, ok := auth.TokenOf(inv); ok {
		opts = append(opts, amrpc.WithToken(token))
	}
	if n.cfg.Idempotent {
		opts = append(opts, amrpc.WithIdempotent())
	}
	return client.Component(n.cfg.Component, opts...).Invoke(ctx, inv.Method(), inv.Args()...)
}

// clientFor returns (dialing if needed) the pooled data-plane client for a
// peer address.
func (n *Node) clientFor(addr string) (*amrpc.Client, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("cluster: node %s closed: %w", n.cfg.ID, amrpc.ErrTransport)
	}
	if c, ok := n.clients[addr]; ok {
		n.mu.Unlock()
		return c, nil
	}
	n.mu.Unlock()

	conn, err := n.cfg.DialConn(addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %v: %w", addr, err, amrpc.ErrTransport)
	}
	addrCopy := addr
	opts := append([]amrpc.ClientOption{amrpc.WithDialFunc(func() (net.Conn, error) {
		return n.cfg.DialConn(addrCopy)
	})}, n.cfg.ClientOptions...)
	c := amrpc.NewClient(conn, opts...)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		_ = c.Close()
		return nil, fmt.Errorf("cluster: node %s closed: %w", n.cfg.ID, amrpc.ErrTransport)
	}
	if existing, ok := n.clients[addr]; ok {
		_ = c.Close()
		return existing, nil
	}
	n.clients[addr] = c
	return c, nil
}

// dropClient retires a pooled connection after a transport failure.
func (n *Node) dropClient(addr string) {
	n.mu.Lock()
	c, ok := n.clients[addr]
	if ok {
		delete(n.clients, addr)
	}
	n.mu.Unlock()
	if ok {
		_ = c.Close()
	}
}

// propagateWakes delivers post-completion wakes to the owners of the
// target methods' domains. Locally owned targets are kicked in-process;
// remote ones travel as idempotent, term-fenced notifications — duplicated
// delivery is harmless (Kick is idempotent) and a stale-term refusal is
// retried against the refreshed owner so a wake is not lost to a failover
// racing the completion.
func (n *Node) propagateWakes(ctx context.Context, targets []string) {
	for _, target := range targets {
		domain := n.domainOf(target)
		if _, ok := n.owns(domain); ok {
			n.cfg.Local.Moderator().Kick(target)
			n.wakesSent.Add(1)
			continue
		}
		for attempt := 0; attempt < 3; attempt++ {
			r, err := n.routeFor(domain, attempt > 0)
			if err != nil {
				continue
			}
			if r.holder == n.cfg.ID {
				n.cfg.Local.Moderator().Kick(target)
				n.wakesSent.Add(1)
				break
			}
			client, err := n.clientFor(r.addr)
			if err != nil {
				continue
			}
			stub := client.Component(controlName(r.holder),
				amrpc.WithFenceTerm(r.term), amrpc.WithIdempotent())
			wctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
			_, err = stub.Invoke(wctx, "wake", target)
			cancel()
			if err == nil {
				n.wakesSent.Add(1)
				break
			}
			if errors.Is(err, naming.ErrStaleTerm) {
				n.invalidateRoute(domain, r)
				continue
			}
			if errors.Is(err, amrpc.ErrTransport) {
				n.dropClient(r.addr)
				n.invalidateRoute(domain, r)
				continue
			}
			break
		}
	}
}
