package cluster

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/amrpc"
	"repro/internal/aspect"
	"repro/internal/naming"
	"repro/internal/statesync"
)

// controlName is the per-node control component: cluster-internal
// endpoints (wake notification, status introspection) kept off the public
// component name so application traffic and plane traffic cannot collide.
func controlName(nodeID string) string { return "_cluster/" + nodeID }

// control hosts this node's cluster-internal endpoints.
type control struct{ n *Node }

// Name implements amrpc.Component.
func (c *control) Name() string { return controlName(c.n.cfg.ID) }

// Call implements amrpc.Component.
func (c *control) Call(inv *aspect.Invocation) (any, error) {
	switch inv.Method() {
	case "wake":
		return c.wake(inv)
	case "sync-offer":
		return c.syncOffer(inv)
	case "status":
		return c.n.Status(), nil
	default:
		return nil, fmt.Errorf("cluster control %s: unknown method %q", c.n.cfg.ID, inv.Method())
	}
}

// syncOffer is the replication stream endpoint: a domain leader ships its
// effect log (and snapshots) here, to the node standing ring successor.
// The offer's own term field fences it — the manager refuses terms behind
// the replica's (or behind a leadership this node itself holds), so a
// zombie leader cannot overwrite fresher replicated state.
func (c *control) syncOffer(inv *aspect.Invocation) (any, error) {
	if c.n.sync == nil {
		return nil, fmt.Errorf("cluster %s: state sync disabled", c.n.cfg.ID)
	}
	payload, err := inv.ArgString(0)
	if err != nil {
		return nil, fmt.Errorf("cluster control %s: sync-offer: %w", c.n.cfg.ID, err)
	}
	var o statesync.Offer
	if err := json.Unmarshal([]byte(payload), &o); err != nil {
		return nil, fmt.Errorf("cluster control %s: sync-offer: decode: %w", c.n.cfg.ID, err)
	}
	ack, err := c.n.sync.HandleOffer(o)
	if err != nil {
		if errors.Is(err, naming.ErrStaleTerm) {
			c.n.staleRefusals.Add(1)
		}
		return nil, err
	}
	return ack, nil
}

// wake is the cross-node wake notification endpoint. It re-kicks the
// target method's wait queue on the local moderator. The operation is
// idempotent — Kick only re-triggers guard evaluation, so duplicated
// deliveries (retries, at-least-once senders) are harmless. When the
// notification carries a fence, it must match this node's live lease on
// the target's domain: a wake fenced at a term this node no longer (or
// never) holds is refused so the sender re-resolves ownership and the
// wake lands on the node that actually parks the waiters.
func (c *control) wake(inv *aspect.Invocation) (any, error) {
	target, err := inv.ArgString(0)
	if err != nil {
		return nil, fmt.Errorf("cluster control %s: wake: %w", c.n.cfg.ID, err)
	}
	domain := c.n.domainOf(target)
	if fence, fenced := amrpc.FenceOf(inv); fenced {
		term, ok := c.n.owns(domain)
		if !ok || term != fence {
			c.n.staleRefusals.Add(1)
			return nil, fmt.Errorf("cluster %s: wake %s (domain %s) at term %d: %w",
				c.n.cfg.ID, target, domain, fence, naming.ErrStaleTerm)
		}
	}
	c.n.wakesReceived.Add(1)
	c.n.cfg.Local.Moderator().Kick(target)
	return true, nil
}
