// Shadow admission: the differential oracle as a production safety net.
//
// The repo's strongest correctness asset is the Reference moderator — a
// verbatim port of the paper's single-mutex admission semantics that the
// differential oracle replays seeded schedules against in tests. Shadow
// mode carries that oracle into a running process: a sampled fraction of
// live admissions is handed to a background worker (never-blocking
// channel handoff, dropping on overflow exactly like the obs trace
// rings), which replays each sample through a private Reference instance
// and through an independent re-resolution of the composition snapshot,
// and counts divergences:
//
//   - stack: the aspect stack the compiled plan admitted differs from
//     the stack independently re-resolved from the same snapshot's layer
//     banks — a plan-compiler defect.
//   - wake: the plan's precomputed wake-target union differs from the
//     union recomputed from the aspects' Wakes() declarations.
//   - verdict: the live path admitted an invocation the Reference
//     semantics abort, or aborted one the Reference admits.
//
// # Replay soundness
//
// The structural comparisons (stack, wake) are exact: both sides derive
// from the same immutable snapshot, so any difference is a real defect.
// Verdict replay is exact for aspects whose verdict is a function of the
// invocation alone, and ADVISORY for guards whose verdict depends on
// guard state that may have changed between the sampled admission and
// the replay — the live invocation itself may have consumed the capacity
// it was admitted under. Replay therefore runs with a pre-cancelled
// context: a guard that votes Block makes the Reference return a
// cancelled-wait error instead of parking the worker, and such samples
// are counted inconclusive rather than divergent (a Block vote under
// later state is not evidence the earlier admit was wrong). Replay
// relies on the framework's own rollback contract — Precondition
// bookkeeping undone by Cancel, Block bookkeeping undone by Abandon —
// to leave guard state unperturbed: every replayed admission is
// immediately cancelled, never post-activated, and the whole replay runs
// under the sample's admission-domain mutex so live hooks never observe
// a half-replayed guard. Observational aspects may record a sampled
// duplicate (an audit line, a metrics tick); that is the price of
// replaying real hooks and is bounded by the sampling rate.
package moderator

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/aspect"
)

// DefaultShadowSampleEvery is the default sampling stride: one admission
// in every N per admission domain is replayed.
const DefaultShadowSampleEvery = 64

// DefaultShadowBuffer is the default capacity of the handoff channel
// between the admission path and the replay worker.
const DefaultShadowBuffer = 256

// DefaultShadowDivergenceLog bounds the recent-divergence list kept for
// introspection.
const DefaultShadowDivergenceLog = 64

// ShadowStats are cumulative counters for one shadow engine.
type ShadowStats struct {
	// Sampled admissions selected by the per-domain stride.
	Sampled uint64 `json:"sampled"`
	// Dropped samples the worker could not accept (full buffer). The
	// handoff never blocks the admission path.
	Dropped uint64 `json:"dropped"`
	// Replayed samples the worker processed.
	Replayed uint64 `json:"replayed"`
	// Agreements: replays whose predicted verdict matched the live one.
	Agreements uint64 `json:"agreements"`
	// Inconclusive: replays where a guard voted Block under
	// possibly-changed state; not evidence either way.
	Inconclusive uint64 `json:"inconclusive"`
	// VerdictDivergences: live admit with predicted abort, or vice versa.
	VerdictDivergences uint64 `json:"verdict_divergences"`
	// StackDivergences: compiled plan stack != independently resolved stack.
	StackDivergences uint64 `json:"stack_divergences"`
	// WakeDivergences: precomputed wake union != recomputed wake union.
	WakeDivergences uint64 `json:"wake_divergences"`
}

// Divergences sums the three divergence classes.
func (s ShadowStats) Divergences() uint64 {
	return s.VerdictDivergences + s.StackDivergences + s.WakeDivergences
}

// ShadowDivergence describes one detected divergence for introspection.
type ShadowDivergence struct {
	// Class is "verdict", "stack", or "wake".
	Class    string `json:"class"`
	Method   string `json:"method"`
	Epoch    uint64 `json:"epoch"`
	RouteKey uint64 `json:"route_key,omitempty"`
	// LiveAdmitted is the live admission outcome of the sample.
	LiveAdmitted bool `json:"live_admitted"`
	// Predicted is the replay's outcome ("admit", "abort"); empty for
	// structural classes.
	Predicted string `json:"predicted,omitempty"`
	Detail    string `json:"detail"`
}

// shadowSample is one sampled admission outcome. The snapshot and plan
// pointers are immutable, so the worker reads them without coordination.
type shadowSample struct {
	cs       *compState
	plan     *compiledPlan
	args     []any
	priority int
	routeKey uint64
	admitted bool
}

// Shadow replays sampled live admissions against the Reference semantics
// off the hot path. Construct with NewShadow, install with
// Moderator.SetShadow, and Start the worker; Stop drains and retires it.
type Shadow struct {
	m   *Moderator
	ref *Reference
	// cancelled is the pre-cancelled context every replayed invocation
	// carries, so a Block vote returns instead of parking the worker.
	cancelled context.Context

	every  uint64
	logCap int
	ch     chan shadowSample
	stop   chan struct{}
	done   chan struct{}

	started  atomic.Bool
	stopOnce sync.Once

	sampled      atomic.Uint64
	dropped      atomic.Uint64
	replayed     atomic.Uint64
	agreements   atomic.Uint64
	inconclusive atomic.Uint64
	verdictDiv   atomic.Uint64
	stackDiv     atomic.Uint64
	wakeDiv      atomic.Uint64

	mu     sync.Mutex
	recent []ShadowDivergence
}

// ShadowOption configures a Shadow.
type ShadowOption func(*Shadow)

// WithShadowSampleEvery sets the per-domain sampling stride: one
// admission in every n is replayed (minimum 1 = every admission).
func WithShadowSampleEvery(n int) ShadowOption {
	return func(s *Shadow) {
		if n < 1 {
			n = 1
		}
		s.every = uint64(n)
	}
}

// WithShadowBuffer sets the handoff channel capacity (minimum 1).
func WithShadowBuffer(n int) ShadowOption {
	return func(s *Shadow) {
		if n < 1 {
			n = 1
		}
		s.ch = make(chan shadowSample, n)
	}
}

// WithShadowDivergenceLog bounds the recent-divergence list (minimum 1).
func WithShadowDivergenceLog(n int) ShadowOption {
	return func(s *Shadow) {
		if n < 1 {
			n = 1
		}
		s.logCap = n
	}
}

// NewShadow creates a shadow engine for the moderator. The engine is
// inert until Start is called and SetShadow installs it.
func NewShadow(m *Moderator, opts ...ShadowOption) *Shadow {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := &Shadow{
		m:         m,
		ref:       NewReference(m.Name()+"#shadow", WithWakePolicy(m.WakePolicy()), WithWakeMode(m.WakeMode())),
		cancelled: ctx,
		every:     DefaultShadowSampleEvery,
		logCap:    DefaultShadowDivergenceLog,
		ch:        make(chan shadowSample, DefaultShadowBuffer),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// SetShadow installs (or, with nil, removes) the shadow engine. With no
// engine installed the admission path pays one atomic load.
func (m *Moderator) SetShadow(s *Shadow) { m.shadow.Store(s) }

// Shadow returns the installed shadow engine, or nil.
func (m *Moderator) Shadow() *Shadow { return m.shadow.Load() }

// Component returns the name of the moderator the engine shadows.
func (s *Shadow) Component() string { return s.m.Name() }

// SampleEvery returns the per-domain sampling stride.
func (s *Shadow) SampleEvery() int { return int(s.every) }

// Start launches the replay worker. Starting twice is a no-op.
func (s *Shadow) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	go s.run()
}

// Stop retires the worker after it drains already-buffered samples, and
// waits for it to exit. The engine should be removed with SetShadow(nil)
// first (or the moderator quiesced); samples offered after Stop are
// dropped once the buffer fills, never blocking the admission path.
func (s *Shadow) Stop() {
	if !s.started.Load() {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Stats returns a snapshot of the engine's counters.
func (s *Shadow) Stats() ShadowStats {
	return ShadowStats{
		Sampled:            s.sampled.Load(),
		Dropped:            s.dropped.Load(),
		Replayed:           s.replayed.Load(),
		Agreements:         s.agreements.Load(),
		Inconclusive:       s.inconclusive.Load(),
		VerdictDivergences: s.verdictDiv.Load(),
		StackDivergences:   s.stackDiv.Load(),
		WakeDivergences:    s.wakeDiv.Load(),
	}
}

// Divergences returns a copy of the recent-divergence list, oldest first.
func (s *Shadow) Divergences() []ShadowDivergence {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ShadowDivergence(nil), s.recent...)
}

// observe is called from the admission path (possibly under a domain
// mutex) with a sampled-or-not decision still to make. It must never
// block: the handoff is a buffered-channel send with a drop default,
// mirroring the obs trace rings' TryLock-drop contract.
func (s *Shadow) observe(cs *compState, plan *compiledPlan, inv *aspect.Invocation, admitted bool) {
	if plan.d.shadowTick.Add(1)%s.every != 0 {
		return
	}
	s.sampled.Add(1)
	smp := shadowSample{
		cs:       cs,
		plan:     plan,
		priority: inv.Priority,
		routeKey: routeKeyOf(inv),
		admitted: admitted,
	}
	if n := inv.NumArgs(); n > 0 {
		smp.args = append(make([]any, 0, n), inv.Args()...)
	}
	select {
	case s.ch <- smp:
	default:
		s.dropped.Add(1)
	}
}

func (s *Shadow) run() {
	defer close(s.done)
	for {
		select {
		case smp := <-s.ch:
			s.replay(smp)
		case <-s.stop:
			for {
				select {
				case smp := <-s.ch:
					s.replay(smp)
				default:
					return
				}
			}
		}
	}
}

func (s *Shadow) record(div ShadowDivergence) {
	s.mu.Lock()
	if len(s.recent) >= s.logCap {
		copy(s.recent, s.recent[1:])
		s.recent = s.recent[:len(s.recent)-1]
	}
	s.recent = append(s.recent, div)
	s.mu.Unlock()
}

// replay checks one sampled admission three ways: the plan's aspect stack
// and wake union against an independent re-resolution of the snapshot,
// and the live verdict against the Reference admission semantics.
func (s *Shadow) replay(smp shadowSample) {
	s.replayed.Add(1)
	plan := smp.plan
	method := plan.method

	// Independent re-resolution of the routed layer stack from the very
	// snapshot the live admission loaded.
	layers := smp.cs.routedLayers(method, smp.routeKey)
	var names []string
	var wakes []string
	for _, l := range layers {
		for _, e := range l.snap.ForMethod(method) {
			names = append(names, l.name+"/"+e.Aspect.Name())
			for _, t := range wakeSpan(e.Aspect) {
				if !containsString(wakes, t) {
					wakes = append(wakes, t)
				}
			}
		}
	}
	sort.Strings(wakes)

	planNames := make([]string, 0, len(plan.entries))
	for i := range plan.entries {
		planNames = append(planNames, plan.entries[i].layer+"/"+plan.entries[i].a.Name())
	}
	if !equalStrings(names, planNames) {
		s.stackDiv.Add(1)
		s.record(ShadowDivergence{
			Class: "stack", Method: method, Epoch: plan.epoch, RouteKey: smp.routeKey,
			LiveAdmitted: smp.admitted,
			Detail:       "compiled plan stack " + joinNames(planNames) + " != resolved stack " + joinNames(names),
		})
	}
	if !equalStrings(wakes, plan.wakeTargets) {
		s.wakeDiv.Add(1)
		s.record(ShadowDivergence{
			Class: "wake", Method: method, Epoch: plan.epoch, RouteKey: smp.routeKey,
			LiveAdmitted: smp.admitted,
			Detail:       "compiled wake union " + joinNames(plan.wakeTargets) + " != recomputed union " + joinNames(wakes),
		})
	}

	// Verdict replay through the Reference semantics. The replayed
	// invocation carries a pre-cancelled context (a Block vote returns a
	// cancelled-wait error instead of parking the worker) and runs under
	// the sample's admission-domain mutex AND guard cell, so it is
	// serialized with live hooks on the same guard state whichever path
	// admitted them. A predicted admission is immediately
	// rolled back via the Cancel contract; Postactivation never runs.
	s.ref.comp.Store(&compState{epoch: plan.epoch, layers: layers})
	inv := aspect.NewInvocation(s.cancelled, s.m.Name(), method, smp.args)
	inv.Priority = smp.priority
	inv.RouteKey = smp.routeKey
	d := plan.d
	d.mu.Lock()
	// The optimistic path runs live guard hooks under the domain's guard
	// cell alone (optimistic.go), so the mutex by itself no longer
	// serializes the replay against them: take the cell too (strictly
	// inside the mutex, same ordering as the mutex admission path).
	d.cell.lock()
	adm, err := s.ref.Preactivation(inv)
	if err == nil && adm != nil {
		cancelReverse(adm.admitted, inv)
	}
	d.cell.unlock()
	d.mu.Unlock()

	var predicted string
	switch {
	case err == nil:
		predicted = "admit"
	case errors.Is(err, context.Canceled):
		// A guard voted Block under state that may have changed since the
		// sample (the live admission itself may hold the capacity).
		s.inconclusive.Add(1)
		return
	default:
		predicted = "abort"
	}
	live := "abort"
	if smp.admitted {
		live = "admit"
	}
	if predicted == live {
		s.agreements.Add(1)
		return
	}
	s.verdictDiv.Add(1)
	s.record(ShadowDivergence{
		Class: "verdict", Method: method, Epoch: plan.epoch, RouteKey: smp.routeKey,
		LiveAdmitted: smp.admitted, Predicted: predicted,
		Detail: "live admission outcome " + live + ", reference semantics predict " + predicted,
	})
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func joinNames(names []string) string {
	if len(names) == 0 {
		return "[]"
	}
	out := "[" + names[0]
	for _, n := range names[1:] {
		out += " " + n
	}
	return out + "]"
}
