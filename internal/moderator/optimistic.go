// Optimistic lock-free admission for guarded-but-uncontended plans.
//
// The pure fast path (preactivateFast) is sound because NonBlocking stacks
// touch no cross-invocation guard state at all. A guarded plan does touch
// guard state, so its hooks need mutual exclusion — but mutual exclusion is
// much cheaper than the full domain mutex when nobody is parked: parking,
// wake fan-out, sticky tickets, and queue bookkeeping are what the mutex
// really buys, and an uncontended caller needs none of them.
//
// Each admission domain therefore carries a guardCell: a versioned
// spin-lock word (sequence counter; odd = held) that serializes every
// guard-state access — preconditions, postactions, cancels, abandons — of
// guarded plans. The cell is strictly innermost: the mutex path acquires it
// after the domain mutex, and a cell holder never acquires any other lock,
// so lock ordering is trivially acyclic. The optimistic path takes ONLY the
// cell:
//
//	pre-activation  (preactivateOptimistic)
//	  waiters==0 → tryLock cell → re-check waiters==0 → evaluate layers
//	    all Resume → commit, unlock, return the plan's shared receipt
//	    Abort      → roll back, unlock, error (terminal here)
//	    Block      → roll back the layer, pre-register the waiter
//	                 (m.waiters.Add(1) while still holding the cell),
//	                 unlock, and fall back to the mutex path carrying the
//	                 verdict and the cell version (optResume)
//	  any gate fails → transparent fallback to the mutex path
//
//	post-activation (postOptimistic)
//	  waiters==0 → tryLock cell → re-check waiters==0 → postactions,
//	  unlock. Any gate fails → mutex path (which performs the wake
//	  fan-out).
//
// Why the waiter re-check under the cell is sound: a caller only parks
// after incrementing m.waiters WHILE HOLDING the cell (both the mutex path
// and the optimistic Block handoff do so). So if an optimistic caller holds
// the cell and reads waiters==0, no caller is parked and none can reach
// the parked state before the cell is released — there is provably nobody
// to wake, and skipping the fan-out is exactly as sound as it is on the
// pure fast path. This closes the PR 2 stranded-caller bug class on the
// new path; TestOptimisticPostFallbackWakesWaiter pins it.
//
// Why the version handoff on Block is needed: the optimistic evaluation
// already ran the layer's preconditions and observed a Block verdict. If
// the mutex path re-ran them, every guard hook would fire twice for one
// logical admission attempt — observably different from the Reference
// (and from the mutex path), which evaluates once and parks. The fallback
// therefore re-acquires the cell under the mutex and, if the cell sequence
// shows no guard-state access happened in between, parks directly on the
// carried verdict. If the sequence moved, somebody touched guard state and
// the layer legitimately re-evaluates — semantically identical to a
// spurious wake-up, which re-parking callers already tolerate.
package moderator

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/aspect"
)

// guardCell is a per-domain versioned spin lock over the domain's guard
// state. The sequence is even when free and odd while held; every
// acquire/release pair advances it by two, so a reader comparing sequences
// across a window detects any guard-state access in between (seqlock
// style, but writers-only: guard hooks both read and write guard state, so
// there is no lock-free read side).
type guardCell struct {
	seq atomic.Uint64
}

// guardSpinBudget bounds the tight CAS retries of lock before it starts
// yielding the processor. Cell critical sections are a handful of guard
// hooks (no parking, no allocation, no I/O), so a short budget suffices;
// past it the holder is likely descheduled and spinning would only starve
// it — on a single-CPU host, Gosched is what lets the holder finish.
const guardSpinBudget = 16

// tryLock attempts one acquisition; it never spins.
func (c *guardCell) tryLock() bool {
	s := c.seq.Load()
	return s&1 == 0 && c.seq.CompareAndSwap(s, s+1)
}

// lock spins until the cell is held, yielding after guardSpinBudget tries.
func (c *guardCell) lock() {
	for spins := 0; !c.tryLock(); spins++ {
		if spins >= guardSpinBudget {
			runtime.Gosched()
		}
	}
}

// unlock releases the cell and returns the post-release (even) sequence.
func (c *guardCell) unlock() uint64 {
	return c.seq.Add(1)
}

// version returns the current sequence (odd while the cell is held).
func (c *guardCell) version() uint64 {
	return c.seq.Load()
}

// optResume carries a Block verdict from an optimistic evaluation into the
// mutex fallback: which layer blocked, the admitted prefix length (the
// blocked layer's partial admissions are already rolled back), the
// blocking aspect, and the cell sequence observed when the optimistic
// caller released the cell. The caller has ALREADY pre-registered itself
// in m.waiters; the mutex path consumes that registration on its first
// park (or releases it if re-evaluation admits or aborts instead).
type optResume struct {
	layer int
	k     int
	kind  aspect.Kind
	by    aspect.Aspect
	ver   uint64
}

// admitPoint names an instrumentation point of the optimistic paths, used
// by tests to interleave a competing caller at the exact racy window.
type admitPoint int

const (
	// hookOptimisticPre fires after the outer waiters gate passed but
	// before the pre-activation cell acquisition.
	hookOptimisticPre admitPoint = iota + 1
	// hookOptimisticPost fires after the outer waiters gate passed but
	// before the post-activation cell acquisition.
	hookOptimisticPost
)

// setAdmitHook installs (or, with nil, removes) a test hook called at the
// optimistic paths' instrumentation points. The hook runs BEFORE the cell
// is acquired, so it may drive other callers of the same domain — even
// ones that park — without deadlocking against its own invocation.
func (m *Moderator) setAdmitHook(fn func(admitPoint, *domain)) {
	if fn == nil {
		m.admitHook.Store(nil)
		return
	}
	m.admitHook.Store(&fn)
}

func (m *Moderator) callAdmitHook(p admitPoint, d *domain) {
	if h := m.admitHook.Load(); h != nil {
		(*h)(p, d)
	}
}

// OptimisticStats are cumulative counters for the optimistic admission
// paths, summed over the moderator's admission domains. They are
// intentionally NOT part of Stats: Stats is the observable surface the
// differential oracle compares against the Reference, and which path
// served an admission is an implementation detail the Reference does not
// share.
type OptimisticStats struct {
	Admits    uint64 // pre-activations committed entirely under the cell
	Completes uint64 // post-activations committed entirely under the cell
	Parks     uint64 // optimistic evaluations that hit Block and handed off
	Fallbacks uint64 // cell acquired but waiters appeared: mutex fallback
	Conflicts uint64 // cell tryLock lost: mutex fallback
}

// OptimisticStats returns a snapshot of the optimistic-path counters.
func (m *Moderator) OptimisticStats() OptimisticStats {
	var s OptimisticStats
	for _, d := range m.domains.Load().all {
		s.Admits += d.optAdmits.Load()
		s.Completes += d.optCompletes.Load()
		s.Parks += d.optParks.Load()
		s.Fallbacks += d.optFallbacks.Load()
		s.Conflicts += d.optConflicts.Load()
	}
	return s
}

// preactivateOptimistic admits a guarded plan under the domain's guard
// cell alone. The caller has already checked tb == nil, plan.optimistic,
// and m.waiters == 0. The final return reports whether the attempt was
// terminal: if false, the caller must fall back to the mutex path, passing
// along the (possibly nil) optResume.
func (m *Moderator) preactivateOptimistic(cs *compState, inv *aspect.Invocation, plan *compiledPlan, d *domain, sh *Shadow) (*Admission, error, *optResume, bool) {
	m.callAdmitHook(hookOptimisticPre, d)
	if !d.cell.tryLock() {
		d.optConflicts.Add(1)
		return nil, nil, nil, false
	}
	// Re-check under the cell: a caller that decided to park after the
	// outer gate must increment m.waiters while holding the cell before it
	// can reach the parked state, so this read is authoritative.
	if m.waiters.Load() != 0 {
		d.cell.unlock()
		d.optFallbacks.Add(1)
		return nil, nil, nil, false
	}
	k := 0
	for li := range plan.layers {
		l := &plan.layers[li]
		mark := k
		for i := l.lo; i < l.hi; i++ {
			e := &plan.entries[i]
			v := e.a.Precondition(inv)
			if v == aspect.Resume {
				k++
				continue
			}
			if v == aspect.Block {
				// Layer-atomic rollback, then hand the verdict to the
				// mutex path. Pre-registering the waiter under the cell is
				// the anti-stranding invariant: any completer that could
				// skip the wake fan-out must first win this cell and will
				// then observe waiters != 0.
				cancelReverse(plan.aspects[mark:k], inv)
				m.waiters.Add(1)
				ver := d.cell.unlock()
				d.optParks.Add(1)
				return nil, nil, &optResume{layer: li, k: mark, kind: e.kind, by: e.a, ver: ver}, false
			}
			var abortErr error
			if v == aspect.Abort {
				abortErr = inv.Err()
				if abortErr == nil {
					abortErr = aspect.ErrAborted
				}
			} else {
				abortErr = fmt.Errorf("moderator %s: aspect %q returned invalid verdict %v: %w",
					m.name, e.a.Name(), v, aspect.ErrAborted)
			}
			cancelReverse(plan.aspects[:k], inv)
			d.aborts.Add(1)
			d.cell.unlock()
			if sh != nil {
				sh.observe(cs, plan, inv, false)
			}
			return nil, fmt.Errorf("moderator %s: %s pre-activation (layer %s): %w",
				m.name, inv.Method(), l.name, abortErr), nil, true
		}
	}
	d.admissions.Add(1)
	d.cell.unlock()
	d.optAdmits.Add(1)
	if sh != nil {
		sh.observe(cs, plan, inv, true)
	}
	return plan.sharedAdm, nil, nil, true
}

// postOptimistic runs a guarded fast receipt's postactions under the guard
// cell alone, reporting whether it committed. The caller has already
// checked adm.fast and tb == nil. Skipping the wake fan-out is sound for
// the same reason as on the pure fast path: with the cell held and
// waiters == 0, nobody is parked and nobody can park before the cell is
// released, so there is nobody to wake.
func (m *Moderator) postOptimistic(inv *aspect.Invocation, adm *Admission, d *domain) bool {
	if m.waiters.Load() != 0 {
		return false
	}
	m.callAdmitHook(hookOptimisticPost, d)
	if !d.cell.tryLock() {
		d.optConflicts.Add(1)
		return false
	}
	if m.waiters.Load() != 0 {
		d.cell.unlock()
		d.optFallbacks.Add(1)
		return false
	}
	admitted := adm.admitted
	for i := len(admitted) - 1; i >= 0; i-- {
		admitted[i].Postaction(inv)
	}
	d.cell.unlock()
	d.optCompletes.Add(1)
	releaseAdmission(adm)
	return true
}
