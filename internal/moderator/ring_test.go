package moderator

// Tests for the batched admission path (ring.go): the wake-coalescing
// regression (a batch admitting k waiters issues ONE coalesced wake pass,
// not k broadcasts, and strands nobody — the PR 2 stranded-caller bug
// class, re-pinned on the batch path), the ring Block handoff, the
// full-ring mutex fallback, the option gate, and a contended soak
// asserting the ring actually engages and balances.

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aspect"
)

// gateStack registers an all-or-nothing gate guard on method "m": parked
// callers block while the gate is closed and ALL admit once it opens. The
// guard declares its wake span, so the plan is targeted and optimistic.
func gateStack(t *testing.T, m Admitter) (setOpen func(bool)) {
	t.Helper()
	var mu sync.Mutex
	open := true
	gate := &aspect.Func{
		AspectName: "gate", AspectKind: aspect.KindSynchronization,
		Pre: func(*aspect.Invocation) aspect.Verdict {
			mu.Lock()
			defer mu.Unlock()
			if !open {
				return aspect.Block
			}
			return aspect.Resume
		},
		WakeList: []string{"m"},
	}
	if err := m.Register("m", aspect.KindSynchronization, gate); err != nil {
		t.Fatal(err)
	}
	return func(v bool) {
		mu.Lock()
		open = v
		mu.Unlock()
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestRingWakeCoalescing is the wake-coalescing regression: j callers park
// on a closed gate, the gate opens, and then a single drain batch
// completes k admitted invocations. The batch must issue exactly ONE
// broadcast of the method's queue — not k — and every parked caller must
// admit (nobody stranded). The parking phase doubles as the Block-handoff
// check: every parker after the first arrives with waiters > 0, routes
// through the ring, and parks on the drainer's carried verdict.
func TestRingWakeCoalescing(t *testing.T) {
	const k, j = 8, 4
	// Gate off: the parkers submit one at a time with the mutex free, so
	// the gated default would serve them from the mutex path; this test
	// pins ring semantics, not routing (TestRingGate* pin the routing).
	m := New("ring", WithRingContentionGate(false))
	setOpen := gateStack(t, m)

	// Admit k invocations while the gate is open; their completions form
	// the batch under test.
	invs := make([]*aspect.Invocation, k)
	adms := make([]*Admission, k)
	for i := range invs {
		invs[i] = aspect.NewInvocation(context.Background(), "ring", "m", nil)
		adm, err := m.Preactivation(invs[i])
		if err != nil {
			t.Fatal(err)
		}
		adms[i] = adm
	}

	// Close the gate and park j callers, sequentially so each one's
	// routing is deterministic: the first hands off from the optimistic
	// path, the rest see waiters > 0 and hand off from the ring.
	setOpen(false)
	var admitted atomic.Int64
	var wg sync.WaitGroup
	waiterAdms := make([]*Admission, j)
	waiterInvs := make([]*aspect.Invocation, j)
	for i := 0; i < j; i++ {
		waiterInvs[i] = aspect.NewInvocation(context.Background(), "ring", "m", nil)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			adm, err := m.Preactivation(waiterInvs[i])
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			waiterAdms[i] = adm
			admitted.Add(1)
		}(i)
		want := i + 1
		waitFor(t, "caller to park", func() bool { return m.Waiting("m") == want })
	}
	if got := m.RingStats().Parks; got != j-1 {
		t.Fatalf("ring Block handoffs = %d, want %d (every parker after the first)", got, j-1)
	}

	setOpen(true)

	broadcastsBefore := queueBroadcasts(m, "m")
	before := m.RingStats()

	// Complete all k receipts in ONE batch: hold the drainer election,
	// enqueue the post-ops, drain once.
	d := m.domains.Load().byMethod["m"]
	r := d.ring
	for !r.draining.CompareAndSwap(0, 1) {
	}
	for i := 0; i < k; i++ {
		// Mirror the Postactivation prologue the manual injection skips.
		d.completions.Add(1)
		op := ringOpPool.Get().(*ringOp)
		op.kind, op.inv, op.plan, op.adm = ringPost, invs[i], adms[i].plan, adms[i]
		if !r.enqueue(op) {
			t.Fatalf("enqueue %d refused", i)
		}
	}
	m.drainRing(d)
	r.draining.Store(0)

	after := m.RingStats()
	if got := after.PostOps - before.PostOps; got != k {
		t.Fatalf("batched post-ops = %d, want %d", got, k)
	}
	if got := after.Batches - before.Batches; got != 1 {
		t.Fatalf("drain passes = %d, want 1", got)
	}
	if got := after.WakePasses - before.WakePasses; got != 1 {
		t.Fatalf("coalesced wake passes = %d, want 1", got)
	}
	if after.MaxBatch < k {
		t.Fatalf("max batch = %d, want >= %d", after.MaxBatch, k)
	}

	// The load-bearing assertion: k completions, ONE broadcast.
	if got := queueBroadcasts(m, "m") - broadcastsBefore; got != 1 {
		t.Fatalf("broadcasts for %d batched completions = %d, want 1 coalesced pass", k, got)
	}

	// And nobody stranded: every parked caller admits.
	wg.Wait()
	if got := admitted.Load(); got != j {
		t.Fatalf("admitted waiters = %d, want %d", got, j)
	}
	for i := 0; i < j; i++ {
		m.Postactivation(waiterInvs[i], waiterAdms[i])
	}
	st := m.Stats()
	if st.Admissions != k+j || st.Completions != k+j {
		t.Fatalf("stats = %+v, want %d admissions and completions", st, k+j)
	}
}

// queueBroadcasts sums Broadcasts over the method's queues.
func queueBroadcasts(m *Moderator, method string) uint64 {
	var n uint64
	for name, qs := range m.QueueStats() {
		if strings.HasPrefix(name, method+"/") {
			n += qs.Broadcasts
		}
	}
	return n
}

// TestRingFullFallsBackToMutex pins the overflow contract: a full
// submission ring refuses the enqueue and the caller admits through the
// plain mutex path — the ring bounds memory, never admission.
func TestRingFullFallsBackToMutex(t *testing.T) {
	// Optimistic and the contention gate off so an uncontended guarded
	// admission routes straight to the ring.
	m := New("ring", WithOptimisticAdmission(false), WithRingContentionGate(false))
	setOpen := gateStack(t, m)
	setOpen(true)

	d := m.domains.Load().byMethod["m"]
	if d == nil {
		t.Fatal("no domain for m")
	}
	r := d.ring
	for i := 0; i < ringSize; i++ {
		if !r.enqueue(&ringOp{}) {
			t.Fatalf("enqueue %d refused before the ring was full", i)
		}
	}
	if r.enqueue(&ringOp{}) {
		t.Fatal("enqueue accepted into a full ring")
	}

	inv := aspect.NewInvocation(context.Background(), "ring", "m", nil)
	adm, err := m.Preactivation(inv)
	if err != nil {
		t.Fatalf("admission with a full ring: %v", err)
	}
	if m.RingStats().FullFallbacks == 0 {
		t.Fatal("full-ring fallback not counted")
	}
	// Post-activation must spill to the mutex path too (ring still full).
	m.Postactivation(inv, adm)
	if st := m.Stats(); st.Admissions != 1 || st.Completions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBatchedAdmissionDisabled pins the option gate: with batching off, a
// contended run must never touch a submission ring.
func TestBatchedAdmissionDisabled(t *testing.T) {
	m := New("ring", WithBatchedAdmission(false))
	occupancy := optSemStack(t, m)
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				inv := aspect.NewInvocation(context.Background(), "opt", "m", nil)
				adm, err := m.Preactivation(inv)
				if err != nil {
					t.Error(err)
					return
				}
				m.Postactivation(inv, adm)
			}
		}()
	}
	wg.Wait()
	if rs := m.RingStats(); rs != (RingStats{}) {
		t.Fatalf("ring engaged while disabled: %+v", rs)
	}
	if got := occupancy(); got != 0 {
		t.Fatalf("semaphore leaked %d admissions", got)
	}
	if st := m.Stats(); st.Admissions != callers*50 || st.Completions != callers*50 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRingContendedSoak drives a contended capacity-1 semaphore hard
// enough that batching must engage, then audits the balance: every
// admission completed, the guard is empty, and the batch accounting is
// internally consistent. Each admission is held across a yield so callers
// overlap even on a single processor. The contention gate is off so ring
// engagement does not depend on how often the host preempts a mutex
// holder mid-critical-section (on one processor, possibly never).
func TestRingContendedSoak(t *testing.T) {
	m := New("ring", WithRingContentionGate(false))
	occupancy := optSemStack(t, m)
	const callers, rounds = 16, 60
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				inv := aspect.NewInvocation(context.Background(), "opt", "m", nil)
				adm, err := m.Preactivation(inv)
				if err != nil {
					t.Error(err)
					return
				}
				runtime.Gosched()
				m.Postactivation(inv, adm)
			}
		}()
	}
	wg.Wait()
	if got := occupancy(); got != 0 {
		t.Fatalf("semaphore leaked %d admissions", got)
	}
	st := m.Stats()
	if st.Admissions != callers*rounds || st.Completions != callers*rounds {
		t.Fatalf("stats = %+v, want %d admissions and completions", st, callers*rounds)
	}
	rs := m.RingStats()
	if rs.Submitted == 0 || rs.Batches == 0 {
		t.Fatalf("contended soak never batched: %+v", rs)
	}
	if rs.BatchedOps != rs.PreOps+rs.PostOps {
		t.Fatalf("batch accounting off: %+v", rs)
	}
	if rs.Depth != 0 {
		t.Fatalf("ring not drained at quiescence: depth %d", rs.Depth)
	}
	var bucketed uint64
	for _, b := range rs.BatchSizes {
		bucketed += b
	}
	if bucketed != rs.Batches {
		t.Fatalf("histogram holds %d batches, counters say %d", bucketed, rs.Batches)
	}
}

// TestRingGateBypassesUncontendedMutex pins the contention gate's cheap
// half: with nobody inside the domain mutex, a ring-eligible admission
// (optimistic off, so nothing shields the ring) probes the lock, finds it
// free, and is served by the plain mutex path — the ring carries nothing
// and both hops count a bypass.
func TestRingGateBypassesUncontendedMutex(t *testing.T) {
	m := New("ring", WithOptimisticAdmission(false))
	setOpen := gateStack(t, m)
	setOpen(true)

	inv := aspect.NewInvocation(context.Background(), "ring", "m", nil)
	adm, err := m.Preactivation(inv)
	if err != nil {
		t.Fatal(err)
	}
	m.Postactivation(inv, adm)

	rs := m.RingStats()
	if rs.Submitted != 0 {
		t.Fatalf("uncontended ops rode the ring: %+v", rs)
	}
	if rs.MutexBypasses != 2 {
		t.Fatalf("mutex bypasses = %d, want 2 (one pre, one post)", rs.MutexBypasses)
	}
	if st := m.Stats(); st.Admissions != 1 || st.Completions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRingGateEngagesWhileMutexHeld pins the gate's other half: a
// ring-eligible admission that probes while the domain mutex is held must
// enqueue and be served by a drain. The test holds the mutex directly, so
// engagement does not depend on the scheduler ever preempting a holder.
func TestRingGateEngagesWhileMutexHeld(t *testing.T) {
	m := New("ring", WithOptimisticAdmission(false))
	setOpen := gateStack(t, m)
	setOpen(true)

	d := m.domains.Load().byMethod["m"]
	if d == nil {
		t.Fatal("no domain for m")
	}
	d.mu.Lock()
	inv := aspect.NewInvocation(context.Background(), "ring", "m", nil)
	var adm *Admission
	done := make(chan error, 1)
	go func() {
		a, err := m.Preactivation(inv)
		adm = a
		done <- err
	}()
	// The submitter fails its probe, enqueues, self-elects drainer, and
	// blocks acquiring the mutex this test holds.
	waitFor(t, "failed probe to enqueue", func() bool { return d.ring.submitted.Load() == 1 })
	d.mu.Unlock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	rs := m.RingStats()
	if rs.Submitted != 1 || rs.Batches == 0 || rs.PreOps != 1 {
		t.Fatalf("held-mutex admission did not batch: %+v", rs)
	}
	// The mutex is free again, so the completion's probe bypasses.
	m.Postactivation(inv, adm)
	if st := m.Stats(); st.Admissions != 1 || st.Completions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
