package moderator

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aspect"
)

func routedInv(method string, key uint64) *aspect.Invocation {
	i := aspect.NewInvocation(context.Background(), "comp", method, nil)
	i.RouteKey = key
	return i
}

// countingAspect records which plan set admitted an invocation by bumping a
// counter; registered only in the candidate, its count is exactly the
// canary-routed traffic.
func countingAspect(name string, n *atomic.Int64) *aspect.Func {
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindMetrics,
		Pre: func(*aspect.Invocation) aspect.Verdict {
			n.Add(1)
			return aspect.Resume
		},
	}
}

func TestRouteToCandidateDeterministicAndClamped(t *testing.T) {
	if routeToCandidate("open", 7, 0) {
		t.Error("pct 0 must never route to candidate")
	}
	if !routeToCandidate("open", 7, 100) {
		t.Error("pct 100 must always route to candidate")
	}
	for key := uint64(1); key <= 200; key++ {
		first := routeToCandidate("open", key, 25)
		for i := 0; i < 3; i++ {
			if routeToCandidate("open", key, 25) != first {
				t.Fatalf("routing for key %d not deterministic", key)
			}
		}
	}
	// The hash spreads keys: a 25% fraction should land in a broad band
	// over 1000 sequential keys.
	hits := 0
	for key := uint64(1); key <= 1000; key++ {
		if routeToCandidate("open", key, 25) {
			hits++
		}
	}
	if hits < 150 || hits > 350 {
		t.Errorf("25%% fraction routed %d of 1000 keys to candidate", hits)
	}
	// Raising the fraction only adds keys, never removes them (h%100 < pct
	// is monotone in pct): a canary ramp keeps earlier canary users on the
	// candidate.
	for key := uint64(1); key <= 200; key++ {
		if routeToCandidate("open", key, 25) && !routeToCandidate("open", key, 60) {
			t.Fatalf("key %d routed at 25%% but not at 60%%", key)
		}
	}
}

func TestStageCanaryRoutesFractionThenPromote(t *testing.T) {
	m := New("comp")
	var stable, cand atomic.Int64
	if err := m.Register("open", aspect.KindMetrics, countingAspect("stable-mark", &stable)); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 1 {
		t.Fatalf("fresh moderator epoch = %d, want 1", m.Epoch())
	}
	if _, staged := m.CanaryInfo(); staged {
		t.Fatal("fresh moderator reports a staged canary")
	}

	err := m.StageCanary(0, func(tx *CanaryTx) error {
		return tx.Register("open", aspect.KindMetrics, countingAspect("cand-mark", &cand))
	})
	if err != nil {
		t.Fatalf("stage: %v", err)
	}
	info, staged := m.CanaryInfo()
	if !staged || info.StableEpoch != 1 || info.CandidateEpoch != 2 || info.Percent != 0 {
		t.Fatalf("canary info = %+v staged=%v", info, staged)
	}

	drive := func(n int) {
		t.Helper()
		for key := 1; key <= n; key++ {
			i := routedInv("open", uint64(key))
			adm, err := m.Preactivation(i)
			if err != nil {
				t.Fatalf("preactivation key %d: %v", key, err)
			}
			m.Postactivation(i, adm)
		}
	}

	// Fraction 0: all stable.
	drive(100)
	if got := cand.Load(); got != 0 {
		t.Fatalf("at 0%%, candidate admitted %d invocations", got)
	}
	if got := stable.Load(); got != 100 {
		t.Fatalf("at 0%%, stable admitted %d of 100", got)
	}

	// Fraction 100: all candidate (the candidate stack contains the cloned
	// stable marker too, so stable-mark keeps counting — assert via the
	// candidate-only marker).
	if err := m.SetCanaryFraction(100); err != nil {
		t.Fatal(err)
	}
	cand.Store(0)
	drive(100)
	if got := cand.Load(); got != 100 {
		t.Fatalf("at 100%%, candidate admitted %d of 100", got)
	}

	// An intermediate fraction routes exactly the keys the hash selects.
	if err := m.SetCanaryFraction(25); err != nil {
		t.Fatal(err)
	}
	cand.Store(0)
	want := int64(0)
	for key := 1; key <= 200; key++ {
		if routeToCandidate("open", uint64(key), 25) {
			want++
		}
	}
	drive(200)
	if got := cand.Load(); got != want {
		t.Fatalf("at 25%%, candidate admitted %d, hash selects %d", got, want)
	}

	if err := m.PromoteCanary(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if m.Epoch() != 2 {
		t.Fatalf("epoch after promote = %d, want 2", m.Epoch())
	}
	if _, staged := m.CanaryInfo(); staged {
		t.Fatal("canary still staged after promote")
	}
	cand.Store(0)
	drive(50)
	if got := cand.Load(); got != 50 {
		t.Fatalf("after promote, candidate stack admitted %d of 50", got)
	}
}

func TestRollbackCanaryRestoresStableAndBurnsEpoch(t *testing.T) {
	m := New("comp")
	var cand atomic.Int64
	if err := m.Register("open", aspect.KindMetrics, countingAspect("stable-mark", new(atomic.Int64))); err != nil {
		t.Fatal(err)
	}
	err := m.StageCanary(100, func(tx *CanaryTx) error {
		return tx.Register("open", aspect.KindMetrics, countingAspect("cand-mark", &cand))
	})
	if err != nil {
		t.Fatal(err)
	}
	i := routedInv("open", 1)
	adm, err := m.Preactivation(i)
	if err != nil {
		t.Fatal(err)
	}
	m.Postactivation(i, adm)
	if cand.Load() != 1 {
		t.Fatalf("staged candidate at 100%% admitted %d", cand.Load())
	}
	if err := m.RollbackCanary(); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 1 {
		t.Fatalf("epoch after rollback = %d, want 1", m.Epoch())
	}
	cand.Store(0)
	i = routedInv("open", 1)
	adm, err = m.Preactivation(i)
	if err != nil {
		t.Fatal(err)
	}
	m.Postactivation(i, adm)
	if cand.Load() != 0 {
		t.Fatal("candidate marker still admitting after rollback")
	}
	// The burned epoch number is not reused: the next stage gets epoch 3.
	if err := m.StageCanary(0, nil); err != nil {
		t.Fatal(err)
	}
	info, _ := m.CanaryInfo()
	if info.CandidateEpoch != 3 {
		t.Fatalf("epoch after rollback+restage = %d, want 3", info.CandidateEpoch)
	}
}

func TestCanaryControlErrors(t *testing.T) {
	m := New("comp")
	if err := m.PromoteCanary(); !errors.Is(err, ErrNoCanary) {
		t.Errorf("promote with no canary: %v", err)
	}
	if err := m.RollbackCanary(); !errors.Is(err, ErrNoCanary) {
		t.Errorf("rollback with no canary: %v", err)
	}
	if err := m.SetCanaryFraction(10); !errors.Is(err, ErrNoCanary) {
		t.Errorf("set fraction with no canary: %v", err)
	}
	if err := m.StageCanary(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.StageCanary(0, nil); !errors.Is(err, ErrCanaryActive) {
		t.Errorf("double stage: %v", err)
	}
	// An edit error aborts the stage cleanly.
	if err := m.RollbackCanary(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := m.StageCanary(0, func(*CanaryTx) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("edit error not surfaced: %v", err)
	}
	if _, staged := m.CanaryInfo(); staged {
		t.Error("failed stage left a canary staged")
	}
}

func TestCanaryTxEditsCandidateOnly(t *testing.T) {
	m := New("comp")
	if err := m.Register("open", aspect.KindAudit, &aspect.Func{AspectName: "stable-audit", AspectKind: aspect.KindAudit}); err != nil {
		t.Fatal(err)
	}
	err := m.StageCanary(100, func(tx *CanaryTx) error {
		if err := tx.AddLayer("candidate-extras", Outermost); err != nil {
			return err
		}
		if err := tx.RegisterIn("candidate-extras", "open", aspect.KindMetrics,
			&aspect.Func{AspectName: "cand-extra", AspectKind: aspect.KindMetrics}); err != nil {
			return err
		}
		if n, err := tx.Unregister(BaseLayer, "open", aspect.KindAudit); err != nil || n != 1 {
			t.Errorf("tx unregister = %d, %v", n, err)
		}
		if got := tx.Layers(); len(got) != 2 || got[0] != "candidate-extras" || got[1] != BaseLayer {
			t.Errorf("tx layers = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The stable composition is untouched by the candidate's edits.
	if got := m.Layers(); len(got) != 1 || got[0] != BaseLayer {
		t.Errorf("stable layers = %v", got)
	}
	if aspects := m.Aspects("open"); len(aspects) != 1 || aspects[0].Name() != "stable-audit" {
		t.Errorf("stable aspects = %v", aspects)
	}
	info, _ := m.CanaryInfo()
	if len(info.Layers) != 2 || info.Layers[0] != "candidate-extras" {
		t.Errorf("candidate layers = %v", info.Layers)
	}
}

// TestCanaryUnguardsMethod: a candidate that removes a method's whole
// stack admits routed invocations unguarded while stable traffic keeps
// its guards.
func TestCanaryUnguardsMethod(t *testing.T) {
	m := New("comp")
	var stable atomic.Int64
	if err := m.Register("open", aspect.KindMetrics, countingAspect("stable-mark", &stable)); err != nil {
		t.Fatal(err)
	}
	err := m.StageCanary(100, func(tx *CanaryTx) error {
		n, err := tx.Unregister(BaseLayer, "open", aspect.KindMetrics)
		if n != 1 {
			t.Errorf("unregistered %d", n)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	i := routedInv("open", 1)
	adm, err := m.Preactivation(i)
	if err != nil {
		t.Fatal(err)
	}
	if adm.Len() != 0 {
		t.Errorf("candidate-routed admission carries %d aspects", adm.Len())
	}
	m.Postactivation(i, adm)
	if stable.Load() != 0 {
		t.Error("stable guard ran for a candidate-routed invocation")
	}
}

// TestReferenceCanaryMirrorsModerator drives the same canary lifecycle on
// both implementations and requires identical routing and epochs.
func TestReferenceCanaryMirrorsModerator(t *testing.T) {
	m := New("comp")
	r := NewReference("comp")
	var mc, rc atomic.Int64
	for _, err := range []error{
		m.Register("open", aspect.KindMetrics, countingAspect("stable", new(atomic.Int64))),
		r.Register("open", aspect.KindMetrics, countingAspect("stable", new(atomic.Int64))),
		m.StageCanary(25, func(tx *CanaryTx) error {
			return tx.Register("open", aspect.KindMetrics, countingAspect("cand", &mc))
		}),
		r.StageCanary(25, func(tx *CanaryTx) error {
			return tx.Register("open", aspect.KindMetrics, countingAspect("cand", &rc))
		}),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	mi, _ := m.CanaryInfo()
	ri, _ := r.CanaryInfo()
	if mi.StableEpoch != ri.StableEpoch || mi.CandidateEpoch != ri.CandidateEpoch || mi.Percent != ri.Percent {
		t.Fatalf("canary info diverges: sharded %+v reference %+v", mi, ri)
	}
	for key := 1; key <= 400; key++ {
		for _, impl := range []Admitter{m, r} {
			i := routedInv("open", uint64(key))
			adm, err := impl.Preactivation(i)
			if err != nil {
				t.Fatal(err)
			}
			impl.Postactivation(i, adm)
		}
	}
	if mc.Load() != rc.Load() {
		t.Fatalf("routing diverges: sharded admitted %d via candidate, reference %d", mc.Load(), rc.Load())
	}
	if err := m.PromoteCanary(); err != nil {
		t.Fatal(err)
	}
	if err := r.PromoteCanary(); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != r.Epoch() {
		t.Fatalf("epoch diverges after promote: %d vs %d", m.Epoch(), r.Epoch())
	}
}

// TestStableWaiterSuppressesCandidateFastPath is the epoch-swap regression
// for the fast-path gate: a caller parked under the STABLE epoch must
// force candidate-routed invocations of a pure stack onto the mutex path,
// whose conservative broadcast is what wakes the parked caller. The
// waiters counter is moderator-wide, not per-epoch — this test pins that.
func TestStableWaiterSuppressesCandidateFastPath(t *testing.T) {
	m := New("comp")
	var token atomic.Int64
	gate := &aspect.Func{
		AspectName: "token-gate",
		AspectKind: aspect.KindSynchronization,
		Pre: func(*aspect.Invocation) aspect.Verdict {
			if token.Load() == 0 {
				return aspect.Block
			}
			return aspect.Resume
		},
	}
	if err := m.Register("gate", aspect.KindSynchronization, gate); err != nil {
		t.Fatal(err)
	}
	// The candidate introduces a brand-new pure method: its whole stack
	// declares NonBlocking, so with no waiters it would take the lock-free
	// fast path and never broadcast.
	err := m.StageCanary(100, func(tx *CanaryTx) error {
		return tx.Register("pure", aspect.KindMetrics,
			&aspect.Func{AspectName: "pure-mark", AspectKind: aspect.KindMetrics, NonBlockingFlag: true})
	})
	if err != nil {
		t.Fatal(err)
	}

	parked := make(chan error, 1)
	go func() {
		i := routedInv("gate", 1)
		adm, err := m.Preactivation(i)
		if err == nil {
			m.Postactivation(i, adm)
		}
		parked <- err
	}()
	deadline := time.After(5 * time.Second)
	for m.Waiting("gate") == 0 {
		select {
		case <-deadline:
			t.Fatal("caller never parked on gate")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Open the gate WITHOUT waking anyone: only the candidate-routed pure
	// invocation's completion broadcast can release the parked caller —
	// and only if the waiters counter pushed it off the fast path.
	token.Store(1)
	i := routedInv("pure", 7)
	adm, err := m.Preactivation(i)
	if err != nil {
		t.Fatal(err)
	}
	if adm.fast {
		t.Error("candidate-routed invocation took the fast path with a stable-epoch caller parked")
	}
	m.Postactivation(i, adm)

	select {
	case err := <-parked:
		if err != nil {
			t.Fatalf("parked caller failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked caller never woke: candidate completion skipped the wake fan-out")
	}
}
