// Epoch-based reclamation for superseded composition snapshots.
//
// Every composition mutation publishes a fresh immutable compState and
// supersedes the previous one. In-flight invocations may still be running
// under a superseded snapshot — a pre-activation resolves its plan from
// one atomic Load and can then park for an arbitrarily long time — so the
// moderator cannot declare a snapshot quiescent the moment it is replaced.
// Under layer churn (the canary controller restages candidates, apps
// register and unregister aspects) that superseded history is exactly the
// kind of unbounded retention a long-lived server cannot afford to track.
//
// The scheme is a small quiescent-state-based reclamation:
//
//   - reclaimEra advances once per retirement. A snapshot is current for
//     exactly one era value: the era recorded when it is retired.
//   - Every pre-activation pins its domain's slot for the era it starts
//     in (pins[era % reclaimSlots]), holding the pin across the whole
//     evaluation, parks included, and releasing it when the receipt (or
//     error) is returned.
//   - A retired snapshot is reclaimed — dropped from the retired list so
//     nothing in the moderator references it — once the era has moved past
//     it AND its era's pin slot reads zero in every domain: every reader
//     that could have loaded it has returned.
//
// Three slots suffice because slot occupancy, not era identity, gates
// reclamation: eras conflate modulo reclaimSlots, which can only delay a
// reclamation (a pin from era e also holds snapshots retired in eras
// e±reclaimSlots), never allow it early.
//
// Memory-safety caveat, documented on purpose: there is a benign window
// between a reader's comp.Load and its pin increment in which a retirement
// may advance the era, so the reader's pin lands one era late. A sweep can
// then declare the snapshot reclaimed while that late reader still holds
// it. This is safe in Go — the reader's own reference keeps the snapshot
// alive for the garbage collector; "reclaimed" only means the moderator
// stops tracking it — so the hot path is not taxed with a pin/validate
// loop for a property the runtime already provides. What the pins DO
// guarantee is bounded retention: the retired list cannot grow without
// bound while traffic flows, and TryReclaim lets tests and operators
// observe it draining.
package moderator

// reclaimSlots is the number of era pin slots per domain. See the package
// comment above for why three are enough.
const reclaimSlots = 3

// retiredComp is one superseded composition snapshot awaiting quiescence.
type retiredComp struct {
	cs  *compState
	era uint64
}

// ReclaimStats describes the reclamation state of a moderator.
type ReclaimStats struct {
	Era       uint64 // retirements so far
	Retired   uint64 // snapshots ever superseded
	Reclaimed uint64 // snapshots released back to the collector
	Pending   uint64 // superseded snapshots still pinned (or just retired)
}

// retireLocked records that old has been superseded by a newer published
// snapshot, advances the reclamation era, and opportunistically sweeps.
// The admin mutex must be held; every comp.Store of a replacement snapshot
// must be followed by retiring the snapshot it replaced.
func (m *Moderator) retireLocked(old *compState) {
	if old == nil {
		return
	}
	e := m.reclaimEra.Add(1)
	m.retired = append(m.retired, retiredComp{cs: old, era: e - 1})
	m.sweepLocked()
}

// sweepLocked drops every retired snapshot whose era is both past and
// quiescent. The admin mutex must be held.
func (m *Moderator) sweepLocked() {
	cur := m.reclaimEra.Load()
	dt := m.domains.Load()
	keep := m.retired[:0]
	for _, r := range m.retired {
		if cur > r.era && eraQuiet(dt, r.era) {
			m.reclaimed++
			continue
		}
		keep = append(keep, r)
	}
	// Zero the dropped tail so the backing array does not pin the
	// snapshots the sweep just released.
	for i := len(keep); i < len(m.retired); i++ {
		m.retired[i] = retiredComp{}
	}
	m.retired = keep
}

// eraQuiet reports whether the era's pin slot is empty in every domain.
func eraQuiet(dt *domainTable, era uint64) bool {
	for _, d := range dt.all {
		if d.pins[era%reclaimSlots].Load() != 0 {
			return false
		}
	}
	return true
}

// TryReclaim sweeps the retired-snapshot list and returns the reclamation
// state. It is safe to call at any time from any goroutine; churn-heavy
// operators may call it periodically, though every retirement already
// sweeps opportunistically.
func (m *Moderator) TryReclaim() ReclaimStats {
	m.admin.Lock()
	defer m.admin.Unlock()
	m.sweepLocked()
	era := m.reclaimEra.Load()
	pending := uint64(len(m.retired))
	return ReclaimStats{
		Era:       era,
		Retired:   m.reclaimed + pending,
		Reclaimed: m.reclaimed,
		Pending:   pending,
	}
}
