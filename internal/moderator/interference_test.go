package moderator

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/aspect"
)

func syncGuard(name string) *aspect.Func {
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindSynchronization,
		Pre:        func(*aspect.Invocation) aspect.Verdict { return aspect.Resume },
	}
}

func admitComplete(t *testing.T, m *Moderator, method string) {
	t.Helper()
	i := aspect.NewInvocation(context.Background(), "comp", method, nil)
	adm, err := m.Preactivation(i)
	if err != nil {
		t.Fatalf("preactivation(%s): %v", method, err)
	}
	m.Postactivation(i, adm)
}

// findingsOf asserts err is a refusal and returns its report.
func findingsOf(t *testing.T, err error) InterferenceReport {
	t.Helper()
	if err == nil {
		t.Fatal("stage accepted, want interference refusal")
	}
	if !errors.Is(err, ErrInterference) {
		t.Fatalf("refusal does not wrap ErrInterference: %v", err)
	}
	var ie *InterferenceError
	if !errors.As(err, &ie) {
		t.Fatalf("refusal is not an *InterferenceError: %v", err)
	}
	if ie.Component == "" || ie.Report.OK() {
		t.Fatalf("refusal carries empty report: %+v", ie)
	}
	return ie.Report
}

func hasFinding(r InterferenceReport, class, method string) bool {
	for _, f := range r.Findings {
		if f.Class == class && f.Method == method {
			return true
		}
	}
	return false
}

func TestInterferenceWakeOverlapAcrossActiveDomains(t *testing.T) {
	m := New("comp")
	if err := m.Register("a", aspect.KindSynchronization, syncGuard("guard-a")); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("b", aspect.KindSynchronization, syncGuard("guard-b")); err != nil {
		t.Fatal(err)
	}
	// Both domains see traffic under the stable epoch; they can no longer
	// merge.
	admitComplete(t, m, "a")
	admitComplete(t, m, "b")

	err := m.StageCanary(10, func(tx *CanaryTx) error {
		return tx.Register("a", aspect.KindScheduling, &aspect.Func{
			AspectName: "cross-waker",
			AspectKind: aspect.KindScheduling,
			WakeList:   []string{"b"},
		})
	})
	report := findingsOf(t, err)
	if !hasFinding(report, InterferenceWakeOverlap, "a") {
		t.Errorf("missing wake-overlap finding for method a:\n%s", report)
	}
	// The refusal leaves no canary staged and burns no epoch number.
	if _, staged := m.CanaryInfo(); staged {
		t.Error("refused stage left a canary staged")
	}
	if err := m.StageCanary(0, nil); err != nil {
		t.Fatal(err)
	}
	if info, _ := m.CanaryInfo(); info.CandidateEpoch != 2 {
		t.Errorf("epoch after refusal+restage = %d, want 2 (refusals must not burn epochs)", info.CandidateEpoch)
	}
}

func TestInterferenceWakeSpanMergesQuiescentDomains(t *testing.T) {
	m := New("comp")
	if err := m.Register("a", aspect.KindSynchronization, syncGuard("guard-a")); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("b", aspect.KindSynchronization, syncGuard("guard-b")); err != nil {
		t.Fatal(err)
	}
	// Only a has seen traffic: {a,b} can merge into a's domain, exactly as
	// live Waker registration would.
	admitComplete(t, m, "a")
	err := m.StageCanary(10, func(tx *CanaryTx) error {
		return tx.Register("a", aspect.KindScheduling, &aspect.Func{
			AspectName: "cross-waker",
			AspectKind: aspect.KindScheduling,
			WakeList:   []string{"b"},
		})
	})
	if err != nil {
		t.Fatalf("stage with mergeable wake span refused: %v", err)
	}
	var merged bool
	for _, group := range m.Domains() {
		if len(group) == 2 && group[0] == "a" && group[1] == "b" {
			merged = true
		}
	}
	if !merged {
		t.Errorf("wake-span vetting did not merge {a,b}: domains %v", m.Domains())
	}
	// The merge persists after rollback — it reduced concurrency only.
	if err := m.RollbackCanary(); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Domains()); got != 1 {
		t.Errorf("merge did not persist after rollback: domains %v", m.Domains())
	}
}

func TestInterferenceSharedGuardAcrossCandidateDomains(t *testing.T) {
	m := New("comp")
	if err := m.Register("x", aspect.KindSynchronization, syncGuard("guard-x")); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("y", aspect.KindSynchronization, syncGuard("guard-y")); err != nil {
		t.Fatal(err)
	}
	shared := syncGuard("shared-guard")
	err := m.StageCanary(10, func(tx *CanaryTx) error {
		if err := tx.Register("x", aspect.KindSynchronization, shared); err != nil {
			return err
		}
		return tx.Register("y", aspect.KindSynchronization, shared)
	})
	report := findingsOf(t, err)
	if !hasFinding(report, InterferenceSharedGuard, "y") {
		t.Errorf("missing shared-guard finding for method y:\n%s", report)
	}
}

func TestInterferenceSharedGuardCandidateVsStable(t *testing.T) {
	m := New("comp")
	shared := syncGuard("shared-guard")
	if err := m.Register("x", aspect.KindSynchronization, shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("y", aspect.KindSynchronization, syncGuard("guard-y")); err != nil {
		t.Fatal(err)
	}
	// The candidate drops the stable binding on x and rebinds the instance
	// on y: the stable epoch still drives it under x's domain while the
	// candidate would drive it under y's.
	err := m.StageCanary(10, func(tx *CanaryTx) error {
		if _, err := tx.Unregister(BaseLayer, "x", aspect.KindSynchronization); err != nil {
			return err
		}
		return tx.Register("y", aspect.KindSynchronization, shared)
	})
	report := findingsOf(t, err)
	if !hasFinding(report, InterferenceSharedGuard, "x") {
		t.Errorf("missing shared-guard finding for stable method x:\n%s", report)
	}
}

func TestInterferenceSharedVeneerExempt(t *testing.T) {
	m := New("comp")
	if err := m.Register("x", aspect.KindSynchronization, syncGuard("guard-x")); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("y", aspect.KindSynchronization, syncGuard("guard-y")); err != nil {
		t.Fatal(err)
	}
	// A passive observational instance shared across domains is the normal
	// veneer pattern, not interference.
	veneer := &aspect.Func{
		AspectName: "shared-metrics",
		AspectKind: aspect.KindMetrics,
		Pre:        func(*aspect.Invocation) aspect.Verdict { return aspect.Resume },
	}
	err := m.StageCanary(10, func(tx *CanaryTx) error {
		if err := tx.Register("x", aspect.KindMetrics, veneer); err != nil {
			return err
		}
		return tx.Register("y", aspect.KindMetrics, veneer)
	})
	if err != nil {
		t.Fatalf("shared observational veneer refused: %v", err)
	}
}

func TestInterferenceCapabilityViolations(t *testing.T) {
	cases := []struct {
		name   string
		aspect *aspect.Func
		detail string
	}{
		{
			name: "nonblocking-with-wakes",
			aspect: &aspect.Func{
				AspectName:      "nb-waker",
				AspectKind:      aspect.KindSynchronization,
				NonBlockingFlag: true,
				WakeList:        []string{"other"},
			},
			detail: "wake fan-out",
		},
		{
			name: "nonblocking-with-abandon",
			aspect: &aspect.Func{
				AspectName:      "nb-abandoner",
				AspectKind:      aspect.KindSynchronization,
				NonBlockingFlag: true,
				AbandonFn:       func(*aspect.Invocation) {},
			},
			detail: "never block",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := New("comp")
			if err := m.Register("open", aspect.KindSynchronization, syncGuard("stable-guard")); err != nil {
				t.Fatal(err)
			}
			err := m.StageCanary(10, func(tx *CanaryTx) error {
				return tx.Register("open", aspect.KindSynchronization, tc.aspect)
			})
			report := findingsOf(t, err)
			if !hasFinding(report, InterferenceCapability, "open") {
				t.Fatalf("missing capability finding:\n%s", report)
			}
			var found bool
			for _, f := range report.Findings {
				if strings.Contains(f.Detail, tc.detail) {
					found = true
				}
			}
			if !found {
				t.Errorf("no finding detail mentions %q:\n%s", tc.detail, report)
			}
		})
	}
}

// TestInterferenceReportDeterministic: findings arrive sorted by class,
// method, aspect, so refusal reports are stable across runs.
func TestInterferenceReportDeterministic(t *testing.T) {
	m := New("comp")
	if err := m.Register("a", aspect.KindSynchronization, syncGuard("guard-a")); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("b", aspect.KindSynchronization, syncGuard("guard-b")); err != nil {
		t.Fatal(err)
	}
	admitComplete(t, m, "a")
	admitComplete(t, m, "b")
	shared := syncGuard("shared-guard")
	err := m.StageCanary(10, func(tx *CanaryTx) error {
		if err := tx.Register("b", aspect.KindScheduling, &aspect.Func{
			AspectName: "cross-waker",
			AspectKind: aspect.KindScheduling,
			WakeList:   []string{"a"},
		}); err != nil {
			return err
		}
		if err := tx.Register("a", aspect.KindSynchronization, shared); err != nil {
			return err
		}
		return tx.Register("b", aspect.KindSynchronization, shared)
	})
	report := findingsOf(t, err)
	if len(report.Findings) < 2 {
		t.Fatalf("want at least 2 findings, got:\n%s", report)
	}
	for i := 1; i < len(report.Findings); i++ {
		a, b := report.Findings[i-1], report.Findings[i]
		if a.Class > b.Class || (a.Class == b.Class && a.Method > b.Method) {
			t.Errorf("findings not sorted at %d:\n%s", i, report)
		}
	}
}
