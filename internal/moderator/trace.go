package moderator

// Admission tracing hooks. A Tracer installed with SetTracer receives
// structured lifecycle events from the admission path: ticket issued,
// per-aspect precondition verdicts, park/wake with wait durations, the
// admission itself, aborts, per-aspect postactions, and the completion
// receipt. The hooks are built for observation at production rates:
//
//   - Disabled (the default, and after SetTracer(nil)) the cost is one
//     atomic pointer load and a branch per pre- and post-activation —
//     nothing else changes on the hot path, no clock is read.
//   - Enabled, per-invocation detail (clock reads around every hook,
//     event emission) is SAMPLED: one in every Tracer.SampleEvery()
//     invocations per admission domain carries full detail, decided with
//     one domain-local atomic increment. The park/wake path is traced for
//     every invocation — parking already costs a scheduler round-trip, so
//     complete wait-duration data is worth the marginal clock reads.
//
// Aggregate counters (Stats, QueueStats, Waiting) remain exact regardless
// of sampling; consumers that need exact totals poll those instead of
// counting events (that is what internal/obs does for its gauges).
//
// Tracer implementations MUST NOT block and MUST NOT call back into the
// moderator: events are delivered while the admission domain's mutex is
// held, which is also what serializes them — events of one domain arrive
// in admission order.

import (
	"sync/atomic"

	"repro/internal/aspect"
)

// TraceOp identifies which lifecycle step produced a TraceEvent.
type TraceOp uint8

// Lifecycle steps, in the order they occur for one invocation.
const (
	// TraceTicket: a sticky wait ticket was issued on the first Block.
	TraceTicket TraceOp = iota + 1
	// TraceVerdict: one precondition was evaluated. Nanos is the hook's
	// latency; Verdict carries its decision.
	TraceVerdict
	// TracePark: the caller is about to park on a wait queue. Depth is
	// the queue depth including this caller.
	TracePark
	// TraceWake: a parked caller resumed. Nanos is the wait duration;
	// Err is set when the wait was abandoned (context cancelled).
	TraceWake
	// TraceAdmit: pre-activation fully admitted the invocation. Nanos is
	// the total pre-activation latency; Aspects the number admitted.
	TraceAdmit
	// TraceAbort: pre-activation rejected the invocation. Nanos is the
	// total pre-activation latency; Err the cause.
	TraceAbort
	// TracePost: one postaction ran. Nanos is the hook's latency.
	TracePost
	// TraceComplete: post-activation finished (the receipt's aspects all
	// ran). Nanos is the total post-activation latency; Err carries the
	// method body's error, if any.
	TraceComplete
	// TraceAspectPre, TraceAspectPost, TraceAspectCancel are not emitted
	// by the moderator itself: they are reserved for aspects that record
	// admission events through the normal aspect-bank path (the obs
	// AuditAspect), so both delivery routes share one event vocabulary.
	TraceAspectPre
	TraceAspectPost
	TraceAspectCancel
)

// String returns the event name used in dumps and metrics labels.
func (op TraceOp) String() string {
	switch op {
	case TraceTicket:
		return "ticket"
	case TraceVerdict:
		return "verdict"
	case TracePark:
		return "park"
	case TraceWake:
		return "wake"
	case TraceAdmit:
		return "admit"
	case TraceAbort:
		return "abort"
	case TracePost:
		return "post"
	case TraceComplete:
		return "complete"
	case TraceAspectPre:
		return "aspect-pre"
	case TraceAspectPost:
		return "aspect-post"
	case TraceAspectCancel:
		return "aspect-cancel"
	default:
		return "unknown"
	}
}

// TraceEvent is one admission lifecycle event. Fields that do not apply to
// an op are zero.
type TraceEvent struct {
	Op        TraceOp
	Component string
	Method    string
	// Domain identifies the admission domain the event belongs to.
	// Events with equal Domain are delivered in order. Domain 0 is
	// reserved for events emitted outside any domain (aspect-path
	// events).
	Domain     uint64
	Layer      string
	Aspect     string
	Kind       aspect.Kind
	Verdict    aspect.Verdict
	Invocation uint64
	Ticket     uint64
	// Depth is the wait-queue depth at a park, including the parker.
	Depth int
	// Aspects is the number of admitted aspects on a TraceAdmit.
	Aspects int
	// Nanos is the op-specific duration (see the op docs).
	Nanos int64
	Err   string
}

// Tracer receives admission lifecycle events. See the package notes above
// for the delivery contract (non-blocking, in-order per domain, sampled).
type Tracer interface {
	// Trace delivers one event. It must not block and must not call back
	// into the moderator that delivered it.
	Trace(ev TraceEvent)
	// SampleEvery returns N: one in every N invocations per admission
	// domain is traced in detail. Values <= 1 trace every invocation.
	// It is consulted once, when the tracer is installed.
	SampleEvery() int
}

// tracerBox pins the tracer together with its sampling rate (read once at
// install time) behind one atomic pointer.
type tracerBox struct {
	t     Tracer
	every uint64
}

// domainSeq numbers admission domains process-wide so trace consumers can
// shard their buffers the same way the moderator shards its locks.
var domainSeq atomic.Uint64

// SetTracer installs (or, with nil, removes) the moderator's tracer. The
// tracer's SampleEvery is read once here; install a new tracer to change
// the rate. Safe to call at any time, including under traffic: in-flight
// invocations finish under the tracer they started with at pre-activation
// (an invocation never mixes tracers between its admit and its receipt).
func (m *Moderator) SetTracer(t Tracer) {
	m.tracer.Store(newTracerBox(t))
}

// SetTracer installs (or removes) the reference moderator's tracer, with
// the same contract as Moderator.SetTracer.
func (r *Reference) SetTracer(t Tracer) {
	r.tracer.Store(newTracerBox(t))
}

func newTracerBox(t Tracer) *tracerBox {
	if t == nil {
		return nil
	}
	every := uint64(1)
	if n := t.SampleEvery(); n > 1 {
		every = uint64(n)
	}
	return &tracerBox{t: t, every: every}
}

// invTrace is one invocation's pinned tracing decision, shared by the
// sharded Moderator and the Reference so both apply the same gating rule:
//
//   - exact ops — ticket issue, park, wake — are emitted for EVERY
//     invocation while a tracer is installed. Parking costs a scheduler
//     round-trip anyway, and complete wait-duration data is the headline
//     observability payload, so these are never sampled out.
//   - detail ops — verdicts, admits, aborts, postactions, completions, and
//     the clock reads that time them — are emitted only for sampled-in
//     invocations (one in SampleEvery per admission domain).
//
// The zero value means tracing is off: both predicates return false.
type invTrace struct {
	t       Tracer
	sampled bool
}

// exact reports whether always-exact ops (ticket/park/wake) are emitted.
func (g invTrace) exact() bool { return g.t != nil }

// detail reports whether sampled per-invocation detail is emitted.
func (g invTrace) detail() bool { return g.sampled }

// gate decides whether one invocation carries full trace detail: nil box
// means tracing is off; otherwise one in `every` invocations of the
// domain-local tick is sampled in.
func (b *tracerBox) gate(tick *atomic.Uint64) invTrace {
	if b == nil {
		return invTrace{}
	}
	if b.every <= 1 {
		return invTrace{t: b.t, sampled: true}
	}
	return invTrace{t: b.t, sampled: tick.Add(1)%b.every == 0}
}

// completeEvent emits the post-activation receipt, carrying the method
// body's recorded error.
func completeEvent(tr Tracer, component string, inv *aspect.Invocation, domain uint64, nanos int64) {
	ev := TraceEvent{Op: TraceComplete, Component: component, Method: inv.Method(),
		Domain: domain, Invocation: inv.ID(), Nanos: nanos}
	if err := inv.Err(); err != nil {
		ev.Err = err.Error()
	}
	tr.Trace(ev)
}
