package moderator

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/aspect"
)

// recordingSink collects the (method, first-arg) pairs of every effect.
type recordingSink struct {
	mu  sync.Mutex
	got []string
}

func (s *recordingSink) Effect(inv *aspect.Invocation) {
	s.mu.Lock()
	s.got = append(s.got, inv.Method())
	s.mu.Unlock()
}

func (s *recordingSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

func admitEffect(t *testing.T, m *Moderator, method string, bodyErr error) {
	t.Helper()
	inv := aspect.NewInvocation(context.Background(), "fx", method, nil)
	adm, err := m.Preactivation(inv)
	if err != nil {
		t.Fatalf("admission: %v", err)
	}
	inv.SetResult(nil, bodyErr)
	m.Postactivation(inv, adm)
}

// TestEffectSinkFiresOnEveryCompletionRoute pins the capture hook's
// placement: the sink fires at the top of Postactivation, before any
// completion route branches off — pure fast path, optimistic guarded
// path, and mutex path completions all replicate alike.
func TestEffectSinkFiresOnEveryCompletionRoute(t *testing.T) {
	// Pure stack: the lock-free fast path.
	pure := New("fx")
	if err := pure.Register("m", aspect.KindAudit, &aspect.Func{
		AspectName: "audit", AspectKind: aspect.KindAudit, NonBlockingFlag: true,
	}); err != nil {
		t.Fatal(err)
	}
	// Guarded stack forced onto the mutex path.
	mux := New("fx", WithOptimisticAdmission(false))
	if err := mux.Register("m", aspect.KindSynchronization, &aspect.Func{
		AspectName: "sem", AspectKind: aspect.KindSynchronization,
		Pre:  func(*aspect.Invocation) aspect.Verdict { return aspect.Resume },
		Post: func(*aspect.Invocation) {},
	}); err != nil {
		t.Fatal(err)
	}

	for name, m := range map[string]*Moderator{"pure": pure, "mutex": mux} {
		sink := &recordingSink{}
		m.SetEffectSink(sink)
		admitEffect(t, m, "m", nil)
		if sink.count() != 1 {
			t.Fatalf("%s route: sink fired %d times, want 1", name, sink.count())
		}
		// Errored bodies are not effects: nothing replicates.
		admitEffect(t, m, "m", errors.New("body failed"))
		if sink.count() != 1 {
			t.Fatalf("%s route: errored completion replicated", name)
		}
		// Detached sink: the hot path is back to one nil-check.
		m.SetEffectSink(nil)
		admitEffect(t, m, "m", nil)
		if sink.count() != 1 {
			t.Fatalf("%s route: detached sink still fired", name)
		}
	}
}

// TestEffectSinkOptimisticRoute pins the same contract on the optimistic
// guard-cell path specifically, proving the measurement exercised it.
func TestEffectSinkOptimisticRoute(t *testing.T) {
	m := New("fx")
	occupancy := optSemStack(t, m)
	sink := &recordingSink{}
	m.SetEffectSink(sink)
	const n = 50
	for i := 0; i < n; i++ {
		admitEffect(t, m, "m", nil)
	}
	if sink.count() != n {
		t.Fatalf("sink fired %d times, want %d", sink.count(), n)
	}
	if os := m.OptimisticStats(); os.Admits == 0 || os.Completes == 0 {
		t.Fatalf("optimistic path never committed: %+v", os)
	}
	if got := occupancy(); got != 0 {
		t.Fatalf("semaphore leaked %d admissions", got)
	}
}
