package moderator

// Canary plan epochs: versioned composition snapshots that let a candidate
// aspect stack take a controlled fraction of live traffic before replacing
// the stable stack wholesale.
//
// The composition snapshot (compState) carries a monotonically increasing
// epoch number. StageCanary clones the stable layer set (fresh banks, the
// same aspect instances), applies the caller's edits through a CanaryTx,
// compiles a second plan set for the clone, and publishes BOTH plan sets
// in one snapshot: stable traffic keeps admitting under the stable epoch
// while a deterministic percentage of invocations — selected by hashing
// the method name with the invocation's route key — admits under the
// candidate epoch. PromoteCanary swaps the candidate in as the new stable
// in one atomic store; RollbackCanary discards it the same way. Both plan
// sets share the moderator's admission domains, wait queues, and waiters
// counter, so a caller parked under one epoch is fully visible to
// admissions of the other (see the fast-path gate in Preactivation).
//
// Routing is a pure function of (method, route key, fraction): replaying a
// workload with the same route keys reproduces exactly the same epoch
// assignment, which is what makes canary runs comparable and divergences
// attributable. Invocations carry an optional aspect.Invocation.RouteKey;
// when zero the process-unique invocation ID is used instead.
//
// Publishing a candidate is gated by the interference checker
// (interference.go): wake-list overlap that cannot be merged into one
// admission domain, stateful guards shared across domains or epochs, and
// NonBlocking capability violations refuse the stage with a structured
// report instead of letting an invasive composition reach live traffic.

import (
	"errors"
	"fmt"

	"repro/internal/aspect"
	"repro/internal/bank"
)

// ErrCanaryActive is returned by StageCanary while a candidate epoch is
// already staged: promote or roll back first.
var ErrCanaryActive = errors.New("moderator: a canary epoch is already staged")

// ErrNoCanary is returned by the canary controls when no candidate epoch
// is staged.
var ErrNoCanary = errors.New("moderator: no canary epoch is staged")

// canaryState is a staged candidate epoch: its own layer set (cloned banks
// frozen at stage time) and, on the sharded moderator, its own compiled
// plan set. It is immutable once published; changing the routed fraction
// republishes a copy.
type canaryState struct {
	epoch uint64
	// pct is the percentage of traffic routed to the candidate (0..100).
	pct uint32
	// layers is the candidate composition, outermost first.
	layers []compLayer
	// plans is the candidate's compiled plan set (sharded moderator only;
	// the Reference resolves candidate layers per invocation, exactly as
	// it does for stable ones).
	plans map[string]*compiledPlan
}

// clone copies the canary state so a published snapshot is never mutated.
func (c *canaryState) clone() *canaryState {
	cp := *c
	return &cp
}

// CanaryInfo is the introspection snapshot of a staged candidate epoch.
type CanaryInfo struct {
	// StableEpoch is the epoch serving non-canary traffic.
	StableEpoch uint64 `json:"stable_epoch"`
	// CandidateEpoch is the staged epoch's number.
	CandidateEpoch uint64 `json:"candidate_epoch"`
	// Percent of traffic routed to the candidate (0..100).
	Percent int `json:"percent"`
	// Layers are the candidate's layer names, outermost first.
	Layers []string `json:"layers"`
}

func clampPct(pct int) uint32 {
	if pct < 0 {
		return 0
	}
	if pct > 100 {
		return 100
	}
	return uint32(pct)
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// routeToCandidate decides, deterministically, whether one invocation of
// method with the given route key is served by the candidate epoch. The
// hash is FNV-1a over the method name followed by the key's eight bytes:
// the method term spreads a single key across methods, the key term
// spreads callers within a method. pct is the candidate's share in
// percent; the decision is reproducible across processes and replays.
func routeToCandidate(method string, key uint64, pct uint32) bool {
	if pct == 0 {
		return false
	}
	if pct >= 100 {
		return true
	}
	h := uint64(fnvOffset64)
	for i := 0; i < len(method); i++ {
		h ^= uint64(method[i])
		h *= fnvPrime64
	}
	for i := 0; i < 8; i++ {
		h ^= key & 0xff
		h *= fnvPrime64
		key >>= 8
	}
	return h%100 < uint64(pct)
}

// routeKeyOf returns the identity canary routing hashes for an
// invocation: the caller-provided RouteKey, or the invocation ID.
func routeKeyOf(inv *aspect.Invocation) uint64 {
	if inv.RouteKey != 0 {
		return inv.RouteKey
	}
	return inv.ID()
}

// planFor resolves the compiled plan serving one invocation: the
// candidate's when a canary is staged and the route hash selects it, the
// stable epoch's otherwise. With no canary staged the cost over a direct
// map lookup is one nil check.
func (cs *compState) planFor(inv *aspect.Invocation) *compiledPlan {
	if c := cs.cand; c != nil && routeToCandidate(inv.Method(), routeKeyOf(inv), c.pct) {
		return c.plans[inv.Method()]
	}
	return cs.plans[inv.Method()]
}

// routedLayers resolves the layer set serving (method, key): the
// candidate's or the stable epoch's. The Reference admission path and the
// shadow replayer resolve aspects from layers rather than plans.
func (cs *compState) routedLayers(method string, key uint64) []compLayer {
	if c := cs.cand; c != nil && routeToCandidate(method, key, c.pct) {
		return c.layers
	}
	return cs.layers
}

// CanaryTx edits the candidate composition during StageCanary. It starts
// as a deep clone of the stable layer set — fresh banks holding the SAME
// aspect instances — so edits never touch the stable epoch. The editing
// surface mirrors the moderator's composition mutators. Unlike live
// RegisterIn, registering a Waker aspect does not merge admission domains
// immediately: domain merging is deferred to the interference checker,
// which refuses the stage when a candidate wake span cannot be merged.
type CanaryTx struct {
	layers []compLayer
}

func cloneLayers(layers []compLayer) ([]compLayer, error) {
	out := make([]compLayer, 0, len(layers))
	for _, l := range layers {
		nb := bank.New()
		for _, meth := range l.snap.Methods() {
			for _, e := range l.snap.ForMethod(meth) {
				if err := nb.Register(meth, e.Kind, e.Aspect); err != nil {
					return nil, fmt.Errorf("clone layer %q: %w", l.name, err)
				}
			}
		}
		out = append(out, compLayer{name: l.name, bank: nb, snap: nb.Snapshot()})
	}
	return out, nil
}

func (tx *CanaryTx) find(name string) *compLayer {
	for i := range tx.layers {
		if tx.layers[i].name == name {
			return &tx.layers[i]
		}
	}
	return nil
}

// Layers returns the candidate's current layer names, outermost first.
func (tx *CanaryTx) Layers() []string {
	out := make([]string, len(tx.layers))
	for i := range tx.layers {
		out[i] = tx.layers[i].name
	}
	return out
}

// AddLayer introduces a new, empty layer into the candidate composition.
func (tx *CanaryTx) AddLayer(name string, pos Position) error {
	if name == "" {
		return errors.New("canary: empty layer name")
	}
	if tx.find(name) != nil {
		return fmt.Errorf("canary: add layer %q: %w", name, ErrLayerExists)
	}
	b := bank.New()
	nl := compLayer{name: name, bank: b, snap: b.Snapshot()}
	if pos == Innermost {
		tx.layers = append(tx.layers, nl)
		return nil
	}
	tx.layers = append([]compLayer{nl}, tx.layers...)
	return nil
}

// RemoveLayer removes a candidate layer and all its aspects.
func (tx *CanaryTx) RemoveLayer(name string) error {
	for i := range tx.layers {
		if tx.layers[i].name == name {
			tx.layers = append(tx.layers[:i], tx.layers[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("canary: remove layer %q: %w", name, ErrNoSuchLayer)
}

// Register stores an aspect at (method, kind) in the candidate's base
// layer.
func (tx *CanaryTx) Register(method string, kind aspect.Kind, a aspect.Aspect) error {
	return tx.RegisterIn(BaseLayer, method, kind, a)
}

// RegisterIn stores an aspect at (method, kind) in the named candidate
// layer.
func (tx *CanaryTx) RegisterIn(layerName, method string, kind aspect.Kind, a aspect.Aspect) error {
	l := tx.find(layerName)
	if l == nil {
		return fmt.Errorf("canary: register %s/%s in %q: %w", method, kind, layerName, ErrNoSuchLayer)
	}
	if err := l.bank.Register(method, kind, a); err != nil {
		return fmt.Errorf("canary: %w", err)
	}
	l.snap = l.bank.Snapshot()
	return nil
}

// Unregister removes every aspect at (method, kind) from the named
// candidate layer, reporting how many were removed.
func (tx *CanaryTx) Unregister(layerName, method string, kind aspect.Kind) (int, error) {
	l := tx.find(layerName)
	if l == nil {
		return 0, fmt.Errorf("canary: unregister from %q: %w", layerName, ErrNoSuchLayer)
	}
	n := l.bank.Unregister(method, kind)
	if n > 0 {
		l.snap = l.bank.Snapshot()
	}
	return n, nil
}

// Epoch returns the epoch number of the stable plan set.
func (m *Moderator) Epoch() uint64 { return m.comp.Load().epoch }

// CanaryInfo reports the staged candidate epoch, if any.
func (m *Moderator) CanaryInfo() (CanaryInfo, bool) {
	return canaryInfoOf(m.comp.Load())
}

func canaryInfoOf(cs *compState) (CanaryInfo, bool) {
	c := cs.cand
	if c == nil {
		return CanaryInfo{}, false
	}
	info := CanaryInfo{StableEpoch: cs.epoch, CandidateEpoch: c.epoch, Percent: int(c.pct)}
	for _, l := range c.layers {
		info.Layers = append(info.Layers, l.name)
	}
	return info, true
}

// StageCanary stages a candidate plan epoch: the stable composition is
// cloned, edit shapes the clone through the CanaryTx, the interference
// checker vets the result, and on success the candidate is published with
// pct percent of traffic routed to it. A stage that the checker flags is
// refused with an *InterferenceError carrying the structured report; the
// stable epoch is never perturbed (any admission-domain merges performed
// while vetting candidate wake spans persist — merging quiescent domains
// only reduces concurrency, it never changes admission semantics).
//
// Only one candidate can be staged at a time; promote or roll back before
// staging another. Candidate layers are frozen at stage time: later
// mutations of the stable composition do not leak into the candidate.
func (m *Moderator) StageCanary(pct int, edit func(*CanaryTx) error) error {
	m.admin.Lock()
	defer m.admin.Unlock()
	cur := m.comp.Load()
	if cur.cand != nil {
		return fmt.Errorf("moderator %s: stage canary: %w", m.name, ErrCanaryActive)
	}
	cloned, err := cloneLayers(cur.layers)
	if err != nil {
		return fmt.Errorf("moderator %s: stage canary: %w", m.name, err)
	}
	tx := &CanaryTx{layers: cloned}
	if edit != nil {
		if err := edit(tx); err != nil {
			return fmt.Errorf("moderator %s: stage canary: %w", m.name, err)
		}
	}
	epoch := m.epochSeq + 1
	cand := &canaryState{epoch: epoch, pct: clampPct(pct), layers: tx.layers}

	findings := checkCapability(cand.layers)
	// Vetting wake spans merges the spanned admission domains (the merge
	// is exactly what makes the span safe); a span that cannot merge is a
	// wake-overlap finding. Merging republishes the stable snapshot, so
	// reload before compiling candidate plans against the final domains.
	findings = append(findings, m.checkWakeOverlapLocked(cand.layers)...)
	cur = m.comp.Load()
	cand.plans = m.compilePlansLocked(cand.layers, epoch)
	findings = append(findings, checkSharedGuards(cur.plans, cand.plans)...)
	if len(findings) > 0 {
		sortFindings(findings)
		return &InterferenceError{
			Component: m.name,
			Report:    InterferenceReport{CandidateEpoch: epoch, Findings: findings},
		}
	}

	m.epochSeq = epoch
	m.comp.Store(&compState{epoch: cur.epoch, layers: cur.layers, plans: cur.plans, cand: cand})
	m.retireLocked(cur)
	return nil
}

// SetCanaryFraction changes the percentage of traffic routed to the
// staged candidate (clamped to 0..100) without restaging it.
func (m *Moderator) SetCanaryFraction(pct int) error {
	m.admin.Lock()
	defer m.admin.Unlock()
	cur := m.comp.Load()
	if cur.cand == nil {
		return fmt.Errorf("moderator %s: set canary fraction: %w", m.name, ErrNoCanary)
	}
	cand := cur.cand.clone()
	cand.pct = clampPct(pct)
	m.comp.Store(&compState{epoch: cur.epoch, layers: cur.layers, plans: cur.plans, cand: cand})
	m.retireLocked(cur)
	return nil
}

// PromoteCanary makes the staged candidate the stable epoch in one atomic
// snapshot swap: all traffic admits under the candidate's plans from the
// next invocation on. In-flight invocations complete under the plan they
// were admitted with, exactly as during layer churn.
func (m *Moderator) PromoteCanary() error {
	m.admin.Lock()
	defer m.admin.Unlock()
	cur := m.comp.Load()
	if cur.cand == nil {
		return fmt.Errorf("moderator %s: promote canary: %w", m.name, ErrNoCanary)
	}
	c := cur.cand
	m.comp.Store(&compState{epoch: c.epoch, layers: c.layers, plans: c.plans})
	m.retireLocked(cur)
	return nil
}

// RollbackCanary discards the staged candidate in one atomic snapshot
// swap; the burned epoch number is never reused. In-flight canary-routed
// invocations complete under the candidate plans they were admitted with.
func (m *Moderator) RollbackCanary() error {
	m.admin.Lock()
	defer m.admin.Unlock()
	cur := m.comp.Load()
	if cur.cand == nil {
		return fmt.Errorf("moderator %s: rollback canary: %w", m.name, ErrNoCanary)
	}
	m.comp.Store(&compState{epoch: cur.epoch, layers: cur.layers, plans: cur.plans})
	m.retireLocked(cur)
	return nil
}

// Epoch returns the epoch number of the reference's stable composition.
func (r *Reference) Epoch() uint64 { return r.comp.Load().epoch }

// CanaryInfo reports the staged candidate epoch, if any.
func (r *Reference) CanaryInfo() (CanaryInfo, bool) {
	return canaryInfoOf(r.comp.Load())
}

// StageCanary stages a candidate epoch on the reference moderator, with
// the same cloning, routing, and one-at-a-time semantics as the sharded
// implementation but WITHOUT interference checking: under one admission
// mutex every method is one domain, so wake-overlap and shared-guard
// hazards are structurally impossible, and with no lock-free fast path a
// NonBlocking capability violation has nothing to subvert. The
// differential oracle therefore only stages candidates the sharded
// checker accepts.
func (r *Reference) StageCanary(pct int, edit func(*CanaryTx) error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.comp.Load()
	if cur.cand != nil {
		return fmt.Errorf("moderator %s: stage canary: %w", r.name, ErrCanaryActive)
	}
	cloned, err := cloneLayers(cur.layers)
	if err != nil {
		return fmt.Errorf("moderator %s: stage canary: %w", r.name, err)
	}
	tx := &CanaryTx{layers: cloned}
	if edit != nil {
		if err := edit(tx); err != nil {
			return fmt.Errorf("moderator %s: stage canary: %w", r.name, err)
		}
	}
	r.epochSeq++
	cand := &canaryState{epoch: r.epochSeq, pct: clampPct(pct), layers: tx.layers}
	r.comp.Store(&compState{epoch: cur.epoch, layers: cur.layers, cand: cand})
	return nil
}

// SetCanaryFraction changes the candidate's routed share.
func (r *Reference) SetCanaryFraction(pct int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.comp.Load()
	if cur.cand == nil {
		return fmt.Errorf("moderator %s: set canary fraction: %w", r.name, ErrNoCanary)
	}
	cand := cur.cand.clone()
	cand.pct = clampPct(pct)
	r.comp.Store(&compState{epoch: cur.epoch, layers: cur.layers, cand: cand})
	return nil
}

// PromoteCanary makes the staged candidate the stable composition.
func (r *Reference) PromoteCanary() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.comp.Load()
	if cur.cand == nil {
		return fmt.Errorf("moderator %s: promote canary: %w", r.name, ErrNoCanary)
	}
	c := cur.cand
	r.comp.Store(&compState{epoch: c.epoch, layers: c.layers})
	return nil
}

// RollbackCanary discards the staged candidate.
func (r *Reference) RollbackCanary() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.comp.Load()
	if cur.cand == nil {
		return fmt.Errorf("moderator %s: rollback canary: %w", r.name, ErrNoCanary)
	}
	r.comp.Store(&compState{epoch: cur.epoch, layers: cur.layers})
	return nil
}
