package moderator

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/aspect"
)

// TestOnionOrderingProperty verifies, for random layer/aspect shapes, that
// post-activation order is the exact mirror of pre-activation order — the
// framework's central composition law (Figure 14).
func TestOnionOrderingProperty(t *testing.T) {
	f := func(layerSizes []uint8) bool {
		// Bound the shape: up to 4 layers of up to 4 aspects.
		if len(layerSizes) > 4 {
			layerSizes = layerSizes[:4]
		}
		m := New("comp")
		tr := &trace{}
		total := 0
		for li, rawSize := range layerSizes {
			size := int(rawSize%4) + 1
			layerName := fmt.Sprintf("layer-%d", li)
			// Layers are added innermost so that earlier-listed layers
			// stay outermost (matching list order).
			if err := m.AddLayer(layerName, Innermost); err != nil {
				return false
			}
			for k := 0; k < size; k++ {
				name := fmt.Sprintf("a-%d-%d", li, k)
				kind := aspect.Kind(fmt.Sprintf("k-%d-%d", li, k))
				if err := m.RegisterIn(layerName, "m", kind, tracer(tr, name, kind, nil)); err != nil {
					return false
				}
				total++
			}
		}
		if total == 0 {
			return true
		}
		i := inv("m")
		adm, err := m.Preactivation(i)
		if err != nil {
			return false
		}
		m.Postactivation(i, adm)
		events := tr.snapshot()
		if len(events) != 2*total {
			return false
		}
		// events[i] must be "<name>.pre:resume" and events[2*total-1-i]
		// must be "<name>.post" for the same name.
		for k := 0; k < total; k++ {
			pre := events[k]
			post := events[2*total-1-k]
			if pre[:len(pre)-len(".pre:resume")] != post[:len(post)-len(".post")] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestAbortUnwindMirrorsAdmissionProperty verifies that for a random
// prefix of admitted aspects followed by an aborting one, every admitted
// aspect is cancelled exactly once, in reverse order.
func TestAbortUnwindMirrorsAdmissionProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw % 6) // aspects admitted before the abort
		m := New("comp")
		tr := &trace{}
		for k := 0; k < n; k++ {
			name := fmt.Sprintf("ok-%d", k)
			kind := aspect.Kind(fmt.Sprintf("k-%d", k))
			if err := m.Register("m", kind, tracer(tr, name, kind, nil)); err != nil {
				return false
			}
		}
		if err := m.Register("m", "k-abort", tracer(tr, "bad", "k-abort",
			func(*aspect.Invocation) aspect.Verdict { return aspect.Abort })); err != nil {
			return false
		}
		if _, err := m.Preactivation(inv("m")); err == nil {
			return false
		}
		events := tr.snapshot()
		// n pre events, 1 abort pre, then n cancels in reverse order.
		if len(events) != 2*n+1 {
			return false
		}
		for k := 0; k < n; k++ {
			wantCancel := fmt.Sprintf("ok-%d.cancel", n-1-k)
			if events[n+1+k] != wantCancel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestStatsBalanceProperty: for any mix of admitted and aborted
// invocations, admissions + aborts equals attempts, and completions equals
// admissions after every admitted invocation is completed.
func TestStatsBalanceProperty(t *testing.T) {
	f := func(outcomes []bool) bool {
		m := New("comp")
		allow := true
		gate := aspect.New("gate", "k", func(i *aspect.Invocation) aspect.Verdict {
			if allow {
				return aspect.Resume
			}
			return aspect.Abort
		}, nil)
		if err := m.Register("m", "k", gate); err != nil {
			return false
		}
		wantAdmit, wantAbort := 0, 0
		for _, ok := range outcomes {
			allow = ok
			i := inv("m")
			adm, err := m.Preactivation(i)
			if ok {
				if err != nil {
					return false
				}
				m.Postactivation(i, adm)
				wantAdmit++
			} else {
				if err == nil {
					return false
				}
				wantAbort++
			}
		}
		s := m.Stats()
		return s.Admissions == uint64(wantAdmit) &&
			s.Aborts == uint64(wantAbort) &&
			s.Completions == uint64(wantAdmit)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
