package moderator

// Allocation guard for the admission hot path (tier-1). Compiled plans
// move all plan resolution to publish time and receipts are pooled, so a
// steady-state admission must not allocate:
//
//   - pure stack (all aspects NonBlocking), uncontended: 0 allocs/op —
//     the lock-free fast path touches only the snapshot, the plan, the
//     domain atomics, and the receipt pool.
//   - guarded stack, uncontended (optimistic guard-cell path): 0
//     allocs/op — the optimistic commit returns the plan's shared
//     receipt, so nothing per-invocation is ever materialized.
//   - guarded stack forced onto the mutex path (optimistic admission
//     disabled — the same code every fallback runs): at most 2 allocs/op
//     of slack for the receipt-pool round trip and mutex-path
//     bookkeeping (in practice this is also 0 — the bound leaves room
//     for runtime pool internals, not for per-invocation plan
//     resolution). A Block handoff additionally materializes one
//     optResume, which parking dwarfs.

import (
	"context"
	"testing"

	"repro/internal/aspect"
)

func measureAdmissionAllocs(t *testing.T, m *Moderator, method string) float64 {
	t.Helper()
	inv := aspect.NewInvocation(context.Background(), "alloc", method, nil)
	var failed error
	allocs := testing.AllocsPerRun(1000, func() {
		adm, err := m.Preactivation(inv)
		if err != nil {
			failed = err
			return
		}
		m.Postactivation(inv, adm)
	})
	if failed != nil {
		t.Fatalf("admission failed: %v", failed)
	}
	return allocs
}

func TestAdmissionAllocationsPureStack(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	m := New("alloc")
	for _, name := range []string{"pure-a", "pure-b", "pure-c"} {
		err := m.Register("m", aspect.KindAudit, &aspect.Func{
			AspectName:      name,
			AspectKind:      aspect.KindAudit,
			NonBlockingFlag: true,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := measureAdmissionAllocs(t, m, "m"); got != 0 {
		t.Fatalf("pure-stack admission allocated %.1f times per op, want 0", got)
	}
}

func TestAdmissionAllocationsGuardedFastOptimistic(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	m := New("alloc")
	occupancy := optSemStack(t, m)
	if got := measureAdmissionAllocs(t, m, "m"); got != 0 {
		t.Fatalf("optimistic guarded admission allocated %.1f times per op, want 0", got)
	}
	// Prove the measurement exercised the optimistic path, not a silent
	// mutex fallback that happened to stay within budget.
	if os := m.OptimisticStats(); os.Admits == 0 || os.Completes == 0 {
		t.Fatalf("optimistic path never committed during the measurement: %+v", os)
	}
	if got := occupancy(); got != 0 {
		t.Fatalf("semaphore leaked %d admissions", got)
	}
}

func TestAdmissionAllocationsGuardedStackMutexPath(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	// Disabling optimistic admission forces the exact code path every
	// optimistic fallback takes, pinning the documented fallback bound.
	m := New("alloc", WithOptimisticAdmission(false))
	used := 0
	guard := &aspect.Func{
		AspectName: "sem",
		AspectKind: aspect.KindSynchronization,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			used++
			return aspect.Resume // capacity 1, single caller: never blocks
		},
		Post:     func(*aspect.Invocation) { used-- },
		CancelFn: func(*aspect.Invocation) { used-- },
		WakeList: []string{"m"},
	}
	if err := m.Register("m", aspect.KindSynchronization, guard); err != nil {
		t.Fatal(err)
	}
	if got := measureAdmissionAllocs(t, m, "m"); got > 2 {
		t.Fatalf("guarded-stack admission allocated %.1f times per op, want <= 2", got)
	}
	if used != 0 {
		t.Fatalf("guard leaked %d admissions", used)
	}
}
