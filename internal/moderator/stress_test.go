package moderator

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aspect"
)

// stressSem is a counting-semaphore synchronization aspect: Precondition
// blocks callers beyond cap, Postaction releases, Cancel undoes an
// admission that never reached the method body. All its state is touched
// only under the moderator's admission lock, per the aspect contract.
type stressSem struct {
	cap     int
	in      int
	blocked atomic.Int64 // times a caller was parked (observability only)
}

func (s *stressSem) Name() string      { return "stress-sem" }
func (s *stressSem) Kind() aspect.Kind { return aspect.KindSynchronization }

func (s *stressSem) Precondition(inv *aspect.Invocation) aspect.Verdict {
	if s.in >= s.cap {
		s.blocked.Add(1)
		return aspect.Block
	}
	s.in++
	return aspect.Resume
}

func (s *stressSem) Postaction(inv *aspect.Invocation) { s.in-- }
func (s *stressSem) Cancel(inv *aspect.Invocation)     { s.in-- }

var _ aspect.Canceler = (*stressSem)(nil)

// TestModeratorStressUnderConfigurationChurn hammers one moderator from 64
// goroutines while other goroutines concurrently add and remove a whole
// aspect layer and register/unregister aspects. The admission ledger must
// balance exactly after the drain: every admitted invocation completes,
// none is lost to a layer that vanished mid-flight. Run under -race this is
// also the data-race certification for the moderator's hot paths.
func TestModeratorStressUnderConfigurationChurn(t *testing.T) {
	const (
		goroutines = 64
		perG       = 50
	)
	m := New("stress")
	sem := &stressSem{cap: 8}
	if err := m.Register("op", aspect.KindSynchronization, sem); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup

	// Layer churn: a transient outermost layer appears, gains a metrics
	// aspect on the hot method, loses it, and disappears — continuously,
	// while invocations are admitted through it.
	churn.Add(1)
	go func() {
		defer churn.Done()
		noop := aspect.New("transient", aspect.KindMetrics,
			func(inv *aspect.Invocation) aspect.Verdict { return aspect.Resume },
			func(inv *aspect.Invocation) {})
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.AddLayer("transient", Outermost); err != nil {
				t.Error(err)
				return
			}
			if err := m.RegisterIn("transient", "op", aspect.KindMetrics, noop); err != nil {
				t.Error(err)
				return
			}
			if _, err := m.Unregister("transient", "op", aspect.KindMetrics); err != nil {
				t.Error(err)
				return
			}
			if err := m.RemoveLayer("transient"); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Base-bank churn on a second method: registration traffic that shares
	// every lock with the hot path but never guards it.
	churn.Add(1)
	go func() {
		defer churn.Done()
		side := aspect.New("side", aspect.KindAudit,
			func(inv *aspect.Invocation) aspect.Verdict { return aspect.Resume },
			func(inv *aspect.Invocation) {})
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.Register("idle", aspect.KindAudit, side); err != nil {
				t.Error(err)
				return
			}
			if _, err := m.Unregister(BaseLayer, "idle", aspect.KindAudit); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var workers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for k := 0; k < perG; k++ {
				inv := aspect.NewInvocation(context.Background(), "stress", "op", nil)
				adm, err := m.Preactivation(inv)
				if err != nil {
					t.Errorf("preactivation: %v", err)
					return
				}
				// Hold the admission briefly so the semaphore saturates and
				// later callers really park on the wait queue.
				time.Sleep(20 * time.Microsecond)
				m.Postactivation(inv, adm)
			}
		}()
	}
	workers.Wait()
	close(stop)
	churn.Wait()

	if t.Failed() {
		t.FailNow()
	}
	st := m.Stats()
	total := uint64(goroutines * perG)
	if st.Admissions != total {
		t.Fatalf("admissions = %d, want %d", st.Admissions, total)
	}
	if st.Admissions != st.Completions {
		t.Fatalf("ledger unbalanced after drain: admissions=%d completions=%d",
			st.Admissions, st.Completions)
	}
	if st.Aborts != 0 {
		t.Fatalf("aborts = %d, want 0 (no caller was ever cancelled)", st.Aborts)
	}
	if sem.in != 0 {
		t.Fatalf("semaphore count = %d after drain, want 0", sem.in)
	}
	if sem.blocked.Load() == 0 {
		t.Log("note: no caller ever blocked; contention was too low to exercise the wait queue")
	}
}

// TestModeratorStressCrossMethodContention hammers the sharded moderator
// from 64 goroutines spread over 8 methods while layers appear and vanish
// concurrently. Methods m0/m1 are explicitly grouped and share one
// semaphore (the cross-domain hazard sharding must get right); m2..m7 each
// carry an independent semaphore in their own domain. After the drain the
// global ledger must balance and no guard may leak. Under -race this is
// the data-race certification for the per-domain hot paths.
func TestModeratorStressCrossMethodContention(t *testing.T) {
	const (
		methods    = 8
		perMethodG = 8 // 64 goroutines total
		perG       = 40
	)
	m := New("xstress")
	if err := m.GroupMethods("m0", "m1"); err != nil {
		t.Fatal(err)
	}
	names := make([]string, methods)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
	}

	// m0 and m1 share one semaphore: its state is only safe because both
	// methods live in one admission domain.
	shared := &stressSem{cap: 4}
	for _, meth := range names[:2] {
		if err := m.Register(meth, aspect.KindSynchronization, shared); err != nil {
			t.Fatal(err)
		}
	}
	solos := make([]*stressSem, methods)
	for i := 2; i < methods; i++ {
		solos[i] = &stressSem{cap: 2}
		if err := m.Register(names[i], aspect.KindSynchronization, solos[i]); err != nil {
			t.Fatal(err)
		}
	}

	// The grouped pair must share a domain; the rest must not share with it.
	domains := m.Domains()
	byMethod := make(map[string]int)
	for di, group := range domains {
		for _, meth := range group {
			byMethod[meth] = di
		}
	}
	d0, ok0 := byMethod["m0"]
	d1, ok1 := byMethod["m1"]
	if !ok0 || !ok1 || d0 != d1 {
		t.Fatalf("m0 and m1 not in one domain: %v", domains)
	}
	for i := 2; i < methods; i++ {
		// Solo methods get their domains lazily on first invocation; they
		// must never land in the grouped pair's domain.
		if di, ok := byMethod[names[i]]; ok && di == d0 {
			t.Fatalf("%s shares a domain with the m0/m1 group: %v", names[i], domains)
		}
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		noop := aspect.New("transient", aspect.KindMetrics, nil, nil)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.AddLayer("transient", Outermost); err != nil {
				t.Error(err)
				return
			}
			for _, meth := range names {
				if err := m.RegisterIn("transient", meth, aspect.KindMetrics, noop); err != nil {
					t.Error(err)
					return
				}
			}
			if err := m.RemoveLayer("transient"); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var workers sync.WaitGroup
	for g := 0; g < methods*perMethodG; g++ {
		meth := names[g%methods]
		workers.Add(1)
		go func() {
			defer workers.Done()
			for k := 0; k < perG; k++ {
				inv := aspect.NewInvocation(context.Background(), "xstress", meth, nil)
				adm, err := m.Preactivation(inv)
				if err != nil {
					t.Errorf("preactivation %s: %v", meth, err)
					return
				}
				time.Sleep(10 * time.Microsecond)
				m.Postactivation(inv, adm)
			}
		}()
	}
	workers.Wait()
	close(stop)
	churn.Wait()

	if t.Failed() {
		t.FailNow()
	}
	st := m.Stats()
	total := uint64(methods * perMethodG * perG)
	if st.Admissions != total {
		t.Fatalf("admissions = %d, want %d", st.Admissions, total)
	}
	if st.Admissions != st.Completions {
		t.Fatalf("ledger unbalanced after drain: admissions=%d completions=%d",
			st.Admissions, st.Completions)
	}
	if st.Aborts != 0 {
		t.Fatalf("aborts = %d, want 0", st.Aborts)
	}
	if shared.in != 0 {
		t.Fatalf("shared semaphore count = %d after drain, want 0", shared.in)
	}
	for i := 2; i < methods; i++ {
		if solos[i].in != 0 {
			t.Fatalf("%s semaphore count = %d after drain, want 0", names[i], solos[i].in)
		}
	}
}
