package moderator

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aspect"
	"repro/internal/bank"
	"repro/internal/waitq"
)

// Reference is the paper-faithful single-mutex moderator: every
// pre-activation, postaction, and cancel hook of the component runs under
// ONE admission mutex, exactly as the seed implementation (and the paper's
// AspectModerator) did. It is retained as the executable specification the
// sharded Moderator is differentially tested against
// (moderator_diff_test.go) and benchmarked against (internal/bench,
// BENCH_2.json).
//
// The admission logic below is deliberately a verbatim port of the
// pre-sharding moderator, NOT a call into the sharded code with one
// domain: sharing the hot path would let a bug hide from the oracle by
// appearing in both implementations. Keep the duplication.
type Reference struct {
	name string
	opts options

	mu        sync.Mutex
	comp      atomic.Pointer[compState]
	queues    map[qkey]*waitq.Queue
	ticketSeq uint64 // guarded by mu
	epochSeq  uint64 // guarded by mu; issues candidate epoch numbers

	admissions  atomic.Uint64
	blocks      atomic.Uint64
	aborts      atomic.Uint64
	completions atomic.Uint64

	// The reference moderator is one domain: one trace shard, one tick.
	domainID  uint64
	traceTick atomic.Uint64
	tracer    atomic.Pointer[tracerBox]
}

// NewReference creates a single-mutex reference moderator with a single
// base layer. It accepts the same options as New.
func NewReference(name string, opts ...Option) *Reference {
	r := &Reference{
		name:     name,
		opts:     buildOptions(opts),
		queues:   make(map[qkey]*waitq.Queue),
		domainID: domainSeq.Add(1),
		epochSeq: 1,
	}
	b := bank.New()
	r.comp.Store(&compState{epoch: 1, layers: []compLayer{{name: BaseLayer, bank: b, snap: b.Snapshot()}}})
	return r
}

// Name returns the component name the moderator guards.
func (r *Reference) Name() string { return r.name }

// WakePolicy returns the wait queues' wake policy.
func (r *Reference) WakePolicy() waitq.Policy { return r.opts.policy }

// WakeMode returns how post-activation releases blocked callers.
func (r *Reference) WakeMode() WakeMode { return r.opts.wakeMode }

// Stats returns a snapshot of the moderator's counters.
func (r *Reference) Stats() Stats {
	return Stats{
		Admissions:  r.admissions.Load(),
		Blocks:      r.blocks.Load(),
		Aborts:      r.aborts.Load(),
		Completions: r.completions.Load(),
	}
}

// republishLocked rebuilds and publishes the composition snapshot,
// carrying the stable epoch and any staged candidate forward (candidate
// layers are frozen at stage time, so they republish unchanged). r.mu
// must be held.
func (r *Reference) republishLocked(layers []compLayer) {
	cur := r.comp.Load()
	next := &compState{epoch: cur.epoch, cand: cur.cand, layers: make([]compLayer, len(layers))}
	for i, l := range layers {
		next.layers[i] = compLayer{name: l.name, bank: l.bank, snap: l.bank.Snapshot()}
	}
	r.comp.Store(next)
}

// Register stores an aspect at (method, kind) in the base layer.
func (r *Reference) Register(method string, kind aspect.Kind, a aspect.Aspect) error {
	return r.RegisterIn(BaseLayer, method, kind, a)
}

// RegisterIn stores an aspect at (method, kind) in the named layer. The
// single admission mutex already spans every method, so no grouping is
// needed or performed.
func (r *Reference) RegisterIn(layerName, method string, kind aspect.Kind, a aspect.Aspect) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := r.comp.Load()
	l := cs.find(layerName)
	if l == nil {
		return fmt.Errorf("moderator %s: register %s/%s in %q: %w", r.name, method, kind, layerName, ErrNoSuchLayer)
	}
	if err := l.bank.Register(method, kind, a); err != nil {
		return fmt.Errorf("moderator %s: %w", r.name, err)
	}
	r.republishLocked(cs.layers)
	return nil
}

// Unregister removes every aspect at (method, kind) from the named layer.
func (r *Reference) Unregister(layerName, method string, kind aspect.Kind) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := r.comp.Load()
	l := cs.find(layerName)
	if l == nil {
		return 0, fmt.Errorf("moderator %s: unregister from %q: %w", r.name, layerName, ErrNoSuchLayer)
	}
	n := l.bank.Unregister(method, kind)
	if n > 0 {
		r.republishLocked(cs.layers)
	}
	return n, nil
}

// AddLayer introduces a new, empty layer.
func (r *Reference) AddLayer(name string, pos Position) error {
	if name == "" {
		return fmt.Errorf("moderator %s: empty layer name", r.name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.comp.Load()
	if old.find(name) != nil {
		return fmt.Errorf("moderator %s: add layer %q: %w", r.name, name, ErrLayerExists)
	}
	b := bank.New()
	nl := compLayer{name: name, bank: b, snap: b.Snapshot()}
	layers := make([]compLayer, 0, len(old.layers)+1)
	if pos == Innermost {
		layers = append(layers, old.layers...)
		layers = append(layers, nl)
	} else {
		layers = append(layers, nl)
		layers = append(layers, old.layers...)
	}
	r.republishLocked(layers)
	return nil
}

// RemoveLayer removes a layer and all its aspects. In-flight invocations
// admitted under the layer still run its postactions.
func (r *Reference) RemoveLayer(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.comp.Load()
	if old.find(name) == nil {
		return fmt.Errorf("moderator %s: remove layer %q: %w", r.name, name, ErrNoSuchLayer)
	}
	layers := make([]compLayer, 0, len(old.layers)-1)
	for _, l := range old.layers {
		if l.name != name {
			layers = append(layers, l)
		}
	}
	r.republishLocked(layers)
	return nil
}

// GroupMethods is a no-op on the reference moderator: its one admission
// mutex already covers every method, so every method is trivially in the
// same "domain". It exists so Reference satisfies Admitter and wiring code
// can declare groups without caring which implementation it drives.
func (r *Reference) GroupMethods(methods ...string) error { return nil }

// Layers returns the current layer names, outermost first.
func (r *Reference) Layers() []string {
	cs := r.comp.Load()
	out := make([]string, len(cs.layers))
	for i := range cs.layers {
		out[i] = cs.layers[i].name
	}
	return out
}

// Aspects returns the aspects that would guard the given method right now.
func (r *Reference) Aspects(method string) []aspect.Aspect {
	var out []aspect.Aspect
	for _, l := range r.comp.Load().layers {
		for _, e := range l.snap.ForMethod(method) {
			out = append(out, e.Aspect)
		}
	}
	return out
}

// Describe returns a structural snapshot of the whole composition, read
// from the same atomically-published snapshot as the admission hot path.
func (r *Reference) Describe() []LayerInfo {
	return describeComp(r.comp.Load())
}

// DescribeString renders Describe for logs.
func (r *Reference) DescribeString() string {
	return describeString(r.name, r.opts, r.Describe())
}

// resolvedLayer is one layer's aspects as captured at pre-activation time.
// The sharded Moderator compiles this resolution into the snapshot
// (compiledPlan); the Reference deliberately keeps the per-invocation
// resolution of the pre-sharding moderator.
type resolvedLayer struct {
	name    string
	entries []bank.Entry
}

// Preactivation evaluates preconditions layer by layer under the single
// admission mutex. See Moderator.Preactivation for the shared semantics.
func (r *Reference) Preactivation(inv *aspect.Invocation) (*Admission, error) {
	cs := r.comp.Load()
	// With a canary staged, the same deterministic route hash as the
	// sharded moderator selects the candidate layer set (canary.go).
	layers := cs.routedLayers(inv.Method(), routeKeyOf(inv))
	plan := make([]resolvedLayer, 0, len(layers))
	total := 0
	for _, l := range layers {
		entries := l.snap.ForMethod(inv.Method())
		if len(entries) > 0 {
			plan = append(plan, resolvedLayer{name: l.name, entries: entries})
			total += len(entries)
		}
	}
	g := r.tracer.Load().gate(&r.traceTick)
	if total == 0 {
		r.admissions.Add(1)
		if g.detail() {
			g.t.Trace(TraceEvent{Op: TraceAdmit, Component: r.name, Method: inv.Method(),
				Domain: r.domainID, Invocation: inv.ID()})
		}
		return nil, nil
	}
	var preStart time.Time
	if g.detail() {
		preStart = time.Now()
	}

	r.mu.Lock()
	defer r.mu.Unlock()

	var ticket uint64
	admitted := make([]aspect.Aspect, 0, total)
	for _, l := range plan {
		for {
			mark := len(admitted)
			var blockedKind aspect.Kind
			var blockedBy aspect.Aspect
			blocked := false
			var abortErr error
			for _, e := range l.entries {
				var hook0 time.Time
				if g.detail() {
					hook0 = time.Now()
				}
				v := e.Aspect.Precondition(inv)
				if g.detail() {
					g.t.Trace(TraceEvent{Op: TraceVerdict, Component: r.name, Method: inv.Method(),
						Domain: r.domainID, Layer: l.name, Aspect: e.Aspect.Name(), Kind: e.Kind,
						Verdict: v, Invocation: inv.ID(), Nanos: time.Since(hook0).Nanoseconds()})
				}
				if v == aspect.Resume {
					admitted = append(admitted, e.Aspect)
					continue
				}
				switch v {
				case aspect.Block:
					blocked = true
					blockedKind = e.Kind
					blockedBy = e.Aspect
				case aspect.Abort:
					abortErr = inv.Err()
					if abortErr == nil {
						abortErr = aspect.ErrAborted
					}
				default:
					abortErr = fmt.Errorf("moderator %s: aspect %q returned invalid verdict %v: %w",
						r.name, e.Aspect.Name(), v, aspect.ErrAborted)
				}
				break
			}
			if abortErr != nil {
				cancelReverse(admitted, inv)
				r.aborts.Add(1)
				if g.detail() {
					g.t.Trace(TraceEvent{Op: TraceAbort, Component: r.name, Method: inv.Method(),
						Domain: r.domainID, Layer: l.name, Invocation: inv.ID(),
						Nanos: time.Since(preStart).Nanoseconds(), Err: abortErr.Error()})
				}
				return nil, fmt.Errorf("moderator %s: %s pre-activation (layer %s): %w",
					r.name, inv.Method(), l.name, abortErr)
			}
			if !blocked {
				break
			}
			cancelReverse(admitted[mark:], inv)
			admitted = admitted[:mark]
			r.blocks.Add(1)
			if ticket == 0 {
				r.ticketSeq++
				ticket = r.ticketSeq
				if g.exact() {
					g.t.Trace(TraceEvent{Op: TraceTicket, Component: r.name, Method: inv.Method(),
						Domain: r.domainID, Kind: blockedKind, Invocation: inv.ID(), Ticket: ticket})
				}
			}
			q := r.queueLocked(inv.Method(), blockedKind)
			var parkStart time.Time
			if g.exact() {
				g.t.Trace(TraceEvent{Op: TracePark, Component: r.name, Method: inv.Method(),
					Domain: r.domainID, Layer: l.name, Aspect: blockedBy.Name(), Kind: blockedKind,
					Invocation: inv.ID(), Ticket: ticket, Depth: q.Len() + 1})
				parkStart = time.Now()
			}
			err := q.Wait(inv.Context(), inv.Priority, ticket)
			if g.exact() {
				wake := TraceEvent{Op: TraceWake, Component: r.name, Method: inv.Method(),
					Domain: r.domainID, Kind: blockedKind, Invocation: inv.ID(), Ticket: ticket,
					Nanos: time.Since(parkStart).Nanoseconds()}
				if err != nil {
					wake.Err = err.Error()
				}
				g.t.Trace(wake)
			}
			if err != nil {
				if ab, ok := blockedBy.(aspect.Abandoner); ok {
					ab.Abandon(inv)
				}
				cancelReverse(admitted, inv)
				r.aborts.Add(1)
				if g.detail() {
					g.t.Trace(TraceEvent{Op: TraceAbort, Component: r.name, Method: inv.Method(),
						Domain: r.domainID, Layer: l.name, Invocation: inv.ID(),
						Nanos: time.Since(preStart).Nanoseconds(), Err: err.Error()})
				}
				return nil, fmt.Errorf("moderator %s: %s blocked in layer %s: %w",
					r.name, inv.Method(), l.name, err)
			}
		}
	}
	r.admissions.Add(1)
	if g.detail() {
		g.t.Trace(TraceEvent{Op: TraceAdmit, Component: r.name, Method: inv.Method(),
			Domain: r.domainID, Invocation: inv.ID(), Aspects: len(admitted),
			Nanos: time.Since(preStart).Nanoseconds()})
	}
	return &Admission{admitted: admitted, traced: g.detail()}, nil
}

// Postactivation runs postactions in reverse admission order under the
// single admission mutex and wakes blocked callers.
func (r *Reference) Postactivation(inv *aspect.Invocation, adm *Admission) {
	r.completions.Add(1)
	g := invTrace{}
	if b := r.tracer.Load(); b != nil {
		g = invTrace{t: b.t, sampled: adm != nil && adm.traced}
	}
	if adm.Len() == 0 {
		if g.detail() {
			completeEvent(g.t, r.name, inv, r.domainID, 0)
		}
		return
	}
	admitted := adm.admitted
	var postStart time.Time
	if g.detail() {
		postStart = time.Now()
	}

	r.mu.Lock()
	defer r.mu.Unlock()

	// As in Moderator.Postactivation: only a non-empty wake list counts
	// as targeting, so passive Waker implementors cannot suppress the
	// conservative broadcast and strand another guard's parked callers.
	targeted := false
	wakeMethods := make(map[string]bool, 2)
	for i := len(admitted) - 1; i >= 0; i-- {
		a := admitted[i]
		var hook0 time.Time
		if g.detail() {
			hook0 = time.Now()
		}
		a.Postaction(inv)
		if g.detail() {
			g.t.Trace(TraceEvent{Op: TracePost, Component: r.name, Method: inv.Method(),
				Domain: r.domainID, Aspect: a.Name(), Kind: a.Kind(), Invocation: inv.ID(),
				Nanos: time.Since(hook0).Nanoseconds()})
		}
		if w, ok := a.(aspect.Waker); ok {
			if wakes := w.Wakes(); len(wakes) > 0 {
				targeted = true
				for _, meth := range wakes {
					wakeMethods[meth] = true
				}
			}
		}
	}
	if g.detail() {
		completeEvent(g.t, r.name, inv, r.domainID, time.Since(postStart).Nanoseconds())
	}
	if targeted {
		for meth := range wakeMethods {
			r.wakeMethodLocked(meth)
		}
		return
	}
	for _, q := range r.queues {
		wakeQueueLocked(q, r.opts.wakeMode)
	}
}

// Kick wakes every caller blocked on the given method.
func (r *Reference) Kick(method string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wakeMethodLocked(method)
}

// Waiting returns the number of callers currently blocked on the method.
func (r *Reference) Waiting(method string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for k, q := range r.queues {
		if k.method == method {
			n += q.Len()
		}
	}
	return n
}

// QueueStats returns per-queue counters keyed by "method/kind".
func (r *Reference) QueueStats() map[string]waitq.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]waitq.Stats, len(r.queues))
	for k, q := range r.queues {
		out[k.method+"/"+string(k.kind)] = q.Stats()
	}
	return out
}

func (r *Reference) wakeMethodLocked(method string) {
	for k, q := range r.queues {
		if k.method == method {
			wakeQueueLocked(q, r.opts.wakeMode)
		}
	}
}

func (r *Reference) queueLocked(method string, kind aspect.Kind) *waitq.Queue {
	k := qkey{method: method, kind: kind}
	q, ok := r.queues[k]
	if !ok {
		q = waitq.New(method+"/"+string(kind), r.opts.policy, &r.mu)
		r.queues[k] = q
	}
	return q
}
