package moderator

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/waitq"
)

// trace records hook invocations in order. Hooks run under the moderator's
// admission lock, but tests read from other goroutines, so it carries its
// own mutex.
type trace struct {
	mu     sync.Mutex
	events []string
}

func (tr *trace) add(e string) {
	tr.mu.Lock()
	tr.events = append(tr.events, e)
	tr.mu.Unlock()
}

func (tr *trace) snapshot() []string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]string, len(tr.events))
	copy(out, tr.events)
	return out
}

// tracer builds an aspect that records pre/post/cancel events.
func tracer(tr *trace, name string, kind aspect.Kind, pre func(*aspect.Invocation) aspect.Verdict) *aspect.Func {
	return &aspect.Func{
		AspectName: name,
		AspectKind: kind,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			v := aspect.Resume
			if pre != nil {
				v = pre(inv)
			}
			tr.add(name + ".pre:" + v.String())
			return v
		},
		Post:     func(inv *aspect.Invocation) { tr.add(name + ".post") },
		CancelFn: func(inv *aspect.Invocation) { tr.add(name + ".cancel") },
	}
}

func inv(method string) *aspect.Invocation {
	return aspect.NewInvocation(context.Background(), "comp", method, nil)
}

func TestUnguardedMethodAdmitsImmediately(t *testing.T) {
	m := New("comp")
	i := inv("open")
	adm, err := m.Preactivation(i)
	if err != nil {
		t.Fatalf("preactivation: %v", err)
	}
	m.Postactivation(i, adm)
	s := m.Stats()
	if s.Admissions != 1 || s.Completions != 1 || s.Blocks != 0 || s.Aborts != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSingleAspectResumeFlow(t *testing.T) {
	m := New("comp")
	tr := &trace{}
	if err := m.Register("open", aspect.KindSynchronization, tracer(tr, "sync", aspect.KindSynchronization, nil)); err != nil {
		t.Fatal(err)
	}
	i := inv("open")
	adm, err := m.Preactivation(i)
	if err != nil {
		t.Fatal(err)
	}
	tr.add("body")
	m.Postactivation(i, adm)
	want := []string{"sync.pre:resume", "body", "sync.post"}
	if got := tr.snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("trace = %v, want %v", got, want)
	}
}

func TestLayerOnionOrdering(t *testing.T) {
	// The paper's Figure 14: auth-pre, sync-pre, method, sync-post, auth-post.
	m := New("comp")
	tr := &trace{}
	if err := m.AddLayer("authentication", Outermost); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterIn("authentication", "open", aspect.KindAuthentication,
		tracer(tr, "auth", aspect.KindAuthentication, nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("open", aspect.KindSynchronization,
		tracer(tr, "sync", aspect.KindSynchronization, nil)); err != nil {
		t.Fatal(err)
	}
	i := inv("open")
	adm, err := m.Preactivation(i)
	if err != nil {
		t.Fatal(err)
	}
	tr.add("body")
	m.Postactivation(i, adm)
	want := []string{"auth.pre:resume", "sync.pre:resume", "body", "sync.post", "auth.post"}
	if got := tr.snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("trace = %v, want %v", got, want)
	}
}

func TestWithinLayerOrdering(t *testing.T) {
	// Registration order for preconditions, reverse for postactions.
	m := New("comp")
	tr := &trace{}
	for _, n := range []string{"a", "b", "c"} {
		if err := m.Register("m", aspect.Kind("k-"+n), tracer(tr, n, aspect.Kind("k-"+n), nil)); err != nil {
			t.Fatal(err)
		}
	}
	i := inv("m")
	adm, err := m.Preactivation(i)
	if err != nil {
		t.Fatal(err)
	}
	m.Postactivation(i, adm)
	want := []string{"a.pre:resume", "b.pre:resume", "c.pre:resume", "c.post", "b.post", "a.post"}
	if got := tr.snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("trace = %v, want %v", got, want)
	}
}

func TestAbortUnwindsAdmittedAspects(t *testing.T) {
	m := New("comp")
	tr := &trace{}
	if err := m.Register("m", "k1", tracer(tr, "first", "k1", nil)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("denied")
	aborter := &aspect.Func{
		AspectName: "second",
		AspectKind: "k2",
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			tr.add("second.pre:abort")
			inv.SetErr(boom)
			return aspect.Abort
		},
	}
	if err := m.Register("m", "k2", aborter); err != nil {
		t.Fatal(err)
	}
	i := inv("m")
	_, err := m.Preactivation(i)
	if !errors.Is(err, boom) {
		t.Fatalf("want cause %v, got %v", boom, err)
	}
	want := []string{"first.pre:resume", "second.pre:abort", "first.cancel"}
	if got := tr.snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("trace = %v, want %v", got, want)
	}
	if s := m.Stats(); s.Aborts != 1 || s.Admissions != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestAbortWithoutCauseSurfacesErrAborted(t *testing.T) {
	m := New("comp")
	if err := m.Register("m", "k", aspect.New("deny", "k",
		func(*aspect.Invocation) aspect.Verdict { return aspect.Abort }, nil)); err != nil {
		t.Fatal(err)
	}
	_, err := m.Preactivation(inv("m"))
	if !errors.Is(err, aspect.ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
}

func TestAbortInInnerLayerUnwindsOuterLayer(t *testing.T) {
	m := New("comp")
	tr := &trace{}
	if err := m.AddLayer("outer", Outermost); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterIn("outer", "m", "k1", tracer(tr, "outer", "k1", nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("m", "k2", tracer(tr, "inner", "k2",
		func(*aspect.Invocation) aspect.Verdict { return aspect.Abort })); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Preactivation(inv("m")); err == nil {
		t.Fatal("want abort error")
	}
	want := []string{"outer.pre:resume", "inner.pre:abort", "outer.cancel"}
	if got := tr.snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("trace = %v, want %v", got, want)
	}
}

func TestInvalidVerdictAborts(t *testing.T) {
	m := New("comp")
	if err := m.Register("m", "k", aspect.New("broken", "k",
		func(*aspect.Invocation) aspect.Verdict { return aspect.Verdict(0) }, nil)); err != nil {
		t.Fatal(err)
	}
	_, err := m.Preactivation(inv("m"))
	if !errors.Is(err, aspect.ErrAborted) {
		t.Fatalf("invalid verdict must abort, got %v", err)
	}
}

func TestBlockParksUntilPostactivation(t *testing.T) {
	// A gate guard: closed until another invocation's postaction opens it.
	m := New("comp")
	open := false
	gate := aspect.New("gate", aspect.KindSynchronization, func(*aspect.Invocation) aspect.Verdict {
		if open {
			return aspect.Resume
		}
		return aspect.Block
	}, nil)
	if err := m.Register("wait", aspect.KindSynchronization, gate); err != nil {
		t.Fatal(err)
	}
	opener := &aspect.Func{
		AspectName: "opener",
		AspectKind: aspect.KindSynchronization,
		Post:       func(*aspect.Invocation) { open = true },
		WakeList:   []string{"wait"},
	}
	if err := m.Register("release", aspect.KindSynchronization, opener); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		i := inv("wait")
		adm, err := m.Preactivation(i)
		if err == nil {
			m.Postactivation(i, adm)
		}
		done <- err
	}()

	// The waiter must park, not proceed.
	deadline := time.Now().Add(5 * time.Second)
	for m.Waiting("wait") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("caller never parked")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("caller proceeded through closed gate: %v", err)
	default:
	}

	// Run the releasing invocation; its postaction opens the gate and its
	// Waker declaration wakes the waiter.
	rel := inv("release")
	relAdm, err := m.Preactivation(rel)
	if err != nil {
		t.Fatal(err)
	}
	m.Postactivation(rel, relAdm)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("woken caller failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woken")
	}
	if s := m.Stats(); s.Blocks == 0 {
		t.Errorf("blocks not counted: %+v", s)
	}
}

func TestBlockRollsBackPartialLayerAdmissions(t *testing.T) {
	// Aspect "reserve" admits and reserves; "gate" blocks until opened.
	// Every failed round must cancel the reservation, so when the gate
	// opens, net reservations == 1.
	m := New("comp")
	reservations := 0
	reserve := &aspect.Func{
		AspectName: "reserve",
		AspectKind: "k-reserve",
		Pre: func(*aspect.Invocation) aspect.Verdict {
			reservations++
			return aspect.Resume
		},
		CancelFn: func(*aspect.Invocation) { reservations-- },
	}
	open := false
	gate := aspect.New("gate", "k-gate", func(*aspect.Invocation) aspect.Verdict {
		if open {
			return aspect.Resume
		}
		return aspect.Block
	}, nil)
	if err := m.Register("m", "k-reserve", reserve); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("m", "k-gate", gate); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		i := inv("m")
		adm, err := m.Preactivation(i)
		if err == nil {
			m.Postactivation(i, adm)
		}
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for m.Waiting("m") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("caller never parked")
		}
		time.Sleep(time.Millisecond)
	}
	// While parked, the failed layer round must have been rolled back.
	m.domainFor("m").mu.Lock()
	if reservations != 0 {
		m.domainFor("m").mu.Unlock()
		t.Fatalf("reservations while blocked = %d, want 0", reservations)
	}
	open = true
	m.domainFor("m").mu.Unlock()
	m.Kick("m")
	if err := <-done; err != nil {
		t.Fatalf("woken caller: %v", err)
	}
	m.domainFor("m").mu.Lock()
	defer m.domainFor("m").mu.Unlock()
	if reservations != 1 {
		t.Errorf("final reservations = %d, want 1", reservations)
	}
}

func TestOuterLayerAdmissionHeldWhileInnerBlocks(t *testing.T) {
	// Paper Figure 14: authentication (outer) admission persists while
	// synchronization (inner) blocks.
	m := New("comp")
	authAdmissions := 0
	auth := &aspect.Func{
		AspectName: "auth",
		AspectKind: aspect.KindAuthentication,
		Pre: func(*aspect.Invocation) aspect.Verdict {
			authAdmissions++
			return aspect.Resume
		},
		CancelFn: func(*aspect.Invocation) { authAdmissions-- },
	}
	if err := m.AddLayer("authentication", Outermost); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterIn("authentication", "m", aspect.KindAuthentication, auth); err != nil {
		t.Fatal(err)
	}
	open := false
	gate := aspect.New("gate", aspect.KindSynchronization, func(*aspect.Invocation) aspect.Verdict {
		if open {
			return aspect.Resume
		}
		return aspect.Block
	}, nil)
	if err := m.Register("m", aspect.KindSynchronization, gate); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		i := inv("m")
		adm, err := m.Preactivation(i)
		if err == nil {
			m.Postactivation(i, adm)
		}
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for m.Waiting("m") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("caller never parked")
		}
		time.Sleep(time.Millisecond)
	}
	m.domainFor("m").mu.Lock()
	if authAdmissions != 1 {
		m.domainFor("m").mu.Unlock()
		t.Fatalf("outer admission not held while inner blocked: %d", authAdmissions)
	}
	open = true
	m.domainFor("m").mu.Unlock()
	m.Kick("m")
	if err := <-done; err != nil {
		t.Fatalf("woken caller: %v", err)
	}
}

func TestContextCancellationWhileBlockedUnwinds(t *testing.T) {
	m := New("comp")
	outerAdmits := 0
	outer := &aspect.Func{
		AspectName: "outer",
		AspectKind: "k1",
		Pre: func(*aspect.Invocation) aspect.Verdict {
			outerAdmits++
			return aspect.Resume
		},
		CancelFn: func(*aspect.Invocation) { outerAdmits-- },
	}
	if err := m.AddLayer("outer", Outermost); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterIn("outer", "m", "k1", outer); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("m", "k2", aspect.New("gate", "k2",
		func(*aspect.Invocation) aspect.Verdict { return aspect.Block }, nil)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, perr := m.Preactivation(aspect.NewInvocation(ctx, "comp", "m", nil))
		done <- perr
	}()
	deadline := time.Now().Add(5 * time.Second)
	for m.Waiting("m") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("caller never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	m.domainFor("m").mu.Lock()
	defer m.domainFor("m").mu.Unlock()
	if outerAdmits != 0 {
		t.Errorf("outer admission not unwound on cancellation: %d", outerAdmits)
	}
	if s := m.Stats(); s.Aborts != 1 {
		t.Errorf("aborts = %d, want 1", s.Aborts)
	}
}

func TestLayerManagement(t *testing.T) {
	m := New("comp")
	if got := m.Layers(); !reflect.DeepEqual(got, []string{BaseLayer}) {
		t.Fatalf("initial layers = %v", got)
	}
	if err := m.AddLayer("auth", Outermost); err != nil {
		t.Fatal(err)
	}
	if err := m.AddLayer("metrics", Innermost); err != nil {
		t.Fatal(err)
	}
	want := []string{"auth", BaseLayer, "metrics"}
	if got := m.Layers(); !reflect.DeepEqual(got, want) {
		t.Fatalf("layers = %v, want %v", got, want)
	}
	if err := m.AddLayer("auth", Outermost); !errors.Is(err, ErrLayerExists) {
		t.Errorf("duplicate AddLayer: %v", err)
	}
	if err := m.AddLayer("", Outermost); err == nil {
		t.Error("empty layer name must error")
	}
	if err := m.RemoveLayer("auth"); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveLayer("auth"); !errors.Is(err, ErrNoSuchLayer) {
		t.Errorf("repeat RemoveLayer: %v", err)
	}
	if err := m.RegisterIn("ghost", "m", "k", aspect.New("a", "k", nil, nil)); !errors.Is(err, ErrNoSuchLayer) {
		t.Errorf("RegisterIn ghost layer: %v", err)
	}
	if _, err := m.Unregister("ghost", "m", "k"); !errors.Is(err, ErrNoSuchLayer) {
		t.Errorf("Unregister ghost layer: %v", err)
	}
}

func TestUnregisterStopsGuarding(t *testing.T) {
	m := New("comp")
	denies := aspect.New("deny", "k", func(*aspect.Invocation) aspect.Verdict { return aspect.Abort }, nil)
	if err := m.Register("m", "k", denies); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Preactivation(inv("m")); err == nil {
		t.Fatal("expected abort while registered")
	}
	n, err := m.Unregister(BaseLayer, "m", "k")
	if err != nil || n != 1 {
		t.Fatalf("unregister = %d, %v", n, err)
	}
	i := inv("m")
	adm, err := m.Preactivation(i)
	if err != nil {
		t.Fatalf("after unregister: %v", err)
	}
	m.Postactivation(i, adm)
}

func TestAspectsEvaluationOrderAccessor(t *testing.T) {
	m := New("comp")
	if err := m.AddLayer("outer", Outermost); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterIn("outer", "m", "k1", aspect.New("o", "k1", nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("m", "k2", aspect.New("b", "k2", nil, nil)); err != nil {
		t.Fatal(err)
	}
	got := m.Aspects("m")
	if len(got) != 2 || got[0].Name() != "o" || got[1].Name() != "b" {
		names := make([]string, len(got))
		for i, a := range got {
			names[i] = a.Name()
		}
		t.Errorf("Aspects order = %v, want [o b]", names)
	}
	if m.Aspects("none") != nil {
		t.Error("Aspects of unguarded method must be nil")
	}
}

func TestInFlightInvocationImmuneToRecomposition(t *testing.T) {
	// An invocation admitted under composition C must run C's postactions
	// even if aspects are unregistered in between.
	m := New("comp")
	tr := &trace{}
	if err := m.Register("m", "k", tracer(tr, "a", "k", nil)); err != nil {
		t.Fatal(err)
	}
	i := inv("m")
	adm, err := m.Preactivation(i)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Unregister(BaseLayer, "m", "k"); err != nil {
		t.Fatal(err)
	}
	m.Postactivation(i, adm)
	want := []string{"a.pre:resume", "a.post"}
	if got := tr.snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("trace = %v, want %v", got, want)
	}
}

func TestWakeSingleHonorsPriorityPolicy(t *testing.T) {
	// Semaphore-of-one guard; three blocked callers with priorities 1,3,2.
	// In WakeSingle+Priority mode, releases must admit 3, then 2, then 1.
	m := New("comp", WithWakePolicy(waitq.Priority), WithWakeMode(WakeSingle))
	inUse := 0
	sem := &aspect.Func{
		AspectName: "sem",
		AspectKind: aspect.KindSynchronization,
		Pre: func(*aspect.Invocation) aspect.Verdict {
			if inUse > 0 {
				return aspect.Block
			}
			inUse++
			return aspect.Resume
		},
		Post:     func(*aspect.Invocation) { inUse-- },
		CancelFn: func(*aspect.Invocation) { inUse-- },
		WakeList: []string{"m"},
	}
	if err := m.Register("m", aspect.KindSynchronization, sem); err != nil {
		t.Fatal(err)
	}

	// Occupy the semaphore so subsequent callers all park.
	holder := inv("m")
	holderAdm, err := m.Preactivation(holder)
	if err != nil {
		t.Fatal(err)
	}

	var order []int
	var orderMu sync.Mutex
	var wg sync.WaitGroup
	type pending struct {
		inv *aspect.Invocation
		adm *Admission
	}
	admitted := make(chan pending, 3)
	for _, prio := range []int{1, 3, 2} {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			i := inv("m")
			i.Priority = p
			iAdm, err := m.Preactivation(i)
			if err != nil {
				t.Errorf("prio %d: %v", p, err)
				return
			}
			orderMu.Lock()
			order = append(order, p)
			orderMu.Unlock()
			admitted <- pending{inv: i, adm: iAdm}
		}(prio)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Waiting("m") < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d callers parked", m.Waiting("m"))
		}
		time.Sleep(time.Millisecond)
	}
	// Release the holder, then each admitted caller in turn.
	m.Postactivation(holder, holderAdm)
	for k := 0; k < 3; k++ {
		select {
		case p := <-admitted:
			m.Postactivation(p.inv, p.adm)
		case <-time.After(5 * time.Second):
			t.Fatalf("admission %d never happened", k)
		}
	}
	wg.Wait()
	want := []int{3, 2, 1}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("admission order = %v, want %v", order, want)
	}
}

func TestBroadcastWakeModeReleasesAllEligible(t *testing.T) {
	// Gate opens once; all three blocked callers must eventually pass.
	m := New("comp") // default broadcast
	open := false
	gate := aspect.New("gate", "k", func(*aspect.Invocation) aspect.Verdict {
		if open {
			return aspect.Resume
		}
		return aspect.Block
	}, nil)
	if err := m.Register("m", "k", gate); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for k := 0; k < 3; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := inv("m")
			adm, err := m.Preactivation(i)
			if err == nil {
				m.Postactivation(i, adm)
			}
			errs <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Waiting("m") < 3 {
		if time.Now().After(deadline) {
			t.Fatal("callers never parked")
		}
		time.Sleep(time.Millisecond)
	}
	m.domainFor("m").mu.Lock()
	open = true
	m.domainFor("m").mu.Unlock()
	m.Kick("m")
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("caller: %v", err)
		}
	}
}

func TestQueueStats(t *testing.T) {
	m := New("comp")
	gate := aspect.New("gate", aspect.KindScheduling, func(*aspect.Invocation) aspect.Verdict { return aspect.Block }, nil)
	if err := m.Register("m", aspect.KindScheduling, gate); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, perr := m.Preactivation(aspect.NewInvocation(ctx, "comp", "m", nil))
		done <- perr
	}()
	deadline := time.Now().Add(5 * time.Second)
	for m.Waiting("m") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	qs := m.QueueStats()
	key := "m/" + string(aspect.KindScheduling)
	st, ok := qs[key]
	if !ok {
		t.Fatalf("no stats for %q: %v", key, qs)
	}
	if st.Waits != 1 || st.Cancels != 1 {
		t.Errorf("queue stats = %+v", st)
	}
}

func TestConcurrentMixedInvocationsRace(t *testing.T) {
	// Hammer a moderator with a semaphore guard from many goroutines while
	// re-composing an audit layer; checks the mutual-exclusion invariant.
	m := New("comp")
	const limit = 4
	inUse := 0
	maxSeen := 0
	sem := &aspect.Func{
		AspectName: "sem",
		AspectKind: aspect.KindSynchronization,
		Pre: func(*aspect.Invocation) aspect.Verdict {
			if inUse >= limit {
				return aspect.Block
			}
			inUse++
			if inUse > maxSeen {
				maxSeen = inUse
			}
			return aspect.Resume
		},
		Post:     func(*aspect.Invocation) { inUse-- },
		CancelFn: func(*aspect.Invocation) { inUse-- },
		WakeList: []string{"m"},
	}
	if err := m.Register("m", aspect.KindSynchronization, sem); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		n := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			layerName := fmt.Sprintf("audit-%d", n)
			if err := m.AddLayer(layerName, Outermost); err != nil {
				t.Errorf("add layer: %v", err)
				return
			}
			if err := m.RegisterIn(layerName, "m", aspect.KindAudit,
				aspect.New("audit", aspect.KindAudit, nil, nil)); err != nil {
				t.Errorf("register: %v", err)
				return
			}
			if err := m.RemoveLayer(layerName); err != nil {
				t.Errorf("remove layer: %v", err)
				return
			}
			n++
		}
	}()

	var wg sync.WaitGroup
	const workers, iters = 16, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				i := inv("m")
				adm, err := m.Preactivation(i)
				if err != nil {
					t.Errorf("preactivation: %v", err)
					return
				}
				m.Postactivation(i, adm)
			}
		}()
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	m.domainFor("m").mu.Lock()
	defer m.domainFor("m").mu.Unlock()
	if inUse != 0 {
		t.Errorf("semaphore leaked: inUse = %d", inUse)
	}
	if maxSeen > limit {
		t.Errorf("limit violated: max concurrent = %d > %d", maxSeen, limit)
	}
	if s := m.Stats(); s.Admissions != workers*iters {
		t.Errorf("admissions = %d, want %d", s.Admissions, workers*iters)
	}
}
