// Package moderator implements the aspect moderator of the framework: the
// object that coordinates functional and aspectual behaviour by evaluating
// every registered aspect's precondition before a participating method runs
// (pre-activation) and every postaction after it completes
// (post-activation), parking blocked callers on per-method wait queues in
// between (the paper's Figures 3, 10, 11).
//
// # Layers
//
// The paper extends a running system with new concerns by subclassing the
// moderator and factory (ExtendedAspectModerator, Figures 13-18): the new
// concern's preconditions run before the existing ones and its postactions
// after them. Go has no implementation inheritance, so the moderator models
// the same semantics with layers: an ordered list of aspect banks,
// outermost first. Pre-activation admits layers outermost to innermost;
// post-activation runs innermost to outermost — the onion ordering
// auth-pre, sync-pre, method, sync-post, auth-post of the paper's Figure 14.
//
// # Admission semantics
//
// Within one layer, preconditions run in registration order. A layer admits
// atomically: if some aspect returns Block after earlier aspects of the
// same layer already admitted (and possibly reserved resources), those
// admissions are rolled back via Cancel before the caller parks, and the
// whole layer re-evaluates after a wake-up. Abort rolls back everything
// admitted so far — across layers — and surfaces an error. Admitted outer
// layers stay admitted while an inner layer blocks, exactly as the paper's
// authentication admission holds while synchronization blocks.
//
// All precondition, postaction, and cancel hooks of one moderator run under
// a single admission mutex; the method body runs outside it.
package moderator

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/aspect"
	"repro/internal/bank"
	"repro/internal/waitq"
)

// BaseLayer is the name of the layer every moderator starts with.
const BaseLayer = "base"

// Position selects where AddLayer places a new layer relative to the
// existing ones.
type Position int

const (
	// Outermost layers run their preconditions first and postactions
	// last. New concerns added to a running system (the paper's
	// authentication extension) are typically outermost.
	Outermost Position = iota + 1
	// Innermost layers run their preconditions last and postactions
	// first.
	Innermost
)

// WakeMode selects how post-activation releases blocked callers.
type WakeMode int

const (
	// WakeBroadcast wakes every caller blocked on the methods a
	// post-activation touches; each re-evaluates its guards. Always safe;
	// this is the default.
	WakeBroadcast WakeMode = iota + 1
	// WakeSingle wakes one caller per notification, chosen by the wait
	// queue's policy (FIFO, LIFO, priority). Use when each completed
	// invocation frees capacity for exactly one waiter (semaphore-like
	// guards); with heterogeneous guards it can strand waiters.
	WakeSingle
)

// Stats are cumulative counters for one moderator. Safe for concurrent reads.
type Stats struct {
	Admissions  uint64 // invocations fully admitted by pre-activation
	Blocks      uint64 // times a caller parked on a wait queue
	Aborts      uint64 // invocations rejected during pre-activation
	Completions uint64 // post-activations performed
}

// ErrLayerExists is returned by AddLayer for a duplicate layer name.
var ErrLayerExists = errors.New("moderator: layer already exists")

// ErrNoSuchLayer is returned when a named layer is not present.
var ErrNoSuchLayer = errors.New("moderator: no such layer")

type layer struct {
	name string
	bank *bank.Bank
}

type layerSet struct {
	layers []*layer // outermost first
}

func (ls *layerSet) find(name string) *layer {
	for _, l := range ls.layers {
		if l.name == name {
			return l
		}
	}
	return nil
}

type qkey struct {
	method string
	kind   aspect.Kind
}

// Admission is the receipt of a successful pre-activation: the aspects
// admitted, in admission order. The caller passes it back to
// Postactivation so the exact composition the invocation was admitted
// under — not whatever the bank holds by then — runs its postactions.
type Admission struct {
	admitted []aspect.Aspect
}

// Len returns the number of admitted aspects.
func (a *Admission) Len() int {
	if a == nil {
		return 0
	}
	return len(a.admitted)
}

// Moderator coordinates aspect evaluation for one functional component.
// Construct with New.
type Moderator struct {
	name     string
	policy   waitq.Policy
	wakeMode WakeMode

	mu        sync.Mutex
	layers    atomic.Pointer[layerSet]
	queues    map[qkey]*waitq.Queue
	ticketSeq uint64 // guarded by mu

	admissions  atomic.Uint64
	blocks      atomic.Uint64
	aborts      atomic.Uint64
	completions atomic.Uint64
}

// Option configures a Moderator.
type Option func(*Moderator)

// WithWakePolicy sets the wake policy of the moderator's wait queues
// (default FIFO). The policy selects which blocked caller wakes first in
// WakeSingle mode.
func WithWakePolicy(p waitq.Policy) Option {
	return func(m *Moderator) { m.policy = p }
}

// WithWakeMode sets how post-activation releases blocked callers
// (default WakeBroadcast).
func WithWakeMode(w WakeMode) Option {
	return func(m *Moderator) { m.wakeMode = w }
}

// New creates a moderator for the named component with a single base layer.
func New(name string, opts ...Option) *Moderator {
	m := &Moderator{
		name:     name,
		policy:   waitq.FIFO,
		wakeMode: WakeBroadcast,
		queues:   make(map[qkey]*waitq.Queue),
	}
	for _, opt := range opts {
		opt(m)
	}
	ls := &layerSet{layers: []*layer{{name: BaseLayer, bank: bank.New()}}}
	m.layers.Store(ls)
	return m
}

// Name returns the component name the moderator guards.
func (m *Moderator) Name() string { return m.name }

// WakePolicy returns the wait queues' wake policy.
func (m *Moderator) WakePolicy() waitq.Policy { return m.policy }

// WakeMode returns how post-activation releases blocked callers.
func (m *Moderator) WakeMode() WakeMode { return m.wakeMode }

// Stats returns a snapshot of the moderator's counters.
func (m *Moderator) Stats() Stats {
	return Stats{
		Admissions:  m.admissions.Load(),
		Blocks:      m.blocks.Load(),
		Aborts:      m.aborts.Load(),
		Completions: m.completions.Load(),
	}
}

// Register stores an aspect at (method, kind) in the base layer — the
// paper's registerAspect (Figure 9).
func (m *Moderator) Register(method string, kind aspect.Kind, a aspect.Aspect) error {
	return m.RegisterIn(BaseLayer, method, kind, a)
}

// RegisterIn stores an aspect at (method, kind) in the named layer.
func (m *Moderator) RegisterIn(layerName, method string, kind aspect.Kind, a aspect.Aspect) error {
	l := m.layers.Load().find(layerName)
	if l == nil {
		return fmt.Errorf("moderator %s: register %s/%s in %q: %w", m.name, method, kind, layerName, ErrNoSuchLayer)
	}
	if err := l.bank.Register(method, kind, a); err != nil {
		return fmt.Errorf("moderator %s: %w", m.name, err)
	}
	return nil
}

// Unregister removes every aspect at (method, kind) from the named layer,
// reporting how many were removed. In-flight invocations complete under the
// composition they were admitted with.
func (m *Moderator) Unregister(layerName, method string, kind aspect.Kind) (int, error) {
	l := m.layers.Load().find(layerName)
	if l == nil {
		return 0, fmt.Errorf("moderator %s: unregister from %q: %w", m.name, layerName, ErrNoSuchLayer)
	}
	return l.bank.Unregister(method, kind), nil
}

// AddLayer introduces a new, empty layer. This is the framework's dynamic
// adaptability hook: the paper's ExtendedAspectModerator becomes
// AddLayer("authentication", Outermost) plus RegisterIn calls, with no
// change to functional code.
func (m *Moderator) AddLayer(name string, pos Position) error {
	if name == "" {
		return fmt.Errorf("moderator %s: empty layer name", m.name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.layers.Load()
	if old.find(name) != nil {
		return fmt.Errorf("moderator %s: add layer %q: %w", m.name, name, ErrLayerExists)
	}
	nl := &layer{name: name, bank: bank.New()}
	next := &layerSet{layers: make([]*layer, 0, len(old.layers)+1)}
	if pos == Innermost {
		next.layers = append(next.layers, old.layers...)
		next.layers = append(next.layers, nl)
	} else {
		next.layers = append(next.layers, nl)
		next.layers = append(next.layers, old.layers...)
	}
	m.layers.Store(next)
	return nil
}

// RemoveLayer removes a layer and all its aspects. In-flight invocations
// admitted under the layer still run its postactions.
func (m *Moderator) RemoveLayer(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.layers.Load()
	if old.find(name) == nil {
		return fmt.Errorf("moderator %s: remove layer %q: %w", m.name, name, ErrNoSuchLayer)
	}
	next := &layerSet{layers: make([]*layer, 0, len(old.layers)-1)}
	for _, l := range old.layers {
		if l.name != name {
			next.layers = append(next.layers, l)
		}
	}
	m.layers.Store(next)
	return nil
}

// Layers returns the current layer names, outermost first.
func (m *Moderator) Layers() []string {
	ls := m.layers.Load()
	out := make([]string, len(ls.layers))
	for i, l := range ls.layers {
		out[i] = l.name
	}
	return out
}

// Aspects returns the aspects that would guard the given method right now,
// in precondition evaluation order (outermost layer first, registration
// order within a layer).
func (m *Moderator) Aspects(method string) []aspect.Aspect {
	var out []aspect.Aspect
	for _, l := range m.layers.Load().layers {
		for _, e := range l.bank.Snapshot().ForMethod(method) {
			out = append(out, e.Aspect)
		}
	}
	return out
}

// AspectInfo describes one registered aspect for introspection.
type AspectInfo struct {
	Name string
	Kind aspect.Kind
}

// LayerInfo describes one layer's composition: per participating method,
// the aspects in registration (evaluation) order.
type LayerInfo struct {
	Name    string
	Methods map[string][]AspectInfo
}

// Describe returns a structural snapshot of the whole composition, layers
// outermost first — the operator-facing view of the aspect bank that
// cmd/ticketd logs at startup and the compose package verifies.
func (m *Moderator) Describe() []LayerInfo {
	ls := m.layers.Load()
	out := make([]LayerInfo, 0, len(ls.layers))
	for _, l := range ls.layers {
		snap := l.bank.Snapshot()
		info := LayerInfo{Name: l.name, Methods: make(map[string][]AspectInfo, 4)}
		for _, method := range snap.Methods() {
			entries := snap.ForMethod(method)
			aspects := make([]AspectInfo, 0, len(entries))
			for _, e := range entries {
				aspects = append(aspects, AspectInfo{Name: e.Aspect.Name(), Kind: e.Kind})
			}
			info.Methods[method] = aspects
		}
		out = append(out, info)
	}
	return out
}

// DescribeString renders Describe for logs.
func (m *Moderator) DescribeString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "component %s (wake policy %s, %s)\n", m.name, m.policy, wakeModeName(m.wakeMode))
	for _, layer := range m.Describe() {
		fmt.Fprintf(&b, "  layer %s\n", layer.Name)
		methods := make([]string, 0, len(layer.Methods))
		for method := range layer.Methods {
			methods = append(methods, method)
		}
		sort.Strings(methods)
		for _, method := range methods {
			fmt.Fprintf(&b, "    %s:", method)
			for _, a := range layer.Methods[method] {
				fmt.Fprintf(&b, " [%s %s]", a.Kind, a.Name)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

func wakeModeName(w WakeMode) string {
	if w == WakeSingle {
		return "wake-single"
	}
	return "wake-broadcast"
}

// resolvedLayer is one layer's aspects as captured at pre-activation time.
type resolvedLayer struct {
	name    string
	entries []bank.Entry
}

// Preactivation evaluates the preconditions of every aspect registered for
// the invocation's method, layer by layer, blocking the caller as dictated
// by Block verdicts. On success it returns the admission receipt, which
// the caller must eventually pass to Postactivation together with the same
// invocation. On failure (Abort verdict, cancelled context, or an invalid
// verdict) every admission already made is cancelled and an error is
// returned; Postactivation must not be called.
func (m *Moderator) Preactivation(inv *aspect.Invocation) (*Admission, error) {
	// Resolve the composition once: in-flight invocations are immune to
	// concurrent re-composition.
	ls := m.layers.Load()
	plan := make([]resolvedLayer, 0, len(ls.layers))
	total := 0
	for _, l := range ls.layers {
		entries := l.bank.Snapshot().ForMethod(inv.Method())
		if len(entries) > 0 {
			plan = append(plan, resolvedLayer{name: l.name, entries: entries})
			total += len(entries)
		}
	}
	if total == 0 {
		// No aspects guard this method: admit immediately.
		m.admissions.Add(1)
		return nil, nil
	}

	m.mu.Lock()
	defer m.mu.Unlock()

	// The sticky arrival ticket keeps a re-parking caller's FIFO/LIFO
	// position across guard re-evaluations; it is assigned lazily on the
	// first Block.
	var ticket uint64
	admitted := make([]aspect.Aspect, 0, total)
	for _, l := range plan {
		for {
			mark := len(admitted)
			var blockedKind aspect.Kind
			var blockedBy aspect.Aspect
			blocked := false
			var abortErr error
			for _, e := range l.entries {
				v := e.Aspect.Precondition(inv)
				if v == aspect.Resume {
					admitted = append(admitted, e.Aspect)
					continue
				}
				switch v {
				case aspect.Block:
					blocked = true
					blockedKind = e.Kind
					blockedBy = e.Aspect
				case aspect.Abort:
					abortErr = inv.Err()
					if abortErr == nil {
						abortErr = aspect.ErrAborted
					}
				default:
					abortErr = fmt.Errorf("moderator %s: aspect %q returned invalid verdict %v: %w",
						m.name, e.Aspect.Name(), v, aspect.ErrAborted)
				}
				break
			}
			if abortErr != nil {
				cancelReverse(admitted, inv)
				m.aborts.Add(1)
				return nil, fmt.Errorf("moderator %s: %s pre-activation (layer %s): %w",
					m.name, inv.Method(), l.name, abortErr)
			}
			if !blocked {
				break // layer fully admitted; next layer
			}
			// Roll back this layer's partial admissions, park, retry.
			cancelReverse(admitted[mark:], inv)
			admitted = admitted[:mark]
			m.blocks.Add(1)
			if ticket == 0 {
				m.ticketSeq++
				ticket = m.ticketSeq
			}
			q := m.queueLocked(inv.Method(), blockedKind)
			if err := q.Wait(inv.Context(), inv.Priority, ticket); err != nil {
				// The blocked caller abandons: let the blocking aspect
				// retract anything its Block-returning precondition
				// recorded (a barrier arrival, a declared intent).
				if ab, ok := blockedBy.(aspect.Abandoner); ok {
					ab.Abandon(inv)
				}
				cancelReverse(admitted, inv)
				m.aborts.Add(1)
				return nil, fmt.Errorf("moderator %s: %s blocked in layer %s: %w",
					m.name, inv.Method(), l.name, err)
			}
		}
	}
	m.admissions.Add(1)
	return &Admission{admitted: admitted}, nil
}

// Postactivation runs the postactions of every aspect the invocation was
// admitted under (per the admission receipt), in reverse admission order —
// innermost layer first — and wakes blocked callers. It must be called
// exactly once per successful Preactivation, with the method body's
// outcome recorded on the invocation. A nil admission (an unguarded
// method) is a cheap no-op.
func (m *Moderator) Postactivation(inv *aspect.Invocation, adm *Admission) {
	m.completions.Add(1)
	if adm.Len() == 0 {
		return
	}
	admitted := adm.admitted

	m.mu.Lock()
	defer m.mu.Unlock()

	// Reverse admission order realizes the onion: the innermost layer's
	// last-admitted aspect acts first, the outermost layer's first aspect
	// acts last (paper Figure 14).
	targeted := false
	wakeMethods := make(map[string]bool, 2)
	for i := len(admitted) - 1; i >= 0; i-- {
		a := admitted[i]
		a.Postaction(inv)
		if w, ok := a.(aspect.Waker); ok {
			targeted = true
			for _, meth := range w.Wakes() {
				wakeMethods[meth] = true
			}
		}
	}
	if targeted {
		for meth := range wakeMethods {
			m.wakeMethodLocked(meth)
		}
		return
	}
	// No aspect declared wake targets: conservatively wake everything.
	for _, q := range m.queues {
		m.wakeQueueLocked(q)
	}
}

// Kick wakes every caller blocked on the given method. External event
// sources (timers refilling a rate limiter, a circuit breaker half-opening)
// use it to re-trigger guard evaluation without a method completion.
func (m *Moderator) Kick(method string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.wakeMethodLocked(method)
}

// Waiting returns the number of callers currently blocked on the method.
func (m *Moderator) Waiting(method string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for k, q := range m.queues {
		if k.method == method {
			n += q.Len()
		}
	}
	return n
}

// QueueStats returns per-queue counters keyed by "method/kind".
func (m *Moderator) QueueStats() map[string]waitq.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]waitq.Stats, len(m.queues))
	for k, q := range m.queues {
		out[k.method+"/"+string(k.kind)] = q.Stats()
	}
	return out
}

func (m *Moderator) wakeMethodLocked(method string) {
	for k, q := range m.queues {
		if k.method == method {
			m.wakeQueueLocked(q)
		}
	}
}

func (m *Moderator) wakeQueueLocked(q *waitq.Queue) {
	if m.wakeMode == WakeSingle {
		q.Notify()
	} else {
		q.Broadcast()
	}
}

// queueLocked returns (creating if needed) the wait queue for blocked
// callers of method whose blocking aspect has the given kind — the paper's
// per-method, per-concern waiting queues (PutWaitingQueue,
// OpenAuthenticationQueue).
func (m *Moderator) queueLocked(method string, kind aspect.Kind) *waitq.Queue {
	k := qkey{method: method, kind: kind}
	q, ok := m.queues[k]
	if !ok {
		q = waitq.New(method+"/"+string(kind), m.policy, &m.mu)
		m.queues[k] = q
	}
	return q
}

// cancelReverse calls Cancel on admitted aspects in reverse order.
func cancelReverse(admitted []aspect.Aspect, inv *aspect.Invocation) {
	for i := len(admitted) - 1; i >= 0; i-- {
		if c, ok := admitted[i].(aspect.Canceler); ok {
			c.Cancel(inv)
		}
	}
}
