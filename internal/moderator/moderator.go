// Package moderator implements the aspect moderator of the framework: the
// object that coordinates functional and aspectual behaviour by evaluating
// every registered aspect's precondition before a participating method runs
// (pre-activation) and every postaction after it completes
// (post-activation), parking blocked callers on per-method wait queues in
// between (the paper's Figures 3, 10, 11).
//
// # Layers
//
// The paper extends a running system with new concerns by subclassing the
// moderator and factory (ExtendedAspectModerator, Figures 13-18): the new
// concern's preconditions run before the existing ones and its postactions
// after them. Go has no implementation inheritance, so the moderator models
// the same semantics with layers: an ordered list of aspect banks,
// outermost first. Pre-activation admits layers outermost to innermost;
// post-activation runs innermost to outermost — the onion ordering
// auth-pre, sync-pre, method, sync-post, auth-post of the paper's Figure 14.
//
// # Admission semantics
//
// Within one layer, preconditions run in registration order. A layer admits
// atomically: if some aspect returns Block after earlier aspects of the
// same layer already admitted (and possibly reserved resources), those
// admissions are rolled back via Cancel before the caller parks, and the
// whole layer re-evaluates after a wake-up. Abort rolls back everything
// admitted so far — across layers — and surfaces an error. Admitted outer
// layers stay admitted while an inner layer blocks, exactly as the paper's
// authentication admission holds while synchronization blocks.
//
// # Admission domains
//
// The paper's moderator serializes all precondition, postaction, and
// cancel hooks under one admission mutex. That is correct but it is a
// scalability wall: callers of unrelated participating methods contend on
// the same lock. This moderator shards admission into per-method
// *admission domains*: each participating method (or explicit method
// group) owns a mutex, its wait queues, its sticky-ticket sequence, and
// its admission counters. Hooks of an invocation run under the domain of
// the invoked method only; callers of methods in different domains never
// contend. The single-mutex semantics are retained verbatim in Reference
// (reference.go), which the differential oracle replays against.
//
// Aspects whose hooks share guard state across several methods (a bounded
// buffer's put/get, a mutex spanning open/close) need all those methods in
// ONE domain — that is what makes "guard state needs no locking of its
// own" still true. Two mechanisms arrange it:
//
//   - automatically: when a registered aspect implements aspect.Waker with
//     a non-empty wake list, the moderator merges the registered method and
//     every wake target into one domain. The wake list of a guard is
//     exactly the span of its shared state, so syncguard and coord aspects
//     group themselves.
//   - explicitly: GroupMethods declares a method group up front; wiring
//     code (internal/apps/*) calls it for every shared guard.
//
// Groups must be declared (and Waker aspects registered) during
// initialization, before the affected methods take concurrent traffic;
// merging a domain that has already admitted or parked callers fails with
// ErrDomainActive.
//
// # Snapshot memory model
//
// Composition state — the layer list together with every layer's bank
// contents — is published as one immutable snapshot behind an
// atomic.Pointer. Mutations (AddLayer, RemoveLayer, RegisterIn,
// Unregister) run under a small admin mutex, rebuild the snapshot, and
// Store it; the Store happens-before any Load that observes it, so a
// reader sees either the whole mutation or none of it. Preactivation
// resolves its plan from one Load (in-flight invocations are immune to
// concurrent re-composition), and Describe reads the very same snapshot —
// it can never observe a layer without the registrations that
// happened-before a later mutation it does observe (no torn reads during
// layer churn). Postactivation does not consult the current composition at
// all: it runs the postactions of the Admission receipt, i.e. the aspects
// captured at pre-activation time, so receipts stay valid across a
// concurrent RemoveLayer.
package moderator

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aspect"
	"repro/internal/bank"
	"repro/internal/waitq"
)

// BaseLayer is the name of the layer every moderator starts with.
const BaseLayer = "base"

// Position selects where AddLayer places a new layer relative to the
// existing ones.
type Position int

const (
	// Outermost layers run their preconditions first and postactions
	// last. New concerns added to a running system (the paper's
	// authentication extension) are typically outermost.
	Outermost Position = iota + 1
	// Innermost layers run their preconditions last and postactions
	// first.
	Innermost
)

// WakeMode selects how post-activation releases blocked callers.
type WakeMode int

const (
	// WakeBroadcast wakes every caller blocked on the methods a
	// post-activation touches; each re-evaluates its guards. Always safe;
	// this is the default.
	WakeBroadcast WakeMode = iota + 1
	// WakeSingle wakes one caller per notification, chosen by the wait
	// queue's policy (FIFO, LIFO, priority). Use when each completed
	// invocation frees capacity for exactly one waiter (semaphore-like
	// guards); with heterogeneous guards it can strand waiters: the woken
	// caller may be blocked by a different guard than the one the
	// completion satisfied, re-park, and consume the only wake-up while
	// an admissible waiter stays parked (see wakepolicy_test.go).
	WakeSingle
)

// Stats are cumulative counters for one moderator, summed over its
// admission domains. Every counter is maintained atomically; Stats is safe
// to call at any time from any goroutine.
type Stats struct {
	Admissions  uint64 // invocations fully admitted by pre-activation
	Blocks      uint64 // times a caller parked on a wait queue
	Aborts      uint64 // invocations rejected during pre-activation
	Completions uint64 // post-activations performed
}

// ErrLayerExists is returned by AddLayer for a duplicate layer name.
var ErrLayerExists = errors.New("moderator: layer already exists")

// ErrNoSuchLayer is returned when a named layer is not present.
var ErrNoSuchLayer = errors.New("moderator: no such layer")

// ErrDomainActive is returned by GroupMethods (and by RegisterIn's
// automatic grouping) when the requested group would merge two admission
// domains that have both already seen traffic. Declare groups during
// initialization, before the affected methods are invoked concurrently.
var ErrDomainActive = errors.New("moderator: admission domain already active")

// options carries the configuration shared by Moderator and Reference.
type options struct {
	policy     waitq.Policy
	wakeMode   WakeMode
	optimistic bool
	batched    bool
	ringGate   bool
}

// Option configures a Moderator (or a Reference).
type Option func(*options)

// WithWakePolicy sets the wake policy of the moderator's wait queues
// (default FIFO). The policy selects which blocked caller wakes first in
// WakeSingle mode.
func WithWakePolicy(p waitq.Policy) Option {
	return func(o *options) { o.policy = p }
}

// WithWakeMode sets how post-activation releases blocked callers
// (default WakeBroadcast).
func WithWakeMode(w WakeMode) Option {
	return func(o *options) { o.wakeMode = w }
}

// WithOptimisticAdmission enables or disables the optimistic guard-cell
// admission path for guarded-but-uncontended plans (default enabled; see
// optimistic.go). Disabling it forces every guarded admission through the
// domain mutex — useful as a benchmark baseline and as a conservative
// escape hatch. The Reference ignores it (it has no fast paths at all).
func WithOptimisticAdmission(on bool) Option {
	return func(o *options) { o.optimistic = on }
}

// WithBatchedAdmission enables or disables the batched admission path for
// contended guarded plans (default enabled; see ring.go). Disabling it
// forces every contended admission through the domain mutex individually —
// useful as a benchmark baseline and as a conservative escape hatch. The
// Reference ignores it (it has no fast paths at all).
func WithBatchedAdmission(on bool) Option {
	return func(o *options) { o.batched = on }
}

// WithRingContentionGate enables or disables the submission rings'
// contention probe (default enabled; see ring.go). With the gate on, a
// ring-eligible invocation first probes the domain mutex with TryLock and
// — when the lock is free — takes the plain mutex path directly: an
// uncontended acquisition is cheaper than a ring round trip, so the ring
// engages only while the mutex is observably held. Disabling the gate
// routes every ring-eligible invocation through the ring unconditionally;
// the deterministic schedulers and the differential oracle use that to
// pin batch semantics regardless of probe timing. The Reference ignores
// it (it has no fast paths at all).
func WithRingContentionGate(on bool) Option {
	return func(o *options) { o.ringGate = on }
}

func buildOptions(opts []Option) options {
	o := options{policy: waitq.FIFO, wakeMode: WakeBroadcast, optimistic: true, batched: true, ringGate: true}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

type qkey struct {
	method string
	kind   aspect.Kind
}

// Admission is the receipt of a successful pre-activation: the aspects
// admitted, in admission order. The caller passes it back to
// Postactivation so the exact composition the invocation was admitted
// under — not whatever the bank holds by then — runs its postactions. The
// receipt holds the aspect objects themselves, so it stays valid even if
// the layers they came from are removed while the method body runs.
//
// Sharded-moderator receipts are pooled: Postactivation recycles them, so
// a receipt must not be retained or inspected after it has been passed
// back.
type Admission struct {
	admitted []aspect.Aspect
	// plan is the compiled plan the receipt was admitted under (sharded
	// moderator only; nil for Reference receipts). A successful sharded
	// admission always admits the whole plan, so admitted aliases
	// plan.aspects and the receipt allocates nothing.
	plan *compiledPlan
	// d caches the admission domain the receipt was issued under (sharded
	// moderator only), sparing Postactivation the domain-table lookup.
	d *domain
	// traced pins the pre-activation sampling decision so one invocation
	// is traced (or not) consistently across both phases.
	traced bool
	// fast records that pre-activation ran on the lock-free path, making
	// post-activation eligible for it too (subject to its own re-check).
	fast bool
	// shared marks the plan's immutable fast-path receipt (see
	// compiledPlan.sharedAdm). Shared receipts are never zeroed or pooled.
	shared bool
}

// admissionPool recycles sharded-moderator receipts. Reference receipts
// are never pooled (their admitted slice is built per invocation).
var admissionPool = sync.Pool{New: func() any { return new(Admission) }}

func newAdmission(plan *compiledPlan, d *domain, traced, fast bool) *Admission {
	adm := admissionPool.Get().(*Admission)
	adm.admitted = plan.aspects
	adm.plan = plan
	adm.d = d
	adm.traced = traced
	adm.fast = fast
	return adm
}

// releaseAdmission returns a pooled receipt. Only sharded receipts
// (plan != nil) are recycled; nil and Reference receipts pass through.
func releaseAdmission(adm *Admission) {
	if adm == nil || adm.plan == nil || adm.shared {
		return
	}
	*adm = Admission{}
	admissionPool.Put(adm)
}

// Len returns the number of admitted aspects.
func (a *Admission) Len() int {
	if a == nil {
		return 0
	}
	return len(a.admitted)
}

// Admitter is the surface shared by the sharded Moderator and the
// single-mutex Reference. The differential oracle (moderator_diff_test.go)
// and the benchmark trajectory (internal/bench, BENCH_2.json) drive both
// implementations through this interface.
type Admitter interface {
	Name() string
	Register(method string, kind aspect.Kind, a aspect.Aspect) error
	RegisterIn(layerName, method string, kind aspect.Kind, a aspect.Aspect) error
	Unregister(layerName, method string, kind aspect.Kind) (int, error)
	AddLayer(name string, pos Position) error
	RemoveLayer(name string) error
	GroupMethods(methods ...string) error
	Layers() []string
	Describe() []LayerInfo
	Preactivation(inv *aspect.Invocation) (*Admission, error)
	Postactivation(inv *aspect.Invocation, adm *Admission)
	Kick(method string)
	Waiting(method string) int
	Stats() Stats
	QueueStats() map[string]waitq.Stats
	Epoch() uint64
	CanaryInfo() (CanaryInfo, bool)
	StageCanary(pct int, edit func(*CanaryTx) error) error
	SetCanaryFraction(pct int) error
	PromoteCanary() error
	RollbackCanary() error
}

var (
	_ Admitter = (*Moderator)(nil)
	_ Admitter = (*Reference)(nil)
)

// compLayer is one layer of the published composition snapshot: the
// mutable bank (touched only under the admin mutex) together with the
// bank contents as of the snapshot's publication.
type compLayer struct {
	name string
	bank *bank.Bank
	snap *bank.Snapshot
}

// planEntry is one aspect of a compiled plan, with the layer and bank
// coordinates it was resolved from (for trace events and error messages).
type planEntry struct {
	layer string
	kind  aspect.Kind
	a     aspect.Aspect
}

// planLayer is one layer's contiguous span of plan entries: entries[lo:hi]
// admit (and roll back, and retry) as a unit.
type planLayer struct {
	name   string
	lo, hi int
}

// compiledPlan is the publish-time resolution of one method's guard stack:
// everything Preactivation would otherwise recompute per invocation —
// layer spans, entry list, the admitted-aspect slice the receipt will
// carry, the method's admission domain, the pure classification, and the
// union of the aspects' wake targets. Plans are immutable once published;
// the hot path reaches one with a single snapshot Load and map lookup.
type compiledPlan struct {
	method string
	// epoch is the composition epoch the plan was compiled under: the
	// stable epoch, or a staged candidate's (canary.go). It tags shadow
	// divergences and trace output; admission semantics never read it.
	epoch   uint64
	entries []planEntry
	// aspects lists every entry's aspect in admission order. A successful
	// admission always admits the whole plan, so receipts alias this slice
	// (prefixes of it name the partially-admitted state during rollback).
	aspects []aspect.Aspect
	layers  []planLayer
	// d is the method's admission domain as of publication. Grouping
	// republishes plans, so d can never go stale relative to the snapshot
	// an invocation loaded.
	d *domain
	// pure means every entry declared aspect.NonBlocking: the stack can
	// never park a caller and touches no cross-invocation guard state, so
	// the lock-free fast path may run it.
	pure bool
	// optimistic means the (impure) stack is eligible for the optimistic
	// guard-cell path: its guard state is confined to its own domain's
	// cell, i.e. every declared wake target maps to the plan's domain.
	// Auto-grouping makes that the common case; a plan whose wake span
	// crosses domains conservatively keeps the mutex path.
	optimistic bool
	// wakeTargets is the sorted, deduplicated union of the entries'
	// non-empty Waker lists; targeted is true when any entry declared one.
	// Precomputing the union is sound because Wakes() lists are static
	// declarations of guard-state span, not per-invocation decisions.
	wakeTargets []string
	targeted    bool
	// sharedAdm is the one receipt every fast-path admission of a pure
	// plan returns. A fast-path receipt carries no per-invocation state —
	// every field is determined by the plan — so all concurrent admissions
	// can share this immutable instance and the fast path never touches
	// the receipt pool. Nil for impure plans.
	sharedAdm *Admission
}

// compState is the immutable composition snapshot: the layer list,
// outermost first, with each layer's bank contents fixed at publication
// time, plus the per-method compiled plans resolved from those contents.
// One atomic Load yields a mutually consistent view of everything.
type compState struct {
	// epoch numbers this stable composition; it increases monotonically
	// whenever a staged candidate is promoted (canary.go) and is never
	// reused after a rollback.
	epoch  uint64
	layers []compLayer
	plans  map[string]*compiledPlan
	// cand, when non-nil, is the staged candidate epoch: a second layer
	// set and plan set that serves the canary-routed fraction of traffic
	// (see planFor in canary.go).
	cand *canaryState
}

func (cs *compState) find(name string) *compLayer {
	for i := range cs.layers {
		if cs.layers[i].name == name {
			return &cs.layers[i]
		}
	}
	return nil
}

// domain is one admission domain: the mutex, wait queues, sticky-ticket
// sequence, guard cell, and counters for one participating method or
// method group. The struct is laid out in cache-line-padded groups so the
// hot synchronization words of one domain do not false-share with each
// other: the mutex (spun on by the parking path), the guard cell (spun on
// by the optimistic path), the admission counters (written on every
// admission), and the reclamation pins (written on every pre-activation)
// each get their own line. padding_test.go audits the offsets.
type domain struct {
	id        uint64
	mu        sync.Mutex
	queues    map[qkey]*waitq.Queue // guarded by mu
	ticketSeq uint64                // guarded by mu

	_ [64]byte // pad: mutex word vs guard cell

	// cell serializes every guard-state access of guarded plans — it is
	// the whole lock the optimistic path takes, and the mutex path
	// acquires it (strictly after mu) around its guard hooks so the two
	// paths exclude each other. See optimistic.go.
	cell guardCell

	_ [64]byte // pad: guard cell vs admission counters

	admissions  atomic.Uint64
	blocks      atomic.Uint64
	aborts      atomic.Uint64
	completions atomic.Uint64

	// traceTick drives per-domain trace sampling (see trace.go).
	traceTick atomic.Uint64
	// shadowTick drives per-domain shadow-admission sampling (shadow.go).
	shadowTick atomic.Uint64

	_ [64]byte // pad: admission counters vs optimistic-path counters

	// Optimistic-path counters (see OptimisticStats, optimistic.go).
	optAdmits    atomic.Uint64
	optCompletes atomic.Uint64
	optParks     atomic.Uint64
	optFallbacks atomic.Uint64
	optConflicts atomic.Uint64

	_ [64]byte // pad: optimistic counters vs reclamation pins

	// pins count in-flight pre-activations by reclamation era slot
	// (era % reclaimSlots); a retired composition snapshot is reclaimed
	// only once its era's slot is quiescent in every domain (reclaim.go).
	pins [reclaimSlots]atomic.Int64

	_ [64]byte // pad: pins vs the ring pointer (read-only after init)

	// ring is the domain's batched-admission submission ring (ring.go);
	// immutable after newDomain.
	ring *submitRing
}

func newDomain() *domain {
	return &domain{id: domainSeq.Add(1), queues: make(map[qkey]*waitq.Queue), ring: newSubmitRing()}
}

// active reports whether the domain has ever admitted, parked, aborted, or
// completed a caller. Active domains cannot be merged away by grouping.
func (d *domain) active() bool {
	if d.admissions.Load() != 0 || d.blocks.Load() != 0 ||
		d.aborts.Load() != 0 || d.completions.Load() != 0 {
		return true
	}
	d.mu.Lock()
	n := len(d.queues)
	d.mu.Unlock()
	return n > 0
}

// domainTable is the immutable method→domain assignment. byMethod maps
// each method seen so far to its domain; all lists every distinct live
// domain (for Stats, QueueStats, and conservative broadcasts).
type domainTable struct {
	byMethod map[string]*domain
	all      []*domain
}

func (dt *domainTable) clone() *domainTable {
	next := &domainTable{byMethod: make(map[string]*domain, len(dt.byMethod)+1)}
	for m, d := range dt.byMethod {
		next.byMethod[m] = d
	}
	next.all = append([]*domain(nil), dt.all...)
	return next
}

// rebuildAll recomputes the distinct-domain list after a grouping merge
// dropped some domains, preserving the previous relative order.
func (dt *domainTable) rebuildAll(prev []*domain) {
	live := make(map[*domain]bool, len(dt.byMethod))
	for _, d := range dt.byMethod {
		live[d] = true
	}
	dt.all = dt.all[:0]
	for _, d := range prev {
		if live[d] {
			dt.all = append(dt.all, d)
			delete(live, d)
		}
	}
	for d := range live { // domains not in prev (freshly created)
		dt.all = append(dt.all, d)
	}
}

// Moderator coordinates aspect evaluation for one functional component.
// Construct with New.
type Moderator struct {
	name string
	opts options

	// admin serializes composition mutations and domain-table mutations.
	// It is never held while aspect hooks run: the hot path only reads
	// the atomic snapshots below.
	admin   sync.Mutex
	comp    atomic.Pointer[compState]
	domains atomic.Pointer[domainTable]
	tracer  atomic.Pointer[tracerBox]
	// effects, when set, receives every successful completion at
	// post-action time — the state-handoff replication hook (effects.go).
	effects atomic.Pointer[effectBox]
	// shadow, when set, samples admission outcomes for off-hot-path replay
	// against the Reference semantics (shadow.go).
	shadow atomic.Pointer[Shadow]

	// epochSeq issues epoch numbers for staged candidates; guarded by
	// admin. The stable snapshot's current epoch lives in compState.
	epochSeq uint64

	// reclaimEra numbers composition retirements: it advances once per
	// snapshot superseded, and pre-activations pin the era they run under
	// so retired snapshots can be reclaimed at quiescence (reclaim.go).
	reclaimEra atomic.Uint64
	// retired holds superseded snapshots awaiting quiescence, and
	// reclaimed counts snapshots already released; both guarded by admin.
	retired   []retiredComp
	reclaimed uint64

	// admitHook, when set, is a test-only instrumentation hook called at
	// the optimistic paths' racy windows (see optimistic.go). Reading it
	// costs the hot path one atomic load and a branch, the same gate
	// discipline as the tracer.
	admitHook atomic.Pointer[func(admitPoint, *domain)]

	_ [64]byte // pad: waiters is the hottest cross-domain word

	// waiters counts callers currently parked (or about to park) on any
	// wait queue of this moderator. A parking caller increments it while
	// holding BOTH its domain's mutex and the domain's guard cell, before
	// Wait releases the mutex (and, on the optimistic Block handoff, while
	// holding the cell alone) — so a fast-path reader that observes zero
	// while holding the cell is guaranteed no caller was already parked
	// and none can park before the cell is released: the condition under
	// which skipping the wake fan-out is sound (see Preactivation's fast
	// paths and optimistic.go).
	waiters atomic.Int64

	_ [64]byte // pad: trailing, so waiters shares no line with a neighbor
}

// New creates a moderator for the named component with a single base layer.
func New(name string, opts ...Option) *Moderator {
	m := &Moderator{name: name, opts: buildOptions(opts), epochSeq: 1}
	b := bank.New()
	m.comp.Store(&compState{epoch: 1, layers: []compLayer{{name: BaseLayer, bank: b, snap: b.Snapshot()}}})
	m.domains.Store(&domainTable{byMethod: make(map[string]*domain)})
	return m
}

// Name returns the component name the moderator guards.
func (m *Moderator) Name() string { return m.name }

// WakePolicy returns the wait queues' wake policy.
func (m *Moderator) WakePolicy() waitq.Policy { return m.opts.policy }

// WakeMode returns how post-activation releases blocked callers.
func (m *Moderator) WakeMode() WakeMode { return m.opts.wakeMode }

// Stats returns a snapshot of the moderator's counters, summed across its
// admission domains.
func (m *Moderator) Stats() Stats {
	var s Stats
	for _, d := range m.domains.Load().all {
		s.Admissions += d.admissions.Load()
		s.Blocks += d.blocks.Load()
		s.Aborts += d.aborts.Load()
		s.Completions += d.completions.Load()
	}
	return s
}

// republishLocked rebuilds and publishes the composition snapshot from the
// layers' current bank contents, compiling one admission plan per guarded
// method. The stable epoch is preserved; a staged candidate's plans are
// recompiled too, because a grouping merge may have replaced the domains
// they bind (candidate layers themselves are frozen at stage time). The
// admin mutex must be held.
func (m *Moderator) republishLocked(layers []compLayer) {
	cur := m.comp.Load()
	next := &compState{epoch: cur.epoch, layers: make([]compLayer, len(layers))}
	for i, l := range layers {
		next.layers[i] = compLayer{name: l.name, bank: l.bank, snap: l.bank.Snapshot()}
	}
	next.plans = m.compilePlansLocked(next.layers, cur.epoch)
	if c := cur.cand; c != nil {
		cand := c.clone()
		cand.plans = m.compilePlansLocked(cand.layers, cand.epoch)
		next.cand = cand
	}
	m.comp.Store(next)
	m.retireLocked(cur)
}

// compilePlansLocked compiles one admission plan per method guarded by the
// given layer snapshots, tagged with the given epoch. The admin mutex must
// be held.
func (m *Moderator) compilePlansLocked(layers []compLayer, epoch uint64) map[string]*compiledPlan {
	methods := make(map[string]bool)
	for i := range layers {
		layers[i].snap.EachMethod(func(meth string) { methods[meth] = true })
	}
	plans := make(map[string]*compiledPlan, len(methods))
	for meth := range methods {
		plans[meth] = m.compilePlanLocked(layers, meth, epoch)
	}
	return plans
}

// compilePlanLocked resolves one method's guard stack against the given
// layer snapshots. The admin mutex must be held (the plan binds the
// method's admission domain, creating it if needed).
func (m *Moderator) compilePlanLocked(layers []compLayer, method string, epoch uint64) *compiledPlan {
	p := &compiledPlan{method: method, epoch: epoch, pure: true}
	for _, l := range layers {
		entries := l.snap.ForMethod(method)
		if len(entries) == 0 {
			continue
		}
		lo := len(p.entries)
		for _, e := range entries {
			p.entries = append(p.entries, planEntry{layer: l.name, kind: e.Kind, a: e.Aspect})
			p.aspects = append(p.aspects, e.Aspect)
			if nb, ok := e.Aspect.(aspect.NonBlocking); !ok || !nb.NonBlocking() {
				p.pure = false
			}
			if w, ok := e.Aspect.(aspect.Waker); ok {
				for _, t := range w.Wakes() {
					if !containsString(p.wakeTargets, t) {
						p.wakeTargets = append(p.wakeTargets, t)
					}
				}
			}
		}
		p.layers = append(p.layers, planLayer{name: l.name, lo: lo, hi: len(p.entries)})
	}
	sort.Strings(p.wakeTargets) // deterministic cross-domain wake order
	p.targeted = len(p.wakeTargets) > 0
	p.d = m.domainForLocked(method)
	if !p.pure && len(p.entries) > 0 {
		p.optimistic = true
		if p.targeted {
			dt := m.domains.Load()
			for _, t := range p.wakeTargets {
				if dt.byMethod[t] != p.d {
					p.optimistic = false
					break
				}
			}
		}
	}
	// Both fast paths commit with a shared receipt: a fast-path admission
	// carries no per-invocation state (optimistic admissions only run with
	// no tracer installed, so traced is always false), so one immutable
	// receipt per plan serves every concurrent fast-path admission and the
	// fast paths never touch the receipt pool.
	if (p.pure || p.optimistic) && len(p.entries) > 0 {
		p.sharedAdm = &Admission{admitted: p.aspects, plan: p, d: p.d, fast: true, shared: true}
	}
	return p
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// Register stores an aspect at (method, kind) in the base layer — the
// paper's registerAspect (Figure 9).
func (m *Moderator) Register(method string, kind aspect.Kind, a aspect.Aspect) error {
	return m.RegisterIn(BaseLayer, method, kind, a)
}

// RegisterIn stores an aspect at (method, kind) in the named layer. If the
// aspect implements aspect.Waker with a non-empty wake list, the method
// and every wake target are merged into one admission domain (the wake
// list of a guard is the span of its shared state); the merge fails with
// ErrDomainActive if it would join two domains that both already saw
// traffic.
func (m *Moderator) RegisterIn(layerName, method string, kind aspect.Kind, a aspect.Aspect) error {
	m.admin.Lock()
	defer m.admin.Unlock()
	cs := m.comp.Load()
	l := cs.find(layerName)
	if l == nil {
		return fmt.Errorf("moderator %s: register %s/%s in %q: %w", m.name, method, kind, layerName, ErrNoSuchLayer)
	}
	if w, ok := a.(aspect.Waker); ok && method != "" {
		if span := w.Wakes(); len(span) > 0 {
			group := append([]string{method}, span...)
			if err := m.groupLocked(group); err != nil {
				return fmt.Errorf("moderator %s: register %s/%s: %w", m.name, method, kind, err)
			}
		}
	}
	if err := l.bank.Register(method, kind, a); err != nil {
		return fmt.Errorf("moderator %s: %w", m.name, err)
	}
	m.republishLocked(cs.layers)
	return nil
}

// Unregister removes every aspect at (method, kind) from the named layer,
// reporting how many were removed. In-flight invocations complete under the
// composition they were admitted with.
func (m *Moderator) Unregister(layerName, method string, kind aspect.Kind) (int, error) {
	m.admin.Lock()
	defer m.admin.Unlock()
	cs := m.comp.Load()
	l := cs.find(layerName)
	if l == nil {
		return 0, fmt.Errorf("moderator %s: unregister from %q: %w", m.name, layerName, ErrNoSuchLayer)
	}
	n := l.bank.Unregister(method, kind)
	if n > 0 {
		m.republishLocked(cs.layers)
	}
	return n, nil
}

// AddLayer introduces a new, empty layer. This is the framework's dynamic
// adaptability hook: the paper's ExtendedAspectModerator becomes
// AddLayer("authentication", Outermost) plus RegisterIn calls, with no
// change to functional code. Layer churn never touches an admission
// domain: the hot path keeps admitting under the previous snapshot until
// the new one is published.
func (m *Moderator) AddLayer(name string, pos Position) error {
	if name == "" {
		return fmt.Errorf("moderator %s: empty layer name", m.name)
	}
	m.admin.Lock()
	defer m.admin.Unlock()
	old := m.comp.Load()
	if old.find(name) != nil {
		return fmt.Errorf("moderator %s: add layer %q: %w", m.name, name, ErrLayerExists)
	}
	b := bank.New()
	nl := compLayer{name: name, bank: b, snap: b.Snapshot()}
	layers := make([]compLayer, 0, len(old.layers)+1)
	if pos == Innermost {
		layers = append(layers, old.layers...)
		layers = append(layers, nl)
	} else {
		layers = append(layers, nl)
		layers = append(layers, old.layers...)
	}
	m.republishLocked(layers)
	return nil
}

// RemoveLayer removes a layer and all its aspects. In-flight invocations
// admitted under the layer still run its postactions: the Admission
// receipt holds the admitted aspect objects, not bank coordinates.
func (m *Moderator) RemoveLayer(name string) error {
	m.admin.Lock()
	defer m.admin.Unlock()
	old := m.comp.Load()
	if old.find(name) == nil {
		return fmt.Errorf("moderator %s: remove layer %q: %w", m.name, name, ErrNoSuchLayer)
	}
	layers := make([]compLayer, 0, len(old.layers)-1)
	for _, l := range old.layers {
		if l.name != name {
			layers = append(layers, l)
		}
	}
	m.republishLocked(layers)
	return nil
}

// GroupMethods declares that the listed participating methods form one
// admission domain: aspects registered on any of them may share guard
// state, because all their hooks run under the group's single mutex.
// Declare groups during initialization; merging two domains that both
// already saw traffic fails with ErrDomainActive.
func (m *Moderator) GroupMethods(methods ...string) error {
	if len(methods) == 0 {
		return nil
	}
	m.admin.Lock()
	defer m.admin.Unlock()
	return m.groupLocked(methods)
}

// groupLocked merges the methods' domains. The admin mutex must be held.
func (m *Moderator) groupLocked(methods []string) error {
	dt := m.domains.Load()
	var distinct []*domain
	seen := make(map[*domain]bool, len(methods))
	for _, meth := range methods {
		if meth == "" {
			return fmt.Errorf("moderator %s: group: empty method name", m.name)
		}
		if d := dt.byMethod[meth]; d != nil && !seen[d] {
			seen[d] = true
			distinct = append(distinct, d)
		}
	}
	var actives []*domain
	for _, d := range distinct {
		if d.active() {
			actives = append(actives, d)
		}
	}
	if len(actives) > 1 {
		return fmt.Errorf("moderator %s: group %v: %d domains already saw traffic: %w",
			m.name, methods, len(actives), ErrDomainActive)
	}
	var target *domain
	switch {
	case len(actives) == 1:
		target = actives[0]
	case len(distinct) > 0:
		target = distinct[0]
	default:
		target = newDomain()
	}
	changed := false
	for _, meth := range methods {
		if dt.byMethod[meth] != target {
			changed = true
			break
		}
	}
	if !changed {
		return nil
	}
	prev := dt.all
	next := dt.clone()
	for _, meth := range methods {
		next.byMethod[meth] = target
	}
	next.rebuildAll(prev)
	m.domains.Store(next)
	// Compiled plans bind each method's domain; re-publish so no plan
	// keeps pointing at a merged-away domain.
	m.republishLocked(m.comp.Load().layers)
	return nil
}

// Domains returns the current method grouping: one sorted slice of method
// names per admission domain, ordered by each group's first method. Only
// methods the moderator has seen (via invocation, grouping, or Waker
// registration) appear.
func (m *Moderator) Domains() [][]string {
	dt := m.domains.Load()
	byDomain := make(map[*domain][]string, len(dt.all))
	for meth, d := range dt.byMethod {
		byDomain[d] = append(byDomain[d], meth)
	}
	out := make([][]string, 0, len(byDomain))
	for _, methods := range byDomain {
		sort.Strings(methods)
		out = append(out, methods)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// domainFor returns the admission domain of a method, creating one (via
// copy-on-write of the domain table) on first use.
func (m *Moderator) domainFor(method string) *domain {
	if d := m.domains.Load().byMethod[method]; d != nil {
		return d
	}
	m.admin.Lock()
	defer m.admin.Unlock()
	return m.domainForLocked(method)
}

// domainForLocked is domainFor for callers already holding the admin
// mutex (plan compilation, which runs under it).
func (m *Moderator) domainForLocked(method string) *domain {
	dt := m.domains.Load()
	if d := dt.byMethod[method]; d != nil {
		return d
	}
	d := newDomain()
	next := dt.clone()
	next.byMethod[method] = d
	next.all = append(next.all, d)
	m.domains.Store(next)
	return d
}

// Layers returns the current layer names, outermost first.
func (m *Moderator) Layers() []string {
	cs := m.comp.Load()
	out := make([]string, len(cs.layers))
	for i := range cs.layers {
		out[i] = cs.layers[i].name
	}
	return out
}

// Aspects returns the aspects that would guard the given method right now,
// in precondition evaluation order (outermost layer first, registration
// order within a layer).
func (m *Moderator) Aspects(method string) []aspect.Aspect {
	var out []aspect.Aspect
	for _, l := range m.comp.Load().layers {
		for _, e := range l.snap.ForMethod(method) {
			out = append(out, e.Aspect)
		}
	}
	return out
}

// AspectInfo describes one registered aspect for introspection.
type AspectInfo struct {
	Name string
	Kind aspect.Kind
}

// LayerInfo describes one layer's composition: per participating method,
// the aspects in registration (evaluation) order.
type LayerInfo struct {
	Name    string
	Methods map[string][]AspectInfo
}

// Describe returns a structural snapshot of the whole composition, layers
// outermost first — the operator-facing view of the aspect bank that
// cmd/ticketd logs at startup and the compose package verifies. It reads
// the same atomically-published snapshot as the admission hot path, so it
// never observes a torn composition during layer churn.
func (m *Moderator) Describe() []LayerInfo {
	return describeComp(m.comp.Load())
}

// DescribeString renders Describe for logs.
func (m *Moderator) DescribeString() string {
	return describeString(m.name, m.opts, m.Describe())
}

func describeComp(cs *compState) []LayerInfo {
	out := make([]LayerInfo, 0, len(cs.layers))
	for _, l := range cs.layers {
		info := LayerInfo{Name: l.name, Methods: make(map[string][]AspectInfo, 4)}
		for _, method := range l.snap.Methods() {
			entries := l.snap.ForMethod(method)
			aspects := make([]AspectInfo, 0, len(entries))
			for _, e := range entries {
				aspects = append(aspects, AspectInfo{Name: e.Aspect.Name(), Kind: e.Kind})
			}
			info.Methods[method] = aspects
		}
		out = append(out, info)
	}
	return out
}

func describeString(name string, o options, layers []LayerInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "component %s (wake policy %s, %s)\n", name, o.policy, wakeModeName(o.wakeMode))
	for _, layer := range layers {
		fmt.Fprintf(&b, "  layer %s\n", layer.Name)
		methods := make([]string, 0, len(layer.Methods))
		for method := range layer.Methods {
			methods = append(methods, method)
		}
		sort.Strings(methods)
		for _, method := range methods {
			fmt.Fprintf(&b, "    %s:", method)
			for _, a := range layer.Methods[method] {
				fmt.Fprintf(&b, " [%s %s]", a.Kind, a.Name)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

func wakeModeName(w WakeMode) string {
	if w == WakeSingle {
		return "wake-single"
	}
	return "wake-broadcast"
}

// Preactivation evaluates the preconditions of every aspect registered for
// the invocation's method, layer by layer, blocking the caller as dictated
// by Block verdicts. On success it returns the admission receipt, which
// the caller must eventually pass to Postactivation together with the same
// invocation. On failure (Abort verdict, cancelled context, or an invalid
// verdict) every admission already made is cancelled and an error is
// returned; Postactivation must not be called.
//
// All hooks run under the admission domain of the invoked method; callers
// of methods in other domains proceed concurrently. A method whose whole
// guard stack declares aspect.NonBlocking is admitted on a lock-free fast
// path when no tracer is installed and no caller is parked anywhere on
// the moderator (see preactivateFast).
func (m *Moderator) Preactivation(inv *aspect.Invocation) (*Admission, error) {
	// Resolve the composition once, from a single atomic snapshot:
	// in-flight invocations are immune to concurrent re-composition, and
	// the plan was compiled when the snapshot was published — the hot
	// path resolves nothing and allocates nothing. With a canary staged,
	// planFor deterministically routes a fraction of invocations to the
	// candidate epoch's plans (canary.go).
	cs := m.comp.Load()
	plan := cs.planFor(inv)
	tb := m.tracer.Load()
	sh := m.shadow.Load()
	if plan == nil {
		// No aspects guard this method: admit immediately.
		d := m.domainFor(inv.Method())
		g := tb.gate(&d.traceTick)
		d.admissions.Add(1)
		if g.detail() {
			g.t.Trace(TraceEvent{Op: TraceAdmit, Component: m.name, Method: inv.Method(),
				Domain: d.id, Invocation: inv.ID()})
		}
		return nil, nil
	}
	d := plan.d

	// Pin the current reclamation era for the duration of the evaluation
	// (including any parks): a retired composition snapshot is only
	// declared reclaimed once its era's pin slot is quiescent in every
	// domain (reclaim.go).
	slot := &d.pins[m.reclaimEra.Load()%reclaimSlots]
	slot.Add(1)
	adm, err := m.preactivatePlan(cs, inv, plan, d, tb, sh)
	slot.Add(-1)
	return adm, err
}

// preactivatePlan dispatches one resolved plan to the cheapest admission
// path it qualifies for. Both lock-free paths require that no tracer is
// installed (events of one domain are serialized by its mutex) and that
// nobody is parked moderator-wide (a parked caller's wake-up must stay
// ordered with completions, which the mutex path's fan-out provides):
//
//   - a pure stack can neither park this caller nor (through guard state)
//     unblock another, so it runs with no lock at all (preactivateFast);
//   - a guarded single-domain stack runs under the domain's guard cell
//     alone (preactivateOptimistic), falling back on cell conflict,
//     late-appearing waiters, or a Block verdict;
//   - a contended guarded stack — waiters parked, or the optimistic
//     attempt lost its cell — batches through the domain's submission
//     ring (preactivateRing): one drainer takes the mutex for the whole
//     batch. The ring first probes the mutex (ring.go, "Contention
//     gate"); a free mutex means the plain path is cheaper, so the probe
//     bypasses the ring. A Block verdict from either lock-free attempt
//     parks via the mutex path, carrying the verdict; a full ring spills
//     to the mutex path directly.
func (m *Moderator) preactivatePlan(cs *compState, inv *aspect.Invocation, plan *compiledPlan, d *domain, tb *tracerBox, sh *Shadow) (*Admission, error) {
	if tb == nil {
		if m.waiters.Load() == 0 {
			if plan.pure {
				adm, err := m.preactivateFast(inv, plan, d)
				if sh != nil {
					// Fast-path errors are always aborts (a pure stack never
					// parks), so err==nil fully determines the admission
					// outcome.
					sh.observe(cs, plan, inv, err == nil)
				}
				return adm, err
			}
			if m.opts.optimistic && plan.optimistic {
				adm, err, resume, done := m.preactivateOptimistic(cs, inv, plan, d, sh)
				if done {
					return adm, err
				}
				if resume != nil {
					return m.preactivateMutex(cs, inv, plan, d, tb, sh, resume, false)
				}
				// Cell conflict or late-appearing waiters: genuinely
				// contended — fall through to the ring.
			}
		}
		if m.opts.batched && !plan.pure {
			if m.opts.ringGate && d.mu.TryLock() {
				// The probe won the mutex outright: the plain path with
				// the lock in hand is strictly cheaper than a ring round
				// trip, and handing the acquisition over (rather than
				// unlocking to re-lock) leaves the mutex's wait queue
				// undisturbed.
				d.ring.bypasses.Add(1)
				return m.preactivateMutex(cs, inv, plan, d, tb, sh, nil, true)
			}
			adm, err, resume, done := m.preactivateRing(cs, inv, plan, d, sh)
			if done {
				return adm, err
			}
			if resume != nil {
				return m.preactivateMutex(cs, inv, plan, d, tb, sh, resume, false)
			}
			// Ring full: the mutex path absorbs the overflow.
		}
	}
	return m.preactivateMutex(cs, inv, plan, d, tb, sh, nil, false)
}

// preactivateMutex is the general admission path: it serializes on the
// domain mutex and supports parking. Guard hooks of impure plans
// additionally run under the domain's guard cell (acquired strictly after
// the mutex, released across parks) so they exclude the optimistic path.
//
// resume, when non-nil, continues an optimistic evaluation that hit a
// Block verdict: the admitted prefix stands, the caller is already
// pre-registered in m.waiters, and — if the cell sequence proves no guard
// state was touched in between — the carried verdict parks directly
// instead of re-running the blocked layer's preconditions.
//
// locked means the caller already holds d.mu — the ring's contention probe
// acquired it with TryLock and hands it over rather than releasing and
// re-locking (an unlock would wake a mutex waiter only to race it, and
// losing that race repeatedly drives the mutex into starvation mode).
func (m *Moderator) preactivateMutex(cs *compState, inv *aspect.Invocation, plan *compiledPlan, d *domain, tb *tracerBox, sh *Shadow, resume *optResume, locked bool) (*Admission, error) {
	g := tb.gate(&d.traceTick)
	var preStart time.Time
	if g.detail() {
		preStart = time.Now()
	}

	if !locked {
		d.mu.Lock()
	}
	defer d.mu.Unlock()

	// Guarded plans take the guard cell (strictly inside the mutex) around
	// every guard hook, so mutex-path hooks exclude the optimistic path's.
	// Pure plans skip it: their hooks touch no guard state.
	guarded := !plan.pure
	if guarded {
		d.cell.lock()
	}

	// The sticky arrival ticket keeps a re-parking caller's FIFO/LIFO
	// position across guard re-evaluations; it is assigned lazily on the
	// first Block. k counts admitted aspects: the admitted state is always
	// the plan prefix plan.aspects[:k].
	var ticket uint64
	k := 0
	li0 := 0
	// preReg records that this caller is already counted in m.waiters (the
	// optimistic Block handoff pre-registers under the cell). The first
	// park consumes it; a terminal outcome before any park releases it.
	preReg := false
	resumePark := false
	var resumeKind aspect.Kind
	var resumeBy aspect.Aspect
	if resume != nil {
		k = resume.k
		li0 = resume.layer
		preReg = true
		// Our own cell.lock above advanced the sequence by exactly one; if
		// it now reads resume.ver+1, no guard hook ran since the optimistic
		// evaluation observed its Block verdict, so the verdict still holds
		// and re-running the layer would double its hook effects. Otherwise
		// guard state may have changed and the layer legitimately
		// re-evaluates — the spurious-wake case re-parking callers already
		// tolerate.
		if d.cell.version() == resume.ver+1 {
			resumePark = true
			resumeKind, resumeBy = resume.kind, resume.by
		}
	}
	for li := li0; li < len(plan.layers); li++ {
		l := &plan.layers[li]
		for {
			mark := k
			var blockedKind aspect.Kind
			var blockedBy aspect.Aspect
			blocked := false
			var abortErr error
			if resumePark {
				resumePark = false
				blocked = true
				blockedKind = resumeKind
				blockedBy = resumeBy
			} else {
				for i := l.lo; i < l.hi; i++ {
					e := &plan.entries[i]
					var hook0 time.Time
					if g.detail() {
						hook0 = time.Now()
					}
					v := e.a.Precondition(inv)
					if g.detail() {
						g.t.Trace(TraceEvent{Op: TraceVerdict, Component: m.name, Method: inv.Method(),
							Domain: d.id, Layer: l.name, Aspect: e.a.Name(), Kind: e.kind,
							Verdict: v, Invocation: inv.ID(), Nanos: time.Since(hook0).Nanoseconds()})
					}
					if v == aspect.Resume {
						k++
						continue
					}
					switch v {
					case aspect.Block:
						blocked = true
						blockedKind = e.kind
						blockedBy = e.a
					case aspect.Abort:
						abortErr = inv.Err()
						if abortErr == nil {
							abortErr = aspect.ErrAborted
						}
					default:
						abortErr = fmt.Errorf("moderator %s: aspect %q returned invalid verdict %v: %w",
							m.name, e.a.Name(), v, aspect.ErrAborted)
					}
					break
				}
			}
			if abortErr != nil {
				cancelReverse(plan.aspects[:k], inv)
				d.aborts.Add(1)
				if guarded {
					d.cell.unlock()
				}
				if preReg {
					m.waiters.Add(-1)
				}
				if g.detail() {
					g.t.Trace(TraceEvent{Op: TraceAbort, Component: m.name, Method: inv.Method(),
						Domain: d.id, Layer: l.name, Invocation: inv.ID(),
						Nanos: time.Since(preStart).Nanoseconds(), Err: abortErr.Error()})
				}
				if sh != nil {
					sh.observe(cs, plan, inv, false)
				}
				return nil, fmt.Errorf("moderator %s: %s pre-activation (layer %s): %w",
					m.name, inv.Method(), l.name, abortErr)
			}
			if !blocked {
				break // layer fully admitted; next layer
			}
			// Roll back this layer's partial admissions, park, retry.
			cancelReverse(plan.aspects[mark:k], inv)
			k = mark
			d.blocks.Add(1)
			if ticket == 0 {
				d.ticketSeq++
				ticket = d.ticketSeq
				if g.exact() {
					g.t.Trace(TraceEvent{Op: TraceTicket, Component: m.name, Method: inv.Method(),
						Domain: d.id, Kind: blockedKind, Invocation: inv.ID(), Ticket: ticket})
				}
			}
			q := m.queueLocked(d, inv.Method(), blockedKind)
			// Ticket, park, and wake are always-exact ops (see invTrace):
			// traced for EVERY invocation when a tracer is installed, not
			// only sampled ones — parking costs a scheduler round-trip
			// anyway, and complete wait-duration data is the headline
			// observability payload.
			var parkStart time.Time
			if g.exact() {
				g.t.Trace(TraceEvent{Op: TracePark, Component: m.name, Method: inv.Method(),
					Domain: d.id, Layer: l.name, Aspect: blockedBy.Name(), Kind: blockedKind,
					Invocation: inv.ID(), Ticket: ticket, Depth: q.Len() + 1})
				parkStart = time.Now()
			}
			// Register in m.waiters BEFORE releasing the guard cell (or
			// consume the optimistic pre-registration): once the cell is
			// free, a lock-free completer may check the count, and it must
			// see this caller. Wait then enqueues before releasing the
			// mutex, so a mutex-path completer's fan-out sees it too.
			if preReg {
				preReg = false
			} else {
				m.waiters.Add(1)
			}
			if guarded {
				d.cell.unlock()
			}
			err := q.Wait(inv.Context(), inv.Priority, ticket)
			m.waiters.Add(-1)
			if guarded {
				d.cell.lock()
			}
			if g.exact() {
				wake := TraceEvent{Op: TraceWake, Component: m.name, Method: inv.Method(),
					Domain: d.id, Kind: blockedKind, Invocation: inv.ID(), Ticket: ticket,
					Nanos: time.Since(parkStart).Nanoseconds()}
				if err != nil {
					wake.Err = err.Error()
				}
				g.t.Trace(wake)
			}
			if err != nil {
				// The blocked caller abandons: let the blocking aspect
				// retract anything its Block-returning precondition
				// recorded (a barrier arrival, a declared intent).
				if ab, ok := blockedBy.(aspect.Abandoner); ok {
					ab.Abandon(inv)
				}
				cancelReverse(plan.aspects[:k], inv)
				d.aborts.Add(1)
				if guarded {
					d.cell.unlock()
				}
				if g.detail() {
					g.t.Trace(TraceEvent{Op: TraceAbort, Component: m.name, Method: inv.Method(),
						Domain: d.id, Layer: l.name, Invocation: inv.ID(),
						Nanos: time.Since(preStart).Nanoseconds(), Err: err.Error()})
				}
				return nil, fmt.Errorf("moderator %s: %s blocked in layer %s: %w",
					m.name, inv.Method(), l.name, err)
			}
		}
	}
	d.admissions.Add(1)
	if guarded {
		d.cell.unlock()
	}
	if preReg {
		// The optimistic Block handoff pre-registered this caller but
		// re-evaluation admitted without ever parking (guard state changed
		// in our favor between the handoff and the mutex acquisition).
		m.waiters.Add(-1)
	}
	if g.detail() {
		g.t.Trace(TraceEvent{Op: TraceAdmit, Component: m.name, Method: inv.Method(),
			Domain: d.id, Invocation: inv.ID(), Aspects: k,
			Nanos: time.Since(preStart).Nanoseconds()})
	}
	if sh != nil {
		sh.observe(cs, plan, inv, true)
	}
	return newAdmission(plan, d, g.detail(), false), nil
}

// preactivateFast admits a pure (all-NonBlocking) plan without taking the
// domain mutex. Safety rests on the NonBlocking contract: no entry touches
// cross-invocation guard state, so there is no state the mutex would
// protect, and no entry may return Block, so the caller never parks. The
// caller has already checked that no tracer is installed and that no
// caller is parked moderator-wide; admission counters are the existing
// atomics. A Block verdict here is a contract violation and is converted
// into an abort (rolling back like any rejection) rather than a park.
func (m *Moderator) preactivateFast(inv *aspect.Invocation, plan *compiledPlan, d *domain) (*Admission, error) {
	k := 0
	for i := range plan.entries {
		e := &plan.entries[i]
		v := e.a.Precondition(inv)
		if v == aspect.Resume {
			k++
			continue
		}
		var abortErr error
		switch v {
		case aspect.Abort:
			abortErr = inv.Err()
			if abortErr == nil {
				abortErr = aspect.ErrAborted
			}
		case aspect.Block:
			abortErr = fmt.Errorf("moderator %s: NonBlocking aspect %q returned Block: %w",
				m.name, e.a.Name(), aspect.ErrAborted)
		default:
			abortErr = fmt.Errorf("moderator %s: aspect %q returned invalid verdict %v: %w",
				m.name, e.a.Name(), v, aspect.ErrAborted)
		}
		cancelReverse(plan.aspects[:k], inv)
		d.aborts.Add(1)
		return nil, fmt.Errorf("moderator %s: %s pre-activation (layer %s): %w",
			m.name, inv.Method(), e.layer, abortErr)
	}
	d.admissions.Add(1)
	return plan.sharedAdm, nil
}

// Postactivation runs the postactions of every aspect the invocation was
// admitted under (per the admission receipt), in reverse admission order —
// innermost layer first — and wakes blocked callers. It must be called
// exactly once per successful Preactivation, with the method body's
// outcome recorded on the invocation; the receipt is recycled and must not
// be used afterwards. A nil admission (an unguarded method) is a cheap
// no-op.
//
// Postactions run under the invoked method's admission domain. Wake
// targets inside that domain are notified while the domain mutex is still
// held; targets in other domains are notified afterwards, one domain at a
// time, so no two domain mutexes are ever held together. A fast-path
// receipt (pure stack) completes without the mutex or the wake fan-out
// when no tracer is installed and no caller is parked: pure postactions
// touch no guard state, so they cannot unblock anyone, and with nobody
// parked there is nobody to wake.
func (m *Moderator) Postactivation(inv *aspect.Invocation, adm *Admission) {
	var d *domain
	if adm != nil && adm.d != nil {
		d = adm.d
	} else {
		d = m.domainFor(inv.Method())
	}
	d.completions.Add(1)
	// The effect sink fires before any completion route branches off, so
	// pure fast, optimistic, and mutex receipts all replicate alike.
	if eb := m.effects.Load(); eb != nil && inv.Err() == nil {
		eb.s.Effect(inv)
	}
	tb := m.tracer.Load()
	if adm.Len() == 0 {
		releaseAdmission(adm)
		return
	}
	admitted := adm.admitted

	if adm.fast && tb == nil {
		if adm.plan.pure {
			if m.waiters.Load() == 0 {
				for i := len(admitted) - 1; i >= 0; i-- {
					admitted[i].Postaction(inv)
				}
				releaseAdmission(adm)
				return
			}
		} else if m.postOptimistic(inv, adm, d) {
			// Guarded fast receipt: postactions ran under the guard cell
			// with waiters provably zero — nobody to wake (optimistic.go).
			return
		}
	}

	// Contended guarded completion: batch it through the submission ring —
	// the drainer amortizes the mutex and coalesces the wake fan-out
	// across the batch (ring.go). The contention probe runs first: a free
	// mutex means the plain completion path below is cheaper, and the
	// probe's acquisition is handed over to it. A full ring also falls
	// through to the mutex path.
	locked := false
	if tb == nil && m.opts.batched && adm.plan != nil && !adm.plan.pure {
		if m.opts.ringGate && d.mu.TryLock() {
			d.ring.bypasses.Add(1)
			locked = true
		} else if m.postactivateRing(inv, adm, d) {
			return
		}
	}

	g := invTrace{}
	if tb != nil {
		g = invTrace{t: tb.t, sampled: adm.traced}
	}
	var postStart time.Time
	if g.detail() {
		postStart = time.Now()
	}

	if !locked {
		d.mu.Lock()
	}

	// Guard hooks of impure receipts run under the guard cell so they
	// exclude the optimistic path (the fan-out below touches only queues,
	// which the mutex alone guards).
	guarded := adm.plan != nil && !adm.plan.pure
	if guarded {
		d.cell.lock()
	}
	// Reverse admission order realizes the onion: the innermost layer's
	// last-admitted aspect acts first, the outermost layer's first aspect
	// acts last (paper Figure 14).
	for i := len(admitted) - 1; i >= 0; i-- {
		a := admitted[i]
		var hook0 time.Time
		if g.detail() {
			hook0 = time.Now()
		}
		a.Postaction(inv)
		if g.detail() {
			g.t.Trace(TraceEvent{Op: TracePost, Component: m.name, Method: inv.Method(),
				Domain: d.id, Aspect: a.Name(), Kind: a.Kind(), Invocation: inv.ID(),
				Nanos: time.Since(hook0).Nanoseconds()})
		}
	}
	if guarded {
		d.cell.unlock()
	}
	if g.detail() {
		// The completion receipt is emitted under the domain mutex, before
		// the wake fan-out, so it stays ordered with the domain's stream.
		completeEvent(g.t, m.name, inv, d.id, time.Since(postStart).Nanoseconds())
	}
	dt := m.domains.Load()
	plan := adm.plan
	releaseAdmission(adm)
	// Only a NON-empty wake list counts as targeting: a passive aspect
	// (metrics, audit) that merely happens to implement Waker with no
	// targets must not suppress the conservative broadcast, or a receipt
	// mixing it with a non-Waker guard would wake nobody and strand the
	// guard's parked callers. The union of the plan's wake lists was
	// precomputed (sorted, deduplicated) at publish time.
	if plan.targeted {
		foreignFrom := -1
		for i, meth := range plan.wakeTargets {
			if dt.byMethod[meth] == d {
				wakeMethodLocked(d, meth, m.opts.wakeMode)
			} else if foreignFrom < 0 {
				foreignFrom = i
			}
		}
		d.mu.Unlock()
		if foreignFrom < 0 {
			return
		}
		for _, meth := range plan.wakeTargets[foreignFrom:] {
			if od := dt.byMethod[meth]; od != nil && od != d {
				od.mu.Lock()
				wakeMethodLocked(od, meth, m.opts.wakeMode)
				od.mu.Unlock()
			}
		}
		return
	}
	// No aspect declared wake targets: conservatively wake everything —
	// every queue of every domain, preserving the single-mutex
	// moderator's contract for aspects that never list their wakes.
	for _, q := range d.queues {
		wakeQueueLocked(q, m.opts.wakeMode)
	}
	d.mu.Unlock()
	for _, od := range dt.all {
		if od == d {
			continue
		}
		od.mu.Lock()
		for _, q := range od.queues {
			wakeQueueLocked(q, m.opts.wakeMode)
		}
		od.mu.Unlock()
	}
}

// Kick wakes every caller blocked on the given method. External event
// sources (timers refilling a rate limiter, a circuit breaker half-opening)
// use it to re-trigger guard evaluation without a method completion.
func (m *Moderator) Kick(method string) {
	d := m.domains.Load().byMethod[method]
	if d == nil {
		return // method never seen: nothing can be parked on it
	}
	d.mu.Lock()
	wakeMethodLocked(d, method, m.opts.wakeMode)
	d.mu.Unlock()
}

// Waiting returns the number of callers currently blocked on the method.
func (m *Moderator) Waiting(method string) int {
	d := m.domains.Load().byMethod[method]
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for k, q := range d.queues {
		if k.method == method {
			n += q.Len()
		}
	}
	return n
}

// QueueStats returns per-queue counters keyed by "method/kind", across all
// admission domains.
func (m *Moderator) QueueStats() map[string]waitq.Stats {
	dt := m.domains.Load()
	out := make(map[string]waitq.Stats)
	for _, d := range dt.all {
		d.mu.Lock()
		for k, q := range d.queues {
			out[k.method+"/"+string(k.kind)] = q.Stats()
		}
		d.mu.Unlock()
	}
	return out
}

// wakeMethodLocked wakes the queues of one method. The domain's mutex must
// be held.
func wakeMethodLocked(d *domain, method string, mode WakeMode) {
	for k, q := range d.queues {
		if k.method == method {
			wakeQueueLocked(q, mode)
		}
	}
}

func wakeQueueLocked(q *waitq.Queue, mode WakeMode) {
	if mode == WakeSingle {
		q.Notify()
	} else {
		q.Broadcast()
	}
}

// queueLocked returns (creating if needed) the wait queue for blocked
// callers of method whose blocking aspect has the given kind — the paper's
// per-method, per-concern waiting queues (PutWaitingQueue,
// OpenAuthenticationQueue). The queue is bound to its domain's mutex. The
// domain's mutex must be held.
func (m *Moderator) queueLocked(d *domain, method string, kind aspect.Kind) *waitq.Queue {
	k := qkey{method: method, kind: kind}
	q, ok := d.queues[k]
	if !ok {
		q = waitq.New(method+"/"+string(kind), m.opts.policy, &d.mu)
		d.queues[k] = q
	}
	return q
}

// cancelReverse calls Cancel on admitted aspects in reverse order.
func cancelReverse(admitted []aspect.Aspect, inv *aspect.Invocation) {
	for i := len(admitted) - 1; i >= 0; i-- {
		if c, ok := admitted[i].(aspect.Canceler); ok {
			c.Cancel(inv)
		}
	}
}
