//go:build !race

package moderator

// raceEnabled reports whether the race detector is compiled in. The
// allocation-guard test skips under -race: the detector instruments every
// memory access and allocates shadow state, so AllocsPerRun numbers are
// meaningless there.
const raceEnabled = false
