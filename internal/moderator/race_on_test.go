//go:build race

package moderator

// raceEnabled reports whether the race detector is compiled in; see
// race_off_test.go.
const raceEnabled = true
