package moderator

import (
	"context"
	"testing"

	"repro/internal/aspect"
	"repro/internal/aspects/syncguard"
)

type smuggledKey struct{}

// smugglingGuard is the injected fault for the shadow detector: its
// verdict depends on an attribute the CALLER stamps on the invocation
// before admission — out-of-band state that is not a function of the
// declared inputs (method, args, priority, route key). The live path
// admits every stamped invocation; the replay reconstructs invocations
// from declared inputs only, so the reference semantics predict abort:
// a verdict divergence on every sample.
func smugglingGuard() *aspect.Func {
	return &aspect.Func{
		AspectName: "smuggling-guard",
		AspectKind: aspect.KindSynchronization,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			if inv.Attr(smuggledKey{}) != nil {
				return aspect.Resume
			}
			return aspect.Abort
		},
	}
}

func TestShadowDetectsInjectedVerdictFault(t *testing.T) {
	m := New("comp")
	if err := m.Register("open", aspect.KindSynchronization, smugglingGuard()); err != nil {
		t.Fatal(err)
	}
	s := NewShadow(m, WithShadowSampleEvery(1))
	s.Start()
	m.SetShadow(s)

	const n = 32
	for i := 0; i < n; i++ {
		inv := aspect.NewInvocation(context.Background(), "comp", "open", nil)
		inv.SetAttr(smuggledKey{}, true)
		adm, err := m.Preactivation(inv)
		if err != nil {
			t.Fatalf("live admission %d: %v", i, err)
		}
		m.Postactivation(inv, adm)
	}
	m.SetShadow(nil)
	s.Stop()

	st := s.Stats()
	if st.Sampled != n {
		t.Errorf("sampled = %d, want %d (stride 1)", st.Sampled, n)
	}
	if st.Replayed+st.Dropped != st.Sampled {
		t.Errorf("replayed %d + dropped %d != sampled %d", st.Replayed, st.Dropped, st.Sampled)
	}
	if st.VerdictDivergences == 0 {
		t.Fatalf("injected verdict fault not detected within %d sampled admissions: %+v", n, st)
	}
	if st.VerdictDivergences != st.Replayed {
		t.Errorf("every replay should diverge: %d of %d", st.VerdictDivergences, st.Replayed)
	}
	if st.StackDivergences != 0 || st.WakeDivergences != 0 {
		t.Errorf("unexpected structural divergences: %+v", st)
	}
	divs := s.Divergences()
	if len(divs) == 0 {
		t.Fatal("no divergences recorded")
	}
	for _, d := range divs {
		if d.Class != "verdict" || d.Method != "open" || !d.LiveAdmitted || d.Predicted != "abort" {
			t.Errorf("unexpected divergence record: %+v", d)
		}
		if d.Epoch != 1 {
			t.Errorf("divergence epoch = %d, want 1", d.Epoch)
		}
	}
}

// TestShadowCleanOnHonestGuards soaks the producer/consumer guard pair
// with every admission replayed: a sound, state-dependent stack must
// produce zero divergences — replays either agree or come back
// inconclusive (guard state moved on), never divergent.
func TestShadowCleanOnHonestGuards(t *testing.T) {
	m := New("comp")
	buf, err := syncguard.NewBuffer(4, "open", "assign")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register("open", aspect.KindSynchronization, buf.ProducerAspect()); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("assign", aspect.KindSynchronization, buf.ConsumerAspect()); err != nil {
		t.Fatal(err)
	}
	s := NewShadow(m, WithShadowSampleEvery(1), WithShadowBuffer(1024))
	s.Start()
	m.SetShadow(s)

	for i := 0; i < 200; i++ {
		for _, method := range []string{"open", "assign"} {
			i := aspect.NewInvocation(context.Background(), "comp", method, nil)
			adm, err := m.Preactivation(i)
			if err != nil {
				t.Fatalf("%s: %v", method, err)
			}
			m.Postactivation(i, adm)
		}
	}
	m.SetShadow(nil)
	s.Stop()

	st := s.Stats()
	if st.Divergences() != 0 {
		t.Fatalf("honest guards produced divergences: %+v\n%v", st, s.Divergences())
	}
	if st.Replayed == 0 {
		t.Fatal("nothing replayed")
	}
	if st.Agreements+st.Inconclusive != st.Replayed {
		t.Errorf("agreements %d + inconclusive %d != replayed %d", st.Agreements, st.Inconclusive, st.Replayed)
	}
	// Replay must leave guard state unperturbed: the buffer admits the
	// same alternation afterwards.
	i := aspect.NewInvocation(context.Background(), "comp", "open", nil)
	adm, err := m.Preactivation(i)
	if err != nil {
		t.Fatalf("post-soak admission: %v", err)
	}
	m.Postactivation(i, adm)
}

// TestShadowInconclusiveWhenStateMovedOn pins the advisory contract: a
// live admission that itself consumed the last capacity makes the replay
// see Block; that is counted inconclusive, not divergent.
func TestShadowInconclusiveWhenStateMovedOn(t *testing.T) {
	m := New("comp")
	buf, err := syncguard.NewBuffer(1, "open", "assign")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register("open", aspect.KindSynchronization, buf.ProducerAspect()); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("assign", aspect.KindSynchronization, buf.ConsumerAspect()); err != nil {
		t.Fatal(err)
	}
	s := NewShadow(m, WithShadowSampleEvery(1))
	// Worker deliberately NOT started yet: the sample replays only after
	// the live admission completed and filled the capacity-1 buffer.
	m.SetShadow(s)
	i := aspect.NewInvocation(context.Background(), "comp", "open", nil)
	adm, err := m.Preactivation(i)
	if err != nil {
		t.Fatal(err)
	}
	m.Postactivation(i, adm)
	m.SetShadow(nil)
	s.Start()
	s.Stop()

	st := s.Stats()
	if st.Sampled != 1 || st.Replayed != 1 {
		t.Fatalf("sampled %d replayed %d, want 1/1", st.Sampled, st.Replayed)
	}
	if st.Inconclusive != 1 {
		t.Errorf("replay against moved-on state: inconclusive = %d, want 1 (%+v)", st.Inconclusive, st)
	}
	if st.Divergences() != 0 {
		t.Errorf("moved-on state misread as divergence: %+v", st)
	}
}

func TestShadowSamplingStride(t *testing.T) {
	m := New("comp")
	if err := m.Register("open", aspect.KindMetrics,
		&aspect.Func{AspectName: "veneer", AspectKind: aspect.KindMetrics, NonBlockingFlag: true}); err != nil {
		t.Fatal(err)
	}
	s := NewShadow(m, WithShadowSampleEvery(4))
	s.Start()
	m.SetShadow(s)
	for i := 0; i < 16; i++ {
		inv := aspect.NewInvocation(context.Background(), "comp", "open", nil)
		adm, err := m.Preactivation(inv)
		if err != nil {
			t.Fatal(err)
		}
		m.Postactivation(inv, adm)
	}
	m.SetShadow(nil)
	s.Stop()
	st := s.Stats()
	if st.Sampled != 4 {
		t.Errorf("stride 4 over 16 admissions sampled %d, want 4", st.Sampled)
	}
	// The pure fast path is sampled too (the whole point: shadow watches
	// the path the oracle cannot reach in tests), and NonBlocking veneers
	// replay in agreement.
	if st.Agreements != st.Replayed || st.Divergences() != 0 {
		t.Errorf("pure-plan replays should all agree: %+v", st)
	}
}
