package moderator

import (
	"strings"
	"testing"

	"repro/internal/aspect"
)

func TestDescribeStructure(t *testing.T) {
	m := New("comp", WithWakeMode(WakeSingle))
	if err := m.AddLayer("security", Outermost); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterIn("security", "open", aspect.KindAuthentication,
		aspect.New("authn", aspect.KindAuthentication, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("open", aspect.KindSynchronization,
		aspect.New("sync-open", aspect.KindSynchronization, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("assign", aspect.KindSynchronization,
		aspect.New("sync-assign", aspect.KindSynchronization, nil, nil)); err != nil {
		t.Fatal(err)
	}

	layers := m.Describe()
	if len(layers) != 2 {
		t.Fatalf("layers = %d, want 2", len(layers))
	}
	if layers[0].Name != "security" || layers[1].Name != BaseLayer {
		t.Errorf("layer order = %s, %s", layers[0].Name, layers[1].Name)
	}
	sec := layers[0].Methods["open"]
	if len(sec) != 1 || sec[0].Name != "authn" || sec[0].Kind != aspect.KindAuthentication {
		t.Errorf("security open = %+v", sec)
	}
	base := layers[1].Methods
	if len(base["open"]) != 1 || len(base["assign"]) != 1 {
		t.Errorf("base methods = %+v", base)
	}

	rendered := m.DescribeString()
	for _, want := range []string{
		"component comp", "wake-single", "layer security", "layer base",
		"authn", "sync-open", "sync-assign",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("DescribeString missing %q:\n%s", want, rendered)
		}
	}
}

func TestDescribeEmptyModerator(t *testing.T) {
	m := New("comp")
	layers := m.Describe()
	if len(layers) != 1 || layers[0].Name != BaseLayer || len(layers[0].Methods) != 0 {
		t.Fatalf("describe = %+v", layers)
	}
	if s := m.DescribeString(); !strings.Contains(s, "wake-broadcast") {
		t.Errorf("render = %q", s)
	}
}
