package moderator

// Table-driven coverage of WakeSingle vs WakeBroadcast on per-domain
// queues, run against BOTH the sharded moderator and the single-mutex
// reference. Includes the heterogeneous-guard stranding case that the
// WakeSingle documentation warns about but nothing previously tested: the
// wake policy picks the queue's FIFO head, not the waiter the completed
// work actually made admissible, so a single wake can be consumed by a
// still-blocked waiter while an admissible one stays parked.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/aspect"
)

var wakeImpls = []struct {
	name string
	mk   func(opts ...Option) Admitter
}{
	{"sharded", func(opts ...Option) Admitter { return New("wp", opts...) }},
	{"reference", func(opts ...Option) Admitter { return NewReference("wp", opts...) }},
}

// admissionLock returns the lock under which a method's aspect hooks run,
// so tests can mutate guard state the way an external event source would.
func admissionLock(impl Admitter, method string) *sync.Mutex {
	switch v := impl.(type) {
	case *Moderator:
		return &v.domainFor(method).mu
	case *Reference:
		return &v.mu
	default:
		panic("unknown Admitter implementation")
	}
}

func waitWaiting(t *testing.T, impl Admitter, method string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for impl.Waiting(method) != n {
		if time.Now().After(deadline) {
			t.Fatalf("Waiting(%s) never reached %d (at %d)", method, n, impl.Waiting(method))
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func waitBlocks(t *testing.T, impl Admitter, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for impl.Stats().Blocks != want {
		if time.Now().After(deadline) {
			t.Fatalf("Blocks never reached %d (at %d)", want, impl.Stats().Blocks)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestWakeModeSemaphoreRelease: a capacity-1 semaphore holder completes
// while three callers wait. Both modes admit exactly one waiter — but
// WakeSingle wakes only the FIFO head (no extra guard evaluations), while
// WakeBroadcast wakes all three and re-parks the two losers, visible as
// two extra Block counts.
func TestWakeModeSemaphoreRelease(t *testing.T) {
	cases := []struct {
		name        string
		mode        WakeMode
		extraBlocks uint64
	}{
		{"single", WakeSingle, 0},
		{"broadcast", WakeBroadcast, 2},
	}
	for _, impl := range wakeImpls {
		for _, tc := range cases {
			t.Run(impl.name+"/"+tc.name, func(t *testing.T) {
				m := impl.mk(WithWakeMode(tc.mode))
				used := 0
				sem := &aspect.Func{
					AspectName: "sem",
					AspectKind: aspect.KindSynchronization,
					Pre: func(*aspect.Invocation) aspect.Verdict {
						if used >= 1 {
							return aspect.Block
						}
						used++
						return aspect.Resume
					},
					Post:     func(*aspect.Invocation) { used-- },
					CancelFn: func(*aspect.Invocation) { used-- },
					WakeList: []string{"m"},
				}
				if err := m.Register("m", aspect.KindSynchronization, sem); err != nil {
					t.Fatal(err)
				}

				holder := aspect.NewInvocation(context.Background(), "wp", "m", nil)
				holderAdm, err := m.Preactivation(holder)
				if err != nil {
					t.Fatal(err)
				}

				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				admitted := make(chan *Admission, 3)
				for i := 0; i < 3; i++ {
					go func() {
						inv := aspect.NewInvocation(ctx, "wp", "m", nil)
						adm, err := m.Preactivation(inv)
						if err == nil {
							admitted <- adm
						}
					}()
				}
				waitWaiting(t, m, "m", 3)
				if b := m.Stats().Blocks; b != 3 {
					t.Fatalf("blocks before release = %d, want 3", b)
				}

				m.Postactivation(holder, holderAdm)

				select {
				case <-admitted:
				case <-time.After(5 * time.Second):
					t.Fatal("no waiter admitted after release")
				}
				waitWaiting(t, m, "m", 2)
				waitBlocks(t, m, 3+tc.extraBlocks)
				select {
				case <-admitted:
					t.Fatal("second waiter admitted; capacity is 1")
				case <-time.After(20 * time.Millisecond):
				}
			})
		}
	}
}

// TestWakeModeHeterogeneousGuardStranding: two waiters share one
// (method, kind) queue but are blocked on DIFFERENT per-invocation needs —
// the first wants an apple, the second a banana. A banana arrives and the
// queue is kicked. Under WakeSingle the FIFO head (the apple-waiter) eats
// the only wake-up, re-parks, and the admissible banana-waiter stays
// stranded with its banana in stock. Under WakeBroadcast every waiter
// re-evaluates and the banana-waiter proceeds. This is the documented
// trade-off of WakeSingle with heterogeneous guards, now pinned by a test.
func TestWakeModeHeterogeneousGuardStranding(t *testing.T) {
	cases := []struct {
		name          string
		mode          WakeMode
		wantWaiting   int
		wantAdmitted  bool
		bananaInStock int
	}{
		{"single-strands", WakeSingle, 2, false, 1},
		{"broadcast-admits", WakeBroadcast, 1, true, 0},
	}
	for _, impl := range wakeImpls {
		for _, tc := range cases {
			t.Run(impl.name+"/"+tc.name, func(t *testing.T) {
				m := impl.mk(WithWakeMode(tc.mode))
				stock := map[string]int{}
				fruit := &aspect.Func{
					AspectName: "fruit-guard",
					AspectKind: aspect.KindSynchronization,
					Pre: func(inv *aspect.Invocation) aspect.Verdict {
						want, _ := inv.Arg(0).(string)
						if stock[want] == 0 {
							return aspect.Block
						}
						stock[want]--
						return aspect.Resume
					},
				}
				if err := m.Register("m", aspect.KindSynchronization, fruit); err != nil {
					t.Fatal(err)
				}

				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				admitted := make(chan string, 2)
				park := func(want string) {
					go func() {
						inv := aspect.NewInvocation(ctx, "wp", "m", []any{want})
						if _, err := m.Preactivation(inv); err == nil {
							admitted <- want
						}
					}()
				}
				// FIFO order matters: the apple-waiter must be the head.
				park("apple")
				waitWaiting(t, m, "m", 1)
				park("banana")
				waitWaiting(t, m, "m", 2)

				mu := admissionLock(m, "m")
				mu.Lock()
				stock["banana"] = 1
				mu.Unlock()
				m.Kick("m")

				if tc.wantAdmitted {
					select {
					case got := <-admitted:
						if got != "banana" {
							t.Fatalf("admitted %q, want banana", got)
						}
					case <-time.After(5 * time.Second):
						t.Fatal("banana-waiter never admitted")
					}
				} else {
					select {
					case got := <-admitted:
						t.Fatalf("%q admitted; WakeSingle should have stranded it behind the FIFO head", got)
					case <-time.After(50 * time.Millisecond):
					}
				}
				waitWaiting(t, m, "m", tc.wantWaiting)
				mu.Lock()
				got := stock["banana"]
				mu.Unlock()
				if got != tc.bananaInStock {
					t.Fatalf("bananas in stock = %d, want %d", got, tc.bananaInStock)
				}
			})
		}
	}
}

// TestWakeModeGroupedProducerConsumer: produce and consume share one
// admission domain (declared via the control aspect's wake list). Two
// consumers wait on an empty buffer; one produce makes exactly one item
// available. Both modes deliver exactly one consumer; broadcast shows the
// extra re-park of the loser.
func TestWakeModeGroupedProducerConsumer(t *testing.T) {
	cases := []struct {
		name        string
		mode        WakeMode
		extraBlocks uint64
	}{
		{"single", WakeSingle, 0},
		{"broadcast", WakeBroadcast, 1},
	}
	for _, impl := range wakeImpls {
		for _, tc := range cases {
			t.Run(impl.name+"/"+tc.name, func(t *testing.T) {
				m := impl.mk(WithWakeMode(tc.mode))
				items := 0
				if err := m.Register("consume", aspect.KindSynchronization, &aspect.Func{
					AspectName: "items-guard",
					AspectKind: aspect.KindSynchronization,
					Pre: func(*aspect.Invocation) aspect.Verdict {
						if items == 0 {
							return aspect.Block
						}
						items--
						return aspect.Resume
					},
					WakeList: []string{"produce", "consume"},
				}); err != nil {
					t.Fatal(err)
				}
				if err := m.Register("produce", aspect.KindSynchronization, &aspect.Func{
					AspectName: "producer",
					AspectKind: aspect.KindSynchronization,
					Post:       func(*aspect.Invocation) { items++ },
					WakeList:   []string{"produce", "consume"},
				}); err != nil {
					t.Fatal(err)
				}
				if sm, ok := m.(*Moderator); ok {
					// The wake lists must have auto-grouped the pair.
					groups := sm.Domains()
					if len(groups) != 1 || len(groups[0]) != 2 {
						t.Fatalf("produce/consume not auto-grouped: %v", groups)
					}
				}

				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				admitted := make(chan struct{}, 2)
				for i := 0; i < 2; i++ {
					go func() {
						inv := aspect.NewInvocation(ctx, "wp", "consume", nil)
						if _, err := m.Preactivation(inv); err == nil {
							admitted <- struct{}{}
						}
					}()
				}
				waitWaiting(t, m, "consume", 2)

				inv := aspect.NewInvocation(context.Background(), "wp", "produce", nil)
				adm, err := m.Preactivation(inv)
				if err != nil {
					t.Fatal(err)
				}
				m.Postactivation(inv, adm)

				select {
				case <-admitted:
				case <-time.After(5 * time.Second):
					t.Fatal("no consumer admitted after produce")
				}
				waitWaiting(t, m, "consume", 1)
				waitBlocks(t, m, 2+tc.extraBlocks)
				select {
				case <-admitted:
					t.Fatal("second consumer admitted; only one item was produced")
				case <-time.After(20 * time.Millisecond):
				}
			})
		}
	}
}
