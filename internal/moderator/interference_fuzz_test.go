package moderator

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/aspect"
)

// FuzzInterferenceChecker feeds the publish-time checker candidate
// compositions decoded from raw bytes and asserts soundness: a candidate
// that exhibits a known-invasive pattern by construction must NEVER be
// staged successfully. Over-flagging (refusing a pattern the predicate
// below calls safe) is allowed — the checker is conservative — but a
// false "safe" is a bug.
//
// Decoding: the input is consumed in 3-byte specs, at most 6:
//
//	b0: bits 0-1 method index (mod 3), bit 2 NonBlocking, bit 3
//	    registration kind (1 = synchronization, 0 = metrics)
//	b1: bits 0-2 wake mask over the method set
//	b2: bits 0-1 shared-instance id (specs with one id share one aspect
//	    instance; the first spec fixes its flags)
//
// The stable composition always has one private guard per method and all
// three admission domains active (one admission driven through each), so
// the invasive predicates below are exact:
//
//	capability:   an instance declares NonBlocking with a non-empty wake
//	              list
//	wake-overlap: a registration's wake span names a method other than
//	              its own (all domains are active and distinct, so the
//	              span cannot merge)
//	shared-guard: one stateful instance (blocking-capable: registered at
//	              synchronization kind or declaring wakes, and not
//	              NonBlocking) is registered on two distinct methods
func FuzzInterferenceChecker(f *testing.F) {
	// One known-invasive encoding per class, plus safe shapes.
	f.Add([]byte{0x0C, 0x02, 0x00})                   // capability: NonBlocking + wakes m1
	f.Add([]byte{0x08, 0x02, 0x00})                   // wake-overlap: guard on m0 wakes m1
	f.Add([]byte{0x08, 0x00, 0x01, 0x09, 0x00, 0x01}) // shared-guard: one sync instance on m0 and m1
	f.Add([]byte{0x00, 0x00, 0x00})                   // safe: private metrics veneer
	f.Add([]byte{0x0C, 0x00, 0x02, 0x0D, 0x00, 0x02}) // safe: shared NonBlocking instance, no wakes
	f.Add([]byte{0x08, 0x01, 0x00})                   // safe: guard wakes only its own method

	methods := []string{"m0", "m1", "m2"}

	f.Fuzz(func(t *testing.T, data []byte) {
		type spec struct {
			method   string
			kind     aspect.Kind
			instance *aspect.Func
		}
		instances := map[byte]*aspect.Func{}
		var specs []spec
		for i := 0; i+3 <= len(data) && len(specs) < 6; i += 3 {
			b0, b1, b2 := data[i], data[i+1], data[i+2]
			id := b2 % 4
			inst, ok := instances[id]
			if !ok {
				var wakes []string
				for bit, meth := range methods {
					if b1&(1<<bit) != 0 {
						wakes = append(wakes, meth)
					}
				}
				inst = &aspect.Func{
					AspectName:      fmt.Sprintf("fuzz-%d", id),
					AspectKind:      aspect.KindSynchronization,
					NonBlockingFlag: b0&0x04 != 0,
					WakeList:        wakes,
					Pre:             func(*aspect.Invocation) aspect.Verdict { return aspect.Resume },
				}
				instances[id] = inst
			}
			kind := aspect.KindMetrics
			if b0&0x08 != 0 {
				kind = aspect.KindSynchronization
			}
			specs = append(specs, spec{method: methods[b0%3], kind: kind, instance: inst})
		}
		if len(specs) == 0 {
			return
		}

		// Independent invasiveness predicate, straight from the decoded
		// specs — no checker internals involved.
		mustFlag := false
		stateful := func(s spec) bool {
			if s.instance.NonBlockingFlag {
				return false
			}
			return s.kind == aspect.KindSynchronization || len(s.instance.WakeList) > 0
		}
		bound := map[*aspect.Func]string{}
		for _, s := range specs {
			if s.instance.NonBlockingFlag && len(s.instance.WakeList) > 0 {
				mustFlag = true // capability
			}
			for _, w := range s.instance.WakeList {
				if w != s.method {
					mustFlag = true // wake-overlap: span crosses active domains
				}
			}
			if stateful(s) {
				if prev, ok := bound[s.instance]; ok && prev != s.method {
					mustFlag = true // shared-guard across distinct domains
				} else if !ok {
					bound[s.instance] = s.method
				}
			}
		}

		m := New("fuzz")
		for _, meth := range methods {
			if err := m.Register(meth, aspect.KindSynchronization, syncGuard("stable-"+meth)); err != nil {
				t.Fatal(err)
			}
			admitComplete(t, m, meth)
		}
		err := m.StageCanary(50, func(tx *CanaryTx) error {
			for _, s := range specs {
				if err := tx.Register(s.method, s.kind, s.instance); err != nil {
					return err
				}
			}
			return nil
		})
		if mustFlag {
			if err == nil {
				t.Fatalf("checker staged a known-invasive candidate: specs %+v", specs)
			}
			if !errors.Is(err, ErrInterference) {
				t.Fatalf("invasive candidate refused with a non-interference error: %v", err)
			}
		}
		if err == nil {
			// An accepted candidate must be live and promotable.
			if _, staged := m.CanaryInfo(); !staged {
				t.Fatal("accepted stage reports no canary")
			}
			if err := m.PromoteCanary(); err != nil {
				t.Fatalf("promote accepted candidate: %v", err)
			}
		}
	})
}
