package moderator

// False-sharing audit for the admission hot structures. The domain struct
// groups its synchronization words into cache-line-padded sections — the
// parking mutex, the optimistic guard cell, the admission counters, the
// optimistic-path counters, and the reclamation pins — because on a
// multi-socket box a spinning guardCell.tryLock and a mutex futex word on
// the same line would ping-pong it between cores on every admission. The
// audit pins the layout with unsafe.Offsetof so an innocent field
// reordering cannot silently fold two hot groups back onto one line.

import (
	"testing"
	"unsafe"
)

const cacheLine = 64

func TestDomainPaddingAudit(t *testing.T) {
	var d domain

	line := func(off uintptr) uintptr { return off / cacheLine }
	offMu := unsafe.Offsetof(d.mu)
	offCell := unsafe.Offsetof(d.cell)
	offAdm := unsafe.Offsetof(d.admissions)
	offOpt := unsafe.Offsetof(d.optAdmits)
	offPins := unsafe.Offsetof(d.pins)

	groups := []struct {
		name string
		off  uintptr
	}{
		{"mu", offMu},
		{"cell", offCell},
		{"admissions", offAdm},
		{"optAdmits", offOpt},
		{"pins", offPins},
	}
	for i := 0; i < len(groups); i++ {
		for j := i + 1; j < len(groups); j++ {
			if line(groups[i].off) == line(groups[j].off) {
				t.Errorf("domain.%s (offset %d) and domain.%s (offset %d) share cache line %d",
					groups[i].name, groups[i].off, groups[j].name, groups[j].off, line(groups[i].off))
			}
		}
	}

	// The trailing group members must not spill onto the next group's
	// line either: the last mutex-section field is ticketSeq, the last
	// stat is shadowTick, the last optimistic counter is optConflicts.
	if end := unsafe.Offsetof(d.ticketSeq) + unsafe.Sizeof(d.ticketSeq); line(end-1) == line(offCell) {
		t.Errorf("ticketSeq (ends %d) spills onto the guard cell's line", end)
	}
	if end := unsafe.Offsetof(d.shadowTick) + unsafe.Sizeof(d.shadowTick); line(end-1) == line(offOpt) {
		t.Errorf("shadowTick (ends %d) spills onto the optimistic counters' line", end)
	}
	if end := unsafe.Offsetof(d.optConflicts) + unsafe.Sizeof(d.optConflicts); line(end-1) == line(offPins) {
		t.Errorf("optConflicts (ends %d) spills onto the pins' line", end)
	}
}

func TestModeratorWaitersPadding(t *testing.T) {
	var m Moderator
	offWaiters := unsafe.Offsetof(m.waiters)

	// waiters is the hottest cross-domain word: every fast-path admission
	// reads it and every park writes it. Nothing else may live on its
	// line — neither the preceding admin/bookkeeping fields nor anything
	// after it (the trailing pad must reach the struct's end).
	line := func(off uintptr) uintptr { return off / cacheLine }
	for _, f := range []struct {
		name string
		off  uintptr
		sz   uintptr
	}{
		{"admitHook", unsafe.Offsetof(m.admitHook), unsafe.Sizeof(m.admitHook)},
		{"reclaimEra", unsafe.Offsetof(m.reclaimEra), unsafe.Sizeof(m.reclaimEra)},
		{"comp", unsafe.Offsetof(m.comp), unsafe.Sizeof(m.comp)},
		{"domains", unsafe.Offsetof(m.domains), unsafe.Sizeof(m.domains)},
	} {
		if line(f.off) == line(offWaiters) || line(f.off+f.sz-1) == line(offWaiters) {
			t.Errorf("Moderator.%s (offset %d, size %d) shares a cache line with waiters (offset %d)",
				f.name, f.off, f.sz, offWaiters)
		}
	}
	if rest := unsafe.Sizeof(m) - (offWaiters + unsafe.Sizeof(m.waiters)); rest < cacheLine {
		t.Errorf("only %d bytes of trailing pad after waiters, want >= %d", rest, cacheLine)
	}
}
