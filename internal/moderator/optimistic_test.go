package moderator

// Tests for the optimistic guard-cell admission path (optimistic.go):
// the happy path and its counters, the option gate, the two racy-window
// regression tests for the PR 2 stranded-caller bug class on the new
// path, and epoch-based snapshot reclamation (reclaim.go).

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aspect"
)

// optSemStack registers the canonical guarded-fast stack on method "m":
// a capacity-1 self-waking semaphore between two NonBlocking audits. It
// returns a func reading the semaphore's current occupancy.
func optSemStack(t *testing.T, m Admitter) func() int {
	t.Helper()
	var mu sync.Mutex
	used := 0
	pre := &aspect.Func{
		AspectName: "audit-pre", AspectKind: aspect.KindAudit, NonBlockingFlag: true,
	}
	sem := &aspect.Func{
		AspectName: "sem", AspectKind: aspect.KindSynchronization,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			mu.Lock()
			defer mu.Unlock()
			if used >= 1 {
				return aspect.Block
			}
			used++
			return aspect.Resume
		},
		Post: func(*aspect.Invocation) {
			mu.Lock()
			used--
			mu.Unlock()
		},
		CancelFn: func(*aspect.Invocation) {
			mu.Lock()
			used--
			mu.Unlock()
		},
		WakeList: []string{"m"},
	}
	post := &aspect.Func{
		AspectName: "audit-post", AspectKind: aspect.KindMetrics, NonBlockingFlag: true,
	}
	for _, reg := range []struct {
		kind aspect.Kind
		a    aspect.Aspect
	}{{aspect.KindAudit, pre}, {aspect.KindSynchronization, sem}, {aspect.KindMetrics, post}} {
		if err := m.Register("m", reg.kind, reg.a); err != nil {
			t.Fatal(err)
		}
	}
	return func() int {
		mu.Lock()
		defer mu.Unlock()
		return used
	}
}

func TestOptimisticGuardedAdmission(t *testing.T) {
	m := New("opt")
	occupancy := optSemStack(t, m)
	inv := aspect.NewInvocation(context.Background(), "opt", "m", nil)
	const rounds = 100
	for i := 0; i < rounds; i++ {
		adm, err := m.Preactivation(inv)
		if err != nil {
			t.Fatal(err)
		}
		if adm == nil || !adm.shared || !adm.fast {
			t.Fatalf("round %d: want the plan's shared fast receipt, got %+v", i, adm)
		}
		m.Postactivation(inv, adm)
	}
	os := m.OptimisticStats()
	if os.Admits != rounds || os.Completes != rounds {
		t.Fatalf("optimistic counters = %+v, want %d admits and completes", os, rounds)
	}
	if os.Parks != 0 || os.Fallbacks != 0 || os.Conflicts != 0 {
		t.Fatalf("uncontended run took fallbacks: %+v", os)
	}
	if got := occupancy(); got != 0 {
		t.Fatalf("semaphore leaked %d admissions", got)
	}
	st := m.Stats()
	if st.Admissions != rounds || st.Completions != rounds || st.Blocks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOptimisticAdmissionDisabled(t *testing.T) {
	m := New("opt", WithOptimisticAdmission(false))
	occupancy := optSemStack(t, m)
	inv := aspect.NewInvocation(context.Background(), "opt", "m", nil)
	for i := 0; i < 10; i++ {
		adm, err := m.Preactivation(inv)
		if err != nil {
			t.Fatal(err)
		}
		m.Postactivation(inv, adm)
	}
	if os := m.OptimisticStats(); os != (OptimisticStats{}) {
		t.Fatalf("optimistic path ran while disabled: %+v", os)
	}
	if st := m.Stats(); st.Admissions != 10 || st.Completions != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if got := occupancy(); got != 0 {
		t.Fatalf("semaphore leaked %d admissions", got)
	}
}

// TestOptimisticPreFallbackOnMidEvaluationWaiter pins the pre-activation
// half of the PR 2 stranded-caller bug class on the optimistic path: a
// waiter that appears AFTER the outer waiters gate passed but BEFORE the
// guard cell is acquired must force the mutex fallback, and no wake may
// be lost — every parked caller eventually admits.
func TestOptimisticPreFallbackOnMidEvaluationWaiter(t *testing.T) {
	m := New("opt")
	occupancy := optSemStack(t, m)

	// A takes the semaphore's only slot, optimistically.
	invA := aspect.NewInvocation(context.Background(), "opt", "m", nil)
	admA, err := m.Preactivation(invA)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct{ err error }
	results := make(chan outcome, 2)
	runCaller := func() {
		inv := aspect.NewInvocation(context.Background(), "opt", "m", nil)
		adm, err := m.Preactivation(inv)
		if err == nil {
			m.Postactivation(inv, adm)
		}
		results <- outcome{err}
	}

	// One-shot hook: when C's optimistic pre-activation is inside the racy
	// window, park B mid-flight. The hook runs before the cell is taken,
	// so B's own (mutex-path) park cannot deadlock against C.
	var fired atomic.Bool
	m.setAdmitHook(func(p admitPoint, _ *domain) {
		if p != hookOptimisticPre || !fired.CompareAndSwap(false, true) {
			return
		}
		go runCaller() // B: blocks on the held semaphore and parks
		waitWaiting(t, m, "m", 1)
	})

	go runCaller() // C: hits the hook, then must fall back and park too
	waitWaiting(t, m, "m", 2)
	m.setAdmitHook(nil)

	if os := m.OptimisticStats(); os.Fallbacks == 0 {
		t.Fatalf("expected a waiter-forced fallback, counters = %+v", os)
	}

	// A releases the slot; B and C must both admit and complete.
	m.Postactivation(invA, admA)
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("caller %d failed: %v", i, r.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("caller %d stranded: Waiting=%d stats=%+v opt=%+v",
				i, m.Waiting("m"), m.Stats(), m.OptimisticStats())
		}
	}
	if got := occupancy(); got != 0 {
		t.Fatalf("semaphore leaked %d admissions", got)
	}
	if m.Waiting("m") != 0 {
		t.Fatalf("callers still parked: %d", m.Waiting("m"))
	}
}

// TestOptimisticPostFallbackWakesWaiter pins the post-activation half: a
// caller that parks after the completer's outer waiters gate passed but
// before the guard cell is acquired must push the completion onto the
// mutex path, whose wake fan-out releases the waiter. Skipping the
// fan-out here is exactly how a caller would be stranded forever.
func TestOptimisticPostFallbackWakesWaiter(t *testing.T) {
	m := New("opt")
	occupancy := optSemStack(t, m)

	invA := aspect.NewInvocation(context.Background(), "opt", "m", nil)
	admA, err := m.Preactivation(invA)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	var fired atomic.Bool
	m.setAdmitHook(func(p admitPoint, _ *domain) {
		if p != hookOptimisticPost || !fired.CompareAndSwap(false, true) {
			return
		}
		go func() { // B: blocks on the held semaphore and parks
			inv := aspect.NewInvocation(context.Background(), "opt", "m", nil)
			adm, err := m.Preactivation(inv)
			if err == nil {
				m.Postactivation(inv, adm)
			}
			done <- err
		}()
		waitWaiting(t, m, "m", 1)
	})

	// A completes: the optimistic post must detect B and fall back; the
	// mutex path's fan-out then wakes B.
	m.Postactivation(invA, admA)
	m.setAdmitHook(nil)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("woken caller failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("caller stranded after optimistic completion: Waiting=%d opt=%+v",
			m.Waiting("m"), m.OptimisticStats())
	}
	if os := m.OptimisticStats(); os.Fallbacks == 0 {
		t.Fatalf("expected the completion to fall back, counters = %+v", os)
	}
	if got := occupancy(); got != 0 {
		t.Fatalf("semaphore leaked %d admissions", got)
	}
}

// TestOptimisticBlockHandoffParksOnce drives a Block verdict through the
// optimistic path and checks the handoff bookkeeping: the caller parks
// (counted once, like the Reference would), the optimistic evaluation is
// not re-run when nothing touched guard state, and the waiter
// pre-registration is balanced.
func TestOptimisticBlockHandoffParksOnce(t *testing.T) {
	m := New("opt")
	occupancy := optSemStack(t, m)

	invA := aspect.NewInvocation(context.Background(), "opt", "m", nil)
	admA, err := m.Preactivation(invA)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		inv := aspect.NewInvocation(context.Background(), "opt", "m", nil)
		adm, err := m.Preactivation(inv)
		if err == nil {
			m.Postactivation(inv, adm)
		}
		done <- err
	}()
	waitWaiting(t, m, "m", 1)
	if os := m.OptimisticStats(); os.Parks != 1 {
		t.Fatalf("optimistic parks = %+v, want exactly one handoff", os)
	}
	if st := m.Stats(); st.Blocks != 1 {
		t.Fatalf("blocks = %d, want 1 (the handoff must not double-count)", st.Blocks)
	}
	if w := m.waiters.Load(); w != 1 {
		t.Fatalf("waiters = %d, want 1 (pre-registration must be consumed by the park)", w)
	}
	m.Postactivation(invA, admA)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if w := m.waiters.Load(); w != 0 {
		t.Fatalf("waiters leaked: %d", w)
	}
	if got := occupancy(); got != 0 {
		t.Fatalf("semaphore leaked %d admissions", got)
	}
}

// TestOptimisticCancelWhileParked exercises the abandon path after an
// optimistic Block handoff: cancelling the parked caller must run Abandon
// and Cancel under the guard cell and leave the guard balanced.
func TestOptimisticCancelWhileParked(t *testing.T) {
	m := New("opt")
	occupancy := optSemStack(t, m)

	invA := aspect.NewInvocation(context.Background(), "opt", "m", nil)
	admA, err := m.Preactivation(invA)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		inv := aspect.NewInvocation(ctx, "opt", "m", nil)
		adm, err := m.Preactivation(inv)
		if err == nil {
			m.Postactivation(inv, adm)
		}
		done <- err
	}()
	waitWaiting(t, m, "m", 1)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled parked caller admitted")
	}
	if w := m.waiters.Load(); w != 0 {
		t.Fatalf("waiters leaked: %d", w)
	}
	m.Postactivation(invA, admA)
	if got := occupancy(); got != 0 {
		t.Fatalf("semaphore leaked %d admissions", got)
	}
	if st := m.Stats(); st.Aborts != 1 {
		t.Fatalf("aborts = %d, want 1", st.Aborts)
	}
}

func TestReclaimChurnDrains(t *testing.T) {
	m := New("reclaim")
	occupancy := optSemStack(t, m)
	inv := aspect.NewInvocation(context.Background(), "reclaim", "m", nil)
	const churns = 10
	for i := 0; i < churns; i++ {
		if err := m.RegisterIn(BaseLayer, "m", aspect.KindMetrics, &aspect.Func{
			AspectName: "churn", AspectKind: aspect.KindMetrics, NonBlockingFlag: true,
		}); err != nil {
			t.Fatal(err)
		}
		adm, err := m.Preactivation(inv)
		if err != nil {
			t.Fatal(err)
		}
		m.Postactivation(inv, adm)
		if _, err := m.Unregister(BaseLayer, "m", aspect.KindMetrics); err != nil {
			t.Fatal(err)
		}
	}
	rs := m.TryReclaim()
	if rs.Pending != 0 {
		t.Fatalf("quiescent moderator still holds %d retired snapshots: %+v", rs.Pending, rs)
	}
	if rs.Era < 2*churns || rs.Reclaimed != rs.Retired {
		t.Fatalf("reclaim stats = %+v, want era >= %d and everything reclaimed", rs, 2*churns)
	}
	if got := occupancy(); got != 0 {
		t.Fatalf("semaphore leaked %d admissions", got)
	}
}

// TestReclaimParkedCallerPins: a caller parked mid-pre-activation holds
// its era pin, so the snapshot it admitted under survives republication
// until the caller returns; afterwards the retired list drains to empty.
func TestReclaimParkedCallerPins(t *testing.T) {
	m := New("reclaim")
	occupancy := optSemStack(t, m)

	invA := aspect.NewInvocation(context.Background(), "reclaim", "m", nil)
	admA, err := m.Preactivation(invA)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { // parks under the current snapshot, pinning its era
		inv := aspect.NewInvocation(context.Background(), "reclaim", "m", nil)
		adm, err := m.Preactivation(inv)
		if err == nil {
			m.Postactivation(inv, adm)
		}
		done <- err
	}()
	waitWaiting(t, m, "m", 1)

	if err := m.RegisterIn(BaseLayer, "m", aspect.KindMetrics, &aspect.Func{
		AspectName: "churn", AspectKind: aspect.KindMetrics, NonBlockingFlag: true,
	}); err != nil {
		t.Fatal(err)
	}
	rs := m.TryReclaim()
	if rs.Pending == 0 {
		t.Fatalf("retired snapshot reclaimed while a parked caller pins its era: %+v", rs)
	}

	m.Postactivation(invA, admA)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rs = m.TryReclaim()
		if rs.Pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retired snapshots never drained: %+v", rs)
		}
		time.Sleep(time.Millisecond)
	}
	if got := occupancy(); got != 0 {
		t.Fatalf("semaphore leaked %d admissions", got)
	}
}
