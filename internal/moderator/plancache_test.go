package moderator

// Compiled-plan cache invalidation. Plans are resolved at publish time
// (republishLocked), so every composition mutation — RegisterIn,
// Unregister, AddLayer, RemoveLayer, GroupMethods — must atomically
// replace the plan a NEW invocation resolves, while in-flight invocations
// keep the snapshot they loaded. The deterministic tests below pin each
// mutation's visibility edge; the stress test races admissions against
// layer churn under -race and checks, for every invocation that ran
// inside a mutation-free window, that it saw exactly the published
// composition of that window.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aspect"
)

// markerAspect stamps an invocation attribute from its precondition so a
// caller can tell whether a given invocation ran it.
func markerAspect(name string, pure bool, key any) *aspect.Func {
	return &aspect.Func{
		AspectName:      name,
		AspectKind:      aspect.KindAudit,
		NonBlockingFlag: pure,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			inv.SetAttr(key, true)
			return aspect.Resume
		},
	}
}

func admitOnce(t *testing.T, m *Moderator, method string) *aspect.Invocation {
	t.Helper()
	inv := aspect.NewInvocation(context.Background(), "plan", method, nil)
	adm, err := m.Preactivation(inv)
	if err != nil {
		t.Fatalf("preactivation(%s): %v", method, err)
	}
	m.Postactivation(inv, adm)
	return inv
}

func TestPlanCacheInvalidationOnRegisterUnregister(t *testing.T) {
	t.Parallel()
	m := New("plan")
	type key struct{}
	if err := m.Register("m", aspect.KindAudit, markerAspect("mark", true, key{})); err != nil {
		t.Fatal(err)
	}
	if inv := admitOnce(t, m, "m"); inv.Attr(key{}) == nil {
		t.Fatal("registered aspect did not run")
	}
	if n, err := m.Unregister(BaseLayer, "m", aspect.KindAudit); err != nil || n != 1 {
		t.Fatalf("unregister: n=%d err=%v", n, err)
	}
	if inv := admitOnce(t, m, "m"); inv.Attr(key{}) != nil {
		t.Fatal("stale plan: unregistered aspect still ran")
	}
}

func TestPlanCacheInvalidationOnLayerChurn(t *testing.T) {
	t.Parallel()
	m := New("plan")
	type baseKey struct{}
	type fluxKey struct{}
	if err := m.Register("m", aspect.KindAudit, markerAspect("base-mark", true, baseKey{})); err != nil {
		t.Fatal(err)
	}
	if err := m.AddLayer("flux", Outermost); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterIn("flux", "m", aspect.KindAudit, markerAspect("flux-mark", false, fluxKey{})); err != nil {
		t.Fatal(err)
	}
	inv := admitOnce(t, m, "m")
	if inv.Attr(baseKey{}) == nil || inv.Attr(fluxKey{}) == nil {
		t.Fatal("layered plan incomplete")
	}
	if err := m.RemoveLayer("flux"); err != nil {
		t.Fatal(err)
	}
	inv = admitOnce(t, m, "m")
	if inv.Attr(fluxKey{}) != nil {
		t.Fatal("stale plan: removed layer's aspect still ran")
	}
	if inv.Attr(baseKey{}) == nil {
		t.Fatal("base aspect vanished with the removed layer")
	}
}

// TestPlanCacheRepointsDomainOnGrouping pins the groupLocked republish: a
// plan compiled before GroupMethods binds the method's pre-merge domain;
// if grouping did not recompile, a caller parked via the stale plan would
// sit on a queue Kick (which resolves the CURRENT domain table) can no
// longer reach, and would strand forever.
func TestPlanCacheRepointsDomainOnGrouping(t *testing.T) {
	t.Parallel()
	m := New("plan")
	open := false
	if err := m.Register("a", aspect.KindSynchronization, &aspect.Func{
		AspectName: "gate",
		AspectKind: aspect.KindSynchronization,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			if !open {
				return aspect.Block
			}
			return aspect.Resume
		},
		WakeList: []string{"a"},
	}); err != nil {
		t.Fatal(err)
	}
	// The registration above compiled a plan binding a's domain. Merge it
	// with b's (both untouched, so the merge is legal) — the plan must be
	// recompiled against the merged domain.
	if err := m.GroupMethods("b", "a"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		inv := aspect.NewInvocation(context.Background(), "plan", "a", nil)
		adm, err := m.Preactivation(inv)
		if err == nil {
			m.Postactivation(inv, adm)
		}
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for m.Waiting("a") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("caller never parked")
		}
		time.Sleep(50 * time.Microsecond)
	}
	open = true // racy only if the plan's domain diverged from Kick's
	m.Kick("a")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("kicked caller failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stale plan domain: kicked caller stayed parked")
	}
}

// TestPlanCacheInFlightKeepsSnapshot: an invocation admitted before a
// mutation completes under the composition it was admitted with, even
// after the aspect is unregistered mid-flight.
func TestPlanCacheInFlightKeepsSnapshot(t *testing.T) {
	t.Parallel()
	m := New("plan")
	var posts atomic.Int32
	if err := m.Register("m", aspect.KindAudit, &aspect.Func{
		AspectName:      "count",
		AspectKind:      aspect.KindAudit,
		NonBlockingFlag: true,
		Post:            func(*aspect.Invocation) { posts.Add(1) },
	}); err != nil {
		t.Fatal(err)
	}
	inv := aspect.NewInvocation(context.Background(), "plan", "m", nil)
	adm, err := m.Preactivation(inv)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := m.Unregister(BaseLayer, "m", aspect.KindAudit); err != nil || n != 1 {
		t.Fatalf("unregister: n=%d err=%v", n, err)
	}
	m.Postactivation(inv, adm)
	if posts.Load() != 1 {
		t.Fatalf("in-flight receipt lost its postaction: posts=%d", posts.Load())
	}
}

// TestPlanCacheChurnRace races a mutator (alternating AddLayer+RegisterIn
// and RemoveLayer of a "flux" layer) against admitting readers. Mutation
// counters bracket each mutation (started before, completed after), so a
// reader whose whole admission fell inside a mutation-free window knows
// exactly which composition was published and asserts it saw precisely
// that — new invocations see a mutation atomically, never a torn or stale
// plan. Run with -race for the memory-model half of the claim.
func TestPlanCacheChurnRace(t *testing.T) {
	t.Parallel()
	m := New("plan")
	type baseKey struct{}
	type fluxKey struct{}
	// Base guard is pure; the flux marker is not, so churn also toggles
	// the plan between fast-path-eligible and mutex-only.
	if err := m.Register("m", aspect.KindAudit, markerAspect("base-mark", true, baseKey{})); err != nil {
		t.Fatal(err)
	}
	flux := markerAspect("flux-mark", false, fluxKey{})

	var started, completed atomic.Uint64
	stop := make(chan struct{})
	var mutator sync.WaitGroup
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		for k := uint64(1); ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			started.Add(1)
			var err error
			if k%2 == 1 { // odd mutation: flux appears
				if err = m.AddLayer("flux", Outermost); err == nil {
					err = m.RegisterIn("flux", "m", aspect.KindAudit, flux)
				}
			} else { // even mutation: flux disappears
				err = m.RemoveLayer("flux")
			}
			if err != nil {
				panic(fmt.Sprintf("mutator: %v", err))
			}
			completed.Add(1)
		}
	}()

	const readers = 4
	wantChecked := uint64(400)
	if testing.Short() {
		wantChecked = 50
	}
	var checked atomic.Uint64
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(20 * time.Second)
			for checked.Load() < wantChecked && time.Now().Before(deadline) {
				before := completed.Load()
				inv := aspect.NewInvocation(context.Background(), "plan", "m", nil)
				adm, err := m.Preactivation(inv)
				if err != nil {
					errs <- err
					return
				}
				m.Postactivation(inv, adm)
				after := started.Load()
				if inv.Attr(baseKey{}) == nil {
					errs <- errors.New("base aspect missing from plan")
					return
				}
				if before != after {
					continue // a mutation overlapped: no stable state to assert
				}
				// Exactly `before` mutations had fully completed and none
				// started: flux is present iff that count is odd.
				sawFlux := inv.Attr(fluxKey{}) != nil
				if want := before%2 == 1; sawFlux != want {
					errs <- fmt.Errorf("after %d mutations: flux ran=%v, want %v (stale or torn plan)",
						before, sawFlux, want)
					return
				}
				checked.Add(1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	mutator.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got := checked.Load(); got < wantChecked {
		t.Fatalf("only %d/%d admissions landed in mutation-free windows; raceable but unasserted", got, wantChecked)
	}
}
