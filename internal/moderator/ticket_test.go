package moderator

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/waitq"
)

// TestStickyTicketPreservesFIFOAcrossReparks: a caller that is woken, fails
// its guard again, and re-parks must keep its original FIFO position.
// Without sticky arrival tickets it would move to the back of the queue.
func TestStickyTicketPreservesFIFOAcrossReparks(t *testing.T) {
	m := New("comp", WithWakeMode(WakeSingle), WithWakePolicy(waitq.FIFO))
	// A gate that admits only when `pass` contains the caller's id.
	pass := map[int]bool{}
	idKey := func(i *aspect.Invocation) int {
		n, _ := i.ArgInt(0)
		return n
	}
	gate := aspect.New("gate", "k", func(i *aspect.Invocation) aspect.Verdict {
		if pass[idKey(i)] {
			return aspect.Resume
		}
		return aspect.Block
	}, nil)
	if err := m.Register("m", "k", gate); err != nil {
		t.Fatal(err)
	}

	// Park callers 0, 1, 2 in order.
	admitted := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			inv := aspect.NewInvocation(context.Background(), "comp", "m", []any{i})
			adm, err := m.Preactivation(inv)
			if err != nil {
				return
			}
			admitted <- i
			m.Postactivation(inv, adm)
		}(i)
		waitParked(t, m, i+1)
	}

	// Wake callers with nobody passing: each woken caller fails its guard
	// and re-parks. Several transit cycles ensure re-park churn happens.
	for k := 0; k < 4; k++ {
		m.Kick("m")
		time.Sleep(time.Millisecond)
	}
	waitParked(t, m, 3)

	// Now admit in guard order 0,1,2 — FIFO must deliver them in original
	// arrival order even after the re-park churn.
	for i := 0; i < 3; i++ {
		m.domainFor("m").mu.Lock()
		pass[i] = true
		m.domainFor("m").mu.Unlock()
		m.Kick("m")
		select {
		case got := <-admitted:
			if got != i {
				t.Fatalf("admission %d: got caller %d, want %d", i, got, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("caller %d never admitted", i)
		}
		waitParked(t, m, 2-i)
	}
}

func waitParked(t *testing.T, m *Moderator, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for m.Waiting("m") != n {
		if time.Now().After(deadline) {
			t.Fatalf("parked count never reached %d (at %d)", n, m.Waiting("m"))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestKickHonorsWakeModes: with WakeBroadcast every waiter wakes; with
// WakeSingle exactly one does.
func TestKickHonorsWakeModes(t *testing.T) {
	for _, mode := range []WakeMode{WakeBroadcast, WakeSingle} {
		mode := mode
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			m := New("comp", WithWakeMode(mode))
			woken := 0
			gate := aspect.New("gate", "k", func(*aspect.Invocation) aspect.Verdict {
				woken++
				return aspect.Block
			}, nil)
			if err := m.Register("m", "k", gate); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			for i := 0; i < 3; i++ {
				go func() {
					_, _ = m.Preactivation(aspect.NewInvocation(ctx, "comp", "m", nil))
					done <- struct{}{}
				}()
			}
			waitParked(t, m, 3)
			m.domainFor("m").mu.Lock()
			before := woken
			m.domainFor("m").mu.Unlock()
			m.Kick("m")
			// Allow the woken callers to re-evaluate and re-park.
			waitParked(t, m, 3)
			m.domainFor("m").mu.Lock()
			delta := woken - before
			m.domainFor("m").mu.Unlock()
			want := 3
			if mode == WakeSingle {
				want = 1
			}
			if delta != want {
				t.Errorf("re-evaluations after kick = %d, want %d", delta, want)
			}
			cancel()
			for i := 0; i < 3; i++ {
				<-done
			}
		})
	}
}
