package moderator

// Tests for the snapshot memory model: Describe must read the same
// atomically-published composition snapshot as the admission hot path (no
// torn view during layer churn), and Admission receipts must stay valid
// across a concurrent RemoveLayer.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/aspect"
)

// TestDescribeNeverTearsDuringChurn: a churner builds up composition in a
// strict order — layer one gains aspect n1, then layer two gains aspect n2
// — and tears it down in reverse. At every instant, "n2 registered" implies
// "n1 registered". A Describe that snapshots each layer's bank separately
// (the pre-sharding implementation) can interleave with the churner and
// observe n2 without n1; the single atomic composition snapshot cannot.
func TestDescribeNeverTearsDuringChurn(t *testing.T) {
	for _, impl := range wakeImpls {
		t.Run(impl.name, func(t *testing.T) {
			m := impl.mk()
			n1 := aspect.New("n1", aspect.KindMetrics, nil, nil)
			n2 := aspect.New("n2", aspect.KindMetrics, nil, nil)

			stop := make(chan struct{})
			var churn sync.WaitGroup
			churn.Add(1)
			go func() {
				defer churn.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					steps := []func() error{
						func() error { return m.AddLayer("one", Outermost) },
						func() error { return m.RegisterIn("one", "m", aspect.KindMetrics, n1) },
						func() error { return m.AddLayer("two", Outermost) },
						func() error { return m.RegisterIn("two", "m", aspect.KindMetrics, n2) },
						func() error { _, err := m.Unregister("two", "m", aspect.KindMetrics); return err },
						func() error { return m.RemoveLayer("two") },
						func() error { _, err := m.Unregister("one", "m", aspect.KindMetrics); return err },
						func() error { return m.RemoveLayer("one") },
					}
					for _, step := range steps {
						if err := step(); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}()

			deadline := time.Now().Add(300 * time.Millisecond)
			reads := 0
			for time.Now().Before(deadline) {
				has := map[string]bool{}
				for _, layer := range m.Describe() {
					for _, aspects := range layer.Methods {
						for _, a := range aspects {
							has[a.Name] = true
						}
					}
				}
				if has["n2"] && !has["n1"] {
					close(stop)
					churn.Wait()
					t.Fatalf("torn Describe after %d reads: observed n2 without n1", reads)
				}
				reads++
			}
			close(stop)
			churn.Wait()
			if t.Failed() {
				t.FailNow()
			}
			if reads == 0 {
				t.Fatal("no Describe reads performed")
			}
		})
	}
}

// TestAdmissionReceiptSurvivesRemoveLayer: an invocation is admitted under
// a layer that is then removed while the method body "runs". The receipt
// holds the admitted aspect objects themselves — not bank coordinates — so
// post-activation must still run the removed layer's postactions (and the
// composition must already describe the layer as gone).
func TestAdmissionReceiptSurvivesRemoveLayer(t *testing.T) {
	for _, impl := range wakeImpls {
		t.Run(impl.name, func(t *testing.T) {
			m := impl.mk()
			var events []string
			mu := sync.Mutex{}
			record := func(ev string) {
				mu.Lock()
				events = append(events, ev)
				mu.Unlock()
			}
			tracer := &aspect.Func{
				AspectName: "aux-tracer",
				AspectKind: aspect.KindMetrics,
				Pre: func(*aspect.Invocation) aspect.Verdict {
					record("pre")
					return aspect.Resume
				},
				Post: func(*aspect.Invocation) { record("post") },
			}
			if err := m.AddLayer("aux", Outermost); err != nil {
				t.Fatal(err)
			}
			if err := m.RegisterIn("aux", "m", aspect.KindMetrics, tracer); err != nil {
				t.Fatal(err)
			}

			inv := aspect.NewInvocation(context.Background(), "comp", "m", nil)
			adm, err := m.Preactivation(inv)
			if err != nil {
				t.Fatal(err)
			}
			if adm.Len() != 1 {
				t.Fatalf("admitted %d aspects, want 1", adm.Len())
			}

			// The layer vanishes while the method body is in flight.
			if err := m.RemoveLayer("aux"); err != nil {
				t.Fatal(err)
			}
			for _, layer := range m.Describe() {
				if layer.Name == "aux" {
					t.Fatal("Describe still shows the removed layer")
				}
			}
			// New invocations no longer see the layer...
			inv2 := aspect.NewInvocation(context.Background(), "comp", "m", nil)
			adm2, err := m.Preactivation(inv2)
			if err != nil {
				t.Fatal(err)
			}
			if adm2.Len() != 0 {
				t.Fatalf("new invocation admitted %d aspects after removal, want 0", adm2.Len())
			}
			m.Postactivation(inv2, adm2)

			// ...but the in-flight receipt still drives the removed
			// layer's postaction.
			m.Postactivation(inv, adm)
			mu.Lock()
			defer mu.Unlock()
			if len(events) != 2 || events[0] != "pre" || events[1] != "post" {
				t.Fatalf("events = %v, want [pre post]", events)
			}
		})
	}
}

// TestGroupMethodsRejectsActiveMerge: merging two admission domains that
// have both already seen traffic must fail with ErrDomainActive — the
// guard contract ("all hooks of a group run under one mutex") cannot be
// retrofitted onto live domains.
func TestGroupMethodsRejectsActiveMerge(t *testing.T) {
	m := New("grp")
	for _, meth := range []string{"a", "b"} {
		inv := aspect.NewInvocation(context.Background(), "grp", meth, nil)
		adm, err := m.Preactivation(inv)
		if err != nil {
			t.Fatal(err)
		}
		m.Postactivation(inv, adm)
	}
	err := m.GroupMethods("a", "b")
	if err == nil {
		t.Fatal("grouping two active domains succeeded, want ErrDomainActive")
	}
	if !errorsIs(err, ErrDomainActive) {
		t.Fatalf("error = %v, want ErrDomainActive", err)
	}
	// Grouping an active domain with fresh methods is fine: the active
	// domain absorbs them.
	if err := m.GroupMethods("a", "c", "d"); err != nil {
		t.Fatalf("grouping active+fresh failed: %v", err)
	}
	groups := m.Domains()
	for _, g := range groups {
		has := map[string]bool{}
		for _, meth := range g {
			has[meth] = true
		}
		if has["a"] && (!has["c"] || !has["d"]) {
			t.Fatalf("a/c/d not merged: %v", groups)
		}
	}
}

// errorsIs avoids importing errors alongside the aspect package's
// re-exported sentinel comparisons elsewhere in this file.
func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
