package moderator

// The differential oracle: randomized op schedules (invoke / block / abort
// / cancel / kick / layer-churn / register-churn / canary-epoch churn —
// stage, set-fraction, promote, rollback) are replayed in lockstep
// against BOTH the sharded Moderator and the single-mutex Reference, and
// every observable — admission ledgers (Stats), waiting counts, admitted /
// parked / outcome sets, guard state, Describe snapshots, and per-invocation
// hook traces (onion ordering and rollback) — must be identical after every
// op.
//
// Determinism is what makes exact comparison possible: the harness issues
// one op at a time and waits for both implementations to quiesce (every
// in-flight caller parked) before comparing. Schedules are derived from a
// seed; a failure message always carries the seed, and
// `go test -run TestDifferentialOracle -v` replays it.
//
// Two scenario families keep the outcome deterministic despite wake-ups:
//
//   - WakeSingle + FIFO with per-method capacity/token guards: each wake
//     releases exactly one caller, chosen by sticky-ticket FIFO, so the
//     admission order is a pure function of the schedule. alpha and beta
//     are additionally grouped into one admission domain (exercising the
//     shared-domain code path) while keeping independent guards.
//   - WakeBroadcast with an all-or-nothing gate shared by the grouped
//     {alpha, beta}: when the gate opens every waiter admits, when it is
//     closed every arrival parks — no partial capacity to race for.
//
// The omega method is guarded (on and off) by a non-Waker aspect, so its
// completions exercise the conservative wake-everything path across all
// domains. The veneer layer appears and disappears mid-schedule, proving
// admission receipts outlive RemoveLayer identically in both
// implementations. The psi method carries a fully NonBlocking stack, so
// schedules mix the sharded moderator's lock-free fast path (and its
// fallbacks: active waiters, the impure veneer) with the guarded mutex
// path, replayed against the always-locked Reference.
//
// The kappa method is the guarded-fast family: a mixed stack — NonBlocking
// audits sandwiching a self-waking synchronization guard — that is
// optimistic-eligible on the sharded side. Uncontended kappa admissions
// commit through the seqlock guard cell without the domain mutex, while
// parked waiters anywhere force the same begins onto the mutex path, so
// every schedule races the optimistic protocol's gates (waiter check,
// cell acquisition, verdict handoff) against parking, cancellation, layer
// churn and canary routing — under exact hook-trace comparison with the
// Reference, which never has an optimistic path at all.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/aspect"
)

const diffIdxAttr = "diff-idx"

type diffResult struct {
	adm *Admission
	err error
}

type diffCall struct {
	idx    int
	inv    *aspect.Invocation
	cancel context.CancelFunc
	adm    *Admission
	done   chan diffResult
}

// diffGuards is the aspect-owned state of one scenario instance. Hooks
// mutate it under the implementation's admission locking; the harness only
// reads it at quiescence.
type diffGuards struct {
	UsedAlpha int
	UsedBeta  int
	UsedKappa int
	Tokens    int
	Open      bool
}

type diffConfig struct {
	mode          WakeMode
	capAlpha      int
	allMethods    []string
	beginMethods  []string
	veneerMethods []string
}

func newDiffConfig(mode WakeMode, rng *rand.Rand) diffConfig {
	cfg := diffConfig{mode: mode, capAlpha: 1 + rng.Intn(2)}
	if mode == WakeSingle {
		cfg.allMethods = []string{"alpha", "beta", "gamma", "delta", "omega", "refill", "psi", "kappa"}
		cfg.beginMethods = []string{"alpha", "alpha", "beta", "gamma", "gamma", "delta", "omega", "psi", "psi", "kappa", "kappa"}
		cfg.veneerMethods = []string{"alpha", "gamma", "psi", "kappa"}
	} else {
		cfg.allMethods = []string{"alpha", "beta", "delta", "omega", "toggle", "psi", "kappa"}
		cfg.beginMethods = []string{"alpha", "alpha", "beta", "beta", "delta", "omega", "psi", "psi", "kappa", "kappa"}
		cfg.veneerMethods = []string{"alpha", "beta", "psi", "kappa"}
	}
	return cfg
}

// rawAudit deliberately does NOT implement aspect.Waker: invocations it
// guards take the moderator's conservative wake-everything path.
type rawAudit struct{ s *diffScenario }

func (r *rawAudit) Name() string      { return "raw-audit" }
func (r *rawAudit) Kind() aspect.Kind { return aspect.KindAudit }
func (r *rawAudit) Precondition(inv *aspect.Invocation) aspect.Verdict {
	r.s.trace(inv, "resume:raw-audit")
	return aspect.Resume
}
func (r *rawAudit) Postaction(inv *aspect.Invocation) { r.s.trace(inv, "post:raw-audit") }

type diffScenario struct {
	t    *testing.T
	tag  string
	impl Admitter
	cfg  diffConfig

	inflight map[int]*diffCall // begun, Preactivation not yet returned
	admitted map[int]*diffCall // admitted, awaiting Postactivation
	outcomes map[int]string    // terminal outcome per invocation index

	g diffGuards

	raw    *rawAudit
	veneer *aspect.Func
	canary *aspect.Func

	trMu   sync.Mutex
	traces map[int][]string
}

func (s *diffScenario) trace(inv *aspect.Invocation, event string) {
	idx, ok := inv.Attr(diffIdxAttr).(int)
	if !ok {
		return
	}
	s.trMu.Lock()
	s.traces[idx] = append(s.traces[idx], event)
	s.trMu.Unlock()
}

// capSem is a per-method counting semaphore guard (deterministic under
// WakeSingle: one release wakes one FIFO waiter).
func (s *diffScenario) capSem(name, self string, capn int, used *int) *aspect.Func {
	return &aspect.Func{
		AspectName: name,
		AspectKind: aspect.KindSynchronization,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			if *used >= capn {
				s.trace(inv, "block:"+name)
				return aspect.Block
			}
			*used++
			s.trace(inv, "resume:"+name)
			return aspect.Resume
		},
		Post: func(inv *aspect.Invocation) {
			*used--
			s.trace(inv, "post:"+name)
		},
		CancelFn: func(inv *aspect.Invocation) {
			*used--
			s.trace(inv, "cancel:"+name)
		},
		WakeList: []string{self},
	}
}

func newDiffScenario(t *testing.T, tag string, impl Admitter, cfg diffConfig) *diffScenario {
	t.Helper()
	s := &diffScenario{
		t:        t,
		tag:      tag,
		impl:     impl,
		cfg:      cfg,
		inflight: make(map[int]*diffCall),
		admitted: make(map[int]*diffCall),
		outcomes: make(map[int]string),
		traces:   make(map[int][]string),
	}
	s.raw = &rawAudit{s: s}
	s.veneer = &aspect.Func{
		AspectName: "veneer-trace",
		AspectKind: aspect.KindMetrics,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			s.trace(inv, "resume:veneer-trace")
			return aspect.Resume
		},
		Post:     func(inv *aspect.Invocation) { s.trace(inv, "post:veneer-trace") },
		CancelFn: func(inv *aspect.Invocation) { s.trace(inv, "cancel:veneer-trace") },
	}
	// The candidate-only trace aspect: invocations routed to a staged
	// canary epoch (and, after promote, all invocations) record its
	// events, so the hook-trace comparison pins canary routing exactly.
	s.canary = &aspect.Func{
		AspectName: "canary-trace",
		AspectKind: aspect.KindMetrics,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			s.trace(inv, "resume:canary-trace")
			return aspect.Resume
		},
		Post:     func(inv *aspect.Invocation) { s.trace(inv, "post:canary-trace") },
		CancelFn: func(inv *aspect.Invocation) { s.trace(inv, "cancel:canary-trace") },
	}

	// alpha and beta share one admission domain but keep independent
	// guards, so WakeSingle outcomes stay a pure function of the schedule.
	if err := impl.GroupMethods("alpha", "beta"); err != nil {
		t.Fatalf("%s: group: %v", tag, err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatalf("%s: setup: %v", tag, err)
		}
	}
	if cfg.mode == WakeSingle {
		must(impl.Register("alpha", aspect.KindSynchronization, s.capSem("cap-alpha", "alpha", cfg.capAlpha, &s.g.UsedAlpha)))
		must(impl.Register("beta", aspect.KindSynchronization, s.capSem("cap-beta", "beta", 1, &s.g.UsedBeta)))
		must(impl.Register("gamma", aspect.KindSynchronization, &aspect.Func{
			AspectName: "token-gate",
			AspectKind: aspect.KindSynchronization,
			Pre: func(inv *aspect.Invocation) aspect.Verdict {
				if s.g.Tokens == 0 {
					s.trace(inv, "block:token-gate")
					return aspect.Block
				}
				s.g.Tokens--
				s.trace(inv, "resume:token-gate")
				return aspect.Resume
			},
			Post:     func(inv *aspect.Invocation) { s.trace(inv, "post:token-gate") },
			WakeList: []string{"gamma"},
		}))
		// refill's wake list spans gamma: registering it auto-groups
		// {gamma, refill} into one domain on the sharded implementation.
		must(impl.Register("refill", aspect.KindScheduling, &aspect.Func{
			AspectName: "refill-ctl",
			AspectKind: aspect.KindScheduling,
			Pre: func(inv *aspect.Invocation) aspect.Verdict {
				s.trace(inv, "resume:refill-ctl")
				return aspect.Resume
			},
			Post: func(inv *aspect.Invocation) {
				s.g.Tokens++
				s.trace(inv, "post:refill-ctl")
			},
			WakeList: []string{"gamma", "refill"},
		}))
	} else {
		gate := &aspect.Func{
			AspectName: "gate",
			AspectKind: aspect.KindSynchronization,
			Pre: func(inv *aspect.Invocation) aspect.Verdict {
				if !s.g.Open {
					s.trace(inv, "block:gate")
					return aspect.Block
				}
				s.trace(inv, "resume:gate")
				return aspect.Resume
			},
			Post:     func(inv *aspect.Invocation) { s.trace(inv, "post:gate") },
			WakeList: []string{"alpha", "beta"},
		}
		must(impl.Register("alpha", aspect.KindSynchronization, gate))
		must(impl.Register("beta", aspect.KindSynchronization, gate))
		must(impl.Register("toggle", aspect.KindScheduling, &aspect.Func{
			AspectName: "toggle-ctl",
			AspectKind: aspect.KindScheduling,
			Pre: func(inv *aspect.Invocation) aspect.Verdict {
				s.trace(inv, "resume:toggle-ctl")
				return aspect.Resume
			},
			Post: func(inv *aspect.Invocation) {
				s.g.Open, _ = inv.Arg(0).(bool)
				s.trace(inv, "post:toggle-ctl")
			},
			WakeList: []string{"alpha", "beta", "toggle", "kappa"},
		}))
	}
	// kappa: the guarded-fast stack. NonBlocking audits around one
	// synchronization guard whose wake list targets only kappa itself, so
	// the sharded implementation's compiler marks the plan
	// optimistic-eligible: uncontended begins commit under the seqlock
	// guard cell, contended ones fall back to the domain mutex — both
	// against the Reference's single always-locked path. Under WakeSingle
	// the guard is a capacity-1 semaphore (FIFO-deterministic); under
	// WakeBroadcast it is an all-or-nothing view of the shared gate state
	// (toggle-ctl wakes kappa when it flips), so outcomes stay a pure
	// function of the schedule in both modes.
	must(impl.Register("kappa", aspect.KindAudit, &aspect.Func{
		AspectName:      "kappa-audit",
		AspectKind:      aspect.KindAudit,
		NonBlockingFlag: true,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			s.trace(inv, "resume:kappa-audit")
			return aspect.Resume
		},
		Post:     func(inv *aspect.Invocation) { s.trace(inv, "post:kappa-audit") },
		CancelFn: func(inv *aspect.Invocation) { s.trace(inv, "cancel:kappa-audit") },
	}))
	if cfg.mode == WakeSingle {
		must(impl.Register("kappa", aspect.KindSynchronization, s.capSem("cap-kappa", "kappa", 1, &s.g.UsedKappa)))
	} else {
		must(impl.Register("kappa", aspect.KindSynchronization, &aspect.Func{
			AspectName: "gate-kappa",
			AspectKind: aspect.KindSynchronization,
			Pre: func(inv *aspect.Invocation) aspect.Verdict {
				if !s.g.Open {
					s.trace(inv, "block:gate-kappa")
					return aspect.Block
				}
				s.trace(inv, "resume:gate-kappa")
				return aspect.Resume
			},
			Post:     func(inv *aspect.Invocation) { s.trace(inv, "post:gate-kappa") },
			WakeList: []string{"kappa"},
		}))
	}
	must(impl.Register("kappa", aspect.KindMetrics, &aspect.Func{
		AspectName:      "kappa-metrics",
		AspectKind:      aspect.KindMetrics,
		NonBlockingFlag: true,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			s.trace(inv, "resume:kappa-metrics")
			return aspect.Resume
		},
		Post:     func(inv *aspect.Invocation) { s.trace(inv, "post:kappa-metrics") },
		CancelFn: func(inv *aspect.Invocation) { s.trace(inv, "cancel:kappa-metrics") },
	}))
	// delta: the probe admits first, then the aborter may reject the
	// invocation — rolling the probe's admission back via Cancel.
	must(impl.Register("delta", aspect.KindAudit, &aspect.Func{
		AspectName: "probe",
		AspectKind: aspect.KindAudit,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			s.trace(inv, "resume:probe")
			return aspect.Resume
		},
		Post:     func(inv *aspect.Invocation) { s.trace(inv, "post:probe") },
		CancelFn: func(inv *aspect.Invocation) { s.trace(inv, "cancel:probe") },
	}))
	must(impl.Register("delta", aspect.KindAuthentication, &aspect.Func{
		AspectName: "aborter",
		AspectKind: aspect.KindAuthentication,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			if flag, _ := inv.Arg(0).(bool); flag {
				s.trace(inv, "abort:aborter")
				return aspect.Abort
			}
			s.trace(inv, "resume:aborter")
			return aspect.Resume
		},
		Post: func(inv *aspect.Invocation) { s.trace(inv, "post:aborter") },
	}))
	// psi: a fully pure stack — every guard declares NonBlocking, so the
	// sharded implementation may admit it on the lock-free fast path
	// (when nothing is parked) while the Reference always takes its one
	// mutex. Every observable must still agree, including rollback order
	// when the pure gate aborts, and the veneer layer (whose trace aspect
	// is NOT NonBlocking) toggles the plan between pure and impure
	// mid-schedule.
	must(impl.Register("psi", aspect.KindAudit, &aspect.Func{
		AspectName:      "pure-audit",
		AspectKind:      aspect.KindAudit,
		NonBlockingFlag: true,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			s.trace(inv, "resume:pure-audit")
			return aspect.Resume
		},
		Post:     func(inv *aspect.Invocation) { s.trace(inv, "post:pure-audit") },
		CancelFn: func(inv *aspect.Invocation) { s.trace(inv, "cancel:pure-audit") },
	}))
	must(impl.Register("psi", aspect.KindAuthentication, &aspect.Func{
		AspectName:      "pure-gate",
		AspectKind:      aspect.KindAuthentication,
		NonBlockingFlag: true,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			if flag, _ := inv.Arg(0).(bool); flag {
				s.trace(inv, "abort:pure-gate")
				return aspect.Abort
			}
			s.trace(inv, "resume:pure-gate")
			return aspect.Resume
		},
		Post: func(inv *aspect.Invocation) { s.trace(inv, "post:pure-gate") },
	}))
	return s
}

func (s *diffScenario) begin(idx int, method string, flag bool) {
	ctx, cancel := context.WithCancel(context.Background())
	inv := aspect.NewInvocation(ctx, "diff", method, []any{flag})
	inv.SetAttr(diffIdxAttr, idx)
	// A schedule-determined routing identity: canary routing must pick the
	// same epoch for invocation idx on both implementations (inv.ID() is
	// process-global and would differ between the two instances).
	inv.RouteKey = uint64(idx) + 1
	c := &diffCall{idx: idx, inv: inv, cancel: cancel, done: make(chan diffResult, 1)}
	s.inflight[idx] = c
	go func() {
		adm, err := s.impl.Preactivation(inv)
		c.done <- diffResult{adm: adm, err: err}
	}()
}

func (s *diffScenario) finish(idx int) {
	c := s.admitted[idx]
	if c == nil {
		s.t.Fatalf("%s: finish(%d): not admitted", s.tag, idx)
	}
	s.impl.Postactivation(c.inv, c.adm)
	delete(s.admitted, idx)
	s.outcomes[idx] = "completed"
	c.cancel()
}

func (s *diffScenario) cancelParked(idx int) {
	c := s.inflight[idx]
	if c == nil {
		s.t.Fatalf("%s: cancel(%d): not in flight", s.tag, idx)
	}
	c.cancel()
	r := <-c.done
	delete(s.inflight, idx)
	if r.err == nil {
		// The wake raced the cancellation and admitted the caller; keep
		// the receipt so the ledger still balances. The cross-impl
		// comparison will catch any divergence.
		c.adm = r.adm
		s.admitted[idx] = c
		return
	}
	s.outcomes[idx] = classifyErr(r.err)
}

// invokeNow runs a never-blocking control invocation synchronously.
func (s *diffScenario) invokeNow(idx int, method string, args []any) {
	inv := aspect.NewInvocation(context.Background(), "diff", method, args)
	inv.SetAttr(diffIdxAttr, idx)
	inv.RouteKey = uint64(idx) + 1
	adm, err := s.impl.Preactivation(inv)
	if err != nil {
		s.t.Fatalf("%s: invokeNow(%s): %v", s.tag, method, err)
	}
	s.impl.Postactivation(inv, adm)
	s.outcomes[idx] = "completed"
}

func classifyErr(err error) string {
	switch {
	case errors.Is(err, context.Canceled):
		return "cancelled"
	case errors.Is(err, aspect.ErrAborted):
		return "aborted"
	default:
		return "error"
	}
}

func (s *diffScenario) drainResults() {
	for idx, c := range s.inflight {
		select {
		case r := <-c.done:
			delete(s.inflight, idx)
			if r.err != nil {
				s.outcomes[idx] = classifyErr(r.err)
				continue
			}
			c.adm = r.adm
			s.admitted[idx] = c
		default:
		}
	}
}

func (s *diffScenario) parkedTotal() int {
	n := 0
	for _, meth := range s.cfg.allMethods {
		n += s.impl.Waiting(meth)
	}
	return n
}

// quiesce waits until every in-flight caller is parked on a wait queue (or
// has delivered its result): the implementation is then at rest and every
// observable is stable.
func (s *diffScenario) quiesce(seed int64) {
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		s.drainResults()
		if len(s.inflight) == s.parkedTotal() {
			runtime.Gosched()
			s.drainResults()
			if len(s.inflight) == s.parkedTotal() {
				return
			}
		}
		if time.Now().After(deadline) {
			s.t.Fatalf("seed %d: %s never quiesced (inflight=%d parked=%d)",
				seed, s.tag, len(s.inflight), s.parkedTotal())
		}
		if i > 200 {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func sortedCallKeys(m map[int]*diffCall) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func pickCall(m map[int]*diffCall, sel int) (int, bool) {
	if len(m) == 0 {
		return 0, false
	}
	keys := sortedCallKeys(m)
	return keys[sel%len(keys)], true
}

func compareScenarios(t *testing.T, seed int64, step int, a, b *diffScenario) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("seed %d step %d: %s", seed, step, fmt.Sprintf(format, args...))
	}
	for _, meth := range a.cfg.allMethods {
		if aw, bw := a.impl.Waiting(meth), b.impl.Waiting(meth); aw != bw {
			fail("Waiting(%s): sharded=%d reference=%d", meth, aw, bw)
		}
	}
	if ak, bk := sortedCallKeys(a.inflight), sortedCallKeys(b.inflight); !reflect.DeepEqual(ak, bk) {
		fail("parked sets diverge: sharded=%v reference=%v", ak, bk)
	}
	if ak, bk := sortedCallKeys(a.admitted), sortedCallKeys(b.admitted); !reflect.DeepEqual(ak, bk) {
		fail("admitted sets diverge: sharded=%v reference=%v", ak, bk)
	}
	if !reflect.DeepEqual(a.outcomes, b.outcomes) {
		fail("outcomes diverge: sharded=%v reference=%v", a.outcomes, b.outcomes)
	}
	if a.g != b.g {
		fail("guard state diverges: sharded=%+v reference=%+v", a.g, b.g)
	}
	if as, bs := a.impl.Stats(), b.impl.Stats(); as != bs {
		fail("admission ledgers diverge: sharded=%+v reference=%+v", as, bs)
	}
	if ad, bd := a.impl.Describe(), b.impl.Describe(); !reflect.DeepEqual(ad, bd) {
		fail("Describe diverges:\nsharded:   %+v\nreference: %+v", ad, bd)
	}
	if ae, be := a.impl.Epoch(), b.impl.Epoch(); ae != be {
		fail("plan epochs diverge: sharded=%d reference=%d", ae, be)
	}
	ai, aStaged := a.impl.CanaryInfo()
	bi, bStaged := b.impl.CanaryInfo()
	if aStaged != bStaged || !reflect.DeepEqual(ai, bi) {
		fail("canary state diverges: sharded=%+v(%v) reference=%+v(%v)", ai, aStaged, bi, bStaged)
	}
}

const (
	opBegin = iota
	opFinish
	opCancel
	opKick
	opControl // refill (single) / toggle (broadcast)
	opVeneer  // add or remove the transient veneer layer
	opOmega   // register or unregister the non-Waker audit on omega
	opCanary  // stage / set-fraction / promote / rollback a canary epoch
	opKinds
)

type diffOp struct {
	kind   int
	method string
	flag   bool
	sel    int
}

func genSchedule(rng *rand.Rand, cfg diffConfig, n int) []diffOp {
	ops := make([]diffOp, n)
	for i := range ops {
		r := rng.Intn(100)
		op := diffOp{sel: rng.Intn(1 << 30), flag: rng.Intn(3) == 0}
		switch {
		case r < 36:
			op.kind = opBegin
			op.method = cfg.beginMethods[rng.Intn(len(cfg.beginMethods))]
		case r < 60:
			op.kind = opFinish
		case r < 70:
			op.kind = opCancel
		case r < 77:
			op.kind = opKick
			op.method = cfg.allMethods[rng.Intn(len(cfg.allMethods))]
		case r < 85:
			op.kind = opControl
			op.flag = rng.Intn(2) == 0
		case r < 90:
			op.kind = opVeneer
		case r < 93:
			op.kind = opOmega
		default:
			op.kind = opCanary
		}
		ops[i] = op
	}
	return ops
}

// runDiffSchedule replays one seeded schedule against both implementations
// in lockstep and compares every observable after every op.
func runDiffSchedule(t *testing.T, seed int64, mode WakeMode) {
	t.Helper()
	runDiffScheduleCfg(t, seed, mode, nil)
}

// runDiffScheduleCfg replays one schedule and returns the sharded side's
// ring counters so batched-family callers can assert the rings engaged.
// extra options apply to the sharded implementation only.
func runDiffScheduleCfg(t *testing.T, seed int64, mode WakeMode, tweak func(*diffConfig), extra ...Option) RingStats {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := newDiffConfig(mode, rng)
	if tweak != nil {
		tweak(&cfg)
	}

	a := newDiffScenario(t, "sharded", New("diff", append([]Option{WithWakeMode(mode)}, extra...)...), cfg)
	b := newDiffScenario(t, "reference", NewReference("diff", WithWakeMode(mode)), cfg)

	ops := genSchedule(rng, cfg, 20+rng.Intn(21))
	nextIdx := 0
	veneerOn, omegaOn := false, false
	canaryGen := 0
	canaryStaged := false
	var stageVeneerOn, stageOmegaOn bool
	canaryPcts := []int{0, 25, 100}

	apply := func(step int, f func(s *diffScenario)) {
		f(a)
		f(b)
		a.quiesce(seed)
		b.quiesce(seed)
		compareScenarios(t, seed, step, a, b)
	}

	for step, op := range ops {
		switch op.kind {
		case opBegin:
			idx := nextIdx
			nextIdx++
			apply(step, func(s *diffScenario) { s.begin(idx, op.method, op.flag) })
		case opFinish:
			idx, ok := pickCall(a.admitted, op.sel)
			if !ok {
				continue
			}
			apply(step, func(s *diffScenario) { s.finish(idx) })
		case opCancel:
			idx, ok := pickCall(a.inflight, op.sel)
			if !ok {
				continue
			}
			apply(step, func(s *diffScenario) { s.cancelParked(idx) })
		case opKick:
			apply(step, func(s *diffScenario) { s.impl.Kick(op.method) })
		case opControl:
			idx := nextIdx
			nextIdx++
			if mode == WakeSingle {
				apply(step, func(s *diffScenario) { s.invokeNow(idx, "refill", nil) })
			} else {
				apply(step, func(s *diffScenario) { s.invokeNow(idx, "toggle", []any{op.flag}) })
			}
		case opVeneer:
			if !veneerOn {
				apply(step, func(s *diffScenario) {
					if err := s.impl.AddLayer("veneer", Outermost); err != nil {
						t.Fatalf("seed %d: %s: add veneer: %v", seed, s.tag, err)
					}
					for _, meth := range cfg.veneerMethods {
						if err := s.impl.RegisterIn("veneer", meth, aspect.KindMetrics, s.veneer); err != nil {
							t.Fatalf("seed %d: %s: register veneer: %v", seed, s.tag, err)
						}
					}
				})
			} else {
				// In-flight receipts keep the removed layer's aspects:
				// their postactions must still run (checked via traces).
				apply(step, func(s *diffScenario) {
					if err := s.impl.RemoveLayer("veneer"); err != nil {
						t.Fatalf("seed %d: %s: remove veneer: %v", seed, s.tag, err)
					}
				})
			}
			veneerOn = !veneerOn
		case opOmega:
			if !omegaOn {
				apply(step, func(s *diffScenario) {
					if err := s.impl.Register("omega", aspect.KindAudit, s.raw); err != nil {
						t.Fatalf("seed %d: %s: register omega: %v", seed, s.tag, err)
					}
				})
			} else {
				apply(step, func(s *diffScenario) {
					if _, err := s.impl.Unregister(BaseLayer, "omega", aspect.KindAudit); err != nil {
						t.Fatalf("seed %d: %s: unregister omega: %v", seed, s.tag, err)
					}
				})
			}
			omegaOn = !omegaOn
		case opCanary:
			if !canaryStaged {
				// Stage a candidate epoch: the stable composition plus a
				// candidate-only outermost trace layer, at a deterministic
				// fraction. The candidate is checker-safe by construction,
				// so both implementations must accept it.
				canaryGen++
				layer := fmt.Sprintf("canary-%d", canaryGen)
				pct := canaryPcts[op.sel%len(canaryPcts)]
				stageVeneerOn, stageOmegaOn = veneerOn, omegaOn
				apply(step, func(s *diffScenario) {
					err := s.impl.StageCanary(pct, func(tx *CanaryTx) error {
						if err := tx.AddLayer(layer, Outermost); err != nil {
							return err
						}
						for _, meth := range cfg.veneerMethods {
							if err := tx.RegisterIn(layer, meth, aspect.KindMetrics, s.canary); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						t.Fatalf("seed %d: %s: stage canary: %v", seed, s.tag, err)
					}
				})
				canaryStaged = true
			} else {
				switch op.sel % 4 {
				case 0:
					apply(step, func(s *diffScenario) {
						if err := s.impl.PromoteCanary(); err != nil {
							t.Fatalf("seed %d: %s: promote canary: %v", seed, s.tag, err)
						}
					})
					// The promoted composition is the stage-time clone, so
					// the harness's view of the mutable layers rewinds with
					// it: churn applied to the stable epoch while the
					// candidate was staged is gone.
					veneerOn, omegaOn = stageVeneerOn, stageOmegaOn
					canaryStaged = false
				case 1:
					apply(step, func(s *diffScenario) {
						if err := s.impl.RollbackCanary(); err != nil {
							t.Fatalf("seed %d: %s: rollback canary: %v", seed, s.tag, err)
						}
					})
					canaryStaged = false
				default:
					pct := canaryPcts[(op.sel/4)%len(canaryPcts)]
					apply(step, func(s *diffScenario) {
						if err := s.impl.SetCanaryFraction(pct); err != nil {
							t.Fatalf("seed %d: %s: set canary fraction: %v", seed, s.tag, err)
						}
					})
				}
			}
		}
	}

	// Drain: cancel every parked caller, then complete every admission.
	for len(a.inflight) > 0 {
		idx := sortedCallKeys(a.inflight)[0]
		apply(len(ops), func(s *diffScenario) { s.cancelParked(idx) })
	}
	for len(a.admitted) > 0 {
		idx := sortedCallKeys(a.admitted)[0]
		apply(len(ops)+1, func(s *diffScenario) { s.finish(idx) })
	}

	// Final ledger and hook-trace equality: same admissions, blocks,
	// aborts, completions; same onion ordering and rollback per
	// invocation.
	if as, bs := a.impl.Stats(), b.impl.Stats(); as != bs {
		t.Fatalf("seed %d: final ledgers diverge: sharded=%+v reference=%+v", seed, as, bs)
	}
	a.trMu.Lock()
	b.trMu.Lock()
	equal := reflect.DeepEqual(a.traces, b.traces)
	a.trMu.Unlock()
	b.trMu.Unlock()
	if !equal {
		t.Fatalf("seed %d: hook traces diverge:\nsharded:   %v\nreference: %v",
			seed, a.traces, b.traces)
	}
	return a.impl.(*Moderator).RingStats()
}

func diffScheduleCount() int {
	if testing.Short() {
		return 60
	}
	return 520 // ×2 modes ⇒ >1000 schedules per full run
}

func TestDifferentialOracleSingleWake(t *testing.T) {
	t.Parallel()
	for i := 0; i < diffScheduleCount(); i++ {
		seed := int64(0xC0FFEE) + int64(i)
		runDiffSchedule(t, seed, WakeSingle)
	}
}

func TestDifferentialOracleBroadcastWake(t *testing.T) {
	t.Parallel()
	for i := 0; i < diffScheduleCount(); i++ {
		seed := int64(0xBEEF00) + int64(i)
		runDiffSchedule(t, seed, WakeBroadcast)
	}
}

// TestDifferentialOracleGuardedFast skews the begin distribution toward
// the guarded-fast kappa stack (with psi mixed in, so pure fast-path and
// optimistic guarded admissions race the same parked waiters) across both
// wake modes. Together with the two base oracles this puts the optimistic
// guard-cell protocol under 1500+ lockstep schedules per full run.
func TestDifferentialOracleGuardedFast(t *testing.T) {
	t.Parallel()
	kappaHeavy := func(cfg *diffConfig) {
		cfg.beginMethods = []string{"kappa", "kappa", "kappa", "kappa", "psi", "alpha", "kappa", "psi", "kappa"}
	}
	for i := 0; i < diffScheduleCount(); i++ {
		mode := WakeSingle
		if i%2 == 1 {
			mode = WakeBroadcast
		}
		runDiffScheduleCfg(t, int64(0xFACADE)+int64(i), mode, kappaHeavy)
	}
}

// TestDifferentialOracleBatched is the batched-admission oracle family:
// the sharded side runs with optimistic admission OFF, so every guarded
// begin that PR 7 would have committed through the seqlock submits through
// its domain's ring instead. Schedules therefore mix ring arrivals, mutex
// re-entries (waiters resumed off a drainer's carried verdict) and the
// pure lock-free fast path — against the Reference, which has no ring at
// all. Beyond zero divergences, the run asserts the rings actually carried
// traffic, so a silent routing regression cannot pass. The contention gate
// is off: the oracle pins the semantics of ops that DO ride the ring, and
// a lockstep schedule rarely has the mutex observably held at probe time.
func TestDifferentialOracleBatched(t *testing.T) {
	t.Parallel()
	guardHeavy := func(cfg *diffConfig) {
		cfg.beginMethods = append(cfg.beginMethods, "kappa", "alpha", "kappa")
	}
	var submitted, batches uint64
	for i := 0; i < diffScheduleCount(); i++ {
		mode := WakeSingle
		if i%2 == 1 {
			mode = WakeBroadcast
		}
		rs := runDiffScheduleCfg(t, int64(0xBA7C4)+int64(i), mode, guardHeavy, WithOptimisticAdmission(false), WithRingContentionGate(false))
		submitted += rs.Submitted
		batches += rs.Batches
	}
	if submitted == 0 || batches == 0 {
		t.Fatalf("batched oracle family never engaged the rings: submitted=%d batches=%d", submitted, batches)
	}
}

// TestDifferentialOracleQuick drives the same lockstep oracle through
// testing/quick with arbitrary generated seeds; a failing seed appears in
// the subtest name for replay.
func TestDifferentialOracleQuick(t *testing.T) {
	t.Parallel()
	prop := func(seed int64, broadcast bool) bool {
		mode := WakeSingle
		if broadcast {
			mode = WakeBroadcast
		}
		return t.Run(fmt.Sprintf("seed=%d,mode=%v", seed, mode), func(st *testing.T) {
			runDiffSchedule(st, seed, mode)
		})
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(20260806))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialConcurrentLedgers is the metamorphic tier of the oracle:
// the SAME fully concurrent workload (64 goroutines over grouped and
// independent methods with live layer churn) runs against both
// implementations at full speed — no lockstep — and the outcome ledgers
// must still agree: identical admissions, identical (schedule-determined)
// aborts, balanced completions, and zero leaked guard state.
func TestDifferentialConcurrentLedgers(t *testing.T) {
	t.Parallel()
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		shard := runConcurrentWorkload(t, seed, func() Admitter { return New("conc") })
		ref := runConcurrentWorkload(t, seed, func() Admitter { return NewReference("conc") })
		if shard != ref {
			t.Fatalf("seed %d: concurrent ledgers diverge: sharded=%+v reference=%+v", seed, shard, ref)
		}
	}
}

// TestDifferentialConcurrentLedgersBatched reruns the metamorphic tier
// with optimistic admission off on the sharded side: the full-speed
// 64-goroutine workload drives real multi-op batches through the rings
// (concurrent submitters pile up behind one drainer), and the outcome
// ledgers must still match the Reference exactly. The contention gate is
// off so every guarded op rides the ring no matter how probe timing falls
// out on the host — the engagement assertion below stays deterministic.
func TestDifferentialConcurrentLedgersBatched(t *testing.T) {
	t.Parallel()
	seeds := []int64{11, 12, 13}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		var m *Moderator
		shard := runConcurrentWorkload(t, seed, func() Admitter {
			m = New("conc", WithOptimisticAdmission(false), WithRingContentionGate(false))
			return m
		})
		ref := runConcurrentWorkload(t, seed, func() Admitter { return NewReference("conc") })
		if shard != ref {
			t.Fatalf("seed %d: batched concurrent ledgers diverge: sharded=%+v reference=%+v", seed, shard, ref)
		}
		if rs := m.RingStats(); rs.Submitted == 0 || rs.Batches == 0 {
			t.Fatalf("seed %d: batched ledger run never engaged the rings: %+v", seed, rs)
		}
	}
}

type concurrentLedger struct {
	Admissions  uint64
	Aborts      uint64
	Completions uint64
	LeakedPair  int
	LeakedSolo  int
	// PureHits counts pure-stack preconditions (schedule-determined, so
	// it must agree exactly); LeakedPure is the pure aspect's pre/post
	// balance, which must drain to zero.
	PureHits   uint64
	LeakedPure int64
}

func runConcurrentWorkload(t *testing.T, seed int64, mk func() Admitter) concurrentLedger {
	t.Helper()
	const (
		goroutines = 64
		perG       = 40
	)
	impl := mk()
	var pairUsed, soloUsed int
	pairSem := &aspect.Func{
		AspectName: "pair-sem",
		AspectKind: aspect.KindSynchronization,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			if pairUsed >= 4 {
				return aspect.Block
			}
			pairUsed++
			return aspect.Resume
		},
		Post:     func(*aspect.Invocation) { pairUsed-- },
		CancelFn: func(*aspect.Invocation) { pairUsed-- },
		WakeList: []string{"put", "get"}, // auto-groups {put, get}
	}
	soloSem := &aspect.Func{
		AspectName: "solo-sem",
		AspectKind: aspect.KindSynchronization,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			if soloUsed >= 2 {
				return aspect.Block
			}
			soloUsed++
			return aspect.Resume
		},
		Post:     func(*aspect.Invocation) { soloUsed-- },
		CancelFn: func(*aspect.Invocation) { soloUsed-- },
		WakeList: []string{"solo"},
	}
	aborter := &aspect.Func{
		AspectName: "aborter",
		AspectKind: aspect.KindAuthentication,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			if flag, _ := inv.Arg(0).(bool); flag {
				return aspect.Abort
			}
			return aspect.Resume
		},
	}
	// "pure" runs a NonBlocking-only stack at full concurrency: the
	// sharded implementation races its lock-free fast path against the
	// mutex path (waiters come and go on the sem-guarded methods), and
	// the hit/balance counters must still match the Reference exactly.
	var pureHits atomic.Uint64
	var pureBalance atomic.Int64
	pure := &aspect.Func{
		AspectName:      "pure-count",
		AspectKind:      aspect.KindAudit,
		NonBlockingFlag: true,
		Pre: func(inv *aspect.Invocation) aspect.Verdict {
			pureHits.Add(1)
			pureBalance.Add(1)
			return aspect.Resume
		},
		Post:     func(*aspect.Invocation) { pureBalance.Add(-1) },
		CancelFn: func(*aspect.Invocation) { pureBalance.Add(-1) },
	}
	for _, reg := range []struct {
		method string
		kind   aspect.Kind
		a      aspect.Aspect
	}{
		{"put", aspect.KindSynchronization, pairSem},
		{"get", aspect.KindSynchronization, pairSem},
		{"solo", aspect.KindSynchronization, soloSem},
		{"reject", aspect.KindAuthentication, aborter},
		{"pure", aspect.KindAudit, pure},
	} {
		if err := impl.Register(reg.method, reg.kind, reg.a); err != nil {
			t.Fatal(err)
		}
	}

	// Pre-generate each worker's op list so the abort count is a pure
	// function of the seed — identical for both implementations.
	methods := []string{"put", "get", "solo", "free", "reject", "pure"}
	rng := rand.New(rand.NewSource(seed))
	plans := make([][]diffOp, goroutines)
	for g := range plans {
		plan := make([]diffOp, perG)
		for k := range plan {
			plan[k] = diffOp{method: methods[rng.Intn(len(methods))], flag: rng.Intn(4) == 0}
		}
		plans[g] = plan
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		noop := aspect.New("transient", aspect.KindMetrics, nil, nil)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := impl.AddLayer("transient", Outermost); err != nil {
				t.Error(err)
				return
			}
			if err := impl.RegisterIn("transient", "put", aspect.KindMetrics, noop); err != nil {
				t.Error(err)
				return
			}
			if err := impl.RemoveLayer("transient"); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(plan []diffOp) {
			defer wg.Done()
			for _, op := range plan {
				abortable := op.method == "reject" && op.flag
				inv := aspect.NewInvocation(context.Background(), "conc", op.method, []any{abortable})
				adm, err := impl.Preactivation(inv)
				if err != nil {
					if !abortable {
						t.Errorf("unexpected preactivation error on %s: %v", op.method, err)
					}
					continue
				}
				impl.Postactivation(inv, adm)
			}
		}(plans[g])
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	if t.Failed() {
		t.FailNow()
	}
	st := impl.Stats()
	return concurrentLedger{
		Admissions:  st.Admissions,
		Aborts:      st.Aborts,
		Completions: st.Completions,
		LeakedPair:  pairUsed,
		LeakedSolo:  soloUsed,
		PureHits:    pureHits.Load(),
		LeakedPure:  pureBalance.Load(),
	}
}
