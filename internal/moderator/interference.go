package moderator

// Publish-time interference checking for staged canary epochs.
//
// A candidate composition does not run alone: while staged, its plans
// admit a fraction of traffic side by side with the stable epoch, over
// the SAME admission domains, wait queues, and guard instances. Three
// mechanically checkable interference classes can make that coexistence
// unsound, and StageCanary refuses a candidate that exhibits any of them:
//
//   - wake-overlap: a candidate aspect declares a wake span (aspect.Waker
//     with a non-empty list) that cannot be merged into one admission
//     domain — typically because two of the spanned domains already saw
//     traffic under the stable epoch. Admitting such a stack would let
//     its hooks touch guard state across domain mutexes. Spans that CAN
//     merge are merged during the check, exactly as live registration
//     would; a merge of quiescent domains only reduces concurrency and
//     never changes admission semantics, so merges performed while
//     vetting a candidate that is ultimately refused are harmless.
//
//   - shared-guard: one stateful guard instance (synchronization or
//     scheduling kind, not declared NonBlocking) is bound to more than
//     one admission domain — either across two candidate methods, or
//     across a candidate method and a stable method that grouping did
//     not co-locate. Its hooks would mutate shared guard state under
//     different mutexes. Observational aspects (metrics, audit,
//     authentication) are exempt: sharing a passive instance across
//     domains is the normal veneer pattern.
//
//   - capability: an aspect declares NonBlocking — granting the whole
//     stack the lock-free fast path when its peers do too — while also
//     declaring behaviour only meaningful for blocking guards: a
//     non-empty wake list (wake fan-out is skipped on the fast path) or
//     an Abandon hook (only blocked callers abandon). The declaration
//     contradicts itself; admitting it could strand parked callers.
//
// The taxonomy follows the "invasive pattern" classification literature:
// these are exactly the compositions where an independently authored
// aspect observably perturbs concerns it never named.

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"

	"repro/internal/aspect"
)

// Interference classes reported by the checker.
const (
	InterferenceWakeOverlap = "wake-overlap"
	InterferenceSharedGuard = "shared-guard"
	InterferenceCapability  = "capability"
)

// ErrInterference is the sentinel wrapped by every InterferenceError.
var ErrInterference = errors.New("moderator: canary interference detected")

// InterferenceFinding is one refused pattern in a candidate composition.
type InterferenceFinding struct {
	Class  string `json:"class"`
	Method string `json:"method"`
	Aspect string `json:"aspect"`
	Detail string `json:"detail"`
}

// InterferenceReport is the structured result of vetting one candidate
// epoch.
type InterferenceReport struct {
	CandidateEpoch uint64                `json:"candidate_epoch"`
	Findings       []InterferenceFinding `json:"findings"`
}

// OK reports whether the candidate was free of interference findings.
func (r InterferenceReport) OK() bool { return len(r.Findings) == 0 }

// String renders the report for logs and error messages.
func (r InterferenceReport) String() string {
	if r.OK() {
		return fmt.Sprintf("epoch %d: no interference", r.CandidateEpoch)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d: %d interference finding(s)", r.CandidateEpoch, len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "\n  [%s] %s (aspect %q): %s", f.Class, f.Method, f.Aspect, f.Detail)
	}
	return b.String()
}

// InterferenceError refuses a StageCanary whose candidate the checker
// flagged. It wraps ErrInterference and carries the structured report.
type InterferenceError struct {
	Component string
	Report    InterferenceReport
}

func (e *InterferenceError) Error() string {
	return fmt.Sprintf("moderator %s: stage canary refused: %s", e.Component, e.Report.String())
}

func (e *InterferenceError) Unwrap() error { return ErrInterference }

// sortFindings orders findings deterministically: by class, then method,
// then aspect, then detail.
func sortFindings(fs []InterferenceFinding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.Aspect != b.Aspect {
			return a.Aspect < b.Aspect
		}
		return a.Detail < b.Detail
	})
}

// abandons reports whether the aspect carries an Abandon hook. The Func
// adapter implements every optional interface unconditionally, so for it
// the actual hook field decides.
func abandons(a aspect.Aspect) bool {
	if f, ok := a.(*aspect.Func); ok {
		return f.AbandonFn != nil
	}
	_, ok := a.(aspect.Abandoner)
	return ok
}

// declaresNonBlocking reports whether the aspect grants the fast-path
// capability.
func declaresNonBlocking(a aspect.Aspect) bool {
	nb, ok := a.(aspect.NonBlocking)
	return ok && nb.NonBlocking()
}

// wakeSpan returns the aspect's declared wake list, or nil.
func wakeSpan(a aspect.Aspect) []string {
	if w, ok := a.(aspect.Waker); ok {
		return w.Wakes()
	}
	return nil
}

// statefulGuard classifies an aspect entry as carrying cross-invocation
// guard state: synchronization- or scheduling-kind (or wake-declaring)
// and not exempted by a NonBlocking declaration.
func statefulGuard(kind aspect.Kind, a aspect.Aspect) bool {
	if declaresNonBlocking(a) {
		return false
	}
	if kind == aspect.KindSynchronization || kind == aspect.KindScheduling {
		return true
	}
	return len(wakeSpan(a)) > 0
}

// checkCapability flags NonBlocking declarations that contradict
// themselves (class "capability"). Pure structural scan; no locks needed.
func checkCapability(layers []compLayer) []InterferenceFinding {
	var out []InterferenceFinding
	for _, l := range layers {
		for _, meth := range l.snap.Methods() {
			for _, e := range l.snap.ForMethod(meth) {
				if !declaresNonBlocking(e.Aspect) {
					continue
				}
				if span := wakeSpan(e.Aspect); len(span) > 0 {
					out = append(out, InterferenceFinding{
						Class: InterferenceCapability, Method: meth, Aspect: e.Aspect.Name(),
						Detail: fmt.Sprintf("declares NonBlocking but wakes %v: the lock-free fast path skips wake fan-out, so its completions could strand parked callers", span),
					})
				}
				if abandons(e.Aspect) {
					out = append(out, InterferenceFinding{
						Class: InterferenceCapability, Method: meth, Aspect: e.Aspect.Name(),
						Detail: "declares NonBlocking but implements Abandon: only blocked callers abandon, and a NonBlocking precondition must never block",
					})
				}
			}
		}
	}
	return out
}

// checkWakeOverlapLocked vets every candidate wake span by merging it into
// one admission domain, exactly as live Waker registration would. A span
// that cannot merge (two spanned domains already active) is a
// "wake-overlap" finding. The admin mutex must be held.
func (m *Moderator) checkWakeOverlapLocked(layers []compLayer) []InterferenceFinding {
	var out []InterferenceFinding
	for _, l := range layers {
		for _, meth := range l.snap.Methods() {
			for _, e := range l.snap.ForMethod(meth) {
				span := wakeSpan(e.Aspect)
				if len(span) == 0 {
					continue
				}
				group := append([]string{meth}, span...)
				if err := m.groupLocked(group); err != nil {
					out = append(out, InterferenceFinding{
						Class: InterferenceWakeOverlap, Method: meth, Aspect: e.Aspect.Name(),
						Detail: fmt.Sprintf("wake span %v cannot merge into one admission domain: %v", span, err),
					})
				}
			}
		}
	}
	return out
}

// checkSharedGuards flags stateful guard instances bound to more than one
// admission domain across the candidate's plans and the stable epoch's
// (class "shared-guard"). Instances whose dynamic type is not comparable
// cannot be identity-tracked and are skipped (such aspects cannot be
// registered twice as the same instance anyway).
func checkSharedGuards(stable, cand map[string]*compiledPlan) []InterferenceFinding {
	type binding struct {
		d      *domain
		method string
	}
	seen := make(map[aspect.Aspect]binding)
	var out []InterferenceFinding
	flag := func(method string, a aspect.Aspect, prev binding, epoch string) {
		out = append(out, InterferenceFinding{
			Class: InterferenceSharedGuard, Method: method, Aspect: a.Name(),
			Detail: fmt.Sprintf("stateful guard instance also bound to %s method %q in a different admission domain: its hooks would mutate shared state under two mutexes", epoch, prev.method),
		})
	}
	scan := func(plans map[string]*compiledPlan, epoch string, record bool) {
		methods := make([]string, 0, len(plans))
		for meth := range plans {
			methods = append(methods, meth)
		}
		sort.Strings(methods)
		for _, meth := range methods {
			p := plans[meth]
			for i := range p.entries {
				e := &p.entries[i]
				if !statefulGuard(e.kind, e.a) {
					continue
				}
				if !reflect.TypeOf(e.a).Comparable() {
					continue
				}
				if prev, ok := seen[e.a]; ok {
					if prev.d != p.d {
						flag(meth, e.a, prev, epoch)
					}
					continue
				}
				if record {
					seen[e.a] = binding{d: p.d, method: meth}
				}
			}
		}
	}
	// Record candidate bindings first, then check them against each other
	// and against the stable epoch's bindings.
	scan(cand, "candidate", true)
	scan(stable, "candidate", false)
	return out
}
