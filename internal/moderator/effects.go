package moderator

// Effect capture. An EffectSink installed with SetEffectSink receives one
// callback per successfully completed invocation — the replication hook of
// the distributed admission plane's state handoff (internal/statesync).
// The sink fires at post-action time on EVERY completion route: the pure
// lock-free fast path, the optimistic guarded path, and the mutex path all
// pass through the top of Postactivation, where the sink is consulted with
// one atomic pointer load and a branch — the same disabled-cost discipline
// as the tracer and the admit hook, so the hot path stays lock-free.
//
// Invocations whose method body recorded an error are not delivered: a
// failed body left no functional effect to replicate. (A body that panics
// past its SetResult is indistinguishable from success here; components
// guarded by the plane record outcomes before returning, as proxy.Call
// does.)
//
// EffectSink implementations MUST NOT block and MUST NOT call back into
// the moderator: the callback runs on the caller's completion path, before
// wake fan-out. The invocation is only valid for the duration of the call
// on the pure and optimistic routes; sinks keep the method name and the
// args slice (which the caller no longer mutates), never the *Invocation.

import "repro/internal/aspect"

// EffectSink receives completed invocations for effect replication.
type EffectSink interface {
	// Effect delivers one successfully completed invocation. It must not
	// block and must not call back into the moderator that delivered it.
	Effect(inv *aspect.Invocation)
}

// effectBox pins the sink behind one atomic pointer (nil box = disabled).
type effectBox struct{ s EffectSink }

// SetEffectSink installs (or, with nil, removes) the completion sink.
// Safe to call at any time, including under traffic.
func (m *Moderator) SetEffectSink(s EffectSink) {
	if s == nil {
		m.effects.Store(nil)
		return
	}
	m.effects.Store(&effectBox{s: s})
}
