// Batched admission: per-domain submission rings drained flat-combining
// style, amortizing the domain mutex across a whole batch of contended
// guarded invocations.
//
// The admission ladder so far: a pure plan runs with no lock at all
// (preactivateFast), and a guarded-but-uncontended plan runs under the
// domain's seqlock guard cell alone (preactivateOptimistic). What remains
// is the genuinely contended case — waiters parked, or the cell lost to a
// concurrent admission — where before this file every caller serialized on
// the domain mutex: one lock acquisition, one guard-state evaluation, and
// one wake fan-out per invocation.
//
// A submission ring turns that serialization into batching. A contended
// caller enqueues a ringOp into its domain's bounded MPSC ring and
// spin-waits for a verdict. The first enqueuer to win the domain's
// draining flag becomes the drainer: it collects everything in the ring,
// acquires the domain mutex ONCE, takes the guard cell ONCE, evaluates
// every batched precondition stack and runs every batched postaction
// against that single guard-state access, coalesces the batch's wake
// obligations into one fan-out pass, and publishes per-op verdicts back
// through the slots. Everyone else in the batch gets mutex-path semantics
// for the price of two atomic operations and a short spin.
//
// # Observable equivalence
//
// The drainer holds exactly the locks the mutex path holds (d.mu, then
// d.cell) while running exactly the hooks the mutex path would run, in a
// serial order (ring order), so any guarded plan — including plans whose
// wake span crosses domains — batches safely:
//
//   - An admitted pre-op increments d.admissions and returns a receipt,
//     exactly as preactivateMutex would.
//   - An aborted pre-op rolls back admitted prefixes in reverse, counts
//     d.aborts, and carries the byte-identical error.
//   - A Block verdict cannot park inside the drainer (the drainer is some
//     other caller's goroutine), so it reuses the optimistic path's
//     verdict handoff: roll back the layer, pre-register the waiter in
//     m.waiters while still holding the cell (the anti-stranding
//     invariant), and hand an optResume — stamped with the batch's
//     post-release cell sequence — back to the submitter, which parks via
//     preactivateMutex without re-running the layer's hooks when the
//     sequence proves no guard state moved in between. d.blocks is
//     counted at the actual park, as on every other path.
//   - A post-op runs its postactions under the cell in reverse admission
//     order; its wake obligation is deferred into the batch accumulator.
//
// Coalescing the wake pass is sound because woken waiters cannot act
// early: a waiter returns from waitq.Wait only after reacquiring the
// domain mutex, which the drainer holds until the local pass is done — so
// k broadcasts of one queue inside a single mutex hold are
// indistinguishable from one, and every waiter observes the batch's FINAL
// guard state, never an intermediate one. WakeSingle mode is the one case
// where the count itself is semantics (each completion frees capacity for
// exactly one waiter), so there the accumulator preserves multiplicity
// via waitq.NotifyN. Foreign-domain targets are woken after the local
// mutex is released, one domain at a time — the same no-two-mutexes
// discipline as the mutex path.
//
// # Contention gate
//
// Combining pays only when the caller would otherwise block: handing an op
// to a drainer trades one mutex acquisition for a cross-goroutine round
// trip (enqueue, election or spin, publish), which is a net loss whenever
// the mutex would have been free. So a ring-eligible caller first probes
// the domain mutex with TryLock (in preactivatePlan/Postactivation, before
// enqueueing). A successful probe means the lock is uncontended RIGHT NOW
// — keep it and enter the mutex path with the acquisition already paid;
// releasing it to re-lock would wake a mutex waiter only to out-race it,
// and a waiter that keeps losing flips the mutex into starvation mode. A
// failed probe means some holder (often a drainer mid-batch) is inside —
// enqueue, because the wait is being paid either way and batching amortizes
// it. The gate makes batch formation self-reinforcing exactly under
// contention: the drainer holds the mutex for the whole batch, so
// concurrent arrivals fail their probes and join the next batch. On a host
// where the mutex never backs up (one processor, or low guarded traffic),
// the probe keeps the ring out of the way entirely.
// WithRingContentionGate(false) restores unconditional routing for the
// deterministic schedulers and the differential oracle.
//
// # Liveness
//
// Submitters never block while holding anything: they spin on their op's
// published flag (tight, then yielding), re-attempting the drainer
// election on every iteration, and past the spin budget they park on the
// op's one-buffered future channel — on an oversubscribed host a
// yield-forever submitter would occupy a kernel thread and convoy the very
// drain it waits on. The classic flat-combining stranding window — an op
// enqueued after the drainer's scan but before the flag release, whose
// submitter may already be parked — is closed on the release side: every
// drainer re-checks the ring after dropping the flag and re-elects itself
// if anything arrived (drainAndRelease); a submitter still spinning closes
// it from its side by self-electing. A full ring falls back to the mutex
// path, so the ring bounds memory, never admission.
package moderator

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/aspect"
	"repro/internal/waitq"
)

// ringSize bounds one domain's submission ring. Deeper than any plausible
// batch (the drainer runs as soon as the flag is free, so batches grow
// only while a drain is in progress), small enough that a full ring — the
// mutex-path spillover — signals real overload to Pressure.
const ringSize = 256

// ringSpinBudget bounds a submitter's tight polling iterations before it
// starts yielding the processor between election attempts.
const ringSpinBudget = 64

// ringBuckets is the number of power-of-two batch-size histogram buckets:
// bucket i counts batches of size in [2^i, 2^(i+1)), the last bucket is
// open-ended.
const ringBuckets = 9

type ringOpKind uint8

const (
	ringPre ringOpKind = iota + 1
	ringPost
)

// ringOp is one batched operation: a pre-activation awaiting a verdict or
// a post-activation awaiting its postactions and wake obligation. The
// submitter owns the op before enqueue and after observing state == 1;
// the drainer owns it in between. state's Store/Load pair orders the
// verdict fields, so no other synchronization is needed.
type ringOp struct {
	kind ringOpKind
	inv  *aspect.Invocation
	plan *compiledPlan
	// adm carries the receipt: in for post-ops, out for admitted pre-ops.
	adm *Admission
	// err is an aborted pre-op's error.
	err error
	// resume is a blocked pre-op's verdict handoff (see optimistic.go).
	resume *optResume
	// state is 0 while pending, 1 once the drainer has published the
	// verdict fields above, 2 while the submitter sleeps on wake (set by
	// the submitter after its spin phase; the publisher that swaps a 2 owes
	// one token on wake).
	state atomic.Uint32
	// wake is the op's future: one-buffered so the publisher never blocks,
	// empty whenever the op is in the pool (a token is sent only to a
	// submitter that already committed to receiving it).
	wake chan struct{}
}

var ringOpPool = sync.Pool{New: func() any { return &ringOp{wake: make(chan struct{}, 1)} }}

func (op *ringOp) publish() {
	if op.state.Swap(1) == 2 {
		op.wake <- struct{}{}
	}
}

func putRingOp(op *ringOp) {
	op.kind, op.inv, op.plan, op.adm, op.err, op.resume = 0, nil, nil, nil, nil, nil
	op.state.Store(0)
	ringOpPool.Put(op)
}

// submitRing is one domain's bounded MPSC submission ring plus the
// drainer's scratch state and the batching counters. Producers contend
// only on tail; head is written by the drainer alone; the draining flag
// elects at most one drainer at a time, which is also what guards the
// scratch slices and the accumulator.
type submitRing struct {
	slots [ringSize]atomic.Pointer[ringOp]

	_    [64]byte // pad: slots vs producer word
	tail atomic.Uint64
	_    [64]byte // pad: producer word vs drainer word
	head atomic.Uint64
	_    [64]byte // pad: drainer word vs election word
	draining atomic.Uint32
	_        [64]byte // pad: election word vs counters

	// Producer-written counters.
	submitted     atomic.Uint64
	fullFallbacks atomic.Uint64
	bypasses      atomic.Uint64

	// Drainer-written counters (atomic only so RingStats can read them
	// without the flag).
	batches    atomic.Uint64
	batchedOps atomic.Uint64
	maxBatch   atomic.Uint64
	preOps     atomic.Uint64
	postOps    atomic.Uint64
	parks      atomic.Uint64
	wakePasses atomic.Uint64
	buckets    [ringBuckets]atomic.Uint64

	// Drainer-only scratch, guarded by the draining flag.
	scratch []*ringOp
	blocked []*ringOp
	posts   []*ringOp
	acc     wakeAcc
}

func newSubmitRing() *submitRing {
	return &submitRing{
		scratch: make([]*ringOp, 0, ringSize),
		blocked: make([]*ringOp, 0, 16),
		posts:   make([]*ringOp, 0, ringSize),
	}
}

// depth returns the number of enqueued-but-undrained ops. The two loads
// race benignly; the result is advisory (Pressure, obs).
func (r *submitRing) depth() int64 {
	d := int64(r.tail.Load()) - int64(r.head.Load())
	if d < 0 {
		return 0
	}
	return d
}

// enqueue reserves a slot by CAS on tail and publishes the op into it.
// It reports false when the ring is full (the stale-head read can only
// under-estimate free space, so a false full is possible under extreme
// churn but a torn enqueue is not).
func (r *submitRing) enqueue(op *ringOp) bool {
	for {
		t := r.tail.Load()
		if t-r.head.Load() >= ringSize {
			return false
		}
		if r.tail.CompareAndSwap(t, t+1) {
			r.slots[t%ringSize].Store(op)
			return true
		}
	}
}

// wakeAcc accumulates one batch's wake obligations: per-method completion
// counts for targeted plans (insertion-ordered, so the pass is
// deterministic for a given batch) and a count of untargeted completions,
// each of which owes the conservative everything-broadcast.
type wakeAcc struct {
	methods      []string
	counts       []int
	conservative int
}

func (a *wakeAcc) reset() {
	a.methods = a.methods[:0]
	a.counts = a.counts[:0]
	a.conservative = 0
}

func (a *wakeAcc) empty() bool { return len(a.methods) == 0 && a.conservative == 0 }

func (a *wakeAcc) addPlan(plan *compiledPlan) {
	if !plan.targeted {
		a.conservative++
		return
	}
	for _, t := range plan.wakeTargets {
		found := false
		for i, m := range a.methods {
			if m == t {
				a.counts[i]++
				found = true
				break
			}
		}
		if !found {
			a.methods = append(a.methods, t)
			a.counts = append(a.counts, 1)
		}
	}
}

// wakeQueueLockedN delivers one queue's share of a coalesced wake pass
// covering n completions. Broadcast mode needs one broadcast no matter
// how many completions the batch held; WakeSingle preserves the count,
// because there each completion's single wake-up IS the capacity signal.
func wakeQueueLockedN(q *waitq.Queue, mode WakeMode, n int) {
	if mode == WakeSingle {
		q.NotifyN(n)
	} else {
		q.Broadcast()
	}
}

// wakeMethodLockedN wakes one method's queues for n coalesced
// completions. The domain's mutex must be held.
func wakeMethodLockedN(d *domain, method string, mode WakeMode, n int) {
	for k, q := range d.queues {
		if k.method == method {
			wakeQueueLockedN(q, mode, n)
		}
	}
}

// preactivateRing batches one contended guarded pre-activation through the
// domain's submission ring. The caller has already checked tb == nil,
// m.opts.batched, and !plan.pure. The final return reports whether the
// attempt was terminal: if false with a non-nil resume, the drainer hit a
// Block verdict and the caller must park via preactivateMutex carrying it;
// if false with a nil resume, the ring was full and the caller falls back
// to the plain mutex path. The contention probe runs at the call site,
// before this function.
func (m *Moderator) preactivateRing(cs *compState, inv *aspect.Invocation, plan *compiledPlan, d *domain, sh *Shadow) (*Admission, error, *optResume, bool) {
	r := d.ring
	op := ringOpPool.Get().(*ringOp)
	op.kind, op.inv, op.plan = ringPre, inv, plan
	if !r.enqueue(op) {
		putRingOp(op)
		r.fullFallbacks.Add(1)
		return nil, nil, nil, false
	}
	r.submitted.Add(1)
	m.awaitRingOp(d, r, op)
	adm, err, resume := op.adm, op.err, op.resume
	putRingOp(op)
	if resume != nil {
		return nil, nil, resume, false
	}
	if sh != nil {
		sh.observe(cs, plan, inv, err == nil)
	}
	return adm, err, nil, true
}

// postactivateRing batches one contended guarded post-activation. It
// reports false (ring full) when the caller must complete via the mutex
// path instead; on true the receipt has been consumed and the wake
// obligation discharged. The contention probe runs at the call site,
// before this function.
func (m *Moderator) postactivateRing(inv *aspect.Invocation, adm *Admission, d *domain) bool {
	r := d.ring
	op := ringOpPool.Get().(*ringOp)
	op.kind, op.inv, op.plan, op.adm = ringPost, inv, adm.plan, adm
	if !r.enqueue(op) {
		putRingOp(op)
		r.fullFallbacks.Add(1)
		return false
	}
	r.submitted.Add(1)
	m.awaitRingOp(d, r, op)
	putRingOp(op)
	return true
}

// awaitRingOp waits for op's verdict: a tight spin, then a yielding spin,
// then a real park on the op's future. Winning the drainer election at any
// point guarantees the op is published: the op was enqueued before the
// attempt, the flag excludes concurrent drainers, and drainRing consumes
// everything up to the tail it observes after the win.
//
// The park matters when the host oversubscribes processors (GOMAXPROCS
// above the core count, or a loaded machine): a submitter that only ever
// yields occupies a kernel thread, and the kernel time-slices it against
// whatever preempted holder the drain is stuck behind — millisecond
// convoys from a microsecond critical section. A parked submitter costs
// one futex sleep and lets the kernel run the holder immediately.
func (m *Moderator) awaitRingOp(d *domain, r *submitRing, op *ringOp) {
	for spins := 0; ; spins++ {
		if op.state.Load() != 0 {
			return
		}
		if r.draining.CompareAndSwap(0, 1) {
			m.drainAndRelease(d, r)
			return
		}
		switch {
		case spins < ringSpinBudget:
			// Tight spin: the common multicore case, where the running
			// drainer publishes within a few hundred nanoseconds.
		case spins < 4*ringSpinBudget:
			runtime.Gosched()
		default:
			if op.state.CompareAndSwap(0, 2) {
				<-op.wake
			}
			return
		}
	}
}

// drainAndRelease drains, releases the flag, and re-checks: an op enqueued
// after the drain's scan whose submitter has already parked cannot
// self-elect, so the releasing drainer is the one that must pick it up.
// The caller must hold the draining flag.
func (m *Moderator) drainAndRelease(d *domain, r *submitRing) {
	for {
		m.drainRing(d)
		r.draining.Store(0)
		if r.tail.Load() == r.head.Load() {
			return
		}
		if !r.draining.CompareAndSwap(0, 1) {
			// Someone else won the re-election; their release re-checks.
			return
		}
	}
}

// drainRing is the flat-combining drain: collect the batch, take the
// domain mutex and guard cell once, evaluate every op against that single
// guard-state access, then one coalesced wake pass. The caller must hold
// the domain's draining flag.
func (m *Moderator) drainRing(d *domain) {
	r := d.ring
	h, t := r.head.Load(), r.tail.Load()
	if h == t {
		return
	}
	batch := r.scratch[:0]
	for i := h; i < t; i++ {
		slot := &r.slots[i%ringSize]
		op := slot.Load()
		// A producer that won its tail CAS but has not yet stored the op
		// leaves a transient nil; it is about to complete, so spin briefly.
		for spins := 0; op == nil; spins++ {
			if spins >= guardSpinBudget {
				runtime.Gosched()
			}
			op = slot.Load()
		}
		slot.Store(nil)
		batch = append(batch, op)
	}
	r.head.Store(t)
	r.scratch = batch

	blocked := r.blocked[:0]
	posts := r.posts[:0]
	r.acc.reset()

	d.mu.Lock()
	d.cell.lock()
	for _, op := range batch {
		if op.kind == ringPre {
			r.preOps.Add(1)
			if m.ringEvalPre(op, d) {
				blocked = append(blocked, op)
			} else {
				// Admits and aborts are terminal here: publishing while the
				// locks are still held lets those callers' method bodies
				// overlap the rest of the drain.
				op.publish()
			}
		} else {
			r.postOps.Add(1)
			ringEvalPost(op, &r.acc)
			posts = append(posts, op)
		}
	}
	ver := d.cell.unlock()
	// Blocked ops carry the batch's post-release cell sequence: the first
	// submitter to reacquire the cell parks on the carried verdict without
	// re-running its layer's hooks; any later one re-evaluates, which is
	// the spurious-wake case re-parking callers already tolerate.
	for _, op := range blocked {
		op.resume.ver = ver
		op.publish()
	}
	r.blocked = blocked

	dt := m.domains.Load()
	mode := m.opts.wakeMode
	if !r.acc.empty() {
		r.wakePasses.Add(1)
		for i, meth := range r.acc.methods {
			if dt.byMethod[meth] == d {
				wakeMethodLockedN(d, meth, mode, r.acc.counts[i])
			}
		}
		if r.acc.conservative > 0 {
			for _, q := range d.queues {
				wakeQueueLockedN(q, mode, r.acc.conservative)
			}
		}
	}
	d.mu.Unlock()

	if !r.acc.empty() {
		for i, meth := range r.acc.methods {
			if od := dt.byMethod[meth]; od != nil && od != d {
				od.mu.Lock()
				wakeMethodLockedN(od, meth, mode, r.acc.counts[i])
				od.mu.Unlock()
			}
		}
		if r.acc.conservative > 0 {
			for _, od := range dt.all {
				if od == d {
					continue
				}
				od.mu.Lock()
				for _, q := range od.queues {
					wakeQueueLockedN(q, mode, r.acc.conservative)
				}
				od.mu.Unlock()
			}
		}
	}
	// Post-op submitters return only after the whole fan-out, preserving
	// the mutex path's contract that Postactivation's wakes have been
	// delivered when it returns.
	for _, op := range posts {
		op.publish()
	}
	r.posts = posts

	n := uint64(len(batch))
	r.batches.Add(1)
	r.batchedOps.Add(n)
	if n > r.maxBatch.Load() {
		r.maxBatch.Store(n)
	}
	b := 0
	for s := n; s > 1 && b < ringBuckets-1; s >>= 1 {
		b++
	}
	r.buckets[b].Add(1)
}

// ringEvalPre evaluates one batched pre-activation under the held mutex
// and cell, mirroring preactivateMutex's layer loop. It reports whether
// the op blocked (verdict handed off via op.resume); admits and aborts
// are recorded on the op directly.
func (m *Moderator) ringEvalPre(op *ringOp, d *domain) (blocked bool) {
	plan := op.plan
	inv := op.inv
	k := 0
	for li := range plan.layers {
		l := &plan.layers[li]
		mark := k
		for i := l.lo; i < l.hi; i++ {
			e := &plan.entries[i]
			v := e.a.Precondition(inv)
			if v == aspect.Resume {
				k++
				continue
			}
			if v == aspect.Block {
				// Layer-atomic rollback, then the verdict handoff. The
				// waiter pre-registration happens under the cell, which is
				// what keeps the lock-free completers honest (they check
				// m.waiters under the cell before skipping the fan-out).
				cancelReverse(plan.aspects[mark:k], inv)
				m.waiters.Add(1)
				r := d.ring
				r.parks.Add(1)
				op.resume = &optResume{layer: li, k: mark, kind: e.kind, by: e.a}
				return true
			}
			var abortErr error
			if v == aspect.Abort {
				abortErr = inv.Err()
				if abortErr == nil {
					abortErr = aspect.ErrAborted
				}
			} else {
				abortErr = fmt.Errorf("moderator %s: aspect %q returned invalid verdict %v: %w",
					m.name, e.a.Name(), v, aspect.ErrAborted)
			}
			cancelReverse(plan.aspects[:k], inv)
			d.aborts.Add(1)
			op.err = fmt.Errorf("moderator %s: %s pre-activation (layer %s): %w",
				m.name, inv.Method(), l.name, abortErr)
			return false
		}
	}
	d.admissions.Add(1)
	// The shared receipt is fast-eligible (its completion may take the
	// optimistic post path), so hand it out only when that path is
	// actually enabled; otherwise the pooled, non-fast receipt keeps
	// WithOptimisticAdmission(false) meaning what it says.
	if plan.sharedAdm != nil && m.opts.optimistic {
		op.adm = plan.sharedAdm
	} else {
		op.adm = newAdmission(plan, d, false, false)
	}
	return false
}

// ringEvalPost runs one batched post-activation's postactions (reverse
// admission order, under the held cell) and defers its wake obligation
// into the batch accumulator.
func ringEvalPost(op *ringOp, acc *wakeAcc) {
	adm := op.adm
	admitted := adm.admitted
	for i := len(admitted) - 1; i >= 0; i-- {
		admitted[i].Postaction(op.inv)
	}
	acc.addPlan(adm.plan)
	op.adm = nil
	releaseAdmission(adm)
}

// RingStats are cumulative counters for the batched admission path,
// summed over the moderator's admission domains. Like OptimisticStats,
// they are intentionally NOT part of Stats: which path served an
// admission is an implementation detail the Reference does not share.
type RingStats struct {
	Submitted     uint64 // ops enqueued into a submission ring
	Batches       uint64 // drain passes executed
	BatchedOps    uint64 // ops consumed by drain passes
	MaxBatch      uint64 // largest single batch
	PreOps        uint64 // batched pre-activations
	PostOps       uint64 // batched post-activations
	Parks         uint64 // batched evaluations that hit Block and handed off
	WakePasses    uint64 // coalesced wake passes performed
	FullFallbacks uint64 // enqueues refused by a full ring (mutex fallback)
	MutexBypasses uint64 // contention probes that found the mutex free (mutex path)
	Depth         int64  // ops currently enqueued across all rings
	// BatchSizes is the power-of-two batch-size histogram: bucket i counts
	// batches of size in [2^i, 2^(i+1)), the last bucket open-ended.
	BatchSizes [ringBuckets]uint64
}

// RingStats returns a snapshot of the batched-admission counters.
func (m *Moderator) RingStats() RingStats {
	var s RingStats
	for _, d := range m.domains.Load().all {
		r := d.ring
		s.Submitted += r.submitted.Load()
		s.Batches += r.batches.Load()
		s.BatchedOps += r.batchedOps.Load()
		if mb := r.maxBatch.Load(); mb > s.MaxBatch {
			s.MaxBatch = mb
		}
		s.PreOps += r.preOps.Load()
		s.PostOps += r.postOps.Load()
		s.Parks += r.parks.Load()
		s.WakePasses += r.wakePasses.Load()
		s.FullFallbacks += r.fullFallbacks.Load()
		s.MutexBypasses += r.bypasses.Load()
		s.Depth += r.depth()
		for i := range r.buckets {
			s.BatchSizes[i] += r.buckets[i].Load()
		}
	}
	return s
}

// Pressure reports the admission pressure a new invocation of method
// would face: the moderator-wide parked-waiter count plus the method's
// ring depth. It is lock-free and advisory — the load-shedding watermark
// input for admission-aware servers (see internal/amrpc).
func (m *Moderator) Pressure(method string) int {
	p := int(m.waiters.Load())
	if d := m.domains.Load().byMethod[method]; d != nil {
		p += int(d.ring.depth())
	}
	return p
}
