package moderator

// FuzzSeqlockGuardEval fuzzes the interleaving of optimistic (seqlock
// guard-cell) admissions with mutex-path admissions, parks, wakes and
// cancellations, cross-checked against the mutex-serialized Reference.
// Each fuzz input is decoded into a deterministic op schedule over three
// stacks — the guarded-fast kappa stack (optimistic-eligible), the pure
// psi stack (lock-free fast path), and the mutex-only alpha capacity
// guard — and replayed in lockstep on both implementations with a full
// observable comparison (waiting counts, parked/admitted sets, outcomes,
// guard state, ledgers, hook traces) after every op. The fuzzer is free
// to discover schedules the seeded differential oracle never draws:
// guard reads racing writers mid-evaluation, fallbacks stacked on
// fallbacks, cancellation landing inside the optimistic window.

import (
	"testing"
)

// fuzzDiffConfig is the fixed scenario shape for the fuzz target; the
// schedule, not the topology, is what the fuzzer explores.
func fuzzDiffConfig(mode WakeMode) diffConfig {
	cfg := diffConfig{mode: mode, capAlpha: 1}
	if mode == WakeSingle {
		cfg.allMethods = []string{"alpha", "beta", "gamma", "delta", "omega", "refill", "psi", "kappa"}
	} else {
		cfg.allMethods = []string{"alpha", "beta", "delta", "omega", "toggle", "psi", "kappa"}
	}
	cfg.beginMethods = []string{"kappa", "psi", "alpha"}
	cfg.veneerMethods = []string{"alpha", "psi", "kappa"}
	return cfg
}

func FuzzSeqlockGuardEval(f *testing.F) {
	// Seed corpus: optimistic commits back to back; a parked waiter under
	// contention then cancelled; pure and guarded begins racing a kick;
	// broadcast-mode begins parked on the closed gate, opened by toggle.
	f.Add([]byte{0x00, 0x01, 0x04, 0x01, 0x04, 0x01, 0x04})
	f.Add([]byte{0x00, 0x01, 0x01, 0x01, 0x05, 0x04, 0x04})
	f.Add([]byte{0x00, 0x02, 0x01, 0x03, 0x06, 0x04, 0x05, 0x04})
	f.Add([]byte{0x01, 0x01, 0x01, 0x87, 0x04, 0x04, 0x07})
	f.Add([]byte{0x00, 0x01, 0x82, 0x01, 0x04, 0x06, 0x05})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip("input too short for a schedule")
		}
		mode := WakeSingle
		if data[0]&1 == 1 {
			mode = WakeBroadcast
		}
		ops := data[1:]
		if len(ops) > 48 {
			ops = ops[:48]
		}
		cfg := fuzzDiffConfig(mode)

		a := newDiffScenario(t, "sharded", New("fuzz", WithWakeMode(mode)), cfg)
		b := newDiffScenario(t, "reference", NewReference("fuzz", WithWakeMode(mode)), cfg)

		nextIdx := 0
		apply := func(step int, fn func(s *diffScenario)) {
			fn(a)
			fn(b)
			a.quiesce(int64(step))
			b.quiesce(int64(step))
			compareScenarios(t, 0, step, a, b)
		}

		for step, bb := range ops {
			flag := bb&0x80 != 0
			sel := int(bb >> 3)
			switch bb % 8 {
			case 0, 1:
				idx := nextIdx
				nextIdx++
				apply(step, func(s *diffScenario) { s.begin(idx, "kappa", flag) })
			case 2:
				idx := nextIdx
				nextIdx++
				apply(step, func(s *diffScenario) { s.begin(idx, "psi", flag) })
			case 3:
				idx := nextIdx
				nextIdx++
				apply(step, func(s *diffScenario) { s.begin(idx, "alpha", flag) })
			case 4:
				idx, ok := pickCall(a.admitted, sel)
				if !ok {
					continue
				}
				apply(step, func(s *diffScenario) { s.finish(idx) })
			case 5:
				idx, ok := pickCall(a.inflight, sel)
				if !ok {
					continue
				}
				apply(step, func(s *diffScenario) { s.cancelParked(idx) })
			case 6:
				meth := cfg.allMethods[sel%len(cfg.allMethods)]
				apply(step, func(s *diffScenario) { s.impl.Kick(meth) })
			case 7:
				idx := nextIdx
				nextIdx++
				if mode == WakeSingle {
					apply(step, func(s *diffScenario) { s.invokeNow(idx, "refill", nil) })
				} else {
					apply(step, func(s *diffScenario) { s.invokeNow(idx, "toggle", []any{flag}) })
				}
			}
		}

		// Drain to a terminal state and require exact final agreement.
		for len(a.inflight) > 0 {
			idx := sortedCallKeys(a.inflight)[0]
			apply(len(ops), func(s *diffScenario) { s.cancelParked(idx) })
		}
		for len(a.admitted) > 0 {
			idx := sortedCallKeys(a.admitted)[0]
			apply(len(ops)+1, func(s *diffScenario) { s.finish(idx) })
		}
		if as, bs := a.impl.Stats(), b.impl.Stats(); as != bs {
			t.Fatalf("final ledgers diverge: sharded=%+v reference=%+v", as, bs)
		}
		a.trMu.Lock()
		b.trMu.Lock()
		defer a.trMu.Unlock()
		defer b.trMu.Unlock()
		if len(a.traces) != len(b.traces) {
			t.Fatalf("hook trace sets diverge: sharded=%d reference=%d invocations", len(a.traces), len(b.traces))
		}
		for idx, ta := range a.traces {
			tb := b.traces[idx]
			if len(ta) != len(tb) {
				t.Fatalf("invocation %d trace lengths diverge:\nsharded:   %v\nreference: %v", idx, ta, tb)
			}
			for i := range ta {
				if ta[i] != tb[i] {
					t.Fatalf("invocation %d traces diverge at %d:\nsharded:   %v\nreference: %v", idx, i, ta, tb)
				}
			}
		}
	})
}
