package naming

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestLeaseLifecycle is the table-driven fencing suite: each case is a
// scripted sequence of lease operations against one store with a fake
// clock, checking grant/refusal and the term each step observes.
type leaseStep struct {
	op      string // acquire, renew, release, lookup, advance
	domain  string
	holder  string
	term    uint64 // for renew/release: the term presented
	ttl     time.Duration
	advance time.Duration // for op == advance
	wantErr error         // nil means the op must succeed
	wantOK  bool          // for release
	want    uint64        // expected term on success (0 = don't check)
}

func TestLeaseLifecycle(t *testing.T) {
	type step = leaseStep
	const d = "checkout"
	cases := []struct {
		name  string
		steps []step
	}{
		{
			name: "fresh acquire starts at term 1 and is idempotent for the holder",
			steps: []step{
				{op: "acquire", domain: d, holder: "n1", ttl: time.Second, want: 1},
				{op: "acquire", domain: d, holder: "n1", ttl: time.Second, want: 1},
				{op: "lookup", domain: d, want: 1},
			},
		},
		{
			name: "live lease refuses another holder",
			steps: []step{
				{op: "acquire", domain: d, holder: "n1", ttl: time.Second, want: 1},
				{op: "acquire", domain: d, holder: "n2", ttl: time.Second, wantErr: ErrLeaseHeld},
			},
		},
		{
			name: "expiry hands the domain over at the next term",
			steps: []step{
				{op: "acquire", domain: d, holder: "n1", ttl: time.Second, want: 1},
				{op: "advance", advance: 1500 * time.Millisecond},
				{op: "acquire", domain: d, holder: "n2", ttl: time.Second, want: 2},
			},
		},
		{
			name: "renew extends the live pair and keeps the term",
			steps: []step{
				{op: "acquire", domain: d, holder: "n1", ttl: time.Second, want: 1},
				{op: "advance", advance: 700 * time.Millisecond},
				{op: "renew", domain: d, holder: "n1", term: 1, ttl: time.Second, want: 1},
				{op: "advance", advance: 700 * time.Millisecond}, // past the original expiry
				{op: "lookup", domain: d, want: 1},
			},
		},
		{
			name: "renew after expiry is refused",
			steps: []step{
				{op: "acquire", domain: d, holder: "n1", ttl: time.Second, want: 1},
				{op: "advance", advance: 1100 * time.Millisecond},
				{op: "renew", domain: d, holder: "n1", term: 1, ttl: time.Second, wantErr: ErrStaleTerm},
			},
		},
		{
			name: "renew with a stale term is refused even for the right holder",
			steps: []step{
				{op: "acquire", domain: d, holder: "n1", ttl: time.Second, want: 1},
				{op: "advance", advance: 1500 * time.Millisecond},
				{op: "acquire", domain: d, holder: "n1", ttl: time.Second, want: 2},
				{op: "renew", domain: d, holder: "n1", term: 1, ttl: time.Second, wantErr: ErrStaleTerm},
			},
		},
		{
			name: "renew by the wrong holder is refused",
			steps: []step{
				{op: "acquire", domain: d, holder: "n1", ttl: time.Second, want: 1},
				{op: "renew", domain: d, holder: "n2", term: 1, ttl: time.Second, wantErr: ErrStaleTerm},
			},
		},
		{
			name: "terms are monotone across expiry cycles and never reset",
			steps: []step{
				{op: "acquire", domain: d, holder: "n1", ttl: time.Second, want: 1},
				{op: "advance", advance: 2 * time.Second},
				{op: "acquire", domain: d, holder: "n2", ttl: time.Second, want: 2},
				{op: "advance", advance: 2 * time.Second},
				{op: "acquire", domain: d, holder: "n1", ttl: time.Second, want: 3},
				{op: "advance", advance: 2 * time.Second},
				{op: "acquire", domain: d, holder: "n3", ttl: time.Second, want: 4},
			},
		},
		{
			name: "release frees the domain immediately but preserves the term",
			steps: []step{
				{op: "acquire", domain: d, holder: "n1", ttl: time.Minute, want: 1},
				{op: "release", domain: d, holder: "n1", term: 1, wantOK: true},
				{op: "lookup", domain: d, wantErr: ErrNotFound},
				{op: "acquire", domain: d, holder: "n2", ttl: time.Second, want: 2},
			},
		},
		{
			name: "release with the wrong term or holder is a no-op",
			steps: []step{
				{op: "acquire", domain: d, holder: "n1", ttl: time.Minute, want: 1},
				{op: "release", domain: d, holder: "n1", term: 7, wantOK: false},
				{op: "release", domain: d, holder: "n9", term: 1, wantOK: false},
				{op: "lookup", domain: d, want: 1},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			now := time.Unix(5000, 0)
			s := NewStore(WithClock(func() time.Time { return now }))
			for i, st := range tc.steps {
				switch st.op {
				case "advance":
					now = now.Add(st.advance)
					continue
				case "acquire":
					l, err := s.AcquireLease(st.domain, st.holder, st.ttl)
					checkLeaseStep(t, i, st, l, err)
				case "renew":
					l, err := s.RenewLease(st.domain, st.holder, st.term, st.ttl)
					checkLeaseStep(t, i, st, l, err)
				case "lookup":
					l, err := s.LookupLease(st.domain)
					checkLeaseStep(t, i, st, l, err)
				case "release":
					if ok := s.ReleaseLease(st.domain, st.holder, st.term); ok != st.wantOK {
						t.Fatalf("step %d: release = %v, want %v", i, ok, st.wantOK)
					}
				default:
					t.Fatalf("step %d: unknown op %q", i, st.op)
				}
			}
		})
	}
}

func checkLeaseStep(t *testing.T, i int, st leaseStep, l DomainLease, err error) {
	t.Helper()
	if st.wantErr != nil {
		if !errors.Is(err, st.wantErr) {
			t.Fatalf("step %d (%s): err = %v, want %v", i, st.op, err, st.wantErr)
		}
		return
	}
	if err != nil {
		t.Fatalf("step %d (%s): unexpected error %v", i, st.op, err)
	}
	if st.want != 0 && l.Term != st.want {
		t.Fatalf("step %d (%s): term = %d, want %d", i, st.op, l.Term, st.want)
	}
}

func TestLeaseValidationAndList(t *testing.T) {
	s := NewStore()
	if _, err := s.AcquireLease("", "h", time.Second); err == nil {
		t.Error("empty domain must error")
	}
	if _, err := s.AcquireLease("d", "", time.Second); err == nil {
		t.Error("empty holder must error")
	}
	if _, err := s.AcquireLease("beta", "n2", time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AcquireLease("alpha", "n1", time.Minute); err != nil {
		t.Fatal(err)
	}
	leases := s.Leases()
	if len(leases) != 2 || leases[0].Domain != "alpha" || leases[1].Domain != "beta" {
		t.Fatalf("Leases() = %+v, want alpha then beta", leases)
	}
}

// TestLeaseWireRoundTrip drives the lease operations through a real server
// and client, including sentinel rehydration from coded wire errors.
func TestLeaseWireRoundTrip(t *testing.T) {
	srv := NewServer(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	c, err := DialClient(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	l, err := c.AcquireLease("orders", "node-a", time.Minute)
	if err != nil || l.Term != 1 || l.Holder != "node-a" {
		t.Fatalf("acquire = %+v, %v", l, err)
	}
	if _, err := c.AcquireLease("orders", "node-b", time.Minute); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("contended acquire must rehydrate ErrLeaseHeld, got %v", err)
	}
	if _, err := c.RenewLease("orders", "node-a", 99, time.Minute); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("bad-term renew must rehydrate ErrStaleTerm, got %v", err)
	}
	if l, err = c.RenewLease("orders", "node-a", 1, time.Minute); err != nil || l.Term != 1 {
		t.Fatalf("good renew = %+v, %v", l, err)
	}
	if _, err := c.LookupLease("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost lease lookup must rehydrate ErrNotFound, got %v", err)
	}
	leases, err := c.ListLeases()
	if err != nil || len(leases) != 1 || leases[0].Domain != "orders" {
		t.Fatalf("list leases = %+v, %v", leases, err)
	}
	ok, err := c.ReleaseLease("orders", "node-a", 1)
	if err != nil || !ok {
		t.Fatalf("release = %v, %v", ok, err)
	}
	if l, err = c.AcquireLease("orders", "node-b", time.Minute); err != nil || l.Term != 2 {
		t.Fatalf("post-release acquire = %+v, %v", l, err)
	}
}

// TestLeaseBarrierFencing pins the release-with-barrier discipline: only
// the exact live (holder, term) pair may plant a barrier, the next grant
// consumes it exactly once, and a zombie release is refused with
// ErrStaleTerm so a handover the releaser no longer governs cannot be
// forged.
func TestLeaseBarrierFencing(t *testing.T) {
	now := time.Unix(5000, 0)
	s := NewStore(WithClock(func() time.Time { return now }))
	if _, err := s.AcquireLease("orders", "n1", time.Minute); err != nil {
		t.Fatal(err)
	}

	// Stale releases: wrong term, wrong holder, and after expiry — all
	// refused, and none of them plants a barrier.
	if err := s.ReleaseLeaseWithBarrier("orders", "n1", 7, 10); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("wrong-term barrier release: err = %v, want ErrStaleTerm", err)
	}
	if err := s.ReleaseLeaseWithBarrier("orders", "n9", 1, 10); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("wrong-holder barrier release: err = %v, want ErrStaleTerm", err)
	}
	if l, err := s.AcquireLease("orders", "n1", time.Minute); err != nil || l.Barrier != nil {
		t.Fatalf("refused releases leaked a barrier: %+v, %v", l, err)
	}
	now = now.Add(2 * time.Minute) // lease expires
	if err := s.ReleaseLeaseWithBarrier("orders", "n1", 1, 10); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("post-expiry barrier release: err = %v, want ErrStaleTerm", err)
	}

	// The live pair's release plants the barrier; the next grant carries
	// it at the releasing term and sequence.
	if _, err := s.AcquireLease("orders", "n1", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := s.ReleaseLeaseWithBarrier("orders", "n1", 2, 42); err != nil {
		t.Fatalf("live barrier release: %v", err)
	}
	l, err := s.AcquireLease("orders", "n2", time.Minute)
	if err != nil || l.Term != 3 {
		t.Fatalf("post-barrier acquire = %+v, %v", l, err)
	}
	if l.Barrier == nil || l.Barrier.From != "n1" || l.Barrier.Term != 2 || l.Barrier.Seq != 42 {
		t.Fatalf("grant barrier = %+v, want {n1 2 42}", l.Barrier)
	}

	// Consumed by exactly one grant: the following grant starts clean.
	if ok := s.ReleaseLease("orders", "n2", 3); !ok {
		t.Fatal("plain release refused")
	}
	if l, err = s.AcquireLease("orders", "n3", time.Minute); err != nil || l.Barrier != nil {
		t.Fatalf("barrier outlived its grant: %+v, %v", l, err)
	}
}

// TestLeaseBarrierWireRoundTrip drives release-with-barrier through a real
// server and client: the coded stale-term refusal rehydrates to the
// sentinel, and the barrier rides the next grant over the wire.
func TestLeaseBarrierWireRoundTrip(t *testing.T) {
	srv := NewServer(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	c, err := DialClient(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.AcquireLease("orders", "node-a", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.ReleaseLeaseWithBarrier("orders", "node-a", 99, 5); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("stale wire barrier release must rehydrate ErrStaleTerm, got %v", err)
	}
	if err := c.ReleaseLeaseWithBarrier("orders", "node-a", 1, 17); err != nil {
		t.Fatalf("live wire barrier release: %v", err)
	}
	l, err := c.AcquireLease("orders", "node-b", time.Minute)
	if err != nil || l.Term != 2 {
		t.Fatalf("post-barrier wire acquire = %+v, %v", l, err)
	}
	if l.Barrier == nil || l.Barrier.From != "node-a" || l.Barrier.Term != 1 || l.Barrier.Seq != 17 {
		t.Fatalf("wire grant barrier = %+v, want {node-a 1 17}", l.Barrier)
	}
}
