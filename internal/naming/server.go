package naming

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// wire operations of the naming protocol (newline-delimited JSON).
const (
	opRegister   = "register"
	opLookup     = "lookup"
	opUnregister = "unregister"
	opList       = "list"
)

type wireRequest struct {
	Op    string `json:"op"`
	Name  string `json:"name,omitempty"`
	Addr  string `json:"addr,omitempty"`
	TTLMS int64  `json:"ttl_ms,omitempty"`
}

type wireResponse struct {
	OK      bool    `json:"ok"`
	Err     string  `json:"err,omitempty"`
	Entry   *Entry  `json:"entry,omitempty"`
	Entries []Entry `json:"entries,omitempty"`
}

// Server exposes a Store over TCP.
type Server struct {
	store *Store

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// NewServer wraps a store (a fresh one if nil).
func NewServer(store *Store) *Server {
	if store == nil {
		store = NewStore()
	}
	return &Server{
		store:     store,
		listeners: make(map[net.Listener]struct{}, 1),
		conns:     make(map[net.Conn]struct{}, 16),
	}
}

// Store returns the underlying registry.
func (s *Server) Store() *Store { return s.store }

// Serve accepts connections until Close. It blocks; run it on a goroutine
// you own.
func (s *Server) Serve(ln net.Listener) error {
	// Serve owns ln from here on (like net/http): it is closed when Serve
	// returns, so a Close racing with Serve's startup cannot leak an open
	// listener that nobody accepts from.
	defer func() { _ = ln.Close() }()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("naming: server closed")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("naming: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops the server and drains its handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for ln := range s.listeners {
		_ = ln.Close()
	}
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	enc := json.NewEncoder(conn)
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 16*1024), 1024*1024)
	for scanner.Scan() {
		var req wireRequest
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			_ = enc.Encode(wireResponse{Err: "malformed request: " + err.Error()})
			continue
		}
		_ = enc.Encode(s.handle(&req))
	}
}

func (s *Server) handle(req *wireRequest) wireResponse {
	switch req.Op {
	case opRegister:
		if err := s.store.Register(req.Name, req.Addr, time.Duration(req.TTLMS)*time.Millisecond); err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{OK: true}
	case opLookup:
		e, err := s.store.Lookup(req.Name)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{OK: true, Entry: &e}
	case opUnregister:
		return wireResponse{OK: s.store.Unregister(req.Name)}
	case opList:
		return wireResponse{OK: true, Entries: s.store.List()}
	default:
		return wireResponse{Err: fmt.Sprintf("naming: unknown op %q", req.Op)}
	}
}

// Client talks to a naming server over one connection. Safe for concurrent
// use (requests are serialized).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// DialClient connects to a naming server.
func DialClient(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("naming: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(conn),
	}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req wireRequest) (wireResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return wireResponse{}, fmt.Errorf("naming: send %s: %w", req.Op, err)
	}
	var resp wireResponse
	if err := c.dec.Decode(&resp); err != nil {
		return wireResponse{}, fmt.Errorf("naming: recv %s: %w", req.Op, err)
	}
	return resp, nil
}

// Register binds name to addr with the given lease.
func (c *Client) Register(name, addr string, ttl time.Duration) error {
	resp, err := c.roundTrip(wireRequest{Op: opRegister, Name: name, Addr: addr, TTLMS: ttl.Milliseconds()})
	if err != nil {
		return err
	}
	if !resp.OK {
		return errors.New(resp.Err)
	}
	return nil
}

// Lookup resolves a name to its registered endpoint.
func (c *Client) Lookup(name string) (Entry, error) {
	resp, err := c.roundTrip(wireRequest{Op: opLookup, Name: name})
	if err != nil {
		return Entry{}, err
	}
	if !resp.OK || resp.Entry == nil {
		return Entry{}, fmt.Errorf("%w: %s (%s)", ErrNotFound, name, resp.Err)
	}
	return *resp.Entry, nil
}

// Unregister removes a binding, reporting whether it existed.
func (c *Client) Unregister(name string) (bool, error) {
	resp, err := c.roundTrip(wireRequest{Op: opUnregister, Name: name})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// List returns all live registrations.
func (c *Client) List() ([]Entry, error) {
	resp, err := c.roundTrip(wireRequest{Op: opList})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, errors.New(resp.Err)
	}
	return resp.Entries, nil
}
