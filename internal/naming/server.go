package naming

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// wire operations of the naming protocol (newline-delimited JSON).
const (
	opRegister       = "register"
	opLookup         = "lookup"
	opUnregister     = "unregister"
	opList           = "list"
	opAcquireLease   = "acquire-lease"
	opRenewLease     = "renew-lease"
	opReleaseLease   = "release-lease"
	opReleaseBarrier = "release-lease-barrier"
	opLookupLease    = "lookup-lease"
	opListLeases     = "list-leases"
)

// error codes carried in wireResponse.Code so clients can rehydrate the
// package sentinels across the wire.
const (
	codeNotFound  = "not-found"
	codeLeaseHeld = "lease-held"
	codeStaleTerm = "stale-term"
)

type wireRequest struct {
	Op     string `json:"op"`
	Name   string `json:"name,omitempty"` // entry name or lease domain
	Addr   string `json:"addr,omitempty"`
	Holder string `json:"holder,omitempty"`
	Term   uint64 `json:"term,omitempty"`
	Seq    uint64 `json:"seq,omitempty"` // snapshot-barrier sequence (release-lease-barrier)
	TTLMS  int64  `json:"ttl_ms,omitempty"`
}

type wireResponse struct {
	OK      bool          `json:"ok"`
	Err     string        `json:"err,omitempty"`
	Code    string        `json:"code,omitempty"`
	Entry   *Entry        `json:"entry,omitempty"`
	Entries []Entry       `json:"entries,omitempty"`
	Lease   *DomainLease  `json:"lease,omitempty"`
	Leases  []DomainLease `json:"leases,omitempty"`
}

func codeFor(err error) string {
	switch {
	case errors.Is(err, ErrNotFound):
		return codeNotFound
	case errors.Is(err, ErrLeaseHeld):
		return codeLeaseHeld
	case errors.Is(err, ErrStaleTerm):
		return codeStaleTerm
	}
	return ""
}

// rehydrate converts a coded wire error back into one wrapping the matching
// package sentinel, so errors.Is works on the client side of the protocol.
func rehydrate(resp wireResponse) error {
	switch resp.Code {
	case codeNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, resp.Err)
	case codeLeaseHeld:
		return fmt.Errorf("%w: %s", ErrLeaseHeld, resp.Err)
	case codeStaleTerm:
		return fmt.Errorf("%w: %s", ErrStaleTerm, resp.Err)
	}
	return errors.New(resp.Err)
}

// Server exposes a Store over TCP.
type Server struct {
	store *Store

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// NewServer wraps a store (a fresh one if nil).
func NewServer(store *Store) *Server {
	if store == nil {
		store = NewStore()
	}
	return &Server{
		store:     store,
		listeners: make(map[net.Listener]struct{}, 1),
		conns:     make(map[net.Conn]struct{}, 16),
	}
}

// Store returns the underlying registry.
func (s *Server) Store() *Store { return s.store }

// Serve accepts connections until Close. It blocks; run it on a goroutine
// you own.
func (s *Server) Serve(ln net.Listener) error {
	// Serve owns ln from here on (like net/http): it is closed when Serve
	// returns, so a Close racing with Serve's startup cannot leak an open
	// listener that nobody accepts from.
	defer func() { _ = ln.Close() }()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("naming: server closed")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("naming: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops the server and drains its handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for ln := range s.listeners {
		_ = ln.Close()
	}
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	enc := json.NewEncoder(conn)
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 16*1024), 1024*1024)
	for scanner.Scan() {
		var req wireRequest
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			_ = enc.Encode(wireResponse{Err: "malformed request: " + err.Error()})
			continue
		}
		_ = enc.Encode(s.handle(&req))
	}
}

func (s *Server) handle(req *wireRequest) wireResponse {
	switch req.Op {
	case opRegister:
		if err := s.store.Register(req.Name, req.Addr, time.Duration(req.TTLMS)*time.Millisecond); err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{OK: true}
	case opLookup:
		e, err := s.store.Lookup(req.Name)
		if err != nil {
			return wireResponse{Err: err.Error(), Code: codeFor(err)}
		}
		return wireResponse{OK: true, Entry: &e}
	case opUnregister:
		return wireResponse{OK: s.store.Unregister(req.Name)}
	case opList:
		return wireResponse{OK: true, Entries: s.store.List()}
	case opAcquireLease:
		l, err := s.store.AcquireLease(req.Name, req.Holder, time.Duration(req.TTLMS)*time.Millisecond)
		if err != nil {
			return wireResponse{Err: err.Error(), Code: codeFor(err)}
		}
		return wireResponse{OK: true, Lease: &l}
	case opRenewLease:
		l, err := s.store.RenewLease(req.Name, req.Holder, req.Term, time.Duration(req.TTLMS)*time.Millisecond)
		if err != nil {
			return wireResponse{Err: err.Error(), Code: codeFor(err)}
		}
		return wireResponse{OK: true, Lease: &l}
	case opReleaseLease:
		return wireResponse{OK: s.store.ReleaseLease(req.Name, req.Holder, req.Term)}
	case opReleaseBarrier:
		if err := s.store.ReleaseLeaseWithBarrier(req.Name, req.Holder, req.Term, req.Seq); err != nil {
			return wireResponse{Err: err.Error(), Code: codeFor(err)}
		}
		return wireResponse{OK: true}
	case opLookupLease:
		l, err := s.store.LookupLease(req.Name)
		if err != nil {
			return wireResponse{Err: err.Error(), Code: codeFor(err)}
		}
		return wireResponse{OK: true, Lease: &l}
	case opListLeases:
		return wireResponse{OK: true, Leases: s.store.Leases()}
	default:
		return wireResponse{Err: fmt.Sprintf("naming: unknown op %q", req.Op)}
	}
}

// Client talks to a naming server over one connection. Safe for concurrent
// use (requests are serialized).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// DialClient connects to a naming server.
func DialClient(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("naming: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(conn),
	}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req wireRequest) (wireResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return wireResponse{}, fmt.Errorf("naming: send %s: %w", req.Op, err)
	}
	var resp wireResponse
	if err := c.dec.Decode(&resp); err != nil {
		return wireResponse{}, fmt.Errorf("naming: recv %s: %w", req.Op, err)
	}
	return resp, nil
}

// Register binds name to addr with the given lease.
func (c *Client) Register(name, addr string, ttl time.Duration) error {
	resp, err := c.roundTrip(wireRequest{Op: opRegister, Name: name, Addr: addr, TTLMS: ttl.Milliseconds()})
	if err != nil {
		return err
	}
	if !resp.OK {
		return errors.New(resp.Err)
	}
	return nil
}

// Lookup resolves a name to its registered endpoint.
func (c *Client) Lookup(name string) (Entry, error) {
	resp, err := c.roundTrip(wireRequest{Op: opLookup, Name: name})
	if err != nil {
		return Entry{}, err
	}
	if !resp.OK || resp.Entry == nil {
		return Entry{}, fmt.Errorf("%w: %s (%s)", ErrNotFound, name, resp.Err)
	}
	return *resp.Entry, nil
}

// AcquireLease grants (or extends, for the live holder) the domain lease.
func (c *Client) AcquireLease(domain, holder string, ttl time.Duration) (DomainLease, error) {
	return c.leaseOp(wireRequest{Op: opAcquireLease, Name: domain, Holder: holder, TTLMS: ttl.Milliseconds()})
}

// RenewLease extends the lease for the exact live (holder, term) pair;
// anything else — including renew-after-expiry — fails with ErrStaleTerm.
func (c *Client) RenewLease(domain, holder string, term uint64, ttl time.Duration) (DomainLease, error) {
	return c.leaseOp(wireRequest{Op: opRenewLease, Name: domain, Holder: holder, Term: term, TTLMS: ttl.Milliseconds()})
}

// ReleaseLease gives up a live lease, reporting whether one was released.
func (c *Client) ReleaseLease(domain, holder string, term uint64) (bool, error) {
	resp, err := c.roundTrip(wireRequest{Op: opReleaseLease, Name: domain, Holder: holder, Term: term})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// ReleaseLeaseWithBarrier gives up a live lease leaving a snapshot
// barrier at seq for the next grant; a stale (holder, term) pair is
// refused with ErrStaleTerm.
func (c *Client) ReleaseLeaseWithBarrier(domain, holder string, term, seq uint64) error {
	resp, err := c.roundTrip(wireRequest{Op: opReleaseBarrier, Name: domain, Holder: holder, Term: term, Seq: seq})
	if err != nil {
		return err
	}
	if !resp.OK {
		return rehydrate(resp)
	}
	return nil
}

// LookupLease returns the live lease on domain, or ErrNotFound.
func (c *Client) LookupLease(domain string) (DomainLease, error) {
	return c.leaseOp(wireRequest{Op: opLookupLease, Name: domain})
}

// ListLeases returns all live domain leases.
func (c *Client) ListLeases() ([]DomainLease, error) {
	resp, err := c.roundTrip(wireRequest{Op: opListLeases})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, rehydrate(resp)
	}
	return resp.Leases, nil
}

func (c *Client) leaseOp(req wireRequest) (DomainLease, error) {
	resp, err := c.roundTrip(req)
	if err != nil {
		return DomainLease{}, err
	}
	if !resp.OK || resp.Lease == nil {
		return DomainLease{}, rehydrate(resp)
	}
	return *resp.Lease, nil
}

// Unregister removes a binding, reporting whether it existed.
func (c *Client) Unregister(name string) (bool, error) {
	resp, err := c.roundTrip(wireRequest{Op: opUnregister, Name: name})
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// List returns all live registrations.
func (c *Client) List() ([]Entry, error) {
	resp, err := c.roundTrip(wireRequest{Op: opList})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, errors.New(resp.Err)
	}
	return resp.Entries, nil
}
