// Package naming provides the location-transparency substrate of the
// framework (one of the interaction requirements of the paper's Section
// 2): a lease-based name registry mapping component names to network
// endpoints, usable in-process (Store) or over TCP (Server / Client).
//
// Components register themselves with a time-to-live; clients look them up
// by name and dial the returned endpoint with the amrpc client. Expired
// leases vanish from lookups, so a crashed server stops being advertised
// without explicit deregistration.
package naming

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrNotFound is returned when no live registration exists for a name.
var ErrNotFound = errors.New("naming: not found")

// DefaultTTL is used when a registration does not specify a lease.
const DefaultTTL = 30 * time.Second

// Entry is one live registration.
type Entry struct {
	Name    string    `json:"name"`
	Addr    string    `json:"addr"`
	Expires time.Time `json:"expires"`
}

// Store is the in-memory registry. It is safe for concurrent use. The zero
// value is NOT usable; construct with NewStore.
type Store struct {
	mu      sync.Mutex
	entries map[string]Entry
	leases  map[string]leaseRecord // domain ownership, see lease.go
	now     func() time.Time
}

// StoreOption configures NewStore.
type StoreOption func(*Store)

// WithClock overrides the lease clock (tests).
func WithClock(now func() time.Time) StoreOption {
	return func(s *Store) { s.now = now }
}

// NewStore creates an empty registry.
func NewStore(opts ...StoreOption) *Store {
	s := &Store{
		entries: make(map[string]Entry, 8),
		leases:  make(map[string]leaseRecord, 8),
		now:     time.Now,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Register binds name to addr for ttl (DefaultTTL if zero). Re-registering
// renews the lease and may move the endpoint.
func (s *Store) Register(name, addr string, ttl time.Duration) error {
	if name == "" || addr == "" {
		return fmt.Errorf("naming: register %q -> %q: empty name or addr", name, addr)
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[name] = Entry{Name: name, Addr: addr, Expires: s.now().Add(ttl)}
	return nil
}

// Lookup resolves a live registration.
func (s *Store) Lookup(name string) (Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok || s.now().After(e.Expires) {
		if ok {
			delete(s.entries, name) // lazy expiry
		}
		return Entry{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return e, nil
}

// Unregister removes a binding, reporting whether it existed (live or not).
func (s *Store) Unregister(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[name]
	delete(s.entries, name)
	return ok
}

// List returns all live registrations sorted by name, purging expired ones.
func (s *Store) List() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	out := make([]Entry, 0, len(s.entries))
	for name, e := range s.entries {
		if now.After(e.Expires) {
			delete(s.entries, name)
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of live registrations.
func (s *Store) Len() int { return len(s.List()) }

// PrefixResolver returns a function yielding the addresses of every live
// registration whose name starts with prefix — the discovery side of
// client-side load balancing over replicas registered as, for example,
// "ticket-server/1", "ticket-server/2".
func PrefixResolver(c *Client, prefix string) func() ([]string, error) {
	return func() ([]string, error) {
		entries, err := c.List()
		if err != nil {
			return nil, err
		}
		out := make([]string, 0, len(entries))
		for _, e := range entries {
			if strings.HasPrefix(e.Name, prefix) {
				out = append(out, e.Addr)
			}
		}
		return out, nil
	}
}
