package naming

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is an immutable consistent-hash ring mapping string keys (admission
// domains) to member ids (cluster nodes). Each member contributes a fixed
// number of virtual points so ownership spreads evenly; a key is owned by
// the member whose point follows the key's hash clockwise. Because only the
// joining or leaving member's points change, membership churn moves a
// bounded fraction of keys (~1/n on join, only the departed member's share
// on leave) — the property the rebalance tests pin down.
//
// A Ring is a value: With and Without return new rings, so a snapshot taken
// by a router stays coherent while the directory builds the next one.
type Ring struct {
	replicas int
	members  []string // sorted, deduplicated
	points   []ringPoint
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultRingReplicas is the virtual-point count per member used when
// NewRing is given a non-positive replica count.
const DefaultRingReplicas = 64

// NewRing builds a ring over members with the given number of virtual
// points per member (DefaultRingReplicas if replicas <= 0). Duplicate
// member ids collapse to one.
func NewRing(replicas int, members ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]struct{}, len(members))
	for _, m := range members {
		if m == "" {
			continue
		}
		if _, dup := seen[m]; dup {
			continue
		}
		seen[m] = struct{}{}
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{
		replicas: replicas,
		members:  uniq,
		points:   make([]ringPoint, 0, len(uniq)*replicas),
	}
	for _, m := range uniq {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", m, i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

func ringHash(s string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(s))
	// Raw FNV-1a clusters badly on short strings differing in a suffix
	// (all of a member's virtual points land adjacent, defeating the
	// spread); a murmur3-style finalizer restores avalanche.
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Owner returns the member owning key, or false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if r == nil || len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise from the top of the hash space
	}
	return r.points[i].member, true
}

// Members returns the member ids in sorted order.
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool {
	if r == nil {
		return false
	}
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}

// With returns a new ring that also contains member.
func (r *Ring) With(member string) *Ring {
	return NewRing(r.replicas, append(r.Members(), member)...)
}

// Without returns a new ring with member removed.
func (r *Ring) Without(member string) *Ring {
	kept := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			kept = append(kept, m)
		}
	}
	return NewRing(r.replicas, kept...)
}
