package naming

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Domain leases are the ownership side of the distributed admission plane:
// a cluster node may execute a domain's admissions only while it holds the
// domain's lease, and every granted lease carries a term number that is
// monotone across the domain's whole history. Terms are the fencing tokens
// of cross-node traffic — a forwarded call or wake notification labeled
// with term T is honored only by a node that holds the lease at exactly
// term T, so effects from an owner that lost its lease (and anything
// routed on a stale view of ownership) are refused rather than applied.
//
// The rules, enforced by the Store and exercised by the fencing tests:
//
//   - Acquire grants a free or expired domain at term = lastTerm+1, and is
//     idempotent for the live holder (same term back, lease extended).
//   - Renew extends a lease only for the exact (holder, term) pair and only
//     while the lease is still live: renew-after-expiry is REFUSED with
//     ErrStaleTerm, forcing the old owner back through Acquire (which bumps
//     the term and thereby invalidates every fence it ever issued).
//   - Terms never reset: the record survives expiry so the next grant
//     continues the sequence.

// ErrLeaseHeld is returned when a domain lease is live under another holder.
var ErrLeaseHeld = errors.New("naming: lease held")

// ErrStaleTerm is returned when a lease operation (or a fenced remote
// effect) presents a term that is no longer the domain's live term.
var ErrStaleTerm = errors.New("naming: stale lease term")

// DomainLease is one domain-ownership grant. Barrier, when present on a
// grant, is the snapshot barrier the previous holder left at release: the
// new owner's signal that replicated state through Barrier.Seq was handed
// over and must be resumed before serving.
type DomainLease struct {
	Domain  string    `json:"domain"`
	Holder  string    `json:"holder"`
	Term    uint64    `json:"term"`
	Expires time.Time `json:"expires"`
	Barrier *Barrier  `json:"barrier,omitempty"`
}

// Barrier records a graceful state handover: the releasing holder (From,
// at Term) flushed its effect log and snapshot through sequence Seq to the
// domain's successor before giving up the lease. It is consumed by the
// next grant.
type Barrier struct {
	From string `json:"from"`
	Term uint64 `json:"term"`
	Seq  uint64 `json:"seq"`
}

type leaseRecord struct {
	holder  string
	term    uint64
	expires time.Time
	barrier *Barrier // left by the last release-with-barrier, consumed by the next grant
}

func (s *Store) leaseLive(rec leaseRecord, now time.Time) bool {
	return rec.holder != "" && now.Before(rec.expires)
}

// AcquireLease grants holder the lease on domain for ttl (DefaultTTL if
// zero). A free or expired domain is granted at the next term; a live lease
// held by the same holder is extended at its current term; a live lease
// held by anyone else fails with ErrLeaseHeld.
func (s *Store) AcquireLease(domain, holder string, ttl time.Duration) (DomainLease, error) {
	if domain == "" || holder == "" {
		return DomainLease{}, fmt.Errorf("naming: acquire lease %q by %q: empty domain or holder", domain, holder)
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	rec := s.leases[domain]
	if s.leaseLive(rec, now) {
		if rec.holder != holder {
			return DomainLease{}, fmt.Errorf("%w: %s by %s (term %d)", ErrLeaseHeld, domain, rec.holder, rec.term)
		}
		rec.expires = now.Add(ttl)
		s.leases[domain] = rec
		return s.leaseView(domain, rec), nil
	}
	barrier := rec.barrier
	rec = leaseRecord{holder: holder, term: rec.term + 1, expires: now.Add(ttl)}
	s.leases[domain] = rec
	// A pending snapshot barrier is consumed by exactly one grant: the new
	// owner learns the handed-over sequence, later grants start clean.
	l := s.leaseView(domain, rec)
	l.Barrier = barrier
	return l, nil
}

// RenewLease extends the lease on domain, but only for the live (holder,
// term) pair: a renewal after expiry, under the wrong term, or by the wrong
// holder is refused with ErrStaleTerm and the caller must re-acquire (at a
// higher term) to continue.
func (s *Store) RenewLease(domain, holder string, term uint64, ttl time.Duration) (DomainLease, error) {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	rec, ok := s.leases[domain]
	if !ok || !s.leaseLive(rec, now) || rec.holder != holder || rec.term != term {
		return DomainLease{}, fmt.Errorf("%w: renew %s by %s at term %d", ErrStaleTerm, domain, holder, term)
	}
	rec.expires = now.Add(ttl)
	s.leases[domain] = rec
	return s.leaseView(domain, rec), nil
}

// ReleaseLease gives up the lease immediately if (holder, term) still holds
// it, reporting whether a live lease was released. The term survives so the
// next Acquire still bumps it.
func (s *Store) ReleaseLease(domain, holder string, term uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.leases[domain]
	if !ok || !s.leaseLive(rec, s.now()) || rec.holder != holder || rec.term != term {
		return false
	}
	s.leases[domain] = leaseRecord{term: rec.term} // expired, term preserved
	return true
}

// ReleaseLeaseWithBarrier gives up a live lease like ReleaseLease, but
// records a snapshot barrier: the holder asserts it flushed its replicated
// state through seq to the domain's successor before releasing. The next
// AcquireLease grant carries the barrier so the new owner resumes state
// before serving. A release by anyone but the exact live (holder, term)
// pair is refused with ErrStaleTerm — a zombie owner cannot plant a
// barrier over a handover it no longer governs.
func (s *Store) ReleaseLeaseWithBarrier(domain, holder string, term, seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.leases[domain]
	if !ok || !s.leaseLive(rec, s.now()) || rec.holder != holder || rec.term != term {
		return fmt.Errorf("%w: release %s by %s at term %d", ErrStaleTerm, domain, holder, term)
	}
	s.leases[domain] = leaseRecord{
		term:    rec.term,
		barrier: &Barrier{From: holder, Term: term, Seq: seq},
	}
	return nil
}

// LookupLease returns the live lease on domain, or ErrNotFound.
func (s *Store) LookupLease(domain string) (DomainLease, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.leases[domain]
	if !ok || !s.leaseLive(rec, s.now()) {
		return DomainLease{}, fmt.Errorf("%w: lease %s", ErrNotFound, domain)
	}
	return s.leaseView(domain, rec), nil
}

// Leases returns all live domain leases sorted by domain.
func (s *Store) Leases() []DomainLease {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	out := make([]DomainLease, 0, len(s.leases))
	for domain, rec := range s.leases {
		if !s.leaseLive(rec, now) {
			continue
		}
		out = append(out, s.leaseView(domain, rec))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

func (s *Store) leaseView(domain string, rec leaseRecord) DomainLease {
	return DomainLease{Domain: domain, Holder: rec.holder, Term: rec.term, Expires: rec.expires}
}
