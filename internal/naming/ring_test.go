package naming

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("domain-%03d", i)
	}
	return keys
}

func ownerMap(t *testing.T, r *Ring, keys []string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		m, ok := r.Owner(k)
		if !ok {
			t.Fatalf("Owner(%q) on non-empty ring reported empty", k)
		}
		out[k] = m
	}
	return out
}

func TestRingEmptyAndBasics(t *testing.T) {
	if _, ok := NewRing(8).Owner("anything"); ok {
		t.Fatal("empty ring must report no owner")
	}
	r := NewRing(8, "b", "a", "a", "")
	if got := r.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Members() = %v, want deduplicated sorted [a b]", got)
	}
	if !r.Has("a") || r.Has("zz") {
		t.Fatal("Has misreported membership")
	}
	// Ownership is deterministic and lands on a member.
	for _, k := range ringKeys(32) {
		o1, _ := r.Owner(k)
		o2, _ := r.Owner(k)
		if o1 != o2 || !r.Has(o1) {
			t.Fatalf("Owner(%q) unstable or off-ring: %q vs %q", k, o1, o2)
		}
	}
}

func TestRingSpread(t *testing.T) {
	// Every member of a healthy ring should own a nonzero share of a
	// reasonably sized keyspace.
	r := NewRing(DefaultRingReplicas, "n1", "n2", "n3")
	counts := make(map[string]int)
	for _, owner := range ownerMap(t, r, ringKeys(300)) {
		counts[owner]++
	}
	for _, m := range r.Members() {
		if counts[m] == 0 {
			t.Fatalf("member %s owns zero of 300 keys: %v", m, counts)
		}
	}
}

// TestRingRebalance is the table-driven bounded-movement property: on join,
// keys move only TO the new member; on leave, only the departed member's
// keys move. Nothing else is reshuffled.
func TestRingRebalance(t *testing.T) {
	cases := []struct {
		name     string
		replicas int
		members  []string
		change   string // member joining or leaving
		leave    bool
		keys     int
	}{
		{name: "join-4th-of-3", replicas: 64, members: []string{"n1", "n2", "n3"}, change: "n4", keys: 400},
		{name: "join-2nd-of-1", replicas: 64, members: []string{"solo"}, change: "peer", keys: 200},
		{name: "join-low-replicas", replicas: 4, members: []string{"a", "b", "c"}, change: "d", keys: 400},
		{name: "leave-of-3", replicas: 64, members: []string{"n1", "n2", "n3"}, change: "n2", leave: true, keys: 400},
		{name: "leave-to-solo", replicas: 64, members: []string{"n1", "n2"}, change: "n1", leave: true, keys: 200},
		{name: "leave-low-replicas", replicas: 4, members: []string{"a", "b", "c", "d"}, change: "c", leave: true, keys: 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			keys := ringKeys(tc.keys)
			before := NewRing(tc.replicas, tc.members...)
			var after *Ring
			if tc.leave {
				after = before.Without(tc.change)
			} else {
				after = before.With(tc.change)
			}
			ownersBefore := ownerMap(t, before, keys)
			ownersAfter := ownerMap(t, after, keys)
			moved := 0
			for _, k := range keys {
				ob, oa := ownersBefore[k], ownersAfter[k]
				if ob == oa {
					continue
				}
				moved++
				if tc.leave {
					if ob != tc.change {
						t.Fatalf("key %q moved from surviving member %s to %s on leave of %s", k, ob, oa, tc.change)
					}
				} else {
					if oa != tc.change {
						t.Fatalf("key %q moved from %s to %s, not to the joining member %s", k, ob, oa, tc.change)
					}
				}
			}
			// Movement is bounded by roughly the changed member's share.
			// Allow 3x slack over the ideal 1/n for hash-spread variance.
			n := len(after.Members())
			if !tc.leave {
				// joining: ideal share is keys/n on the new ring
				if limit := 3 * tc.keys / n; moved > limit {
					t.Fatalf("join moved %d of %d keys, above bound %d", moved, tc.keys, limit)
				}
			} else {
				if limit := 3 * tc.keys / (n + 1); moved > limit {
					t.Fatalf("leave moved %d of %d keys, above bound %d", moved, tc.keys, limit)
				}
			}
		})
	}
}

// TestRingGrowthSequenceBoundedMovement walks a membership growth sequence
// 3→4→5 and asserts the cumulative handoff discipline the cluster's
// state-sync plane relies on: at every join, keys move only TO the joiner
// (an existing member never inherits another existing member's key, so a
// join can never force a state handoff between two incumbents), and each
// step's movement stays within 3x the joiner's fair share.
func TestRingGrowthSequenceBoundedMovement(t *testing.T) {
	const keyCount = 500
	keys := ringKeys(keyCount)
	steps := []struct {
		join string
	}{
		{join: "n4"}, // 3 → 4
		{join: "n5"}, // 4 → 5
	}
	r := NewRing(DefaultRingReplicas, "n1", "n2", "n3")
	owners := ownerMap(t, r, keys)
	for _, st := range steps {
		next := r.With(st.join)
		nextOwners := ownerMap(t, next, keys)
		moved := 0
		for _, k := range keys {
			if owners[k] == nextOwners[k] {
				continue
			}
			moved++
			if nextOwners[k] != st.join {
				t.Fatalf("join of %s moved key %q between incumbents %s → %s",
					st.join, k, owners[k], nextOwners[k])
			}
		}
		n := len(next.Members())
		if limit := 3 * keyCount / n; moved > limit {
			t.Fatalf("join of %s moved %d of %d keys, above bound %d", st.join, moved, keyCount, limit)
		}
		if moved == 0 {
			t.Fatalf("join of %s moved nothing: joiner owns no keys", st.join)
		}
		r, owners = next, nextOwners
	}
}
