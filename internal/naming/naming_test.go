package naming

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func TestStoreValidation(t *testing.T) {
	s := NewStore()
	if err := s.Register("", "addr", 0); err == nil {
		t.Error("empty name must error")
	}
	if err := s.Register("n", "", 0); err == nil {
		t.Error("empty addr must error")
	}
}

func TestStoreRegisterLookup(t *testing.T) {
	s := NewStore()
	if err := s.Register("ticket", "1.2.3.4:9000", time.Minute); err != nil {
		t.Fatal(err)
	}
	e, err := s.Lookup("ticket")
	if err != nil || e.Addr != "1.2.3.4:9000" {
		t.Fatalf("lookup = %+v, %v", e, err)
	}
	if _, err := s.Lookup("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost: %v", err)
	}
	// Re-register moves the endpoint.
	if err := s.Register("ticket", "5.6.7.8:9000", time.Minute); err != nil {
		t.Fatal(err)
	}
	e, err = s.Lookup("ticket")
	if err != nil || e.Addr != "5.6.7.8:9000" {
		t.Fatalf("moved lookup = %+v, %v", e, err)
	}
}

func TestStoreLeaseExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewStore(WithClock(func() time.Time { return now }))
	if err := s.Register("svc", "a:1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup("svc"); err != nil {
		t.Fatalf("live lease: %v", err)
	}
	now = now.Add(11 * time.Second)
	if _, err := s.Lookup("svc"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired lease: %v", err)
	}
	// Renewal extends.
	if err := s.Register("svc", "a:1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	now = now.Add(5 * time.Second)
	if err := s.Register("svc", "a:1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	now = now.Add(8 * time.Second) // 13s after first renewal, 8s after second
	if _, err := s.Lookup("svc"); err != nil {
		t.Fatalf("renewed lease: %v", err)
	}
}

func TestStoreListPurgesExpired(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewStore(WithClock(func() time.Time { return now }))
	if err := s.Register("a", "x:1", time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("b", "x:2", time.Minute); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Second)
	got := s.List()
	if len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("list = %+v", got)
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestStoreUnregister(t *testing.T) {
	s := NewStore()
	if s.Unregister("ghost") {
		t.Error("unregistering a ghost must report false")
	}
	if err := s.Register("svc", "a:1", 0); err != nil {
		t.Fatal(err)
	}
	if !s.Unregister("svc") {
		t.Error("unregister must report true")
	}
	if _, err := s.Lookup("svc"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after unregister: %v", err)
	}
}

func TestDefaultTTLApplied(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewStore(WithClock(func() time.Time { return now }))
	if err := s.Register("svc", "a:1", 0); err != nil {
		t.Fatal(err)
	}
	e, err := s.Lookup("svc")
	if err != nil {
		t.Fatal(err)
	}
	if want := now.Add(DefaultTTL); !e.Expires.Equal(want) {
		t.Errorf("expires = %v, want %v", e.Expires, want)
	}
}

// startNamingServer spins a TCP naming server and returns its address.
func startNamingServer(t *testing.T, store *Store) string {
	t.Helper()
	srv := NewServer(store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if serr := srv.Serve(ln); serr != nil {
			t.Errorf("serve: %v", serr)
		}
	}()
	t.Cleanup(func() {
		srv.Close()
		wg.Wait()
	})
	return ln.Addr().String()
}

func TestClientServerRoundTrip(t *testing.T) {
	addr := startNamingServer(t, nil)
	c, err := DialClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	if err := c.Register("ticket", "10.0.0.1:7000", time.Minute); err != nil {
		t.Fatal(err)
	}
	e, err := c.Lookup("ticket")
	if err != nil || e.Addr != "10.0.0.1:7000" {
		t.Fatalf("lookup = %+v, %v", e, err)
	}
	if _, err := c.Lookup("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost lookup: %v", err)
	}
	entries, err := c.List()
	if err != nil || len(entries) != 1 {
		t.Fatalf("list = %v, %v", entries, err)
	}
	ok, err := c.Unregister("ticket")
	if err != nil || !ok {
		t.Fatalf("unregister = %v, %v", ok, err)
	}
	ok, err = c.Unregister("ticket")
	if err != nil || ok {
		t.Fatalf("double unregister = %v, %v", ok, err)
	}
	if err := c.Register("", "x", 0); err == nil {
		t.Error("server-side validation must surface")
	}
}

func TestConcurrentClients(t *testing.T) {
	addr := startNamingServer(t, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := DialClient(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer func() { _ = c.Close() }()
			name := string(rune('a' + w))
			for k := 0; k < 20; k++ {
				if err := c.Register(name, "h:1", time.Minute); err != nil {
					t.Errorf("register: %v", err)
					return
				}
				if _, err := c.Lookup(name); err != nil {
					t.Errorf("lookup: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
