package bench

// E14 — the GOMAXPROCS × workload benchmark matrix, written to
// BENCH_4.json by `ambench -matrix-json` (`make bench-matrix`). Where E12
// measures each family once at the ambient GOMAXPROCS, the matrix sweeps
// procs ∈ {1, 4, 8} so the committed baseline pins how the speedups scale
// with available parallelism, and adds a fourth family for the compiled
// plans + lock-free fast path work:
//
//   - pure-stack: a stack of NonBlocking audit aspects admitted through
//     the lock-free fast path ("fast") versus the byte-identical stack
//     without the NonBlocking capability, which must take the domain
//     mutex ("mutex"). Both run on the sharded Moderator; the comparison
//     isolates what the capability buys, not what sharding buys.
//
// and two single-caller latency families for the optimistic guarded
// admission work:
//
//   - pure-latency: the ns/op floor of the pure fast path vs the same
//     stack on the mutex path, with the invocation record reused so the
//     admission mechanism itself is the only thing on the clock.
//   - guarded-fast: a guarded-but-uncontended stack admitted through the
//     optimistic seqlock guard cell ("optimistic") vs the same moderator
//     with WithOptimisticAdmission(false) ("mutex"). The committed claim
//     is that optimistic guarded admission lands within 2x of the pure
//     fast path's latency — i.e. guard evaluation no longer costs a
//     mutex round trip when nobody is waiting.
//
// The sharded-vs-reference families reuse the E12 workloads so the two
// baselines stay comparable. Every cell is best-of-benchTrials with the
// variants interleaved (see measureContended for why).

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/aspect"
	"repro/internal/moderator"
)

// MatrixSchema identifies the BENCH_4.json format.
const MatrixSchema = "ambench/matrix-v1"

// FamilyPure is the fast-path-vs-mutex throughput family, matrix only.
const FamilyPure = "pure-stack"

// FamilyPureLatency is the single-caller admission latency of a pure
// stack: the lock-free fast path ("fast") versus the byte-identical
// stack without the NonBlocking capability ("mutex"). This is the
// absolute floor every other admission mechanism is measured against.
const FamilyPureLatency = "pure-latency"

// FamilyGuardedFast is the single-caller admission latency of a
// guarded-but-uncontended stack — one self-waking synchronization guard
// between NonBlocking audits: the optimistic seqlock guard-cell path
// ("optimistic") versus the same moderator with optimistic admission
// disabled, which takes the domain mutex on every admission ("mutex").
const FamilyGuardedFast = "guarded-fast"

// MatrixVariant names, shared with the baseline test.
const (
	VariantSharded    = "sharded"
	VariantReference  = "reference"
	VariantFast       = "fast"
	VariantMutex      = "mutex"
	VariantOptimistic = "optimistic"
)

// MatrixProcs is the GOMAXPROCS sweep every complete report covers.
var MatrixProcs = []int{1, 4, 8}

// MatrixFamilyNames lists every family a complete report must contain at
// each procs setting.
var MatrixFamilyNames = []string{
	FamilyContended, FamilyLatency, FamilyChurn, FamilyPure,
	FamilyPureLatency, FamilyGuardedFast,
}

// MatrixReport is the JSON-serializable result of the E14 matrix.
type MatrixReport struct {
	Schema string       `json:"schema"`
	NumCPU int          `json:"num_cpu"`
	Procs  []int        `json:"procs"`
	Cells  []MatrixCell `json:"cells"`
}

// MatrixCell is one (procs, family) measurement.
type MatrixCell struct {
	Procs  int            `json:"procs"`
	Family string         `json:"family"`
	Unit   string         `json:"unit"` // "ops/s" or "ns/op"
	Params map[string]int `json:"params"`
	// Variants maps variant name to its measured value in Unit.
	Variants map[string]float64 `json:"variants"`
	// Speedup is the first variant's advantage over the second, normalized
	// so bigger is better for both units (throughput a/b, latency b/a).
	Speedup float64 `json:"speedup"`
}

// Cell returns the (procs, family) cell, or false if absent.
func (r *MatrixReport) Cell(procs int, family string) (MatrixCell, bool) {
	for _, c := range r.Cells {
		if c.Procs == procs && c.Family == family {
			return c, true
		}
	}
	return MatrixCell{}, false
}

// pureStackDepth is how many audit aspects the pure-stack family chains.
// Deep enough that the per-aspect precondition loop shows up, shallow
// enough that admission bookkeeping still dominates.
const pureStackDepth = 3

// newPureModerator builds a sharded moderator whose methods each carry a
// stack of no-op audit aspects. With fast=true the aspects declare the
// NonBlocking capability, making every plan pure and fast-path eligible;
// with fast=false the same stacks admit through the domain mutex —
// optimistic admission is disabled on that variant, because a guarded
// no-WakeList stack is otherwise optimistic-eligible and the family
// would quietly measure the seqlock path instead of the lock it is
// defined against (guarded-fast covers optimistic-vs-mutex explicitly).
func newPureModerator(fast bool, methods int) (*moderator.Moderator, error) {
	m := moderator.New("bench-pure", moderator.WithOptimisticAdmission(fast))
	for i := 0; i < methods; i++ {
		meth := fmt.Sprintf("m%d", i)
		for j := 0; j < pureStackDepth; j++ {
			a := &aspect.Func{
				AspectName:      fmt.Sprintf("audit-%d-%d", i, j),
				AspectKind:      aspect.KindAudit,
				NonBlockingFlag: fast,
			}
			if err := m.Register(meth, aspect.KindAudit, a); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// pureThroughput drives totalOps admissions from `goroutines` workers
// striped over `methods` methods, each worker reusing ONE invocation
// record for all its ops. The general driver (domainsThroughput)
// allocates a fresh invocation per op, which is realistic for end-to-end
// families but makes the measurement allocator-bound once the admission
// path itself stops allocating: the faster variant generates more garbage
// per second and hands its advantage to the garbage collector. The
// pure-stack family isolates the admission mechanism, so it reuses the
// record (admission never retains it).
func pureThroughput(impl moderator.Admitter, methods, goroutines, totalOps int) (float64, error) {
	perG := totalOps / goroutines
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		inv := aspect.NewInvocation(nil, "bench", fmt.Sprintf("m%d", g%methods), nil)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				adm, err := impl.Preactivation(inv)
				if err != nil {
					errs <- err
					return
				}
				impl.Postactivation(inv, adm)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return float64(perG*goroutines) / elapsed.Seconds(), nil
}

// matrixVariant is one prepared throughput target inside a cell.
type matrixVariant struct {
	name string
	impl moderator.Admitter
	best float64
}

// measureMatrixThroughput runs `trials` interleaved rounds over the
// variants (same rationale as measureContended), keeping each variant's
// best observed ops/s.
func measureMatrixThroughput(trials, methods, goroutines, totalOps int, variants []*matrixVariant) error {
	for trial := 0; trial < trials; trial++ {
		for _, v := range variants {
			ops, err := domainsThroughput(v.impl, methods, goroutines, totalOps)
			if err != nil {
				return err
			}
			if ops > v.best {
				v.best = ops
			}
		}
	}
	return nil
}

// throughputCell builds one ops/s cell from measured variants. The
// speedup numerator is variants[0].
func throughputCell(procs int, family string, methods, goroutines int, variants []*matrixVariant) MatrixCell {
	c := MatrixCell{
		Procs:    procs,
		Family:   family,
		Unit:     "ops/s",
		Params:   map[string]int{"methods": methods, "goroutines": goroutines},
		Variants: make(map[string]float64, len(variants)),
	}
	for _, v := range variants {
		c.Variants[v.name] = v.best
	}
	c.Speedup = variants[0].best / variants[1].best
	return c
}

// matrixContended measures the E12 contended workload at the current
// GOMAXPROCS, sharded vs reference.
func matrixContended(cfg Config, trials, procs int) (MatrixCell, error) {
	const methods, goroutines = 8, 32
	variants := make([]*matrixVariant, 0, 2)
	for _, s := range []struct {
		name    string
		sharded bool
	}{{VariantSharded, true}, {VariantReference, false}} {
		impl, err := newDomainsModerator(s.sharded, methods)
		if err != nil {
			return MatrixCell{}, err
		}
		if _, err := domainsThroughput(impl, methods, goroutines, 2000); err != nil { // warm-up
			return MatrixCell{}, err
		}
		variants = append(variants, &matrixVariant{name: s.name, impl: impl})
	}
	if err := measureMatrixThroughput(trials, methods, goroutines, cfg.ops()*5, variants); err != nil {
		return MatrixCell{}, err
	}
	return throughputCell(procs, FamilyContended, methods, goroutines, variants), nil
}

// matrixPure measures the pure-stack workload at the current GOMAXPROCS,
// fast path vs mutex path. One worker per method: the families above
// oversubscribe on purpose (contention is their subject), but here the
// subject is the admission mechanism itself, and oversubscription on a
// small host adds OS scheduling noise that swamps the mechanism under
// measurement — with a pure stack every goroutine is always runnable, so
// extra workers buy no extra admission concurrency.
func matrixPure(cfg Config, trials, procs int) (MatrixCell, error) {
	const methods, goroutines = 8, 8
	variants := make([]*matrixVariant, 0, 2)
	for _, s := range []struct {
		name string
		fast bool
	}{{VariantFast, true}, {VariantMutex, false}} {
		impl, err := newPureModerator(s.fast, methods)
		if err != nil {
			return MatrixCell{}, err
		}
		if _, err := pureThroughput(impl, methods, goroutines, 2000); err != nil { // warm-up
			return MatrixCell{}, err
		}
		variants = append(variants, &matrixVariant{name: s.name, impl: impl})
	}
	totalOps := cfg.ops() * 5
	for trial := 0; trial < trials; trial++ {
		for _, v := range variants {
			ops, err := pureThroughput(v.impl, methods, goroutines, totalOps)
			if err != nil {
				return MatrixCell{}, err
			}
			if ops > v.best {
				v.best = ops
			}
		}
	}
	cell := throughputCell(procs, FamilyPure, methods, goroutines, variants)
	cell.Params["depth"] = pureStackDepth
	return cell, nil
}

// matrixLatency measures single-caller single-method admission latency,
// sharded vs reference, interleaved, keeping each variant's best (lowest)
// ns/op.
func matrixLatency(cfg Config, trials, procs int) (MatrixCell, error) {
	impls := make([]moderator.Admitter, 2)
	for i, sharded := range []bool{true, false} {
		impl, err := newDomainsModerator(sharded, 1)
		if err != nil {
			return MatrixCell{}, err
		}
		if _, err := latencyOnce(impl, 2000); err != nil { // warm-up
			return MatrixCell{}, err
		}
		impls[i] = impl
	}
	// A latency round is milliseconds long, so a GC cycle or scheduler
	// preemption landing inside one inflates it wholesale. Rounds are
	// nearly free at this scale, so instead of trials long rounds the
	// latency family takes the min over trials*16 rounds of a quarter the
	// length (same interleaving discipline): rounds shorter than the GC
	// period exist, and the min estimator finds the clean ones.
	rounds, perRound := trials*16, cfg.ops()/4
	if perRound < 500 {
		perRound = 500
	}
	best := []float64{0, 0}
	for trial := 0; trial < rounds; trial++ {
		for i, impl := range impls {
			ns, err := latencyOnce(impl, perRound)
			if err != nil {
				return MatrixCell{}, err
			}
			if best[i] == 0 || ns < best[i] {
				best[i] = ns
			}
		}
	}
	return MatrixCell{
		Procs:  procs,
		Family: FamilyLatency,
		Unit:   "ns/op",
		Params: map[string]int{"methods": 1, "goroutines": 1},
		Variants: map[string]float64{
			VariantSharded:   best[0],
			VariantReference: best[1],
		},
		Speedup: best[1] / best[0],
	}, nil
}

// latencyOnce times n uncontended admissions through impl.
func latencyOnce(impl moderator.Admitter, n int) (float64, error) {
	return measure(n, func(i int) error {
		inv := aspect.NewInvocation(nil, "bench", "m0", nil)
		adm, err := impl.Preactivation(inv)
		if err != nil {
			return err
		}
		impl.Postactivation(inv, adm)
		return nil
	})
}

// latencyReuseOnce times n uncontended admissions reusing ONE invocation
// record, isolating the admission mechanism itself (same rationale as
// pureThroughput: once the path stops allocating, per-op invocation
// construction is the measurement's allocator noise, not its subject).
func latencyReuseOnce(impl moderator.Admitter, n int) (float64, error) {
	inv := aspect.NewInvocation(nil, "bench", "m0", nil)
	return measure(n, func(i int) error {
		adm, err := impl.Preactivation(inv)
		if err != nil {
			return err
		}
		impl.Postactivation(inv, adm)
		return nil
	})
}

// newGuardedFastModerator builds a sharded moderator whose single method
// carries the guarded-fast shape: a NonBlocking audit, one self-waking
// capacity guard (never blocking for a single caller), and a NonBlocking
// metrics tail. With WithOptimisticAdmission(false) the same stack is
// forced onto the domain-mutex path on every admission.
func newGuardedFastModerator(opts ...moderator.Option) (*moderator.Moderator, error) {
	m := moderator.New("bench-guarded", opts...)
	used := 0
	regs := []struct {
		kind aspect.Kind
		a    *aspect.Func
	}{
		{aspect.KindAudit, &aspect.Func{
			AspectName: "audit-pre", AspectKind: aspect.KindAudit, NonBlockingFlag: true,
		}},
		{aspect.KindSynchronization, &aspect.Func{
			AspectName: "sem", AspectKind: aspect.KindSynchronization,
			Pre: func(*aspect.Invocation) aspect.Verdict {
				if used >= 1 {
					return aspect.Block
				}
				used++
				return aspect.Resume
			},
			Post:     func(*aspect.Invocation) { used-- },
			CancelFn: func(*aspect.Invocation) { used-- },
			WakeList: []string{"m0"},
		}},
		{aspect.KindMetrics, &aspect.Func{
			AspectName: "audit-post", AspectKind: aspect.KindMetrics, NonBlockingFlag: true,
		}},
	}
	for _, r := range regs {
		if err := m.Register("m0", r.kind, r.a); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// minLatencyCell runs the short-round min-estimator (same discipline as
// matrixLatency) over two prepared implementations and builds a ns/op
// cell where speedup = b/a (bigger favors a).
func minLatencyCell(cfg Config, trials, procs int, family string, names [2]string, impls [2]moderator.Admitter) (MatrixCell, error) {
	for _, impl := range impls {
		if _, err := latencyReuseOnce(impl, 2000); err != nil { // warm-up
			return MatrixCell{}, err
		}
	}
	rounds, perRound := trials*16, cfg.ops()/4
	if perRound < 500 {
		perRound = 500
	}
	best := []float64{0, 0}
	for trial := 0; trial < rounds; trial++ {
		for i, impl := range impls {
			ns, err := latencyReuseOnce(impl, perRound)
			if err != nil {
				return MatrixCell{}, err
			}
			if best[i] == 0 || ns < best[i] {
				best[i] = ns
			}
		}
	}
	return MatrixCell{
		Procs:  procs,
		Family: family,
		Unit:   "ns/op",
		Params: map[string]int{"methods": 1, "goroutines": 1},
		Variants: map[string]float64{
			names[0]: best[0],
			names[1]: best[1],
		},
		Speedup: best[1] / best[0],
	}, nil
}

// matrixPureLatency measures the pure-stack single-caller admission
// latency, fast path vs mutex path.
func matrixPureLatency(cfg Config, trials, procs int) (MatrixCell, error) {
	var impls [2]moderator.Admitter
	for i, fast := range []bool{true, false} {
		impl, err := newPureModerator(fast, 1)
		if err != nil {
			return MatrixCell{}, err
		}
		impls[i] = impl
	}
	cell, err := minLatencyCell(cfg, trials, procs, FamilyPureLatency,
		[2]string{VariantFast, VariantMutex}, impls)
	if err != nil {
		return MatrixCell{}, err
	}
	cell.Params["depth"] = pureStackDepth
	return cell, nil
}

// matrixGuardedFast measures the guarded-but-uncontended single-caller
// admission latency, optimistic seqlock path vs forced mutex path.
func matrixGuardedFast(cfg Config, trials, procs int) (MatrixCell, error) {
	var impls [2]moderator.Admitter
	for i, optimistic := range []bool{true, false} {
		impl, err := newGuardedFastModerator(moderator.WithOptimisticAdmission(optimistic))
		if err != nil {
			return MatrixCell{}, err
		}
		impls[i] = impl
	}
	return minLatencyCell(cfg, trials, procs, FamilyGuardedFast,
		[2]string{VariantOptimistic, VariantMutex}, impls)
}

// matrixChurn measures admission throughput under continuous layer
// add/remove, sharded vs reference, alternating per trial.
func matrixChurn(cfg Config, trials, procs int) (MatrixCell, error) {
	const methods, goroutines = 4, 8
	best := map[string]float64{}
	for trial := 0; trial < trials; trial++ {
		for _, s := range []struct {
			name    string
			sharded bool
		}{{VariantSharded, true}, {VariantReference, false}} {
			ops, err := domainsChurn(cfg, s.sharded, methods, goroutines)
			if err != nil {
				return MatrixCell{}, err
			}
			if ops > best[s.name] {
				best[s.name] = ops
			}
		}
	}
	return MatrixCell{
		Procs:    procs,
		Family:   FamilyChurn,
		Unit:     "ops/s",
		Params:   map[string]int{"methods": methods, "goroutines": goroutines},
		Variants: map[string]float64{VariantSharded: best[VariantSharded], VariantReference: best[VariantReference]},
		Speedup:  best[VariantSharded] / best[VariantReference],
	}, nil
}

// Matrix runs the full E14 sweep and returns the JSON-serializable
// report. GOMAXPROCS is mutated per procs setting and restored on return;
// nothing else may run benchmarks concurrently.
func Matrix(cfg Config) (MatrixReport, error) {
	rep := MatrixReport{
		Schema: MatrixSchema,
		NumCPU: runtime.NumCPU(),
		Procs:  append([]int(nil), MatrixProcs...),
	}
	trials := benchTrials
	if cfg.Quick {
		trials = 2
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range rep.Procs {
		runtime.GOMAXPROCS(procs)
		for _, run := range []func(Config, int, int) (MatrixCell, error){
			matrixContended, matrixLatency, matrixChurn, matrixPure,
			matrixPureLatency, matrixGuardedFast,
		} {
			cell, err := run(cfg, trials, procs)
			if err != nil {
				return rep, fmt.Errorf("matrix procs=%d: %w", procs, err)
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	return rep, nil
}

// E14Matrix renders the matrix as a standard experiment table so
// `ambench` includes it in the default run.
func E14Matrix(cfg Config) (Table, error) {
	rep, err := Matrix(cfg)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "E14",
		Title:  "GOMAXPROCS x workload matrix (incl. lock-free pure and guarded fast paths)",
		Header: []string{"procs", "family", "params", "a", "b", "speedup"},
		Notes: fmt.Sprintf("num_cpu=%d; a/b are sharded/reference, except pure-stack and pure-latency "+
			"where they are fast/mutex and guarded-fast where they are optimistic/mutex; "+
			"speedup normalized so >1 favors a", rep.NumCPU),
	}
	for _, c := range rep.Cells {
		a, b := c.Variants[VariantSharded], c.Variants[VariantReference]
		switch c.Family {
		case FamilyPure, FamilyPureLatency:
			a, b = c.Variants[VariantFast], c.Variants[VariantMutex]
		case FamilyGuardedFast:
			a, b = c.Variants[VariantOptimistic], c.Variants[VariantMutex]
		}
		var av, bv string
		if c.Unit == "ns/op" {
			av, bv = fmtNs(a), fmtNs(b)
		} else {
			av, bv = fmtOps(a), fmtOps(b)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(c.Procs),
			c.Family,
			fmt.Sprintf("%dm/%dg", c.Params["methods"], c.Params["goroutines"]),
			av, bv,
			fmt.Sprintf("%.2fx", c.Speedup),
		})
	}
	return t, nil
}
