package bench

// E19 — the closed-loop batched-admission family, written to BENCH_7.json
// by `ambench -loop-json` (`make bench-loop`). Four measurements close the
// loop on the PR-10 work (submission rings + pipelined amrpc):
//
//   - closed loop: real ticketcli-shaped clients drive a guarded ticket
//     service over real localhost TCP at fixed concurrency, open+assign
//     pairs against a capacity guard small enough that callers park. The
//     batched variant (production defaults) is compared against the same
//     deployment with WithBatchedAdmission(false); both record throughput,
//     p50/p99 pair latency, the submission-ring batch histogram, and the
//     pipelined server's flush coalescing counters. The honesty clause:
//     every admission must complete and the ticket store must drain to
//     zero — a batching bug that loses a wake or leaks a receipt shows up
//     here as lost > 0 before any unit test notices.
//   - shed: the same deployment with an admission-aware shed policy
//     (watermark on Pressure = waiters + ring depth) under deliberate
//     overdrive. Records the shed rate and the retry-after hints; the
//     guard wants BOTH sheds and serves — refuse-before-park must kick in
//     without starving the servable fraction.
//   - contended: the in-process contended guarded cell at GOMAXPROCS=8 —
//     the full admission ladder as shipped (seqlock optimistic tier first,
//     rings absorbing contended spill) against the fully unbatched path
//     (WithOptimisticAdmission(false) + WithBatchedAdmission(false)), i.e.
//     one domain-mutex acquisition per invocation, the BENCH_4 contended
//     family's reference discipline. Invocation records are reused so the
//     admission mechanism is the only thing on the clock (pureThroughput's
//     rationale). The committed claim is a ≥1.3x speedup.
//   - uncontended: single-caller guarded admission latency with rings
//     compiled in versus WithBatchedAdmission(false). Rings must be free
//     when idle — an uncontended caller is served by the optimistic tier
//     and never touches the ring — so the bound is parity within 5%.
//
// A flat-combining honesty note, recorded here because the committed
// numbers come from whatever host runs `make bench-loop`: the ring's
// mutex-amortization win needs genuinely parallel contention (cores
// fighting over the lock's cache line). On a single-core host the OS never
// overlaps critical sections, an uncontended mutex is one CAS, and a
// drain-for-me handoff adds scheduling latency instead of removing cache
// misses. That is exactly what the contention gate (ring.go) is for: every
// ring-eligible op probes the mutex with TryLock first and rides the ring
// only when the lock is observably held, so on a host where the mutex
// never backs up the ring self-limits to near-zero traffic (visible as
// mutex_bypasses dwarfing submitted in the closed-loop cell) and the
// batched variant tracks the unbatched one instead of taxing it. The
// contended cell therefore pins the ladder-vs-unbatched trajectory (which
// must hold everywhere), not a ring-vs-mutex microarchitecture claim.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/amrpc"
	"repro/internal/apps/ticket"
	"repro/internal/aspect"
	"repro/internal/moderator"
)

// LoopSchema identifies the BENCH_7.json format.
const LoopSchema = "ambench/loop-v1"

// Closed-loop parameters. Capacity is deliberately below the worker count
// so opens park and the contended admission tiers (ring or mutex) carry
// real traffic; conn concurrency bounds the server's per-connection worker
// pool, exercised because every worker shares one pipelined connection.
const (
	loopWorkers         = 16
	loopCapacity        = 4
	loopConnConcurrency = 64
	loopShedWorkers     = 32
	loopShedWatermark   = 4
)

// LoopRing is the submission-ring slice of one closed-loop variant,
// lifted from moderator.RingStats into stable JSON names.
type LoopRing struct {
	Submitted     uint64   `json:"submitted"`
	Batches       uint64   `json:"batches"`
	BatchedOps    uint64   `json:"batched_ops"`
	MaxBatch      uint64   `json:"max_batch"`
	Parks         uint64   `json:"parks"`
	WakePasses    uint64   `json:"wake_passes"`
	FullFallbacks uint64   `json:"full_fallbacks"`
	MutexBypasses uint64   `json:"mutex_bypasses"`
	BatchSizes    []uint64 `json:"batch_sizes"`
}

func newLoopRing(rs moderator.RingStats) LoopRing {
	return LoopRing{
		Submitted:     rs.Submitted,
		Batches:       rs.Batches,
		BatchedOps:    rs.BatchedOps,
		MaxBatch:      rs.MaxBatch,
		Parks:         rs.Parks,
		WakePasses:    rs.WakePasses,
		FullFallbacks: rs.FullFallbacks,
		MutexBypasses: rs.MutexBypasses,
		BatchSizes:    append([]uint64(nil), rs.BatchSizes[:]...),
	}
}

// LoopVariant is one closed-loop deployment's measurements.
type LoopVariant struct {
	OpsPerSec   float64  `json:"ops_per_sec"` // open+assign pairs per second
	P50Micros   float64  `json:"p50_micros"`  // per-pair round-trip latency
	P99Micros   float64  `json:"p99_micros"`
	Ring        LoopRing `json:"ring"`
	Flushes     uint64   `json:"flushes"`      // writer wake-ups that hit the wire
	FlushFrames uint64   `json:"flush_frames"` // frames carried by those flushes
	Queued      uint64   `json:"queued"`       // requests that waited in the conn work queue
}

// LoopShed is the overdrive shed-policy phase.
type LoopShed struct {
	Watermark       int     `json:"watermark"`
	Workers         int     `json:"workers"`
	Attempts        uint64  `json:"attempts"`
	Served          uint64  `json:"served"`
	Shed            uint64  `json:"shed"`
	ShedRatePct     float64 `json:"shed_rate_pct"`
	RetryAfterMSMax int64   `json:"retry_after_ms_max"`
}

// LoopContended is the in-process contended guarded cell at 8 procs.
type LoopContended struct {
	Procs        int     `json:"procs"`
	Methods      int     `json:"methods"`
	Goroutines   int     `json:"goroutines"`
	BatchedOps   float64 `json:"batched_ops_per_sec"`
	UnbatchedOps float64 `json:"unbatched_ops_per_sec"`
	Speedup      float64 `json:"speedup"`
}

// LoopUncontended is the single-caller guarded latency parity cell.
type LoopUncontended struct {
	BatchedNs   float64 `json:"batched_ns"`
	UnbatchedNs float64 `json:"unbatched_ns"`
	Ratio       float64 `json:"ratio"` // batched/unbatched, 1.0 = parity
}

// LoopReport is the JSON-serializable result of the E19 family.
type LoopReport struct {
	Schema          string      `json:"schema"`
	NumCPU          int         `json:"num_cpu"`
	GoMaxProcs      int         `json:"go_max_procs"`
	Workers         int         `json:"workers"`
	PairsPerWorker  int         `json:"pairs_per_worker"`
	Capacity        int         `json:"capacity"`
	ConnConcurrency int         `json:"conn_concurrency"`
	Batched         LoopVariant `json:"batched"`
	Unbatched       LoopVariant `json:"unbatched"`
	// Lost is admissions minus completions summed over both variants at
	// quiescence; Residue is the ticket stores' final sizes. Both must be
	// zero: nothing parked forever, no receipt leaked, no effect dropped.
	Lost        uint64          `json:"lost"`
	Residue     int             `json:"residue"`
	Shed        LoopShed        `json:"shed"`
	Contended   LoopContended   `json:"contended"`
	Uncontended LoopUncontended `json:"uncontended"`
}

// loopDeployment is one live closed-loop target: a guarded ticket service
// behind a pipelined amrpc server, and one shared client connection.
type loopDeployment struct {
	g     *ticket.Guarded
	srv   *amrpc.Server
	stub  *amrpc.Stub
	close func()
}

func newLoopDeployment(shed bool, modOpts ...moderator.Option) (*loopDeployment, error) {
	g, err := newFrameworkTicket(loopCapacity, modOpts...)
	if err != nil {
		return nil, err
	}
	srvOpts := []amrpc.ServerOption{amrpc.WithMaxConcurrentPerConn(loopConnConcurrency)}
	if shed {
		mod := g.Moderator()
		srvOpts = append(srvOpts, amrpc.WithShedPolicy(func(component, method string) (int64, bool) {
			// Shed opens only: assigns are what drain the buffer, so
			// refusing them would turn overload into livelock.
			if method != ticket.MethodOpen {
				return 0, false
			}
			p := mod.Pressure(method)
			if p < loopShedWatermark {
				return 0, false
			}
			ra := int64(p - loopShedWatermark + 1)
			if ra > 1000 {
				ra = 1000
			}
			return ra, true
		}))
	}
	srv := amrpc.NewServer(srvOpts...)
	if err := srv.Register(g.Proxy()); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	var serveWg sync.WaitGroup
	serveWg.Add(1)
	go func() {
		defer serveWg.Done()
		_ = srv.Serve(ln)
	}()
	client, err := amrpc.Dial(ln.Addr().String())
	if err != nil {
		srv.Close()
		serveWg.Wait()
		return nil, err
	}
	return &loopDeployment{
		g:    g,
		srv:  srv,
		stub: client.Component(ticket.ComponentName),
		close: func() {
			_ = client.Close()
			srv.Close()
			serveWg.Wait()
		},
	}, nil
}

// drivePairs runs the fixed-concurrency closed loop: workers goroutines,
// each looping pairs open+assign round trips on the shared connection,
// recording one latency sample per pair. Returns aggregate pairs/s.
func (d *loopDeployment) drivePairs(workers, pairs int, samples *[]float64) (float64, error) {
	ctx := context.Background()
	errs := make(chan error, workers)
	lats := make([][]float64, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		lats[w] = make([]float64, 0, pairs)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < pairs; i++ {
				t0 := time.Now()
				if _, err := d.stub.Invoke(ctx, ticket.MethodOpen, "t", "s"); err != nil {
					errs <- err
					return
				}
				if _, err := d.stub.Invoke(ctx, ticket.MethodAssign); err != nil {
					errs <- err
					return
				}
				lats[w] = append(lats[w], float64(time.Since(t0).Nanoseconds())/1e3)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	for _, l := range lats {
		*samples = append(*samples, l...)
	}
	return float64(workers*pairs) / elapsed.Seconds(), nil
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)) * p)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// loopClosed measures the two closed-loop variants interleaved
// (best-of-trials throughput, latency pooled over every trial) and
// accumulates the lost/residue honesty counters.
func loopClosed(cfg Config, rep *LoopReport) error {
	trials := benchTrials
	if cfg.Quick {
		trials = 2
	}
	pairs := cfg.ops() / 40
	if pairs < 50 {
		pairs = 50
	}
	rep.Workers = loopWorkers
	rep.PairsPerWorker = pairs
	rep.Capacity = loopCapacity
	rep.ConnConcurrency = loopConnConcurrency

	type variant struct {
		dep     *loopDeployment
		out     *LoopVariant
		samples []float64
	}
	batched, err := newLoopDeployment(false)
	if err != nil {
		return err
	}
	defer batched.close()
	unbatched, err := newLoopDeployment(false, moderator.WithBatchedAdmission(false))
	if err != nil {
		return err
	}
	defer unbatched.close()
	variants := []*variant{
		{dep: batched, out: &rep.Batched},
		{dep: unbatched, out: &rep.Unbatched},
	}
	for _, v := range variants { // warm-up
		if _, err := v.dep.drivePairs(loopWorkers, 20, &[]float64{}); err != nil {
			return err
		}
	}
	for trial := 0; trial < trials; trial++ {
		// Alternate drive order: the variant measured first in a trial eats
		// the process's accumulated debt (GC, scheduler warm-up), a bias
		// worth ~10% on a small host. Best-of picks each variant's
		// favorable position.
		ordered := []*variant{variants[trial%2], variants[1-trial%2]}
		for _, v := range ordered {
			ops, err := v.dep.drivePairs(loopWorkers, pairs, &v.samples)
			if err != nil {
				return err
			}
			if ops > v.out.OpsPerSec {
				v.out.OpsPerSec = ops
			}
		}
	}
	for _, v := range variants {
		sort.Float64s(v.samples)
		v.out.P50Micros = percentile(v.samples, 0.50)
		v.out.P99Micros = percentile(v.samples, 0.99)
		v.out.Ring = newLoopRing(v.dep.g.Moderator().RingStats())
		st := v.dep.srv.Stats()
		v.out.Flushes = st.Flushes
		v.out.FlushFrames = st.FlushFrames
		v.out.Queued = st.Queued
		ms := v.dep.g.Moderator().Stats()
		rep.Lost += ms.Admissions - ms.Completions
		rep.Residue += v.dep.g.Server().Size()
	}
	return nil
}

// loopShed overdrives a shedding deployment and records the refusal rate.
func loopShed(cfg Config, rep *LoopReport) error {
	dep, err := newLoopDeployment(true)
	if err != nil {
		return err
	}
	defer dep.close()
	attemptsPer := cfg.ops() / 80
	if attemptsPer < 25 {
		attemptsPer = 25
	}
	ctx := context.Background()
	var served, shed atomic.Uint64
	var raMax atomic.Int64
	errs := make(chan error, loopShedWorkers)
	var wg sync.WaitGroup
	for w := 0; w < loopShedWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < attemptsPer; i++ {
				_, err := dep.stub.Invoke(ctx, ticket.MethodOpen, "t", "s")
				if err != nil {
					var re *amrpc.RemoteError
					if errors.Is(err, amrpc.ErrOverloaded) && errors.As(err, &re) {
						shed.Add(1)
						for {
							cur := raMax.Load()
							if re.RetryAfterMS <= cur || raMax.CompareAndSwap(cur, re.RetryAfterMS) {
								break
							}
						}
						continue
					}
					errs <- err
					return
				}
				served.Add(1)
				if _, err := dep.stub.Invoke(ctx, ticket.MethodAssign); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	total := served.Load() + shed.Load()
	rep.Shed = LoopShed{
		Watermark:       loopShedWatermark,
		Workers:         loopShedWorkers,
		Attempts:        total,
		Served:          served.Load(),
		Shed:            shed.Load(),
		ShedRatePct:     float64(shed.Load()) / float64(total) * 100,
		RetryAfterMSMax: raMax.Load(),
	}
	ms := dep.g.Moderator().Stats()
	rep.Lost += ms.Admissions - ms.Completions
	rep.Residue += dep.g.Server().Size()
	return nil
}

// newLoopContendedModerator builds the E12 contended guard shape (one
// always-admitting self-waking semaphore per method) with the given
// admission tiers.
func newLoopContendedModerator(methods int, opts ...moderator.Option) (*moderator.Moderator, error) {
	m := moderator.New("bench-loop", opts...)
	for i := 0; i < methods; i++ {
		meth := fmt.Sprintf("m%d", i)
		used := new(int)
		guard := &aspect.Func{
			AspectName: "sem-" + meth,
			AspectKind: aspect.KindSynchronization,
			Pre:        func(inv *aspect.Invocation) aspect.Verdict { *used++; return aspect.Resume },
			Post:       func(inv *aspect.Invocation) { *used-- },
			CancelFn:   func(inv *aspect.Invocation) { *used-- },
			WakeList:   []string{meth},
		}
		if err := m.Register(meth, aspect.KindSynchronization, guard); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// loopContendedThroughput drives totalOps guarded admissions from
// `goroutines` workers striped over `methods` methods, each worker reusing
// ONE invocation record (pureThroughput's rationale: once the admission
// path stops allocating, fresh records hand the faster variant's margin to
// the garbage collector).
func loopContendedThroughput(impl moderator.Admitter, methods, goroutines, totalOps int) (float64, error) {
	perG := totalOps / goroutines
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		inv := aspect.NewInvocation(context.Background(), "bench", fmt.Sprintf("m%d", g%methods), nil)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				adm, err := impl.Preactivation(inv)
				if err != nil {
					errs <- err
					return
				}
				impl.Postactivation(inv, adm)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return float64(perG*goroutines) / elapsed.Seconds(), nil
}

// loopContended measures the contended guarded cell: the shipped ladder
// (optimistic + rings) vs the fully unbatched mutex-per-invocation path,
// interleaved best-of-trials at GOMAXPROCS=8.
func loopContended(cfg Config, rep *LoopReport) error {
	const methods, goroutines = 8, 16
	trials := benchTrials
	if cfg.Quick {
		trials = 2
	}
	ladder, err := newLoopContendedModerator(methods)
	if err != nil {
		return err
	}
	unbatched, err := newLoopContendedModerator(methods,
		moderator.WithOptimisticAdmission(false), moderator.WithBatchedAdmission(false))
	if err != nil {
		return err
	}
	totalOps := cfg.ops() * 5
	for _, impl := range []moderator.Admitter{ladder, unbatched} { // warm-up
		if _, err := loopContendedThroughput(impl, methods, goroutines, 2000); err != nil {
			return err
		}
	}
	var best, bestU float64
	for trial := 0; trial < trials; trial++ {
		b, err := loopContendedThroughput(ladder, methods, goroutines, totalOps)
		if err != nil {
			return err
		}
		if b > best {
			best = b
		}
		u, err := loopContendedThroughput(unbatched, methods, goroutines, totalOps)
		if err != nil {
			return err
		}
		if u > bestU {
			bestU = u
		}
	}
	rep.Contended = LoopContended{
		Procs:        8,
		Methods:      methods,
		Goroutines:   goroutines,
		BatchedOps:   best,
		UnbatchedOps: bestU,
		Speedup:      best / bestU,
	}
	return nil
}

// loopUncontended measures single-caller guarded latency with rings
// enabled vs disabled — the parity bound proving the ring's existence
// costs the fast path nothing (the optimistic tier serves both).
func loopUncontended(cfg Config, rep *LoopReport) error {
	trials := benchTrials
	if cfg.Quick {
		trials = 2
	}
	withRings, err := newGuardedFastModerator()
	if err != nil {
		return err
	}
	without, err := newGuardedFastModerator(moderator.WithBatchedAdmission(false))
	if err != nil {
		return err
	}
	impls := [2]moderator.Admitter{withRings, without}
	for _, impl := range impls {
		if _, err := latencyReuseOnce(impl, 2000); err != nil { // warm-up
			return err
		}
	}
	// Same short-round min-estimator as the matrix latency families.
	rounds, perRound := trials*16, cfg.ops()/4
	if perRound < 500 {
		perRound = 500
	}
	best := [2]float64{}
	for trial := 0; trial < rounds; trial++ {
		for i, impl := range impls {
			ns, err := latencyReuseOnce(impl, perRound)
			if err != nil {
				return err
			}
			if best[i] == 0 || ns < best[i] {
				best[i] = ns
			}
		}
	}
	rep.Uncontended = LoopUncontended{
		BatchedNs:   best[0],
		UnbatchedNs: best[1],
		Ratio:       best[0] / best[1],
	}
	return nil
}

// Loop runs the full E19 family and returns the JSON-serializable report.
// GOMAXPROCS is pinned to 8 for the run (the committed cell the guard
// names) and restored on return.
func Loop(cfg Config) (LoopReport, error) {
	rep := LoopReport{
		Schema:     LoopSchema,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: 8,
	}
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	for _, phase := range []func(Config, *LoopReport) error{
		loopClosed, loopShed, loopContended, loopUncontended,
	} {
		if err := phase(cfg, &rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// E19Loop renders the loop report as a standard experiment table.
func E19Loop(cfg Config) (Table, error) {
	rep, err := Loop(cfg)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "E19",
		Title:  "closed-loop batched admission over TCP: throughput, latency, shedding",
		Header: []string{"measurement", "params", "batched", "unbatched", "ratio"},
		Notes: fmt.Sprintf("GOMAXPROCS=8; %d workers x %d pairs over one pipelined conn, capacity %d; lost=%d residue=%d",
			rep.Workers, rep.PairsPerWorker, rep.Capacity, rep.Lost, rep.Residue),
	}
	meanBatch := "—"
	if rep.Batched.Ring.Batches > 0 {
		meanBatch = fmt.Sprintf("%.2f", float64(rep.Batched.Ring.BatchedOps)/float64(rep.Batched.Ring.Batches))
	}
	t.Rows = append(t.Rows,
		[]string{"closed-loop pairs/s", fmt.Sprintf("%dw", rep.Workers),
			fmtOps(rep.Batched.OpsPerSec), fmtOps(rep.Unbatched.OpsPerSec),
			fmt.Sprintf("%.2fx", rep.Batched.OpsPerSec/rep.Unbatched.OpsPerSec)},
		[]string{"pair latency p50/p99", "per pair",
			fmt.Sprintf("%.0f/%.0fus", rep.Batched.P50Micros, rep.Batched.P99Micros),
			fmt.Sprintf("%.0f/%.0fus", rep.Unbatched.P50Micros, rep.Unbatched.P99Micros), "—"},
		[]string{"ring batches (mean size)", fmt.Sprintf("max %d", rep.Batched.Ring.MaxBatch),
			fmt.Sprintf("%d (%s)", rep.Batched.Ring.Batches, meanBatch), "0", "—"},
		[]string{"writer flushes (frames)", "64KiB coalesce",
			fmt.Sprintf("%d (%d)", rep.Batched.Flushes, rep.Batched.FlushFrames),
			fmt.Sprintf("%d (%d)", rep.Unbatched.Flushes, rep.Unbatched.FlushFrames), "—"},
		[]string{"shed rate under overdrive", fmt.Sprintf("%dw wm=%d", rep.Shed.Workers, rep.Shed.Watermark),
			fmt.Sprintf("%.1f%% (%d/%d)", rep.Shed.ShedRatePct, rep.Shed.Shed, rep.Shed.Attempts),
			"—", "—"},
		[]string{"contended guarded ops/s", fmt.Sprintf("%dm/%dg procs=8", rep.Contended.Methods, rep.Contended.Goroutines),
			fmtOps(rep.Contended.BatchedOps), fmtOps(rep.Contended.UnbatchedOps),
			fmt.Sprintf("%.2fx", rep.Contended.Speedup)},
		[]string{"uncontended guarded ns/op", "1 caller",
			fmtNs(rep.Uncontended.BatchedNs), fmtNs(rep.Uncontended.UnbatchedNs),
			fmt.Sprintf("%.2fx", rep.Uncontended.Ratio)},
	)
	return t, nil
}
