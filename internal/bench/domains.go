package bench

// E12 — the sharded-admission-domain benchmark family, and the start of
// the repo's performance trajectory. Unlike E1-E11 (human-readable tables
// only), E12 also serializes to JSON: `ambench -json BENCH_2.json` writes
// the committed baseline that the root bench_baseline_test.go validates,
// so future PRs can diff throughput against a recorded floor.
//
// Three families compare the sharded Moderator against the single-mutex
// Reference (the paper-faithful implementation):
//
//   - contended-throughput: many goroutines over many guarded methods.
//     This is the case sharding exists for — unrelated methods must not
//     contend — and the acceptance floor is a ≥2× speedup on ≥4 cores.
//   - single-method-latency: one caller, one guarded method. Sharding must
//     not tax the uncontended path.
//   - layer-churn: invocations racing AddLayer/RemoveLayer. The
//     atomically-swapped composition snapshot must keep the hot path fast
//     while layers come and go.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/aspect"
	"repro/internal/moderator"
)

// DomainsSchema identifies the BENCH_2.json format.
const DomainsSchema = "ambench/domains-v1"

// DomainsReport is the JSON-serializable result of the E12 families.
type DomainsReport struct {
	Schema     string          `json:"schema"`
	GoMaxProcs int             `json:"go_max_procs"`
	Families   []DomainsFamily `json:"families"`
}

// DomainsFamily is one sharded-vs-reference comparison.
type DomainsFamily struct {
	Name   string         `json:"name"`
	Unit   string         `json:"unit"` // "ops/s" or "ns/op"
	Params map[string]int `json:"params"`
	// Sharded and Reference are the measured values in Unit.
	Sharded   float64 `json:"sharded"`
	Reference float64 `json:"reference"`
	// Speedup is the sharded advantage, normalized so bigger is better
	// for both units: throughput sharded/reference, latency
	// reference/sharded.
	Speedup float64 `json:"speedup"`
}

// Family names, shared with the baseline test.
const (
	FamilyContended = "contended-throughput"
	FamilyLatency   = "single-method-latency"
	FamilyChurn     = "layer-churn"
)

// DomainsFamilyNames lists every family a complete report must contain.
var DomainsFamilyNames = []string{FamilyContended, FamilyLatency, FamilyChurn}

// newDomainsModerator builds a moderator (sharded or reference) with one
// always-admitting synchronization guard per method — the cheapest
// realistic aspect, so the measurement isolates admission-path locking.
func newDomainsModerator(sharded bool, methods int) (moderator.Admitter, error) {
	var impl moderator.Admitter
	if sharded {
		impl = moderator.New("bench-domains")
	} else {
		impl = moderator.NewReference("bench-domains")
	}
	for i := 0; i < methods; i++ {
		meth := fmt.Sprintf("m%d", i)
		used := new(int)
		guard := &aspect.Func{
			AspectName: "sem-" + meth,
			AspectKind: aspect.KindSynchronization,
			Pre: func(inv *aspect.Invocation) aspect.Verdict {
				*used++
				return aspect.Resume
			},
			Post:     func(inv *aspect.Invocation) { *used-- },
			CancelFn: func(inv *aspect.Invocation) { *used-- },
			WakeList: []string{meth},
		}
		if err := impl.Register(meth, aspect.KindSynchronization, guard); err != nil {
			return nil, err
		}
	}
	return impl, nil
}

// domainsThroughput drives totalOps invocations from `goroutines` workers
// striped over `methods` methods and returns aggregate ops/sec.
func domainsThroughput(impl moderator.Admitter, methods, goroutines, totalOps int) (float64, error) {
	perG := totalOps / goroutines
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		meth := fmt.Sprintf("m%d", g%methods)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				inv := aspect.NewInvocation(context.Background(), "bench", meth, nil)
				adm, err := impl.Preactivation(inv)
				if err != nil {
					errs <- err
					return
				}
				impl.Postactivation(inv, adm)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return float64(perG*goroutines) / elapsed.Seconds(), nil
}

// benchTrials is how many measured runs each throughput variant takes;
// reports keep the best. Throughput noise on a shared box is one-sided
// (outside interference only ever slows a run down), so max-of-N is the
// standard robust estimator, and it is what makes the committed baseline
// numbers stable enough for bench_baseline_test.go to hold future PRs to.
const benchTrials = 5

// contendedVariant is one prepared contended-throughput measurement
// target: a warmed moderator (sharded or reference, optionally with a
// tracer installed) plus its best observed throughput so far.
type contendedVariant struct {
	impl moderator.Admitter
	best float64
}

// newContendedVariant builds and warms one contended moderator. A non-nil
// tracer is installed before the warm-up so the measured runs see a
// steady-state tracer (the obs E13 family passes its Collector here).
func newContendedVariant(sharded bool, methods, goroutines int, tracer moderator.Tracer) (*contendedVariant, error) {
	impl, err := newDomainsModerator(sharded, methods)
	if err != nil {
		return nil, err
	}
	if tracer != nil {
		switch m := impl.(type) {
		case *moderator.Moderator:
			m.SetTracer(tracer)
		case *moderator.Reference:
			m.SetTracer(tracer)
		}
	}
	if _, err := domainsThroughput(impl, methods, goroutines, 2000); err != nil { // warm-up
		return nil, err
	}
	return &contendedVariant{impl: impl}, nil
}

// measureContended runs benchTrials interleaved rounds over the variants,
// keeping each variant's best observed throughput. Interleaving (a, b, a,
// b, ...) instead of measuring each variant's trials consecutively makes
// the variants sample the same noise epochs — a slow patch of machine
// time cannot land entirely on one variant and fabricate a difference.
func measureContended(cfg Config, methods, goroutines int, variants []*contendedVariant) error {
	for trial := 0; trial < benchTrials; trial++ {
		for _, v := range variants {
			ops, err := domainsThroughput(v.impl, methods, goroutines, cfg.ops()*10)
			if err != nil {
				return err
			}
			if ops > v.best {
				v.best = ops
			}
		}
	}
	return nil
}

func domainsLatency(cfg Config, sharded bool) (float64, error) {
	impl, err := newDomainsModerator(sharded, 1)
	if err != nil {
		return 0, err
	}
	return measure(cfg.ops(), func(i int) error {
		inv := aspect.NewInvocation(context.Background(), "bench", "m0", nil)
		adm, err := impl.Preactivation(inv)
		if err != nil {
			return err
		}
		impl.Postactivation(inv, adm)
		return nil
	})
}

func domainsChurn(cfg Config, sharded bool, methods, goroutines int) (float64, error) {
	impl, err := newDomainsModerator(sharded, methods)
	if err != nil {
		return 0, err
	}
	stop := make(chan struct{})
	churnErr := make(chan error, 1)
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		noop := aspect.New("transient", aspect.KindMetrics, nil, nil)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := impl.AddLayer("transient", moderator.Outermost); err != nil {
				churnErr <- err
				return
			}
			for i := 0; i < methods; i++ {
				if err := impl.RegisterIn("transient", fmt.Sprintf("m%d", i), aspect.KindMetrics, noop); err != nil {
					churnErr <- err
					return
				}
			}
			if err := impl.RemoveLayer("transient"); err != nil {
				churnErr <- err
				return
			}
		}
	}()
	ops, err := domainsThroughput(impl, methods, goroutines, cfg.ops()*5)
	close(stop)
	churn.Wait()
	if err != nil {
		return 0, err
	}
	select {
	case err := <-churnErr:
		return 0, err
	default:
	}
	return ops, nil
}

// Domains runs the E12 families and returns the JSON-serializable report.
func Domains(cfg Config) (DomainsReport, error) {
	const (
		methods    = 8
		goroutines = 32
	)
	sharded, err := newContendedVariant(true, methods, goroutines, nil)
	if err != nil {
		return DomainsReport{}, err
	}
	ref, err := newContendedVariant(false, methods, goroutines, nil)
	if err != nil {
		return DomainsReport{}, err
	}
	if err := measureContended(cfg, methods, goroutines, []*contendedVariant{sharded, ref}); err != nil {
		return DomainsReport{}, err
	}
	return domainsReportFrom(cfg, methods, goroutines, sharded.best, ref.best)
}

// domainsReportFrom assembles the E12 report around already-measured
// contended-throughput numbers, then measures the latency and churn
// families. Split out so the combined baseline run (Baselines) can feed
// in contended numbers measured interleaved with the E13 variants.
func domainsReportFrom(cfg Config, methods, goroutines int, shardedOps, refOps float64) (DomainsReport, error) {
	rep := DomainsReport{Schema: DomainsSchema, GoMaxProcs: runtime.GOMAXPROCS(0)}
	rep.Families = append(rep.Families, DomainsFamily{
		Name:      FamilyContended,
		Unit:      "ops/s",
		Params:    map[string]int{"methods": methods, "goroutines": goroutines},
		Sharded:   shardedOps,
		Reference: refOps,
		Speedup:   shardedOps / refOps,
	})

	shardedNs, err := domainsLatency(cfg, true)
	if err != nil {
		return rep, err
	}
	refNs, err := domainsLatency(cfg, false)
	if err != nil {
		return rep, err
	}
	rep.Families = append(rep.Families, DomainsFamily{
		Name:      FamilyLatency,
		Unit:      "ns/op",
		Params:    map[string]int{"methods": 1, "goroutines": 1},
		Sharded:   shardedNs,
		Reference: refNs,
		Speedup:   refNs / shardedNs,
	})

	shardedChurn, err := domainsChurn(cfg, true, 4, 8)
	if err != nil {
		return rep, err
	}
	refChurn, err := domainsChurn(cfg, false, 4, 8)
	if err != nil {
		return rep, err
	}
	rep.Families = append(rep.Families, DomainsFamily{
		Name:      FamilyChurn,
		Unit:      "ops/s",
		Params:    map[string]int{"methods": 4, "goroutines": 8},
		Sharded:   shardedChurn,
		Reference: refChurn,
		Speedup:   shardedChurn / refChurn,
	})
	return rep, nil
}

// E12Domains renders the domains report as a standard experiment table so
// `ambench` includes it in the default run.
func E12Domains(cfg Config) (Table, error) {
	rep, err := Domains(cfg)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "E12",
		Title:  "sharded admission domains vs single-mutex reference",
		Header: []string{"family", "params", "sharded", "reference", "speedup"},
		Notes:  fmt.Sprintf("GOMAXPROCS=%d; speedup normalized so >1 favors sharding", rep.GoMaxProcs),
	}
	for _, f := range rep.Families {
		var sv, rv string
		if f.Unit == "ns/op" {
			sv, rv = fmtNs(f.Sharded), fmtNs(f.Reference)
		} else {
			sv, rv = fmtOps(f.Sharded), fmtOps(f.Reference)
		}
		t.Rows = append(t.Rows, []string{
			f.Name,
			fmt.Sprintf("%dm/%dg", f.Params["methods"], f.Params["goroutines"]),
			sv, rv,
			fmt.Sprintf("%.2fx", f.Speedup),
		})
	}
	return t, nil
}
