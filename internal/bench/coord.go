package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/aspect"
	"repro/internal/aspects/coord"
	"repro/internal/moderator"
	"repro/internal/proxy"
)

// E11Coordination measures the coordination aspects (an extension beyond
// the paper, exercising its "coordination" interaction property from
// Section 2): barrier cohort turnaround versus party count, and rendezvous
// pairing throughput. Claim probed: multi-party coordination composes as
// ordinary guard aspects with no coordination code in the component.
func E11Coordination(cfg Config) (Table, error) {
	t := Table{
		ID:     "E11",
		Title:  "coordination aspects (extension): barrier cohorts and rendezvous pairs",
		Header: []string{"scenario", "result"},
	}
	ctx := context.Background()

	// Barrier: wall time per cohort as party count grows.
	parties := []int{2, 4, 8}
	cohorts := 200
	if cfg.Quick {
		cohorts = 50
	}
	for _, n := range parties {
		elapsed, err := runBarrierCohorts(ctx, n, cohorts)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("barrier, %d parties, %d cohorts", n, cohorts),
			fmt.Sprintf("%s per cohort", fmtNs(float64(elapsed.Nanoseconds())/float64(cohorts))),
		})
	}

	// Rendezvous: pairs per second.
	pairs := cfg.ops() / 4
	if pairs < 500 {
		pairs = 500
	}
	elapsed, err := runRendezvousPairs(ctx, pairs)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("rendezvous, %d pairs", pairs),
		fmtOps(float64(pairs) / elapsed.Seconds()),
	})
	return t, nil
}

// runBarrierCohorts drives n parties through the given number of cohorts
// and returns the wall time.
func runBarrierCohorts(ctx context.Context, n, cohorts int) (time.Duration, error) {
	b, err := coord.NewBarrier(n, "m")
	if err != nil {
		return 0, err
	}
	mod := moderator.New("comp")
	if err := mod.Register("m", aspect.KindSynchronization, b.Aspect("barrier")); err != nil {
		return 0, err
	}
	p := proxy.New(mod)
	if err := p.Bind("m", func(*aspect.Invocation) (any, error) { return nil, nil }); err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	start := time.Now()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < cohorts; k++ {
				if _, err := p.Invoke(ctx, "m"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	if got := b.Generation(); got != uint64(cohorts) {
		return 0, fmt.Errorf("bench: barrier generations = %d, want %d", got, cohorts)
	}
	return elapsed, nil
}

// runRendezvousPairs pairs the given number of send/recv couples and
// returns the wall time.
func runRendezvousPairs(ctx context.Context, pairs int) (time.Duration, error) {
	r, err := coord.NewRendezvous("send", "recv")
	if err != nil {
		return 0, err
	}
	mod := moderator.New("comp")
	if err := mod.Register("send", aspect.KindSynchronization, r.LeftAspect("rdv-send")); err != nil {
		return 0, err
	}
	if err := mod.Register("recv", aspect.KindSynchronization, r.RightAspect("rdv-recv")); err != nil {
		return 0, err
	}
	p := proxy.New(mod)
	body := func(*aspect.Invocation) (any, error) { return nil, nil }
	if err := p.Bind("send", body); err != nil {
		return 0, err
	}
	if err := p.Bind("recv", body); err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	run := func(method string) {
		defer wg.Done()
		for k := 0; k < pairs; k++ {
			if _, err := p.Invoke(ctx, method); err != nil {
				errCh <- err
				return
			}
		}
	}
	start := time.Now()
	wg.Add(2)
	go run("send")
	go run("recv")
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return elapsed, nil
}
