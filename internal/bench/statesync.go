package bench

// E18 — the replicated state handoff family. The statesync plane promises
// three numbers. First, replication is nearly free on the plane's unit of
// work: in the distributed admission plane every guarded call reaches its
// domain owner over amrpc, so the honest overhead question is "what does
// a served invocation pay when its completion is captured and streamed to
// the ring successor" — measured here as an E7-style loopback open+assign
// workload with and without a replicating effect sink, bounded at 3% by
// the trajectory guard. Second, the raw hot-path capture (one atomic
// load, one map lookup, one lock-free ring append) is nanoseconds,
// measured directly. Third, a graceful handoff (snapshot flush plus log
// drain to the successor) is a sub-millisecond event, so lease movement
// is never gated on a slow flush. `ambench -statesync-json BENCH_6.json`
// serializes all three so bench_statesync_test.go can hold future PRs to
// the committed numbers; a baseline with log overflows bought its numbers
// by dropping captures and fails the guard.

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/amrpc"
	"repro/internal/apps/ticket"
	"repro/internal/aspect"
	"repro/internal/statesync"
)

// StatesyncSchema identifies the BENCH_6.json format.
const StatesyncSchema = "ambench/statesync-v1"

// StatesyncReport is the JSON-serializable result of the E18 family.
type StatesyncReport struct {
	Schema     string         `json:"schema"`
	GoMaxProcs int            `json:"go_max_procs"`
	Params     map[string]int `json:"params"`
	// SinkOffOps is loopback open+assign pairs per second with no effect
	// sink installed; SinkOnOps is the same workload with every completion
	// captured into a streaming replication log.
	SinkOffOps float64 `json:"sink_off_ops"`
	SinkOnOps  float64 `json:"sink_on_ops"`
	// OverheadPct is (1 - on/off) * 100: the replication tax on a served
	// plane invocation.
	OverheadPct float64 `json:"overhead_pct"`
	// CaptureNs is the direct cost of one hot-path Capture call (atomic
	// load + map lookup + ring append), with the streamer live and acking.
	CaptureNs float64 `json:"capture_ns"`
	// Captured is the total number of effects the sink-on variant logged
	// across every measured trial; Overflows counts captures the bounded
	// log refused (must be zero for an honest overhead number).
	Captured  uint64 `json:"captured"`
	Overflows uint64 `json:"overflows"`
	// HandoffEntries is the per-round log depth of the handoff latency
	// measurement; the latencies are microseconds over HandoffRounds
	// leader-to-successor snapshot handoffs.
	HandoffEntries   int     `json:"handoff_entries"`
	HandoffRounds    int     `json:"handoff_rounds"`
	HandoffP50Micros float64 `json:"handoff_p50_micros"`
	HandoffMaxMicros float64 `json:"handoff_max_micros"`
}

// benchEffectSink feeds every completion into one replicated domain, the
// same shape the cluster's effectSink uses in production.
type benchEffectSink struct {
	mgr    *statesync.Manager
	domain string
}

func (s *benchEffectSink) Effect(inv *aspect.Invocation) {
	s.mgr.Capture(s.domain, inv.Method(), inv.Args())
}

// ackTransport acknowledges every offer instantly without leaving the
// process: the fastest successor possible, so the measured cost is the
// capture path plus the streamer's bookkeeping, not network time.
type ackTransport struct{}

func (ackTransport) Offer(_ context.Context, _ string, o statesync.Offer) (statesync.Ack, error) {
	ack := o.SnapSeq
	if n := len(o.Entries); n > 0 {
		ack = o.Entries[n-1].Seq
	}
	return statesync.Ack{Acked: ack}, nil
}

// planeVariant is one loopback amrpc ticket deployment: a guarded server,
// a dialed client stub, and (for the sink-on variant) a live replication
// manager capturing every completion.
type planeVariant struct {
	stub  *amrpc.Stub
	mgr   *statesync.Manager
	close func()
	best  float64
}

func newPlaneVariant(withSink bool) (*planeVariant, error) {
	g, err := newFrameworkTicket(4)
	if err != nil {
		return nil, err
	}
	v := &planeVariant{}
	if withSink {
		mgr, err := statesync.NewManager(statesync.Config{
			Node: "bench", Transport: ackTransport{}, Capacity: 1 << 16,
		})
		if err != nil {
			return nil, err
		}
		mgr.Lead("bench", 1)
		mgr.SetSuccessor("bench", "sink")
		g.Moderator().SetEffectSink(&benchEffectSink{mgr: mgr, domain: "bench"})
		v.mgr = mgr
	}
	srv := amrpc.NewServer()
	if err := srv.Register(g.Proxy()); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	var serveWg sync.WaitGroup
	serveWg.Add(1)
	go func() {
		defer serveWg.Done()
		_ = srv.Serve(ln)
	}()
	client, err := amrpc.Dial(ln.Addr().String())
	if err != nil {
		srv.Close()
		serveWg.Wait()
		return nil, err
	}
	v.stub = client.Component(ticket.ComponentName)
	v.close = func() {
		_ = client.Close()
		srv.Close()
		serveWg.Wait()
		g.Moderator().SetEffectSink(nil)
		if v.mgr != nil {
			v.mgr.Close()
		}
	}
	return v, nil
}

func (v *planeVariant) pairsPerSec(pairs int) (float64, error) {
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < pairs; i++ {
		if _, err := v.stub.Invoke(ctx, ticket.MethodOpen, "t", "s"); err != nil {
			return 0, err
		}
		if _, err := v.stub.Invoke(ctx, ticket.MethodAssign); err != nil {
			return 0, err
		}
	}
	return float64(pairs) / time.Since(start).Seconds(), nil
}

// Statesync runs the E18 family and returns the JSON-serializable report.
func Statesync(cfg Config) (StatesyncReport, error) {
	pairs := cfg.ops() / 10
	if pairs < 500 {
		pairs = 500
	}
	off, err := newPlaneVariant(false)
	if err != nil {
		return StatesyncReport{}, err
	}
	defer off.close()
	on, err := newPlaneVariant(true)
	if err != nil {
		return StatesyncReport{}, err
	}
	defer on.close()
	// Warm both paths, then best-of-benchTrials with the variants
	// interleaved so they sample the same noise epochs.
	for _, v := range []*planeVariant{off, on} {
		if _, err := v.pairsPerSec(100); err != nil {
			return StatesyncReport{}, err
		}
	}
	for trial := 0; trial < benchTrials; trial++ {
		for _, v := range []*planeVariant{off, on} {
			ops, err := v.pairsPerSec(pairs)
			if err != nil {
				return StatesyncReport{}, err
			}
			if ops > v.best {
				v.best = ops
			}
		}
	}
	var captured, overflows uint64
	for _, st := range on.mgr.Status() {
		if st.Domain == "bench" {
			captured, overflows = st.LastSeq, st.Overflows
		}
	}

	// The raw hot-path number: one Capture call with the streamer live.
	captureNs, err := captureCost(cfg.ops())
	if err != nil {
		return StatesyncReport{}, err
	}

	entries := 512
	rounds := 32
	if cfg.Quick {
		entries, rounds = 64, 8
	}
	p50, max, err := handoffLatency(rounds, entries)
	if err != nil {
		return StatesyncReport{}, err
	}
	return StatesyncReport{
		Schema:           StatesyncSchema,
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Params:           map[string]int{"pairs_per_trial": pairs, "trials": benchTrials},
		SinkOffOps:       off.best,
		SinkOnOps:        on.best,
		OverheadPct:      (1 - on.best/off.best) * 100,
		CaptureNs:        captureNs,
		Captured:         captured,
		Overflows:        overflows,
		HandoffEntries:   entries,
		HandoffRounds:    rounds,
		HandoffP50Micros: p50,
		HandoffMaxMicros: max,
	}, nil
}

// captureCost measures the direct per-call cost of Manager.Capture on a
// led domain with a live, instantly-acked streamer — the exact work a
// guarded completion adds to the moderator's post-action path.
func captureCost(n int) (float64, error) {
	mgr, err := statesync.NewManager(statesync.Config{
		Node: "bench", Transport: ackTransport{}, Capacity: 1 << 16,
	})
	if err != nil {
		return 0, err
	}
	defer mgr.Close()
	mgr.Lead("bench", 1)
	mgr.SetSuccessor("bench", "sink")
	return measure(n, func(int) error {
		mgr.Capture("bench", "put", nil)
		return nil
	})
}

// handoffLatency measures rounds leader-to-successor handoffs, each over a
// freshly captured log of the given depth, and returns the p50 and max in
// microseconds. Each round pays the full graceful-release path: force a
// snapshot baseline, flush it with the remaining entries, and drain the
// log to Pending() == 0.
func handoffLatency(rounds, entries int) (p50, max float64, err error) {
	snap := func(string) ([]byte, error) { return []byte(`{"bench":"state"}`), nil }
	micros := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		mgr, err := statesync.NewManager(statesync.Config{
			Node: "leader", Transport: ackTransport{}, Snapshot: snap,
			Interval: time.Hour, // handoff flushes synchronously; no ticker races
		})
		if err != nil {
			return 0, 0, err
		}
		mgr.Lead("bench", uint64(r+1))
		mgr.SetSuccessor("bench", "succ")
		for i := 0; i < entries; i++ {
			mgr.Capture("bench", "put", nil)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		start := time.Now()
		_, herr := mgr.Handoff(ctx, "bench", "succ")
		elapsed := time.Since(start)
		cancel()
		mgr.Close()
		if herr != nil {
			return 0, 0, herr
		}
		micros = append(micros, float64(elapsed.Nanoseconds())/1e3)
	}
	sort.Float64s(micros)
	return micros[len(micros)/2], micros[len(micros)-1], nil
}

// E18Statesync renders the statesync report as a standard experiment
// table.
func E18Statesync(cfg Config) (Table, error) {
	rep, err := Statesync(cfg)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "E18",
		Title:  "replicated state handoff: plane overhead, capture cost, handoff latency",
		Header: []string{"measurement", "params", "value", "vs sink-off"},
		Notes: fmt.Sprintf("GOMAXPROCS=%d; %d effects captured, %d overflows; loopback amrpc open+assign pairs",
			rep.GoMaxProcs, rep.Captured, rep.Overflows),
	}
	params := fmt.Sprintf("%d pairs x %d trials", rep.Params["pairs_per_trial"], rep.Params["trials"])
	t.Rows = append(t.Rows,
		[]string{"sink-off plane throughput", params, fmtOps(rep.SinkOffOps), "—"},
		[]string{"sink-on plane throughput", params, fmtOps(rep.SinkOnOps), fmt.Sprintf("%.1f%%", rep.OverheadPct)},
		[]string{"hot-path capture", "1 domain, acked stream", fmtNs(rep.CaptureNs), "—"},
		[]string{"handoff p50", fmt.Sprintf("%d entries", rep.HandoffEntries), fmt.Sprintf("%.0fus", rep.HandoffP50Micros), "—"},
		[]string{"handoff max", fmt.Sprintf("%d entries", rep.HandoffEntries), fmt.Sprintf("%.0fus", rep.HandoffMaxMicros), "—"},
	)
	return t, nil
}
