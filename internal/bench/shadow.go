package bench

// E15 — the shadow-admission overhead family. Shadow mode replays a
// sampled fraction of live admissions against the Reference semantics off
// the hot path; its promise is that the admission path pays only one
// atomic load when no engine is installed, and a small bounded cost at
// the default stride (one sample in 64 per domain) when it is. This
// benchmark measures both against the same contended workload as the E12
// and E13 families (8 methods, 32 goroutines, sharded moderator), and
// `ambench -shadow-json BENCH_5.json` serializes the result so
// bench_shadow_test.go can hold future PRs to the committed numbers.
//
// The shadow-off variant is the identical moderator and workload with no
// engine installed. The shadow-on variant runs a started engine at the
// default stride; its replay counters ride along in the report, and a
// divergence count other than zero fails the trajectory guard — the
// production safety net must stay silent on the stock workload.

import (
	"fmt"
	"runtime"

	"repro/internal/moderator"
)

// ShadowSchema identifies the BENCH_5.json format.
const ShadowSchema = "ambench/shadow-v1"

// ShadowReport is the JSON-serializable result of the E15 family.
type ShadowReport struct {
	Schema     string `json:"schema"`
	GoMaxProcs int    `json:"go_max_procs"`
	// SampleEvery is the stride the shadow-on measurement used.
	SampleEvery int            `json:"sample_every"`
	Params      map[string]int `json:"params"`
	// ShadowOffOps is contended throughput with no shadow engine.
	ShadowOffOps float64 `json:"shadow_off_ops"`
	// ShadowOnOps is contended throughput with the engine sampling at the
	// default stride.
	ShadowOnOps float64 `json:"shadow_on_ops"`
	// OverheadPct is (1 - on/off) * 100.
	OverheadPct float64 `json:"overhead_pct"`
	// Sampled / Replayed / Divergences are the engine's counters over the
	// whole measured run.
	Sampled     uint64 `json:"sampled"`
	Replayed    uint64 `json:"replayed"`
	Divergences uint64 `json:"divergences"`
}

// Shadow runs the E15 family and returns the JSON-serializable report.
func Shadow(cfg Config) (ShadowReport, error) {
	off, err := newContendedVariant(true, obsMethods, obsGoroutines, nil)
	if err != nil {
		return ShadowReport{}, err
	}
	on, err := newContendedVariant(true, obsMethods, obsGoroutines, nil)
	if err != nil {
		return ShadowReport{}, err
	}
	m, ok := on.impl.(*moderator.Moderator)
	if !ok {
		return ShadowReport{}, fmt.Errorf("bench: shadow variant is not a sharded moderator")
	}
	sh := moderator.NewShadow(m)
	sh.Start()
	m.SetShadow(sh)
	err = measureContended(cfg, obsMethods, obsGoroutines, []*contendedVariant{off, on})
	m.SetShadow(nil)
	sh.Stop()
	if err != nil {
		return ShadowReport{}, err
	}
	st := sh.Stats()
	return ShadowReport{
		Schema:       ShadowSchema,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		SampleEvery:  sh.SampleEvery(),
		Params:       map[string]int{"methods": obsMethods, "goroutines": obsGoroutines},
		ShadowOffOps: off.best,
		ShadowOnOps:  on.best,
		OverheadPct:  (1 - on.best/off.best) * 100,
		Sampled:      st.Sampled,
		Replayed:     st.Replayed,
		Divergences:  st.Divergences(),
	}, nil
}

// E15Shadow renders the shadow overhead report as a standard experiment
// table, adding a full-sampling row (1 in 1) the JSON report does not
// carry, to show the cost ceiling of replaying every admission.
func E15Shadow(cfg Config) (Table, error) {
	rep, err := Shadow(cfg)
	if err != nil {
		return Table{}, err
	}
	fullV, err := newContendedVariant(true, obsMethods, obsGoroutines, nil)
	if err != nil {
		return Table{}, err
	}
	fm := fullV.impl.(*moderator.Moderator)
	fsh := moderator.NewShadow(fm, moderator.WithShadowSampleEvery(1))
	fsh.Start()
	fm.SetShadow(fsh)
	err = measureContended(cfg, obsMethods, obsGoroutines, []*contendedVariant{fullV})
	fm.SetShadow(nil)
	fsh.Stop()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "E15",
		Title:  "shadow admission overhead (contended, sharded)",
		Header: []string{"variant", "params", "ops/s", "overhead"},
		Notes: fmt.Sprintf("GOMAXPROCS=%d; overhead vs shadow-off; default stride 1 in %d; %d replays, %d divergences",
			rep.GoMaxProcs, rep.SampleEvery, rep.Replayed, rep.Divergences),
	}
	params := fmt.Sprintf("%dm/%dg", obsMethods, obsGoroutines)
	row := func(name string, ops float64) {
		t.Rows = append(t.Rows, []string{name, params, fmtOps(ops),
			fmt.Sprintf("%.1f%%", (1-ops/rep.ShadowOffOps)*100)})
	}
	row("shadow-off", rep.ShadowOffOps)
	row(fmt.Sprintf("shadow-on (1/%d)", rep.SampleEvery), rep.ShadowOnOps)
	row("shadow-on (1/1)", fullV.best)
	return t, nil
}
