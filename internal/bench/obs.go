package bench

// E13 — the observability overhead family. The obs subsystem promises
// that tracing hooks cost nothing when disabled (one atomic load and a
// branch per phase) and stay within a small bound when enabled at the
// default sampling rate. This benchmark measures both against the same
// contended workload as E12's contended-throughput family (8 methods, 32
// goroutines, sharded moderator), and `ambench -obs-json BENCH_3.json`
// serializes the result so bench_baseline_test.go can hold future PRs to
// the committed numbers.
//
// The hooks-off variant is the E12 contended sharded configuration — the
// identical moderator, aspects, and workload, with no tracer ever
// installed. The canonical way to regenerate the committed baselines is
// therefore ONE invocation writing both files (`ambench -json
// BENCH_2.json -obs-json BENCH_3.json`, what `make bench` runs): the
// combined run (Baselines) measures E12-sharded, E12-reference, and
// hooks-on interleaved in a single pass, so the cross-file comparison the
// baseline test enforces is between numbers that sampled the same machine
// epochs rather than separate runs minutes apart.

import (
	"fmt"
	"runtime"

	"repro/internal/obs"
)

// ObsSchema identifies the BENCH_3.json format.
const ObsSchema = "ambench/obs-v1"

// ObsReport is the JSON-serializable result of the E13 family.
type ObsReport struct {
	Schema     string `json:"schema"`
	GoMaxProcs int    `json:"go_max_procs"`
	// SampleEvery is the rate the hooks-on measurement used.
	SampleEvery int            `json:"sample_every"`
	Params      map[string]int `json:"params"`
	// HooksOffOps is contended throughput with no tracer installed.
	HooksOffOps float64 `json:"hooks_off_ops"`
	// HooksOnOps is contended throughput with a default collector.
	HooksOnOps float64 `json:"hooks_on_ops"`
	// OverheadPct is (1 - on/off) * 100.
	OverheadPct float64 `json:"overhead_pct"`
}

// obsParams are the E13 workload parameters, matching E12's
// contended-throughput family.
const (
	obsMethods    = 8
	obsGoroutines = 32
)

func newObsReport(off, on float64) ObsReport {
	return ObsReport{
		Schema:      ObsSchema,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		SampleEvery: obs.DefaultSampleEvery,
		Params:      map[string]int{"methods": obsMethods, "goroutines": obsGoroutines},
		HooksOffOps: off,
		HooksOnOps:  on,
		OverheadPct: (1 - on/off) * 100,
	}
}

// Obs runs the E13 family alone and returns the JSON-serializable report.
func Obs(cfg Config) (ObsReport, error) {
	off, err := newContendedVariant(true, obsMethods, obsGoroutines, nil)
	if err != nil {
		return ObsReport{}, err
	}
	on, err := newContendedVariant(true, obsMethods, obsGoroutines, obs.NewCollector())
	if err != nil {
		return ObsReport{}, err
	}
	if err := measureContended(cfg, obsMethods, obsGoroutines, []*contendedVariant{off, on}); err != nil {
		return ObsReport{}, err
	}
	return newObsReport(off.best, on.best), nil
}

// Baselines runs the E12 and E13 families together, measuring the three
// contended variants (E12 sharded, E12 reference, hooks-on) interleaved
// in one pass. The E12 sharded number doubles as E13's hooks-off — they
// are the same configuration, so sharing the measurement makes the
// committed BENCH_2/BENCH_3 relationship exact instead of subject to
// cross-run machine drift.
func Baselines(cfg Config) (DomainsReport, ObsReport, error) {
	sharded, err := newContendedVariant(true, obsMethods, obsGoroutines, nil)
	if err != nil {
		return DomainsReport{}, ObsReport{}, err
	}
	ref, err := newContendedVariant(false, obsMethods, obsGoroutines, nil)
	if err != nil {
		return DomainsReport{}, ObsReport{}, err
	}
	on, err := newContendedVariant(true, obsMethods, obsGoroutines, obs.NewCollector())
	if err != nil {
		return DomainsReport{}, ObsReport{}, err
	}
	if err := measureContended(cfg, obsMethods, obsGoroutines,
		[]*contendedVariant{sharded, ref, on}); err != nil {
		return DomainsReport{}, ObsReport{}, err
	}
	domRep, err := domainsReportFrom(cfg, obsMethods, obsGoroutines, sharded.best, ref.best)
	if err != nil {
		return DomainsReport{}, ObsReport{}, err
	}
	return domRep, newObsReport(sharded.best, on.best), nil
}

// E13Obs renders the obs overhead report as a standard experiment table,
// adding a full-sampling row (1 in 1) the JSON report does not carry, to
// show the cost ceiling of tracing every invocation.
func E13Obs(cfg Config) (Table, error) {
	rep, err := Obs(cfg)
	if err != nil {
		return Table{}, err
	}
	fullV, err := newContendedVariant(true, obsMethods, obsGoroutines,
		obs.NewCollector(obs.WithSampleEvery(1)))
	if err != nil {
		return Table{}, err
	}
	if err := measureContended(cfg, obsMethods, obsGoroutines,
		[]*contendedVariant{fullV}); err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "E13",
		Title:  "observability hook overhead (contended, sharded)",
		Header: []string{"variant", "params", "ops/s", "overhead"},
		Notes: fmt.Sprintf("GOMAXPROCS=%d; overhead vs hooks-off; default sampling 1 in %d",
			rep.GoMaxProcs, rep.SampleEvery),
	}
	params := fmt.Sprintf("%dm/%dg", obsMethods, obsGoroutines)
	row := func(name string, ops float64) {
		t.Rows = append(t.Rows, []string{name, params, fmtOps(ops),
			fmt.Sprintf("%.1f%%", (1-ops/rep.HooksOffOps)*100)})
	}
	row("hooks-off", rep.HooksOffOps)
	row(fmt.Sprintf("hooks-on (1/%d)", rep.SampleEvery), rep.HooksOnOps)
	row("hooks-on (1/1)", fullV.best)
	return t, nil
}
