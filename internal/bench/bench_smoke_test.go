package bench

import (
	"strings"
	"testing"
)

// TestAllExperimentsSmoke runs every experiment with a tiny budget and
// checks each produces a well-formed, non-empty table. This keeps the
// ambench harness from rotting between full benchmark runs.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke run is not short")
	}
	cfg := Config{Ops: 2000, Quick: true}
	tables, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(Experiments) {
		t.Fatalf("tables = %d, want %d", len(tables), len(Experiments))
	}
	for i, tb := range tables {
		if tb.ID != Experiments[i].ID {
			t.Errorf("table %d id = %s, want %s", i, tb.ID, Experiments[i].ID)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s: row width %d != header width %d", tb.ID, len(row), len(tb.Header))
			}
		}
		rendered := tb.Render()
		if !strings.Contains(rendered, tb.ID) || !strings.Contains(rendered, tb.Header[0]) {
			t.Errorf("%s: render missing id or header:\n%s", tb.ID, rendered)
		}
	}
}

func TestAllFilters(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	tables, err := All(Config{Ops: 1000, Quick: true}, "E3")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "E3" {
		t.Fatalf("filtered tables = %+v", tables)
	}
	none, err := All(Config{Ops: 1000, Quick: true}, "E99")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("unknown id must select nothing, got %d", len(none))
	}
}
