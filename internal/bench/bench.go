// Package bench is the experiment harness of the reproduction. The paper's
// evaluation is qualitative (architecture and code walkthroughs, Figures
// 1-18); this package defines the quantitative experiments its claims
// imply — E1 through E11 of DESIGN.md / EXPERIMENTS.md — and runs each to
// a small table of measurements. cmd/ambench prints them; the root
// bench_test.go exposes the same scenarios as testing.B benchmarks.
package bench

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/amrpc"
	"repro/internal/apps/auction"
	"repro/internal/apps/reservation"
	"repro/internal/apps/ticket"
	"repro/internal/apps/timecard"
	"repro/internal/aspect"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/fault"
	"repro/internal/aspects/metrics"
	"repro/internal/baseline/decorator"
	"repro/internal/baseline/tangled"
	"repro/internal/moderator"
	"repro/internal/proxy"
	"repro/internal/waitq"
)

// Table is one experiment's result, printable as plain text.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Render formats the table for a terminal.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		out := ""
		for i, c := range cells {
			out += fmt.Sprintf("%-*s  ", widths[i], c)
		}
		return out + "\n"
	}
	out := fmt.Sprintf("== %s: %s ==\n", t.ID, t.Title)
	out += line(t.Header)
	for _, row := range t.Rows {
		out += line(row)
	}
	if t.Notes != "" {
		out += "note: " + t.Notes + "\n"
	}
	return out
}

// Config scales the experiments.
type Config struct {
	// Ops is the per-measurement operation count (default 20000).
	Ops int
	// Quick trims parameter sweeps for smoke runs.
	Quick bool
}

func (c Config) ops() int {
	if c.Ops <= 0 {
		return 20000
	}
	return c.Ops
}

// Experiment pairs an id with its runner.
type Experiment struct {
	ID  string
	Run func(Config) (Table, error)
}

// Experiments lists every experiment in report order.
var Experiments = []Experiment{
	{"E1", E1Overhead},
	{"E2", E2Contention},
	{"E3", E3ChainLength},
	{"E4", E4AuthLayer},
	{"E5", E5WakePolicy},
	{"E6", E6Priority},
	{"E7", E7Remote},
	{"E8", E8Fault},
	{"E9", E9Churn},
	{"E10", E10Reuse},
	{"E11", E11Coordination},
	{"E12", E12Domains},
	{"E13", E13Obs},
	{"E14", E14Matrix},
	{"E15", E15Shadow},
	{"E18", E18Statesync},
	{"E19", E19Loop},
}

// All runs the experiments whose ids are listed (every experiment when ids
// is empty), in report order.
func All(cfg Config, ids ...string) ([]Table, error) {
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	out := make([]Table, 0, len(Experiments))
	for _, e := range Experiments {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		t, err := e.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// measure times n executions of fn and returns ns/op.
func measure(n int, fn func(i int) error) (float64, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(n), nil
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fus", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func fmtOps(opsPerSec float64) string {
	switch {
	case opsPerSec >= 1e6:
		return fmt.Sprintf("%.2fM/s", opsPerSec/1e6)
	case opsPerSec >= 1e3:
		return fmt.Sprintf("%.1fk/s", opsPerSec/1e3)
	default:
		return fmt.Sprintf("%.0f/s", opsPerSec)
	}
}

// newFrameworkTicket builds a sync-only guarded ticket service.
func newFrameworkTicket(capacity int, opts ...moderator.Option) (*ticket.Guarded, error) {
	return ticket.NewGuarded(ticket.GuardedConfig{
		Capacity:         capacity,
		ModeratorOptions: opts,
	})
}

// E1Overhead measures the uncontended cost of one open+assign pair under
// each composition style. Claim probed: the framework's indirection is a
// bounded constant cost over hand-tangled code.
func E1Overhead(cfg Config) (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  "uncontended invocation overhead (one open+assign pair per op)",
		Header: []string{"variant", "ns/op", "vs direct"},
		Notes:  "direct has no concurrency protection at all; every other variant is concurrency-safe",
	}
	n := cfg.ops()
	type variant struct {
		name string
		run  func(i int) error
	}
	ctx := context.Background()

	// direct: the bare sequential component.
	direct, err := ticket.NewServer(4)
	if err != nil {
		return t, err
	}
	// framework: moderator + proxy + sync aspects.
	fw, err := newFrameworkTicket(4)
	if err != nil {
		return t, err
	}
	fwp := fw.Proxy()
	// tangled baseline.
	tg, err := tangled.New(tangled.Config{Capacity: 4})
	if err != nil {
		return t, err
	}
	// decorator baseline: bare proxy + mutex interceptor.
	dcInner := proxy.New(moderator.New("ticket-dc"))
	dcSrv, err := ticket.NewServer(4)
	if err != nil {
		return t, err
	}
	if err := dcInner.Bind("open", func(inv *aspect.Invocation) (any, error) {
		id, _ := inv.ArgString(0)
		return nil, dcSrv.Open(ticket.Ticket{ID: id})
	}); err != nil {
		return t, err
	}
	if err := dcInner.Bind("assign", func(*aspect.Invocation) (any, error) {
		return dcSrv.Assign()
	}); err != nil {
		return t, err
	}
	dc, err := decorator.Chain(dcInner, decorator.MutexInterceptor())
	if err != nil {
		return t, err
	}

	variants := []variant{
		{"direct (unsafe)", func(i int) error {
			if err := direct.Open(ticket.Ticket{ID: "t"}); err != nil {
				return err
			}
			_, err := direct.Assign()
			return err
		}},
		{"framework (sync aspects)", func(i int) error {
			if _, err := fwp.Invoke(ctx, ticket.MethodOpen, "t", "s"); err != nil {
				return err
			}
			_, err := fwp.Invoke(ctx, ticket.MethodAssign)
			return err
		}},
		{"tangled (hand-woven)", func(i int) error {
			if err := tg.Open(ctx, "", ticket.Ticket{ID: "t"}); err != nil {
				return err
			}
			_, err := tg.Assign(ctx, "")
			return err
		}},
		{"decorator (mutex chain)", func(i int) error {
			if _, err := dc.Invoke(ctx, "open", "t"); err != nil {
				return err
			}
			_, err := dc.Invoke(ctx, "assign")
			return err
		}},
	}
	var base float64
	for i, v := range variants {
		ns, err := measure(n, v.run)
		if err != nil {
			return t, fmt.Errorf("%s: %w", v.name, err)
		}
		if i == 0 {
			base = ns
		}
		t.Rows = append(t.Rows, []string{v.name, fmtNs(ns), fmt.Sprintf("%.1fx", ns/base)})
	}
	return t, nil
}

// runPipeline moves total tickets through an open/assign service with the
// given producer/consumer counts and returns aggregate ops/sec (an op is
// one open or one assign). The callbacks receive a context that is
// cancelled on the first failure, so one failed worker cannot strand its
// blocked counterparts.
func runPipeline(total, producers, consumers int,
	open func(ctx context.Context, id string) error, assign func(ctx context.Context) error) (float64, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	perProd := total / producers
	perCons := total / consumers
	realTotal := perProd * producers
	// Adjust consumer shares to drain exactly what is produced.
	consShare := make([]int, consumers)
	left := realTotal
	for i := range consShare {
		consShare[i] = perCons
		left -= perCons
	}
	for i := 0; left > 0; i = (i + 1) % consumers {
		consShare[i]++
		left--
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel() // release blocked counterparts
	}
	start := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < perProd; k++ {
				if err := open(ctx, fmt.Sprintf("t-%d-%d", p, k)); err != nil {
					fail(err)
					return
				}
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < consShare[c]; k++ {
				if err := assign(ctx); err != nil {
					fail(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return 0, firstErr
	}
	return float64(2*realTotal) / elapsed.Seconds(), nil
}

// E2Contention sweeps producer/consumer counts and buffer capacities.
// Claim probed: separating synchronization into aspects does not cost
// scalability relative to hand-tangled monitors.
func E2Contention(cfg Config) (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "throughput under contention (P producers, P consumers, capacity K)",
		Header: []string{"P", "K", "framework", "tangled", "fw/tangled"},
	}
	ps := []int{1, 2, 4, 8}
	ks := []int{1, 16, 256}
	if cfg.Quick {
		ps = []int{1, 4}
		ks = []int{1, 16}
	}
	total := cfg.ops()
	for _, p := range ps {
		for _, k := range ks {
			fw, err := newFrameworkTicket(k)
			if err != nil {
				return t, err
			}
			fwp := fw.Proxy()
			fwOps, err := runPipeline(total, p, p,
				func(ctx context.Context, id string) error {
					_, err := fwp.Invoke(ctx, ticket.MethodOpen, id, "s")
					return err
				},
				func(ctx context.Context) error {
					_, err := fwp.Invoke(ctx, ticket.MethodAssign)
					return err
				})
			if err != nil {
				return t, err
			}
			tg, err := tangled.New(tangled.Config{Capacity: k})
			if err != nil {
				return t, err
			}
			tgOps, err := runPipeline(total, p, p,
				func(ctx context.Context, id string) error { return tg.Open(ctx, "", ticket.Ticket{ID: id}) },
				func(ctx context.Context) error {
					_, err := tg.Assign(ctx, "")
					return err
				})
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(p), fmt.Sprint(k),
				fmtOps(fwOps), fmtOps(tgOps),
				fmt.Sprintf("%.2f", fwOps/tgOps),
			})
		}
	}
	return t, nil
}

// E3ChainLength measures invocation latency against the number of no-op
// aspects guarding the method. Claim probed: evaluation cost is linear in
// chain length with a small constant.
func E3ChainLength(cfg Config) (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "latency vs aspect chain length (no-op aspects)",
		Header: []string{"aspects", "ns/op", "marginal ns/aspect"},
	}
	ctx := context.Background()
	lengths := []int{0, 1, 2, 4, 8, 16}
	if cfg.Quick {
		lengths = []int{0, 4, 16}
	}
	n := cfg.ops()
	var prev float64
	var prevLen int
	for idx, l := range lengths {
		mod := moderator.New("chain")
		for k := 0; k < l; k++ {
			kind := aspect.Kind(fmt.Sprintf("noop-%d", k))
			if err := mod.Register("m", kind, aspect.New(fmt.Sprintf("noop-%d", k), kind, nil, nil)); err != nil {
				return t, err
			}
		}
		p := proxy.New(mod)
		if err := p.Bind("m", func(*aspect.Invocation) (any, error) { return nil, nil }); err != nil {
			return t, err
		}
		ns, err := measure(n, func(int) error {
			_, err := p.Invoke(ctx, "m")
			return err
		})
		if err != nil {
			return t, err
		}
		marginal := "-"
		if idx > 0 && l > prevLen {
			marginal = fmtNs((ns - prev) / float64(l-prevLen))
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(l), fmtNs(ns), marginal})
		prev, prevLen = ns, l
	}
	return t, nil
}

// E4AuthLayer measures the cost of the paper's adaptability scenario: the
// authentication layer added at runtime, versus re-engineering the tangled
// server. Claim probed: composed extension costs no more than invasive
// extension.
func E4AuthLayer(cfg Config) (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "adaptability: authentication layered on vs tangled-in (open+assign pair)",
		Header: []string{"variant", "ns/op", "auth delta"},
	}
	ctx := context.Background()
	n := cfg.ops()

	// Framework without and with the auth layer.
	fwPlain, err := newFrameworkTicket(4)
	if err != nil {
		return t, err
	}
	fwAuth, err := newFrameworkTicket(4)
	if err != nil {
		return t, err
	}
	store := auth.NewTokenStore()
	tok := store.Issue("alice", "client")
	if err := fwAuth.EnableAuthentication(store); err != nil {
		return t, err
	}

	// Tangled without and with inline auth.
	tgPlain, err := tangled.New(tangled.Config{Capacity: 4})
	if err != nil {
		return t, err
	}
	tgAuth, err := tangled.New(tangled.Config{Capacity: 4, Authenticate: true})
	if err != nil {
		return t, err
	}
	tgAuth.IssueToken("tok", "alice")

	fwRun := func(g *ticket.Guarded, useToken bool) func(int) error {
		p := g.Proxy()
		return func(int) error {
			inv := aspect.NewInvocation(ctx, p.Name(), ticket.MethodOpen, []any{"t", "s"})
			if useToken {
				auth.WithToken(inv, tok)
			}
			if _, err := p.Call(inv); err != nil {
				return err
			}
			inv2 := aspect.NewInvocation(ctx, p.Name(), ticket.MethodAssign, nil)
			if useToken {
				auth.WithToken(inv2, tok)
			}
			_, err := p.Call(inv2)
			return err
		}
	}
	tgRun := func(s *tangled.Server, token string) func(int) error {
		return func(int) error {
			if err := s.Open(ctx, token, ticket.Ticket{ID: "t"}); err != nil {
				return err
			}
			_, err := s.Assign(ctx, token)
			return err
		}
	}

	fwPlainNs, err := measure(n, fwRun(fwPlain, false))
	if err != nil {
		return t, err
	}
	fwAuthNs, err := measure(n, fwRun(fwAuth, true))
	if err != nil {
		return t, err
	}
	tgPlainNs, err := measure(n, tgRun(tgPlain, ""))
	if err != nil {
		return t, err
	}
	tgAuthNs, err := measure(n, tgRun(tgAuth, "tok"))
	if err != nil {
		return t, err
	}
	t.Rows = [][]string{
		{"framework sync-only", fmtNs(fwPlainNs), "-"},
		{"framework +auth layer", fmtNs(fwAuthNs), fmtNs(fwAuthNs - fwPlainNs)},
		{"tangled sync-only", fmtNs(tgPlainNs), "-"},
		{"tangled +auth inline", fmtNs(tgAuthNs), fmtNs(tgAuthNs - tgPlainNs)},
	}
	t.Notes = "framework auth required zero functional-code change; tangled auth required editing both methods"
	return t, nil
}

// E5WakePolicy observes which parked caller each wake policy admits
// first. N producers park, in a known order, on a full capacity-1 buffer;
// a consumer then releases slots one at a time; the admission order is
// recorded. Claim probed: the wake policy is a pluggable scheduling
// concern — FIFO admits in park order, LIFO in reverse, Priority by the
// invocation's priority.
func E5WakePolicy(cfg Config) (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "wake policy: admission order of parked producers (capacity-1 buffer, WakeSingle)",
		Header: []string{"policy", "park order", "admission order", "matches expectation"},
		Notes:  "producer i parks i-th and carries priority i, so Priority expects reverse park order",
	}
	const parked = 5
	for _, pol := range []waitq.Policy{waitq.FIFO, waitq.LIFO, waitq.Priority} {
		order, err := wakeOrder(pol, parked)
		if err != nil {
			return t, err
		}
		want := make([]int, parked)
		for i := range want {
			switch pol {
			case waitq.FIFO:
				want[i] = i
			default: // LIFO and Priority(prio=i) both expect reverse
				want[i] = parked - 1 - i
			}
		}
		t.Rows = append(t.Rows, []string{
			pol.String(),
			intsToString(seq(parked)),
			intsToString(order),
			fmt.Sprint(equalInts(order, want)),
		})
	}
	return t, nil
}

// wakeOrder parks n producers in index order on a full buffer and returns
// the order in which consuming n items admits them.
func wakeOrder(pol waitq.Policy, n int) ([]int, error) {
	fw, err := newFrameworkTicket(1,
		moderator.WithWakePolicy(pol), moderator.WithWakeMode(moderator.WakeSingle))
	if err != nil {
		return nil, err
	}
	p := fw.Proxy()
	ctx := context.Background()
	// Fill the single slot so every producer parks.
	if _, err := p.Invoke(ctx, ticket.MethodOpen, "fill", "s"); err != nil {
		return nil, err
	}
	admitted := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := p.InvokeWithPriority(ctx, i, ticket.MethodOpen,
				fmt.Sprintf("t%d", i), "s"); err != nil {
				return
			}
			admitted <- i
		}(i)
		// Ensure producer i is parked before producer i+1 arrives, fixing
		// the park (ticket) order.
		deadline := time.Now().Add(5 * time.Second)
		for fw.Moderator().Waiting(ticket.MethodOpen) < i+1 {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("producer %d never parked", i)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	// Consume n items: each assign frees the slot and wakes one producer.
	// Between releases, wait for the parked set to stabilize — a woken
	// producer whose guard failed again (woken by the completing
	// producer's wake of its own method) must be back in the queue before
	// the next notify, or it would miss its turn while in transit.
	order := make([]int, 0, n)
	for k := 0; k < n; k++ {
		if _, err := p.Invoke(ctx, ticket.MethodAssign); err != nil {
			return nil, err
		}
		select {
		case i := <-admitted:
			order = append(order, i)
		case <-time.After(5 * time.Second):
			return nil, fmt.Errorf("no admission after release %d", k)
		}
		deadline := time.Now().Add(5 * time.Second)
		for fw.Moderator().Waiting(ticket.MethodOpen) != n-k-1 {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("parked set never stabilized after release %d", k)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	wg.Wait()
	return order, nil
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func intsToString(xs []int) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprint(x)
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// E6Priority parks interleaved high- and low-priority callers behind a
// held concurrency ceiling, then releases it and records admission ranks.
// Claim probed: the scheduling concern (priority) composes as an aspect
// and visibly reorders admission: every high-priority caller should be
// admitted before any low-priority one.
func E6Priority(cfg Config) (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  "priority admission order (held ceiling released once, WakeSingle+priority)",
		Header: []string{"class", "mean admission rank", "first", "last"},
		Notes:  "ranks 1..N; all high ranks should precede all low ranks",
	}
	fw, err := newFrameworkTicket(1024,
		moderator.WithWakePolicy(waitq.Priority), moderator.WithWakeMode(moderator.WakeSingle))
	if err != nil {
		return t, err
	}
	inUse := 0
	ceiling := &aspect.Func{
		AspectName: "ceiling",
		AspectKind: aspect.KindScheduling,
		Pre: func(*aspect.Invocation) aspect.Verdict {
			if inUse > 0 {
				return aspect.Block
			}
			inUse++
			return aspect.Resume
		},
		Post:     func(*aspect.Invocation) { inUse-- },
		CancelFn: func(*aspect.Invocation) { inUse-- },
		WakeList: []string{ticket.MethodOpen},
	}
	if err := fw.Moderator().Register(ticket.MethodOpen, aspect.KindScheduling, ceiling); err != nil {
		return t, err
	}
	p := fw.Proxy()
	ctx := context.Background()

	// Hold the ceiling so everyone parks.
	holder := aspect.NewInvocation(ctx, p.Name(), ticket.MethodOpen, []any{"hold", "s"})
	holderAdm, err := fw.Moderator().Preactivation(holder)
	if err != nil {
		return t, err
	}

	const perClass = 6
	type result struct {
		priority int
		rank     int
	}
	admitted := make(chan result, 2*perClass)
	var rank atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 2*perClass; i++ {
		prio := 1
		if i%2 == 0 {
			prio = 10
		}
		wg.Add(1)
		go func(prio, i int) {
			defer wg.Done()
			if _, err := p.InvokeWithPriority(ctx, prio, ticket.MethodOpen,
				fmt.Sprintf("t%d", i), "s"); err != nil {
				return
			}
			admitted <- result{priority: prio, rank: int(rank.Add(1))}
		}(prio, i)
		deadline := time.Now().Add(5 * time.Second)
		for fw.Moderator().Waiting(ticket.MethodOpen) < i+1 {
			if time.Now().After(deadline) {
				return t, fmt.Errorf("caller %d never parked", i)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	// Release the holder: the ceiling cascades through the queue.
	fw.Moderator().Postactivation(holder, holderAdm)
	wg.Wait()
	close(admitted)

	sums := map[int][]int{}
	for r := range admitted {
		sums[r.priority] = append(sums[r.priority], r.rank)
	}
	for _, cls := range []struct {
		name string
		prio int
	}{{"high (prio 10)", 10}, {"low (prio 1)", 1}} {
		ranks := sums[cls.prio]
		if len(ranks) == 0 {
			t.Rows = append(t.Rows, []string{cls.name, "n/a", "-", "-"})
			continue
		}
		sum, min, max := 0, ranks[0], ranks[0]
		for _, r := range ranks {
			sum += r
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
		}
		t.Rows = append(t.Rows, []string{
			cls.name,
			fmt.Sprintf("%.1f", float64(sum)/float64(len(ranks))),
			fmt.Sprint(min),
			fmt.Sprint(max),
		})
	}
	return t, nil
}

// E7Remote compares local guarded invocation against the same component
// behind the amrpc boundary on loopback. Claim probed: aspects add
// negligible cost at network latencies (location transparency is
// affordable).
func E7Remote(cfg Config) (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  "local vs remote guarded invocation (open+assign pair, loopback)",
		Header: []string{"variant", "ns/op", "vs local"},
	}
	ctx := context.Background()
	n := cfg.ops() / 10
	if n < 500 {
		n = 500
	}

	local, err := newFrameworkTicket(4)
	if err != nil {
		return t, err
	}
	lp := local.Proxy()
	localNs, err := measure(n, func(int) error {
		if _, err := lp.Invoke(ctx, ticket.MethodOpen, "t", "s"); err != nil {
			return err
		}
		_, err := lp.Invoke(ctx, ticket.MethodAssign)
		return err
	})
	if err != nil {
		return t, err
	}

	remote, err := newFrameworkTicket(4)
	if err != nil {
		return t, err
	}
	srv := amrpc.NewServer()
	if err := srv.Register(remote.Proxy()); err != nil {
		return t, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return t, err
	}
	var serveWg sync.WaitGroup
	serveWg.Add(1)
	go func() {
		defer serveWg.Done()
		_ = srv.Serve(ln)
	}()
	client, err := amrpc.Dial(ln.Addr().String())
	if err != nil {
		srv.Close()
		serveWg.Wait()
		return t, err
	}
	stub := client.Component(ticket.ComponentName)
	remoteNs, err := measure(n, func(int) error {
		if _, err := stub.Invoke(ctx, ticket.MethodOpen, "t", "s"); err != nil {
			return err
		}
		_, err := stub.Invoke(ctx, ticket.MethodAssign)
		return err
	})
	_ = client.Close()
	srv.Close()
	serveWg.Wait()
	if err != nil {
		return t, err
	}
	t.Rows = [][]string{
		{"local guarded", fmtNs(localNs), "1.0x"},
		{"remote guarded (loopback)", fmtNs(remoteNs), fmt.Sprintf("%.1fx", remoteNs/localNs)},
	}
	t.Notes = "the gap is wire+serialization cost; aspect evaluation is the same code on both rows"
	return t, nil
}

// E8Fault measures the fault-tolerance aspects: breaker overhead when
// healthy, shed behaviour when the component is down, and retry recovery.
func E8Fault(cfg Config) (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "fault-tolerance aspects (breaker, retry)",
		Header: []string{"scenario", "result"},
	}
	ctx := context.Background()
	n := cfg.ops()

	// Breaker overhead on a healthy component.
	healthy := proxy.New(moderator.New("svc"))
	if err := healthy.Bind("m", func(*aspect.Invocation) (any, error) { return nil, nil }); err != nil {
		return t, err
	}
	baseNs, err := measure(n, func(int) error {
		_, err := healthy.Invoke(ctx, "m")
		return err
	})
	if err != nil {
		return t, err
	}
	guarded := proxy.New(moderator.New("svc-cb"))
	if err := guarded.Bind("m", func(*aspect.Invocation) (any, error) { return nil, nil }); err != nil {
		return t, err
	}
	cb, err := fault.NewCircuitBreaker(fault.CircuitBreakerConfig{Threshold: 5, Cooldown: time.Second})
	if err != nil {
		return t, err
	}
	if err := guarded.Moderator().Register("m", aspect.KindFaultTolerance, cb.Aspect("cb")); err != nil {
		return t, err
	}
	cbNs, err := measure(n, func(int) error {
		_, err := guarded.Invoke(ctx, "m")
		return err
	})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{"breaker overhead (healthy)", fmt.Sprintf("%s -> %s (+%s)", fmtNs(baseNs), fmtNs(cbNs), fmtNs(cbNs-baseNs))})

	// Breaker shed rate on a dead component.
	dead := proxy.New(moderator.New("svc-dead"))
	boom := errors.New("down")
	if err := dead.Bind("m", func(*aspect.Invocation) (any, error) { return nil, boom }); err != nil {
		return t, err
	}
	cb2, err := fault.NewCircuitBreaker(fault.CircuitBreakerConfig{Threshold: 5, Cooldown: time.Minute})
	if err != nil {
		return t, err
	}
	if err := dead.Moderator().Register("m", aspect.KindFaultTolerance, cb2.Aspect("cb")); err != nil {
		return t, err
	}
	shed, reached := 0, 0
	calls := 1000
	for i := 0; i < calls; i++ {
		_, err := dead.Invoke(ctx, "m")
		switch {
		case errors.Is(err, fault.ErrCircuitOpen):
			shed++
		case errors.Is(err, boom):
			reached++
		}
	}
	t.Rows = append(t.Rows,
		[]string{"breaker on dead component", fmt.Sprintf("%d/%d calls reached it, %d shed", reached, calls, shed)})

	// Retry over a flaky component.
	attempts := 0
	flaky := proxy.New(moderator.New("svc-flaky"))
	if err := flaky.Bind("m", func(*aspect.Invocation) (any, error) {
		attempts++
		if attempts%3 != 0 { // fails 2 of each 3 attempts
			return nil, errors.New("transient")
		}
		return nil, nil
	}); err != nil {
		return t, err
	}
	r, err := fault.Retry(flaky, fault.RetryPolicy{MaxAttempts: 5})
	if err != nil {
		return t, err
	}
	ok := 0
	const tries = 300
	for i := 0; i < tries; i++ {
		if _, err := r.Invoke(ctx, "m"); err == nil {
			ok++
		}
	}
	t.Rows = append(t.Rows,
		[]string{"retry over 66%-failing component", fmt.Sprintf("%d/%d calls succeeded (%d raw attempts)", ok, tries, attempts)})
	return t, nil
}

// E9Churn measures throughput while the composition is continuously
// re-formed (a layer added and removed) versus a static composition.
// Claim probed: dynamic adaptability does not stall in-flight work.
func E9Churn(cfg Config) (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  "dynamic re-composition under load (open+assign pairs)",
		Header: []string{"composition", "throughput"},
	}
	total := cfg.ops()
	run := func(churn bool) (float64, error) {
		fw, err := newFrameworkTicket(16)
		if err != nil {
			return 0, err
		}
		p := fw.Proxy()
		stop := make(chan struct{})
		var churnWg sync.WaitGroup
		if churn {
			churnWg.Add(1)
			go func() {
				defer churnWg.Done()
				mod := fw.Moderator()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					layer := fmt.Sprintf("churn-%d", i)
					if err := mod.AddLayer(layer, moderator.Outermost); err != nil {
						return
					}
					_ = mod.RegisterIn(layer, ticket.MethodOpen, aspect.KindAudit,
						aspect.New("churn", aspect.KindAudit, nil, nil))
					_ = mod.RemoveLayer(layer)
				}
			}()
		}
		ops, err := runPipeline(total, 4, 4,
			func(ctx context.Context, id string) error {
				_, err := p.Invoke(ctx, ticket.MethodOpen, id, "s")
				return err
			},
			func(ctx context.Context) error {
				_, err := p.Invoke(ctx, ticket.MethodAssign)
				return err
			})
		close(stop)
		churnWg.Wait()
		return ops, err
	}
	static, err := run(false)
	if err != nil {
		return t, err
	}
	churned, err := run(true)
	if err != nil {
		return t, err
	}
	t.Rows = [][]string{
		{"static", fmtOps(static)},
		{"continuous layer add/remove", fmtOps(churned)},
	}
	t.Notes = "copy-on-write banks: in-flight invocations never see a torn composition"
	return t, nil
}

// E10Reuse runs all four applications with shared aspect collaborators
// (one metrics recorder, one token store) and reports per-component
// throughput. Claim probed: the same concern objects compose onto
// arbitrary components (reuse).
func E10Reuse(cfg Config) (Table, error) {
	t := Table{
		ID:     "E10",
		Title:  "aspect reuse across applications (shared recorder + token store)",
		Header: []string{"component", "ops", "ns/op"},
		Notes:  "identical aspect implementations guard all four components; zero per-app concern code",
	}
	rec := metrics.NewRecorder()
	store := auth.NewTokenStore()
	tok := store.Issue("alice", "customer", "bidder", "seller", "client",
		timecard.RoleEmployee)
	ctx := context.Background()
	n := cfg.ops() / 4

	tg, err := ticket.NewGuarded(ticket.GuardedConfig{Capacity: 8, Metrics: rec})
	if err != nil {
		return t, err
	}
	if err := tg.EnableAuthentication(store); err != nil {
		return t, err
	}
	rg, err := reservation.NewGuarded(reservation.GuardedConfig{Authenticator: store, Metrics: rec})
	if err != nil {
		return t, err
	}
	ag, err := auction.NewGuarded(auction.GuardedConfig{Authenticator: store, Metrics: rec})
	if err != nil {
		return t, err
	}
	if _, err := invokeWithToken(ctx, ag.Proxy(), tok, auction.MethodList, "lot", 1.0); err != nil {
		return t, err
	}
	wg, err := timecard.NewGuarded(timecard.GuardedConfig{Authenticator: store})
	if err != nil {
		return t, err
	}

	ticketNs, err := measure(n, func(i int) error {
		if _, err := invokeWithToken(ctx, tg.Proxy(), tok, ticket.MethodOpen, "t", "s"); err != nil {
			return err
		}
		_, err := invokeWithToken(ctx, tg.Proxy(), tok, ticket.MethodAssign)
		return err
	})
	if err != nil {
		return t, err
	}
	seat := "R1C1"
	resNs, err := measure(n, func(i int) error {
		if _, err := invokeWithToken(ctx, rg.Proxy(), tok, reservation.MethodReserve, seat); err != nil {
			return err
		}
		_, err := invokeWithToken(ctx, rg.Proxy(), tok, reservation.MethodCancel, seat)
		return err
	})
	if err != nil {
		return t, err
	}
	bid := 1.0
	aucNs, err := measure(n, func(i int) error {
		bid++
		_, err := invokeWithToken(ctx, ag.Proxy(), tok, auction.MethodBid, "lot", nil, bid)
		return err
	})
	if err != nil {
		return t, err
	}
	tcNs, err := measure(n, func(i int) error {
		if _, err := invokeWithToken(ctx, wg.Proxy(), tok, timecard.MethodPunchIn); err != nil {
			return err
		}
		_, err := invokeWithToken(ctx, wg.Proxy(), tok, timecard.MethodPunchOut)
		return err
	})
	if err != nil {
		return t, err
	}
	t.Rows = [][]string{
		{ticket.ComponentName, fmt.Sprint(2 * n), fmtNs(ticketNs)},
		{reservation.ComponentName, fmt.Sprint(2 * n), fmtNs(resNs)},
		{auction.ComponentName, fmt.Sprint(n), fmtNs(aucNs)},
		{timecard.ComponentName, fmt.Sprint(2 * n), fmtNs(tcNs)},
	}
	return t, nil
}

// invokeWithToken performs one guarded call carrying a bearer token.
func invokeWithToken(ctx context.Context, p *proxy.Proxy, tok, method string, args ...any) (any, error) {
	inv := aspect.NewInvocation(ctx, p.Name(), method, args)
	auth.WithToken(inv, tok)
	return p.Call(inv)
}
