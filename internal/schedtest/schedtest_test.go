package schedtest

// Exhaustive schedule exploration over guarded plans: every scenario here
// is enumerated completely (all interleavings of its threads), each
// interleaving executed lockstep against the sharded Moderator and the
// single-mutex Reference, with a full observable comparison after every
// step and at every drained terminal. The sharded side runs with
// optimistic admission ON (the default), so every interleaving of the
// optimistic guard-cell protocol with parking, waking, cancellation,
// recomposition and canary staging is certified against the executable
// spec. A zero-divergence run of these tests IS the certification
// artifact for the lock-free guarded admission path.

import (
	"sync"
	"testing"

	"repro/internal/aspect"
	"repro/internal/moderator"
	"repro/internal/waitq"
)

// capSemBuild returns a Build function for a guarded "kappa" stack:
// a NonBlocking audit, a capacity-1 semaphore (WakeSingle-safe, FIFO
// deterministic), and a NonBlocking metrics tail. The probe exposes the
// semaphore occupancy and every hook count, so a double-evaluated
// precondition (the exact bug class of a broken optimistic verdict
// handoff) diverges from the Reference immediately.
func capSemBuild(m moderator.Admitter) (func() []int64, error) {
	var (
		mu      sync.Mutex
		used    int64
		pre     int64
		post    int64
		cancel  int64
		preAud  int64
		postAud int64
	)
	if err := m.Register("kappa", aspect.KindAudit, &aspect.Func{
		AspectName: "audit-pre", AspectKind: aspect.KindAudit, NonBlockingFlag: true,
		Pre: func(*aspect.Invocation) aspect.Verdict {
			mu.Lock()
			preAud++
			mu.Unlock()
			return aspect.Resume
		},
	}); err != nil {
		return nil, err
	}
	if err := m.Register("kappa", aspect.KindSynchronization, &aspect.Func{
		AspectName: "sem", AspectKind: aspect.KindSynchronization,
		Pre: func(*aspect.Invocation) aspect.Verdict {
			mu.Lock()
			defer mu.Unlock()
			pre++
			if used >= 1 {
				return aspect.Block
			}
			used++
			return aspect.Resume
		},
		Post: func(*aspect.Invocation) {
			mu.Lock()
			used--
			post++
			mu.Unlock()
		},
		CancelFn: func(*aspect.Invocation) {
			mu.Lock()
			used--
			cancel++
			mu.Unlock()
		},
		WakeList: []string{"kappa"},
	}); err != nil {
		return nil, err
	}
	if err := m.Register("kappa", aspect.KindMetrics, &aspect.Func{
		AspectName: "audit-post", AspectKind: aspect.KindMetrics, NonBlockingFlag: true,
		Pre: func(*aspect.Invocation) aspect.Verdict {
			mu.Lock()
			postAud++
			mu.Unlock()
			return aspect.Resume
		},
	}); err != nil {
		return nil, err
	}
	return func() []int64 {
		mu.Lock()
		defer mu.Unlock()
		return []int64{used, pre, post, cancel, preAud, postAud}
	}, nil
}

func runScenario(t *testing.T, sc Scenario) {
	t.Helper()
	stats, err := Explore(sc)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Terminals == 0 {
		t.Fatalf("%s: exploration visited no terminals", sc.Name)
	}
	t.Logf("%s: %d terminals, %d steps, max depth %d — zero divergences",
		sc.Name, stats.Terminals, stats.Steps, stats.MaxDepth)
}

// TestExhaustiveCapSemWakeSingle is the core certification: three caller
// threads, three ops each, racing for a capacity-1 semaphore on a guarded
// (optimistic-eligible) plan under WakeSingle+FIFO. Every interleaving of
// {optimistic admit, mutex admit, park, wake, cancel} at these bounds is
// executed on both implementations.
func TestExhaustiveCapSemWakeSingle(t *testing.T) {
	runScenario(t, Scenario{
		Name: "capsem-wakesingle",
		Options: []moderator.Option{
			moderator.WithWakeMode(moderator.WakeSingle),
			moderator.WithWakePolicy(waitq.FIFO),
		},
		Build:   capSemBuild,
		Methods: []string{"kappa"},
		Threads: []Thread{
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpFinish}, {Kind: OpBegin, Method: "kappa"}},
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpCancel}, {Kind: OpFinish}},
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpFinish}, {Kind: OpBegin, Method: "kappa"}},
		},
	})
}

// TestExhaustiveRepublishChurn interleaves two semaphore callers with an
// operator thread that republishes the composition (register/unregister a
// layer) and kicks the queue — every recomposition point races the
// optimistic fast path's snapshot load and the epoch-based reclamation of
// the superseded snapshot.
func TestExhaustiveRepublishChurn(t *testing.T) {
	runScenario(t, Scenario{
		Name: "republish-churn",
		Options: []moderator.Option{
			moderator.WithWakeMode(moderator.WakeSingle),
			moderator.WithWakePolicy(waitq.FIFO),
		},
		Build:   capSemBuild,
		Methods: []string{"kappa"},
		Threads: []Thread{
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpFinish}, {Kind: OpBegin, Method: "kappa"}},
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpCancel}, {Kind: OpFinish}},
			{{Kind: OpChurn, Method: "kappa"}, {Kind: OpKick, Method: "kappa"}, {Kind: OpChurn, Method: "kappa"}},
		},
	})
}

// TestExhaustiveGateBroadcast covers the broadcast wake family: two
// callers park on a closed all-or-nothing gate; a controller method's
// postaction toggles the gate and fans out cross-method wakes. The gate
// admits every parked caller when open, so WakeBroadcast outcomes stay a
// pure function of the schedule.
func TestExhaustiveGateBroadcast(t *testing.T) {
	build := func(m moderator.Admitter) (func() []int64, error) {
		var (
			mu      sync.Mutex
			open    bool
			gatePre int64
			gateOK  int64
			toggles int64
		)
		if err := m.Register("kappa", aspect.KindSynchronization, &aspect.Func{
			AspectName: "gate", AspectKind: aspect.KindSynchronization,
			Pre: func(*aspect.Invocation) aspect.Verdict {
				mu.Lock()
				defer mu.Unlock()
				gatePre++
				if !open {
					return aspect.Block
				}
				gateOK++
				return aspect.Resume
			},
		}); err != nil {
			return nil, err
		}
		if err := m.Register("ctl", aspect.KindScheduling, &aspect.Func{
			AspectName: "toggle", AspectKind: aspect.KindScheduling,
			Pre: func(*aspect.Invocation) aspect.Verdict { return aspect.Resume },
			Post: func(*aspect.Invocation) {
				mu.Lock()
				open = !open
				toggles++
				mu.Unlock()
			},
			WakeList: []string{"kappa", "ctl"},
		}); err != nil {
			return nil, err
		}
		return func() []int64 {
			mu.Lock()
			defer mu.Unlock()
			o := int64(0)
			if open {
				o = 1
			}
			return []int64{o, gatePre, gateOK, toggles}
		}, nil
	}
	runScenario(t, Scenario{
		Name:    "gate-broadcast",
		Options: []moderator.Option{moderator.WithWakeMode(moderator.WakeBroadcast)},
		Build:   build,
		Methods: []string{"kappa", "ctl"},
		Threads: []Thread{
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpFinish}},
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpFinish}},
			{{Kind: OpBegin, Method: "ctl"}, {Kind: OpFinish}, {Kind: OpBegin, Method: "ctl"}, {Kind: OpFinish}},
		},
	})
}

// TestExplorationExercisesOptimisticPath is the sanity check that the
// certification actually covers the optimistic guard-cell protocol: a
// replayed schedule with an uncontended guarded begin must commit at
// least one admission through the lock-free path on the sharded side. If
// eligibility ever silently regressed (every admission quietly taking the
// mutex), the exhaustive suites above would still pass — this test is
// what fails.
func TestExplorationExercisesOptimisticPath(t *testing.T) {
	sc := Scenario{
		Name: "optimistic-probe",
		Options: []moderator.Option{
			moderator.WithWakeMode(moderator.WakeSingle),
			moderator.WithWakePolicy(waitq.FIFO),
		},
		Build:   capSemBuild,
		Methods: []string{"kappa"},
		Threads: []Thread{
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpFinish}},
		},
	}
	w, err := newWorld(&sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w.step(0, []string{"T0:begin", "T0:finish"}[:i+1]); err != nil {
			t.Fatal(err)
		}
	}
	m := w.sides[0].m.(*moderator.Moderator)
	if os := m.OptimisticStats(); os.Admits == 0 || os.Completes == 0 {
		t.Fatalf("uncontended guarded begin did not use the optimistic path: %+v", os)
	}
}

// TestExhaustiveBatchedCapSem is the batched-admission certification:
// the capacity-1 semaphore race rerun with optimistic admission OFF, so
// every guarded begin on the sharded side routes through its domain's
// submission ring (the drainer election, the batch evaluation under one
// guard-state read, the coalesced wake pass, and the Block handoff back
// to the mutex path are all on the exhaustively enumerated schedule).
// The Reference has no ring at all, so a zero-divergence run certifies
// the batched path observable-equivalent.
func TestExhaustiveBatchedCapSem(t *testing.T) {
	runScenario(t, Scenario{
		Name: "capsem-batched",
		Options: []moderator.Option{
			moderator.WithWakeMode(moderator.WakeSingle),
			moderator.WithWakePolicy(waitq.FIFO),
			moderator.WithOptimisticAdmission(false),
			moderator.WithRingContentionGate(false),
		},
		Build:   capSemBuild,
		Methods: []string{"kappa"},
		Threads: []Thread{
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpFinish}, {Kind: OpBegin, Method: "kappa"}},
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpCancel}, {Kind: OpFinish}},
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpFinish}, {Kind: OpBegin, Method: "kappa"}},
		},
	})
}

// TestExhaustiveBatchedRepublishChurn races ring drains against
// recomposition: the republish/kick operator thread from the optimistic
// churn scenario, with every guarded begin riding the submission ring.
// Each drain loads the composition snapshot once for the whole batch, so
// this enumerates every interleaving of a republish with that load.
func TestExhaustiveBatchedRepublishChurn(t *testing.T) {
	runScenario(t, Scenario{
		Name: "republish-churn-batched",
		Options: []moderator.Option{
			moderator.WithWakeMode(moderator.WakeSingle),
			moderator.WithWakePolicy(waitq.FIFO),
			moderator.WithOptimisticAdmission(false),
			moderator.WithRingContentionGate(false),
		},
		Build:   capSemBuild,
		Methods: []string{"kappa"},
		Threads: []Thread{
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpFinish}, {Kind: OpBegin, Method: "kappa"}},
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpCancel}, {Kind: OpFinish}},
			{{Kind: OpChurn, Method: "kappa"}, {Kind: OpKick, Method: "kappa"}, {Kind: OpChurn, Method: "kappa"}},
		},
	})
}

// TestExplorationExercisesBatchedPath is the coverage sanity check for the
// ring: with optimistic admission and the contention gate off, a replayed
// guarded begin must submit through the ring and drain in a batch on the
// sharded side — if
// routing ever silently regressed to the mutex, the batched exhaustive
// suites above would still pass; this test is what fails.
func TestExplorationExercisesBatchedPath(t *testing.T) {
	sc := Scenario{
		Name: "batched-probe",
		Options: []moderator.Option{
			moderator.WithWakeMode(moderator.WakeSingle),
			moderator.WithWakePolicy(waitq.FIFO),
			moderator.WithOptimisticAdmission(false),
			moderator.WithRingContentionGate(false),
		},
		Build:   capSemBuild,
		Methods: []string{"kappa"},
		Threads: []Thread{
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpFinish}},
		},
	}
	w, err := newWorld(&sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w.step(0, []string{"T0:begin", "T0:finish"}[:i+1]); err != nil {
			t.Fatal(err)
		}
	}
	m := w.sides[0].m.(*moderator.Moderator)
	if rs := m.RingStats(); rs.Submitted == 0 || rs.Batches == 0 {
		t.Fatalf("guarded begin did not use the batched path: %+v", rs)
	}
}

// TestExplorationMixedArrivalFamilies replays one contended schedule with
// optimistic admission AND batching on (the contention gate alone is off:
// a lockstep world never has the mutex observably held at probe time, so
// the gated default would serve the ring hop from the mutex path — the
// gate's own routing is pinned by the moderator's TestRingGate* tests) and
// asserts all three arrival families fired on the sharded side: the holder
// admits optimistically, the first blocked caller hands off from the
// seqlock to the mutex path, and later contended callers submit through
// the ring. This pins the routing priority the batched tentpole promises:
// seqlock first, ring only for what would have serialized on the mutex.
func TestExplorationMixedArrivalFamilies(t *testing.T) {
	sc := Scenario{
		Name: "mixed-arrivals",
		Options: []moderator.Option{
			moderator.WithWakeMode(moderator.WakeSingle),
			moderator.WithWakePolicy(waitq.FIFO),
			moderator.WithRingContentionGate(false),
		},
		Build:   capSemBuild,
		Methods: []string{"kappa"},
		Threads: []Thread{
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpFinish}},
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpFinish}},
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpFinish}},
		},
	}
	w, err := newWorld(&sc)
	if err != nil {
		t.Fatal(err)
	}
	schedule := []string{"T0:begin", "T1:begin", "T2:begin", "T0:finish", "T1:finish", "T2:finish"}
	threads := []int{0, 1, 2, 0, 1, 2}
	for i, th := range threads {
		if err := w.step(th, schedule[:i+1]); err != nil {
			t.Fatal(err)
		}
	}
	m := w.sides[0].m.(*moderator.Moderator)
	if os := m.OptimisticStats(); os.Admits == 0 {
		t.Fatalf("holder did not admit optimistically: %+v", os)
	}
	if rs := m.RingStats(); rs.Submitted == 0 {
		t.Fatalf("contended caller did not submit through the ring: %+v", rs)
	}
}

// TestExhaustiveCanaryLifecycle interleaves guarded admissions with the
// full canary lifecycle: stage (candidate adds an extra audit layer for
// kappa), promote, rollback (which fails after the promote — the error is
// itself a compared observable). Each stage/promote retires a snapshot
// through the epoch-based reclamation path while callers may be pinned.
func TestExhaustiveCanaryLifecycle(t *testing.T) {
	runScenario(t, Scenario{
		Name: "canary-lifecycle",
		Options: []moderator.Option{
			moderator.WithWakeMode(moderator.WakeSingle),
			moderator.WithWakePolicy(waitq.FIFO),
		},
		Build:   capSemBuild,
		Methods: []string{"kappa"},
		Canary: func(tx *moderator.CanaryTx) error {
			if err := tx.AddLayer("canary-audit", moderator.Outermost); err != nil {
				return err
			}
			return tx.RegisterIn("canary-audit", "kappa", aspect.KindAudit, &aspect.Func{
				AspectName: "canary-probe", AspectKind: aspect.KindAudit, NonBlockingFlag: true,
			})
		},
		Threads: []Thread{
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpFinish}, {Kind: OpBegin, Method: "kappa"}},
			{{Kind: OpBegin, Method: "kappa"}, {Kind: OpCancel}, {Kind: OpFinish}},
			{{Kind: OpCanaryStage, Pct: 100}, {Kind: OpCanaryPromote}, {Kind: OpCanaryRollback}},
		},
	})
}
