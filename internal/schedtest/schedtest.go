// Package schedtest is a deterministic cooperative scheduler that turns
// the moderator's randomized differential oracle into an exhaustive one at
// small bounds: it enumerates EVERY interleaving of a small set of caller
// and operator threads — optimistic admit, mutex admit, park, wake,
// cancel, kick, republish, canary stage/promote/rollback — over small
// guarded plan sets, executing each interleaving against the sharded
// Moderator and the single-mutex Reference in lockstep and cross-checking
// every intermediate and terminal state.
//
// # Why this is sound
//
// The explorer controls the only source of nondeterminism the framework
// exposes to a quiesced system: which actor acts next. After every step it
// drives both implementations to quiescence (every issued pre-activation
// has either returned or parked) before comparing observables, so one
// logical step's internal racing — wake cascades re-evaluating guards —
// has fully settled before the next choice point. Scenarios are written so
// cascades themselves are deterministic, the same discipline the
// randomized oracle relies on: capacity guards use WakeSingle with FIFO
// queues (exactly one parked caller is released, in sticky-ticket order),
// and broadcast scenarios use all-or-nothing gates (every parked caller
// admits when the gate opens). Within those families, a schedule prefix
// uniquely determines both implementations' observable state, so
// depth-first replay from the root visits every reachable state of the
// bounded system — including every interleaving of the optimistic
// fast-path gates with parking and recomposition — and any divergence
// between the two implementations is reported with the exact schedule
// that produced it.
//
// # What is compared
//
// After every step (and at every terminal after draining): per-method
// Waiting counts, the Stats counters, scenario guard-state probes (guard
// occupancy and per-hook invocation counts, which catch double-evaluated
// preconditions), the classified outcome of every returned call, Epoch,
// and the staged-canary view. Guard-hook counts are the load-bearing
// check for the optimistic path's verdict handoff: re-running a blocked
// layer's preconditions under the mutex after the optimistic evaluation
// already ran them would show up as a count divergence from the
// Reference.
package schedtest

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/aspect"
	"repro/internal/moderator"
)

// OpKind names one schedulable action of a thread.
type OpKind int

const (
	// OpBegin issues a pre-activation of Op.Method. The thread is blocked
	// (cannot take further steps) while the call is parked.
	OpBegin OpKind = iota + 1
	// OpFinish runs post-activation for the thread's admitted call.
	// A no-op if the call aborted.
	OpFinish
	// OpCancel cancels the thread's in-flight (parked) call. Enabled even
	// while the thread is blocked: it models the caller's own deadline.
	// A no-op if the call already returned.
	OpCancel
	// OpKick wakes every caller blocked on Op.Method.
	OpKick
	// OpChurn republishes the composition: odd occurrences register a
	// NonBlocking audit aspect for Op.Method in a dedicated churn layer
	// (creating it), even occurrences remove the layer again.
	OpChurn
	// OpCanaryStage stages a canary epoch with Op.Pct percent routed,
	// editing the candidate through Scenario.Canary.
	OpCanaryStage
	// OpCanaryPromote promotes the staged canary; an error (none staged)
	// is itself a compared observable.
	OpCanaryPromote
	// OpCanaryRollback rolls back the staged canary.
	OpCanaryRollback
)

func (k OpKind) String() string {
	switch k {
	case OpBegin:
		return "begin"
	case OpFinish:
		return "finish"
	case OpCancel:
		return "cancel"
	case OpKick:
		return "kick"
	case OpChurn:
		return "churn"
	case OpCanaryStage:
		return "canary-stage"
	case OpCanaryPromote:
		return "canary-promote"
	case OpCanaryRollback:
		return "canary-rollback"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one schedulable action.
type Op struct {
	Kind   OpKind
	Method string
	Pct    int
}

// Thread is one sequential actor: a caller issuing begin/finish/cancel
// sequences, or an operator issuing kicks and recompositions.
type Thread []Op

// Scenario is one bounded system to explore exhaustively.
type Scenario struct {
	Name string
	// Options configure both implementations (wake mode, policy).
	Options []moderator.Option
	// Build registers the aspect stacks on one implementation and returns
	// a probe reading its guard state and hook counts. It is called once
	// per implementation per replay; probes of the two implementations
	// are compared element-wise.
	Build func(m moderator.Admitter) (probe func() []int64, err error)
	// Methods lists the methods whose Waiting counts are compared (and
	// that OpKick/OpChurn may reference).
	Methods []string
	// Threads are the actors whose interleavings are enumerated.
	Threads []Thread
	// Canary edits the candidate composition for OpCanaryStage; nil
	// stages an unmodified clone.
	Canary func(tx *moderator.CanaryTx) error
}

// Stats summarizes one exhaustive exploration.
type Stats struct {
	Terminals int // complete interleavings executed
	Steps     int // scheduled steps across all replays (incl. replay prefixes)
	MaxDepth  int // longest schedule
}

// Divergence is returned (wrapped) when the implementations disagree; it
// carries the exact schedule prefix that produced the disagreement.
type Divergence struct {
	Scenario string
	Schedule []string
	Detail   string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("schedtest %s: divergence after %v: %s", d.Scenario, d.Schedule, d.Detail)
}

const (
	churnLayer   = "sched-churn"
	quiesceGrace = 10 * time.Second
)

// call tracks one issued pre-activation on one implementation.
type call struct {
	inv    *aspect.Invocation
	cancel context.CancelFunc
	done   chan struct{}
	adm    *moderator.Admission
	err    error
}

func (c *call) returned() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// side is one implementation under exploration.
type side struct {
	m     moderator.Admitter
	probe func() []int64
	calls map[int]*call // thread index → outstanding call
	churn int
}

// world is one lockstep replay: both implementations plus per-thread
// progress.
type world struct {
	sc       *Scenario
	sides    [2]*side // [0] sharded, [1] reference
	pc       []int    // per-thread program counter
	routeSeq uint64
	outcomes map[string]string // "t/op" → classified outcome, compared lazily
}

func newWorld(sc *Scenario) (*world, error) {
	w := &world{sc: sc, pc: make([]int, len(sc.Threads)), outcomes: make(map[string]string)}
	impls := [2]moderator.Admitter{
		moderator.New("sched", sc.Options...),
		moderator.NewReference("sched", sc.Options...),
	}
	for i, m := range impls {
		probe, err := sc.Build(m)
		if err != nil {
			return nil, fmt.Errorf("schedtest %s: build side %d: %w", sc.Name, i, err)
		}
		w.sides[i] = &side{m: m, probe: probe, calls: make(map[int]*call)}
	}
	return w, nil
}

// enabled lists the threads that can take their next op right now: the
// thread has ops left and is not blocked in a parked begin — except that
// OpCancel is allowed while parked (it is the only way a blocked caller
// acts, and it models its deadline firing).
func (w *world) enabled() []int {
	var out []int
	for t := range w.sc.Threads {
		i := w.pc[t]
		if i >= len(w.sc.Threads[t]) {
			continue
		}
		if c := w.sides[0].calls[t]; c != nil && !c.returned() {
			if w.sc.Threads[t][i].Kind != OpCancel {
				continue
			}
		}
		out = append(out, t)
	}
	return out
}

// step runs thread t's next op on both implementations, quiesces, and
// compares. The schedule so far is passed for diagnostics.
func (w *world) step(t int, schedule []string) error {
	op := w.sc.Threads[t][w.pc[t]]
	w.pc[t]++
	key := fmt.Sprintf("T%d#%d:%s", t, w.pc[t]-1, op.Kind)
	switch op.Kind {
	case OpBegin:
		w.routeSeq++
		route := w.routeSeq
		for _, s := range w.sides {
			if c := s.calls[t]; c != nil && !c.returned() {
				return fmt.Errorf("schedtest %s: thread %d begins while a call is in flight", w.sc.Name, t)
			}
			ctx, cancel := context.WithCancel(context.Background())
			c := &call{cancel: cancel, done: make(chan struct{})}
			c.inv = aspect.NewInvocation(ctx, "sched", op.Method, nil)
			c.inv.RouteKey = route // identical canary routing on both sides
			s.calls[t] = c
			go func(m moderator.Admitter, c *call) {
				c.adm, c.err = m.Preactivation(c.inv)
				close(c.done)
			}(s.m, c)
		}
	case OpFinish:
		for _, s := range w.sides {
			c := s.calls[t]
			if c == nil || !c.returned() {
				return fmt.Errorf("schedtest %s: thread %d finishes a call that is not admitted", w.sc.Name, t)
			}
			if c.err == nil {
				s.m.Postactivation(c.inv, c.adm)
			}
			c.cancel()
			delete(s.calls, t)
		}
	case OpCancel:
		for _, s := range w.sides {
			if c := s.calls[t]; c != nil {
				c.cancel()
			}
		}
	case OpKick:
		for _, s := range w.sides {
			s.m.Kick(op.Method)
		}
	case OpChurn:
		for _, s := range w.sides {
			s.churn++
			var err error
			if s.churn%2 == 1 {
				if err = s.m.AddLayer(churnLayer, moderator.Outermost); err == nil {
					err = s.m.RegisterIn(churnLayer, op.Method, aspect.KindMetrics, &aspect.Func{
						AspectName: "churn-audit", AspectKind: aspect.KindMetrics, NonBlockingFlag: true,
					})
				}
			} else {
				err = s.m.RemoveLayer(churnLayer)
			}
			if err != nil {
				return fmt.Errorf("schedtest %s: churn %d: %w", w.sc.Name, s.churn, err)
			}
		}
	case OpCanaryStage:
		var outs [2]string
		for i, s := range w.sides {
			outs[i] = classifyErr(s.m.StageCanary(op.Pct, w.sc.Canary))
		}
		if outs[0] != outs[1] {
			return w.diverge(schedule, fmt.Sprintf("canary stage: sharded=%s reference=%s", outs[0], outs[1]))
		}
		w.outcomes[key] = outs[0]
	case OpCanaryPromote, OpCanaryRollback:
		var outs [2]string
		for i, s := range w.sides {
			var err error
			if op.Kind == OpCanaryPromote {
				err = s.m.PromoteCanary()
			} else {
				err = s.m.RollbackCanary()
			}
			outs[i] = classifyErr(err)
		}
		if outs[0] != outs[1] {
			return w.diverge(schedule, fmt.Sprintf("%s: sharded=%s reference=%s", op.Kind, outs[0], outs[1]))
		}
		w.outcomes[key] = outs[0]
	default:
		return fmt.Errorf("schedtest %s: unknown op kind %v", w.sc.Name, op.Kind)
	}
	if err := w.quiesce(); err != nil {
		return w.diverge(schedule, err.Error())
	}
	return w.compare(schedule)
}

// quiesce waits until, on each side, every outstanding call has either
// returned or is parked (counted by Waiting), and the view is stable
// across consecutive observations.
func (w *world) quiesce() error {
	deadline := time.Now().Add(quiesceGrace)
	for _, s := range w.sides {
		stable := 0
		for stable < 3 {
			inflight := 0
			for _, c := range s.calls {
				if !c.returned() {
					inflight++
				}
			}
			parked := 0
			for _, meth := range w.sc.Methods {
				parked += s.m.Waiting(meth)
			}
			if inflight == parked {
				stable++
			} else {
				stable = 0
				if time.Now().After(deadline) {
					return fmt.Errorf("%s never quiesced: %d in flight, %d parked",
						s.m.Name(), inflight, parked)
				}
			}
			runtime.Gosched()
		}
	}
	return nil
}

// compare checks every observable of the two quiesced implementations.
func (w *world) compare(schedule []string) error {
	a, b := w.sides[0], w.sides[1]
	for _, meth := range w.sc.Methods {
		if wa, wb := a.m.Waiting(meth), b.m.Waiting(meth); wa != wb {
			return w.diverge(schedule, fmt.Sprintf("Waiting(%s): sharded=%d reference=%d", meth, wa, wb))
		}
	}
	if sa, sb := a.m.Stats(), b.m.Stats(); sa != sb {
		return w.diverge(schedule, fmt.Sprintf("stats: sharded=%+v reference=%+v", sa, sb))
	}
	pa, pb := a.probe(), b.probe()
	if len(pa) != len(pb) {
		return w.diverge(schedule, fmt.Sprintf("probe length: sharded=%d reference=%d", len(pa), len(pb)))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			return w.diverge(schedule, fmt.Sprintf("probe[%d]: sharded=%d reference=%d (full: %v vs %v)",
				i, pa[i], pb[i], pa, pb))
		}
	}
	if ea, eb := a.m.Epoch(), b.m.Epoch(); ea != eb {
		return w.diverge(schedule, fmt.Sprintf("epoch: sharded=%d reference=%d", ea, eb))
	}
	ia, oka := a.m.CanaryInfo()
	ib, okb := b.m.CanaryInfo()
	if oka != okb || ia.CandidateEpoch != ib.CandidateEpoch || ia.Percent != ib.Percent {
		return w.diverge(schedule, fmt.Sprintf("canary: sharded=(%+v,%v) reference=(%+v,%v)", ia, oka, ib, okb))
	}
	// Outcomes of returned calls.
	for t := range w.sc.Threads {
		ca, cb := a.calls[t], b.calls[t]
		if (ca == nil) != (cb == nil) {
			return w.diverge(schedule, fmt.Sprintf("thread %d call presence: sharded=%v reference=%v",
				t, ca != nil, cb != nil))
		}
		if ca == nil {
			continue
		}
		ra, rb := ca.returned(), cb.returned()
		if ra != rb {
			return w.diverge(schedule, fmt.Sprintf("thread %d returned: sharded=%v reference=%v", t, ra, rb))
		}
		if ra {
			oa, ob := classifyCall(ca), classifyCall(cb)
			if oa != ob {
				return w.diverge(schedule, fmt.Sprintf("thread %d outcome: sharded=%s reference=%s", t, oa, ob))
			}
		}
	}
	return nil
}

// drain cancels every parked call, finishes every admitted one, and
// re-compares the terminal state: guards must be balanced and the two
// implementations must agree on every final observable.
func (w *world) drain(schedule []string) error {
	for _, s := range w.sides {
		for _, c := range s.calls {
			c.cancel()
		}
	}
	if err := w.quiesce(); err != nil {
		return w.diverge(schedule, err.Error())
	}
	for t := range w.sc.Threads {
		var outs [2]string
		live := false
		for i, s := range w.sides {
			c := s.calls[t]
			if c == nil {
				outs[i] = "none"
				continue
			}
			live = true
			<-c.done
			outs[i] = classifyCall(c)
			if c.err == nil {
				s.m.Postactivation(c.inv, c.adm)
			}
			delete(s.calls, t)
		}
		if live && outs[0] != outs[1] {
			return w.diverge(schedule, fmt.Sprintf("drain thread %d: sharded=%s reference=%s", t, outs[0], outs[1]))
		}
	}
	if err := w.quiesce(); err != nil {
		return w.diverge(schedule, err.Error())
	}
	return w.compare(schedule)
}

func (w *world) diverge(schedule []string, detail string) error {
	return &Divergence{Scenario: w.sc.Name, Schedule: append([]string(nil), schedule...), Detail: detail}
}

func classifyCall(c *call) string {
	if c.err == nil {
		return "admitted"
	}
	return classifyErr(c.err)
}

func classifyErr(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.Canceled):
		return "cancelled"
	case errors.Is(err, aspect.ErrAborted):
		return "aborted"
	default:
		return "error"
	}
}

// Explore enumerates every interleaving of the scenario's threads by
// depth-first replay from the root, comparing both implementations after
// every step and at every drained terminal. It returns the exploration
// stats and the first divergence (or harness error) encountered.
func Explore(sc Scenario) (Stats, error) {
	var stats Stats
	labels := func(prefix []int) []string {
		out := make([]string, len(prefix))
		counts := make([]int, len(sc.Threads))
		for i, t := range prefix {
			op := sc.Threads[t][counts[t]]
			out[i] = fmt.Sprintf("T%d:%s", t, op.Kind)
			if op.Method != "" {
				out[i] += ":" + op.Method
			}
			counts[t]++
		}
		return out
	}
	var dfs func(prefix []int) error
	dfs = func(prefix []int) error {
		w, err := newWorld(&sc)
		if err != nil {
			return err
		}
		sched := labels(prefix)
		for i, t := range prefix {
			stats.Steps++
			if err := w.step(t, sched[:i+1]); err != nil {
				return err
			}
		}
		if len(prefix) > stats.MaxDepth {
			stats.MaxDepth = len(prefix)
		}
		next := w.enabled()
		if len(next) == 0 {
			stats.Terminals++
			return w.drain(sched)
		}
		for _, t := range next {
			child := append(append([]int(nil), prefix...), t)
			if err := dfs(child); err != nil {
				return err
			}
		}
		return nil
	}
	err := dfs(nil)
	return stats, err
}
