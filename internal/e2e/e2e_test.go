// Package e2e_test builds the repository's command binaries and drives
// them as real processes: namingd, ticketd registering itself (with
// authentication), and ticketcli discovering the component by name and
// exercising it — the deployment story of the distributed open system the
// paper targets.
package e2e_test

import (
	"bufio"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildBinaries compiles the three commands once per test run.
func buildBinaries(t *testing.T) (namingd, ticketd, ticketcli string) {
	t.Helper()
	dir := t.TempDir()
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	build := func(name string) string {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = repoRoot
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		return out
	}
	return build("namingd"), build("ticketd"), build("ticketcli")
}

// freePort reserves an ephemeral TCP port and returns "127.0.0.1:port".
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// waitListening polls until addr accepts connections.
func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			_ = conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never started listening", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// daemon starts a long-running process and arranges SIGTERM + wait on
// cleanup. Its stdout is captured for later inspection.
type daemon struct {
	cmd    *exec.Cmd
	stdout strings.Builder
	mu     sync.Mutex
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{cmd: exec.Command(bin, args...)}
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	d.cmd.Stderr = os.Stderr
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		scanner := bufio.NewScanner(stdout)
		for scanner.Scan() {
			d.mu.Lock()
			d.stdout.WriteString(scanner.Text() + "\n")
			d.mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		_ = d.cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() {
			_ = d.cmd.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = d.cmd.Process.Kill()
			<-done
		}
		readerWg.Wait()
	})
	return d
}

func (d *daemon) output() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stdout.String()
}

// run executes a short-lived command and returns its combined output.
func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	b, err := cmd.CombinedOutput()
	return string(b), err
}

func TestDistributedDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real binaries")
	}
	namingd, ticketd, ticketcli := buildBinaries(t)

	namingAddr := freePort(t)
	ticketAddr := freePort(t)

	// 1. Naming service.
	startDaemon(t, namingd, "-addr", namingAddr)
	waitListening(t, namingAddr)

	// 2. Ticket server with authentication, announcing itself.
	td := startDaemon(t, ticketd,
		"-addr", ticketAddr,
		"-naming", namingAddr,
		"-capacity", "8",
		"-auth", "-issue", "alice:client",
		"-audit", "0")
	waitListening(t, ticketAddr)

	// Extract alice's token from ticketd stdout.
	var token string
	deadline := time.Now().Add(10 * time.Second)
	for token == "" {
		for _, line := range strings.Split(td.output(), "\n") {
			if strings.HasPrefix(line, "issued token for alice: ") {
				token = strings.TrimPrefix(line, "issued token for alice: ")
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("token never printed; ticketd output:\n%s", td.output())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// 3. Anonymous client: rejected by the authentication layer.
	out, err := run(t, ticketcli, "-naming", namingAddr, "open", "TT-1", "no token")
	if err == nil {
		t.Fatalf("anonymous open must fail, got:\n%s", out)
	}
	if !strings.Contains(out, "unauthenticated") {
		t.Fatalf("anonymous failure should mention unauthenticated:\n%s", out)
	}

	// 4. Authenticated client via naming discovery: open then assign.
	out, err = run(t, ticketcli, "-naming", namingAddr, "-token", token,
		"open", "TT-1", "printer on fire")
	if err != nil {
		t.Fatalf("authenticated open: %v\n%s", err, out)
	}
	if !strings.Contains(out, "opened TT-1") {
		t.Fatalf("open output:\n%s", out)
	}
	out, err = run(t, ticketcli, "-addr", ticketAddr, "-token", token, "assign")
	if err != nil {
		t.Fatalf("assign: %v\n%s", err, out)
	}
	if !strings.Contains(out, "assigned TT-1") {
		t.Fatalf("assign output:\n%s", out)
	}

	// 5. Load generator: move tickets through concurrently.
	out, err = run(t, ticketcli, "-addr", ticketAddr, "-token", token,
		"load", "-n", "200", "-clients", "4")
	if err != nil {
		t.Fatalf("load: %v\n%s", err, out)
	}
	if !strings.Contains(out, "moved 200 tickets") {
		t.Fatalf("load output:\n%s", out)
	}
}
