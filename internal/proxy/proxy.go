// Package proxy implements the component proxy of the framework: the
// object standing in for a functional component that brackets every call to
// a participating method between the moderator's pre-activation and
// post-activation phases (the paper's TicketServerProxy, Figures 3 and 10).
//
// Go offers no dynamic proxies over arbitrary types without reflection, so
// — faithfully to the paper's Figure 10, which hand-writes one guard per
// method — a Proxy is an explicit method table: the functional component's
// services are bound by name as closures, and Invoke dispatches through the
// guard.
package proxy

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/aspect"
	"repro/internal/moderator"
)

// ErrNoSuchMethod is returned by Invoke for an unbound method name.
var ErrNoSuchMethod = errors.New("proxy: no such method")

// Invoker is the calling side of a guarded component: the local Proxy and
// the RPC client stub both implement it, so aspects and applications are
// indifferent to component location (the paper's location transparency).
type Invoker interface {
	Invoke(ctx context.Context, method string, args ...any) (any, error)
}

// Method is one service of the functional component, bound into the proxy's
// method table. It receives the invocation for access to arguments and
// attributes, and returns the service's result.
type Method func(inv *aspect.Invocation) (any, error)

// Proxy guards a functional component. Construct with New.
type Proxy struct {
	mod *moderator.Moderator

	mu      sync.RWMutex
	methods map[string]Method
}

var _ Invoker = (*Proxy)(nil)

// New creates a proxy dispatching through the given moderator. The proxy
// adopts the moderator's component name.
func New(mod *moderator.Moderator) *Proxy {
	return &Proxy{
		mod:     mod,
		methods: make(map[string]Method, 8),
	}
}

// Name returns the component name (the moderator's name).
func (p *Proxy) Name() string { return p.mod.Name() }

// Moderator returns the moderator the proxy dispatches through, for aspect
// registration and statistics.
func (p *Proxy) Moderator() *moderator.Moderator { return p.mod }

// Bind adds a participating method to the proxy's method table. Binding a
// name twice or binding a nil method is an error.
func (p *Proxy) Bind(method string, fn Method) error {
	if method == "" {
		return fmt.Errorf("proxy %s: bind: empty method name", p.Name())
	}
	if fn == nil {
		return fmt.Errorf("proxy %s: bind %s: nil method", p.Name(), method)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.methods[method]; dup {
		return fmt.Errorf("proxy %s: bind %s: already bound", p.Name(), method)
	}
	p.methods[method] = fn
	return nil
}

// Methods returns the sorted names of the bound methods.
func (p *Proxy) Methods() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.methods))
	for m := range p.methods {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Invoke performs one guarded call: it builds the invocation record, runs
// pre-activation (blocking as the aspects dictate), executes the method
// body outside the admission lock, and runs post-activation. This is the
// paper's guarded method of Figure 10.
func (p *Proxy) Invoke(ctx context.Context, method string, args ...any) (any, error) {
	return p.Call(aspect.NewInvocation(ctx, p.Name(), method, args))
}

// InvokeWithPriority is Invoke with an explicit wait-queue priority for
// moderators using the priority wake policy.
func (p *Proxy) InvokeWithPriority(ctx context.Context, priority int, method string, args ...any) (any, error) {
	inv := aspect.NewInvocation(ctx, p.Name(), method, args)
	inv.Priority = priority
	return p.Call(inv)
}

// Call performs one guarded call with a caller-constructed invocation,
// allowing priorities and attributes (credentials, tracing metadata) to be
// attached beforehand. The invocation must target this component.
func (p *Proxy) Call(inv *aspect.Invocation) (any, error) {
	p.mu.RLock()
	fn, ok := p.methods[inv.Method()]
	p.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("proxy %s: invoke %s: %w", p.Name(), inv.Method(), ErrNoSuchMethod)
	}
	adm, err := p.mod.Preactivation(inv)
	if err != nil {
		return nil, err
	}
	// Post-activation is deferred so that aspect state (reservations,
	// active counters) is restored even if the method body panics; the
	// panic then propagates to the caller.
	defer p.mod.Postactivation(inv, adm)
	result, err := fn(inv)
	inv.SetResult(result, err)
	return result, err
}
