package proxy

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/aspect"
	"repro/internal/moderator"
)

func newProxy(t *testing.T) *Proxy {
	t.Helper()
	return New(moderator.New("comp"))
}

func TestBindValidation(t *testing.T) {
	p := newProxy(t)
	body := func(*aspect.Invocation) (any, error) { return nil, nil }
	if err := p.Bind("", body); err == nil {
		t.Error("empty name must error")
	}
	if err := p.Bind("m", nil); err == nil {
		t.Error("nil body must error")
	}
	if err := p.Bind("m", body); err != nil {
		t.Fatalf("bind: %v", err)
	}
	if err := p.Bind("m", body); err == nil {
		t.Error("duplicate bind must error")
	}
}

func TestMethodsSorted(t *testing.T) {
	p := newProxy(t)
	body := func(*aspect.Invocation) (any, error) { return nil, nil }
	for _, m := range []string{"zeta", "alpha", "mid"} {
		if err := p.Bind(m, body); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "mid", "zeta"}
	if got := p.Methods(); !reflect.DeepEqual(got, want) {
		t.Errorf("Methods = %v, want %v", got, want)
	}
}

func TestInvokeUnknownMethod(t *testing.T) {
	p := newProxy(t)
	_, err := p.Invoke(context.Background(), "ghost")
	if !errors.Is(err, ErrNoSuchMethod) {
		t.Fatalf("want ErrNoSuchMethod, got %v", err)
	}
}

func TestInvokePassesArgsAndReturnsResult(t *testing.T) {
	p := newProxy(t)
	if err := p.Bind("add", func(inv *aspect.Invocation) (any, error) {
		a, err := inv.ArgInt(0)
		if err != nil {
			return nil, err
		}
		b, err := inv.ArgInt(1)
		if err != nil {
			return nil, err
		}
		return a + b, nil
	}); err != nil {
		t.Fatal(err)
	}
	got, err := p.Invoke(context.Background(), "add", 2, 3)
	if err != nil || got != 5 {
		t.Fatalf("Invoke = %v, %v", got, err)
	}
}

func TestInvokeReturnsBodyError(t *testing.T) {
	p := newProxy(t)
	boom := errors.New("body failed")
	if err := p.Bind("m", func(*aspect.Invocation) (any, error) { return nil, boom }); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), "m"); !errors.Is(err, boom) {
		t.Fatalf("want %v, got %v", boom, err)
	}
}

func TestGuardedInvokeRunsPhasesAroundBody(t *testing.T) {
	p := newProxy(t)
	var order []string
	var mu sync.Mutex
	add := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }
	a := &aspect.Func{
		AspectName: "g",
		AspectKind: aspect.KindSynchronization,
		Pre: func(*aspect.Invocation) aspect.Verdict {
			add("pre")
			return aspect.Resume
		},
		Post: func(inv *aspect.Invocation) {
			add("post")
			if inv.Result() != "out" {
				t.Errorf("postaction sees result %v", inv.Result())
			}
		},
	}
	if err := p.Moderator().Register("m", aspect.KindSynchronization, a); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind("m", func(*aspect.Invocation) (any, error) {
		add("body")
		return "out", nil
	}); err != nil {
		t.Fatal(err)
	}
	got, err := p.Invoke(context.Background(), "m")
	if err != nil || got != "out" {
		t.Fatalf("Invoke = %v, %v", got, err)
	}
	want := []string{"pre", "body", "post"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestAbortedInvokeSkipsBody(t *testing.T) {
	p := newProxy(t)
	deny := aspect.New("deny", aspect.KindAuthentication,
		func(*aspect.Invocation) aspect.Verdict { return aspect.Abort }, nil)
	if err := p.Moderator().Register("m", aspect.KindAuthentication, deny); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := p.Bind("m", func(*aspect.Invocation) (any, error) {
		ran = true
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	_, err := p.Invoke(context.Background(), "m")
	if !errors.Is(err, aspect.ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
	if ran {
		t.Error("aborted invocation must not run the body")
	}
	if s := p.Moderator().Stats(); s.Completions != 0 {
		t.Errorf("no post-activation expected, stats = %+v", s)
	}
}

func TestPostactivationRunsOnBodyPanic(t *testing.T) {
	p := newProxy(t)
	active := 0
	mutex := &aspect.Func{
		AspectName: "mutex",
		AspectKind: aspect.KindSynchronization,
		Pre: func(*aspect.Invocation) aspect.Verdict {
			if active > 0 {
				return aspect.Block
			}
			active++
			return aspect.Resume
		},
		Post:     func(*aspect.Invocation) { active-- },
		CancelFn: func(*aspect.Invocation) { active-- },
	}
	if err := p.Moderator().Register("m", aspect.KindSynchronization, mutex); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind("m", func(inv *aspect.Invocation) (any, error) {
		if inv.Arg(0) == "panic" {
			panic("deliberate")
		}
		return "ok", nil
	}); err != nil {
		t.Fatal(err)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic must propagate")
			}
		}()
		_, _ = p.Invoke(context.Background(), "m", "panic")
	}()

	// The mutex aspect must have been released by the deferred
	// post-activation; a subsequent call must not deadlock.
	got, err := p.Invoke(context.Background(), "m", "fine")
	if err != nil || got != "ok" {
		t.Fatalf("post-panic invoke = %v, %v", got, err)
	}
}

func TestInvokeWithPriorityReachesInvocation(t *testing.T) {
	p := newProxy(t)
	var seen int
	a := aspect.New("spy", aspect.KindScheduling, func(inv *aspect.Invocation) aspect.Verdict {
		seen = inv.Priority
		return aspect.Resume
	}, nil)
	if err := p.Moderator().Register("m", aspect.KindScheduling, a); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind("m", func(*aspect.Invocation) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := p.InvokeWithPriority(context.Background(), 7, "m"); err != nil {
		t.Fatal(err)
	}
	if seen != 7 {
		t.Errorf("priority = %d, want 7", seen)
	}
}

func TestCallWithPreparedInvocation(t *testing.T) {
	type credKey struct{}
	p := newProxy(t)
	var sawCred any
	a := aspect.New("authspy", aspect.KindAuthentication, func(inv *aspect.Invocation) aspect.Verdict {
		sawCred = inv.Attr(credKey{})
		return aspect.Resume
	}, nil)
	if err := p.Moderator().Register("m", aspect.KindAuthentication, a); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind("m", func(*aspect.Invocation) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	inv := aspect.NewInvocation(context.Background(), p.Name(), "m", nil)
	inv.SetAttr(credKey{}, "token-1")
	if _, err := p.Call(inv); err != nil {
		t.Fatal(err)
	}
	if sawCred != "token-1" {
		t.Errorf("attr not visible to aspect: %v", sawCred)
	}
}

func TestNameAdoptedFromModerator(t *testing.T) {
	mod := moderator.New("ticket-server")
	p := New(mod)
	if p.Name() != "ticket-server" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Moderator() != mod {
		t.Error("Moderator accessor must return the wired moderator")
	}
}

func TestConcurrentInvocations(t *testing.T) {
	p := newProxy(t)
	var mu sync.Mutex
	count := 0
	if err := p.Bind("inc", func(*aspect.Invocation) (any, error) {
		mu.Lock()
		count++
		mu.Unlock()
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Invoke(context.Background(), "inc"); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}()
	}
	wg.Wait()
	if count != n {
		t.Errorf("count = %d, want %d", count, n)
	}
}
