package amrpc

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
)

// mutableResolver is a Resolver whose endpoint set can shrink mid-test, the
// way a naming-backed resolver shrinks when a member's lease expires.
type mutableResolver struct {
	mu    sync.Mutex
	addrs []string
}

func (r *mutableResolver) resolve() ([]string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.addrs))
	copy(out, r.addrs)
	return out, nil
}

func (r *mutableResolver) set(addrs ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addrs = append([]string(nil), addrs...)
}

// TestBalancerDropsRemovedMember pins the membership-shrink behavior the
// cluster depends on: once the resolver stops listing an endpoint, no
// invocation routes to it again — not via round-robin, and not as a
// failover candidate while the surviving endpoints are failing.
func TestBalancerDropsRemovedMember(t *testing.T) {
	aliveAddr := startServer(t, newEchoProxy(t, "svc"))
	removedAddr := startServer(t, newEchoProxy(t, "svc"))

	resolver := &mutableResolver{}
	resolver.set(aliveAddr, removedAddr)

	var dialsToRemoved atomic.Int64
	b, err := NewBalancerWith(BalancerConfig{
		Component: "svc",
		Resolver:  resolver.resolve,
		DialConn: func(addr string) (net.Conn, error) {
			if addr == removedAddr {
				dialsToRemoved.Add(1)
			}
			return defaultDialFunc(addr)()
		},
		BreakerThreshold: -1, // keep every endpoint eligible: routing must be membership-driven
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx := context.Background()
	// Warm both endpoints: round-robin over two members must touch both.
	for i := 0; i < 6; i++ {
		if _, err := b.Invoke(ctx, "echo", "warm"); err != nil {
			t.Fatalf("warm invoke %d: %v", i, err)
		}
	}
	if dialsToRemoved.Load() == 0 {
		t.Fatal("test setup: the to-be-removed member never received traffic")
	}

	// The member leaves: the resolver stops listing it.
	resolver.set(aliveAddr)
	baseline := dialsToRemoved.Load()

	for i := 0; i < 20; i++ {
		if _, err := b.Invoke(ctx, "echo", "after"); err != nil {
			t.Fatalf("post-removal invoke %d: %v", i, err)
		}
	}
	if got := dialsToRemoved.Load(); got != baseline {
		t.Fatalf("removed member was dialed %d time(s) after leaving the resolver", got-baseline)
	}

	// Failover must not resurrect the removed member either: with the only
	// listed endpoint failing, invocations fail rather than fall back to
	// the member that left.
	resolver.set("127.0.0.1:1") // reserved port: dial fails fast
	if _, err := b.Invoke(ctx, "echo", "dead"); err == nil {
		t.Fatal("invoke against a dead-only membership must fail")
	}
	if got := dialsToRemoved.Load(); got != baseline {
		t.Fatalf("failover routed %d retr(ies) to the removed member", got-baseline)
	}
}
