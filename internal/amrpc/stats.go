package amrpc

// Transport statistics for observability. Counters are plain atomics
// bumped on paths that already pay a syscall or a lock, so the accounting
// is free at the call-rate scale; internal/obs exports them as gauges via
// pull-side registry callbacks.

import "sync/atomic"

// clientStats is the Client's internal counter block.
type clientStats struct {
	calls           atomic.Uint64
	attempts        atomic.Uint64
	retries         atomic.Uint64
	transportErrors atomic.Uint64
	reconnects      atomic.Uint64
	dialFailures    atomic.Uint64
}

// ClientStats is a snapshot of a Client's transport counters.
type ClientStats struct {
	// Calls is the number of logical invocations issued.
	Calls uint64
	// Attempts is the number of wire attempts (>= Calls; the excess is
	// retries).
	Attempts uint64
	// Retries is the number of attempts beyond the first of their call.
	Retries uint64
	// TransportErrors counts attempts that failed at the transport level.
	TransportErrors uint64
	// Reconnects counts connections established after the first.
	Reconnects uint64
	// DialFailures counts failed dial attempts.
	DialFailures uint64
}

// Stats returns a snapshot of the client's transport counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Calls:           c.stats.calls.Load(),
		Attempts:        c.stats.attempts.Load(),
		Retries:         c.stats.retries.Load(),
		TransportErrors: c.stats.transportErrors.Load(),
		Reconnects:      c.stats.reconnects.Load(),
		DialFailures:    c.stats.dialFailures.Load(),
	}
}

// serverStats is the Server's internal counter block.
type serverStats struct {
	conns         atomic.Uint64
	requests      atomic.Uint64
	checksumDrops atomic.Uint64
	malformed     atomic.Uint64
	errorReplies  atomic.Uint64
	queued        atomic.Uint64
	rejected      atomic.Uint64
	sheds         atomic.Uint64
	flushes       atomic.Uint64
	flushFrames   atomic.Uint64
}

// ServerStats is a snapshot of a Server's wire counters. The state
// handoff's replication stream rides the same servers as application
// traffic, so these cover both.
type ServerStats struct {
	// Conns is the number of connections accepted.
	Conns uint64 `json:"conns"`
	// Requests is the number of well-formed requests dispatched to a
	// handler.
	Requests uint64 `json:"requests"`
	// ChecksumDrops counts frames dropped silently for a CRC mismatch.
	ChecksumDrops uint64 `json:"checksum_drops"`
	// Malformed counts frames refused as undecodable (CodeBadRequest).
	Malformed uint64 `json:"malformed"`
	// ErrorReplies counts requests answered with an application or
	// routing error.
	ErrorReplies uint64 `json:"error_replies"`
	// Queued counts requests that entered a connection's work queue with
	// at least one request already ahead of them (approximate: the depth
	// is sampled at enqueue).
	Queued uint64 `json:"queued"`
	// Rejected counts requests refused with CodeOverloaded because their
	// connection's work queue was full — the MaxConcurrentPerConn bound
	// holding against a pipelining client.
	Rejected uint64 `json:"rejected"`
	// Sheds counts requests refused with CodeOverloaded by the
	// admission-aware shed policy before reaching the moderator.
	Sheds uint64 `json:"sheds"`
	// Flushes counts coalesced response writes; FlushFrames counts the
	// response frames they carried. FlushFrames/Flushes is the mean write
	// batch — above 1 means the writer is saving syscalls.
	Flushes     uint64 `json:"flushes"`
	FlushFrames uint64 `json:"flush_frames"`
}

// Stats returns a snapshot of the server's wire counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Conns:         s.stats.conns.Load(),
		Requests:      s.stats.requests.Load(),
		ChecksumDrops: s.stats.checksumDrops.Load(),
		Malformed:     s.stats.malformed.Load(),
		ErrorReplies:  s.stats.errorReplies.Load(),
		Queued:        s.stats.queued.Load(),
		Rejected:      s.stats.rejected.Load(),
		Sheds:         s.stats.sheds.Load(),
		Flushes:       s.stats.flushes.Load(),
		FlushFrames:   s.stats.flushFrames.Load(),
	}
}

// balancerStats is the Balancer's internal counter block.
type balancerStats struct {
	invokes      atomic.Uint64
	failovers    atomic.Uint64
	breakerTrips atomic.Uint64
	probes       atomic.Uint64
	recoveries   atomic.Uint64
}

// BalancerStats is a snapshot of a Balancer's routing counters.
type BalancerStats struct {
	// Invokes is the number of logical invocations routed.
	Invokes uint64
	// Failovers counts candidate endpoints tried beyond the first of
	// their invocation.
	Failovers uint64
	// BreakerTrips counts transitions to the open state (threshold trips
	// and failed half-open probes alike).
	BreakerTrips uint64
	// Probes counts half-open probe attempts begun.
	Probes uint64
	// Recoveries counts breakers closed from a non-closed state.
	Recoveries uint64
}

// Stats returns a snapshot of the balancer's routing counters.
func (b *Balancer) Stats() BalancerStats {
	return BalancerStats{
		Invokes:      b.stats.invokes.Load(),
		Failovers:    b.stats.failovers.Load(),
		BreakerTrips: b.stats.breakerTrips.Load(),
		Probes:       b.stats.probes.Load(),
		Recoveries:   b.stats.recoveries.Load(),
	}
}
