package amrpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/aspects/auth"
	"repro/internal/moderator"
	"repro/internal/naming"
	"repro/internal/proxy"
)

// startReplica serves one echo component (whose replies carry the replica
// id) and returns its address plus a stop function.
func startReplica(t *testing.T, id string) (string, func()) {
	t.Helper()
	p := proxy.New(moderator.New("svc"))
	if err := p.Bind("who", func(*aspect.Invocation) (any, error) {
		return id, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind("deny", func(*aspect.Invocation) (any, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Moderator().Register("deny", aspect.KindAuthentication,
		auth.Authenticator("auth", auth.NewTokenStore())); err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	if err := srv.Register(p); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		srv.Close()
		wg.Wait()
	}
	t.Cleanup(stop)
	return ln.Addr().String(), stop
}

func TestNewBalancerValidation(t *testing.T) {
	if _, err := NewBalancer("", StaticResolver("a:1")); err == nil {
		t.Error("empty component must error")
	}
	if _, err := NewBalancer("svc", nil); err == nil {
		t.Error("nil resolver must error")
	}
}

func TestBalancerNoEndpoints(t *testing.T) {
	b, err := NewBalancer("svc", StaticResolver())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Invoke(context.Background(), "who"); !errors.Is(err, ErrNoEndpoints) {
		t.Fatalf("want ErrNoEndpoints, got %v", err)
	}
}

func TestBalancerRoundRobin(t *testing.T) {
	a1, _ := startReplica(t, "r1")
	a2, _ := startReplica(t, "r2")
	b, err := NewBalancer("svc", StaticResolver(a1, a2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	seen := map[string]int{}
	for k := 0; k < 10; k++ {
		got, err := b.Invoke(context.Background(), "who")
		if err != nil {
			t.Fatal(err)
		}
		seen[got.(string)]++
	}
	if seen["r1"] != 5 || seen["r2"] != 5 {
		t.Errorf("round robin uneven: %v", seen)
	}
	if got := len(b.Endpoints()); got != 2 {
		t.Errorf("pooled endpoints = %d", got)
	}
}

func TestBalancerFailover(t *testing.T) {
	a1, stop1 := startReplica(t, "r1")
	a2, _ := startReplica(t, "r2")
	b, err := NewBalancer("svc", StaticResolver(a1, a2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Warm both connections.
	for k := 0; k < 2; k++ {
		if _, err := b.Invoke(context.Background(), "who"); err != nil {
			t.Fatal(err)
		}
	}
	// Kill replica 1: every subsequent call must still succeed via r2.
	stop1()
	for k := 0; k < 6; k++ {
		got, err := b.Invoke(context.Background(), "who")
		if err != nil {
			t.Fatalf("call %d after failover: %v", k, err)
		}
		if got != "r2" {
			t.Fatalf("call %d answered by %v, want r2", k, got)
		}
	}
}

func TestBalancerAllDown(t *testing.T) {
	a1, stop1 := startReplica(t, "r1")
	stop1()
	b, err := NewBalancer("svc", StaticResolver(a1))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Invoke(context.Background(), "who"); err == nil {
		t.Fatal("all-down balancer must fail")
	}
}

func TestBalancerDoesNotFailOverApplicationErrors(t *testing.T) {
	// An aspect-rejected invocation must surface immediately, not be
	// retried on the next replica.
	a1, _ := startReplica(t, "r1")
	a2, _ := startReplica(t, "r2")
	b, err := NewBalancer("svc", StaticResolver(a1, a2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_, err = b.Invoke(context.Background(), "deny")
	if !errors.Is(err, auth.ErrUnauthenticated) {
		t.Fatalf("want unauthenticated, got %v", err)
	}
}

func TestBalancerClose(t *testing.T) {
	a1, _ := startReplica(t, "r1")
	b, err := NewBalancer("svc", StaticResolver(a1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Invoke(context.Background(), "who"); err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close() // idempotent
	if _, err := b.Invoke(context.Background(), "who"); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("invoke after close: %v", err)
	}
}

func TestBalancerWithNamingPrefixResolver(t *testing.T) {
	// Replicas register as svc/1, svc/2 in a naming service; the balancer
	// discovers them via PrefixResolver and spreads load.
	nsrv := naming.NewServer(nil)
	nln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = nsrv.Serve(nln)
	}()
	t.Cleanup(func() {
		nsrv.Close()
		wg.Wait()
	})

	a1, _ := startReplica(t, "r1")
	a2, _ := startReplica(t, "r2")
	announcer, err := naming.DialClient(nln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = announcer.Close() })
	for i, addr := range []string{a1, a2} {
		if err := announcer.Register(fmt.Sprintf("svc/%d", i+1), addr, time.Minute); err != nil {
			t.Fatal(err)
		}
	}

	resolver, err := naming.DialClient(nln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = resolver.Close() })
	b, err := NewBalancer("svc", Resolver(naming.PrefixResolver(resolver, "svc/")))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	seen := map[string]bool{}
	for k := 0; k < 6; k++ {
		got, err := b.Invoke(context.Background(), "who")
		if err != nil {
			t.Fatal(err)
		}
		seen[got.(string)] = true
	}
	if !seen["r1"] || !seen["r2"] {
		t.Errorf("load not spread: %v", seen)
	}
}
