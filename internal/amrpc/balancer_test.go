package amrpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/aspects/auth"
	"repro/internal/aspects/fault"
	"repro/internal/moderator"
	"repro/internal/naming"
	"repro/internal/proxy"
)

// serveReplicaOn serves one echo component (whose "who" replies carry the
// replica id) on an existing listener and returns a stop function.
func serveReplicaOn(t *testing.T, ln net.Listener, id string) func() {
	t.Helper()
	p := proxy.New(moderator.New("svc"))
	if err := p.Bind("who", func(*aspect.Invocation) (any, error) {
		return id, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Bind("deny", func(*aspect.Invocation) (any, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Moderator().Register("deny", aspect.KindAuthentication,
		auth.Authenticator("auth", auth.NewTokenStore())); err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	if err := srv.Register(p); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		srv.Close()
		wg.Wait()
	}
	t.Cleanup(stop)
	return stop
}

// startReplica serves one echo replica on an ephemeral port and returns
// its address plus a stop function.
func startReplica(t *testing.T, id string) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := serveReplicaOn(t, ln, id)
	return ln.Addr().String(), stop
}

func TestNewBalancerValidation(t *testing.T) {
	if _, err := NewBalancer("", StaticResolver("a:1")); err == nil {
		t.Error("empty component must error")
	}
	if _, err := NewBalancer("svc", nil); err == nil {
		t.Error("nil resolver must error")
	}
}

func TestBalancerNoEndpoints(t *testing.T) {
	b, err := NewBalancer("svc", StaticResolver())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Invoke(context.Background(), "who"); !errors.Is(err, ErrNoEndpoints) {
		t.Fatalf("want ErrNoEndpoints, got %v", err)
	}
}

func TestBalancerRoundRobin(t *testing.T) {
	a1, _ := startReplica(t, "r1")
	a2, _ := startReplica(t, "r2")
	b, err := NewBalancer("svc", StaticResolver(a1, a2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	seen := map[string]int{}
	for k := 0; k < 10; k++ {
		got, err := b.Invoke(context.Background(), "who")
		if err != nil {
			t.Fatal(err)
		}
		seen[got.(string)]++
	}
	if seen["r1"] != 5 || seen["r2"] != 5 {
		t.Errorf("round robin uneven: %v", seen)
	}
	if got := len(b.Endpoints()); got != 2 {
		t.Errorf("pooled endpoints = %d", got)
	}
}

func TestBalancerFailover(t *testing.T) {
	a1, stop1 := startReplica(t, "r1")
	a2, _ := startReplica(t, "r2")
	b, err := NewBalancer("svc", StaticResolver(a1, a2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Warm both connections.
	for k := 0; k < 2; k++ {
		if _, err := b.Invoke(context.Background(), "who"); err != nil {
			t.Fatal(err)
		}
	}
	// Kill replica 1: every subsequent call must still succeed via r2.
	stop1()
	for k := 0; k < 6; k++ {
		got, err := b.Invoke(context.Background(), "who")
		if err != nil {
			t.Fatalf("call %d after failover: %v", k, err)
		}
		if got != "r2" {
			t.Fatalf("call %d answered by %v, want r2", k, got)
		}
	}
}

func TestBalancerAllDown(t *testing.T) {
	a1, stop1 := startReplica(t, "r1")
	stop1()
	b, err := NewBalancer("svc", StaticResolver(a1))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Invoke(context.Background(), "who"); err == nil {
		t.Fatal("all-down balancer must fail")
	}
}

func TestBalancerDoesNotFailOverApplicationErrors(t *testing.T) {
	// An aspect-rejected invocation must surface immediately, not be
	// retried on the next replica.
	a1, _ := startReplica(t, "r1")
	a2, _ := startReplica(t, "r2")
	b, err := NewBalancer("svc", StaticResolver(a1, a2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_, err = b.Invoke(context.Background(), "deny")
	if !errors.Is(err, auth.ErrUnauthenticated) {
		t.Fatalf("want unauthenticated, got %v", err)
	}
}

func TestBalancerClose(t *testing.T) {
	a1, _ := startReplica(t, "r1")
	b, err := NewBalancer("svc", StaticResolver(a1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Invoke(context.Background(), "who"); err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close() // idempotent
	if _, err := b.Invoke(context.Background(), "who"); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("invoke after close: %v", err)
	}
}

func TestBalancerWithNamingPrefixResolver(t *testing.T) {
	// Replicas register as svc/1, svc/2 in a naming service; the balancer
	// discovers them via PrefixResolver and spreads load.
	nsrv := naming.NewServer(nil)
	nln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = nsrv.Serve(nln)
	}()
	t.Cleanup(func() {
		nsrv.Close()
		wg.Wait()
	})

	a1, _ := startReplica(t, "r1")
	a2, _ := startReplica(t, "r2")
	announcer, err := naming.DialClient(nln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = announcer.Close() })
	for i, addr := range []string{a1, a2} {
		if err := announcer.Register(fmt.Sprintf("svc/%d", i+1), addr, time.Minute); err != nil {
			t.Fatal(err)
		}
	}

	resolver, err := naming.DialClient(nln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = resolver.Close() })
	b, err := NewBalancer("svc", Resolver(naming.PrefixResolver(resolver, "svc/")))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	seen := map[string]bool{}
	for k := 0; k < 6; k++ {
		got, err := b.Invoke(context.Background(), "who")
		if err != nil {
			t.Fatal(err)
		}
		seen[got.(string)] = true
	}
	if !seen["r1"] || !seen["r2"] {
		t.Errorf("load not spread: %v", seen)
	}
}

// fakeClock is an advanceable clock for breaker tests: no real sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBreakerTripsDrainsAndRecovers is the full breaker lifecycle: a killed
// backend trips open after the failure threshold, traffic drains to the
// healthy backend, and after the cooldown a half-open probe restores the
// revived backend to rotation. Driven by a fake clock: no long sleeps.
func TestBreakerTripsDrainsAndRecovers(t *testing.T) {
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := ln1.Addr().String()
	stop1 := serveReplicaOn(t, ln1, "r1")
	addr2, _ := startReplica(t, "r2")

	clock := newFakeClock()
	b, err := NewBalancerWith(BalancerConfig{
		Component:        "svc",
		Resolver:         StaticResolver(addr1, addr2),
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		Now:              clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Warm both backends.
	for k := 0; k < 2; k++ {
		if _, err := b.Invoke(context.Background(), "who"); err != nil {
			t.Fatal(err)
		}
	}

	// Kill r1. Every call still succeeds (failover), and after 2 transport
	// failures r1's breaker must be open.
	stop1()
	for k := 0; k < 8; k++ {
		got, err := b.Invoke(context.Background(), "who")
		if err != nil {
			t.Fatalf("call %d during trip: %v", k, err)
		}
		if got != "r2" {
			t.Fatalf("call %d answered by %v, want r2", k, got)
		}
	}
	if st := b.Health()[addr1]; st != BreakerOpen {
		t.Fatalf("r1 breaker = %v, want open", st)
	}

	// Revive r1 on the same port. Without a clock advance the breaker stays
	// open: traffic keeps draining to r2 only.
	ln1b, err := net.Listen("tcp", addr1)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr1, err)
	}
	serveReplicaOn(t, ln1b, "r1")
	for k := 0; k < 4; k++ {
		got, err := b.Invoke(context.Background(), "who")
		if err != nil {
			t.Fatal(err)
		}
		if got != "r2" {
			t.Fatalf("breaker open but %v answered", got)
		}
	}
	if st := b.Health()[addr1]; st != BreakerOpen {
		t.Fatalf("r1 breaker = %v, want still open", st)
	}

	// Cooldown elapses: the next call is the half-open probe, routed to the
	// revived r1, which closes the breaker.
	clock.Advance(2 * time.Minute)
	got, err := b.Invoke(context.Background(), "who")
	if err != nil {
		t.Fatalf("probe call: %v", err)
	}
	if got != "r1" {
		t.Fatalf("probe answered by %v, want revived r1", got)
	}
	if st := b.Health()[addr1]; st != BreakerClosed {
		t.Fatalf("r1 breaker = %v, want closed after probe", st)
	}

	// r1 is back in rotation.
	seen := map[string]bool{}
	for k := 0; k < 4; k++ {
		got, err := b.Invoke(context.Background(), "who")
		if err != nil {
			t.Fatal(err)
		}
		seen[got.(string)] = true
	}
	if !seen["r1"] || !seen["r2"] {
		t.Errorf("rotation after recovery: %v", seen)
	}
}

// TestBreakerFailFastAndProbeFailureReopens: with every breaker open the
// balancer fails fast with ErrCircuitOpen instead of re-dialing a dead
// backend, and a failed half-open probe goes straight back to open.
func TestBreakerFailFastAndProbeFailureReopens(t *testing.T) {
	// A dead endpoint: listen, grab the port, close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	clock := newFakeClock()
	b, err := NewBalancerWith(BalancerConfig{
		Component:        "svc",
		Resolver:         StaticResolver(addr),
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		Now:              clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// First call: dial fails, breaker trips open.
	if _, err := b.Invoke(context.Background(), "who"); !errors.Is(err, ErrTransport) {
		t.Fatalf("first call: %v, want transport failure", err)
	}
	if st := b.Health()[addr]; st != BreakerOpen {
		t.Fatalf("breaker = %v, want open", st)
	}

	// Second call: fail fast, no dial.
	if _, err := b.Invoke(context.Background(), "who"); !errors.Is(err, fault.ErrCircuitOpen) {
		t.Fatalf("open-breaker call: %v, want ErrCircuitOpen", err)
	}

	// Cooldown elapses: the probe is allowed, fails (still dead), and the
	// breaker reopens for another cooldown.
	clock.Advance(2 * time.Minute)
	if _, err := b.Invoke(context.Background(), "who"); !errors.Is(err, ErrTransport) {
		t.Fatalf("probe call: %v, want transport failure", err)
	}
	if st := b.Health()[addr]; st != BreakerOpen {
		t.Fatalf("breaker after failed probe = %v, want open", st)
	}
	if _, err := b.Invoke(context.Background(), "who"); !errors.Is(err, fault.ErrCircuitOpen) {
		t.Fatalf("post-probe call: %v, want ErrCircuitOpen", err)
	}
}
