package amrpc

import "repro/internal/aspect"

// fenceKey is the invocation-attribute key carrying a domain-ownership
// lease term across the RPC boundary (same typed-key idiom as auth tokens).
type fenceKey struct{}

// SetFence stamps inv with a lease term. The server does this for every
// fenced wire request; a hosted Component that executes admissions must
// then refuse the invocation unless it holds the target domain's lease at
// exactly this term.
func SetFence(inv *aspect.Invocation, term uint64) {
	inv.SetAttr(fenceKey{}, term)
}

// FenceOf extracts the lease term stamped on inv, if any.
func FenceOf(inv *aspect.Invocation) (uint64, bool) {
	v := inv.Attr(fenceKey{})
	if v == nil {
		return 0, false
	}
	term, ok := v.(uint64)
	return term, ok
}
