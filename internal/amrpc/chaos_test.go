package amrpc

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/chaosnet"
	"repro/internal/moderator"
	"repro/internal/proxy"
)

// soakBackend is one replica of an idempotent component: put(id) inserts id
// into a set. The observable effect is membership, so redelivery of a
// retried request is absorbed rather than duplicated. applies counts raw
// deliveries for reporting; the set is the effect.
type soakBackend struct {
	mu      sync.Mutex
	ids     map[string]int
	unknown []string
}

func newSoakBackend(t *testing.T) (*soakBackend, *proxy.Proxy) {
	t.Helper()
	b := &soakBackend{ids: make(map[string]int, 2048)}
	mod := moderator.New("soak")
	// A pass-through synchronization aspect makes every put a *guarded*
	// invocation: it runs the full preactivation/postactivation protocol,
	// so the moderator's admission accounting is exercised under chaos.
	if err := mod.Register("put", aspect.KindSynchronization,
		aspect.New("gate", aspect.KindSynchronization,
			func(inv *aspect.Invocation) aspect.Verdict { return aspect.Resume },
			func(inv *aspect.Invocation) {})); err != nil {
		t.Fatal(err)
	}
	p := proxy.New(mod)
	if err := p.Bind("put", func(inv *aspect.Invocation) (any, error) {
		id, err := inv.ArgString(0)
		if err != nil {
			return nil, err
		}
		b.mu.Lock()
		defer b.mu.Unlock()
		if !strings.HasPrefix(id, "op-") {
			// A forged effect: only possible if a corrupted frame slipped
			// past the checksum. Recorded and failed loudly by the test.
			b.unknown = append(b.unknown, id)
			return nil, fmt.Errorf("soak: unknown id %q", id)
		}
		b.ids[id]++
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	return b, p
}

func (b *soakBackend) snapshot() (map[string]int, []string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int, len(b.ids))
	for k, v := range b.ids {
		out[k] = v
	}
	return out, append([]string(nil), b.unknown...)
}

// TestChaosSoak drives ≥1000 guarded invocations through the full stack —
// retrying client → circuit-breaking balancer → two servers — while a
// chaosnet injector corrupts, drops, delays, partially writes, and resets
// the links. Afterward: every intended effect happened (zero lost), nothing
// unintended happened (zero forged/duplicated set entries), the moderators'
// admission ledgers balance, and no goroutines leak.
func TestChaosSoak(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	backend1, proxy1 := newSoakBackend(t)
	backend2, proxy2 := newSoakBackend(t)

	srv1 := NewServer(WithReadTimeout(30 * time.Second))
	srv2 := NewServer(WithReadTimeout(30 * time.Second))
	if err := srv1.Register(proxy1); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Register(proxy2); err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1, addr2 := ln1.Addr().String(), ln2.Addr().String()
	go func() { _ = srv1.Serve(ln1) }()
	go func() { _ = srv2.Serve(ln2) }()

	inj := chaosnet.New(chaosnet.Config{
		Seed:             20260806,
		LatencyProb:      0.05,
		LatencyMin:       100 * time.Microsecond,
		LatencyMax:       time.Millisecond,
		CorruptProb:      0.02,
		DropProb:         0.01,
		PartialWriteProb: 0.01,
		ResetProb:        0.005,
		OpsBeforeFaults:  3,
		Record:           true,
	})

	bal, err := NewBalancerWith(BalancerConfig{
		Component:   "soak",
		Resolver:    StaticResolver(addr1, addr2),
		StubOptions: []StubOption{WithIdempotent()},
		ClientOptions: []ClientOption{
			WithRetry(RetryPolicy{
				MaxAttempts:    2,
				BaseBackoff:    time.Millisecond,
				MaxBackoff:     8 * time.Millisecond,
				AttemptTimeout: 300 * time.Millisecond,
			}),
			WithReconnectBackoff(time.Millisecond, 20*time.Millisecond),
		},
		DialConn:         func(addr string) (net.Conn, error) { return inj.DialFunc(addr)() },
		BreakerThreshold: 5,
		BreakerCooldown:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers   = 8
		perWorker = 150 // 1200 total guarded invocations
	)
	overall := time.Now().Add(60 * time.Second)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				id := fmt.Sprintf("op-%d-%d", w, k)
				for {
					if time.Now().After(overall) {
						t.Errorf("worker %d: gave up on %s at the overall deadline", w, id)
						return
					}
					ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
					_, err := bal.Invoke(ctx, "put", id)
					cancel()
					if err == nil {
						break
					}
					// Under chaos every failure class here is retryable at
					// this level: transport errors, attempt timeouts, and
					// fail-fast circuit-open rejections all clear up.
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Tear everything down before auditing: Server.Close waits for handler
	// drain, so the moderator ledgers are final when we read them.
	bal.Close()
	srv1.Close()
	srv2.Close()

	ids1, unknown1 := backend1.snapshot()
	ids2, unknown2 := backend2.snapshot()
	if len(unknown1)+len(unknown2) != 0 {
		t.Fatalf("forged effects slipped past frame integrity: %v %v", unknown1, unknown2)
	}

	union := make(map[string]int, workers*perWorker)
	for id, n := range ids1 {
		union[id] += n
	}
	for id, n := range ids2 {
		union[id] += n
	}
	var lost []string
	redelivered := 0
	for w := 0; w < workers; w++ {
		for k := 0; k < perWorker; k++ {
			id := fmt.Sprintf("op-%d-%d", w, k)
			n, ok := union[id]
			if !ok {
				lost = append(lost, id)
				continue
			}
			if n > 1 {
				redelivered++ // absorbed by idempotency; reported, not failed
			}
			delete(union, id)
		}
	}
	if len(lost) != 0 {
		t.Fatalf("%d effects lost under chaos, e.g. %v", len(lost), lost[:min(5, len(lost))])
	}
	if len(union) != 0 {
		extra := make([]string, 0, 5)
		for id := range union {
			extra = append(extra, id)
			if len(extra) == 5 {
				break
			}
		}
		t.Fatalf("%d unexpected effects appeared, e.g. %v", len(union), extra)
	}

	for i, p := range []*proxy.Proxy{proxy1, proxy2} {
		st := p.Moderator().Stats()
		if st.Admissions != st.Completions {
			t.Fatalf("server %d moderator ledger unbalanced after drain: admissions=%d completions=%d",
				i+1, st.Admissions, st.Completions)
		}
	}

	t.Logf("soak: %d ops, %d redelivered (absorbed), server1=%d server2=%d, faults=%v, conns=%d",
		workers*perWorker, redelivered, len(ids1), len(ids2), inj.Counts(), inj.Conns())

	// Goroutine-leak check: after balancer and servers close, the runtime
	// should settle back to (about) where it started.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= goroutinesBefore+5 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosCorruptionRecoveredByChecksumAndRetry isolates the corruption
// path: with an aggressively corrupting link, every sealed frame that is
// damaged is dropped by the receiver's checksum, the attempt times out, and
// the idempotent retry completes the call. No call may observe a wrong
// answer.
func TestChaosCorruptionRecoveredByChecksumAndRetry(t *testing.T) {
	addr := startServer(t, newEchoProxy(t, "echo"))
	inj := chaosnet.New(chaosnet.Config{
		Seed:            7,
		CorruptProb:     0.25,
		OpsBeforeFaults: 0,
		Record:          true,
	})
	c := newClient(
		WithDialFunc(inj.DialFunc(addr)),
		WithRetry(RetryPolicy{
			MaxAttempts:    10,
			BaseBackoff:    time.Millisecond,
			MaxBackoff:     4 * time.Millisecond,
			AttemptTimeout: 100 * time.Millisecond,
		}),
		WithReconnectBackoff(time.Millisecond, 8*time.Millisecond),
	)
	defer c.Close()

	stub := c.Component("echo", WithIdempotent())
	for i := 0; i < 30; i++ {
		want := fmt.Sprintf("payload-%d", i)
		got, err := stub.Invoke(context.Background(), "echo", want)
		if err != nil {
			t.Fatalf("call %d failed despite retries: %v", i, err)
		}
		if got != want {
			t.Fatalf("call %d: corrupted answer %q delivered as valid, want %q", i, got, want)
		}
	}
	if inj.Counts()[chaosnet.FaultCorrupt] == 0 {
		t.Fatal("the schedule injected no corruption; the test proved nothing")
	}
}
