package amrpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/aspect"
	"repro/internal/aspects/auth"
	"repro/internal/proxy"
)

// ErrNoSuchComponent is returned for requests naming an unregistered
// component.
var ErrNoSuchComponent = errors.New("amrpc: no such component")

// Component is anything the server can host: the guarded proxy of the
// classic single-node deployment, or a cluster node's routing front that
// decides per-invocation whether to execute locally or forward to the
// domain owner. *proxy.Proxy satisfies it as-is.
type Component interface {
	Name() string
	Call(inv *aspect.Invocation) (any, error)
}

// ShedPolicy decides, before a request is dispatched to a worker, whether
// the server should refuse it outright with CodeOverloaded. It is the hook
// through which admission-aware load shedding reaches the transport: a
// deployment wires in the moderator's ring + waiter depth (Pressure) and
// sheds when a domain is already too deep to park another caller — the
// request never reaches an aspect, so no guard state changes. The returned
// retryAfterMS travels to the client as a backoff hint (0 = no hint).
type ShedPolicy func(component, method string) (retryAfterMS int64, shed bool)

// Server hosts guarded components behind a TCP listener. Construct with
// NewServer, register components, then call Serve.
type Server struct {
	readTimeout   time.Duration
	maxLineBytes  int
	maxConcurrent int
	shed          ShedPolicy
	stats         serverStats

	mu         sync.Mutex
	components map[string]Component
	listeners  map[net.Listener]struct{}
	conns      map[net.Conn]struct{}
	closed     bool
	wg         sync.WaitGroup
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithReadTimeout sets the per-connection inactivity deadline (default 5
// minutes; 0 disables). The deadline is refreshed on every received line
// and every written response, so any live traffic keeps a connection open;
// a peer that goes silent — including one trickling bytes that never form
// a full line — is disconnected, so it cannot pin a handler goroutine
// forever.
func WithReadTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.readTimeout = d }
}

// WithMaxLineBytes caps the size of one request frame (default 4 MiB). A
// peer sending an oversized line is disconnected rather than allowed to
// grow the server's buffers without bound.
func WithMaxLineBytes(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxLineBytes = n
		}
	}
}

// WithMaxConcurrentPerConn bounds the worker pool serving one connection
// (default 256). A pipelining client can keep at most n requests in flight
// plus n queued; beyond that the server answers CodeOverloaded instead of
// spawning goroutines, so one connection cannot exhaust the process.
func WithMaxConcurrentPerConn(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxConcurrent = n
		}
	}
}

// WithShedPolicy installs the admission-aware shed hook. A nil policy (the
// default) never sheds.
func WithShedPolicy(p ShedPolicy) ServerOption {
	return func(s *Server) { s.shed = p }
}

// NewServer creates an empty server.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		readTimeout:   5 * time.Minute,
		maxLineBytes:  4 * 1024 * 1024,
		maxConcurrent: 256,
		components:    make(map[string]Component, 4),
		listeners:     make(map[net.Listener]struct{}, 1),
		conns:         make(map[net.Conn]struct{}, 16),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Register exposes a guarded component under its proxy name.
func (s *Server) Register(p *proxy.Proxy) error {
	if p == nil {
		return errors.New("amrpc: register nil proxy")
	}
	return s.RegisterComponent(p)
}

// RegisterComponent exposes any Component under its reported name.
func (s *Server) RegisterComponent(c Component) error {
	if c == nil {
		return errors.New("amrpc: register nil component")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.components[c.Name()]; dup {
		return fmt.Errorf("amrpc: component %q already registered", c.Name())
	}
	s.components[c.Name()] = c
	return nil
}

// Serve accepts connections on ln until Close is called or the listener
// fails. It blocks; run it on a goroutine you own. Each connection runs a
// reader, a bounded worker pool (MaxConcurrentPerConn) and a coalescing
// writer: requests on a connection are processed concurrently so a blocked
// invocation does not stall the pipe, but one pipelining client can never
// spawn more than its cap of handler goroutines.
func (s *Server) Serve(ln net.Listener) error {
	// Serve owns ln from here on (like net/http): it is closed when Serve
	// returns, so a Close racing with Serve's startup cannot leak an open
	// listener that nobody accepts from.
	defer func() { _ = ln.Close() }()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("amrpc: server closed")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("amrpc: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.stats.conns.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("amrpc: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Close stops accepting, closes every live connection, and waits for
// handlers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for ln := range s.listeners {
		_ = ln.Close()
	}
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// flushBytes is the coalescing writer's flush threshold: responses queued
// while a write was in progress are gathered into one buffer and written
// with a single conn.Write once the buffer reaches this size or the queue
// runs dry, whichever comes first.
const flushBytes = 64 * 1024

// serveConn runs one connection's pipeline: the reader goroutine (this
// one) decodes frames and dispatches them to a bounded worker pool; a
// dedicated writer goroutine coalesces completed responses into writev-
// shaped flushes. Workers are spawned lazily up to MaxConcurrentPerConn,
// so an idle or strictly sequential client costs one worker, while a
// pipelining client is capped instead of spawning a goroutine per request.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Worker goroutines of this connection are cancelled when the
	// connection dies, so blocked invocations do not leak.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// touch refreshes the inactivity deadline; reads and response writes
	// both count as liveness.
	touch := func() {
		if s.readTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.readTimeout))
		}
	}

	// The writer: the only goroutine that touches conn for output. Each
	// wake drains everything already queued into one buffer and issues one
	// Write — k responses completing while a flush is in progress cost one
	// syscall, not k.
	respCh := make(chan response, s.maxConcurrent)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		buf := make([]byte, 0, 16*1024)
		appendFrame := func(resp *response) int {
			b, err := sealResponse(resp)
			if err != nil {
				return 0
			}
			buf = append(buf, b...)
			buf = append(buf, '\n')
			return 1
		}
		open := true
		for open {
			resp, ok := <-respCh
			if !ok {
				return
			}
			buf = buf[:0]
			frames := appendFrame(&resp)
			for len(buf) < flushBytes {
				select {
				case r, more := <-respCh:
					if !more {
						open = false
					} else {
						frames += appendFrame(&r)
					}
				default:
				}
				if !open || len(respCh) == 0 {
					break
				}
			}
			if frames > 0 {
				touch()
				_, _ = conn.Write(buf)
				s.stats.flushes.Add(1)
				s.stats.flushFrames.Add(uint64(frames))
			}
		}
	}()

	// The bounded worker pool. Workers are spawned on demand while the
	// queue has work nobody picked up, never beyond the cap; each exits
	// when the queue closes.
	workCh := make(chan *request, s.maxConcurrent)
	var workers sync.WaitGroup
	spawned := 0
	spawnWorker := func() {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for req := range workCh {
				resp := s.handle(ctx, req)
				if resp.Err != "" {
					s.stats.errorReplies.Add(1)
				}
				respCh <- resp
			}
		}()
	}

	touch()
	scanner := bufio.NewScanner(conn)
	// The initial capacity must not exceed the cap: Scanner only enforces
	// its max when growing, so any token fitting the starting buffer would
	// sneak past a smaller configured limit.
	scanner.Buffer(make([]byte, 0, min(64*1024, s.maxLineBytes)), s.maxLineBytes)
	for scanner.Scan() {
		touch()
		req, err := decodeRequestLine(scanner.Bytes())
		if err != nil {
			if errors.Is(err, errChecksum) {
				// A corrupted frame: nothing in it — including its ID — can
				// be trusted, so drop it silently and let the client's
				// deadline + retry recover the call.
				s.stats.checksumDrops.Add(1)
				continue
			}
			s.stats.malformed.Add(1)
			respCh <- response{Err: "malformed request: " + err.Error(), Code: CodeBadRequest}
			continue
		}
		s.stats.requests.Add(1)
		if s.shed != nil {
			if retryAfter, shed := s.shed(req.Component, req.Method); shed {
				s.stats.sheds.Add(1)
				respCh <- response{
					ID:           req.ID,
					Err:          "overloaded: admission pressure",
					Code:         CodeOverloaded,
					RetryAfterMS: retryAfter,
				}
				continue
			}
		}
		if len(workCh) > 0 {
			// Approximate: the request is about to wait behind others.
			s.stats.queued.Add(1)
		}
		select {
		case workCh <- req:
			if spawned == 0 || (spawned < s.maxConcurrent && len(workCh) > 0) {
				spawned++
				spawnWorker()
			}
		default:
			// Cap workers in flight + cap requests queued: the pipe is as
			// full as this connection is allowed to make it.
			s.stats.rejected.Add(1)
			respCh <- response{
				ID:   req.ID,
				Err:  "overloaded: connection work queue full",
				Code: CodeOverloaded,
			}
		}
	}

	// Reader done: release any parked invocation, let the workers drain
	// what was already queued, then retire the writer.
	cancel()
	close(workCh)
	workers.Wait()
	close(respCh)
	<-writerDone
}

// handle executes one request against the named component's proxy.
func (s *Server) handle(ctx context.Context, req *request) response {
	s.mu.Lock()
	p, ok := s.components[req.Component]
	s.mu.Unlock()
	if !ok {
		return response{
			ID:   req.ID,
			Err:  fmt.Sprintf("component %q", req.Component),
			Code: CodeNoComponent,
		}
	}
	args, err := decodeArgs(req.Args)
	if err != nil {
		return response{ID: req.ID, Err: err.Error(), Code: CodeBadRequest}
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	inv := aspect.NewInvocation(ctx, p.Name(), req.Method, args)
	inv.Priority = req.Priority
	if req.Token != "" {
		auth.WithToken(inv, req.Token)
	}
	if req.Fence != 0 {
		SetFence(inv, req.Fence)
	}
	result, err := p.Call(inv)
	if err != nil {
		return response{ID: req.ID, Err: err.Error(), Code: codeFor(err)}
	}
	raw, err := json.Marshal(result)
	if err != nil {
		return response{
			ID:   req.ID,
			Err:  fmt.Sprintf("unencodable result: %v", err),
			Code: CodeInternal,
		}
	}
	return response{ID: req.ID, Result: raw}
}
