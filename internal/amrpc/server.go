package amrpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/aspect"
	"repro/internal/aspects/auth"
	"repro/internal/proxy"
)

// ErrNoSuchComponent is returned for requests naming an unregistered
// component.
var ErrNoSuchComponent = errors.New("amrpc: no such component")

// Component is anything the server can host: the guarded proxy of the
// classic single-node deployment, or a cluster node's routing front that
// decides per-invocation whether to execute locally or forward to the
// domain owner. *proxy.Proxy satisfies it as-is.
type Component interface {
	Name() string
	Call(inv *aspect.Invocation) (any, error)
}

// Server hosts guarded components behind a TCP listener. Construct with
// NewServer, register components, then call Serve.
type Server struct {
	readTimeout  time.Duration
	maxLineBytes int
	stats        serverStats

	mu         sync.Mutex
	components map[string]Component
	listeners  map[net.Listener]struct{}
	conns      map[net.Conn]struct{}
	closed     bool
	wg         sync.WaitGroup
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithReadTimeout sets the per-connection inactivity deadline (default 5
// minutes; 0 disables). The deadline is refreshed on every received line
// and every written response, so any live traffic keeps a connection open;
// a peer that goes silent — including one trickling bytes that never form
// a full line — is disconnected, so it cannot pin a handler goroutine
// forever.
func WithReadTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.readTimeout = d }
}

// WithMaxLineBytes caps the size of one request frame (default 4 MiB). A
// peer sending an oversized line is disconnected rather than allowed to
// grow the server's buffers without bound.
func WithMaxLineBytes(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxLineBytes = n
		}
	}
}

// NewServer creates an empty server.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		readTimeout:  5 * time.Minute,
		maxLineBytes: 4 * 1024 * 1024,
		components:   make(map[string]Component, 4),
		listeners:    make(map[net.Listener]struct{}, 1),
		conns:        make(map[net.Conn]struct{}, 16),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Register exposes a guarded component under its proxy name.
func (s *Server) Register(p *proxy.Proxy) error {
	if p == nil {
		return errors.New("amrpc: register nil proxy")
	}
	return s.RegisterComponent(p)
}

// RegisterComponent exposes any Component under its reported name.
func (s *Server) RegisterComponent(c Component) error {
	if c == nil {
		return errors.New("amrpc: register nil component")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.components[c.Name()]; dup {
		return fmt.Errorf("amrpc: component %q already registered", c.Name())
	}
	s.components[c.Name()] = c
	return nil
}

// Serve accepts connections on ln until Close is called or the listener
// fails. It blocks; run it on a goroutine you own. Each connection is
// served by one goroutine; requests on a connection are processed
// concurrently so a blocked invocation does not stall the pipe.
func (s *Server) Serve(ln net.Listener) error {
	// Serve owns ln from here on (like net/http): it is closed when Serve
	// returns, so a Close racing with Serve's startup cannot leak an open
	// listener that nobody accepts from.
	defer func() { _ = ln.Close() }()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("amrpc: server closed")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("amrpc: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.stats.conns.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("amrpc: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Close stops accepting, closes every live connection, and waits for
// handlers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for ln := range s.listeners {
		_ = ln.Close()
	}
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Handler goroutines of this connection are cancelled when the
	// connection dies, so blocked invocations do not leak. Deferred calls
	// run last-registered-first: Wait is registered before cancel so that
	// cancellation releases any parked handler before we wait for it.
	ctx, cancel := context.WithCancel(context.Background())
	var handlers sync.WaitGroup
	defer handlers.Wait()
	defer cancel()

	// touch refreshes the inactivity deadline; reads and response writes
	// both count as liveness.
	touch := func() {
		if s.readTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.readTimeout))
		}
	}
	var writeMu sync.Mutex
	write := func(resp response) {
		b, err := sealResponse(&resp)
		if err != nil {
			return
		}
		writeMu.Lock()
		defer writeMu.Unlock()
		touch()
		_, _ = conn.Write(append(b, '\n'))
	}

	touch()
	scanner := bufio.NewScanner(conn)
	// The initial capacity must not exceed the cap: Scanner only enforces
	// its max when growing, so any token fitting the starting buffer would
	// sneak past a smaller configured limit.
	scanner.Buffer(make([]byte, 0, min(64*1024, s.maxLineBytes)), s.maxLineBytes)
	for scanner.Scan() {
		touch()
		req, err := decodeRequestLine(scanner.Bytes())
		if err != nil {
			if errors.Is(err, errChecksum) {
				// A corrupted frame: nothing in it — including its ID — can
				// be trusted, so drop it silently and let the client's
				// deadline + retry recover the call.
				s.stats.checksumDrops.Add(1)
				continue
			}
			s.stats.malformed.Add(1)
			write(response{Err: "malformed request: " + err.Error(), Code: CodeBadRequest})
			continue
		}
		s.stats.requests.Add(1)
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			resp := s.handle(ctx, req)
			if resp.Err != "" {
				s.stats.errorReplies.Add(1)
			}
			write(resp)
		}()
	}
}

// handle executes one request against the named component's proxy.
func (s *Server) handle(ctx context.Context, req *request) response {
	s.mu.Lock()
	p, ok := s.components[req.Component]
	s.mu.Unlock()
	if !ok {
		return response{
			ID:   req.ID,
			Err:  fmt.Sprintf("component %q", req.Component),
			Code: CodeNoComponent,
		}
	}
	args, err := decodeArgs(req.Args)
	if err != nil {
		return response{ID: req.ID, Err: err.Error(), Code: CodeBadRequest}
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	inv := aspect.NewInvocation(ctx, p.Name(), req.Method, args)
	inv.Priority = req.Priority
	if req.Token != "" {
		auth.WithToken(inv, req.Token)
	}
	if req.Fence != 0 {
		SetFence(inv, req.Fence)
	}
	result, err := p.Call(inv)
	if err != nil {
		return response{ID: req.ID, Err: err.Error(), Code: codeFor(err)}
	}
	raw, err := json.Marshal(result)
	if err != nil {
		return response{
			ID:   req.ID,
			Err:  fmt.Sprintf("unencodable result: %v", err),
			Code: CodeInternal,
		}
	}
	return response{ID: req.ID, Result: raw}
}
