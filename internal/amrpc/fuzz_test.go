package amrpc

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary bytes through the request decode path:
// it must never panic, and whatever parses must survive argument decoding
// without panicking either.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"id":1,"component":"ticket","method":"open","args":["ev",2]}`))
	f.Add([]byte(`{"id":18446744073709551615,"component":"","method":""}`))
	f.Add([]byte(`{"id":1,"sum":12345}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"args":[{"nested":{"deep":[1,2,3]}}]}`))
	f.Add([]byte(``))
	if line, err := sealRequest(&request{ID: 7, Component: "c", Method: "m",
		Args: []json.RawMessage{json.RawMessage(`"x"`)}, Token: "tok", Priority: 3}); err == nil {
		f.Add(line)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeRequestLine(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		if _, err := decodeArgs(req.Args); err != nil {
			return
		}
	})
}

// FuzzDecodeResponse feeds arbitrary bytes through the response decode
// path. Beyond no-panic, it checks the error-rehydration invariant: a
// response carrying a known error code must rehydrate into a RemoteError
// that errors.Is-matches the corresponding framework sentinel.
func FuzzDecodeResponse(f *testing.F) {
	f.Add([]byte(`{"id":1,"result":"ok"}`))
	f.Add([]byte(`{"id":2,"err":"denied","code":"permission-denied"}`))
	f.Add([]byte(`{"id":3,"err":"gone","code":"no-such-code"}`))
	f.Add([]byte(`{"id":4,"sum":99}`))
	f.Add([]byte(`[1,2,3]`))
	if line, err := sealResponse(&response{ID: 9, Err: "shed", Code: CodeShed}); err == nil {
		f.Add(line)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := decodeResponseLine(data)
		if err != nil {
			return
		}
		if resp.Err == "" {
			if len(resp.Result) > 0 {
				var v any
				_ = json.Unmarshal(resp.Result, &v)
			}
			return
		}
		remote := &RemoteError{Code: resp.Code, Msg: resp.Err}
		if sentinel, ok := codeToSentinel[resp.Code]; ok {
			if !errors.Is(remote, sentinel) {
				t.Fatalf("code %q did not rehydrate: errors.Is(%v, %v) = false",
					resp.Code, remote, sentinel)
			}
		} else if remote.Unwrap() != nil {
			t.Fatalf("unknown code %q unwrapped to %v, want nil", resp.Code, remote.Unwrap())
		}
	})
}

// TestSealedFramesRoundTrip pins the integrity format itself: a sealed
// frame decodes cleanly, and any single-bit flip anywhere in it is either a
// JSON parse failure or a checksum rejection — never a silently different
// frame.
func TestSealedFramesRoundTrip(t *testing.T) {
	line, err := sealRequest(&request{ID: 42, Component: "soak", Method: "put",
		Args: []json.RawMessage{json.RawMessage(`"op-1-2"`)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeRequestLine(line); err != nil {
		t.Fatalf("sealed frame rejected: %v", err)
	}
	for i := range line {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), line...)
			mut[i] ^= 1 << bit
			req, err := decodeRequestLine(mut)
			if err != nil {
				continue // rejected, as it should be
			}
			// The only mutations allowed to decode are ones that leave the
			// covered bytes identical after re-marshalling (e.g. flips
			// inside JSON whitespace — none exist in compact encoding).
			reline, rerr := sealRequest(req)
			if rerr != nil || string(reline) != string(line) {
				t.Fatalf("bit flip at byte %d bit %d decoded to a different frame: %s", i, bit, mut)
			}
		}
	}
}
