package amrpc

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/chaosnet"
	"repro/internal/moderator"
	"repro/internal/proxy"
)

// flakyDialer fails its first failures dials, then connects to addr.
type flakyDialer struct {
	addr     string
	failures int32
	attempts atomic.Int32
}

func (d *flakyDialer) dial() (net.Conn, error) {
	n := d.attempts.Add(1)
	if n <= d.failures {
		return nil, errors.New("flaky dialer: injected refusal")
	}
	return net.Dial("tcp", d.addr)
}

// An idempotent call must survive a dead connection: the retry loop
// re-dials under backoff and the second attempt lands on the live server.
func TestIdempotentCallRetriesThroughReconnect(t *testing.T) {
	addr := startServer(t, newEchoProxy(t, "echo"))
	d := &flakyDialer{addr: addr, failures: 2}
	c := newClient(
		WithDialFunc(d.dial),
		WithRetry(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}),
		WithReconnectBackoff(time.Millisecond, 4*time.Millisecond),
	)
	defer c.Close()

	stub := c.Component("echo", WithIdempotent())
	got, err := stub.Invoke(context.Background(), "echo", "hello")
	if err != nil {
		t.Fatalf("idempotent invoke across reconnect: %v", err)
	}
	if got != "hello" {
		t.Fatalf("echo = %v, want hello", got)
	}
	if n := d.attempts.Load(); n != 3 {
		t.Fatalf("dial attempts = %d, want 3 (two refusals, then success)", n)
	}
	if !c.Connected() {
		t.Fatal("client should hold a live connection after the successful retry")
	}
}

// A non-idempotent call gets exactly one attempt: the first transport
// failure surfaces immediately, with no further dials.
func TestNonIdempotentCallIsNeverRetried(t *testing.T) {
	d := &flakyDialer{failures: 1 << 30} // always refuse
	c := newClient(
		WithDialFunc(d.dial),
		WithRetry(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond}),
		WithReconnectBackoff(time.Millisecond, 2*time.Millisecond),
	)
	defer c.Close()

	_, err := c.Component("svc").Invoke(context.Background(), "op")
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport", err)
	}
	if n := d.attempts.Load(); n != 1 {
		t.Fatalf("dial attempts = %d, want exactly 1 for a non-idempotent call", n)
	}

	// The same failure on an idempotent stub burns through the policy.
	d.attempts.Store(0)
	_, err = c.Component("svc", WithIdempotent()).Invoke(context.Background(), "op")
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport", err)
	}
	if n := d.attempts.Load(); n != 5 {
		t.Fatalf("dial attempts = %d, want MaxAttempts=5 for an idempotent call", n)
	}
}

// Application errors are decisions the remote component already made;
// retrying them would repeat side effects and second-guess aspects. Even an
// idempotent stub must execute the method exactly once.
func TestApplicationErrorsAreNeverRetried(t *testing.T) {
	var bodyRuns atomic.Int32
	p := proxy.New(moderator.New("fussy"))
	if err := p.Bind("refuse", func(inv *aspect.Invocation) (any, error) {
		bodyRuns.Add(1)
		return nil, errors.New("business rule says no")
	}); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, p)

	c, err := Dial(addr, WithRetry(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Component("fussy", WithIdempotent()).Invoke(context.Background(), "refuse")
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if errors.Is(err, ErrTransport) {
		t.Fatalf("application error must not classify as transport: %v", err)
	}
	if n := bodyRuns.Load(); n != 1 {
		t.Fatalf("method body ran %d times, want exactly 1", n)
	}
}

// A caller whose own context has expired must not be retried, however
// idempotent the stub: the answer can no longer be delivered.
func TestCallerDeadlineStopsRetries(t *testing.T) {
	d := &flakyDialer{failures: 1 << 30}
	c := newClient(
		WithDialFunc(d.dial),
		WithRetry(RetryPolicy{MaxAttempts: 50, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 5 * time.Millisecond}),
		WithReconnectBackoff(time.Millisecond, 2*time.Millisecond),
	)
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	_, err := c.Component("svc", WithIdempotent()).Invoke(ctx, "op")
	if err == nil {
		t.Fatal("invoke with everything down should fail")
	}
	if n := d.attempts.Load(); n >= 50 {
		t.Fatalf("dial attempts = %d: retries kept going past the caller's deadline", n)
	}
}

// Regression for the Close/teardown race: closing the client while many
// calls are in flight — over a chaosnet link that is also injecting resets
// — must resolve every pending channel. No invocation goroutine may hang,
// and the in-flight table must drain to zero.
func TestCloseMidPipelineResolvesAllPending(t *testing.T) {
	p := proxy.New(moderator.New("parking"))
	if err := p.Bind("park", func(inv *aspect.Invocation) (any, error) {
		<-inv.Context().Done()
		return nil, inv.Context().Err()
	}); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, p)

	inj := chaosnet.New(chaosnet.Config{
		Seed:            99,
		ResetProb:       0.02,
		LatencyProb:     0.10,
		LatencyMin:      100 * time.Microsecond,
		LatencyMax:      time.Millisecond,
		OpsBeforeFaults: 2,
	})
	c := newClient(
		WithDialFunc(inj.DialFunc(addr)),
		WithReconnectBackoff(time.Millisecond, 4*time.Millisecond),
	)

	const callers = 24
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Component("parking").Invoke(context.Background(), "park")
		}(i)
	}

	// Let the pipeline fill (some calls may already have died to an
	// injected reset; we only need a busy in-flight table, not a count).
	deadline := time.Now().Add(2 * time.Second)
	for c.PendingCalls() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	if err := c.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		t.Logf("close: %v", err) // closing a reset conn may report an error; that's fine
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("%d pending callers still blocked 5s after Close", c.PendingCalls())
	}

	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d: a parked call somehow succeeded after Close", i)
		}
	}
	if n := c.PendingCalls(); n != 0 {
		t.Fatalf("PendingCalls = %d after Close, want 0", n)
	}
	if _, err := c.Component("parking").Invoke(context.Background(), "park"); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("invoke after Close: %v, want ErrClientClosed", err)
	}
}
