package amrpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrClientClosed is returned for calls on a closed client.
var ErrClientClosed = errors.New("amrpc: client closed")

// ErrTransport marks connection-level failures (as opposed to application
// errors the remote component returned). Load balancers fail over on it.
var ErrTransport = errors.New("amrpc: transport failure")

// codeTransportLocal is a client-internal marker used by failAll; it never
// travels on the wire.
const codeTransportLocal = "_local-transport"

// Client is one connection to an amrpc server. Requests are pipelined:
// many goroutines may invoke concurrently over the single connection.
// Construct with Dial, then derive per-component stubs with Component.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex
	enc     *json.Encoder

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	err     error
	closed  bool

	readerDone chan struct{}
}

// Dial connects to an amrpc server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("amrpc: dial %s: %v: %w", addr, err, ErrTransport)
	}
	// Guard against TCP simultaneous-open self-connection: dialing a
	// closed ephemeral port on the same host can connect the socket to
	// itself, which would echo requests back as garbage responses.
	if conn.LocalAddr().String() == conn.RemoteAddr().String() {
		_ = conn.Close()
		return nil, fmt.Errorf("amrpc: dial %s: self-connection: %w", addr, ErrTransport)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		enc:        json.NewEncoder(conn),
		pending:    make(map[uint64]chan response, 16),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// readLoop dispatches responses to their waiting callers.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	scanner := bufio.NewScanner(c.conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for scanner.Scan() {
		var resp response
		if err := json.Unmarshal(scanner.Bytes(), &resp); err != nil {
			continue // tolerate one malformed line
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
	err := scanner.Err()
	if err == nil {
		err = errors.New("amrpc: connection closed")
	}
	c.failAll(err)
}

// failAll aborts every pending call with err.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- response{Err: err.Error(), Code: codeTransportLocal}
	}
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// call performs one request/response round trip.
func (c *Client) call(ctx context.Context, component, method, token string, priority int, args []any) (any, error) {
	rawArgs, err := encodeArgs(args)
	if err != nil {
		return nil, err
	}
	var timeoutMS int64
	if deadline, ok := ctx.Deadline(); ok {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("amrpc: %s.%s: %w", component, method, context.DeadlineExceeded)
		}
		timeoutMS = remaining.Milliseconds()
		if timeoutMS == 0 {
			timeoutMS = 1
		}
	}
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.closed || c.err != nil {
		prev := c.err
		c.mu.Unlock()
		if prev != nil {
			return nil, fmt.Errorf("amrpc: connection failed: %v: %w", prev, ErrTransport)
		}
		return nil, ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	req := request{
		ID:        id,
		Component: component,
		Method:    method,
		Args:      rawArgs,
		Token:     token,
		Priority:  priority,
		TimeoutMS: timeoutMS,
	}
	c.writeMu.Lock()
	err = c.enc.Encode(&req)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("amrpc: send %s.%s: %v: %w", component, method, err, ErrTransport)
	}

	select {
	case resp := <-ch:
		if resp.Code == codeTransportLocal {
			return nil, fmt.Errorf("amrpc: %s.%s: %s: %w", component, method, resp.Err, ErrTransport)
		}
		if resp.Err != "" {
			return nil, &RemoteError{Code: resp.Code, Msg: resp.Err}
		}
		if len(resp.Result) == 0 {
			return nil, nil
		}
		var v any
		if err := json.Unmarshal(resp.Result, &v); err != nil {
			return nil, fmt.Errorf("amrpc: decode result of %s.%s: %w", component, method, err)
		}
		return v, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("amrpc: %s.%s: %w", component, method, ctx.Err())
	}
}

// Stub is a remote component handle implementing the same Invoker
// interface as a local proxy.
type Stub struct {
	client    *Client
	component string
	token     string
	priority  int
}

// StubOption configures Component.
type StubOption func(*Stub)

// WithToken attaches a bearer token to every invocation from this stub.
func WithToken(token string) StubOption {
	return func(s *Stub) { s.token = token }
}

// WithPriority sets the wait-queue priority of every invocation from this
// stub.
func WithPriority(p int) StubOption {
	return func(s *Stub) { s.priority = p }
}

// Component returns an invoker for the named remote component.
func (c *Client) Component(name string, opts ...StubOption) *Stub {
	s := &Stub{client: c, component: name}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Invoke performs a guarded invocation on the remote component.
func (s *Stub) Invoke(ctx context.Context, method string, args ...any) (any, error) {
	return s.client.call(ctx, s.component, method, s.token, s.priority, args)
}
